/**
 * @file
 * Helpers shared by the experiment benches: building VM variants and
 * attaching the counters the experiment tables report.
 */
#ifndef BITC_BENCH_BENCH_UTIL_HPP
#define BITC_BENCH_BENCH_UTIL_HPP

#include <benchmark/benchmark.h>

#include <memory>

#include "memory/region_heap.hpp"
#include "vm/pipeline.hpp"

namespace bitc::bench {

/** Builds a program once (abort on failure: benches need the build). */
inline std::shared_ptr<vm::BuiltProgram>
must_build(const std::string& source, vm::BuildOptions options = {})
{
    auto built = vm::build_program(source, options);
    if (!built.is_ok()) {
        fprintf(stderr, "bench build failed: %s\n",
                built.status().to_string().c_str());
        abort();
    }
    return std::shared_ptr<vm::BuiltProgram>(std::move(built).take());
}

/** Calls @p fn, aborting the bench on traps (they indicate bugs). */
inline int64_t
must_call(vm::Vm& vm, const std::string& fn,
          std::initializer_list<int64_t> args)
{
    auto result = vm.call(fn, args);
    if (!result.is_ok()) {
        fprintf(stderr, "bench call %s failed: %s\n", fn.c_str(),
                result.status().to_string().c_str());
        abort();
    }
    return result.value();
}

/** Resets a region heap between iterations when the VM uses one. */
inline void
maybe_reset_region(vm::Vm& vm)
{
    if (auto* region = dynamic_cast<mem::RegionHeap*>(&vm.heap())) {
        region->reset_region();
    }
}

}  // namespace bitc::bench

#endif  // BITC_BENCH_BENCH_UTIL_HPP
