/**
 * @file
 * Observability-overhead sweep: what does it cost to carry the
 * telemetry layer (metrics registry + trace ring) on the hot paths?
 *
 * Each row times a workload twice on the same binary:
 *
 *  - baseline: metrics disabled, trace stopped — the production
 *    default, where every instrumentation point is one relaxed load
 *    and a predicted-not-taken branch;
 *  - telemetry: metrics enabled AND the trace ring recording — the
 *    full-observation state.  Opcode counting (count_ops) stays off,
 *    as it is opt-in accounting like --profile, not ambient telemetry.
 *
 * The budget is 1.03x geomean: the observability layer only earns the
 * "leave it on in production" claim in docs/observability.md if the
 * telemetry-on state stays inside measurement noise.  The workloads
 * are deliberately the unfriendliest ones: tight VM kernels (where the
 * per-run fold is amortized over millions of instructions) and
 * allocation-heavy mutators (where the per-workload fold has the least
 * work to hide behind).  Emits BENCH_observability.json; exits nonzero
 * when over budget.
 *
 * Usage: bench_observability [OUTPUT.json]
 */
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <functional>
#include <string>
#include <vector>

#include "kernels.hpp"
#include "memory/mutator.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"
#include "vm/pipeline.hpp"

namespace bitc::bench {
namespace {

constexpr int kRepeats = 7;
constexpr double kBudget = 1.03;

std::unique_ptr<vm::BuiltProgram>
must_build(const std::string& source)
{
    auto built = vm::build_program(source);
    if (!built.is_ok()) {
        fprintf(stderr, "bench build failed: %s\n",
                built.status().to_string().c_str());
        abort();
    }
    return std::move(built).take();
}

/** Median wall time of kRepeats runs of @p body (setup untimed). */
uint64_t
median_ns(const std::function<void()>& body)
{
    std::vector<uint64_t> samples;
    samples.reserve(kRepeats);
    for (int r = 0; r < kRepeats; ++r) {
        auto start = std::chrono::steady_clock::now();
        body();
        auto end = std::chrono::steady_clock::now();
        samples.push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                end - start)
                .count()));
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

struct Row {
    std::string name;       ///< workload / configuration label.
    const char* dimension;  ///< "vm-kernel" or "mutator".
    uint64_t baseline_ns = 0;
    uint64_t telemetry_ns = 0;

    double overhead() const {
        return static_cast<double>(telemetry_ns) /
               static_cast<double>(baseline_ns);
    }
};

double
geomean(const std::vector<Row>& rows)
{
    double log_sum = 0;
    for (const Row& row : rows) log_sum += std::log(row.overhead());
    return std::exp(log_sum / static_cast<double>(rows.size()));
}

void
telemetry_off()
{
    metrics::disable();
    trace::stop();
}

void
telemetry_on()
{
    metrics::reset();
    metrics::enable();
    trace::start();
}

/** Times @p run with telemetry off, then with it fully on. */
Row
measure(std::string name, const char* dimension,
        const std::function<void()>& run)
{
    Row row;
    row.name = std::move(name);
    row.dimension = dimension;
    telemetry_off();
    row.baseline_ns = median_ns(run);
    telemetry_on();
    row.telemetry_ns = median_ns(run);
    telemetry_off();
    trace::clear();
    return row;
}

Row
vm_row(const vm::BuiltProgram& built, const char* kernel,
       std::vector<int64_t> args, vm::ValueMode mode,
       vm::HeapPolicy heap)
{
    vm::VmConfig config;
    config.mode = mode;
    config.heap = heap;
    auto run = [&, args] {
        vm::Vm vm(built.code, nullptr, config);
        auto result = vm.call(kernel, args);
        if (!result.is_ok()) {
            fprintf(stderr, "bench run %s failed: %s\n", kernel,
                    result.status().to_string().c_str());
            abort();
        }
    };
    return measure(std::string(kernel) + "/" +
                       vm::value_mode_name(mode) + "/" +
                       vm::heap_policy_name(heap),
                   "vm-kernel", run);
}

struct MutatorCase {
    const char* name;
    std::function<uint64_t(mem::ManagedHeap&)> run;  ///< -> checksum.
};

std::vector<MutatorCase>
mutator_cases()
{
    auto must = [](Result<mem::MutatorReport> report) -> uint64_t {
        if (!report.is_ok()) {
            fprintf(stderr, "mutator workload failed: %s\n",
                    report.status().to_string().c_str());
            abort();
        }
        return report.value().check_value;
    };
    return {
        {"churn",
         [must](mem::ManagedHeap& heap) {
             Rng rng(42);
             return must(
                 mem::run_churn(heap, 200000, 256, 8, rng));
         }},
        {"binary-trees",
         [must](mem::ManagedHeap& heap) {
             return must(mem::run_binary_trees(heap, 12, 20));
         }},
        {"graph-mutation",
         [must](mem::ManagedHeap& heap) {
             Rng rng(7);
             return must(mem::run_graph_mutation(heap, 5000, 4,
                                                 200000, rng));
         }},
    };
}

Row
mutator_row(const MutatorCase& mcase, vm::HeapPolicy policy)
{
    constexpr size_t kHeapWords = 1 << 20;
    return measure(std::string(vm::heap_policy_name(policy)) + "/" +
                       mcase.name,
                   "mutator", [&] {
                       auto heap = vm::make_heap(policy, kHeapWords);
                       (void)mcase.run(*heap);
                   });
}

}  // namespace
}  // namespace bitc::bench

int
main(int argc, char** argv)
{
    using namespace bitc;
    using namespace bitc::bench;

    const char* out_path =
        argc > 1 ? argv[1] : "BENCH_observability.json";

    auto built = must_build(kernel_source());

    std::vector<Row> rows;
    rows.push_back(vm_row(*built, "checksum", {40},
                          vm::ValueMode::kUnboxed,
                          vm::HeapPolicy::kRegion));
    rows.push_back(vm_row(*built, "sieve", {65536},
                          vm::ValueMode::kUnboxed,
                          vm::HeapPolicy::kRegion));
    rows.push_back(vm_row(*built, "hash-churn", {4000},
                          vm::ValueMode::kUnboxed,
                          vm::HeapPolicy::kRegion));
    rows.push_back(vm_row(*built, "hash-churn", {4000},
                          vm::ValueMode::kBoxed,
                          vm::HeapPolicy::kGenerational));
    for (const MutatorCase& mcase : mutator_cases()) {
        rows.push_back(mutator_row(mcase, vm::HeapPolicy::kManual));
        rows.push_back(
            mutator_row(mcase, vm::HeapPolicy::kGenerational));
    }

    for (const Row& row : rows) {
        printf("%-10s %-28s baseline %9.3f ms  telemetry %9.3f ms  "
               "overhead %.3fx\n",
               row.dimension, row.name.c_str(),
               static_cast<double>(row.baseline_ns) / 1e6,
               static_cast<double>(row.telemetry_ns) / 1e6,
               row.overhead());
    }
    double overall = geomean(rows);
    bool within = overall <= kBudget;
    printf(
        "geomean telemetry overhead: %.3fx (budget %.2fx) — %s\n",
        overall, kBudget, within ? "within budget" : "OVER BUDGET");

    FILE* out = fopen(out_path, "w");
    if (out == nullptr) {
        fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    char stamp[64];
    std::time_t now = std::time(nullptr);
    std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ",
                  std::gmtime(&now));
    fprintf(out, "{\n");
    fprintf(out, "  \"bench\": \"observability\",\n");
    fprintf(out, "  \"date_utc\": \"%s\",\n", stamp);
    fprintf(out, "  \"repeats\": %d,\n", kRepeats);
    fprintf(out, "  \"overhead_budget\": %.2f,\n", kBudget);
    fprintf(out, "  \"geomean_overhead\": %.3f,\n", overall);
    fprintf(out, "  \"within_budget\": %s,\n",
            within ? "true" : "false");
    fprintf(out, "  \"rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row& row = rows[i];
        fprintf(out,
                "    {\"dimension\": \"%s\", \"workload\": \"%s\", "
                "\"baseline_ns\": %llu, \"telemetry_ns\": %llu, "
                "\"overhead\": %.3f}%s\n",
                row.dimension, row.name.c_str(),
                static_cast<unsigned long long>(row.baseline_ns),
                static_cast<unsigned long long>(row.telemetry_ns),
                row.overhead(), i + 1 < rows.size() ? "," : "");
    }
    fprintf(out, "  ]\n}\n");
    fclose(out);
    printf("wrote %s\n", out_path);
    return within ? 0 : 1;
}
