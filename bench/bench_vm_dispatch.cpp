/**
 * @file
 * Dispatch-strategy sweep: {unboxed, boxed} x {switch, threaded} x
 * heap policies over the shared systems kernels, reported as a JSON
 * baseline (BENCH_vm_dispatch.json) so the perf trajectory across PRs
 * is measured rather than asserted.
 *
 * This is the quantified half of fallacies F1/F3: the interpreter's
 * dispatch loop is exactly the kind of integer-factor cost the paper
 * says matters (F1) and the optimiser cannot recover on its own (F3)
 * — restructuring the loop for the branch predictor does.
 *
 * Usage: bench_vm_dispatch [OUTPUT.json]
 */
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <string>
#include <vector>

#include "kernels.hpp"
#include "vm/pipeline.hpp"

namespace bitc::bench {
namespace {

using vm::DispatchMode;
using vm::HeapPolicy;
using vm::ValueMode;

// Local twin of bench_util's must_build: bench_util.hpp pulls in
// google-benchmark, which this self-timing sweep doesn't link.
std::unique_ptr<vm::BuiltProgram>
must_build(const std::string& source)
{
    auto built = vm::build_program(source);
    if (!built.is_ok()) {
        fprintf(stderr, "bench build failed: %s\n",
                built.status().to_string().c_str());
        abort();
    }
    return std::move(built).take();
}

struct Kernel {
    const char* entry;
    std::vector<int64_t> args;
};

struct Config {
    ValueMode mode;
    HeapPolicy heap;
};

struct Row {
    const char* kernel;
    std::vector<int64_t> args;
    Config config;
    uint64_t instructions = 0;
    uint64_t switch_ns = 0;
    uint64_t threaded_ns = 0;

    double speedup() const {
        return static_cast<double>(switch_ns) /
               static_cast<double>(threaded_ns);
    }
    double mips(uint64_t ns) const {
        return static_cast<double>(instructions) * 1e3 /
               static_cast<double>(ns);
    }
};

constexpr int kRepeats = 7;

/**
 * Median wall time of kRepeats fresh-VM runs; checks the result.
 * Each repeat constructs its VM outside the timed window: the heap
 * arena alone is tens of megabytes of zeroed storage, which would
 * otherwise swamp the dispatch loop we are measuring.
 */
uint64_t
measure(const vm::BuiltProgram& built, const Kernel& kernel,
        vm::VmConfig config, int64_t expected, uint64_t* instructions)
{
    std::vector<uint64_t> samples;
    samples.reserve(kRepeats);
    for (int r = 0; r < kRepeats; ++r) {
        vm::Vm vm(built.code, nullptr, config);
        auto start = std::chrono::steady_clock::now();
        auto result = vm.call(kernel.entry, kernel.args);
        auto end = std::chrono::steady_clock::now();
        if (!result.is_ok()) {
            fprintf(stderr, "bench run %s failed: %s\n", kernel.entry,
                    result.status().to_string().c_str());
            abort();
        }
        if (result.value() != expected) {
            fprintf(stderr,
                    "bench %s (%s/%s/%s): result %lld != expected "
                    "%lld — dispatch modes disagree\n",
                    kernel.entry, value_mode_name(config.mode),
                    heap_policy_name(config.heap),
                    dispatch_mode_name(config.dispatch),
                    static_cast<long long>(result.value()),
                    static_cast<long long>(expected));
            abort();
        }
        samples.push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                end - start)
                .count()));
        *instructions = vm.instructions_executed();
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

double
geomean(const std::vector<double>& xs)
{
    double log_sum = 0;
    for (double x : xs) log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

std::string
json_args(const std::vector<int64_t>& args)
{
    std::string out = "[";
    for (size_t i = 0; i < args.size(); ++i) {
        if (i != 0) out += ", ";
        out += std::to_string(args[i]);
    }
    return out + "]";
}

}  // namespace
}  // namespace bitc::bench

int
main(int argc, char** argv)
{
    using namespace bitc;
    using namespace bitc::bench;

    const char* out_path =
        argc > 1 ? argv[1] : "BENCH_vm_dispatch.json";

    auto built = must_build(kernel_source());

    const Kernel kernels[] = {
        {"checksum", {40}},
        {"sieve", {65536}},
        {"hash-churn", {4000}},
    };
    const Config configs[] = {
        {ValueMode::kUnboxed, HeapPolicy::kRegion},
        {ValueMode::kUnboxed, HeapPolicy::kManual},
        {ValueMode::kBoxed, HeapPolicy::kGenerational},
        {ValueMode::kBoxed, HeapPolicy::kMarkSweep},
    };

    std::vector<Row> rows;
    for (const Kernel& kernel : kernels) {
        // Reference result from the portable loop; every other
        // configuration must reproduce it exactly.
        vm::VmConfig reference;
        reference.dispatch = DispatchMode::kSwitch;
        auto expected = vm::run_built(*built, kernel.entry, kernel.args,
                                      reference);
        if (!expected.is_ok()) {
            fprintf(stderr, "reference run failed: %s\n",
                    expected.status().to_string().c_str());
            return 1;
        }
        for (const Config& config : configs) {
            Row row;
            row.kernel = kernel.entry;
            row.args = kernel.args;
            row.config = config;
            vm::VmConfig vmc;
            vmc.mode = config.mode;
            vmc.heap = config.heap;
            vmc.dispatch = DispatchMode::kSwitch;
            row.switch_ns = measure(*built, kernel, vmc,
                                    expected.value(),
                                    &row.instructions);
            vmc.dispatch = DispatchMode::kThreaded;
            row.threaded_ns = measure(*built, kernel, vmc,
                                      expected.value(),
                                      &row.instructions);
            rows.push_back(row);
            printf("%-10s %-7s %-12s  switch %8.1f Mips  threaded "
                   "%8.1f Mips  speedup %.2fx\n",
                   row.kernel, value_mode_name(config.mode),
                   heap_policy_name(config.heap),
                   row.mips(row.switch_ns), row.mips(row.threaded_ns),
                   row.speedup());
        }
    }

    std::vector<double> unboxed_speedups;
    std::vector<double> boxed_speedups;
    for (const Row& row : rows) {
        (row.config.mode == ValueMode::kUnboxed ? unboxed_speedups
                                                : boxed_speedups)
            .push_back(row.speedup());
    }
    double geomean_unboxed = geomean(unboxed_speedups);
    double geomean_boxed = geomean(boxed_speedups);
    printf("geomean threaded speedup: unboxed %.2fx, boxed %.2fx\n",
           geomean_unboxed, geomean_boxed);

    FILE* out = fopen(out_path, "w");
    if (out == nullptr) {
        fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    char stamp[64];
    std::time_t now = std::time(nullptr);
    std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ",
                  std::gmtime(&now));
    fprintf(out, "{\n");
    fprintf(out, "  \"bench\": \"vm_dispatch\",\n");
    fprintf(out, "  \"date_utc\": \"%s\",\n", stamp);
    fprintf(out, "  \"repeats\": %d,\n", kRepeats);
    fprintf(out, "  \"threaded_dispatch_available\": %s,\n",
            vm::threaded_dispatch_available() ? "true" : "false");
    fprintf(out, "  \"geomean_threaded_speedup_unboxed\": %.3f,\n",
            geomean_unboxed);
    fprintf(out, "  \"geomean_threaded_speedup_boxed\": %.3f,\n",
            geomean_boxed);
    fprintf(out, "  \"rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row& row = rows[i];
        fprintf(out,
                "    {\"kernel\": \"%s\", \"args\": %s, "
                "\"mode\": \"%s\", \"heap\": \"%s\", "
                "\"instructions\": %llu, "
                "\"switch_ns\": %llu, \"threaded_ns\": %llu, "
                "\"switch_mips\": %.1f, \"threaded_mips\": %.1f, "
                "\"speedup\": %.3f}%s\n",
                row.kernel, json_args(row.args).c_str(),
                value_mode_name(row.config.mode),
                heap_policy_name(row.config.heap),
                static_cast<unsigned long long>(row.instructions),
                static_cast<unsigned long long>(row.switch_ns),
                static_cast<unsigned long long>(row.threaded_ns),
                row.mips(row.switch_ns), row.mips(row.threaded_ns),
                row.speedup(), i + 1 < rows.size() ? "," : "");
    }
    fprintf(out, "  ]\n}\n");
    fclose(out);
    printf("wrote %s\n", out_path);
    return 0;
}
