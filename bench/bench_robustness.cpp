/**
 * @file
 * Hardening-overhead sweep: what does it cost to carry the robustness
 * machinery of this PR on the hot paths?
 *
 * Two dimensions are measured, both as ratios against the same binary
 * with the machinery idle:
 *
 *  - Injection points (VM kernels + allocation-heavy mutators): a
 *    disarmed fault::inject() is one relaxed load and a predicted
 *    branch; the "counting" rows re-run the same workloads with the
 *    injector armed in census mode — the most expensive non-failing
 *    state — so the ratio bounds the cost from above.
 *  - Manual-heap hardening (guard canaries + freed-payload poisoning):
 *    the same mutator workloads on a plain versus a hardened
 *    ManualHeap.
 *  - Supervision (the self-healing runtime): a fault-free supervised
 *    pipeline run, disarmed versus census-armed.  The supervisor,
 *    per-worker breakers, deadline plumbing and the worker-crash
 *    injection site all ride the hot hand-off path; this row bounds
 *    what carrying them costs when nothing ever fails.
 *
 * The budget is 1.10x: hardening must stay inside the noise band the
 * paper's F1 discussion treats as ignorable, or it would never be left
 * enabled in the configurations the other benches measure.  Emits
 * BENCH_robustness.json.
 *
 * Usage: bench_robustness [OUTPUT.json]
 */
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <functional>
#include <string>
#include <vector>

#include "concurrency/pipeline.hpp"
#include "kernels.hpp"
#include "memory/manual_heap.hpp"
#include "memory/mutator.hpp"
#include "support/fault.hpp"
#include "vm/pipeline.hpp"

namespace bitc::bench {
namespace {

constexpr int kRepeats = 7;
constexpr double kBudget = 1.10;

std::unique_ptr<vm::BuiltProgram>
must_build(const std::string& source)
{
    auto built = vm::build_program(source);
    if (!built.is_ok()) {
        fprintf(stderr, "bench build failed: %s\n",
                built.status().to_string().c_str());
        abort();
    }
    return std::move(built).take();
}

/** Median wall time of kRepeats runs of @p body (setup untimed). */
uint64_t
median_ns(const std::function<void()>& body)
{
    std::vector<uint64_t> samples;
    samples.reserve(kRepeats);
    for (int r = 0; r < kRepeats; ++r) {
        auto start = std::chrono::steady_clock::now();
        body();
        auto end = std::chrono::steady_clock::now();
        samples.push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                end - start)
                .count()));
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
}

struct Row {
    std::string name;       ///< workload / configuration label.
    const char* dimension;  ///< "inject-points" or "manual-hardening".
    uint64_t baseline_ns = 0;
    uint64_t hardened_ns = 0;

    double overhead() const {
        return static_cast<double>(hardened_ns) /
               static_cast<double>(baseline_ns);
    }
};

double
geomean(const std::vector<Row>& rows)
{
    double log_sum = 0;
    for (const Row& row : rows) log_sum += std::log(row.overhead());
    return std::exp(log_sum / static_cast<double>(rows.size()));
}

/** One VM kernel, timed disarmed then in census mode. */
Row
vm_row(const vm::BuiltProgram& built, const char* kernel,
       std::vector<int64_t> args, vm::ValueMode mode,
       vm::HeapPolicy heap)
{
    vm::VmConfig config;
    config.mode = mode;
    config.heap = heap;
    auto run = [&] {
        vm::Vm vm(built.code, nullptr, config);
        auto result = vm.call(kernel, args);
        if (!result.is_ok()) {
            fprintf(stderr, "bench run %s failed: %s\n", kernel,
                    result.status().to_string().c_str());
            abort();
        }
    };
    Row row;
    row.name = std::string(kernel) + "/" + vm::value_mode_name(mode) +
               "/" + vm::heap_policy_name(heap);
    row.dimension = "inject-points";
    fault::Injector::instance().disarm();
    row.baseline_ns = median_ns(run);
    (void)fault::Injector::instance().arm("count");
    row.hardened_ns = median_ns(run);
    fault::Injector::instance().disarm();
    return row;
}

struct MutatorCase {
    const char* name;
    std::function<uint64_t(mem::ManagedHeap&)> run;  ///< -> checksum.
};

std::vector<MutatorCase>
mutator_cases()
{
    auto must = [](Result<mem::MutatorReport> report) -> uint64_t {
        if (!report.is_ok()) {
            fprintf(stderr, "mutator workload failed: %s\n",
                    report.status().to_string().c_str());
            abort();
        }
        return report.value().check_value;
    };
    return {
        {"churn",
         [must](mem::ManagedHeap& heap) {
             Rng rng(42);
             return must(
                 mem::run_churn(heap, 200000, 256, 8, rng));
         }},
        {"binary-trees",
         [must](mem::ManagedHeap& heap) {
             return must(mem::run_binary_trees(heap, 12, 20));
         }},
        {"graph-mutation",
         [must](mem::ManagedHeap& heap) {
             Rng rng(7);
             return must(mem::run_graph_mutation(heap, 5000, 4,
                                                 200000, rng));
         }},
    };
}

/** One mutator workload on plain vs hardened manual heaps. */
Row
mutator_row(const MutatorCase& mcase)
{
    constexpr size_t kHeapWords = 1 << 20;
    fault::Injector::instance().disarm();
    uint64_t plain_check = 0;
    uint64_t hardened_check = 0;
    Row row;
    row.name = std::string("manual/") + mcase.name;
    row.dimension = "manual-hardening";
    row.baseline_ns = median_ns([&] {
        mem::ManualHeap heap(kHeapWords);
        plain_check = mcase.run(heap);
    });
    row.hardened_ns = median_ns([&] {
        mem::ManualHeap heap(kHeapWords);
        heap.enable_hardening();
        hardened_check = mcase.run(heap);
    });
    if (plain_check != hardened_check) {
        fprintf(stderr,
                "%s: hardened checksum %llu != plain %llu — "
                "hardening changed workload behaviour\n",
                row.name.c_str(),
                static_cast<unsigned long long>(hardened_check),
                static_cast<unsigned long long>(plain_check));
        abort();
    }
    return row;
}

/**
 * The supervised CSP pipeline, fault-free, disarmed vs census-armed.
 * Every batch hand-off crosses the worker-crash injection point and
 * the breaker-flag check; the ratio is the price of the self-healing
 * machinery when it never has to heal anything.
 */
Row
pipeline_row()
{
    conc::PipelineConfig config;
    config.workers = {2, 2, 2, 2};
    config.seed = 11;
    auto pipeline = conc::PacketPipeline::create(config);
    if (!pipeline.is_ok()) {
        fprintf(stderr, "bench pipeline create failed: %s\n",
                pipeline.status().to_string().c_str());
        abort();
    }
    constexpr size_t kPackets = 30000;
    auto run = [&] {
        auto report = pipeline.value()->run(kPackets);
        if (!report.is_ok() || !report.value().conserved() ||
            report.value().worker_crashes != 0) {
            fprintf(stderr, "bench pipeline run misbehaved\n");
            abort();
        }
    };
    Row row;
    row.name = "pipeline/supervised/2:2:2:2";
    row.dimension = "supervision";
    fault::Injector::instance().disarm();
    row.baseline_ns = median_ns(run);
    (void)fault::Injector::instance().arm("count");
    row.hardened_ns = median_ns(run);
    fault::Injector::instance().disarm();
    return row;
}

}  // namespace
}  // namespace bitc::bench

int
main(int argc, char** argv)
{
    using namespace bitc;
    using namespace bitc::bench;

    const char* out_path =
        argc > 1 ? argv[1] : "BENCH_robustness.json";

    auto built = must_build(kernel_source());

    std::vector<Row> rows;
    rows.push_back(vm_row(*built, "checksum", {40},
                          vm::ValueMode::kUnboxed,
                          vm::HeapPolicy::kRegion));
    rows.push_back(vm_row(*built, "sieve", {65536},
                          vm::ValueMode::kUnboxed,
                          vm::HeapPolicy::kRegion));
    rows.push_back(vm_row(*built, "hash-churn", {4000},
                          vm::ValueMode::kUnboxed,
                          vm::HeapPolicy::kRegion));
    rows.push_back(vm_row(*built, "hash-churn", {4000},
                          vm::ValueMode::kBoxed,
                          vm::HeapPolicy::kGenerational));
    for (const MutatorCase& mcase : mutator_cases()) {
        rows.push_back(mutator_row(mcase));
    }
    rows.push_back(pipeline_row());

    for (const Row& row : rows) {
        printf("%-14s %-28s baseline %9.3f ms  hardened %9.3f ms  "
               "overhead %.3fx\n",
               row.dimension, row.name.c_str(),
               static_cast<double>(row.baseline_ns) / 1e6,
               static_cast<double>(row.hardened_ns) / 1e6,
               row.overhead());
    }
    double overall = geomean(rows);
    bool within = overall <= kBudget;
    printf("geomean hardening overhead: %.3fx (budget %.2fx) — %s\n",
           overall, kBudget, within ? "within budget" : "OVER BUDGET");

    FILE* out = fopen(out_path, "w");
    if (out == nullptr) {
        fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    char stamp[64];
    std::time_t now = std::time(nullptr);
    std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ",
                  std::gmtime(&now));
    fprintf(out, "{\n");
    fprintf(out, "  \"bench\": \"robustness\",\n");
    fprintf(out, "  \"date_utc\": \"%s\",\n", stamp);
    fprintf(out, "  \"repeats\": %d,\n", kRepeats);
    fprintf(out, "  \"overhead_budget\": %.2f,\n", kBudget);
    fprintf(out, "  \"geomean_overhead\": %.3f,\n", overall);
    fprintf(out, "  \"within_budget\": %s,\n",
            within ? "true" : "false");
    fprintf(out, "  \"rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row& row = rows[i];
        fprintf(out,
                "    {\"dimension\": \"%s\", \"workload\": \"%s\", "
                "\"baseline_ns\": %llu, \"hardened_ns\": %llu, "
                "\"overhead\": %.3f}%s\n",
                row.dimension, row.name.c_str(),
                static_cast<unsigned long long>(row.baseline_ns),
                static_cast<unsigned long long>(row.hardened_ns),
                row.overhead(), i + 1 < rows.size() ? "," : "");
    }
    fprintf(out, "  ]\n}\n");
    fclose(out);
    printf("wrote %s\n", out_path);
    return within ? 0 : 1;
}
