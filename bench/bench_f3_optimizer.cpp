/**
 * @file
 * Experiment F3 — "The optimiser can fix it."
 *
 * Runs the checksum and sieve kernels through an optimisation ladder:
 *
 *   O0               boxed values, GC, no folding, all checks;
 *   O1 +fold         constant folding on;
 *   O2 +bce          verifier-licensed bounds-check elimination;
 *   O3 +unboxing     unboxed representation (the "perfect" unboxing
 *                    optimisation), region storage;
 *   native           the C baseline.
 *
 * Two paper claims read off the rows: (a) each pass recovers only part
 * of the abstraction cost and the big step is *representation*, which
 * is a whole-program property an optimiser cannot legally change in an
 * open world — it is a language-design decision (BitC's unboxed-by-
 * default); (b) transparency: the run-to-run cost model of each rung
 * is only predictable because the instruction stream is inspectable
 * (see the vm_instructions counter drop rung to rung).
 */
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "kernels.hpp"

namespace bitc::bench {
namespace {

constexpr int64_t kChecksumRounds = 10;
constexpr int64_t kSieveLimit = 10000;

struct Rung {
    const char* label;
    bool fold;
    bool bce;
    bool unboxed;
};

constexpr Rung kLadder[] = {
    {"O0_boxed", false, false, false},
    {"O1_fold", true, false, false},
    {"O2_fold_bce", true, true, false},
    {"O3_unboxed", true, true, true},
};

void BM_ladder(benchmark::State& state, Rung rung, const char* fn,
               int64_t arg) {
    vm::BuildOptions options;
    options.compiler.constant_fold = rung.fold;
    options.compiler.elide_proved_checks = rung.bce;
    auto built = must_build(kernel_source(), options);

    vm::VmConfig config;
    if (rung.unboxed) {
        config.mode = vm::ValueMode::kUnboxed;
        config.heap = vm::HeapPolicy::kRegion;
        config.heap_words = 1 << 20;
    } else {
        config.mode = vm::ValueMode::kBoxed;
        config.heap = vm::HeapPolicy::kGenerational;
        config.heap_words = 1 << 21;
    }
    auto vm = built->instantiate(config);
    int64_t result = 0;
    uint64_t calls = 0;
    for (auto _ : state) {
        result = must_call(*vm, fn, {arg});
        benchmark::DoNotOptimize(result);
        maybe_reset_region(*vm);
        ++calls;
    }
    state.counters["result"] = static_cast<double>(result);
    state.counters["vm_instructions_per_call"] =
        static_cast<double>(vm->instructions_executed()) /
        static_cast<double>(calls);
    state.counters["gc_pauses"] =
        static_cast<double>(vm->heap().pause_stats().count());
}

void BM_native_checksum_f3(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(native_checksum(kChecksumRounds));
    }
}

void BM_native_sieve_f3(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(native_sieve(kSieveLimit));
    }
}

BENCHMARK_CAPTURE(BM_ladder, checksum_O0_boxed, kLadder[0], "checksum",
                  kChecksumRounds);
BENCHMARK_CAPTURE(BM_ladder, checksum_O1_fold, kLadder[1], "checksum",
                  kChecksumRounds);
BENCHMARK_CAPTURE(BM_ladder, checksum_O2_fold_bce, kLadder[2],
                  "checksum", kChecksumRounds);
BENCHMARK_CAPTURE(BM_ladder, checksum_O3_unboxed, kLadder[3],
                  "checksum", kChecksumRounds);
BENCHMARK(BM_native_checksum_f3);

BENCHMARK_CAPTURE(BM_ladder, sieve_O0_boxed, kLadder[0], "sieve",
                  kSieveLimit);
BENCHMARK_CAPTURE(BM_ladder, sieve_O1_fold, kLadder[1], "sieve",
                  kSieveLimit);
BENCHMARK_CAPTURE(BM_ladder, sieve_O2_fold_bce, kLadder[2], "sieve",
                  kSieveLimit);
BENCHMARK_CAPTURE(BM_ladder, sieve_O3_unboxed, kLadder[3], "sieve",
                  kSieveLimit);
BENCHMARK(BM_native_sieve_f3);

}  // namespace
}  // namespace bitc::bench

BENCHMARK_MAIN();
