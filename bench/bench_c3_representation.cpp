/**
 * @file
 * Experiment C3 — "Control over data representation."
 *
 * Rows answer three questions:
 *  - necessity: wire-format (packed/bit-precise) vs C natural layout —
 *    the space cost of *not* controlling representation (counters
 *    bytes_per_record), and the cache effect on scan throughput;
 *  - affordability: what bit-granular field access costs vs aligned
 *    access, across field widths (the sub-word tax is small and flat);
 *  - safety: the checked codec vs raw shift/mask parsing — the
 *    abstraction the layout engine buys costs little.
 */
#include <benchmark/benchmark.h>

#include <vector>

#include "interop/packet_stages.hpp"
#include "repr/codec.hpp"
#include "support/rng.hpp"

namespace bitc::bench {
namespace {

using namespace bitc::repr;

constexpr size_t kRecords = 4096;

/** Builds a codec for the experiment's header under @p packing. */
RecordCodec make_codec(Packing packing) {
    RecordSpec spec = ipv4_header_spec();
    spec.packing = packing;
    if (packing != Packing::kPacked) spec.pinned_byte_size.reset();
    auto layout = compute_layout(spec);
    if (!layout.is_ok()) abort();
    return RecordCodec(std::move(layout).take());
}

/** Fills a buffer of records with deterministic field values. */
std::vector<uint8_t> make_records(const RecordCodec& codec) {
    std::vector<uint8_t> buf(codec.layout().byte_size() * kRecords, 0);
    Rng rng(7);
    for (size_t r = 0; r < kRecords; ++r) {
        std::span<uint8_t> rec(buf.data() + r * codec.layout().byte_size(),
                               codec.layout().byte_size());
        for (const FieldLayout& f : codec.layout().fields()) {
            codec.write_field(rec, f,
                              rng.next() & low_mask(f.bit_width));
        }
    }
    return buf;
}

/** Scans every field of every record (parse throughput). */
void BM_scan_layout(benchmark::State& state, Packing packing) {
    RecordCodec codec = make_codec(packing);
    std::vector<uint8_t> buf = make_records(codec);
    size_t stride = codec.layout().byte_size();
    uint64_t acc = 0;
    for (auto _ : state) {
        for (size_t r = 0; r < kRecords; ++r) {
            std::span<const uint8_t> rec(buf.data() + r * stride, stride);
            for (const FieldLayout& f : codec.layout().fields()) {
                acc += codec.read_field(rec, f);
            }
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * kRecords *
                            codec.layout().fields().size());
    state.counters["bytes_per_record"] =
        static_cast<double>(codec.layout().byte_size());
    state.counters["padding_bits"] =
        static_cast<double>(codec.layout().padding_bits());
}
BENCHMARK_CAPTURE(BM_scan_layout, packed_wire_format, Packing::kPacked);
BENCHMARK_CAPTURE(BM_scan_layout, natural_c_layout, Packing::kNatural);

/** Round-trip serialise+parse (codec write path). */
void BM_roundtrip_layout(benchmark::State& state, Packing packing) {
    RecordCodec codec = make_codec(packing);
    std::vector<uint8_t> buf(codec.layout().byte_size() * kRecords, 0);
    size_t stride = codec.layout().byte_size();
    uint64_t acc = 0;
    for (auto _ : state) {
        for (size_t r = 0; r < kRecords; ++r) {
            std::span<uint8_t> rec(buf.data() + r * stride, stride);
            for (const FieldLayout& f : codec.layout().fields()) {
                codec.write_field(rec, f, r + f.bit_offset);
            }
            for (const FieldLayout& f : codec.layout().fields()) {
                acc += codec.read_field(rec, f);
            }
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * kRecords);
}
BENCHMARK_CAPTURE(BM_roundtrip_layout, packed_wire_format,
                  Packing::kPacked);
BENCHMARK_CAPTURE(BM_roundtrip_layout, natural_c_layout,
                  Packing::kNatural);

/** Bit-granular access cost across widths (aligned 8..unaligned 13). */
void BM_field_width(benchmark::State& state) {
    uint32_t width = static_cast<uint32_t>(state.range(0));
    uint32_t offset = static_cast<uint32_t>(state.range(1));
    std::vector<uint8_t> buf(64, 0);
    uint64_t acc = 0;
    for (auto _ : state) {
        for (int i = 0; i < 64; ++i) {
            write_bits(buf.data(), offset, width,
                       static_cast<uint64_t>(i), BitOrder::kMsbFirst);
            acc += read_bits(buf.data(), offset, width,
                             BitOrder::kMsbFirst);
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_field_width)
    ->Args({8, 0})    // byte-aligned byte
    ->Args({16, 0})   // aligned half-word
    ->Args({4, 0})    // aligned nibble
    ->Args({4, 3})    // misaligned nibble
    ->Args({13, 3})   // the IPv4 fragment-offset shape
    ->Args({33, 7})   // worst case: wide and misaligned
    ->ArgNames({"width", "bit_offset"});

/** The safety tax: checked codec vs raw hand-rolled shift/mask. */
void BM_parse_handrolled_raw(benchmark::State& state) {
    Rng rng(9);
    std::vector<uint8_t> wire(20);
    interop::generate_packet(rng, wire);
    uint64_t acc = 0;
    for (auto _ : state) {
        // What C programmers write: offsets burned into the code.
        acc += static_cast<uint64_t>(wire[0] >> 4);            // version
        acc += static_cast<uint64_t>(wire[8]);                 // ttl
        acc += (static_cast<uint64_t>(wire[2]) << 8) | wire[3];// length
        acc += (static_cast<uint64_t>(wire[16]) << 24) |
               (static_cast<uint64_t>(wire[17]) << 16) |
               (static_cast<uint64_t>(wire[18]) << 8) | wire[19];
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_parse_handrolled_raw);

void BM_parse_codec_precomputed(benchmark::State& state) {
    const RecordCodec& codec = interop::packet_codec();
    Rng rng(9);
    std::vector<uint8_t> wire(20);
    interop::generate_packet(rng, wire);
    FieldLayout version = codec.layout().field("version").value();
    FieldLayout ttl = codec.layout().field("ttl").value();
    FieldLayout length = codec.layout().field("total_length").value();
    FieldLayout dst = codec.layout().field("dst_addr").value();
    uint64_t acc = 0;
    for (auto _ : state) {
        acc += codec.read_field(wire, version);
        acc += codec.read_field(wire, ttl);
        acc += codec.read_field(wire, length);
        acc += codec.read_field(wire, dst);
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_parse_codec_precomputed);

void BM_parse_codec_by_name(benchmark::State& state) {
    const RecordCodec& codec = interop::packet_codec();
    Rng rng(9);
    std::vector<uint8_t> wire(20);
    interop::generate_packet(rng, wire);
    uint64_t acc = 0;
    for (auto _ : state) {
        acc += codec.read(wire, "version").value();
        acc += codec.read(wire, "ttl").value();
        acc += codec.read(wire, "total_length").value();
        acc += codec.read(wire, "dst_addr").value();
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_parse_codec_by_name);

}  // namespace
}  // namespace bitc::bench

BENCHMARK_MAIN();
