/**
 * @file
 * Shared workload kernels for the F1/F3 experiments: each exists as a
 * BitC source function and as a semantically identical native C++
 * function, so VM-vs-native factors compare the same algorithm.
 *
 * Kernels (the "systems code" shapes the paper's audience means):
 *  - checksum: strided sum over a buffer (packet/page checksumming);
 *  - sieve:    Sieve of Eratosthenes (branchy bit-ish loops);
 *  - hash:     open-addressing hash-table churn (pointer-free lookup
 *              structure, the kernel data structure workhorse).
 */
#ifndef BITC_BENCH_KERNELS_HPP
#define BITC_BENCH_KERNELS_HPP

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace bitc::bench {

/** BitC source defining checksum/sieve/hash entry points. */
inline const std::string&
kernel_source()
{
    static const std::string* source = new std::string(R"bitc(
(define (fill a : (array int64 4096)) : unit
  (let ((i 0))
    (while (< i 4096)
      (invariant (>= i 0)) (invariant (<= i 4096))
      (array-set! a i (bitand (* i 2654435761) 1048575))
      (set! i (+ i 1)))))

(define (checksum rounds : int64) : int64
  (require (>= rounds 0))
  (let ((a (array-make 4096 0)) (acc 0) (r 0))
    (fill a)
    (while (< r rounds)
      (let ((i 0))
        (while (< i 4096)
          (invariant (>= i 0)) (invariant (<= i 4096))
          (set! acc (bitand (+ acc (array-ref a i)) 4294967295))
          (set! i (+ i 1))))
      (set! r (+ r 1)))
    acc))

(define (sieve limit : int64) : int64
  (require (>= limit 2)) (require (<= limit 65536))
  (let ((flags (array-make limit 1)) (i 2) (count 0))
    (while (< i limit)
      (invariant (>= i 0))
      (if (== (array-ref flags i) 1)
          (let ((j (* i i)))
            (while (< j limit)
              (invariant (>= j 0))
              (array-set! flags j 0)
              (set! j (+ j i))))
          (unit))
      (set! i (+ i 1)))
    (set! i 2)
    (while (< i limit)
      (invariant (>= i 0))
      (if (== (array-ref flags i) 1) (set! count (+ count 1)) (unit))
      (set! i (+ i 1)))
    count))

; Open-addressing hash table over two parallel arrays (keys, values);
; slot 0 of keys is reserved as "empty" marker 0.
(define (hash-churn ops : int64) : int64
  (require (>= ops 0)) (require (<= ops 4096)) ; half load factor max
  (let ((keys (array-make 8192 0))
        (vals (array-make 8192 0))
        (k 1) (probes 0))
    (while (<= k ops)
      (invariant (>= k 0))
      ; insert key k
      (let ((h (bitand (>> (* k 2654435761) 8) 8191)) (placed 0))
        (while (== placed 0)
          (invariant (>= h 0)) (invariant (< h 8192))
          (if (== (array-ref keys h) 0)
              (begin
                (array-set! keys h k)
                (array-set! vals h (* k 3))
                (set! placed 1))
              (begin
                (set! h (bitand (+ h 1) 8191))
                (set! probes (+ probes 1)))))
        (unit))
      ; look up an earlier key
      (let ((q (+ 1 (bitand k 1023))))
        (let ((h (bitand (>> (* q 2654435761) 8) 8191)) (found 0))
          (while (== found 0)
            (invariant (>= h 0)) (invariant (< h 8192))
            (if (== (array-ref keys h) q)
                (set! found 1)
                (if (== (array-ref keys h) 0)
                    (set! found -1)
                    (set! h (bitand (+ h 1) 8191))))
            (if (== found 0) (set! probes (+ probes 1)) (unit)))
          (unit)))
      (set! k (+ k 1)))
    probes))
)bitc");
    return *source;
}

// --- Native twins ---------------------------------------------------------

inline int64_t
native_checksum(int64_t rounds)
{
    std::vector<int64_t> a(4096);
    for (int64_t i = 0; i < 4096; ++i) {
        a[static_cast<size_t>(i)] =
            static_cast<int64_t>((i * 2654435761ll) & 1048575);
    }
    int64_t acc = 0;
    for (int64_t r = 0; r < rounds; ++r) {
        for (int64_t i = 0; i < 4096; ++i) {
            acc = (acc + a[static_cast<size_t>(i)]) & 4294967295ll;
        }
    }
    return acc;
}

inline int64_t
native_sieve(int64_t limit)
{
    std::vector<int64_t> flags(static_cast<size_t>(limit), 1);
    for (int64_t i = 2; i < limit; ++i) {
        if (flags[static_cast<size_t>(i)] == 1) {
            for (int64_t j = i * i; j < limit; j += i) {
                flags[static_cast<size_t>(j)] = 0;
            }
        }
    }
    int64_t count = 0;
    for (int64_t i = 2; i < limit; ++i) {
        count += flags[static_cast<size_t>(i)];
    }
    return count;
}

inline int64_t
native_hash_churn(int64_t ops)
{
    std::vector<int64_t> keys(8192, 0);
    std::vector<int64_t> vals(8192, 0);
    int64_t probes = 0;
    for (int64_t k = 1; k <= ops; ++k) {
        int64_t h = ((k * 2654435761ll) >> 8) & 8191;
        while (true) {
            if (keys[static_cast<size_t>(h)] == 0) {
                keys[static_cast<size_t>(h)] = k;
                vals[static_cast<size_t>(h)] = k * 3;
                break;
            }
            h = (h + 1) & 8191;
            ++probes;
        }
        int64_t q = 1 + (k & 1023);
        h = ((q * 2654435761ll) >> 8) & 8191;
        int64_t found = 0;
        while (found == 0) {
            if (keys[static_cast<size_t>(h)] == q) {
                found = 1;
            } else if (keys[static_cast<size_t>(h)] == 0) {
                found = -1;
            } else {
                h = (h + 1) & 8191;
            }
            if (found == 0) ++probes;
        }
    }
    return probes;
}

// --- Native twins with explicit bounds checks -----------------------------
//
// What a *compiled* safe systems language emits: the same loops with a
// range check per access.  This is where the paper's contested
// "1.5x-2x" band is actually measurable — the VM rows bury it under
// interpreter dispatch.

[[noreturn]] inline void
bounds_trap()
{
    fprintf(stderr, "native bounds trap\n");
    abort();
}

inline int64_t
checked_get(const std::vector<int64_t>& v, int64_t i)
{
    if (i < 0 || i >= static_cast<int64_t>(v.size())) bounds_trap();
    return v[static_cast<size_t>(i)];
}

inline void
checked_set(std::vector<int64_t>& v, int64_t i, int64_t x)
{
    if (i < 0 || i >= static_cast<int64_t>(v.size())) bounds_trap();
    v[static_cast<size_t>(i)] = x;
}

inline int64_t
native_checksum_checked(int64_t rounds)
{
    std::vector<int64_t> a(4096);
    for (int64_t i = 0; i < 4096; ++i) {
        checked_set(a, i, static_cast<int64_t>((i * 2654435761ll) &
                                               1048575));
    }
    int64_t acc = 0;
    for (int64_t r = 0; r < rounds; ++r) {
        for (int64_t i = 0; i < 4096; ++i) {
            acc = (acc + checked_get(a, i)) & 4294967295ll;
        }
    }
    return acc;
}

inline int64_t
native_sieve_checked(int64_t limit)
{
    std::vector<int64_t> flags(static_cast<size_t>(limit), 1);
    for (int64_t i = 2; i < limit; ++i) {
        if (checked_get(flags, i) == 1) {
            for (int64_t j = i * i; j < limit; j += i) {
                checked_set(flags, j, 0);
            }
        }
    }
    int64_t count = 0;
    for (int64_t i = 2; i < limit; ++i) {
        count += checked_get(flags, i);
    }
    return count;
}

inline int64_t
native_hash_churn_checked(int64_t ops)
{
    std::vector<int64_t> keys(8192, 0);
    std::vector<int64_t> vals(8192, 0);
    int64_t probes = 0;
    for (int64_t k = 1; k <= ops; ++k) {
        int64_t h = ((k * 2654435761ll) >> 8) & 8191;
        while (true) {
            if (checked_get(keys, h) == 0) {
                checked_set(keys, h, k);
                checked_set(vals, h, k * 3);
                break;
            }
            h = (h + 1) & 8191;
            ++probes;
        }
        int64_t q = 1 + (k & 1023);
        h = ((q * 2654435761ll) >> 8) & 8191;
        int64_t found = 0;
        while (found == 0) {
            if (checked_get(keys, h) == q) {
                found = 1;
            } else if (checked_get(keys, h) == 0) {
                found = -1;
            } else {
                h = (h + 1) & 8191;
            }
            if (found == 0) ++probes;
        }
    }
    return probes;
}

}  // namespace bitc::bench

#endif  // BITC_BENCH_KERNELS_HPP
