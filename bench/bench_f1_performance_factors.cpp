/**
 * @file
 * Experiment F1 — "Factors of 1.5x to 2x in performance don't matter."
 *
 * Runs three systems kernels (checksum, sieve, hash-table churn) as
 * native C++ and on the VM in progressively more "managed" shapes:
 *
 *   native                — the C baseline;
 *   vm/unboxed/nochecks   — transparent compiled representation,
 *                           verifier discharged every check;
 *   vm/unboxed/checked    — same, all safety checks forced on;
 *   vm/boxed/gc           — uniform boxed values on a generational GC.
 *
 * The paper's claim reads off the ratio columns: the step from
 * "nochecks" to "checked" is the small safety tax (the 1.5-2x band
 * arguments fight over), while boxing+GC costs an integer factor —
 * which is why representation (F2), not checks, is the fight worth
 * having.  Interpreter dispatch itself adds a large constant factor to
 * every VM row; compare VM rows against each other for the paper's
 * ratios, and against native for the overall gap.
 */
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "kernels.hpp"

namespace bitc::bench {
namespace {

constexpr int64_t kChecksumRounds = 20;
constexpr int64_t kSieveLimit = 20000;
constexpr int64_t kHashOps = 4000;

// --- Native rows ---------------------------------------------------------

void BM_native_checksum(benchmark::State& state) {
    int64_t result = 0;
    for (auto _ : state) {
        result = native_checksum(kChecksumRounds);
        benchmark::DoNotOptimize(result);
    }
    state.counters["result"] = static_cast<double>(result);
}
BENCHMARK(BM_native_checksum);

void BM_native_sieve(benchmark::State& state) {
    int64_t result = 0;
    for (auto _ : state) {
        result = native_sieve(kSieveLimit);
        benchmark::DoNotOptimize(result);
    }
    state.counters["result"] = static_cast<double>(result);
}
BENCHMARK(BM_native_sieve);

void BM_native_hash(benchmark::State& state) {
    int64_t result = 0;
    for (auto _ : state) {
        result = native_hash_churn(kHashOps);
        benchmark::DoNotOptimize(result);
    }
    state.counters["result"] = static_cast<double>(result);
}
BENCHMARK(BM_native_hash);

// Native with explicit bounds checks: the compiled safety tax — this
// is the row pair where the paper's contested 1.5-2x band lives.

void BM_native_checksum_checked(benchmark::State& state) {
    int64_t result = 0;
    for (auto _ : state) {
        result = native_checksum_checked(kChecksumRounds);
        benchmark::DoNotOptimize(result);
    }
    state.counters["result"] = static_cast<double>(result);
}
BENCHMARK(BM_native_checksum_checked);

void BM_native_sieve_checked(benchmark::State& state) {
    int64_t result = 0;
    for (auto _ : state) {
        result = native_sieve_checked(kSieveLimit);
        benchmark::DoNotOptimize(result);
    }
    state.counters["result"] = static_cast<double>(result);
}
BENCHMARK(BM_native_sieve_checked);

void BM_native_hash_checked(benchmark::State& state) {
    int64_t result = 0;
    for (auto _ : state) {
        result = native_hash_churn_checked(kHashOps);
        benchmark::DoNotOptimize(result);
    }
    state.counters["result"] = static_cast<double>(result);
}
BENCHMARK(BM_native_hash_checked);

// --- VM rows ---------------------------------------------------------------

struct Variant {
    const char* label;
    bool elide_checks;
    vm::VmConfig config;
};

Variant variant_nochecks() {
    vm::VmConfig config;
    config.heap_words = 1 << 20;
    return {"unboxed_nochecks", true, config};
}

Variant variant_checked() {
    vm::VmConfig config;
    config.heap_words = 1 << 20;
    return {"unboxed_checked", false, config};
}

Variant variant_boxed_gc() {
    vm::VmConfig config;
    config.mode = vm::ValueMode::kBoxed;
    config.heap = vm::HeapPolicy::kGenerational;
    config.heap_words = 1 << 21;
    return {"boxed_gc", false, config};
}

void run_vm_kernel(benchmark::State& state, const Variant& variant,
                   const char* fn, int64_t arg) {
    vm::BuildOptions options;
    options.compiler.elide_proved_checks = variant.elide_checks;
    auto built = must_build(kernel_source(), options);
    auto vm = built->instantiate(variant.config);
    int64_t result = 0;
    for (auto _ : state) {
        result = must_call(*vm, fn, {arg});
        benchmark::DoNotOptimize(result);
        maybe_reset_region(*vm);
    }
    state.counters["result"] = static_cast<double>(result);
    state.counters["vm_instructions"] = static_cast<double>(
        vm->instructions_executed());
    state.counters["heap_allocs"] =
        static_cast<double>(vm->heap().stats().allocations);
}

void BM_vm(benchmark::State& state, Variant variant, const char* fn,
           int64_t arg) {
    run_vm_kernel(state, variant, fn, arg);
}

BENCHMARK_CAPTURE(BM_vm, checksum_unboxed_nochecks, variant_nochecks(),
                  "checksum", kChecksumRounds);
BENCHMARK_CAPTURE(BM_vm, checksum_unboxed_checked, variant_checked(),
                  "checksum", kChecksumRounds);
BENCHMARK_CAPTURE(BM_vm, checksum_boxed_gc, variant_boxed_gc(),
                  "checksum", kChecksumRounds);

BENCHMARK_CAPTURE(BM_vm, sieve_unboxed_nochecks, variant_nochecks(),
                  "sieve", kSieveLimit);
BENCHMARK_CAPTURE(BM_vm, sieve_unboxed_checked, variant_checked(),
                  "sieve", kSieveLimit);
BENCHMARK_CAPTURE(BM_vm, sieve_boxed_gc, variant_boxed_gc(), "sieve",
                  kSieveLimit);

BENCHMARK_CAPTURE(BM_vm, hash_unboxed_nochecks, variant_nochecks(),
                  "hash-churn", kHashOps);
BENCHMARK_CAPTURE(BM_vm, hash_unboxed_checked, variant_checked(),
                  "hash-churn", kHashOps);
BENCHMARK_CAPTURE(BM_vm, hash_boxed_gc, variant_boxed_gc(),
                  "hash-churn", kHashOps);

}  // namespace
}  // namespace bitc::bench

BENCHMARK_MAIN();
