/**
 * @file
 * Experiment F2 — "Boxed representation can be optimised away."
 *
 * Measures the same array traversals over:
 *   unboxed        — contiguous int64 storage (the C layout);
 *   boxed_fresh    — pointer-per-element boxes, allocated in access
 *                    order (the best case a perfect allocator gives);
 *   boxed_scattered— the same boxes after heap aging randomises their
 *                    placement (the steady-state of long-running
 *                    systems code).
 *
 * The paper's claim reads off the rows: even *perfectly placed* boxes
 * cost (extra indirection + 3x memory), and aged boxes cost several
 * times more — a gap allocation-order locality cannot close, because
 * systems processes run for months, not benchmarks.  The decomposition
 * rows separate the indirection cost from the locality cost.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <numeric>

#include "repr/boxed_value.hpp"
#include "support/rng.hpp"

namespace bitc::bench {
namespace {

using repr::BoxedI64Array;
using repr::UnboxedI64Array;

constexpr size_t kSmall = 1 << 12;   // fits L1/L2
constexpr size_t kLarge = 1 << 20;   // streams through LLC/memory

template <typename Array>
int64_t sum_all(const Array& a) {
    int64_t acc = 0;
    for (size_t i = 0; i < a.size(); ++i) acc += a.get(i);
    return acc;
}

template <typename Array>
int64_t prefix_scan(Array& a) {
    int64_t acc = 0;
    for (size_t i = 0; i < a.size(); ++i) {
        acc += a.get(i);
        a.set(i, acc);
    }
    return acc;
}

template <typename Array>
void fill_pattern(Array& a) {
    for (size_t i = 0; i < a.size(); ++i) {
        a.set(i, static_cast<int64_t>((i * 2654435761ull) & 0xffff));
    }
}

// --- sum -------------------------------------------------------------------

void BM_sum_unboxed(benchmark::State& state) {
    UnboxedI64Array a(static_cast<size_t>(state.range(0)));
    fill_pattern(a);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sum_all(a));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
    state.counters["bytes/elem"] =
        static_cast<double>(UnboxedI64Array::bytes_per_element());
}
BENCHMARK(BM_sum_unboxed)->Arg(kSmall)->Arg(kLarge);

void BM_sum_boxed_fresh(benchmark::State& state) {
    Rng rng(1);
    BoxedI64Array a(static_cast<size_t>(state.range(0)),
                    /*scatter=*/false, rng);
    fill_pattern(a);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sum_all(a));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
    state.counters["bytes/elem"] =
        static_cast<double>(BoxedI64Array::bytes_per_element());
}
BENCHMARK(BM_sum_boxed_fresh)->Arg(kSmall)->Arg(kLarge);

void BM_sum_boxed_scattered(benchmark::State& state) {
    Rng rng(2);
    BoxedI64Array a(static_cast<size_t>(state.range(0)),
                    /*scatter=*/true, rng);
    fill_pattern(a);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sum_all(a));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
    state.counters["bytes/elem"] =
        static_cast<double>(BoxedI64Array::bytes_per_element());
}
BENCHMARK(BM_sum_boxed_scattered)->Arg(kSmall)->Arg(kLarge);

// --- read-modify-write scan -------------------------------------------------

void BM_scan_unboxed(benchmark::State& state) {
    UnboxedI64Array a(static_cast<size_t>(state.range(0)));
    for (auto _ : state) {
        fill_pattern(a);
        benchmark::DoNotOptimize(prefix_scan(a));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_scan_unboxed)->Arg(kLarge);

void BM_scan_boxed_fresh(benchmark::State& state) {
    Rng rng(3);
    BoxedI64Array a(static_cast<size_t>(state.range(0)), false, rng);
    for (auto _ : state) {
        fill_pattern(a);
        benchmark::DoNotOptimize(prefix_scan(a));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_scan_boxed_fresh)->Arg(kLarge);

void BM_scan_boxed_scattered(benchmark::State& state) {
    Rng rng(4);
    BoxedI64Array a(static_cast<size_t>(state.range(0)), true, rng);
    for (auto _ : state) {
        fill_pattern(a);
        benchmark::DoNotOptimize(prefix_scan(a));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_scan_boxed_scattered)->Arg(kLarge);

// --- binary search (pointer-chase amplification) ----------------------------

template <typename Array>
int64_t search_many(const Array& a, size_t queries) {
    // a holds sorted values 0, 2, 4, ...; binary-search odd targets.
    int64_t misses = 0;
    Rng rng(5);
    for (size_t q = 0; q < queries; ++q) {
        int64_t target = static_cast<int64_t>(
            rng.next_below(2 * a.size()) | 1);
        size_t lo = 0;
        size_t hi = a.size();
        while (lo < hi) {
            size_t mid = (lo + hi) / 2;
            if (a.get(mid) < target) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        misses += (lo < a.size() && a.get(lo) == target) ? 0 : 1;
    }
    return misses;
}

void BM_search_unboxed(benchmark::State& state) {
    UnboxedI64Array a(static_cast<size_t>(state.range(0)));
    for (size_t i = 0; i < a.size(); ++i) {
        a.set(i, static_cast<int64_t>(2 * i));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(search_many(a, 4096));
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_search_unboxed)->Arg(kLarge);

void BM_search_boxed_scattered(benchmark::State& state) {
    Rng rng(6);
    BoxedI64Array a(static_cast<size_t>(state.range(0)), true, rng);
    for (size_t i = 0; i < a.size(); ++i) {
        a.set(i, static_cast<int64_t>(2 * i));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(search_many(a, 4096));
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_search_boxed_scattered)->Arg(kLarge);

}  // namespace
}  // namespace bitc::bench

BENCHMARK_MAIN();
