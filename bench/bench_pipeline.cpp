/**
 * @file
 * Scaling sweep for the CSP packet-pipeline server: throughput at 1,
 * 2 and 4 workers per stage, legacy vs migrated (BitC) stage
 * implementations, over two workload shapes:
 *
 *  - "lookup": each classify call pays a simulated blocking
 *    route-table miss (25us).  This is the latency-bound shape a
 *    worker fleet exists for — extra workers overlap the waits, so
 *    throughput scales with worker count even on a single core.  The
 *    1->4-worker speedup on this shape is the enforced budget
 *    (>= 2.0x): it measures the concurrency machinery, not the host's
 *    core count.
 *  - "cpu": each checksum call sums a 4 KiB payload window, no
 *    simulated latency.  Pure compute scales only with physical
 *    parallelism, so these rows are informational — on a single-core
 *    host they stay flat and that is the expected reading, recorded
 *    in EXPERIMENTS.md section P.
 *
 * Emits BENCH_pipeline.json; exits nonzero when any enforced scaling
 * row misses the floor.  --smoke shrinks the sweep to a second or so
 * and skips enforcement (used by the tier-1 ctest entry).
 *
 * Usage: bench_pipeline [--smoke] [OUTPUT.json]
 */
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "concurrency/pipeline.hpp"

namespace bitc::bench {
namespace {

constexpr double kScalingFloor = 2.0;
constexpr uint32_t kLookupUs = 25;
constexpr size_t kPayloadBytes = 4096;

struct Row {
    const char* impl;      ///< "legacy" or "bitc".
    const char* workload;  ///< "lookup" or "cpu".
    size_t workers = 0;
    size_t packets = 0;
    double elapsed_ms = 0;
    double pkts_per_sec = 0;
    uint64_t blocked_ns = 0;  ///< summed over stages, median run.
};

struct Sweep {
    int repeats;
    size_t lookup_packets;
    size_t cpu_packets_legacy;
    size_t cpu_packets_bitc;
    bool enforce;
};

/** Runs one configuration @p repeats times; keeps the median-time run. */
Row
measure(const char* impl, const char* workload, size_t workers,
        size_t packets, int repeats, bool migrated)
{
    conc::PipelineConfig config;
    config.workers.fill(workers);
    config.migrated = migrated;
    config.seed = 7;
    if (std::strcmp(workload, "lookup") == 0) {
        config.lookup_latency_us = kLookupUs;
        // Small batches keep every classify worker fed: one giant
        // batch would serialise the sleeps on a single worker again.
        config.batch_packets = 4;
        config.queue_capacity = 32;
    } else {
        config.payload_bytes = kPayloadBytes;
    }

    auto pipeline = conc::PacketPipeline::create(config);
    if (!pipeline.is_ok()) {
        fprintf(stderr, "pipeline create failed: %s\n",
                pipeline.status().to_string().c_str());
        abort();
    }

    std::vector<conc::PipelineReport> reports;
    for (int r = 0; r < repeats; ++r) {
        auto report = pipeline.value()->run(packets);
        if (!report.is_ok() || !report.value().conserved()) {
            fprintf(stderr, "pipeline run failed (%s/%s/%zu)\n", impl,
                    workload, workers);
            abort();
        }
        reports.push_back(report.value());
    }
    std::sort(reports.begin(), reports.end(),
              [](const conc::PipelineReport& a,
                 const conc::PipelineReport& b) {
                  return a.elapsed_ms < b.elapsed_ms;
              });
    const conc::PipelineReport& median = reports[reports.size() / 2];

    Row row;
    row.impl = impl;
    row.workload = workload;
    row.workers = workers;
    row.packets = packets;
    row.elapsed_ms = median.elapsed_ms;
    row.pkts_per_sec = median.packets_per_sec;
    for (const auto& stage : median.stages) {
        row.blocked_ns += stage.blocked_ns;
    }
    return row;
}

/** pkts/sec of the (impl, workload, workers) row; 0 when absent. */
double
throughput_of(const std::vector<Row>& rows, const char* impl,
              const char* workload, size_t workers)
{
    for (const Row& row : rows) {
        if (std::strcmp(row.impl, impl) == 0 &&
            std::strcmp(row.workload, workload) == 0 &&
            row.workers == workers) {
            return row.pkts_per_sec;
        }
    }
    return 0;
}

}  // namespace
}  // namespace bitc::bench

int
main(int argc, char** argv)
{
    using namespace bitc::bench;

    bool smoke = false;
    const char* out_path = "BENCH_pipeline.json";
    for (int a = 1; a < argc; ++a) {
        if (std::strcmp(argv[a], "--smoke") == 0) {
            smoke = true;
        } else {
            out_path = argv[a];
        }
    }

    // The smoke sweep proves the harness end to end in about a
    // second; the full sweep sizes each shape so the median is stable
    // on a small host.
    Sweep sweep = smoke ? Sweep{1, 400, 2000, 800, false}
                        : Sweep{5, 2000, 12000, 4000, true};

    const size_t worker_counts[] = {1, 2, 4};
    std::vector<Row> rows;
    for (bool migrated : {false, true}) {
        const char* impl = migrated ? "bitc" : "legacy";
        size_t cpu_packets = migrated ? sweep.cpu_packets_bitc
                                      : sweep.cpu_packets_legacy;
        for (size_t w : worker_counts) {
            rows.push_back(measure(impl, "lookup", w,
                                   sweep.lookup_packets,
                                   sweep.repeats, migrated));
            rows.push_back(measure(impl, "cpu", w, cpu_packets,
                                   sweep.repeats, migrated));
        }
    }

    for (const Row& row : rows) {
        printf("%-7s %-7s workers=%zu  %8zu pkts  %9.3f ms  "
               "%10.0f pkt/s  blocked %8.3f ms\n",
               row.impl, row.workload, row.workers, row.packets,
               row.elapsed_ms, row.pkts_per_sec,
               static_cast<double>(row.blocked_ns) / 1e6);
    }

    // Enforced: the latency-bound shape must scale 1 -> 4 workers.
    bool within = true;
    double scaling[2] = {0, 0};
    const char* impls[2] = {"legacy", "bitc"};
    for (int i = 0; i < 2; ++i) {
        double one = throughput_of(rows, impls[i], "lookup", 1);
        double four = throughput_of(rows, impls[i], "lookup", 4);
        scaling[i] = one > 0 ? four / one : 0;
        printf("%-7s lookup scaling 1->4 workers: %.2fx "
               "(floor %.1fx)%s\n",
               impls[i], scaling[i], kScalingFloor,
               smoke ? " [smoke: not enforced]" : "");
        if (!smoke && scaling[i] < kScalingFloor) within = false;
    }
    if (!within) printf("SCALING UNDER FLOOR\n");

    FILE* out = fopen(out_path, "w");
    if (out == nullptr) {
        fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    char stamp[64];
    std::time_t now = std::time(nullptr);
    std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ",
                  std::gmtime(&now));
    fprintf(out, "{\n");
    fprintf(out, "  \"bench\": \"pipeline\",\n");
    fprintf(out, "  \"date_utc\": \"%s\",\n", stamp);
    fprintf(out, "  \"repeats\": %d,\n", sweep.repeats);
    fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    fprintf(out, "  \"lookup_latency_us\": %u,\n", kLookupUs);
    fprintf(out, "  \"payload_bytes\": %zu,\n", kPayloadBytes);
    fprintf(out, "  \"scaling_floor\": %.1f,\n", kScalingFloor);
    fprintf(out, "  \"lookup_scaling_1_to_4\": "
                 "{\"legacy\": %.3f, \"bitc\": %.3f},\n",
            scaling[0], scaling[1]);
    fprintf(out, "  \"within_budget\": %s,\n",
            within ? "true" : "false");
    fprintf(out, "  \"rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row& row = rows[i];
        fprintf(out,
                "    {\"impl\": \"%s\", \"workload\": \"%s\", "
                "\"workers\": %zu, \"packets\": %zu, "
                "\"elapsed_ms\": %.3f, \"pkts_per_sec\": %.0f, "
                "\"blocked_ns\": %llu}%s\n",
                row.impl, row.workload, row.workers, row.packets,
                row.elapsed_ms, row.pkts_per_sec,
                static_cast<unsigned long long>(row.blocked_ns),
                i + 1 < rows.size() ? "," : "");
    }
    fprintf(out, "  ]\n}\n");
    fclose(out);
    printf("wrote %s\n", out_path);
    return within ? 0 : 1;
}
