/**
 * @file
 * Experiment C4 — "Managing shared state."
 *
 * Crosses the four ledger disciplines (coarse lock, fine ordered
 * locks, STM, actor/message-passing) with thread counts on two
 * workloads:
 *   transfer — short conflicting critical sections (the composition
 *              example made hot);
 *   mixed    — transfers plus whole-ledger totals (the operation that
 *              breaks lock composition and showcases STM snapshots).
 *
 * Read the rows as the paper's trade space: coarse serialises but
 * never scales; fine scales transfers but total() locks the world;
 * STM composes everything and pays in aborts (counter abort_pct);
 * the actor serialises through a queue, buying isolation with latency.
 * Plus a low-level row: uncontended vs contended atomic increments,
 * the hardware floor every discipline builds on.
 */
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>

#include "concurrency/bank.hpp"
#include "support/rng.hpp"

namespace bitc::bench {
namespace {

using namespace bitc::conc;

constexpr size_t kAccounts = 64;
constexpr int64_t kInitial = 10000;

enum Discipline : int64_t {
    kCoarse,
    kFine,
    kStm,
    kActor,
};

std::unique_ptr<Bank> make_bank(int64_t discipline) {
    switch (discipline) {
      case kCoarse:
        return std::make_unique<CoarseLockBank>(kAccounts, kInitial);
      case kFine:
        return std::make_unique<FineLockBank>(kAccounts, kInitial);
      case kStm:
        return std::make_unique<StmBank>(kAccounts, kInitial);
      case kActor:
        return std::make_unique<ActorBank>(kAccounts, kInitial);
    }
    return nullptr;
}

// One shared bank per benchmark run; threads hammer it together.
std::unique_ptr<Bank> g_bank;

void BM_transfers(benchmark::State& state) {
    if (state.thread_index() == 0) {
        g_bank = make_bank(state.range(0));
    }
    Rng rng(100 + static_cast<uint64_t>(state.thread_index()));
    for (auto _ : state) {
        size_t from = rng.next_below(kAccounts);
        size_t to = rng.next_below(kAccounts);
        if (from == to) to = (to + 1) % kAccounts;
        benchmark::DoNotOptimize(g_bank->transfer(from, to, 1));
    }
    if (state.thread_index() == 0) {
        state.counters["total_ok"] =
            g_bank->total() ==
                    static_cast<int64_t>(kAccounts) * kInitial
                ? 1.0
                : 0.0;
        if (auto* stm = dynamic_cast<StmBank*>(g_bank.get())) {
            StmStats stats = stm->stm().stats();
            state.counters["abort_pct"] =
                100.0 * static_cast<double>(stats.aborts) /
                static_cast<double>(stats.commits + stats.aborts + 1);
        }
        g_bank.reset();
    }
}
BENCHMARK(BM_transfers)
    ->Arg(kCoarse)->Arg(kFine)->Arg(kStm)->Arg(kActor)
    ->ArgName("bank")
    ->Threads(1)->Threads(2)->Threads(4)
    ->UseRealTime();

void BM_mixed_with_totals(benchmark::State& state) {
    if (state.thread_index() == 0) {
        g_bank = make_bank(state.range(0));
    }
    Rng rng(200 + static_cast<uint64_t>(state.thread_index()));
    int64_t observed = 0;
    for (auto _ : state) {
        if (rng.next_bool(0.1)) {
            observed = g_bank->total();  // the composition-hostile op
            benchmark::DoNotOptimize(observed);
        } else {
            size_t from = rng.next_below(kAccounts);
            size_t to = rng.next_below(kAccounts);
            if (from == to) to = (to + 1) % kAccounts;
            benchmark::DoNotOptimize(g_bank->transfer(from, to, 1));
        }
    }
    if (state.thread_index() == 0) {
        state.counters["total_ok"] =
            g_bank->total() ==
                    static_cast<int64_t>(kAccounts) * kInitial
                ? 1.0
                : 0.0;
        g_bank.reset();
    }
}
BENCHMARK(BM_mixed_with_totals)
    ->Arg(kCoarse)->Arg(kFine)->Arg(kStm)->Arg(kActor)
    ->ArgName("bank")
    ->Threads(1)->Threads(2)->Threads(4)
    ->UseRealTime();

// --- Hardware floor ---------------------------------------------------------

std::atomic<uint64_t> g_counter{0};

void BM_atomic_increment(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            g_counter.fetch_add(1, std::memory_order_relaxed));
    }
}
BENCHMARK(BM_atomic_increment)->Threads(1)->Threads(4)->UseRealTime();

/** STM's equivalent of the counter: a one-var transaction. */
void BM_stm_counter(benchmark::State& state) {
    static Stm stm;
    static TVar counter(0);
    for (auto _ : state) {
        atomically(stm, [&](Txn& txn) {
            txn.write(counter, txn.read(counter) + 1);
        });
    }
    if (state.thread_index() == 0) {
        state.counters["aborts"] =
            static_cast<double>(stm.stats().aborts);
    }
}
BENCHMARK(BM_stm_counter)->Threads(1)->Threads(4)->UseRealTime();

}  // namespace
}  // namespace bitc::bench

BENCHMARK_MAIN();
