/**
 * @file
 * Experiment F4 — "The legacy problem is insurmountable."
 *
 * Sweeps the packet pipeline from all-legacy to all-migrated,
 * including the pathological interleaving, plus raw FFI call overhead.
 *
 * The paper's counter-claim reads off the rows: per-packet cost grows
 * smoothly with the number of migrated stages (no cliff), contiguous
 * migration beats interleaved (fewer representation crossings —
 * migrate along module boundaries), and every configuration computes
 * identical results (route_checksum counter) — so a C replacement can
 * be adopted one subsystem at a time.
 */
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "interop/migration.hpp"

namespace bitc::bench {

/** Native->native call baseline: what a C call costs. */
int64_t plain_add3(int64_t a, int64_t b, int64_t c);

namespace {

using interop::kStageCount;
using interop::MigrationConfig;
using interop::MigrationPipeline;

constexpr size_t kPacketsPerIteration = 2000;

void BM_pipeline(benchmark::State& state,
                 std::array<bool, kStageCount> migrated) {
    MigrationConfig config;
    config.migrated = migrated;
    auto pipeline = MigrationPipeline::create(config);
    if (!pipeline.is_ok()) {
        state.SkipWithError(pipeline.status().to_string().c_str());
        return;
    }
    uint64_t crossings = 0;
    uint64_t packets = 0;
    uint64_t route_checksum = 0;
    uint64_t seed = 1;
    for (auto _ : state) {
        Rng rng(seed);  // same stream every iteration & configuration
        auto report = pipeline.value()->run(kPacketsPerIteration, rng);
        if (!report.is_ok()) {
            state.SkipWithError(report.status().to_string().c_str());
            return;
        }
        crossings += report.value().boundary_crossings;
        packets += report.value().packets;
        route_checksum = report.value().route_checksum;
    }
    state.SetItemsProcessed(static_cast<int64_t>(packets));
    state.counters["crossings_per_pkt"] =
        packets > 0 ? static_cast<double>(crossings) /
                          static_cast<double>(packets)
                    : 0.0;
    state.counters["migrated_stages"] =
        static_cast<double>(config.migrated_count());
    state.counters["route_checksum"] =
        static_cast<double>(route_checksum);
}

BENCHMARK_CAPTURE(BM_pipeline, migrated_0of4_baseline,
                  std::array<bool, 4>{false, false, false, false});
BENCHMARK_CAPTURE(BM_pipeline, migrated_1of4_validate,
                  std::array<bool, 4>{true, false, false, false});
BENCHMARK_CAPTURE(BM_pipeline, migrated_2of4_contiguous,
                  std::array<bool, 4>{true, true, false, false});
BENCHMARK_CAPTURE(BM_pipeline, migrated_2of4_interleaved,
                  std::array<bool, 4>{true, false, true, false});
BENCHMARK_CAPTURE(BM_pipeline, migrated_3of4_contiguous,
                  std::array<bool, 4>{true, true, true, false});
BENCHMARK_CAPTURE(BM_pipeline, migrated_4of4_full,
                  std::array<bool, 4>{true, true, true, true});

// --- Raw boundary costs ------------------------------------------------------

void BM_call_native_direct(benchmark::State& state) {
    int64_t acc = 0;
    for (auto _ : state) {
        acc += plain_add3(acc, 1, 2);
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_call_native_direct);

/** VM->native FFI round trip (the managed-to-C direction). */
void BM_call_vm_to_native_ffi(benchmark::State& state) {
    vm::NativeRegistry registry;
    (void)registry.add("add3", 3,
                       [](std::span<const uint64_t> args)
                           -> Result<uint64_t> {
                           return args[0] + args[1] + args[2];
                       });
    vm::BuildOptions options;
    options.compiler.natives = &registry;
    auto built =
        must_build("(define (f a b c) (native add3 a b c))", options);
    vm::VmConfig config;
    config.heap_words = 1 << 12;
    auto vm = built->instantiate(config, &registry);
    for (auto _ : state) {
        benchmark::DoNotOptimize(must_call(*vm, "f", {1, 2, 3}));
    }
}
BENCHMARK(BM_call_vm_to_native_ffi);

/** C->VM entry (the legacy-calls-migrated direction, incl. marshalling). */
void BM_call_native_to_vm_entry(benchmark::State& state) {
    auto built = must_build("(define (g a b c) (+ a (+ b c)))");
    vm::VmConfig config;
    config.heap_words = 1 << 12;
    auto vm = built->instantiate(config);
    for (auto _ : state) {
        benchmark::DoNotOptimize(must_call(*vm, "g", {1, 2, 3}));
    }
}
BENCHMARK(BM_call_native_to_vm_entry);

}  // namespace
}  // namespace bitc::bench

// Defined out of line so the optimiser cannot inline the baseline away.
int64_t
bitc::bench::plain_add3(int64_t a, int64_t b, int64_t c)
{
    return a + b + c;
}

BENCHMARK_MAIN();
