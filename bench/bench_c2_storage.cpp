/**
 * @file
 * Experiment C2 — "Idiomatic manual storage management."
 *
 * One mutator, six storage policies, three workloads:
 *   churn        — sliding-window short-lived objects (packet buffers);
 *   binary_trees — GCBench-style deep allocation (tracing stress);
 *   graph        — long-lived mutating graph (write-barrier stress;
 *                  the region row honestly OOMs here — idiom mismatch).
 *
 * The paper's claim reads off the counters: manual and region win
 * predictability (p99/max pause ~0) and footprint; tracing wins
 * protocol-freedom at the cost of pauses and ~2-40x footprint
 * headroom; RC sits between, paying per-store barriers.  A systems
 * language must let the programmer pick *per subsystem* — which is
 * exactly what the shared ManagedHeap interface models.
 */
#include <benchmark/benchmark.h>

#include <memory>

#include "memory/generational_heap.hpp"
#include "memory/manual_heap.hpp"
#include "memory/markcompact_heap.hpp"
#include "memory/marksweep_heap.hpp"
#include "memory/mutator.hpp"
#include "memory/refcount_heap.hpp"
#include "memory/region_heap.hpp"
#include "memory/semispace_heap.hpp"

namespace bitc::bench {
namespace {

using namespace bitc::mem;

constexpr size_t kHeapWords = 1 << 21;

enum Policy : int64_t {
    kPolicyManual,
    kPolicyRegion,
    kPolicyRefCount,
    kPolicyMarkSweep,
    kPolicyMarkCompact,
    kPolicySemispace,
    kPolicyGenerational,
};

std::unique_ptr<ManagedHeap> make_policy(int64_t policy) {
    switch (policy) {
      case kPolicyManual:
        return std::make_unique<ManualHeap>(kHeapWords);
      case kPolicyRegion:
        return std::make_unique<RegionHeap>(kHeapWords);
      case kPolicyRefCount:
        return std::make_unique<RefCountHeap>(kHeapWords);
      case kPolicyMarkSweep:
        return std::make_unique<MarkSweepHeap>(kHeapWords / 4);
      case kPolicyMarkCompact:
        return std::make_unique<MarkCompactHeap>(kHeapWords / 4);
      case kPolicySemispace:
        return std::make_unique<SemispaceHeap>(kHeapWords / 2);
      case kPolicyGenerational:
        return std::make_unique<GenerationalHeap>(kHeapWords / 4,
                                                  kHeapWords / 32);
    }
    return nullptr;
}

void attach_counters(benchmark::State& state, const ManagedHeap& heap) {
    const auto& pauses = heap.pause_stats();
    state.counters["pauses"] = static_cast<double>(pauses.count());
    state.counters["p99_pause_us"] =
        pauses.count() > 0 ? pauses.percentile(0.99) / 1e3 : 0.0;
    state.counters["max_pause_us"] =
        pauses.count() > 0 ? pauses.max() / 1e3 : 0.0;
    state.counters["peak_KiB"] =
        static_cast<double>(heap.stats().peak_words_in_use) * 8 / 1024;
    state.counters["barrier_hits"] =
        static_cast<double>(heap.stats().barrier_hits);
}

void BM_churn(benchmark::State& state) {
    std::unique_ptr<ManagedHeap> heap;
    for (auto _ : state) {
        state.PauseTiming();
        heap = make_policy(state.range(0));
        Rng rng(42);
        state.ResumeTiming();
        auto report = run_churn(*heap, 200000, 256, 8, rng);
        if (!report.is_ok()) {
            state.SkipWithError(report.status().to_string().c_str());
            return;
        }
        benchmark::DoNotOptimize(report.value().check_value);
    }
    if (heap) attach_counters(state, *heap);
    state.SetItemsProcessed(state.iterations() * 200000);
}
BENCHMARK(BM_churn)
    ->Arg(kPolicyManual)->Arg(kPolicyRegion)->Arg(kPolicyRefCount)
    ->Arg(kPolicyMarkSweep)->Arg(kPolicyMarkCompact)->Arg(kPolicySemispace)
    ->Arg(kPolicyGenerational)
    ->ArgName("policy");

void BM_binary_trees(benchmark::State& state) {
    std::unique_ptr<ManagedHeap> heap;
    for (auto _ : state) {
        state.PauseTiming();
        heap = make_policy(state.range(0));
        state.ResumeTiming();
        auto report = run_binary_trees(*heap, 12, 20);
        if (!report.is_ok()) {
            state.SkipWithError(report.status().to_string().c_str());
            return;
        }
        benchmark::DoNotOptimize(report.value().check_value);
    }
    if (heap) attach_counters(state, *heap);
}
BENCHMARK(BM_binary_trees)
    ->Arg(kPolicyManual)->Arg(kPolicyRegion)->Arg(kPolicyRefCount)
    ->Arg(kPolicyMarkSweep)->Arg(kPolicyMarkCompact)->Arg(kPolicySemispace)
    ->Arg(kPolicyGenerational)
    ->ArgName("policy");

void BM_graph_mutation(benchmark::State& state) {
    std::unique_ptr<ManagedHeap> heap;
    bool oom = false;
    for (auto _ : state) {
        state.PauseTiming();
        heap = make_policy(state.range(0));
        Rng rng(43);
        state.ResumeTiming();
        auto report = run_graph_mutation(*heap, 2048, 4, 200000, rng);
        if (!report.is_ok()) {
            // The region policy legitimately exhausts here: mutation
            // garbage cannot be released without killing the live
            // graph. That *is* the finding (idioms must match
            // lifetimes), so report it as such rather than failing.
            oom = true;
            break;
        }
        benchmark::DoNotOptimize(report.value().check_value);
    }
    if (heap) attach_counters(state, *heap);
    state.counters["oom_idiom_mismatch"] = oom ? 1.0 : 0.0;
    if (oom) {
        state.SkipWithError(
            "region cannot express individual-death workloads "
            "(expected idiom mismatch; see oom_idiom_mismatch counter)");
    }
}
BENCHMARK(BM_graph_mutation)
    ->Arg(kPolicyManual)->Arg(kPolicyRegion)->Arg(kPolicyRefCount)
    ->Arg(kPolicyMarkSweep)->Arg(kPolicyMarkCompact)->Arg(kPolicySemispace)
    ->Arg(kPolicyGenerational)
    ->ArgName("policy");

}  // namespace
}  // namespace bitc::bench

BENCHMARK_MAIN();
