/**
 * @file
 * Experiment C1 — "Application constraint checking" must be affordable
 * and must pay for itself.
 *
 * Three question rows:
 *  - coverage: what fraction of runtime checks does the prover
 *    discharge on contract-annotated systems code? (counter
 *    proved_pct on the verify benchmarks);
 *  - cost: how does verification time scale with program size?
 *    (BM_verify_program_size sweep — the prover must stay interactive);
 *  - payoff: how much runtime do the discharged checks buy back?
 *    (checked vs unchecked kernel execution).
 */
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "kernels.hpp"
#include "lang/parser.hpp"
#include "lang/resolver.hpp"
#include "support/string_util.hpp"

namespace bitc::bench {
namespace {

/** Generates a program with @p functions annotated array workers. */
std::string generated_program(size_t functions) {
    std::string source;
    for (size_t f = 0; f < functions; ++f) {
        source += str_format(
            "(define (work%zu a : (array int64 64) n : int64) : int64\n"
            "  (require (>= n 0)) (require (<= n 64))\n"
            "  (let ((i 0) (acc 0))\n"
            "    (while (< i n)\n"
            "      (invariant (>= i 0)) (invariant (<= i n))\n"
            "      (set! acc (+ acc (array-ref a i)))\n"
            "      (set! i (+ i 1)))\n"
            "    acc))\n",
            f);
    }
    return source;
}

/** Verification wall-clock vs program size (functions). */
void BM_verify_program_size(benchmark::State& state) {
    std::string source =
        generated_program(static_cast<size_t>(state.range(0)));
    DiagnosticEngine diags;
    size_t proved = 0;
    size_t total = 0;
    for (auto _ : state) {
        state.PauseTiming();
        auto parsed = lang::parse_program(source, diags);
        (void)lang::resolve_program(parsed.value(), diags);
        auto typed = types::check_program(
            std::move(parsed).take(), diags);
        state.ResumeTiming();

        auto report = verify::verify_program(typed.value());
        proved = report.proved();
        total = report.total();
        benchmark::DoNotOptimize(report);
    }
    state.counters["functions"] = static_cast<double>(state.range(0));
    state.counters["obligations"] = static_cast<double>(total);
    state.counters["proved_pct"] =
        total > 0 ? 100.0 * static_cast<double>(proved) /
                        static_cast<double>(total)
                  : 0.0;
}
BENCHMARK(BM_verify_program_size)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

/** Coverage on the benchmark kernels (annotated systems code). */
void BM_verify_kernels(benchmark::State& state) {
    DiagnosticEngine diags;
    double proved_pct = 0;
    for (auto _ : state) {
        state.PauseTiming();
        auto parsed = lang::parse_program(kernel_source(), diags);
        (void)lang::resolve_program(parsed.value(), diags);
        auto typed = types::check_program(
            std::move(parsed).take(), diags);
        state.ResumeTiming();
        auto report = verify::verify_program(typed.value());
        proved_pct = 100.0 * static_cast<double>(report.proved()) /
                     static_cast<double>(report.total());
        benchmark::DoNotOptimize(report);
    }
    state.counters["proved_pct"] = proved_pct;
}
BENCHMARK(BM_verify_kernels);

/** The payoff: runtime with checks vs with proved checks dropped. */
void BM_kernel_checked(benchmark::State& state) {
    vm::BuildOptions options;
    options.compiler.elide_proved_checks = false;
    auto built = must_build(kernel_source(), options);
    vm::VmConfig config;
    config.heap_words = 1 << 20;
    auto vm = built->instantiate(config);
    for (auto _ : state) {
        benchmark::DoNotOptimize(must_call(*vm, "checksum", {10}));
        maybe_reset_region(*vm);
    }
}
BENCHMARK(BM_kernel_checked);

void BM_kernel_verified_unchecked(benchmark::State& state) {
    vm::BuildOptions options;
    options.compiler.elide_proved_checks = true;
    auto built = must_build(kernel_source(), options);
    vm::VmConfig config;
    config.heap_words = 1 << 20;
    auto vm = built->instantiate(config);
    for (auto _ : state) {
        benchmark::DoNotOptimize(must_call(*vm, "checksum", {10}));
        maybe_reset_region(*vm);
    }
}
BENCHMARK(BM_kernel_verified_unchecked);

/** Solver scaling: entailment chains of growing length. */
void BM_solver_chain(benchmark::State& state) {
    using namespace bitc::verify;
    size_t n = static_cast<size_t>(state.range(0));
    std::vector<Formula::Ref> premises;
    for (size_t i = 0; i + 1 < n; ++i) {
        premises.push_back(Formula::le(
            LinTerm::variable(static_cast<SymVar>(i)),
            LinTerm::variable(static_cast<SymVar>(i + 1))));
    }
    auto goal = Formula::le(LinTerm::variable(0),
                            LinTerm::variable(static_cast<SymVar>(n - 1)));
    for (auto _ : state) {
        Solver solver;
        auto outcome = solver.prove_entails(premises, goal);
        if (outcome != Outcome::kProved) {
            state.SkipWithError("chain entailment not proved");
            return;
        }
        benchmark::DoNotOptimize(outcome);
    }
    state.counters["chain_length"] = static_cast<double>(n);
}
BENCHMARK(BM_solver_chain)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace bitc::bench

BENCHMARK_MAIN();
