/**
 * @file
 * Scaling sweep for the TCP front-end: end-to-end frames/sec through
 * a real loopback socket pair at 1, 2 and 4 pipeline workers per
 * stage, with closed-loop clients (4 connections x 16 frames in
 * flight) and the latency-bound classify shape (25us simulated
 * route-table miss per packet).
 *
 * The enforced budgets mirror bench_pipeline's scaling discipline
 * plus the zero-copy data path's allocation discipline:
 *
 *  - the 1->4-worker speedup must stay >= 2.0x.  The front-end adds
 *    sockets, framing, the IO loop and the sink router on top of the
 *    engine — if that plumbing ever serialises the fleet (one poller
 *    thread hogging the lock, unbatched wakeups, queue contention),
 *    this is the number that sags even when bench_pipeline looks
 *    healthy;
 *  - steady-state heap allocations must stay under half an
 *    allocation per frame (the binary replaces global operator new
 *    to count them).  The pooled decode buffers, packed answer
 *    slabs and recycled packet vectors are what hold this near
 *    zero; a regression (a per-frame payload vector sneaking back
 *    in) shows up as ~1.0+ immediately;
 *  - once warm, the buffer pool must serve from its freelists: the
 *    best repeat's pool-miss delta must stay within the warm-up
 *    budget.
 *
 * Emits BENCH_network.json (row per worker count with throughput,
 * client-observed p50/p99 latency, allocations per frame and
 * steady-state pool misses); exits nonzero when any budget is
 * missed.  --smoke shrinks the sweep and skips enforcement (the
 * tier-1 ctest entry).
 *
 * Usage: bench_network [--smoke] [OUTPUT.json]
 */
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "interop/packet_stages.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "support/buffer_pool.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

// ---------------------------------------------------------------------------
// Process-wide allocation counter.  Replacing the global allocation
// functions counts every operator-new in every thread — server IO
// loop, engine workers, sink and clients alike — which is exactly the
// "allocations per frame" the zero-copy path is budgeted on.  All
// variants are replaced as a matched set so no default half pairs
// with a counted half.

static std::atomic<uint64_t> g_allocs{0};

static void*
counted_alloc(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (n == 0) n = 1;
    void* p = std::malloc(n);
    if (p == nullptr) throw std::bad_alloc();
    return p;
}

static void*
counted_alloc(std::size_t n, std::align_val_t align)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    size_t a = static_cast<size_t>(align);
    if (n == 0) n = 1;
    // aligned_alloc wants the size rounded to the alignment.
    size_t rounded = (n + a - 1) / a * a;
    void* p = std::aligned_alloc(a, rounded);
    if (p == nullptr) throw std::bad_alloc();
    return p;
}

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a)
{
    return counted_alloc(n, a);
}
void* operator new[](std::size_t n, std::align_val_t a)
{
    return counted_alloc(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept
{
    std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept
{
    std::free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void operator delete[](void* p, std::size_t,
                       std::align_val_t) noexcept
{
    std::free(p);
}

namespace bitc::bench {
namespace {

constexpr double kScalingFloor = 2.0;
constexpr double kAllocsPerFrameBudget = 0.5;
/** Pool misses allowed in a warm repeat (fresh slabs are expected
 *  only while the pool grows to the working set). */
constexpr uint64_t kPoolMissBudget = 64;
constexpr uint32_t kLookupUs = 25;
constexpr size_t kConns = 4;
constexpr size_t kInflight = 16;

struct Row {
    size_t workers = 0;
    size_t frames = 0;
    double elapsed_ms = 0;
    double frames_per_sec = 0;
    double p50_ms = 0;
    double p99_ms = 0;
    double allocs_per_frame = 0;  ///< Best (steadiest) repeat.
    uint64_t pool_misses_steady = 0;  ///< Same repeat's miss delta.
    uint64_t pool_hits_steady = 0;    ///< Same repeat's hit delta.
};

/** One closed-loop connection: send kInflight, then one per answer.
 *  The loop is allocation-free per frame: stack-encoded sends and
 *  borrowed-view receives against the client's pooled decoder. */
void
client_loop(uint16_t port, uint64_t seed, size_t frames,
            std::vector<uint64_t>& latencies_ns, bool& failed)
{
    auto client = net::NetClient::connect("127.0.0.1", port);
    if (!client.is_ok()) {
        failed = true;
        return;
    }
    Rng rng(seed);
    std::vector<uint64_t> sent_at(1u << 16, 0);
    size_t sent = 0, answered = 0;
    uint32_t next_flow = 1;
    uint8_t payload[conc::kPipeWireBytes];
    latencies_ns.reserve(frames);
    while (answered < frames) {
        while (sent - answered < kInflight && sent < frames) {
            uint32_t flow = next_flow;
            next_flow = next_flow % 0xfffe + 1;
            interop::generate_packet(
                rng, std::span<uint8_t>(payload, sizeof payload));
            sent_at[flow] = now_ns();
            if (!client.value()
                     .send_data(flow, /*deadline_ms=*/0,
                                std::span<const uint8_t>(
                                    payload, sizeof payload))
                     .is_ok()) {
                failed = true;
                return;
            }
            ++sent;
        }
        auto got = client.value().recv_frame_view(
            /*timeout_ms=*/30000);
        if (!got.is_ok()) {
            failed = true;
            return;
        }
        ++answered;
        uint64_t t0 = sent_at[got.value().flow & 0xffff];
        if (t0 != 0) latencies_ns.push_back(now_ns() - t0);
    }
}

/** Runs one worker count @p repeats times; keeps the median run's
 *  timing and the steadiest run's allocation counts (the first
 *  repeat warms the pools; later repeats show the steady state). */
Row
measure(size_t workers, size_t frames, int repeats)
{
    struct Run {
        double elapsed_ms;
        std::vector<uint64_t> latencies_ns;
        double allocs_per_frame;
        uint64_t pool_misses;
        uint64_t pool_hits;
    };
    std::vector<Run> runs;
    for (int r = 0; r < repeats; ++r) {
        conc::PipelineConfig config;
        config.workers.fill(workers);
        config.lookup_latency_us = kLookupUs;
        config.batch_packets = 4;
        config.queue_capacity = 32;
        config.seed = 7;
        options::ServeSpec serve;  // 127.0.0.1:0 = ephemeral
        auto server = net::NetServer::create(serve, config);
        if (!server.is_ok() || !server.value()->start().is_ok()) {
            fprintf(stderr, "server start failed (workers=%zu)\n",
                    workers);
            abort();
        }
        uint16_t port = server.value()->port();

        std::vector<std::vector<uint64_t>> latencies(kConns);
        bool failures[kConns] = {};
        std::vector<std::thread> clients;
        pool::BufferPoolStats pool0 = pool::frame_pool().stats();
        uint64_t allocs0 = g_allocs.load(std::memory_order_relaxed);
        uint64_t t0 = now_ns();
        for (size_t c = 0; c < kConns; ++c) {
            size_t share =
                frames / kConns + (c < frames % kConns ? 1 : 0);
            clients.emplace_back([&, c, share] {
                client_loop(port, 7 + c, share, latencies[c],
                            failures[c]);
            });
        }
        for (std::thread& t : clients) t.join();
        double elapsed_ms =
            static_cast<double>(now_ns() - t0) / 1e6;
        uint64_t allocs1 = g_allocs.load(std::memory_order_relaxed);
        pool::BufferPoolStats pool1 = pool::frame_pool().stats();
        server.value()->stop();
        net::ServerStats stats = server.value()->stats();
        for (bool f : failures) {
            if (f) {
                fprintf(stderr, "client failed (workers=%zu)\n",
                        workers);
                abort();
            }
        }
        if (!stats.conserved() || stats.generated != frames) {
            fprintf(stderr, "ledger broken (workers=%zu):\n%s",
                    workers, stats.to_string().c_str());
            abort();
        }
        Run run;
        run.elapsed_ms = elapsed_ms;
        run.allocs_per_frame =
            static_cast<double>(allocs1 - allocs0) /
            static_cast<double>(frames);
        run.pool_misses = pool1.misses - pool0.misses;
        run.pool_hits = pool1.hits - pool0.hits;
        for (auto& per_conn : latencies) {
            run.latencies_ns.insert(run.latencies_ns.end(),
                                    per_conn.begin(),
                                    per_conn.end());
        }
        runs.push_back(std::move(run));
    }

    // Steady-state allocation behaviour: the repeat with the fewest
    // pool misses (pools warm across repeats inside one process).
    const Run* steady = &runs[0];
    for (const Run& run : runs) {
        if (run.pool_misses < steady->pool_misses ||
            (run.pool_misses == steady->pool_misses &&
             run.allocs_per_frame < steady->allocs_per_frame)) {
            steady = &run;
        }
    }
    Row row;
    row.allocs_per_frame = steady->allocs_per_frame;
    row.pool_misses_steady = steady->pool_misses;
    row.pool_hits_steady = steady->pool_hits;

    std::sort(runs.begin(), runs.end(),
              [](const Run& a, const Run& b) {
                  return a.elapsed_ms < b.elapsed_ms;
              });
    Run& median = runs[runs.size() / 2];
    std::sort(median.latencies_ns.begin(), median.latencies_ns.end());
    auto pct = [&](double p) {
        if (median.latencies_ns.empty()) return 0.0;
        size_t idx = static_cast<size_t>(
            p * static_cast<double>(median.latencies_ns.size() - 1));
        return static_cast<double>(median.latencies_ns[idx]) / 1e6;
    };

    row.workers = workers;
    row.frames = frames;
    row.elapsed_ms = median.elapsed_ms;
    row.frames_per_sec = median.elapsed_ms > 0
                             ? static_cast<double>(frames) * 1000.0 /
                                   median.elapsed_ms
                             : 0;
    row.p50_ms = pct(0.50);
    row.p99_ms = pct(0.99);
    return row;
}

}  // namespace
}  // namespace bitc::bench

int
main(int argc, char** argv)
{
    using namespace bitc::bench;

    bool smoke = false;
    const char* out_path = "BENCH_network.json";
    for (int a = 1; a < argc; ++a) {
        if (std::strcmp(argv[a], "--smoke") == 0) {
            smoke = true;
        } else {
            out_path = argv[a];
        }
    }

    int repeats = smoke ? 1 : 5;
    size_t frames = smoke ? 800 : 8000;

    const size_t worker_counts[] = {1, 2, 4};
    std::vector<Row> rows;
    for (size_t w : worker_counts) {
        rows.push_back(measure(w, frames, repeats));
    }

    for (const Row& row : rows) {
        printf("workers=%zu  %8zu frames  %9.3f ms  %10.0f frame/s  "
               "p50 %.3f ms  p99 %.3f ms  %.3f allocs/frame  "
               "%llu pool misses\n",
               row.workers, row.frames, row.elapsed_ms,
               row.frames_per_sec, row.p50_ms, row.p99_ms,
               row.allocs_per_frame,
               static_cast<unsigned long long>(
                   row.pool_misses_steady));
    }

    double one = rows[0].frames_per_sec;
    double four = rows[2].frames_per_sec;
    double scaling = one > 0 ? four / one : 0;
    printf("network scaling 1->4 workers: %.2fx (floor %.1fx)%s\n",
           scaling, kScalingFloor,
           smoke ? " [smoke: not enforced]" : "");
    double worst_allocs = 0;
    uint64_t worst_misses = 0;
    for (const Row& row : rows) {
        worst_allocs = std::max(worst_allocs, row.allocs_per_frame);
        worst_misses =
            std::max(worst_misses, row.pool_misses_steady);
    }
    printf("steady state: %.3f allocs/frame (budget %.1f), "
           "%llu pool misses (budget %llu)%s\n",
           worst_allocs, kAllocsPerFrameBudget,
           static_cast<unsigned long long>(worst_misses),
           static_cast<unsigned long long>(kPoolMissBudget),
           smoke ? " [smoke: not enforced]" : "");
    bool scaling_ok = scaling >= kScalingFloor;
    bool allocs_ok = worst_allocs <= kAllocsPerFrameBudget;
    bool misses_ok = worst_misses <= kPoolMissBudget;
    bool within = smoke || (scaling_ok && allocs_ok && misses_ok);
    if (!within) {
        if (!scaling_ok) printf("SCALING UNDER FLOOR\n");
        if (!allocs_ok) printf("ALLOCATIONS OVER BUDGET\n");
        if (!misses_ok) printf("POOL MISSES OVER BUDGET\n");
    }

    FILE* out = fopen(out_path, "w");
    if (out == nullptr) {
        fprintf(stderr, "cannot write %s\n", out_path);
        return 1;
    }
    char stamp[64];
    std::time_t now = std::time(nullptr);
    std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ",
                  std::gmtime(&now));
    fprintf(out, "{\n");
    fprintf(out, "  \"bench\": \"network\",\n");
    fprintf(out, "  \"date_utc\": \"%s\",\n", stamp);
    fprintf(out, "  \"repeats\": %d,\n", repeats);
    fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    fprintf(out, "  \"lookup_latency_us\": %u,\n", kLookupUs);
    fprintf(out, "  \"connections\": %zu,\n", kConns);
    fprintf(out, "  \"inflight_per_connection\": %zu,\n", kInflight);
    fprintf(out, "  \"scaling_floor\": %.1f,\n", kScalingFloor);
    fprintf(out, "  \"scaling_1_to_4\": %.3f,\n", scaling);
    fprintf(out, "  \"allocs_per_frame_budget\": %.1f,\n",
            kAllocsPerFrameBudget);
    fprintf(out, "  \"pool_miss_budget\": %llu,\n",
            static_cast<unsigned long long>(kPoolMissBudget));
    fprintf(out, "  \"within_budget\": %s,\n",
            within ? "true" : "false");
    fprintf(out, "  \"rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row& row = rows[i];
        fprintf(out,
                "    {\"workers\": %zu, \"frames\": %zu, "
                "\"elapsed_ms\": %.3f, \"frames_per_sec\": %.0f, "
                "\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
                "\"allocs_per_frame\": %.3f, "
                "\"pool_misses_steady\": %llu, "
                "\"pool_hits_steady\": %llu}%s\n",
                row.workers, row.frames, row.elapsed_ms,
                row.frames_per_sec, row.p50_ms, row.p99_ms,
                row.allocs_per_frame,
                static_cast<unsigned long long>(
                    row.pool_misses_steady),
                static_cast<unsigned long long>(
                    row.pool_hits_steady),
                i + 1 < rows.size() ? "," : "");
    }
    fprintf(out, "  ]\n}\n");
    fclose(out);
    printf("wrote %s\n", out_path);
    return within ? 0 : 1;
}
