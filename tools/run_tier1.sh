#!/bin/sh
# Tier-1 verify: configure, build, run the full test suite.
# Mirrors the command in ROADMAP.md; CI runs exactly this script so
# local and CI results cannot drift.
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
cd build
ctest --output-on-failure -j"$(nproc)"
