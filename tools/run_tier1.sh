#!/bin/sh
# Tier-1 verify: configure, build, run the fast always-on test suite.
# Mirrors the command in ROADMAP.md; CI runs exactly this script so
# local and CI results cannot drift.
#
# Tier 1 is the `-L tier1` ctest partition (the label is matched as a
# regex, so tier1_sanitizer suites are included, and so is tier1_sim —
# the deterministic-simulation suites, which sweep ~1000 seeded
# schedules per run in about a second because all time is virtual).
# CI's sim-sweep job re-runs just that partition under a fresh random
# BITC_TEST_SEED to explore new schedule space every push.  The
# exhaustive matrices (including the 1500-seed sim deep sweep) carry
# the `slow` label and run in their own CI job; a plain `ctest` still
# runs everything.
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
cd build
ctest -L tier1 --output-on-failure -j"$(nproc)"

# Pipeline scaling budget: the latency-bound shape must keep its
# >= 2.0x 1->4-worker speedup (exit code enforces it).  Runs after the
# test partition so a scaling regression never masks a correctness one.
./bench/bench_pipeline BENCH_pipeline.json

# Robustness carrying cost: injection points, manual-heap hardening and
# the supervised-pipeline machinery must stay within the 1.10x
# fault-free budget (geomean; exit code enforces it).
./bench/bench_robustness BENCH_robustness.json

# Network front-end scaling and data-path budgets: end-to-end
# frames/sec through loopback sockets must keep the >= 2.0x
# 1->4-worker speedup, steady-state heap allocations must stay under
# 0.5 per frame (the binary counts operator new process-wide and
# prints an allocs/frame column), and a warm repeat's buffer-pool
# misses must stay within the warm-up budget — all three enforced by
# exit code.  The socket/framing/IO-loop plumbing is in the loop
# here, not just the engine.
./bench/bench_network BENCH_network.json
