/**
 * @file
 * bitcc — the BitC-repro command-line driver.
 *
 *   bitcc check   FILE              parse + resolve + typecheck
 *   bitcc verify  FILE              ... + print the verification report
 *   bitcc disasm  FILE [opts]       ... + compile, print bytecode
 *   bitcc run     FILE [opts] -- [ARGS...]
 *                                   ... + execute (entry: main)
 *   bitcc --pipeline SPEC [...]     run the CSP packet-pipeline driver
 *   bitcc --serve HOST:PORT [...]   serve the pipeline over TCP
 *
 * The flag table and full usage text are *generated* from
 * options::cli_options() (src/support/options.hpp) — the one source
 * the parser, the help and this comment share, so they cannot drift.
 * Long options also accept the --opt=value spelling.
 */
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "concurrency/pipeline.hpp"
#include "net/server.hpp"
#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/options.hpp"
#include "support/string_util.hpp"
#include "support/trace.hpp"
#include "lang/parser.hpp"
#include "lang/resolver.hpp"
#include "vm/pipeline.hpp"

namespace {

using namespace bitc;

int
usage()
{
    std::fputs(options::cli_usage().c_str(), stderr);
    return 2;
}

/**
 * The metrics document every bitcc path writes: the registry snapshot
 * plus the fault injector's per-site counters as a "fault_sites"
 * section.  The section is built by iterating the site registry, so a
 * new Site shows up here with no edits to this file.
 */
std::string
metrics_document()
{
    return metrics::to_json(
        metrics::snapshot(),
        {{"fault_sites", fault::Injector::instance().sites_json()}});
}

/** Writes @p content to @p path, or stdout when path is "-". */
Status
write_text(const std::string& path, const std::string& content)
{
    if (path == "-") {
        std::fputs(content.c_str(), stdout);
        return Status::ok();
    }
    std::ofstream out(path);
    if (!out) {
        return not_found_error(
            str_format("cannot write '%s'", path.c_str()));
    }
    out << content;
    return Status::ok();
}

Result<std::string>
read_file(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        return not_found_error(
            str_format("cannot open '%s'", path.c_str()));
    }
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

struct Options {
    std::string command;
    std::string file;
    std::string entry = "main";
    vm::VmConfig vm;
    bool fold = true;
    bool bce = true;
    bool verify = true;
    bool overflow = false;
    bool stats = false;
    bool heap_set = false;
    std::string faults;
    std::string metrics_path;
    std::string trace_path;
    std::vector<int64_t> args;
};

Result<vm::HeapPolicy>
parse_heap(const std::string& name)
{
    if (name == "region") return vm::HeapPolicy::kRegion;
    if (name == "manual") return vm::HeapPolicy::kManual;
    if (name == "refcount") return vm::HeapPolicy::kRefCount;
    if (name == "mark-sweep") return vm::HeapPolicy::kMarkSweep;
    if (name == "mark-compact") return vm::HeapPolicy::kMarkCompact;
    if (name == "semispace") return vm::HeapPolicy::kSemispace;
    if (name == "generational") return vm::HeapPolicy::kGenerational;
    return invalid_argument_error(
        str_format("unknown heap policy '%s'", name.c_str()));
}

Result<Options>
parse_args(int argc, char** argv)
{
    if (argc < 3) return invalid_argument_error("missing arguments");
    Options options;
    options.command = argv[1];
    options.file = argv[2];
    // Normalise --opt=value into separate tokens so both spellings
    // share one parser.  Program arguments after "--" pass untouched.
    std::vector<std::string> tokens;
    bool passthrough = false;
    for (int a = 3; a < argc; ++a) {
        std::string raw = argv[a];
        if (raw == "--") passthrough = true;
        size_t eq = raw.find('=');
        if (!passthrough && raw.rfind("--", 0) == 0 &&
            eq != std::string::npos) {
            tokens.push_back(raw.substr(0, eq));
            tokens.push_back(raw.substr(eq + 1));
        } else {
            tokens.push_back(std::move(raw));
        }
    }
    size_t i = 0;
    for (; i < tokens.size(); ++i) {
        std::string arg = tokens[i];
        if (arg == "--") {
            ++i;
            break;
        }
        auto next = [&]() -> Result<std::string> {
            if (i + 1 >= tokens.size()) {
                return invalid_argument_error(arg + " needs a value");
            }
            return tokens[++i];
        };
        if (arg == "--entry") {
            BITC_ASSIGN_OR_RETURN(options.entry, next());
        } else if (arg == "--mode") {
            BITC_ASSIGN_OR_RETURN(std::string mode, next());
            if (mode == "boxed") {
                options.vm.mode = vm::ValueMode::kBoxed;
                if (!options.heap_set) {
                    options.vm.heap = vm::HeapPolicy::kGenerational;
                }
            } else if (mode == "unboxed") {
                options.vm.mode = vm::ValueMode::kUnboxed;
            } else {
                return invalid_argument_error("bad --mode");
            }
        } else if (arg == "--heap") {
            BITC_ASSIGN_OR_RETURN(std::string heap, next());
            BITC_ASSIGN_OR_RETURN(options.vm.heap, parse_heap(heap));
            options.heap_set = true;
        } else if (arg == "--heap-words") {
            BITC_ASSIGN_OR_RETURN(std::string words, next());
            options.vm.heap_words = std::strtoull(words.c_str(),
                                                  nullptr, 10);
        } else if (arg == "--dispatch") {
            BITC_ASSIGN_OR_RETURN(std::string dispatch, next());
            if (dispatch == "switch") {
                options.vm.dispatch = vm::DispatchMode::kSwitch;
            } else if (dispatch == "threaded") {
                options.vm.dispatch = vm::DispatchMode::kThreaded;
            } else {
                return invalid_argument_error("bad --dispatch");
            }
        } else if (arg == "--profile") {
            options.vm.profile = true;
        } else if (arg == "--no-fold") {
            options.fold = false;
        } else if (arg == "--no-bce") {
            options.bce = false;
        } else if (arg == "--no-verify") {
            options.verify = false;
        } else if (arg == "--overflow") {
            options.overflow = true;
        } else if (arg == "--stats") {
            options.stats = true;
        } else if (arg == "--faults") {
            BITC_ASSIGN_OR_RETURN(options.faults, next());
        } else if (arg == "--metrics") {
            BITC_ASSIGN_OR_RETURN(options.metrics_path, next());
        } else if (arg == "--trace") {
            BITC_ASSIGN_OR_RETURN(options.trace_path, next());
        } else {
            return invalid_argument_error("unknown option " + arg);
        }
    }
    for (; i < tokens.size(); ++i) {
        options.args.push_back(
            std::strtoll(tokens[i].c_str(), nullptr, 10));
    }
    return options;
}

int
run_command(const Options& options)
{
    auto source = read_file(options.file);
    if (!source.is_ok()) {
        std::fprintf(stderr, "bitcc: %s\n",
                     source.status().to_string().c_str());
        return 1;
    }

    // Front-end stages with full diagnostics.
    DiagnosticEngine diags;
    auto parsed = lang::parse_program(source.value(), diags);
    if (parsed.is_ok()) {
        (void)lang::resolve_program(parsed.value(), diags);
    }
    if (diags.has_errors()) {
        std::fprintf(stderr, "%s", diags.to_string().c_str());
        return 1;
    }
    auto typed = types::check_program(std::move(parsed).take(), diags);
    if (!typed.is_ok()) {
        std::fprintf(stderr, "%s", diags.to_string().c_str());
        return 1;
    }
    types::TypedProgram program = std::move(typed).take();

    if (options.command == "check") {
        std::printf("%s: ok (%zu function(s))\n", options.file.c_str(),
                    program.program().functions.size());
        for (size_t f = 0; f < program.function_count(); ++f) {
            const auto& ft = program.function_type(f);
            std::string sig = "(->";
            for (types::Type* p : ft.params) {
                sig += ' ';
                sig += program.store().to_string(p);
            }
            sig += ' ';
            sig += program.store().to_string(ft.result);
            sig += ')';
            std::printf("  %-20s %s\n",
                        program.program().functions[f].name.c_str(),
                        sig.c_str());
        }
        return 0;
    }

    verify::VerifyReport report;
    if (options.verify) {
        verify::VerifyOptions vopts;
        vopts.overflow_obligations = options.overflow;
        report = verify::verify_program_with_options(program, vopts);
    }
    if (options.command == "verify") {
        std::printf("%s", report.to_string().c_str());
        return report.unknown() == 0 ? 0 : 3;
    }

    vm::CompilerOptions copts;
    copts.constant_fold = options.fold;
    copts.elide_proved_checks = options.bce && options.verify;
    copts.proofs = options.verify ? &report : nullptr;
    auto compiled = vm::compile_program(program, copts);
    if (!compiled.is_ok()) {
        std::fprintf(stderr, "bitcc: %s\n",
                     compiled.status().to_string().c_str());
        return 1;
    }

    if (options.command == "disasm") {
        std::printf("%s", compiled.value().disassemble().c_str());
        return 0;
    }

    if (options.command != "run") return usage();

    // Arm the fault plan only around execution, so an injected failure
    // exercises the runtime's failure paths, not the compiler's.
    fault::ScopedPlan faults(options.faults);
    if (!faults.status().is_ok()) {
        std::fprintf(stderr, "bitcc: %s\n",
                     faults.status().to_string().c_str());
        return 2;
    }

    // Telemetry, like fault plans, brackets execution only: compiler
    // work never pollutes the run's metrics or trace.
    vm::VmConfig vm_config = options.vm;
    if (!options.metrics_path.empty()) {
        metrics::reset();
        metrics::enable();
        vm_config.count_ops = true;
    }
    if (!options.trace_path.empty()) {
        trace::start();
    }

    vm::Vm vm(compiled.value(), nullptr, vm_config);
    auto result = vm.call(options.entry, options.args);
    if (options.stats && !options.faults.empty()) {
        std::fprintf(stderr, "faults:\n%s",
                     fault::Injector::instance().report().c_str());
    }
    // Snapshots are written even when the run trapped: the telemetry
    // of a failing run is exactly what a postmortem needs.
    if (!options.metrics_path.empty()) {
        metrics::disable();
        Status written = write_text(options.metrics_path,
                                    metrics_document());
        if (!written.is_ok()) {
            std::fprintf(stderr, "bitcc: %s\n",
                         written.to_string().c_str());
            return 1;
        }
    }
    if (!options.trace_path.empty()) {
        trace::stop();
        Status written = write_text(options.trace_path, trace::dump());
        if (!written.is_ok()) {
            std::fprintf(stderr, "bitcc: %s\n",
                         written.to_string().c_str());
            return 1;
        }
    }
    if (!result.is_ok()) {
        std::fprintf(stderr, "bitcc: trap: %s\n",
                     result.status().to_string().c_str());
        return 4;
    }
    std::printf("%lld\n", static_cast<long long>(result.value()));
    if (options.vm.profile) {
        std::fprintf(stderr, "profile (%s dispatch):\n%s",
                     vm::dispatch_mode_name(vm.config().dispatch),
                     vm.profile().to_string().c_str());
    }
    if (options.stats) {
        const auto& heap_stats = vm.heap().stats();
        std::fprintf(
            stderr,
            "stats: %llu instructions, %llu allocations (%s), "
            "%llu collections, verified %zu/%zu checks\n",
            static_cast<unsigned long long>(vm.instructions_executed()),
            static_cast<unsigned long long>(heap_stats.allocations),
            human_bytes(heap_stats.bytes_allocated).c_str(),
            static_cast<unsigned long long>(heap_stats.collections +
                                            heap_stats.minor_collections),
            report.proved(), report.total());
    }
    return 0;
}

/**
 * Parses the runtime-mode flags (--pipeline/--serve/--faults/
 * --metrics/--trace) into one validated RuntimeOptions value.  The
 * string grammars live behind the typed specs' parse() adapters; this
 * loop only pairs flags with values.
 */
Result<options::RuntimeOptions>
parse_runtime_options(const std::vector<std::string>& tokens)
{
    options::RuntimeOptions opts;
    for (size_t i = 0; i < tokens.size(); ++i) {
        const std::string& arg = tokens[i];
        auto next = [&]() -> Result<std::string> {
            if (i + 1 >= tokens.size()) {
                return invalid_argument_error(arg + " needs a value");
            }
            return tokens[++i];
        };
        if (arg == "--pipeline") {
            BITC_ASSIGN_OR_RETURN(std::string spec, next());
            BITC_ASSIGN_OR_RETURN(opts.pipeline,
                                  options::PipelineSpec::parse(spec));
        } else if (arg == "--serve") {
            BITC_ASSIGN_OR_RETURN(std::string spec, next());
            BITC_ASSIGN_OR_RETURN(auto serve,
                                  options::ServeSpec::parse(spec));
            opts.serve = serve;
        } else if (arg == "--faults") {
            BITC_ASSIGN_OR_RETURN(std::string plan, next());
            BITC_ASSIGN_OR_RETURN(opts.faults,
                                  options::FaultPlan::parse(plan));
        } else if (arg == "--metrics") {
            BITC_ASSIGN_OR_RETURN(opts.metrics_path, next());
        } else if (arg == "--trace") {
            BITC_ASSIGN_OR_RETURN(opts.trace_path, next());
        } else {
            return invalid_argument_error(
                "unknown runtime option " + arg);
        }
    }
    BITC_RETURN_IF_ERROR(opts.validate());
    return opts;
}

/**
 * Telemetry bracketing shared by the pipeline and serve paths: faults
 * and instrumentation cover only the run, never the build, and the
 * snapshots land wherever the options say.
 */
class TelemetryScope {
  public:
    explicit TelemetryScope(const options::RuntimeOptions& opts)
        : opts_(opts) {
        if (!opts_.metrics_path.empty()) {
            metrics::reset();
            metrics::enable();
        }
        if (!opts_.trace_path.empty()) trace::start();
    }

    /** Stops collection and writes the requested files. */
    Status finish() {
        if (!opts_.metrics_path.empty()) {
            metrics::disable();
            BITC_RETURN_IF_ERROR(
                write_text(opts_.metrics_path, metrics_document()));
        }
        if (!opts_.trace_path.empty()) {
            trace::stop();
            BITC_RETURN_IF_ERROR(
                write_text(opts_.trace_path, trace::dump()));
        }
        return Status::ok();
    }

  private:
    const options::RuntimeOptions& opts_;
};

/** The --pipeline entry point: the in-process driver run. */
int
run_pipeline(const options::RuntimeOptions& opts)
{
    auto pipeline = conc::PacketPipeline::create(
        conc::config_from_spec(opts.pipeline));
    if (!pipeline.is_ok()) {
        std::fprintf(stderr, "bitcc: %s\n",
                     pipeline.status().to_string().c_str());
        return 1;
    }

    fault::ScopedPlan faults(opts.faults.to_string());
    if (!faults.status().is_ok()) {
        std::fprintf(stderr, "bitcc: %s\n",
                     faults.status().to_string().c_str());
        return 2;
    }
    TelemetryScope telemetry(opts);

    auto report = pipeline.value()->run(opts.pipeline.packets);

    if (Status written = telemetry.finish(); !written.is_ok()) {
        std::fprintf(stderr, "bitcc: %s\n",
                     written.to_string().c_str());
        return 1;
    }
    if (!report.is_ok()) {
        std::fprintf(stderr, "bitcc: %s\n",
                     report.status().to_string().c_str());
        return 4;
    }
    std::printf("%s", report.value().to_string().c_str());
    if (!opts.faults.empty()) {
        std::fprintf(stderr, "faults:\n%s",
                     fault::Injector::instance().report().c_str());
    }
    return report.value().conserved() ? 0 : 4;
}

std::atomic<bool> g_interrupted{false};

void
handle_interrupt(int)
{
    g_interrupted.store(true, std::memory_order_relaxed);
}

/**
 * The --serve entry point: the pipeline behind real sockets.  With
 * max-frames=N the server drains after N data frames and exits (how
 * the e2e tests drive it); otherwise it serves until SIGINT/SIGTERM.
 */
int
run_serve(const options::RuntimeOptions& opts)
{
    auto server = net::NetServer::create(
        *opts.serve, conc::config_from_spec(opts.pipeline));
    if (!server.is_ok()) {
        std::fprintf(stderr, "bitcc: %s\n",
                     server.status().to_string().c_str());
        return 1;
    }

    fault::ScopedPlan faults(opts.faults.to_string());
    if (!faults.status().is_ok()) {
        std::fprintf(stderr, "bitcc: %s\n",
                     faults.status().to_string().c_str());
        return 2;
    }
    TelemetryScope telemetry(opts);

    if (Status st = server.value()->start(); !st.is_ok()) {
        std::fprintf(stderr, "bitcc: %s\n", st.to_string().c_str());
        return 1;
    }
    std::printf("serving on %s:%u\n", opts.serve->host.c_str(),
                static_cast<unsigned>(server.value()->port()));
    std::fflush(stdout);

    std::signal(SIGINT, handle_interrupt);
    std::signal(SIGTERM, handle_interrupt);
    if (opts.serve->max_frames > 0) {
        // wait_done returns once every accepted frame is answered; a
        // watcher thread turns Ctrl-C into stop() so a wedged client
        // cannot hold the server hostage.
        std::thread watcher([&] {
            while (!g_interrupted.load(std::memory_order_relaxed)) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(50));
            }
            server.value()->stop();
        });
        server.value()->wait_done();
        g_interrupted.store(true, std::memory_order_relaxed);
        watcher.join();
    } else {
        while (!g_interrupted.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(50));
        }
    }
    server.value()->stop();

    if (Status written = telemetry.finish(); !written.is_ok()) {
        std::fprintf(stderr, "bitcc: %s\n",
                     written.to_string().c_str());
        return 1;
    }
    net::ServerStats stats = server.value()->stats();
    std::printf("%s", stats.to_string().c_str());
    if (!opts.faults.empty()) {
        std::fprintf(stderr, "faults:\n%s",
                     fault::Injector::instance().report().c_str());
    }
    return stats.conserved() ? 0 : 4;
}

}  // namespace

int
main(int argc, char** argv)
{
    // The runtime modes (--pipeline driver, --serve front-end) take
    // specs instead of a source file and so bypass the file-command
    // parser entirely.
    bool runtime_mode = false;
    for (int a = 1; a < argc && !runtime_mode; ++a) {
        std::string raw = argv[a];
        runtime_mode = raw == "--pipeline" ||
                       raw.rfind("--pipeline=", 0) == 0 ||
                       raw == "--serve" || raw.rfind("--serve=", 0) == 0;
    }
    if (runtime_mode) {
        std::vector<std::string> tokens;
        for (int b = 1; b < argc; ++b) {
            std::string t = argv[b];
            size_t eq = t.find('=');
            if (t.rfind("--", 0) == 0 && eq != std::string::npos) {
                tokens.push_back(t.substr(0, eq));
                tokens.push_back(t.substr(eq + 1));
            } else {
                tokens.push_back(std::move(t));
            }
        }
        auto opts = parse_runtime_options(tokens);
        if (!opts.is_ok()) {
            std::fprintf(stderr, "bitcc: %s\n",
                         opts.status().to_string().c_str());
            return usage();
        }
        return opts.value().serve.has_value()
                   ? run_serve(opts.value())
                   : run_pipeline(opts.value());
    }

    if (argc < 3) return usage();
    auto options = parse_args(argc, argv);
    if (!options.is_ok()) {
        std::fprintf(stderr, "bitcc: %s\n",
                     options.status().to_string().c_str());
        return usage();
    }
    const std::string& command = options.value().command;
    if (command != "check" && command != "verify" &&
        command != "disasm" && command != "run") {
        return usage();
    }
    return run_command(options.value());
}
