/**
 * @file
 * loadgen — closed-loop load generator for `bitcc --serve`.
 *
 *   loadgen HOST:PORT [--conns N] [--inflight M] [--frames N]
 *           [--seed S] [--deadline-ms MS]
 *
 * Opens N connections, each driven by its own thread keeping M data
 * frames in flight (send M, then one new frame per answer) until it
 * has pushed its share of the total frame budget.  Prints aggregate
 * throughput, the answer mix, and a log-scale end-to-end latency
 * histogram.  Exit code 0 iff every sent frame was answered.
 */
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "concurrency/pipeline.hpp"
#include "interop/packet_stages.hpp"
#include "net/client.hpp"
#include "net/wire.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/string_util.hpp"

namespace {

using namespace bitc;

constexpr uint64_t kRecvTimeoutMs = 10000;

struct WorkerTotals {
    uint64_t sent = 0;
    uint64_t responses = 0;
    uint64_t drops = 0;
    uint64_t errors = 0;
    std::vector<uint64_t> latencies_ns;
    Status failure;  ///< First hard failure, if any.
};

/** One connection's closed loop. */
void
run_worker(const std::string& host, uint16_t port, size_t inflight,
           uint64_t frames, uint64_t seed, uint32_t deadline_ms,
           WorkerTotals& totals)
{
    auto client = net::NetClient::connect(host, port);
    if (!client.is_ok()) {
        totals.failure = client.status();
        return;
    }
    Rng rng(seed);
    std::vector<uint64_t> sent_at(1u << 16, 0);
    uint64_t in_flight = 0;
    uint64_t answered = 0;
    uint32_t next_flow = 1;
    totals.latencies_ns.reserve(frames);
    while (answered < frames) {
        while (in_flight < inflight && totals.sent < frames) {
            net::Frame frame;
            frame.type = net::FrameType::kData;
            frame.flow = next_flow;
            next_flow = next_flow % 0xfffe + 1;
            frame.deadline_ms = deadline_ms;
            frame.payload.resize(conc::kPipeWireBytes);
            interop::generate_packet(
                rng, std::span<uint8_t>(frame.payload.data(),
                                        frame.payload.size()));
            sent_at[frame.flow] = now_ns();
            if (Status st = client.value().send_frame(frame);
                !st.is_ok()) {
                totals.failure = st;
                return;
            }
            ++totals.sent;
            ++in_flight;
        }
        auto got = client.value().recv_frame(kRecvTimeoutMs);
        if (!got.is_ok()) {
            totals.failure = got.status();
            return;
        }
        ++answered;
        --in_flight;
        switch (got.value().type) {
          case net::FrameType::kResponse: ++totals.responses; break;
          case net::FrameType::kDrop: ++totals.drops; break;
          default: ++totals.errors; break;
        }
        uint64_t t0 = sent_at[got.value().flow & 0xffff];
        if (t0 != 0) totals.latencies_ns.push_back(now_ns() - t0);
    }
}

void
print_histogram(std::vector<uint64_t>& lat)
{
    if (lat.empty()) return;
    std::sort(lat.begin(), lat.end());
    auto pct = [&](double p) {
        size_t idx = static_cast<size_t>(
            p * static_cast<double>(lat.size() - 1));
        return static_cast<double>(lat[idx]) / 1e6;
    };
    std::printf(
        "latency ms: p50=%.3f p90=%.3f p99=%.3f max=%.3f\n",
        pct(0.50), pct(0.90), pct(0.99),
        static_cast<double>(lat.back()) / 1e6);
    // Log-scale buckets, one row per occupied power of two.
    size_t bucket_count[64] = {};
    for (uint64_t ns : lat) {
        size_t b = 0;
        while ((1ull << b) < ns && b < 63) ++b;
        ++bucket_count[b];
    }
    for (size_t b = 0; b < 64; ++b) {
        if (bucket_count[b] == 0) continue;
        std::printf("  <= %8.3f ms  %zu\n",
                    static_cast<double>(1ull << b) / 1e6,
                    bucket_count[b]);
    }
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: loadgen HOST:PORT [--conns N] [--inflight M]"
                 " [--frames N] [--seed S] [--deadline-ms MS]\n");
    return 2;
}

}  // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) return usage();
    auto endpoint = options::ServeSpec::parse(argv[1]);
    if (!endpoint.is_ok()) {
        std::fprintf(stderr, "loadgen: %s\n",
                     endpoint.status().to_string().c_str());
        return 2;
    }
    size_t conns = 4;
    size_t inflight = 16;
    uint64_t frames = 10000;
    uint64_t seed = 1;
    uint32_t deadline_ms = 0;
    for (int a = 2; a + 1 < argc; a += 2) {
        std::string flag = argv[a];
        uint64_t value = std::strtoull(argv[a + 1], nullptr, 10);
        if (flag == "--conns") {
            conns = static_cast<size_t>(value);
        } else if (flag == "--inflight") {
            inflight = static_cast<size_t>(value);
        } else if (flag == "--frames") {
            frames = value;
        } else if (flag == "--seed") {
            seed = value;
        } else if (flag == "--deadline-ms") {
            deadline_ms = static_cast<uint32_t>(value);
        } else {
            return usage();
        }
    }
    if (conns == 0 || inflight == 0 || frames == 0) return usage();

    std::vector<WorkerTotals> totals(conns);
    std::vector<std::thread> threads;
    uint64_t per_conn = frames / conns;
    uint64_t remainder = frames % conns;
    uint64_t t0 = bitc::now_ns();
    for (size_t c = 0; c < conns; ++c) {
        uint64_t share = per_conn + (c < remainder ? 1 : 0);
        threads.emplace_back([&, c, share] {
            run_worker(endpoint.value().host, endpoint.value().port,
                       inflight, share, seed + c, deadline_ms,
                       totals[c]);
        });
    }
    for (std::thread& t : threads) t.join();
    double elapsed_s =
        static_cast<double>(bitc::now_ns() - t0) / 1e9;

    WorkerTotals sum;
    bool failed = false;
    for (WorkerTotals& w : totals) {
        sum.sent += w.sent;
        sum.responses += w.responses;
        sum.drops += w.drops;
        sum.errors += w.errors;
        sum.latencies_ns.insert(sum.latencies_ns.end(),
                                w.latencies_ns.begin(),
                                w.latencies_ns.end());
        if (!w.failure.is_ok()) {
            failed = true;
            std::fprintf(stderr, "loadgen: %s\n",
                         w.failure.to_string().c_str());
        }
    }
    uint64_t answered = sum.responses + sum.drops + sum.errors;
    std::printf(
        "loadgen: %zu conns x %zu in-flight, %llu sent, "
        "%llu answered (%llu responses, %llu drops, %llu errors)\n"
        "throughput: %.0f frames/s over %.2f s\n",
        conns, inflight,
        static_cast<unsigned long long>(sum.sent),
        static_cast<unsigned long long>(answered),
        static_cast<unsigned long long>(sum.responses),
        static_cast<unsigned long long>(sum.drops),
        static_cast<unsigned long long>(sum.errors),
        elapsed_s > 0 ? static_cast<double>(answered) / elapsed_s : 0,
        elapsed_s);
    print_histogram(sum.latencies_ns);
    return failed || answered != sum.sent ? 1 : 0;
}
