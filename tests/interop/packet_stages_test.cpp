/**
 * Equivalence tests: the legacy (wire-format C++) and migrated (BitC)
 * stage implementations must agree on every packet.
 */
#include "interop/packet_stages.hpp"

#include <gtest/gtest.h>

#include "interop/marshal.hpp"
#include "vm/pipeline.hpp"

namespace bitc::interop {
namespace {

class StageEquivalenceTest : public ::testing::Test {
  protected:
    void SetUp() override {
        auto built = vm::build_program(migrated_stage_source());
        ASSERT_TRUE(built.is_ok()) << built.status().to_string();
        built_ = std::move(built).take();
        vm_ = built_->instantiate({});
    }

    /** Runs a migrated stage on the unpacked form of @p wire. */
    int64_t run_migrated(const char* fn, std::span<uint8_t> wire) {
        int64_t fields[kFieldCount];
        EXPECT_TRUE(
            unmarshal_record(packet_codec(), wire, fields).is_ok());
        auto result = vm_->call_with_buffer(fn, fields);
        EXPECT_TRUE(result.is_ok()) << result.status().to_string();
        EXPECT_TRUE(
            marshal_record(packet_codec(), fields, wire).is_ok());
        return result.is_ok() ? result.value() : INT64_MIN;
    }

    std::unique_ptr<vm::BuiltProgram> built_;
    std::unique_ptr<vm::Vm> vm_;
};

TEST_F(StageEquivalenceTest, ValidateAgreesOnManyPackets) {
    Rng rng(10);
    std::vector<uint8_t> wire(20);
    for (int i = 0; i < 500; ++i) {
        generate_packet(rng, wire);
        std::vector<uint8_t> copy = wire;
        EXPECT_EQ(legacy_validate(wire), run_migrated("validate", copy));
    }
}

TEST_F(StageEquivalenceTest, DecrementTtlAgrees) {
    Rng rng(11);
    std::vector<uint8_t> wire(20);
    for (int i = 0; i < 200; ++i) {
        generate_packet(rng, wire);
        std::vector<uint8_t> legacy_copy = wire;
        std::vector<uint8_t> migrated_copy = wire;
        legacy_decrement_ttl(legacy_copy);
        run_migrated("dec-ttl", migrated_copy);
        EXPECT_EQ(legacy_copy, migrated_copy);
    }
}

TEST_F(StageEquivalenceTest, ChecksumAgreesByteForByte) {
    Rng rng(12);
    std::vector<uint8_t> wire(20);
    for (int i = 0; i < 200; ++i) {
        generate_packet(rng, wire);
        std::vector<uint8_t> legacy_copy = wire;
        std::vector<uint8_t> migrated_copy = wire;
        legacy_checksum(legacy_copy);
        run_migrated("checksum", migrated_copy);
        EXPECT_EQ(legacy_copy, migrated_copy) << "packet " << i;
    }
}

TEST_F(StageEquivalenceTest, ClassifyAgrees) {
    Rng rng(13);
    std::vector<uint8_t> wire(20);
    for (int i = 0; i < 200; ++i) {
        generate_packet(rng, wire);
        std::vector<uint8_t> copy = wire;
        EXPECT_EQ(legacy_classify(wire), run_migrated("classify", copy));
    }
}

TEST_F(StageEquivalenceTest, RunStagesMatchesIndividualStages) {
    Rng rng(14);
    std::vector<uint8_t> wire(20);
    for (int i = 0; i < 100; ++i) {
        generate_packet(rng, wire);
        // All four stages individually (legacy path).
        std::vector<uint8_t> legacy_copy = wire;
        int64_t legacy_bucket = -1;
        if (legacy_validate(legacy_copy) != 0) {
            legacy_decrement_ttl(legacy_copy);
            legacy_checksum(legacy_copy);
            legacy_bucket = legacy_classify(legacy_copy);
        }
        // All four in one VM entry.
        int64_t fields[kFieldCount];
        ASSERT_TRUE(
            unmarshal_record(packet_codec(), wire, fields).is_ok());
        int64_t range[2] = {0, 4};
        auto result = vm_->call_with_buffer("run-stages", fields, range);
        ASSERT_TRUE(result.is_ok()) << result.status().to_string();
        if (legacy_bucket == -1) {
            EXPECT_EQ(result.value(), -1);
        } else {
            EXPECT_EQ(result.value(), legacy_bucket);
            std::vector<uint8_t> migrated_wire(20);
            ASSERT_TRUE(marshal_record(packet_codec(), fields,
                                       migrated_wire)
                            .is_ok());
            EXPECT_EQ(legacy_copy, migrated_wire);
        }
    }
}

TEST(PacketGeneratorTest, MostPacketsAreValid) {
    Rng rng(15);
    std::vector<uint8_t> wire(20);
    int valid = 0;
    for (int i = 0; i < 1000; ++i) {
        generate_packet(rng, wire);
        valid += legacy_validate(wire) != 0 ? 1 : 0;
    }
    EXPECT_GT(valid, 900);
    EXPECT_LT(valid, 1000);
}

TEST(PacketStagesTest, StageNamesAreStable) {
    EXPECT_STREQ(stage_name(kValidate), "validate");
    EXPECT_STREQ(stage_name(kClassify), "classify");
    EXPECT_STREQ(migrated_stage_function(kChecksum), "checksum");
}

}  // namespace
}  // namespace bitc::interop
