#include "interop/marshal.hpp"

#include <gtest/gtest.h>

#include "interop/packet_stages.hpp"
#include "support/rng.hpp"

namespace bitc::interop {
namespace {

TEST(MarshalTest, RoundTripsEveryFieldOfTheHeader) {
    Rng rng(1);
    std::vector<uint8_t> wire(packet_codec().layout().byte_size());
    generate_packet(rng, wire);

    int64_t fields[kFieldCount];
    ASSERT_TRUE(unmarshal_record(packet_codec(), wire, fields).is_ok());

    std::vector<uint8_t> back(wire.size(), 0);
    ASSERT_TRUE(marshal_record(packet_codec(), fields, back).is_ok());
    EXPECT_EQ(wire, back);
}

TEST(MarshalTest, FieldOrderMatchesEnum) {
    Rng rng(2);
    std::vector<uint8_t> wire(packet_codec().layout().byte_size());
    generate_packet(rng, wire);
    int64_t fields[kFieldCount];
    ASSERT_TRUE(unmarshal_record(packet_codec(), wire, fields).is_ok());
    EXPECT_EQ(fields[kVersion], 4);
    EXPECT_EQ(fields[kIhl], 5);
    auto ttl = packet_codec().read(wire, "ttl");
    ASSERT_TRUE(ttl.is_ok());
    EXPECT_EQ(static_cast<uint64_t>(fields[kTtl]), ttl.value());
}

TEST(MarshalTest, ShortWireBufferRejected) {
    int64_t fields[kFieldCount] = {0};
    std::vector<uint8_t> tiny(4);
    EXPECT_FALSE(unmarshal_record(packet_codec(), tiny, fields).is_ok());
    EXPECT_FALSE(marshal_record(packet_codec(), fields, tiny).is_ok());
}

TEST(MarshalTest, WrongFieldCountRejected) {
    std::vector<uint8_t> wire(packet_codec().layout().byte_size());
    int64_t too_few[3] = {0};
    EXPECT_FALSE(
        unmarshal_record(packet_codec(), wire, too_few).is_ok());
}

TEST(MarshalTest, OverwideValuesAreMasked) {
    std::vector<uint8_t> wire(packet_codec().layout().byte_size(), 0);
    int64_t fields[kFieldCount] = {0};
    fields[kVersion] = 0x14;  // 5 bits into a 4-bit field
    ASSERT_TRUE(marshal_record(packet_codec(), fields, wire).is_ok());
    auto version = packet_codec().read(wire, "version");
    ASSERT_TRUE(version.is_ok());
    EXPECT_EQ(version.value(), 0x4u);
}

}  // namespace
}  // namespace bitc::interop
