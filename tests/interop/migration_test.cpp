/**
 * The F4 property: every migration configuration — all-legacy,
 * all-migrated, and every interleaving — computes identical results on
 * the same packet stream; only cost differs.
 */
#include "interop/migration.hpp"

#include <gtest/gtest.h>

namespace bitc::interop {
namespace {

MigrationReport run_config(std::array<bool, kStageCount> migrated,
                           size_t packets = 2000, uint64_t seed = 42) {
    MigrationConfig config;
    config.migrated = migrated;
    auto pipeline = MigrationPipeline::create(config);
    EXPECT_TRUE(pipeline.is_ok()) << pipeline.status().to_string();
    Rng rng(seed);
    auto report = pipeline.value()->run(packets, rng);
    EXPECT_TRUE(report.is_ok()) << report.status().to_string();
    return report.is_ok() ? report.value() : MigrationReport{};
}

TEST(MigrationTest, AllLegacyBaselineProcessesEverything) {
    MigrationReport report = run_config({false, false, false, false});
    EXPECT_EQ(report.packets, 2000u);
    EXPECT_GT(report.dropped, 0u);
    EXPECT_LT(report.dropped, 300u);
    EXPECT_EQ(report.boundary_crossings, 0u);
    EXPECT_GT(report.route_checksum, 0u);
}

TEST(MigrationTest, AllMigratedMatchesAllLegacy) {
    MigrationReport legacy = run_config({false, false, false, false});
    MigrationReport migrated = run_config({true, true, true, true});
    EXPECT_EQ(migrated.packets, legacy.packets);
    EXPECT_EQ(migrated.dropped, legacy.dropped);
    EXPECT_EQ(migrated.route_checksum, legacy.route_checksum);
    EXPECT_EQ(migrated.header_checksum_sum, legacy.header_checksum_sum);
    // One unmarshal per packet, no marshal back (fields world at end).
    EXPECT_EQ(migrated.boundary_crossings, legacy.packets);
}

TEST(MigrationTest, EverySingleStageMigrationMatches) {
    MigrationReport baseline = run_config({false, false, false, false});
    for (size_t stage = 0; stage < kStageCount; ++stage) {
        std::array<bool, kStageCount> migrated{};
        migrated[stage] = true;
        MigrationReport report = run_config(migrated);
        EXPECT_EQ(report.dropped, baseline.dropped)
            << "stage " << stage_name(stage);
        EXPECT_EQ(report.route_checksum, baseline.route_checksum)
            << "stage " << stage_name(stage);
        EXPECT_EQ(report.header_checksum_sum,
                  baseline.header_checksum_sum)
            << "stage " << stage_name(stage);
    }
}

TEST(MigrationTest, InterleavingCostsMoreCrossings) {
    // Contiguous: stages 0-1 migrated -> 1 crossing in, 1 out, per
    // kept packet path. Interleaved: stages 0 and 2 -> up to 4.
    MigrationReport contiguous = run_config({true, true, false, false});
    MigrationReport interleaved = run_config({true, false, true, false});
    EXPECT_GT(interleaved.boundary_crossings,
              contiguous.boundary_crossings);
    // Same results regardless.
    EXPECT_EQ(interleaved.route_checksum, contiguous.route_checksum);
}

TEST(MigrationTest, AllSixteenConfigurationsAgree) {
    MigrationReport baseline = run_config({false, false, false, false},
                                          500, 7);
    for (uint32_t mask = 1; mask < 16; ++mask) {
        std::array<bool, kStageCount> migrated{};
        for (size_t s = 0; s < kStageCount; ++s) {
            migrated[s] = (mask & (1u << s)) != 0;
        }
        MigrationReport report = run_config(migrated, 500, 7);
        EXPECT_EQ(report.dropped, baseline.dropped) << "mask " << mask;
        EXPECT_EQ(report.route_checksum, baseline.route_checksum)
            << "mask " << mask;
        EXPECT_EQ(report.header_checksum_sum,
                  baseline.header_checksum_sum)
            << "mask " << mask;
    }
}

TEST(MigrationTest, BoxedVmConfigurationAlsoAgrees) {
    MigrationReport baseline = run_config({false, false, false, false},
                                          300, 9);
    MigrationConfig config;
    config.migrated = {true, true, true, true};
    config.vm.mode = vm::ValueMode::kBoxed;
    config.vm.heap = vm::HeapPolicy::kGenerational;
    config.vm.heap_words = 1 << 16;
    auto pipeline = MigrationPipeline::create(config);
    ASSERT_TRUE(pipeline.is_ok());
    Rng rng(9);
    auto report = pipeline.value()->run(300, rng);
    ASSERT_TRUE(report.is_ok()) << report.status().to_string();
    EXPECT_EQ(report.value().route_checksum, baseline.route_checksum);
    EXPECT_EQ(report.value().header_checksum_sum,
              baseline.header_checksum_sum);
}

TEST(MigrationTest, MigratedCountHelper) {
    MigrationConfig config;
    EXPECT_EQ(config.migrated_count(), 0u);
    config.migrated = {true, false, true, false};
    EXPECT_EQ(config.migrated_count(), 2u);
}

}  // namespace
}  // namespace bitc::interop
