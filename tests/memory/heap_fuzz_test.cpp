/**
 * Differential fuzzing of the storage policies: a random mutation
 * script (allocate / drop / rewire / read / collect) runs against each
 * heap while a plain C++ shadow model tracks what every live object
 * must contain.  Any divergence — lost objects, wrong payloads after
 * compaction, premature reclamation — fails loudly.
 */
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "memory/generational_heap.hpp"
#include "memory/markcompact_heap.hpp"
#include "memory/marksweep_heap.hpp"
#include "memory/refcount_heap.hpp"
#include "memory/semispace_heap.hpp"
#include "support/rng.hpp"
#include "tests/support/test_seed.hpp"

namespace bitc::mem {
namespace {

/** Shadow model of one rooted object. */
struct ShadowObject {
    uint64_t payload;                 // data slot value
    std::vector<int> children;        // indices into the root table, -1=null
};

struct FuzzParam {
    std::string label;
    std::function<std::unique_ptr<ManagedHeap>()> make;
};

class HeapFuzzTest : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(HeapFuzzTest, RandomScriptMatchesShadowModel) {
    constexpr int kRoots = 24;
    constexpr uint32_t kChildren = 3;
    constexpr int kSteps = 6000;

    auto heap = GetParam().make();
    uint64_t seed = bitc::test::seed_or(0xF022 + kSteps);
    BITC_SEED_TRACE(seed);
    Rng rng(seed);

    // Root table: parallel arrays of heap refs and shadow objects.
    std::vector<ObjRef> roots(kRoots, kNullRef);
    std::vector<std::unique_ptr<ShadowObject>> shadow(kRoots);
    for (auto& r : roots) heap->add_root(&r);

    auto check_one = [&](int i) {
        if (shadow[i] == nullptr) {
            EXPECT_EQ(roots[i], kNullRef);
            return;
        }
        ASSERT_TRUE(heap->is_live(roots[i])) << "slot " << i;
        EXPECT_EQ(heap->load(roots[i], kChildren), shadow[i]->payload)
            << "slot " << i;
        for (uint32_t c = 0; c < kChildren; ++c) {
            ObjRef child = heap->load_ref(roots[i], c);
            int expected = shadow[i]->children[c];
            if (expected == -1) {
                EXPECT_EQ(child, kNullRef);
            } else {
                EXPECT_EQ(child, roots[expected])
                    << "slot " << i << " child " << c;
            }
        }
    };

    for (int step = 0; step < kSteps; ++step) {
        switch (rng.next_below(10)) {
          case 0: case 1: case 2: case 3: {  // allocate into a slot
            int i = static_cast<int>(rng.next_below(kRoots));
            // The shadow model identifies objects by their root slot,
            // so edges to the slot's previous occupant must be cut
            // before the slot is rebound to a fresh object.
            for (int k = 0; k < kRoots; ++k) {
                if (shadow[k] == nullptr) continue;
                for (uint32_t c = 0; c < kChildren; ++c) {
                    if (shadow[k]->children[c] == i) {
                        heap->store_ref(roots[k], c, kNullRef);
                        shadow[k]->children[c] = -1;
                    }
                }
            }
            auto obj = heap->allocate(kChildren + 1, kChildren, 1);
            if (!obj.is_ok()) break;  // full is fine; GC may be off
            uint64_t payload = rng.next();
            heap->store(obj.value(), kChildren, payload);
            heap->root_assign(&roots[i], obj.value());
            shadow[i] = std::make_unique<ShadowObject>();
            shadow[i]->payload = payload;
            shadow[i]->children.assign(kChildren, -1);
            break;
          }
          case 4: case 5: {  // rewire an edge (possibly cyclic)
            int i = static_cast<int>(rng.next_below(kRoots));
            int j = static_cast<int>(rng.next_below(kRoots));
            if (shadow[i] == nullptr) break;
            uint32_t c =
                static_cast<uint32_t>(rng.next_below(kChildren));
            if (shadow[j] == nullptr) {
                heap->store_ref(roots[i], c, kNullRef);
                shadow[i]->children[c] = -1;
            } else {
                heap->store_ref(roots[i], c, roots[j]);
                shadow[i]->children[c] = j;
            }
            break;
          }
          case 6: {  // drop a root (object may die; edges to it were
                     // via the root table only in the shadow model, so
                     // clear them first to keep the model exact)
            int i = static_cast<int>(rng.next_below(kRoots));
            if (shadow[i] == nullptr) break;
            for (int k = 0; k < kRoots; ++k) {
                if (shadow[k] == nullptr) continue;
                for (uint32_t c = 0; c < kChildren; ++c) {
                    if (shadow[k]->children[c] == i) {
                        heap->store_ref(roots[k], c, kNullRef);
                        shadow[k]->children[c] = -1;
                    }
                }
            }
            heap->root_assign(&roots[i], kNullRef);
            shadow[i] = nullptr;
            break;
          }
          case 7: {  // force a collection
            heap->collect();
            break;
          }
          default: {  // read-validate one random slot
            check_one(static_cast<int>(rng.next_below(kRoots)));
            break;
          }
        }
    }

    // Full sweep at the end, after one more collection.
    heap->collect();
    for (int i = 0; i < kRoots; ++i) check_one(i);

    for (auto& r : roots) heap->remove_root(&r);
}

std::vector<FuzzParam> fuzz_heaps() {
    static constexpr size_t kWords = 1 << 14;
    return {
        {"refcount",
         [] { return std::make_unique<RefCountHeap>(kWords); }},
        {"marksweep",
         [] { return std::make_unique<MarkSweepHeap>(kWords); }},
        {"markcompact",
         [] { return std::make_unique<MarkCompactHeap>(kWords); }},
        {"semispace",
         [] { return std::make_unique<SemispaceHeap>(kWords * 2); }},
        {"generational",
         [] {
             return std::make_unique<GenerationalHeap>(kWords,
                                                       kWords / 8);
         }},
    };
}

INSTANTIATE_TEST_SUITE_P(
    TracingPolicies, HeapFuzzTest, ::testing::ValuesIn(fuzz_heaps()),
    [](const ::testing::TestParamInfo<FuzzParam>& info) {
        return info.param.label;
    });

}  // namespace
}  // namespace bitc::mem
