/** Tracing-collector specifics: mark–sweep, semispace, generational. */
#include <gtest/gtest.h>

#include "memory/generational_heap.hpp"
#include "memory/markcompact_heap.hpp"
#include "memory/marksweep_heap.hpp"
#include "memory/semispace_heap.hpp"

namespace bitc::mem {
namespace {

TEST(MarkSweepTest, UnreachableObjectsAreSwept) {
    MarkSweepHeap heap(1024);
    auto garbage = heap.allocate(4, 0, 1);
    ASSERT_TRUE(garbage.is_ok());
    heap.collect();
    EXPECT_FALSE(heap.is_live(garbage.value()));
}

TEST(MarkSweepTest, CyclesAreCollected) {
    MarkSweepHeap heap(1024);
    ObjRef a_ref;
    {
        LocalRoot a(heap);
        LocalRoot b(heap);
        auto ra = heap.allocate(1, 1, 1);
        auto rb = heap.allocate(1, 1, 1);
        ASSERT_TRUE(ra.is_ok());
        ASSERT_TRUE(rb.is_ok());
        a.set(ra.value());
        b.set(rb.value());
        heap.store_ref(a.get(), 0, b.get());
        heap.store_ref(b.get(), 0, a.get());
        a_ref = a.get();
    }
    heap.collect();
    EXPECT_FALSE(heap.is_live(a_ref));
}

TEST(MarkSweepTest, AllocationFailureTriggersCollection) {
    MarkSweepHeap heap(128);
    // Unrooted garbage fills the heap; allocation must reclaim it.
    for (int i = 0; i < 100; ++i) {
        auto obj = heap.allocate(8, 0, 1);
        ASSERT_TRUE(obj.is_ok()) << "iteration " << i;
    }
    EXPECT_GE(heap.stats().collections, 1u);
}

TEST(MarkSweepTest, PauseStatsAccumulate) {
    MarkSweepHeap heap(1024);
    heap.collect();
    heap.collect();
    EXPECT_EQ(heap.pause_stats().count(), 2u);
}

TEST(MarkCompactTest, CompactionSlidesSurvivorsTogether) {
    MarkCompactHeap heap(1024);
    // Allocate A, garbage, B; after collection the free space must be
    // one contiguous tail (no fragmentation).
    LocalRoot a(heap);
    {
        auto r = heap.allocate(4, 0, 1);
        ASSERT_TRUE(r.is_ok());
        a.set(r.value());
    }
    ASSERT_TRUE(heap.allocate(64, 0, 1).is_ok());  // garbage between
    LocalRoot b(heap);
    {
        auto r = heap.allocate(4, 0, 1);
        ASSERT_TRUE(r.is_ok());
        b.set(r.value());
    }
    heap.store(a.get(), 0, 111);
    heap.store(b.get(), 0, 222);
    size_t free_before = heap.free_words();
    heap.collect();
    EXPECT_EQ(heap.load(a.get(), 0), 111u);
    EXPECT_EQ(heap.load(b.get(), 0), 222u);
    // The 65 garbage words came back as contiguous wilderness.
    EXPECT_EQ(heap.free_words(), free_before + 65);
    // A single allocation of that whole extent must now succeed.
    EXPECT_TRUE(heap
                    .allocate(static_cast<uint32_t>(heap.free_words()) -
                                  1,
                              0, 1)
                    .is_ok());
}

TEST(MarkCompactTest, AddressOrderIsPreserved) {
    MarkCompactHeap heap(4096);
    std::vector<ObjRef> refs(8, kNullRef);
    for (auto& r : refs) heap.add_root(&r);
    for (int i = 0; i < 8; ++i) {
        auto obj = heap.allocate(2, 0, 1);
        ASSERT_TRUE(obj.is_ok());
        heap.store(obj.value(), 0, static_cast<uint64_t>(i));
        heap.root_assign(&refs[i], obj.value());
    }
    // Kill the even ones, collect, check the odd ones kept order.
    for (int i = 0; i < 8; i += 2) heap.root_assign(&refs[i], kNullRef);
    heap.collect();
    for (int i = 1; i < 8; i += 2) {
        EXPECT_EQ(heap.load(refs[i], 0), static_cast<uint64_t>(i));
    }
    for (auto& r : refs) heap.remove_root(&r);
}

TEST(MarkCompactTest, ExhaustionTriggersCompaction) {
    MarkCompactHeap heap(256);
    for (int i = 0; i < 200; ++i) {
        ASSERT_TRUE(heap.allocate(8, 0, 1).is_ok()) << "iteration " << i;
    }
    EXPECT_GE(heap.stats().collections, 1u);
}

TEST(SemispaceTest, CollectionCompactsAndPreservesData) {
    SemispaceHeap heap(2048);
    LocalRoot root(heap);
    {
        auto r = heap.allocate(3, 1, 1);
        ASSERT_TRUE(r.is_ok());
        root.set(r.value());
    }
    heap.store(root.get(), 2, 777);
    // Interleave garbage so the survivor moves.
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(heap.allocate(8, 0, 1).is_ok());
    }
    heap.collect();
    EXPECT_EQ(heap.load(root.get(), 2), 777u);
}

TEST(SemispaceTest, HandleStaysValidAcrossMoves) {
    SemispaceHeap heap(2048);
    LocalRoot root(heap);
    {
        auto r = heap.allocate(2, 0, 1);
        ASSERT_TRUE(r.is_ok());
        root.set(r.value());
    }
    ObjRef id = root.get();
    for (int i = 0; i < 5; ++i) heap.collect();
    EXPECT_EQ(root.get(), id) << "handle id must be stable";
    EXPECT_TRUE(heap.is_live(id));
}

TEST(SemispaceTest, GarbageReclaimedAutomaticallyUnderPressure) {
    SemispaceHeap heap(1024);  // 512-word semispaces
    for (int i = 0; i < 500; ++i) {
        ASSERT_TRUE(heap.allocate(8, 0, 1).is_ok()) << "iteration " << i;
    }
    EXPECT_GE(heap.stats().collections, 1u);
}

TEST(SemispaceTest, LiveSetLargerThanSemispaceFails) {
    SemispaceHeap heap(128);  // 64-word semispaces
    std::vector<ObjRef> refs(20, kNullRef);
    for (auto& r : refs) heap.add_root(&r);
    bool failed = false;
    for (auto& r : refs) {
        auto obj = heap.allocate(8, 0, 1);
        if (!obj.is_ok()) {
            failed = true;
            EXPECT_EQ(obj.status().code(),
                      StatusCode::kResourceExhausted);
            break;
        }
        heap.root_assign(&r, obj.value());
    }
    EXPECT_TRUE(failed);
    for (auto& r : refs) heap.remove_root(&r);
}

TEST(GenerationalTest, MinorCollectionPromotesSurvivors) {
    GenerationalHeap heap(1 << 14, 1 << 8);
    LocalRoot root(heap);
    {
        auto r = heap.allocate(2, 0, 1);
        ASSERT_TRUE(r.is_ok());
        root.set(r.value());
    }
    heap.store(root.get(), 1, 31337);
    EXPECT_TRUE(heap.in_nursery(root.get()));
    ASSERT_TRUE(heap.minor_collect().is_ok());
    EXPECT_FALSE(heap.in_nursery(root.get()));
    EXPECT_EQ(heap.load(root.get(), 1), 31337u);
    EXPECT_EQ(heap.stats().minor_collections, 1u);
}

TEST(GenerationalTest, DeadNurseryObjectsDieInMinor) {
    GenerationalHeap heap(1 << 14, 1 << 8);
    auto garbage = heap.allocate(2, 0, 1);
    ASSERT_TRUE(garbage.is_ok());
    ASSERT_TRUE(heap.minor_collect().is_ok());
    EXPECT_FALSE(heap.is_live(garbage.value()));
}

TEST(GenerationalTest, WriteBarrierTracksOldToYoungEdges) {
    GenerationalHeap heap(1 << 14, 1 << 8);
    LocalRoot old_obj(heap);
    {
        auto r = heap.allocate(1, 1, 1);
        ASSERT_TRUE(r.is_ok());
        old_obj.set(r.value());
    }
    ASSERT_TRUE(heap.minor_collect().is_ok());  // promote old_obj
    ASSERT_FALSE(heap.in_nursery(old_obj.get()));

    // Young object referenced ONLY from the old generation.
    auto young = heap.allocate(2, 0, 1);
    ASSERT_TRUE(young.is_ok());
    heap.store(young.value(), 1, 424242);
    heap.store_ref(old_obj.get(), 0, young.value());
    EXPECT_EQ(heap.remembered_set_size(), 1u);

    ASSERT_TRUE(heap.minor_collect().is_ok());
    ObjRef promoted = heap.load_ref(old_obj.get(), 0);
    ASSERT_TRUE(heap.is_live(promoted));
    EXPECT_EQ(heap.load(promoted, 1), 424242u);
}

TEST(GenerationalTest, OversizedObjectsArePretenured) {
    GenerationalHeap heap(1 << 14, 1 << 8);
    // > nursery/4 words goes straight to the old generation.
    auto big = heap.allocate(128, 0, 1);
    ASSERT_TRUE(big.is_ok());
    EXPECT_FALSE(heap.in_nursery(big.value()));
}

TEST(GenerationalTest, FullCollectionReclaimsOldGarbage) {
    GenerationalHeap heap(1 << 14, 1 << 8);
    ObjRef dead;
    {
        LocalRoot tmp(heap);
        auto r = heap.allocate(2, 0, 1);
        ASSERT_TRUE(r.is_ok());
        tmp.set(r.value());
        ASSERT_TRUE(heap.minor_collect().is_ok());  // tenure it
        dead = tmp.get();
    }
    ASSERT_TRUE(heap.is_live(dead)) << "tenured, root just dropped";
    heap.collect();
    EXPECT_FALSE(heap.is_live(dead));
}

TEST(GenerationalTest, SteadyChurnRunsManyMinorsFewMajors) {
    GenerationalHeap heap(1 << 14, 1 << 8);
    for (int i = 0; i < 5000; ++i) {
        ASSERT_TRUE(heap.allocate(4, 0, 1).is_ok()) << "iteration " << i;
    }
    EXPECT_GT(heap.stats().minor_collections, 10u);
    // Nothing survives, so the old generation should stay quiet.
    EXPECT_LE(heap.stats().collections, 2u);
}

}  // namespace
}  // namespace bitc::mem
