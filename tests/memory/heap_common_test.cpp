/**
 * Behaviour every ManagedHeap backend must share, run as a
 * parameterized suite across all six policies.
 */
#include <gtest/gtest.h>
#include <functional>
#include <memory>
#include <string>

#include "memory/generational_heap.hpp"
#include "memory/heap.hpp"
#include "memory/manual_heap.hpp"
#include "memory/markcompact_heap.hpp"
#include "memory/marksweep_heap.hpp"
#include "memory/refcount_heap.hpp"
#include "memory/region_heap.hpp"
#include "memory/semispace_heap.hpp"

namespace bitc::mem {
namespace {

constexpr size_t kHeapWords = 1 << 16;

using HeapFactory = std::function<std::unique_ptr<ManagedHeap>()>;

struct HeapParam {
    std::string label;
    HeapFactory make;
};

class HeapCommonTest : public ::testing::TestWithParam<HeapParam> {
  protected:
    void SetUp() override { heap_ = GetParam().make(); }
    std::unique_ptr<ManagedHeap> heap_;
};

TEST_P(HeapCommonTest, AllocateAndAccessDataSlots) {
    auto obj = heap_->allocate(4, 0, 7);
    ASSERT_TRUE(obj.is_ok());
    ObjRef ref = obj.value();
    EXPECT_TRUE(heap_->is_live(ref));
    EXPECT_EQ(heap_->num_slots(ref), 4u);
    EXPECT_EQ(heap_->num_refs(ref), 0u);
    EXPECT_EQ(heap_->tag(ref), 7u);

    heap_->store(ref, 0, 0xdeadbeefull);
    heap_->store(ref, 3, 42);
    EXPECT_EQ(heap_->load(ref, 0), 0xdeadbeefull);
    EXPECT_EQ(heap_->load(ref, 3), 42u);
}

TEST_P(HeapCommonTest, FreshObjectSlotsAreZeroed) {
    auto obj = heap_->allocate(8, 2, 1);
    ASSERT_TRUE(obj.is_ok());
    for (uint32_t i = 0; i < 2; ++i) {
        EXPECT_EQ(heap_->load_ref(obj.value(), i), kNullRef);
    }
    for (uint32_t i = 2; i < 8; ++i) {
        EXPECT_EQ(heap_->load(obj.value(), i), 0u);
    }
}

TEST_P(HeapCommonTest, ReferenceSlotsLinkObjects) {
    LocalRoot a(*heap_);
    {
        auto r = heap_->allocate(2, 1, 1);
        ASSERT_TRUE(r.is_ok());
        a.set(r.value());
    }
    LocalRoot b(*heap_);
    {
        auto r = heap_->allocate(2, 1, 1);
        ASSERT_TRUE(r.is_ok());
        b.set(r.value());
    }
    heap_->store_ref(a.get(), 0, b.get());
    heap_->store(b.get(), 1, 99);
    EXPECT_EQ(heap_->load_ref(a.get(), 0), b.get());
    EXPECT_EQ(heap_->load(heap_->load_ref(a.get(), 0), 1), 99u);
}

TEST_P(HeapCommonTest, NullRefIsNeverLive) {
    EXPECT_FALSE(heap_->is_live(kNullRef));
}

TEST_P(HeapCommonTest, StatsTrackAllocations) {
    auto r1 = heap_->allocate(4, 0, 1);
    auto r2 = heap_->allocate(4, 0, 1);
    ASSERT_TRUE(r1.is_ok());
    ASSERT_TRUE(r2.is_ok());
    EXPECT_EQ(heap_->stats().allocations, 2u);
    EXPECT_GT(heap_->stats().bytes_allocated, 0u);
    EXPECT_GT(heap_->stats().words_in_use, 0u);
    EXPECT_GE(heap_->stats().peak_words_in_use,
              heap_->stats().words_in_use);
}

TEST_P(HeapCommonTest, RootedDataSurvivesCollection) {
    LocalRoot root(*heap_);
    {
        auto r = heap_->allocate(3, 1, 1);
        ASSERT_TRUE(r.is_ok());
        root.set(r.value());
    }
    heap_->store(root.get(), 2, 1234);
    // Hang a child off the root as well.
    {
        auto child = heap_->allocate(2, 0, 1);
        ASSERT_TRUE(child.is_ok());
        heap_->store(child.value(), 1, 5678);
        heap_->store_ref(root.get(), 0, child.value());
    }
    heap_->collect();
    ASSERT_TRUE(heap_->is_live(root.get()));
    EXPECT_EQ(heap_->load(root.get(), 2), 1234u);
    ObjRef child = heap_->load_ref(root.get(), 0);
    ASSERT_TRUE(heap_->is_live(child));
    EXPECT_EQ(heap_->load(child, 1), 5678u);
}

TEST_P(HeapCommonTest, ManyObjectsRetainDistinctIdentity) {
    constexpr int kCount = 100;
    std::vector<ObjRef> refs(kCount, kNullRef);
    for (auto& r : refs) heap_->add_root(&r);
    for (int i = 0; i < kCount; ++i) {
        auto obj = heap_->allocate(2, 0, 1);
        ASSERT_TRUE(obj.is_ok());
        heap_->store(obj.value(), 1, static_cast<uint64_t>(i));
        heap_->root_assign(&refs[i], obj.value());
    }
    heap_->collect();
    for (int i = 0; i < kCount; ++i) {
        EXPECT_EQ(heap_->load(refs[i], 1), static_cast<uint64_t>(i));
    }
    for (auto& r : refs) heap_->remove_root(&r);
}

TEST_P(HeapCommonTest, ZeroSlotObjectsAreAllocatable) {
    auto obj = heap_->allocate(0, 0, 9);
    ASSERT_TRUE(obj.is_ok());
    EXPECT_EQ(heap_->num_slots(obj.value()), 0u);
    EXPECT_EQ(heap_->tag(obj.value()), 9u);
}

TEST_P(HeapCommonTest, LiveObjectCountTracksAllocations) {
    size_t before = heap_->live_objects();
    auto a = heap_->allocate(1, 0, 1);
    auto b = heap_->allocate(1, 0, 1);
    ASSERT_TRUE(a.is_ok());
    ASSERT_TRUE(b.is_ok());
    EXPECT_EQ(heap_->live_objects(), before + 2);
}

std::vector<HeapParam> all_heaps() {
    return {
        {"manual",
         [] { return std::make_unique<ManualHeap>(kHeapWords); }},
        {"region",
         [] { return std::make_unique<RegionHeap>(kHeapWords); }},
        {"refcount",
         [] { return std::make_unique<RefCountHeap>(kHeapWords); }},
        {"marksweep",
         [] { return std::make_unique<MarkSweepHeap>(kHeapWords); }},
        {"markcompact",
         [] { return std::make_unique<MarkCompactHeap>(kHeapWords); }},
        {"semispace",
         [] { return std::make_unique<SemispaceHeap>(kHeapWords * 2); }},
        {"generational",
         [] {
             return std::make_unique<GenerationalHeap>(kHeapWords,
                                                       kHeapWords / 8);
         }},
    };
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, HeapCommonTest, ::testing::ValuesIn(all_heaps()),
    [](const ::testing::TestParamInfo<HeapParam>& info) {
        return info.param.label;
    });

}  // namespace
}  // namespace bitc::mem
