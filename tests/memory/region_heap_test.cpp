#include "memory/region_heap.hpp"

#include <gtest/gtest.h>

namespace bitc::mem {
namespace {

TEST(RegionHeapTest, ReleaseToFreesEverythingAfterMark) {
    RegionHeap heap(1024);
    auto keep = heap.allocate(2, 0, 1);
    ASSERT_TRUE(keep.is_ok());
    size_t mark = heap.mark();
    auto drop1 = heap.allocate(2, 0, 1);
    auto drop2 = heap.allocate(2, 0, 1);
    ASSERT_TRUE(drop1.is_ok());
    ASSERT_TRUE(drop2.is_ok());

    heap.release_to(mark);
    EXPECT_TRUE(heap.is_live(keep.value()));
    EXPECT_FALSE(heap.is_live(drop1.value()));
    EXPECT_FALSE(heap.is_live(drop2.value()));
}

TEST(RegionHeapTest, StorageIsReusedAfterRelease) {
    RegionHeap heap(64);
    size_t mark = heap.mark();
    for (int round = 0; round < 100; ++round) {
        auto a = heap.allocate(20, 0, 1);
        ASSERT_TRUE(a.is_ok()) << "round " << round;
        heap.release_to(mark);
    }
}

TEST(RegionHeapTest, ExhaustionWithoutRelease) {
    RegionHeap heap(64);
    auto a = heap.allocate(30, 0, 1);
    auto b = heap.allocate(30, 0, 1);
    ASSERT_TRUE(a.is_ok());
    ASSERT_TRUE(b.is_ok());
    auto c = heap.allocate(30, 0, 1);
    ASSERT_FALSE(c.is_ok());
    EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
}

TEST(RegionHeapTest, NestedRegionsReleaseInLifoOrder) {
    RegionHeap heap(1024);
    auto outer = heap.allocate(2, 0, 1);
    size_t outer_mark = heap.mark();
    auto middle = heap.allocate(2, 0, 1);
    size_t inner_mark = heap.mark();
    auto inner = heap.allocate(2, 0, 1);
    ASSERT_TRUE(outer.is_ok());
    ASSERT_TRUE(middle.is_ok());
    ASSERT_TRUE(inner.is_ok());

    heap.release_to(inner_mark);
    EXPECT_TRUE(heap.is_live(middle.value()));
    EXPECT_FALSE(heap.is_live(inner.value()));

    heap.release_to(outer_mark);
    EXPECT_TRUE(heap.is_live(outer.value()));
    EXPECT_FALSE(heap.is_live(middle.value()));
}

TEST(RegionHeapTest, ResetRegionEmptiesHeap) {
    RegionHeap heap(1024);
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(heap.allocate(4, 0, 1).is_ok());
    }
    heap.reset_region();
    EXPECT_EQ(heap.live_objects(), 0u);
    EXPECT_EQ(heap.stats().words_in_use, 0u);
    EXPECT_EQ(heap.mark(), 0u);
}

TEST(RegionHeapTest, FreeObjectIsIgnored) {
    RegionHeap heap(1024);
    auto obj = heap.allocate(2, 0, 1);
    ASSERT_TRUE(obj.is_ok());
    heap.free_object(obj.value());
    EXPECT_TRUE(heap.is_live(obj.value()));
    EXPECT_FALSE(heap.needs_explicit_free());
}

TEST(RegionHeapTest, PauseStatsRecordReleases) {
    RegionHeap heap(1024);
    size_t mark = heap.mark();
    ASSERT_TRUE(heap.allocate(4, 0, 1).is_ok());
    heap.release_to(mark);
    EXPECT_EQ(heap.pause_stats().count(), 1u);
}

}  // namespace
}  // namespace bitc::mem
