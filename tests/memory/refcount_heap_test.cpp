#include "memory/refcount_heap.hpp"

#include <gtest/gtest.h>

namespace bitc::mem {
namespace {

TEST(RefCountHeapTest, RootKeepsObjectAlive) {
    RefCountHeap heap(1024);
    LocalRoot root(heap);
    {
        auto obj = heap.allocate(2, 0, 1);
        ASSERT_TRUE(obj.is_ok());
        root.set(obj.value());
    }
    EXPECT_EQ(heap.ref_count(root.get()), 1u);
    EXPECT_TRUE(heap.is_live(root.get()));
}

TEST(RefCountHeapTest, DroppingLastReferenceFreesImmediately) {
    RefCountHeap heap(1024);
    LocalRoot root(heap);
    auto obj = heap.allocate(2, 0, 1);
    ASSERT_TRUE(obj.is_ok());
    root.set(obj.value());
    ObjRef ref = root.get();
    root.set(kNullRef);
    // Incremental reclamation: no collect() call needed.
    EXPECT_FALSE(heap.is_live(ref));
    EXPECT_EQ(heap.stats().frees, 1u);
}

TEST(RefCountHeapTest, HeapEdgesCountToo) {
    RefCountHeap heap(1024);
    LocalRoot a(heap);
    LocalRoot b(heap);
    {
        auto ra = heap.allocate(1, 1, 1);
        auto rb = heap.allocate(1, 1, 1);
        ASSERT_TRUE(ra.is_ok());
        ASSERT_TRUE(rb.is_ok());
        a.set(ra.value());
        b.set(rb.value());
    }
    heap.store_ref(a.get(), 0, b.get());
    EXPECT_EQ(heap.ref_count(b.get()), 2u);  // root + edge

    ObjRef b_ref = b.get();
    b.set(kNullRef);
    EXPECT_TRUE(heap.is_live(b_ref)) << "edge from a still holds b";

    heap.store_ref(a.get(), 0, kNullRef);
    EXPECT_FALSE(heap.is_live(b_ref));
}

TEST(RefCountHeapTest, CascadingFreeOfLongChain) {
    RefCountHeap heap(1 << 16);
    LocalRoot head(heap);
    // Build a 5000-node list; dropping the head must free everything
    // without overflowing the C++ stack.
    for (int i = 0; i < 5000; ++i) {
        LocalRoot tmp(heap);
        auto node = heap.allocate(2, 1, 1);
        ASSERT_TRUE(node.is_ok());
        tmp.set(node.value());
        heap.store_ref(tmp.get(), 0, head.get());
        head.set(tmp.get());
    }
    EXPECT_EQ(heap.live_objects(), 5000u);
    head.set(kNullRef);
    EXPECT_EQ(heap.live_objects(), 0u);
}

TEST(RefCountHeapTest, OverwritingReferenceReleasesOldTarget) {
    RefCountHeap heap(1024);
    LocalRoot holder(heap);
    {
        auto h = heap.allocate(1, 1, 1);
        ASSERT_TRUE(h.is_ok());
        holder.set(h.value());
    }
    auto first = heap.allocate(1, 0, 1);
    ASSERT_TRUE(first.is_ok());
    heap.store_ref(holder.get(), 0, first.value());
    auto second = heap.allocate(1, 0, 1);
    ASSERT_TRUE(second.is_ok());
    heap.store_ref(holder.get(), 0, second.value());
    EXPECT_FALSE(heap.is_live(first.value()));
    EXPECT_TRUE(heap.is_live(second.value()));
}

TEST(RefCountHeapTest, CyclesLeakUntilBackupCollection) {
    RefCountHeap heap(1024);
    ObjRef a_ref;
    ObjRef b_ref;
    {
        LocalRoot a(heap);
        LocalRoot b(heap);
        auto ra = heap.allocate(1, 1, 1);
        auto rb = heap.allocate(1, 1, 1);
        ASSERT_TRUE(ra.is_ok());
        ASSERT_TRUE(rb.is_ok());
        a.set(ra.value());
        b.set(rb.value());
        heap.store_ref(a.get(), 0, b.get());
        heap.store_ref(b.get(), 0, a.get());
        a_ref = a.get();
        b_ref = b.get();
    }
    // Roots gone, but the 2-cycle keeps both counts at 1: the classic
    // RC leak from Wilson's survey.
    EXPECT_TRUE(heap.is_live(a_ref));
    EXPECT_TRUE(heap.is_live(b_ref));

    heap.collect();
    EXPECT_FALSE(heap.is_live(a_ref));
    EXPECT_FALSE(heap.is_live(b_ref));
}

TEST(RefCountHeapTest, BackupCollectionPreservesReachableCounts) {
    RefCountHeap heap(1024);
    LocalRoot a(heap);
    {
        auto ra = heap.allocate(1, 1, 1);
        ASSERT_TRUE(ra.is_ok());
        a.set(ra.value());
    }
    LocalRoot b(heap);
    {
        auto rb = heap.allocate(1, 1, 1);
        ASSERT_TRUE(rb.is_ok());
        b.set(rb.value());
    }
    heap.store_ref(a.get(), 0, b.get());
    heap.collect();
    EXPECT_EQ(heap.ref_count(b.get()), 2u);  // recomputed: root + edge
    // Counts still work after the trace: dropping both kills b.
    heap.store_ref(a.get(), 0, kNullRef);
    ObjRef b_ref = b.get();
    b.set(kNullRef);
    EXPECT_FALSE(heap.is_live(b_ref));
}

TEST(RefCountHeapTest, AllocationTriggersCollectionWhenClogged) {
    RefCountHeap heap(64);
    // Fill the heap with an unrooted cycle (2 x 31 words).
    {
        LocalRoot a(heap);
        LocalRoot b(heap);
        auto ra = heap.allocate(30, 1, 1);
        auto rb = heap.allocate(30, 1, 1);
        ASSERT_TRUE(ra.is_ok());
        ASSERT_TRUE(rb.is_ok());
        a.set(ra.value());
        b.set(rb.value());
        heap.store_ref(a.get(), 0, b.get());
        heap.store_ref(b.get(), 0, a.get());
    }
    // This allocation only fits if the backup collector reclaims the cycle.
    auto big = heap.allocate(25, 0, 1);
    EXPECT_TRUE(big.is_ok());
    EXPECT_GE(heap.stats().collections, 1u);
}

TEST(RefCountHeapTest, BarrierHitsAreCounted) {
    RefCountHeap heap(1024);
    LocalRoot a(heap);
    {
        auto ra = heap.allocate(2, 2, 1);
        ASSERT_TRUE(ra.is_ok());
        a.set(ra.value());
    }
    auto b = heap.allocate(1, 0, 1);
    ASSERT_TRUE(b.is_ok());
    uint64_t before = heap.stats().barrier_hits;
    heap.store_ref(a.get(), 0, b.value());
    EXPECT_EQ(heap.stats().barrier_hits, before + 1);
}

}  // namespace
}  // namespace bitc::mem
