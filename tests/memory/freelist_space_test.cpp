#include "memory/freelist_space.hpp"

#include <gtest/gtest.h>
#include <memory>
#include <set>
#include <vector>

#include "support/rng.hpp"

namespace bitc::mem {
namespace {

class FreeListSpaceTest : public ::testing::Test {
  protected:
    static constexpr size_t kWords = 4096;
    FreeListSpaceTest()
        : storage_(std::make_unique<uint64_t[]>(kWords)),
          space_(storage_.get(), 0, kWords) {}

    std::unique_ptr<uint64_t[]> storage_;
    FreeListSpace space_;
};

TEST_F(FreeListSpaceTest, AllocatesDistinctBlocks) {
    uint32_t a = space_.allocate(4);
    uint32_t b = space_.allocate(4);
    ASSERT_NE(a, FreeListSpace::kNoBlock);
    ASSERT_NE(b, FreeListSpace::kNoBlock);
    EXPECT_NE(a, b);
}

TEST_F(FreeListSpaceTest, ReusesFreedBlockOfSameSize) {
    uint32_t a = space_.allocate(8);
    space_.free_block(a, 8);
    uint32_t b = space_.allocate(8);
    EXPECT_EQ(a, b);
}

TEST_F(FreeListSpaceTest, RoundsTinyRequestsUp) {
    EXPECT_EQ(FreeListSpace::round_up(0), FreeListSpace::kMinBlockWords);
    EXPECT_EQ(FreeListSpace::round_up(1), FreeListSpace::kMinBlockWords);
    EXPECT_EQ(FreeListSpace::round_up(5), 5u);
}

TEST_F(FreeListSpaceTest, ExhaustionReturnsNoBlock) {
    std::vector<uint32_t> blocks;
    while (true) {
        uint32_t b = space_.allocate(64);
        if (b == FreeListSpace::kNoBlock) break;
        blocks.push_back(b);
    }
    EXPECT_EQ(blocks.size(), kWords / 64);
    // Free one and the allocation succeeds again.
    space_.free_block(blocks.back(), 64);
    EXPECT_NE(space_.allocate(64), FreeListSpace::kNoBlock);
}

TEST_F(FreeListSpaceTest, SplitsLargerBlocks) {
    uint32_t big = space_.allocate(32);
    // Consume the wilderness so future allocations must split.
    while (space_.allocate(64) != FreeListSpace::kNoBlock) {
    }
    space_.free_block(big, 32);
    uint32_t small = space_.allocate(8);
    ASSERT_NE(small, FreeListSpace::kNoBlock);
    // The split remainder should also be allocatable.
    uint32_t rest = space_.allocate(24);
    ASSERT_NE(rest, FreeListSpace::kNoBlock);
}

TEST_F(FreeListSpaceTest, LargeListFirstFit) {
    uint32_t huge = space_.allocate(1000);
    ASSERT_NE(huge, FreeListSpace::kNoBlock);
    space_.free_block(huge, 1000);
    // Request bigger than every exact class: served from the large list.
    uint32_t again = space_.allocate(200);
    ASSERT_NE(again, FreeListSpace::kNoBlock);
    EXPECT_EQ(again, huge);
}

TEST_F(FreeListSpaceTest, FreeWordsAccounting) {
    size_t initial = space_.free_words();
    EXPECT_EQ(initial, kWords);
    uint32_t a = space_.allocate(16);
    EXPECT_EQ(space_.free_words(), kWords - 16);
    space_.free_block(a, 16);
    EXPECT_EQ(space_.free_words(), kWords);
}

TEST_F(FreeListSpaceTest, ResetRestoresFullCapacity) {
    for (int i = 0; i < 10; ++i) space_.allocate(32);
    space_.reset();
    EXPECT_EQ(space_.free_words(), kWords);
    EXPECT_NE(space_.allocate(kWords), FreeListSpace::kNoBlock);
}

TEST_F(FreeListSpaceTest, NoOverlapUnderRandomChurn) {
    // Property: live blocks never overlap, under randomized alloc/free.
    Rng rng(2026);
    struct Block {
        uint32_t offset;
        size_t words;
    };
    std::vector<Block> live;
    for (int step = 0; step < 20000; ++step) {
        if (live.empty() || rng.next_bool(0.55)) {
            size_t words = FreeListSpace::round_up(2 + rng.next_below(40));
            uint32_t off = space_.allocate(words);
            if (off == FreeListSpace::kNoBlock) continue;
            live.push_back({off, words});
        } else {
            size_t idx = rng.next_below(live.size());
            space_.free_block(live[idx].offset, live[idx].words);
            live[idx] = live.back();
            live.pop_back();
        }
    }
    std::set<std::pair<uint32_t, uint32_t>> ranges;
    for (const Block& b : live) {
        ranges.insert({b.offset,
                       b.offset + static_cast<uint32_t>(b.words)});
    }
    uint32_t prev_end = 0;
    for (const auto& [begin, end] : ranges) {
        EXPECT_GE(begin, prev_end) << "overlapping blocks";
        prev_end = end;
    }
}

}  // namespace
}  // namespace bitc::mem
