#include "memory/manual_heap.hpp"

#include <gtest/gtest.h>

namespace bitc::mem {
namespace {

TEST(ManualHeapTest, FreeMakesHandleDead) {
    ManualHeap heap(1024);
    auto obj = heap.allocate(4, 0, 1);
    ASSERT_TRUE(obj.is_ok());
    heap.free_object(obj.value());
    EXPECT_FALSE(heap.is_live(obj.value()));
    EXPECT_EQ(heap.stats().frees, 1u);
}

TEST(ManualHeapTest, FreedStorageIsReused) {
    ManualHeap heap(64);
    // Fill the heap completely, then free one and reallocate.
    std::vector<ObjRef> refs;
    while (true) {
        auto obj = heap.allocate(6, 0, 1);
        if (!obj.is_ok()) break;
        refs.push_back(obj.value());
    }
    ASSERT_FALSE(refs.empty());
    heap.free_object(refs[0]);
    auto again = heap.allocate(6, 0, 1);
    EXPECT_TRUE(again.is_ok());
}

TEST(ManualHeapTest, ExhaustionReportsResourceExhausted) {
    ManualHeap heap(32);
    auto a = heap.allocate(30, 0, 1);
    ASSERT_TRUE(a.is_ok());
    auto b = heap.allocate(30, 0, 1);
    ASSERT_FALSE(b.is_ok());
    EXPECT_EQ(b.status().code(), StatusCode::kResourceExhausted);
}

TEST(ManualHeapTest, NeedsExplicitFree) {
    ManualHeap heap(256);
    EXPECT_TRUE(heap.needs_explicit_free());
}

TEST(ManualHeapTest, WordsInUseGoesToZeroAfterFullFree) {
    ManualHeap heap(4096);
    std::vector<ObjRef> refs;
    for (int i = 0; i < 50; ++i) {
        auto obj = heap.allocate(static_cast<uint32_t>(i % 7 + 1), 0, 1);
        ASSERT_TRUE(obj.is_ok());
        refs.push_back(obj.value());
    }
    for (ObjRef r : refs) heap.free_object(r);
    EXPECT_EQ(heap.stats().words_in_use, 0u);
    EXPECT_EQ(heap.live_objects(), 0u);
}

TEST(ManualHeapTest, CollectIsANoOp) {
    ManualHeap heap(1024);
    auto obj = heap.allocate(2, 0, 1);
    ASSERT_TRUE(obj.is_ok());
    // No roots registered: a tracing heap would reclaim; manual must not.
    heap.collect();
    EXPECT_TRUE(heap.is_live(obj.value()));
}

TEST(ManualHeapTest, HandleIdsAreRecycled) {
    ManualHeap heap(1024);
    auto a = heap.allocate(2, 0, 1);
    ASSERT_TRUE(a.is_ok());
    ObjRef old_id = a.value();
    heap.free_object(old_id);
    auto b = heap.allocate(2, 0, 1);
    ASSERT_TRUE(b.is_ok());
    EXPECT_EQ(b.value(), old_id);
}

TEST(ManualHeapTest, FragmentationProbeSeesFreedBlocks) {
    ManualHeap heap(4096);
    auto a = heap.allocate(10, 0, 1);
    auto b = heap.allocate(10, 0, 1);
    ASSERT_TRUE(a.is_ok());
    ASSERT_TRUE(b.is_ok());
    EXPECT_EQ(heap.free_list_words(), 0u);
    heap.free_object(a.value());
    EXPECT_EQ(heap.free_list_words(), 11u);  // header + 10 slots
}

}  // namespace
}  // namespace bitc::mem
