/**
 * Cross-policy property test: every workload must compute the same
 * checksum on every heap backend — storage policy must not change
 * program meaning, only performance.
 */
#include <gtest/gtest.h>
#include <functional>
#include <memory>

#include "memory/generational_heap.hpp"
#include "memory/manual_heap.hpp"
#include "memory/markcompact_heap.hpp"
#include "memory/marksweep_heap.hpp"
#include "memory/mutator.hpp"
#include "memory/refcount_heap.hpp"
#include "memory/region_heap.hpp"
#include "memory/semispace_heap.hpp"

namespace bitc::mem {
namespace {

constexpr size_t kHeapWords = 1 << 18;

struct MutatorParam {
    std::string label;
    std::function<std::unique_ptr<ManagedHeap>()> make;
};

class MutatorTest : public ::testing::TestWithParam<MutatorParam> {
  protected:
    std::unique_ptr<ManagedHeap> make() { return GetParam().make(); }
};

// Expected checksums computed analytically (or pinned from the manual
// policy, which has no collector to hide bugs behind).

TEST_P(MutatorTest, ChurnChecksumMatchesArithmeticSeries) {
    auto heap = make();
    Rng rng(7);
    constexpr uint64_t kTotal = 20000;
    auto report = run_churn(*heap, kTotal, 64, 8, rng);
    ASSERT_TRUE(report.is_ok()) << report.status().to_string();
    EXPECT_EQ(report.value().operations, kTotal);
    EXPECT_EQ(report.value().check_value, kTotal * (kTotal - 1) / 2);
    heap->collect();  // tracing policies reclaim the drained window here
    EXPECT_EQ(heap->live_objects(), 0u)
        << "window must be fully drained";
}

TEST_P(MutatorTest, BinaryTreesChecksumIsNodeCounts) {
    auto heap = make();
    constexpr uint32_t kDepth = 8;
    constexpr uint32_t kIters = 20;
    auto report = run_binary_trees(*heap, kDepth, kIters);
    ASSERT_TRUE(report.is_ok()) << report.status().to_string();
    uint64_t nodes = (1u << (kDepth + 1)) - 1;
    EXPECT_EQ(report.value().check_value, nodes * (kIters + 1));
}

TEST_P(MutatorTest, GraphMutationDeterministicAcrossPolicies) {
    auto heap = make();
    Rng rng(99);
    auto report = run_graph_mutation(*heap, 256, 4, 20000, rng);
    ASSERT_TRUE(report.is_ok()) << report.status().to_string();
    // All policies see the same RNG stream, so the same final graph.
    // Value pinned from the manual policy.
    static uint64_t expected = 0;
    if (GetParam().label == "manual") {
        expected = report.value().check_value;
    }
    if (expected != 0 && GetParam().label != "region") {
        EXPECT_EQ(report.value().check_value, expected);
    }
}

std::vector<MutatorParam> mutator_heaps() {
    return {
        {"manual",
         [] { return std::make_unique<ManualHeap>(kHeapWords); }},
        {"region",
         [] { return std::make_unique<RegionHeap>(kHeapWords * 4); }},
        {"refcount",
         [] { return std::make_unique<RefCountHeap>(kHeapWords); }},
        {"marksweep",
         [] { return std::make_unique<MarkSweepHeap>(kHeapWords); }},
        {"markcompact",
         [] { return std::make_unique<MarkCompactHeap>(kHeapWords); }},
        {"semispace",
         [] { return std::make_unique<SemispaceHeap>(kHeapWords * 2); }},
        {"generational",
         [] {
             return std::make_unique<GenerationalHeap>(kHeapWords,
                                                       kHeapWords / 16);
         }},
    };
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, MutatorTest, ::testing::ValuesIn(mutator_heaps()),
    [](const ::testing::TestParamInfo<MutatorParam>& info) {
        return info.param.label;
    });

}  // namespace
}  // namespace bitc::mem
