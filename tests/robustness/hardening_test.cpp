/**
 * Hardened failure-path tests: stale handles surface as Status (not
 * UB), guard canaries catch payload overruns, freed-payload poisoning
 * catches writes through dangling raw pointers, and check_integrity
 * reports each corruption instead of letting it propagate.
 */
#include <gtest/gtest.h>

#include "memory/manual_heap.hpp"
#include "memory/region_heap.hpp"

namespace bitc::mem {
namespace {

constexpr size_t kHeapWords = 1 << 12;

TEST(CheckedAccessTest, StaleHandleIsAStatusNotUndefinedBehaviour) {
    ManualHeap heap(kHeapWords);
    auto obj = heap.allocate(4, 1, 7);
    ASSERT_TRUE(obj.is_ok());
    ObjRef ref = obj.value();
    ASSERT_TRUE(heap.checked_store(ref, 2, 99).is_ok());
    EXPECT_EQ(heap.checked_load(ref, 2).value(), 99u);

    heap.free_object(ref);

    // The classic use-after-free, via every accessor: each one must
    // fail cleanly with kFailedPrecondition.
    auto load = heap.checked_load(ref, 2);
    ASSERT_FALSE(load.is_ok());
    EXPECT_EQ(load.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(load.status().message().find("stale handle"),
              std::string::npos);
    EXPECT_FALSE(heap.checked_store(ref, 2, 1).is_ok());
    EXPECT_FALSE(heap.checked_load_ref(ref, 0).is_ok());
    EXPECT_FALSE(heap.checked_store_ref(ref, 0, kNullRef).is_ok());
}

TEST(CheckedAccessTest, DanglingTargetRejectedByCheckedStoreRef) {
    ManualHeap heap(kHeapWords);
    ObjRef holder = heap.allocate(2, 1, 1).value();
    ObjRef target = heap.allocate(2, 0, 1).value();
    heap.free_object(target);
    auto status = heap.checked_store_ref(holder, 0, target);
    ASSERT_FALSE(status.is_ok());
    EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
    heap.free_object(holder);
}

TEST(CheckedAccessTest, BadIndicesRejected) {
    ManualHeap heap(kHeapWords);
    ObjRef ref = heap.allocate(4, 1, 7).value();
    EXPECT_EQ(heap.checked_load(ref, 4).status().code(),
              StatusCode::kOutOfRange);
    EXPECT_EQ(heap.checked_store(ref, 4, 0).code(),
              StatusCode::kOutOfRange);
    // Storing a raw word over a reference slot would hide an edge from
    // the policies that track them.
    EXPECT_FALSE(heap.checked_store(ref, 0, 123).is_ok());
    EXPECT_EQ(heap.checked_load_ref(ref, 1).status().code(),
              StatusCode::kOutOfRange);
    heap.free_object(ref);
}

TEST(CheckedAccessTest, ReleasedRegionHandleGoesStale) {
    RegionHeap heap(kHeapWords);
    size_t mark = heap.mark();
    ObjRef ref = heap.allocate(4, 0, 1).value();
    ASSERT_TRUE(heap.checked_load(ref, 0).is_ok());
    heap.release_to(mark);
    EXPECT_EQ(heap.checked_load(ref, 0).status().code(),
              StatusCode::kFailedPrecondition);
}

TEST(HardenedManualHeapTest, CanaryCatchesPayloadOverrun) {
    ManualHeap heap(kHeapWords);
    heap.enable_hardening();
    ObjRef ref = heap.allocate(2, 0, 1).value();
    ASSERT_TRUE(heap.check_integrity().is_ok());

    // A one-off store past the payload, through the raw (unchecked)
    // slot pointer — exactly the C-style buffer overrun the guard word
    // exists to catch.
    heap.slots(ref)[2] = 0x41414141;

    auto status = heap.check_integrity();
    ASSERT_FALSE(status.is_ok());
    EXPECT_EQ(status.code(), StatusCode::kInternal);
    EXPECT_NE(status.message().find("canary"), std::string::npos);
}

TEST(HardenedManualHeapTest, PoisonCatchesWriteThroughDanglingPointer) {
    ManualHeap heap(kHeapWords);
    heap.enable_hardening();
    ObjRef ref = heap.allocate(4, 0, 1).value();
    uint64_t* payload = heap.slots(ref);
    heap.free_object(ref);
    ASSERT_TRUE(heap.check_integrity().is_ok())
        << "a clean free leaves the poison intact";

    // Write through the stale raw pointer into the freed block.  The
    // word lands past the free-list link words, so the poison scrub
    // detects the scribble on the next integrity probe.
    payload[1] = 0xbad;

    auto status = heap.check_integrity();
    ASSERT_FALSE(status.is_ok());
    EXPECT_EQ(status.code(), StatusCode::kInternal);
    EXPECT_NE(status.message().find("modified after free"),
              std::string::npos)
        << status.to_string();
}

TEST(HardenedManualHeapTest, HardeningSurvivesChurnAndReuse) {
    ManualHeap heap(kHeapWords);
    heap.enable_hardening();
    // Alloc/free churn across size classes: every block placement must
    // keep its canary and the free lists their poison.
    std::vector<ObjRef> live;
    for (int round = 0; round < 50; ++round) {
        for (uint32_t slots = 1; slots <= 9; slots += 2) {
            auto obj = heap.allocate(slots, 0, 1);
            ASSERT_TRUE(obj.is_ok());
            live.push_back(obj.value());
        }
        // Free every other object to fragment the space.
        for (size_t i = live.size() - 5; i < live.size(); i += 2) {
            heap.free_object(live[i]);
            live[i] = kNullRef;
        }
        ASSERT_TRUE(heap.check_integrity().is_ok()) << "round "
                                                    << round;
    }
    for (ObjRef ref : live) {
        if (ref != kNullRef) heap.free_object(ref);
    }
    ASSERT_TRUE(heap.check_integrity().is_ok());
    EXPECT_EQ(heap.live_objects(), 0u);
    EXPECT_EQ(heap.stats().words_in_use, 0u);
}

}  // namespace
}  // namespace bitc::mem
