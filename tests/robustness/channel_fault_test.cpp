/**
 * Channel failure paths: the deadline-bounded send/recv variants, the
 * timeout-versus-close ordering contract (the peer's disconnect beats
 * an expired deadline), and injected channel-op failures.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "concurrency/channel.hpp"
#include "support/fault.hpp"

namespace bitc::conc {
namespace {

using namespace std::chrono_literals;

TEST(ChannelDeadlineTest, RecvTimesOutOnEmptyChannel) {
    Channel<int> channel(4);
    auto start = std::chrono::steady_clock::now();
    auto result = channel.recv_for(20ms);
    auto elapsed = std::chrono::steady_clock::now() - start;
    ASSERT_FALSE(result.is_ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
    EXPECT_GE(elapsed, 15ms) << "returned before the deadline";
}

TEST(ChannelDeadlineTest, RecvReturnsDataThatArrivesBeforeDeadline) {
    Channel<int> channel(4);
    std::thread producer([&] {
        std::this_thread::sleep_for(10ms);
        ASSERT_TRUE(channel.send(42).is_ok());
    });
    auto result = channel.recv_for(5s);
    producer.join();
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    EXPECT_EQ(result.value(), 42);
}

TEST(ChannelDeadlineTest, SendTimesOutOnFullChannel) {
    Channel<int> channel(1);
    ASSERT_TRUE(channel.send(1).is_ok());
    auto status = channel.try_send_for(2, 20ms);
    ASSERT_FALSE(status.is_ok());
    EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST(ChannelDeadlineTest, SendSucceedsWhenRoomAppearsBeforeDeadline) {
    Channel<int> channel(1);
    ASSERT_TRUE(channel.send(1).is_ok());
    std::thread consumer([&] {
        std::this_thread::sleep_for(10ms);
        ASSERT_TRUE(channel.recv().is_ok());
    });
    EXPECT_TRUE(channel.try_send_for(2, 5s).is_ok());
    consumer.join();
}

// --- Timeout-versus-close ordering -----------------------------------

TEST(ChannelOrderingTest, CloseBeatsAnAlreadyExpiredRecvDeadline) {
    Channel<int> channel(4);
    channel.close();
    // Both conditions hold at once (closed channel, deadline in the
    // past): the disconnect is the more actionable fact and must win.
    auto result = channel.recv_until(std::chrono::steady_clock::now() -
                                     1s);
    ASSERT_FALSE(result.is_ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST(ChannelOrderingTest, CloseBeatsAnAlreadyExpiredSendDeadline) {
    Channel<int> channel(1);
    channel.close();
    auto status = channel.try_send_until(
        7, std::chrono::steady_clock::now() - 1s);
    ASSERT_FALSE(status.is_ok());
    EXPECT_EQ(status.code(), StatusCode::kCancelled);
}

TEST(ChannelOrderingTest, BacklogDrainsBeforeCloseOrDeadlineApplies) {
    Channel<int> channel(4);
    ASSERT_TRUE(channel.send(1).is_ok());
    ASSERT_TRUE(channel.send(2).is_ok());
    channel.close();
    // Expired deadline AND closed channel: buffered data still wins.
    auto past = std::chrono::steady_clock::now() - 1s;
    EXPECT_EQ(channel.recv_until(past).value(), 1);
    EXPECT_EQ(channel.recv_until(past).value(), 2);
    auto drained = channel.recv_until(past);
    ASSERT_FALSE(drained.is_ok());
    EXPECT_EQ(drained.status().code(),
              StatusCode::kCancelled)
        << "after the drain, close (not the deadline) is reported";
}

TEST(ChannelOrderingTest, MidWaitCloseWakesRecvBeforeItsDeadline) {
    Channel<int> channel(4);
    std::thread closer([&] {
        std::this_thread::sleep_for(10ms);
        channel.close();
    });
    auto start = std::chrono::steady_clock::now();
    auto result = channel.recv_for(5s);
    auto elapsed = std::chrono::steady_clock::now() - start;
    closer.join();
    ASSERT_FALSE(result.is_ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
    EXPECT_LT(elapsed, 4s) << "close must wake the waiter immediately";
}

TEST(ChannelOrderingTest, MidWaitCloseWakesSendBeforeItsDeadline) {
    Channel<int> channel(1);
    ASSERT_TRUE(channel.send(1).is_ok());
    std::thread closer([&] {
        std::this_thread::sleep_for(10ms);
        channel.close();
    });
    auto status = channel.try_send_for(2, 5s);
    closer.join();
    ASSERT_FALSE(status.is_ok());
    EXPECT_EQ(status.code(), StatusCode::kCancelled);
}

// --- Injected channel-op failures -------------------------------------

class ChannelFaultTest : public ::testing::Test {
  protected:
    void TearDown() override { fault::Injector::instance().disarm(); }
};

TEST_F(ChannelFaultTest, EveryChannelEntryPointFailsCleanlyWhenInjected) {
    Channel<int> channel(4);
    ASSERT_TRUE(channel.send(1).is_ok());  // backlog for recv paths

    fault::Injector::instance().arm_every(fault::Site::kChannelOp, 1);
    EXPECT_EQ(channel.send(2).code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(channel.try_send_for(2, 1ms).code(),
              StatusCode::kResourceExhausted);
    EXPECT_EQ(channel.recv().status().code(),
              StatusCode::kResourceExhausted);
    EXPECT_EQ(channel.recv_for(1ms).status().code(),
              StatusCode::kResourceExhausted);
    fault::Injector::instance().disarm();

    // The injected failures must not have touched the queue.
    EXPECT_EQ(channel.size(), 1u);
    EXPECT_EQ(channel.recv().value(), 1);
}

TEST_F(ChannelFaultTest, NthInjectionDropsExactlyOneMessageAttempt) {
    Channel<int> channel(8);
    fault::Injector::instance().arm_nth(fault::Site::kChannelOp, 2);
    EXPECT_TRUE(channel.send(1).is_ok());
    EXPECT_EQ(channel.send(2).code(), StatusCode::kResourceExhausted);
    EXPECT_TRUE(channel.send(3).is_ok());
    fault::Injector::instance().disarm();
    EXPECT_EQ(channel.size(), 2u);
    EXPECT_EQ(channel.recv().value(), 1);
    EXPECT_EQ(channel.recv().value(), 3);
}

}  // namespace
}  // namespace bitc::conc
