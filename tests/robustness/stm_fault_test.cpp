/**
 * STM hardening: injected commit failures behave exactly like
 * conflicts (retried, invisible on success), the bounded-attempt
 * combinator turns a permanent conflict into a clean error instead of
 * a livelock, and abort storms are visible in the statistics.
 */
#include <gtest/gtest.h>

#include <thread>

#include "concurrency/stm.hpp"
#include "support/fault.hpp"

namespace bitc::conc {
namespace {

class StmFaultTest : public ::testing::Test {
  protected:
    void TearDown() override { fault::Injector::instance().disarm(); }
};

TEST_F(StmFaultTest, InjectedCommitFailureIsRetriedTransparently) {
    Stm stm;
    TVar counter(0);
    fault::Injector::instance().arm_nth(fault::Site::kStmCommit, 1);
    atomically(stm, [&](Txn& txn) {
        txn.write(counter, txn.read(counter) + 1);
    });
    fault::Injector::instance().disarm();
    EXPECT_EQ(counter.unsafe_load(), 1u)
        << "the retried transaction must still commit exactly once";
    EXPECT_GE(stm.stats().aborts, 1u);
    EXPECT_EQ(stm.stats().commits, 1u);
}

TEST_F(StmFaultTest, PermanentConflictTerminatesUnderAttemptBound) {
    Stm stm;
    TVar counter(0);
    // Every commit refused: the worst-case conflict storm.  Without
    // the bound this transaction would livelock forever.
    fault::Injector::instance().arm_every(fault::Site::kStmCommit, 1);
    TxnLimits limits;
    limits.max_attempts = 16;
    Status status = try_atomically(stm, limits, [&](Txn& txn) {
        txn.write(counter, txn.read(counter) + 1);
    });
    fault::Injector::instance().disarm();

    ASSERT_FALSE(status.is_ok());
    EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
    EXPECT_NE(status.message().find("16"), std::string::npos)
        << status.to_string();
    EXPECT_EQ(counter.unsafe_load(), 0u)
        << "no attempt may have published its writes";
    EXPECT_EQ(stm.stats().aborts, 16u);
    EXPECT_EQ(stm.stats().abort_storms, 1u)
        << "crossing " << kAbortStormThreshold
        << " consecutive aborts must register as a storm";
}

TEST_F(StmFaultTest, ConflictingPairBothTerminateWithBoundedAttempts) {
    Stm stm;
    TVar a(0), b(0);
    TxnLimits limits;
    limits.max_attempts = 12;

    // Arm before spawning, disarm after joining (the injector's
    // arming discipline): both workers see every commit refused, so
    // the pair can never make progress — the bound must stop both.
    fault::Injector::instance().arm_every(fault::Site::kStmCommit, 1);
    Status first, second;
    std::thread t1([&] {
        first = try_atomically(stm, limits, [&](Txn& txn) {
            txn.write(a, txn.read(b) + 1);
        });
    });
    std::thread t2([&] {
        second = try_atomically(stm, limits, [&](Txn& txn) {
            txn.write(b, txn.read(a) + 1);
        });
    });
    t1.join();
    t2.join();
    fault::Injector::instance().disarm();

    EXPECT_EQ(first.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(second.code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(a.unsafe_load(), 0u);
    EXPECT_EQ(b.unsafe_load(), 0u);
    EXPECT_EQ(stm.stats().abort_storms, 2u);
}

TEST_F(StmFaultTest, BoundedAttemptsSucceedWhenConflictsStop) {
    Stm stm;
    TVar counter(0);
    // Refuse the first commit only; attempt two succeeds well inside
    // the bound.
    fault::Injector::instance().arm_nth(fault::Site::kStmCommit, 1);
    TxnLimits limits;
    limits.max_attempts = 10;
    auto result = try_atomically(stm, limits, [&](Txn& txn) {
        uint64_t next = txn.read(counter) + 1;
        txn.write(counter, next);
        return next;
    });
    fault::Injector::instance().disarm();
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    EXPECT_EQ(result.value(), 1u);
    EXPECT_EQ(counter.unsafe_load(), 1u);
}

TEST_F(StmFaultTest, UnboundedAtomicallyOutlastsAnInjectedStorm) {
    Stm stm;
    TVar counter(0);
    // Fail every second commit forever: atomically() must still make
    // progress (the storm is transient per transaction) and the
    // backoff cap keeps each wait bounded.
    fault::Injector::instance().arm_every(fault::Site::kStmCommit, 2);
    for (int i = 0; i < 20; ++i) {
        atomically(stm, [&](Txn& txn) {
            txn.write(counter, txn.read(counter) + 1);
        });
    }
    fault::Injector::instance().disarm();
    EXPECT_EQ(counter.unsafe_load(), 20u);
    EXPECT_GE(stm.stats().aborts, 10u);
}

}  // namespace
}  // namespace bitc::conc
