/**
 * Interop marshalling under injected faults: both directions of the
 * record codec fail cleanly, leave their output buffers untouched, and
 * a full decode-process-encode pipeline survives a failure at every
 * marshal hit.
 */
#include <gtest/gtest.h>

#include "interop/marshal.hpp"
#include "interop/packet_stages.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"

namespace bitc::interop {
namespace {

class InteropFaultTest : public ::testing::Test {
  protected:
    void TearDown() override { fault::Injector::instance().disarm(); }
};

TEST_F(InteropFaultTest, UnmarshalFailsCleanlyLeavingFieldsUntouched) {
    Rng rng(3);
    std::vector<uint8_t> wire(packet_codec().layout().byte_size());
    generate_packet(rng, wire);

    int64_t fields[kFieldCount];
    for (size_t i = 0; i < kFieldCount; ++i) fields[i] = -1;

    fault::Injector::instance().arm_nth(fault::Site::kFfiMarshal, 1);
    auto status = unmarshal_record(packet_codec(), wire, fields);
    fault::Injector::instance().disarm();

    ASSERT_FALSE(status.is_ok());
    EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
    for (size_t i = 0; i < kFieldCount; ++i) {
        EXPECT_EQ(fields[i], -1) << "field " << i
                                 << " written despite the failure";
    }
}

TEST_F(InteropFaultTest, MarshalFailsCleanlyLeavingWireUntouched) {
    int64_t fields[kFieldCount] = {0};
    fields[kVersion] = 4;
    std::vector<uint8_t> wire(packet_codec().layout().byte_size(),
                              0xee);

    fault::Injector::instance().arm_nth(fault::Site::kFfiMarshal, 1);
    auto status = marshal_record(packet_codec(), fields, wire);
    fault::Injector::instance().disarm();

    ASSERT_FALSE(status.is_ok());
    EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
    for (uint8_t byte : wire) {
        EXPECT_EQ(byte, 0xee);
    }
}

TEST_F(InteropFaultTest, PipelineSurvivesAFailureAtEveryMarshalHit) {
    auto& injector = fault::Injector::instance();
    Rng rng(9);
    std::vector<uint8_t> wire(packet_codec().layout().byte_size());
    generate_packet(rng, wire);

    // The round trip under test: decode, tweak, re-encode.
    auto round_trip = [&](std::span<const uint8_t> in,
                          std::span<uint8_t> out) -> Status {
        int64_t fields[kFieldCount];
        BITC_RETURN_IF_ERROR(
            unmarshal_record(packet_codec(), in, fields));
        fields[kTtl] = fields[kTtl] > 0 ? fields[kTtl] - 1 : 0;
        return marshal_record(packet_codec(), fields, out);
    };

    std::vector<uint8_t> expected(wire.size());
    uint64_t hits = 0;
    {
        ASSERT_TRUE(injector.arm("count").is_ok());
        ASSERT_TRUE(round_trip(wire, expected).is_ok());
        injector.disarm();
        hits = injector.hits(fault::Site::kFfiMarshal);
    }
    ASSERT_EQ(hits, 2u) << "one decode hit, one encode hit";

    for (uint64_t k = 1; k <= hits; ++k) {
        std::vector<uint8_t> out(wire.size(), 0);
        injector.reset_counters();
        injector.arm_nth(fault::Site::kFfiMarshal, k);
        Status status = round_trip(wire, out);
        injector.disarm();
        ASSERT_FALSE(status.is_ok()) << "hit " << k;
        EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
        for (uint8_t byte : out) {
            EXPECT_EQ(byte, 0) << "hit " << k
                               << ": partial output after a failure";
        }
        // Retry without the fault completes the round trip.
        ASSERT_TRUE(round_trip(wire, out).is_ok());
        EXPECT_EQ(out, expected);
    }
}

}  // namespace
}  // namespace bitc::interop
