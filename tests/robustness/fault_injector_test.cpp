/**
 * Unit tests for the fault-injection subsystem itself: site naming,
 * plan grammar, nth/every/count semantics, counters and the RAII plan.
 */
#include "support/fault.hpp"

#include <gtest/gtest.h>

#include <iterator>
#include <string>

namespace bitc::fault {
namespace {

/** Every test leaves the process disarmed, even on assertion failure. */
class FaultInjectorTest : public ::testing::Test {
  protected:
    void SetUp() override {
        Injector::instance().disarm();
        Injector::instance().reset_counters();
    }
    void TearDown() override { Injector::instance().disarm(); }
};

constexpr Site kAllSites[] = {
    Site::kHeapAlloc, Site::kGcTrigger, Site::kStmCommit,
    Site::kChannelOp, Site::kFfiMarshal, Site::kWorkerCrash,
    Site::kSocketIo,
};
static_assert(std::size(kAllSites) == kNumSites,
              "a new Site must be added to kAllSites");

TEST_F(FaultInjectorTest, SiteNamesRoundTrip) {
    for (Site site : kAllSites) {
        auto parsed = parse_site(site_name(site));
        ASSERT_TRUE(parsed.is_ok()) << site_name(site);
        EXPECT_EQ(parsed.value(), site);
    }
    EXPECT_FALSE(parse_site("bogus").is_ok());
    EXPECT_FALSE(parse_site("").is_ok());
}

// Schema pin for the --metrics fold: the per-site JSON is built by
// iterating the registry, so a newly added Site shows up without
// anyone editing the serializer.  Every site name must appear as a
// key, each carrying its hit/injected counters.
TEST_F(FaultInjectorTest, SitesJsonListsEverySiteWithCounters) {
    Injector::instance().arm_count();
    inject(Site::kStmCommit);
    std::string json = Injector::instance().sites_json();
    for (Site site : kAllSites) {
        std::string key = '"' + std::string(site_name(site)) + "\":";
        EXPECT_NE(json.find(key), std::string::npos)
            << key << " missing from " << json;
    }
    EXPECT_NE(json.find("\"hits\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"injected\": 0"), std::string::npos) << json;
    // Exactly one object per site: count the "hits" keys.
    size_t hits_keys = 0;
    for (size_t pos = json.find("\"hits\":"); pos != std::string::npos;
         pos = json.find("\"hits\":", pos + 1)) {
        ++hits_keys;
    }
    EXPECT_EQ(hits_keys, kNumSites);
}

TEST_F(FaultInjectorTest, DisarmedInjectIsInertAndUncounted) {
    EXPECT_FALSE(Injector::instance().armed());
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(inject(Site::kHeapAlloc));
    }
    EXPECT_EQ(Injector::instance().hits(Site::kHeapAlloc), 0u);
    EXPECT_EQ(Injector::instance().injected(Site::kHeapAlloc), 0u);
}

TEST_F(FaultInjectorTest, CountModeCountsWithoutInjecting) {
    Injector::instance().arm_count();
    for (int i = 0; i < 7; ++i) {
        EXPECT_FALSE(inject(Site::kStmCommit));
    }
    EXPECT_FALSE(inject(Site::kChannelOp));
    EXPECT_EQ(Injector::instance().hits(Site::kStmCommit), 7u);
    EXPECT_EQ(Injector::instance().injected(Site::kStmCommit), 0u);
    EXPECT_EQ(Injector::instance().hits(Site::kChannelOp), 1u);
}

TEST_F(FaultInjectorTest, NthFailsExactlyTheNthHit) {
    Injector::instance().arm_nth(Site::kHeapAlloc, 3);
    std::vector<bool> fired;
    for (int i = 0; i < 5; ++i) {
        fired.push_back(inject(Site::kHeapAlloc));
    }
    EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false,
                                        false}));
    EXPECT_EQ(Injector::instance().hits(Site::kHeapAlloc), 5u);
    EXPECT_EQ(Injector::instance().injected(Site::kHeapAlloc), 1u);
}

TEST_F(FaultInjectorTest, EveryFailsEachKthHit) {
    Injector::instance().arm_every(Site::kFfiMarshal, 2);
    std::vector<bool> fired;
    for (int i = 0; i < 6; ++i) {
        fired.push_back(inject(Site::kFfiMarshal));
    }
    EXPECT_EQ(fired, (std::vector<bool>{false, true, false, true,
                                        false, true}));
    EXPECT_EQ(Injector::instance().injected(Site::kFfiMarshal), 3u);
}

TEST_F(FaultInjectorTest, SitesAreIndependent) {
    Injector::instance().arm_nth(Site::kHeapAlloc, 1);
    EXPECT_FALSE(inject(Site::kGcTrigger));
    EXPECT_TRUE(inject(Site::kHeapAlloc));
    EXPECT_EQ(Injector::instance().hits(Site::kGcTrigger), 0u)
        << "unarmed sites must not tick counters";
}

TEST_F(FaultInjectorTest, PlanGrammarAccepted) {
    auto& inj = Injector::instance();
    EXPECT_TRUE(inj.arm("off").is_ok());
    EXPECT_FALSE(inj.armed());
    EXPECT_TRUE(inj.arm("").is_ok());
    EXPECT_FALSE(inj.armed());

    ASSERT_TRUE(inj.arm("heap-alloc:nth=3,stm-commit:every=2").is_ok());
    EXPECT_TRUE(inj.armed());
    EXPECT_FALSE(inject(Site::kHeapAlloc));
    EXPECT_FALSE(inject(Site::kHeapAlloc));
    EXPECT_TRUE(inject(Site::kHeapAlloc));
    EXPECT_FALSE(inject(Site::kStmCommit));
    EXPECT_TRUE(inject(Site::kStmCommit));

    ASSERT_TRUE(inj.arm("count").is_ok());
    EXPECT_FALSE(inject(Site::kChannelOp));
    EXPECT_EQ(inj.hits(Site::kChannelOp), 1u);

    ASSERT_TRUE(inj.arm("gc-trigger:count").is_ok());
    EXPECT_FALSE(inject(Site::kGcTrigger));
    EXPECT_EQ(inj.hits(Site::kGcTrigger), 1u);
}

TEST_F(FaultInjectorTest, PlanGrammarRejectsMalformedInput) {
    auto& inj = Injector::instance();
    const char* bad[] = {
        "bogus-site:nth=1", "heap-alloc",      "heap-alloc:",
        "heap-alloc:nth=",  "heap-alloc:nth=0", "heap-alloc:nth=x",
        "heap-alloc:maybe", ",",                "heap-alloc:nth=1,,",
    };
    for (const char* plan : bad) {
        EXPECT_FALSE(inj.arm(plan).is_ok()) << plan;
        EXPECT_FALSE(inj.armed())
            << "a rejected plan must leave the injector disarmed: "
            << plan;
    }
}

TEST_F(FaultInjectorTest, ArmResetsCountersDisarmKeepsThem) {
    auto& inj = Injector::instance();
    ASSERT_TRUE(inj.arm("count").is_ok());
    (void)inject(Site::kHeapAlloc);
    ASSERT_TRUE(inj.arm("count").is_ok());
    EXPECT_EQ(inj.hits(Site::kHeapAlloc), 0u)
        << "arm() starts a fresh experiment";
    (void)inject(Site::kHeapAlloc);
    inj.disarm();
    EXPECT_EQ(inj.hits(Site::kHeapAlloc), 1u)
        << "disarm() must leave results readable";
}

TEST_F(FaultInjectorTest, InjectedErrorIsResourceExhaustedNamingSite) {
    Status status = injected_error(Site::kStmCommit);
    EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
    EXPECT_NE(status.message().find("stm-commit"), std::string::npos);
}

TEST_F(FaultInjectorTest, ScopedPlanArmsAndDisarms) {
    {
        ScopedPlan plan("heap-alloc:nth=1");
        ASSERT_TRUE(plan.status().is_ok());
        EXPECT_TRUE(Injector::instance().armed());
        EXPECT_TRUE(inject(Site::kHeapAlloc));
    }
    EXPECT_FALSE(Injector::instance().armed());
    {
        ScopedPlan plan("not-a-plan");
        EXPECT_FALSE(plan.status().is_ok());
        EXPECT_FALSE(Injector::instance().armed());
    }
}

TEST_F(FaultInjectorTest, ReportListsArmedSites) {
    auto& inj = Injector::instance();
    ASSERT_TRUE(inj.arm("heap-alloc:nth=2").is_ok());
    (void)inject(Site::kHeapAlloc);
    (void)inject(Site::kHeapAlloc);
    std::string report = inj.report();
    EXPECT_NE(report.find("heap-alloc: 2 hits, 1 injected"),
              std::string::npos)
        << report;
    EXPECT_EQ(report.find("channel-op"), std::string::npos)
        << "silent sites stay out of the report: " << report;
}

}  // namespace
}  // namespace bitc::fault
