/**
 * Fail-at-every-site sweep through the VM: for both dispatch loops and
 * a spread of value-mode/heap-policy combinations, every allocation the
 * interpreter performs is forced to fail once.  The contract after an
 * injected OOM:
 *
 *   1. the call traps cleanly with kResourceExhausted;
 *   2. the VM's heap still passes check_integrity();
 *   3. the *same* VM instance is re-runnable: a clean retry of the
 *      same entry point must produce the correct answer (frames and
 *      roots were unwound properly by the failed run).
 *
 * The FFI buffer crossing (call_with_buffer) gets the same treatment
 * at the ffi-marshal site.
 */
#include <gtest/gtest.h>

#include "support/fault.hpp"
#include "vm/pipeline.hpp"

namespace bitc::vm {
namespace {

/** Allocation-heavy kernel: a fresh array per iteration. */
constexpr const char* kChurnSource =
    "(define (churn n : int64) : int64"
    "  (let ((acc 0) (i 0))"
    "    (while (< i n)"
    "      (let ((a (array-make 16 i)))"
    "        (set! acc (+ acc (array-ref a 7))))"
    "      (set! i (+ i 1)))"
    "    acc))";
constexpr int64_t kChurnArg = 12;
constexpr int64_t kChurnExpected = kChurnArg * (kChurnArg - 1) / 2;

struct VmParam {
    std::string label;
    VmConfig config;
};

std::vector<VmParam> sweep_configs() {
    std::vector<VmParam> out;
    VmConfig base;
    base.heap_words = 1 << 16;
    base.stack_slots = 1 << 12;
    for (DispatchMode dispatch :
         {DispatchMode::kSwitch, DispatchMode::kThreaded}) {
        const char* d =
            dispatch == DispatchMode::kSwitch ? "switch" : "threaded";
        VmConfig c = base;
        c.dispatch = dispatch;
        c.mode = ValueMode::kUnboxed;
        c.heap = HeapPolicy::kRegion;
        out.push_back({std::string("unboxed_region_") + d, c});
        c.mode = ValueMode::kBoxed;
        c.heap = HeapPolicy::kMarkSweep;
        out.push_back({std::string("boxed_marksweep_") + d, c});
        c.heap = HeapPolicy::kGenerational;
        out.push_back({std::string("boxed_generational_") + d, c});
    }
    return out;
}

class VmFaultSweepTest : public ::testing::TestWithParam<VmParam> {
  protected:
    void TearDown() override { fault::Injector::instance().disarm(); }
};

TEST_P(VmFaultSweepTest, EveryInjectedOomTrapsCleanlyAndVmStaysUsable) {
    auto& injector = fault::Injector::instance();
    auto built = build_program(kChurnSource);
    ASSERT_TRUE(built.is_ok()) << built.status().to_string();

    // Census: one clean run counts the interpreter's allocations.
    uint64_t hits = 0;
    {
        auto vm = built.value()->instantiate(GetParam().config);
        injector.disarm();
        ASSERT_TRUE(injector.arm("count").is_ok());
        auto result = vm->call("churn", {kChurnArg});
        injector.disarm();
        ASSERT_TRUE(result.is_ok()) << result.status().to_string();
        EXPECT_EQ(result.value(), kChurnExpected);
        hits = injector.hits(fault::Site::kHeapAlloc);
    }
    ASSERT_GT(hits, 0u) << "kernel never allocated: sweep is vacuous";

    for (uint64_t k = 1; k <= hits; ++k) {
        auto vm = built.value()->instantiate(GetParam().config);
        injector.reset_counters();
        injector.arm_nth(fault::Site::kHeapAlloc, k);
        auto result = vm->call("churn", {kChurnArg});
        injector.disarm();
        std::string run = GetParam().label + " hit " +
                          std::to_string(k) + "/" +
                          std::to_string(hits);

        ASSERT_FALSE(result.is_ok())
            << run << ": injected OOM was swallowed";
        EXPECT_EQ(result.status().code(),
                  StatusCode::kResourceExhausted)
            << run << ": " << result.status().to_string();
        Status integrity = vm->heap().check_integrity();
        EXPECT_TRUE(integrity.is_ok())
            << run << ": " << integrity.to_string();

        // The trap must have unwound frames and dropped the failed
        // run's roots: the same VM re-runs to the right answer.
        auto retry = vm->call("churn", {kChurnArg});
        ASSERT_TRUE(retry.is_ok())
            << run << " retry: " << retry.status().to_string();
        EXPECT_EQ(retry.value(), kChurnExpected) << run;
        integrity = vm->heap().check_integrity();
        EXPECT_TRUE(integrity.is_ok())
            << run << " retry: " << integrity.to_string();
        if (HasFailure()) return;
    }
}

INSTANTIATE_TEST_SUITE_P(
    DispatchAndHeaps, VmFaultSweepTest,
    ::testing::ValuesIn(sweep_configs()),
    [](const ::testing::TestParamInfo<VmParam>& info) {
        return info.param.label;
    });

/** Denied collections inside the VM: clean trap or absorbed, never
 *  corruption, and the VM survives either way. */
TEST(VmGcDenialTest, DeniedCollectionsTrapCleanlyOrAreAbsorbed) {
    auto& injector = fault::Injector::instance();
    auto built = build_program(kChurnSource);
    ASSERT_TRUE(built.is_ok());
    VmConfig config;
    config.mode = ValueMode::kBoxed;
    config.heap = HeapPolicy::kSemispace;
    config.heap_words = 1 << 12;  // tight: the collector must run
    config.stack_slots = 1 << 10;

    constexpr int64_t kIters = 256;
    uint64_t hits = 0;
    {
        auto vm = built.value()->instantiate(config);
        ASSERT_TRUE(injector.arm("count").is_ok());
        auto result = vm->call("churn", {kIters});
        injector.disarm();
        ASSERT_TRUE(result.is_ok()) << result.status().to_string();
        hits = injector.hits(fault::Site::kGcTrigger);
    }
    ASSERT_GT(hits, 0u) << "heap too roomy: collector never ran";

    for (uint64_t k = 1; k <= hits; ++k) {
        auto vm = built.value()->instantiate(config);
        injector.arm_nth(fault::Site::kGcTrigger, k);
        auto result = vm->call("churn", {kIters});
        injector.disarm();
        if (!result.is_ok()) {
            EXPECT_EQ(result.status().code(),
                      StatusCode::kResourceExhausted)
                << result.status().to_string();
        } else {
            EXPECT_EQ(result.value(), kIters * (kIters - 1) / 2);
        }
        Status integrity = vm->heap().check_integrity();
        EXPECT_TRUE(integrity.is_ok())
            << "hit " << k << ": " << integrity.to_string();
        if (::testing::Test::HasFailure()) return;
    }
    fault::Injector::instance().disarm();
}

/** The FFI buffer crossing: both marshal directions fail cleanly and
 *  leave the caller's buffer untouched. */
TEST(VmFfiFaultTest, BufferCrossingFailsCleanlyAtEachMarshalHit) {
    auto& injector = fault::Injector::instance();
    auto built = build_program(
        "(define (double-all buf : (array int64 8)) : int64"
        "  (let ((i 0) (sum 0))"
        "    (while (< i 8)"
        "      (array-set! buf i (* 2 (array-ref buf i)))"
        "      (set! sum (+ sum (array-ref buf i)))"
        "      (set! i (+ i 1)))"
        "    sum))");
    ASSERT_TRUE(built.is_ok()) << built.status().to_string();

    uint64_t hits = 0;
    {
        auto vm = built.value()->instantiate({});
        ASSERT_TRUE(injector.arm("count").is_ok());
        int64_t buffer[8] = {1, 2, 3, 4, 5, 6, 7, 8};
        auto result = vm->call_with_buffer("double-all", buffer);
        injector.disarm();
        ASSERT_TRUE(result.is_ok()) << result.status().to_string();
        hits = injector.hits(fault::Site::kFfiMarshal);
    }
    ASSERT_GE(hits, 2u) << "expected an inbound and an outbound crossing";

    for (uint64_t k = 1; k <= hits; ++k) {
        auto vm = built.value()->instantiate({});
        injector.reset_counters();
        injector.arm_nth(fault::Site::kFfiMarshal, k);
        int64_t buffer[8] = {1, 2, 3, 4, 5, 6, 7, 8};
        auto result = vm->call_with_buffer("double-all", buffer);
        injector.disarm();

        ASSERT_FALSE(result.is_ok()) << "hit " << k;
        EXPECT_EQ(result.status().code(),
                  StatusCode::kResourceExhausted)
            << result.status().to_string();
        for (int i = 0; i < 8; ++i) {
            EXPECT_EQ(buffer[i], i + 1)
                << "hit " << k
                << ": failed crossing must not half-update the buffer";
        }

        // Clean retry on the same VM round-trips correctly.
        auto retry = vm->call_with_buffer("double-all", buffer);
        ASSERT_TRUE(retry.is_ok()) << retry.status().to_string();
        EXPECT_EQ(retry.value(), 72);
        for (int i = 0; i < 8; ++i) {
            EXPECT_EQ(buffer[i], 2 * (i + 1));
        }
        if (::testing::Test::HasFailure()) return;
    }
}

}  // namespace
}  // namespace bitc::vm
