/**
 * The exhaustive fail-at-every-site sweep over the storage policies.
 *
 * For each (policy, workload, site) triple the driver first runs the
 * workload with the injector in census mode to count how many times
 * the site is reached, then re-runs it once per hit with exactly that
 * hit forced to fail.  Every re-run must satisfy the hardening
 * contract:
 *
 *   1. the failure (if any) surfaces as a clean kResourceExhausted —
 *      never a crash, never a mystery code;
 *   2. the heap's own invariants still hold (check_integrity);
 *   3. nothing leaked: after the policy-appropriate cleanup the heap
 *      is empty under the shadow accounting (live_objects and
 *      words_in_use both zero).
 *
 * Workloads are seeded, so a census run and its re-runs see the same
 * allocation sequence — the injected hit is the only difference.
 */
#include <gtest/gtest.h>

#include <functional>

#include "memory/mutator.hpp"
#include "memory/region_heap.hpp"
#include "support/fault.hpp"
#include "vm/interpreter.hpp"

namespace bitc {
namespace {

using mem::ManagedHeap;
using mem::MutatorReport;

constexpr vm::HeapPolicy kAllPolicies[] = {
    vm::HeapPolicy::kRegion,       vm::HeapPolicy::kManual,
    vm::HeapPolicy::kRefCount,     vm::HeapPolicy::kMarkSweep,
    vm::HeapPolicy::kMarkCompact,  vm::HeapPolicy::kSemispace,
    vm::HeapPolicy::kGenerational,
};

struct Workload {
    const char* name;
    std::function<Result<MutatorReport>(ManagedHeap&)> run;
};

/** Seeded workloads, sized so the per-hit sweep stays fast. */
std::vector<Workload> workloads() {
    return {
        {"churn",
         [](ManagedHeap& heap) {
             Rng rng(42);
             return mem::run_churn(heap, 300, 16, 4, rng);
         }},
        {"binary-trees",
         [](ManagedHeap& heap) {
             return mem::run_binary_trees(heap, 5, 3);
         }},
        {"graph-mutation",
         [](ManagedHeap& heap) {
             Rng rng(7);
             return mem::run_graph_mutation(heap, 40, 3, 300, rng);
         }},
    };
}

/**
 * Releases whatever a finished (or failed) workload left behind, the
 * way each discipline reclaims: regions release wholesale, tracing
 * policies collect with no roots left, and the manual policy relies
 * on the workloads' own failure-path frees.
 */
void drain(ManagedHeap& heap) {
    if (auto* region = dynamic_cast<mem::RegionHeap*>(&heap)) {
        region->reset_region();
    } else if (!heap.needs_explicit_free()) {
        heap.collect();
    }
}

void expect_intact_and_empty(ManagedHeap& heap,
                             const std::string& context) {
    Status integrity = heap.check_integrity();
    EXPECT_TRUE(integrity.is_ok())
        << context << ": " << integrity.to_string();
    drain(heap);
    integrity = heap.check_integrity();
    EXPECT_TRUE(integrity.is_ok())
        << context << " (post-drain): " << integrity.to_string();
    EXPECT_EQ(heap.live_objects(), 0u) << context << ": leaked objects";
    EXPECT_EQ(heap.stats().words_in_use, 0u)
        << context << ": leaked words";
}

/**
 * Census + per-hit sweep of @p site.  @p must_fail distinguishes
 * heap-alloc (an injected allocation failure always surfaces) from
 * gc-trigger (a denied collection may be absorbed when the policy
 * finds room anyway — only *clean* failure is required).
 */
uint64_t sweep_site(vm::HeapPolicy policy, const Workload& workload,
                    fault::Site site, size_t heap_words,
                    bool must_fail) {
    auto& injector = fault::Injector::instance();
    std::string context = std::string(vm::heap_policy_name(policy)) +
                          "/" + workload.name + "/" +
                          fault::site_name(site);

    uint64_t hits = 0;
    {
        auto heap = vm::make_heap(policy, heap_words);
        injector.disarm();
        EXPECT_TRUE(injector.arm("count").is_ok());
        auto report = workload.run(*heap);
        injector.disarm();
        EXPECT_TRUE(report.is_ok())
            << context << " census: " << report.status().to_string();
        if (!report.is_ok()) return 0;
        hits = injector.hits(site);
        expect_intact_and_empty(*heap, context + " census");
    }

    for (uint64_t k = 1; k <= hits; ++k) {
        auto heap = vm::make_heap(policy, heap_words);
        injector.reset_counters();
        injector.arm_nth(site, k);
        auto report = workload.run(*heap);
        injector.disarm();
        std::string run = context + " hit " + std::to_string(k) + "/" +
                          std::to_string(hits);
        EXPECT_EQ(injector.injected(site), 1u) << run;
        if (must_fail) {
            EXPECT_FALSE(report.is_ok())
                << run << ": injected failure was swallowed";
        }
        if (!report.is_ok()) {
            EXPECT_EQ(report.status().code(),
                      StatusCode::kResourceExhausted)
                << run << ": " << report.status().to_string();
        }
        expect_intact_and_empty(*heap, run);
        if (::testing::Test::HasFailure()) return hits;
    }
    return hits;
}

TEST(HeapFaultSweep, EveryAllocationFailureIsCleanOnEveryPolicy) {
    // Ample heap: the only failure in each re-run is the injected one.
    uint64_t total_hits = 0;
    for (vm::HeapPolicy policy : kAllPolicies) {
        for (const Workload& workload : workloads()) {
            total_hits += sweep_site(policy, workload,
                                     fault::Site::kHeapAlloc, 1 << 16,
                                     /*must_fail=*/true);
            if (HasFailure()) return;
        }
    }
    EXPECT_GT(total_hits, 1000u) << "sweep should not be vacuous";
}

TEST(HeapFaultSweep, EveryDeniedCollectionIsCleanOnEveryPolicy) {
    // Tight heap plus an allocation-heavy churn so the collectors
    // actually run; a denied collection either gets absorbed (the
    // policy finds room anyway) or surfaces as a clean exhaustion
    // through the normal allocation path.
    Workload heavy{"churn-heavy", [](ManagedHeap& heap) {
                       Rng rng(42);
                       return mem::run_churn(heap, 2000, 16, 4, rng);
                   }};
    uint64_t total_hits = 0;
    for (vm::HeapPolicy policy : kAllPolicies) {
        total_hits += sweep_site(policy, heavy,
                                 fault::Site::kGcTrigger, 1 << 12,
                                 /*must_fail=*/false);
        if (HasFailure()) return;
        for (const Workload& workload : workloads()) {
            total_hits += sweep_site(policy, workload,
                                     fault::Site::kGcTrigger, 1 << 12,
                                     /*must_fail=*/false);
            if (HasFailure()) return;
        }
    }
    EXPECT_GT(total_hits, 0u)
        << "no policy ever reached a collection: sweep is vacuous";
}

}  // namespace
}  // namespace bitc
