#include "repr/codec.hpp"

#include <array>
#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace bitc::repr {
namespace {

RecordCodec make_codec(const RecordSpec& spec) {
    auto layout = compute_layout(spec);
    EXPECT_TRUE(layout.is_ok()) << layout.status().to_string();
    return RecordCodec(std::move(layout).take());
}

TEST(CodecTest, Ipv4HeaderLaysOutTwentyBytes) {
    RecordCodec codec = make_codec(ipv4_header_spec());
    EXPECT_EQ(codec.layout().byte_size(), 20u);
    EXPECT_EQ(codec.layout().padding_bits(), 0u);
}

TEST(CodecTest, Ipv4FirstByteMatchesWireFormat) {
    RecordCodec codec = make_codec(ipv4_header_spec());
    std::array<uint8_t, 20> buf{};
    ASSERT_TRUE(codec.write(buf, "version", 4).is_ok());
    ASSERT_TRUE(codec.write(buf, "ihl", 5).is_ok());
    EXPECT_EQ(buf[0], 0x45) << "the canonical IPv4 first byte";
}

TEST(CodecTest, Ipv4RoundTripsAllFields) {
    RecordCodec codec = make_codec(ipv4_header_spec());
    std::array<uint8_t, 20> buf{};
    struct Expected {
        const char* field;
        uint64_t value;
    };
    const Expected values[] = {
        {"version", 4},          {"ihl", 5},
        {"dscp", 46},            {"ecn", 1},
        {"total_length", 1500},  {"identification", 0xbeef},
        {"flags", 2},            {"fragment_offset", 777},
        {"ttl", 64},             {"protocol", 6},
        {"header_checksum", 0},  {"src_addr", 0xc0a80001},
        {"dst_addr", 0x08080808},
    };
    for (const auto& [field, value] : values) {
        ASSERT_TRUE(codec.write(buf, field, value).is_ok()) << field;
    }
    for (const auto& [field, value] : values) {
        auto read = codec.read(buf, field);
        ASSERT_TRUE(read.is_ok()) << field;
        EXPECT_EQ(read.value(), value) << field;
    }
}

TEST(CodecTest, WriteRejectsOverflowingValues) {
    RecordCodec codec = make_codec(ipv4_header_spec());
    std::array<uint8_t, 20> buf{};
    auto status = codec.write(buf, "version", 16);  // 4-bit field
    ASSERT_FALSE(status.is_ok());
    EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
}

TEST(CodecTest, ShortBufferIsRejectedNotOverrun) {
    RecordCodec codec = make_codec(ipv4_header_spec());
    std::array<uint8_t, 10> buf{};
    auto read = codec.read(buf, "dst_addr");
    ASSERT_FALSE(read.is_ok());
    EXPECT_EQ(read.status().code(), StatusCode::kOutOfRange);
    EXPECT_FALSE(codec.write(buf, "ttl", 1).is_ok());
}

TEST(CodecTest, UnknownFieldIsNotFound) {
    RecordCodec codec = make_codec(ipv4_header_spec());
    std::array<uint8_t, 20> buf{};
    auto read = codec.read(buf, "no_such_field");
    ASSERT_FALSE(read.is_ok());
    EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(CodecTest, PageTableEntryBitsLandWhereIntelSaysTheyDo) {
    RecordCodec codec = make_codec(page_table_entry_spec());
    EXPECT_EQ(codec.layout().byte_size(), 8u);
    std::array<uint8_t, 8> buf{};
    ASSERT_TRUE(codec.write(buf, "present", 1).is_ok());
    ASSERT_TRUE(codec.write(buf, "writable", 1).is_ok());
    ASSERT_TRUE(codec.write(buf, "frame", 0x123456).is_ok());
    ASSERT_TRUE(codec.write(buf, "no_execute", 1).is_ok());
    // P|W bits of the low byte.
    EXPECT_EQ(buf[0] & 0x3, 0x3);
    // NX is bit 63.
    EXPECT_EQ(buf[7] & 0x80, 0x80);
    // Frame starts at bit 12: value 0x123456 << 12 within the word.
    uint64_t word = 0;
    for (int i = 7; i >= 0; --i) word = (word << 8) | buf[i];
    EXPECT_EQ((word >> 12) & 0xffffffffffull, 0x123456u);
}

TEST(CodecTest, SignedFieldsSignExtend) {
    RecordSpec spec;
    spec.name = "audio";
    spec.packing = Packing::kPacked;
    spec.fields = {{"sample", ScalarType::int_type(24)}};
    RecordCodec codec = make_codec(spec);
    std::array<uint8_t, 3> buf{};
    ASSERT_TRUE(codec.write_signed(buf, "sample", -12345).is_ok());
    auto read = codec.read_signed(buf, "sample");
    ASSERT_TRUE(read.is_ok());
    EXPECT_EQ(read.value(), -12345);
}

TEST(CodecTest, SignedWriteRejectsOutOfRange) {
    RecordSpec spec;
    spec.name = "tiny";
    spec.packing = Packing::kPacked;
    spec.fields = {{"v", ScalarType::int_type(4)}};
    RecordCodec codec = make_codec(spec);
    std::array<uint8_t, 1> buf{};
    EXPECT_TRUE(codec.write_signed(buf, "v", -8).is_ok());
    EXPECT_TRUE(codec.write_signed(buf, "v", 7).is_ok());
    EXPECT_FALSE(codec.write_signed(buf, "v", 8).is_ok());
    EXPECT_FALSE(codec.write_signed(buf, "v", -9).is_ok());
}

TEST(CodecTest, NegativeIntoUnsignedRejected) {
    RecordCodec codec = make_codec(ipv4_header_spec());
    std::array<uint8_t, 20> buf{};
    EXPECT_FALSE(codec.write_signed(buf, "ttl", -1).is_ok());
}

TEST(CodecTest, RandomRoundTripEveryFieldOfBothSpecs) {
    Rng rng(0xC0DEC);
    for (const RecordSpec& spec :
         {ipv4_header_spec(), page_table_entry_spec()}) {
        RecordCodec codec = make_codec(spec);
        std::vector<uint8_t> buf(codec.layout().byte_size(), 0);
        for (int trial = 0; trial < 200; ++trial) {
            for (const FieldLayout& f : codec.layout().fields()) {
                uint64_t v = rng.next() & low_mask(f.bit_width);
                ASSERT_TRUE(codec.write(buf, f.name, v).is_ok());
                auto back = codec.read(buf, f.name);
                ASSERT_TRUE(back.is_ok());
                EXPECT_EQ(back.value(), v)
                    << spec.name << "." << f.name;
            }
        }
    }
}

}  // namespace
}  // namespace bitc::repr
