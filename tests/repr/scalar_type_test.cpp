#include "repr/scalar_type.hpp"

#include <gtest/gtest.h>

namespace bitc::repr {
namespace {

TEST(ScalarTypeTest, RendersNames) {
    EXPECT_EQ(ScalarType::uint_type(13).to_string(), "uint13");
    EXPECT_EQ(ScalarType::int_type(24).to_string(), "int24");
    EXPECT_EQ(ScalarType::f32().to_string(), "f32");
    EXPECT_EQ(ScalarType::f64().to_string(), "f64");
    EXPECT_EQ(ScalarType::boolean().to_string(), "bool");
}

TEST(ScalarTypeTest, ValidatesWidths) {
    EXPECT_TRUE(ScalarType::uint_type(1).validate().is_ok());
    EXPECT_TRUE(ScalarType::uint_type(64).validate().is_ok());
    EXPECT_FALSE(ScalarType::uint_type(0).validate().is_ok());
    EXPECT_FALSE(ScalarType::uint_type(65).validate().is_ok());
    EXPECT_FALSE(ScalarType::int_type(1).validate().is_ok());
    EXPECT_TRUE(ScalarType::int_type(2).validate().is_ok());
}

TEST(ScalarTypeTest, UnsignedRange) {
    ScalarType u13 = ScalarType::uint_type(13);
    EXPECT_EQ(u13.max_raw(), 8191u);
    EXPECT_TRUE(u13.fits(8191));
    EXPECT_FALSE(u13.fits(8192));
    EXPECT_TRUE(u13.fits(0));
}

TEST(ScalarTypeTest, SignedRange) {
    ScalarType i8 = ScalarType::int_type(8);
    EXPECT_EQ(i8.min_signed(), -128);
    EXPECT_EQ(i8.max_signed(), 127);
    EXPECT_TRUE(i8.fits(static_cast<uint64_t>(-128)));
    EXPECT_TRUE(i8.fits(127));
    EXPECT_FALSE(i8.fits(128));
    EXPECT_FALSE(i8.fits(static_cast<uint64_t>(-129)));
}

TEST(ScalarTypeTest, CheckedConvertRejectsOverflow) {
    ScalarType u4 = ScalarType::uint_type(4);
    auto ok = u4.checked_convert(15);
    ASSERT_TRUE(ok.is_ok());
    EXPECT_EQ(ok.value(), 15u);
    auto bad = u4.checked_convert(16);
    ASSERT_FALSE(bad.is_ok());
    EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
}

TEST(ScalarTypeTest, WrapTruncatesLikeC) {
    ScalarType u4 = ScalarType::uint_type(4);
    EXPECT_EQ(u4.wrap(0x1f), 0xfu);
    EXPECT_EQ(ScalarType::uint_type(64).wrap(~0ull), ~0ull);
}

TEST(ScalarTypeTest, BoolFitsOnlyZeroOne) {
    ScalarType b = ScalarType::boolean();
    EXPECT_TRUE(b.fits(0));
    EXPECT_TRUE(b.fits(1));
    EXPECT_FALSE(b.fits(2));
}

TEST(SignExtendTest, ExtendsNegatives) {
    EXPECT_EQ(sign_extend(0xf, 4), -1);
    EXPECT_EQ(sign_extend(0x7, 4), 7);
    EXPECT_EQ(sign_extend(0x8, 4), -8);
    EXPECT_EQ(sign_extend(0x80, 8), -128);
    EXPECT_EQ(sign_extend(0xffffffffffffffffull, 64), -1);
}

TEST(LowMaskTest, Boundaries) {
    EXPECT_EQ(low_mask(1), 1u);
    EXPECT_EQ(low_mask(8), 0xffu);
    EXPECT_EQ(low_mask(63), 0x7fffffffffffffffull);
    EXPECT_EQ(low_mask(64), ~0ull);
}

class ScalarWidthSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ScalarWidthSweep, RoundTripMaxValueThroughCheckedConvert) {
    uint32_t bits = GetParam();
    ScalarType t = ScalarType::uint_type(bits);
    auto r = t.checked_convert(t.max_raw());
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r.value(), t.max_raw());
    if (bits < 64) {
        EXPECT_FALSE(t.checked_convert(t.max_raw() + 1).is_ok());
    }
}

TEST_P(ScalarWidthSweep, SignedExtremesRoundTrip) {
    uint32_t bits = GetParam();
    if (bits < 2) return;
    ScalarType t = ScalarType::int_type(bits);
    EXPECT_EQ(sign_extend(static_cast<uint64_t>(t.min_signed()), bits),
              t.min_signed());
    EXPECT_EQ(sign_extend(static_cast<uint64_t>(t.max_signed()), bits),
              t.max_signed());
}

INSTANTIATE_TEST_SUITE_P(AllWidths, ScalarWidthSweep,
                         ::testing::Values(1u, 2u, 3u, 7u, 8u, 13u, 16u,
                                           24u, 31u, 32u, 33u, 48u, 63u,
                                           64u));

}  // namespace
}  // namespace bitc::repr
