#include "repr/layout.hpp"

#include <gtest/gtest.h>

namespace bitc::repr {
namespace {

TEST(LayoutTest, PackedFieldsAreBitContiguous) {
    RecordSpec spec;
    spec.name = "flags";
    spec.packing = Packing::kPacked;
    spec.fields = {
        {"a", ScalarType::uint_type(3)},
        {"b", ScalarType::uint_type(5)},
        {"c", ScalarType::uint_type(13)},
    };
    auto layout = compute_layout(spec);
    ASSERT_TRUE(layout.is_ok()) << layout.status().to_string();
    EXPECT_EQ(layout.value().fields()[0].bit_offset, 0u);
    EXPECT_EQ(layout.value().fields()[1].bit_offset, 3u);
    EXPECT_EQ(layout.value().fields()[2].bit_offset, 8u);
    EXPECT_EQ(layout.value().byte_size(), 3u);  // 21 bits -> 3 bytes
    EXPECT_EQ(layout.value().padding_bits(), 3u);
}

TEST(LayoutTest, NaturalPackingInsertsCStylePadding) {
    RecordSpec spec;
    spec.name = "mixed";
    spec.packing = Packing::kNatural;
    spec.fields = {
        {"tag", ScalarType::uint_type(8)},
        {"value", ScalarType::uint_type(64)},
        {"flag", ScalarType::uint_type(8)},
    };
    auto layout = compute_layout(spec);
    ASSERT_TRUE(layout.is_ok());
    const auto& fields = layout.value().fields();
    EXPECT_EQ(fields[0].bit_offset, 0u);
    EXPECT_EQ(fields[1].bit_offset, 64u);   // aligned to 8 bytes
    EXPECT_EQ(fields[2].bit_offset, 128u);
    EXPECT_EQ(layout.value().byte_size(), 24u);  // trailing pad to align
    EXPECT_EQ(layout.value().alignment_bytes(), 8u);
}

TEST(LayoutTest, PackedSavesSpaceOverNatural) {
    RecordSpec packed;
    packed.name = "p";
    packed.packing = Packing::kPacked;
    RecordSpec natural = packed;
    natural.name = "n";
    natural.packing = Packing::kNatural;
    for (RecordSpec* s : {&packed, &natural}) {
        s->fields = {
            {"a", ScalarType::uint_type(1)},
            {"b", ScalarType::uint_type(17)},
            {"c", ScalarType::uint_type(3)},
            {"d", ScalarType::uint_type(32)},
        };
    }
    auto p = compute_layout(packed);
    auto n = compute_layout(natural);
    ASSERT_TRUE(p.is_ok());
    ASSERT_TRUE(n.is_ok());
    EXPECT_LT(p.value().byte_size(), n.value().byte_size());
}

TEST(LayoutTest, ExplicitPlacementIsHonoured) {
    RecordSpec spec;
    spec.name = "pte";
    spec.packing = Packing::kExplicit;
    spec.fields = {
        {"present", ScalarType::boolean(), 0},
        {"frame", ScalarType::uint_type(40), 12},
    };
    auto layout = compute_layout(spec);
    ASSERT_TRUE(layout.is_ok());
    auto frame = layout.value().field("frame");
    ASSERT_TRUE(frame.is_ok());
    EXPECT_EQ(frame.value().bit_offset, 12u);
    EXPECT_EQ(layout.value().byte_size(), 7u);  // bits 12..51
}

TEST(LayoutTest, ExplicitWithoutOffsetIsRejected) {
    RecordSpec spec;
    spec.name = "bad";
    spec.packing = Packing::kExplicit;
    spec.fields = {{"x", ScalarType::uint_type(8)}};
    auto layout = compute_layout(spec);
    ASSERT_FALSE(layout.is_ok());
    EXPECT_EQ(layout.status().code(), StatusCode::kInvalidArgument);
}

TEST(LayoutTest, OverlapIsRejectedByDefault) {
    RecordSpec spec;
    spec.name = "clash";
    spec.packing = Packing::kExplicit;
    spec.fields = {
        {"a", ScalarType::uint_type(8), 0},
        {"b", ScalarType::uint_type(8), 4},
    };
    auto layout = compute_layout(spec);
    ASSERT_FALSE(layout.is_ok());
    EXPECT_NE(layout.status().message().find("overlap"),
              std::string::npos);
}

TEST(LayoutTest, OverlapAllowedForUnions) {
    RecordSpec spec;
    spec.name = "view";
    spec.packing = Packing::kExplicit;
    spec.allow_overlap = true;
    spec.fields = {
        {"word", ScalarType::uint_type(32), 0},
        {"low_half", ScalarType::uint_type(16), 0},
    };
    EXPECT_TRUE(compute_layout(spec).is_ok());
}

TEST(LayoutTest, DuplicateFieldNamesRejected) {
    RecordSpec spec;
    spec.name = "dup";
    spec.packing = Packing::kPacked;
    spec.fields = {
        {"x", ScalarType::uint_type(8)},
        {"x", ScalarType::uint_type(8)},
    };
    auto layout = compute_layout(spec);
    ASSERT_FALSE(layout.is_ok());
    EXPECT_EQ(layout.status().code(), StatusCode::kAlreadyExists);
}

TEST(LayoutTest, PinnedSizeTooSmallIsRejected) {
    RecordSpec spec;
    spec.name = "pinned";
    spec.packing = Packing::kPacked;
    spec.pinned_byte_size = 1;
    spec.fields = {{"wide", ScalarType::uint_type(32)}};
    EXPECT_FALSE(compute_layout(spec).is_ok());
}

TEST(LayoutTest, PinnedSizePadsOut) {
    RecordSpec spec;
    spec.name = "padded";
    spec.packing = Packing::kPacked;
    spec.pinned_byte_size = 16;
    spec.fields = {{"x", ScalarType::uint_type(8)}};
    auto layout = compute_layout(spec);
    ASSERT_TRUE(layout.is_ok());
    EXPECT_EQ(layout.value().byte_size(), 16u);
    EXPECT_EQ(layout.value().padding_bits(), 15u * 8);
}

TEST(LayoutTest, InvalidScalarRejected) {
    RecordSpec spec;
    spec.name = "badscalar";
    spec.packing = Packing::kPacked;
    spec.fields = {{"x", ScalarType::uint_type(99)}};
    EXPECT_FALSE(compute_layout(spec).is_ok());
}

TEST(LayoutTest, FieldLookupByName) {
    RecordSpec spec;
    spec.name = "lookup";
    spec.packing = Packing::kPacked;
    spec.fields = {
        {"first", ScalarType::uint_type(4)},
        {"second", ScalarType::uint_type(4)},
    };
    auto layout = compute_layout(spec);
    ASSERT_TRUE(layout.is_ok());
    EXPECT_TRUE(layout.value().has_field("second"));
    EXPECT_FALSE(layout.value().has_field("third"));
    EXPECT_FALSE(layout.value().field("third").is_ok());
}

TEST(LayoutTest, DescribeListsEveryField) {
    RecordSpec spec;
    spec.name = "doc";
    spec.packing = Packing::kPacked;
    spec.fields = {
        {"alpha", ScalarType::uint_type(4)},
        {"beta", ScalarType::int_type(12)},
    };
    auto layout = compute_layout(spec);
    ASSERT_TRUE(layout.is_ok());
    std::string desc = layout.value().describe();
    EXPECT_NE(desc.find("alpha"), std::string::npos);
    EXPECT_NE(desc.find("beta"), std::string::npos);
    EXPECT_NE(desc.find("int12"), std::string::npos);
}

}  // namespace
}  // namespace bitc::repr
