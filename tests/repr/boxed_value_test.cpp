#include "repr/boxed_value.hpp"

#include <gtest/gtest.h>

namespace bitc::repr {
namespace {

TEST(UnboxedArrayTest, GetSetRoundTrip) {
    UnboxedI64Array arr(16);
    for (size_t i = 0; i < arr.size(); ++i) {
        arr.set(i, static_cast<int64_t>(i * 3));
    }
    for (size_t i = 0; i < arr.size(); ++i) {
        EXPECT_EQ(arr.get(i), static_cast<int64_t>(i * 3));
    }
}

TEST(UnboxedArrayTest, StorageIsContiguous) {
    UnboxedI64Array arr(8);
    arr.set(0, 1);
    arr.set(7, 2);
    EXPECT_EQ(arr.data()[0], 1);
    EXPECT_EQ(arr.data()[7], 2);
    EXPECT_EQ(&arr.data()[7] - &arr.data()[0], 7);
}

TEST(BoxedArrayTest, GetSetRoundTripSequential) {
    Rng rng(1);
    BoxedI64Array arr(16, /*scatter=*/false, rng);
    for (size_t i = 0; i < arr.size(); ++i) {
        arr.set(i, static_cast<int64_t>(100 - i));
    }
    for (size_t i = 0; i < arr.size(); ++i) {
        EXPECT_EQ(arr.get(i), static_cast<int64_t>(100 - i));
    }
}

TEST(BoxedArrayTest, GetSetRoundTripScattered) {
    Rng rng(2);
    BoxedI64Array arr(64, /*scatter=*/true, rng);
    for (size_t i = 0; i < arr.size(); ++i) {
        arr.set(i, static_cast<int64_t>(i) - 32);
    }
    int64_t sum = 0;
    for (size_t i = 0; i < arr.size(); ++i) sum += arr.get(i);
    EXPECT_EQ(sum, -32 * 1);  // sum of (i-32) for i in [0,64)
}

TEST(BoxedArrayTest, ScatterCoversAllSlots) {
    Rng rng(3);
    BoxedI64Array arr(128, /*scatter=*/true, rng);
    // Every slot must be addressable (no null from a permutation bug).
    for (size_t i = 0; i < arr.size(); ++i) {
        arr.set(i, 7);
        EXPECT_EQ(arr.get(i), 7);
    }
}

TEST(RepresentationTest, BoxedCostsMoreMemoryPerElement) {
    EXPECT_GT(BoxedI64Array::bytes_per_element(),
              UnboxedI64Array::bytes_per_element());
    // The factor the paper's F2 argument turns on: >= 3x here.
    EXPECT_GE(BoxedI64Array::bytes_per_element() /
                  UnboxedI64Array::bytes_per_element(),
              3u);
}

}  // namespace
}  // namespace bitc::repr
