#include "repr/bitfield.hpp"

#include <array>
#include <cstring>
#include <gtest/gtest.h>

#include "repr/scalar_type.hpp"
#include "support/rng.hpp"

namespace bitc::repr {
namespace {

TEST(BitfieldLsbTest, ByteAlignedRoundTrip) {
    std::array<uint8_t, 8> buf{};
    write_bits(buf.data(), 8, 8, 0xab, BitOrder::kLsbFirst);
    EXPECT_EQ(buf[1], 0xab);
    EXPECT_EQ(read_bits(buf.data(), 8, 8, BitOrder::kLsbFirst), 0xabu);
}

TEST(BitfieldLsbTest, SubByteFieldsDoNotDisturbNeighbours) {
    std::array<uint8_t, 2> buf{};
    buf.fill(0xff);
    write_bits(buf.data(), 3, 4, 0x0, BitOrder::kLsbFirst);
    // Bits 3..6 cleared, everything else intact.
    EXPECT_EQ(buf[0], 0b10000111);
    EXPECT_EQ(buf[1], 0xff);
}

TEST(BitfieldLsbTest, StraddlesByteBoundary) {
    std::array<uint8_t, 4> buf{};
    write_bits(buf.data(), 6, 10, 0x3ff, BitOrder::kLsbFirst);
    EXPECT_EQ(read_bits(buf.data(), 6, 10, BitOrder::kLsbFirst), 0x3ffu);
    EXPECT_EQ(buf[0], 0b11000000);
    EXPECT_EQ(buf[1], 0xff);
}

TEST(BitfieldLsbTest, SixtyFourBitField) {
    std::array<uint8_t, 16> buf{};
    uint64_t v = 0x0123456789abcdefull;
    write_bits(buf.data(), 5, 64, v, BitOrder::kLsbFirst);
    EXPECT_EQ(read_bits(buf.data(), 5, 64, BitOrder::kLsbFirst), v);
}

TEST(BitfieldMsbTest, NetworkOrderNibbles) {
    // IPv4's first byte: version (high nibble) then IHL (low nibble).
    std::array<uint8_t, 1> buf{};
    write_bits(buf.data(), 0, 4, 4, BitOrder::kMsbFirst);   // version=4
    write_bits(buf.data(), 4, 4, 5, BitOrder::kMsbFirst);   // ihl=5
    EXPECT_EQ(buf[0], 0x45);
    EXPECT_EQ(read_bits(buf.data(), 0, 4, BitOrder::kMsbFirst), 4u);
    EXPECT_EQ(read_bits(buf.data(), 4, 4, BitOrder::kMsbFirst), 5u);
}

TEST(BitfieldMsbTest, MultiByteBigEndianValue) {
    std::array<uint8_t, 4> buf{};
    write_bits(buf.data(), 0, 16, 0x1234, BitOrder::kMsbFirst);
    EXPECT_EQ(buf[0], 0x12);
    EXPECT_EQ(buf[1], 0x34);
    EXPECT_EQ(read_bits(buf.data(), 0, 16, BitOrder::kMsbFirst), 0x1234u);
}

TEST(BitfieldMsbTest, ThirteenBitFieldAcrossBytes) {
    // IPv4 fragment offset: 13 bits following 3 flag bits.
    std::array<uint8_t, 2> buf{};
    write_bits(buf.data(), 0, 3, 0b010, BitOrder::kMsbFirst);
    write_bits(buf.data(), 3, 13, 1234, BitOrder::kMsbFirst);
    EXPECT_EQ(read_bits(buf.data(), 0, 3, BitOrder::kMsbFirst), 0b010u);
    EXPECT_EQ(read_bits(buf.data(), 3, 13, BitOrder::kMsbFirst), 1234u);
}

struct SweepParam {
    size_t bit_offset;
    uint32_t width;
};

class BitfieldSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BitfieldSweep, RandomRoundTripsBothOrders) {
    auto [offset, width] = GetParam();
    Rng rng(offset * 131 + width);
    for (BitOrder order : {BitOrder::kLsbFirst, BitOrder::kMsbFirst}) {
        std::array<uint8_t, 24> buf{};
        for (int trial = 0; trial < 50; ++trial) {
            uint64_t value = rng.next() & low_mask(width);
            write_bits(buf.data(), offset, width, value, order);
            EXPECT_EQ(read_bits(buf.data(), offset, width, order), value)
                << "offset=" << offset << " width=" << width
                << " order=" << static_cast<int>(order);
        }
    }
}

TEST_P(BitfieldSweep, WritePreservesSurroundingBits) {
    auto [offset, width] = GetParam();
    Rng rng(offset * 977 + width);
    for (BitOrder order : {BitOrder::kLsbFirst, BitOrder::kMsbFirst}) {
        std::array<uint8_t, 24> buf;
        for (size_t i = 0; i < buf.size(); ++i) {
            buf[i] = static_cast<uint8_t>(rng.next());
        }
        std::array<uint8_t, 24> before = buf;
        write_bits(buf.data(), offset, width, rng.next() & low_mask(width),
                   order);
        // Bytes entirely outside the field must be untouched.
        size_t first_byte = offset / 8;
        size_t last_byte = (offset + width - 1) / 8;
        for (size_t i = 0; i < buf.size(); ++i) {
            if (i < first_byte || i > last_byte) {
                EXPECT_EQ(buf[i], before[i]) << "byte " << i;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    OffsetsAndWidths, BitfieldSweep,
    ::testing::Combine(::testing::Values(0, 1, 3, 7, 8, 13, 21),
                       ::testing::Values(1, 3, 4, 8, 13, 16, 24, 33, 64)));

}  // namespace
}  // namespace bitc::repr
