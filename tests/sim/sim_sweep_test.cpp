/**
 * @file
 * The exhaustive schedule sweep (slow label, own CI job): many more
 * seeds and heavier storms than the tier-1 sweep.  Same invariants —
 * every seeded schedule keeps the conservation ledgers exact and
 * every echo answer matches the reference chain.  Override the base
 * with BITC_TEST_SEED to sweep a fresh region of schedule space; a
 * failure prints the seed, which replays the schedule exactly.
 */
#include <gtest/gtest.h>

#include "tests/sim/sim_harness.hpp"
#include "tests/support/test_seed.hpp"

namespace bitc {
namespace {

TEST(SimDeepSweepTest, PipelineStormsConserveOnEverySchedule) {
    const uint64_t base = bitc::test::seed_or(0xdeeb0);
    for (int i = 0; i < 700; ++i) {
        const uint64_t seed = base + static_cast<uint64_t>(i);
        const char* plan =
            i % 2 == 0 ? "worker-crash:every=5" : "channel-op:every=17";
        simtest::PipelineOutcome out =
            simtest::run_pipeline_storm(seed, 96, plan);
        ASSERT_TRUE(out.ok) << "seed " << seed << ": " << out.error;
        ASSERT_TRUE(out.report.conserved())
            << "seed " << seed << " (" << plan << ") lost packets:\n"
            << out.report.to_string();
    }
}

TEST(SimDeepSweepTest, NetEchoMatchesReferenceOnEverySchedule) {
    const uint64_t base = bitc::test::seed_or(0xdeeb1);
    for (int i = 0; i < 400; ++i) {
        const uint64_t seed = base + static_cast<uint64_t>(i);
        simtest::EchoOutcome out = simtest::run_net_echo(seed, 12);
        ASSERT_TRUE(out.ok) << "seed " << seed << ": " << out.error;
        ASSERT_TRUE(out.all_matched)
            << "seed " << seed << " diverged (" << out.answers
            << "/12 answers)";
        ASSERT_TRUE(out.stats.conserved())
            << "seed " << seed << ":\n" << out.stats.to_string();
    }
}

TEST(SimDeepSweepTest, NetStormsConserveOnEverySchedule) {
    const uint64_t base = bitc::test::seed_or(0xdeeb2);
    for (int i = 0; i < 400; ++i) {
        const uint64_t seed = base + static_cast<uint64_t>(i);
        const char* plan = i % 2 == 0 ? "worker-crash:every=7"
                                      : "socket-io:every=23";
        simtest::StormOutcome out =
            simtest::run_net_storm(seed, 14, 8, plan);
        ASSERT_TRUE(out.ok) << "seed " << seed << ": " << out.error;
        ASSERT_TRUE(out.stats.conserved())
            << "seed " << seed << " (" << plan << "):\n"
            << out.stats.to_string();
    }
}

}  // namespace
}  // namespace bitc
