/**
 * @file
 * Simulated-transport tests: the SimTransport's adversarial wire
 * behaviors (chunked transfers, stutter, half-close, peer reset), a
 * full NetServer echo over it under the deterministic scheduler, the
 * differential against a real loopback socket (byte-identical
 * answers, identical ledgers), and the virtual-time migration of the
 * slow-reader write-stall teardown — the scenario that needs real
 * sleeps and kernel buffer tricks on a socket happens on demand here.
 */
#include "net/sim_transport.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <numeric>
#include <string>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "support/stats.hpp"
#include "tests/sim/sim_harness.hpp"
#include "tests/support/test_seed.hpp"

namespace bitc::net {
namespace {

/** listen + connect + accept boilerplate for direct transport tests. */
struct Harness {
    SimTransport transport;
    bool ready = false;
    int listener = -1;
    int client = -1;  ///< client-side handle
    int server = -1;  ///< accepted server-side handle

    explicit Harness(SimTransportOptions opts)
        : transport(std::move(opts)) {
        auto lh = transport.listen("127.0.0.1", 0);
        if (!lh.is_ok()) return;
        listener = lh.value();
        if (!transport.add(listener, true, false).is_ok()) return;
        client = transport.connect();
        auto accepted = transport.accept();
        if (!accepted.is_ok()) return;
        server = accepted.value();
        if (!transport.add(server, true, false).is_ok()) return;
        ready = true;
    }
};

TEST(SimTransportTest, ChunkedTransferDeliversEveryByteInOrder) {
    SimTransportOptions opts;
    opts.seed = bitc::test::seed_or(21);
    opts.max_chunk = 3;
    opts.reorder = false;
    Harness h(opts);
    ASSERT_TRUE(h.ready);

    std::vector<uint8_t> sent(100);
    std::iota(sent.begin(), sent.end(), 0);
    ASSERT_TRUE(h.transport.client_write(h.client, sent).is_ok());

    // Server side: every read hands over at most max_chunk bytes.
    std::vector<uint8_t> got;
    std::vector<uint8_t> buf(64);
    while (got.size() < sent.size()) {
        auto r = h.transport.read(
            h.server, std::span<uint8_t>(buf.data(), buf.size()));
        ASSERT_TRUE(r.is_ok()) << r.status().to_string();
        ASSERT_FALSE(r.value().eof);
        ASSERT_LE(r.value().bytes, 3u);
        ASSERT_GT(r.value().bytes, 0u);
        got.insert(got.end(), buf.begin(),
                   buf.begin() + static_cast<long>(r.value().bytes));
    }
    EXPECT_EQ(got, sent);
    auto empty = h.transport.read(
        h.server, std::span<uint8_t>(buf.data(), buf.size()));
    ASSERT_FALSE(empty.is_ok());
    EXPECT_EQ(empty.status().code(), StatusCode::kUnavailable);

    // And back: server writes are chunked too; the client drains all.
    size_t written = 0;
    while (written < sent.size()) {
        auto w = h.transport.write(
            h.server, std::span<const uint8_t>(sent.data() + written,
                                               sent.size() - written));
        ASSERT_TRUE(w.is_ok()) << w.status().to_string();
        ASSERT_LE(w.value(), 3u);
        written += w.value();
    }
    std::vector<uint8_t> echoed;
    while (echoed.size() < sent.size()) {
        auto r = h.transport.client_read(h.client);
        ASSERT_TRUE(r.is_ok()) << r.status().to_string();
        echoed.insert(echoed.end(), r.value().begin(),
                      r.value().end());
    }
    EXPECT_EQ(echoed, sent);
}

TEST(SimTransportTest, HalfCloseYieldsEofAfterTheBacklogDrains) {
    SimTransportOptions opts;
    opts.seed = bitc::test::seed_or(22);
    Harness h(opts);
    ASSERT_TRUE(h.ready);

    std::vector<uint8_t> sent = {1, 2, 3, 4, 5};
    ASSERT_TRUE(h.transport.client_write(h.client, sent).is_ok());
    h.transport.client_close_write(h.client);

    std::vector<uint8_t> buf(16);
    auto r = h.transport.read(
        h.server, std::span<uint8_t>(buf.data(), buf.size()));
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    EXPECT_EQ(r.value().bytes, sent.size());
    EXPECT_FALSE(r.value().eof) << "bytes drain before the EOF";

    auto eof = h.transport.read(
        h.server, std::span<uint8_t>(buf.data(), buf.size()));
    ASSERT_TRUE(eof.is_ok()) << eof.status().to_string();
    EXPECT_EQ(eof.value().bytes, 0u);
    EXPECT_TRUE(eof.value().eof);
}

TEST(SimTransportTest, DroppedPeerSurfacesAsErrorThenCancelledIo) {
    SimTransportOptions opts;
    opts.seed = bitc::test::seed_or(23);
    opts.reorder = false;
    Harness h(opts);
    ASSERT_TRUE(h.ready);

    h.transport.client_drop(h.client);
    std::vector<PollEvent> events;
    auto waited = h.transport.wait(0, events);
    ASSERT_TRUE(waited.is_ok()) << waited.status().to_string();
    bool saw_error = false;
    for (const PollEvent& ev : events) {
        if (ev.fd == h.server && ev.error) saw_error = true;
    }
    EXPECT_TRUE(saw_error)
        << "readiness must report the reset connection";

    std::vector<uint8_t> buf(16);
    auto r = h.transport.read(
        h.server, std::span<uint8_t>(buf.data(), buf.size()));
    ASSERT_FALSE(r.is_ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST(SimTransportTest, StutterInjectsWouldBlockPeriodically) {
    SimTransportOptions opts;
    opts.seed = bitc::test::seed_or(24);
    opts.stutter_every = 2;
    opts.max_chunk = 4;
    Harness h(opts);
    ASSERT_TRUE(h.ready);

    std::vector<uint8_t> sent(32, 0xab);
    ASSERT_TRUE(h.transport.client_write(h.client, sent).is_ok());

    size_t got = 0;
    size_t would_blocks = 0;
    std::vector<uint8_t> buf(16);
    for (int spin = 0; spin < 200 && got < sent.size(); ++spin) {
        auto r = h.transport.read(
            h.server, std::span<uint8_t>(buf.data(), buf.size()));
        if (!r.is_ok()) {
            ASSERT_EQ(r.status().code(), StatusCode::kUnavailable);
            ++would_blocks;
            continue;
        }
        got += r.value().bytes;
    }
    EXPECT_EQ(got, sent.size());
    EXPECT_GT(would_blocks, 0u)
        << "stutter_every=2 must fake at least one would-block";
}

TEST(SimTransportTest, BoundedBufferBackpressuresServerWrites) {
    SimTransportOptions opts;
    opts.seed = bitc::test::seed_or(25);
    opts.conn_buf_bytes = 8;  // tiny simulated kernel buffer
    Harness h(opts);
    ASSERT_TRUE(h.ready);

    std::vector<uint8_t> chunk(8, 0x5a);
    auto first = h.transport.write(
        h.server, std::span<const uint8_t>(chunk.data(), chunk.size()));
    ASSERT_TRUE(first.is_ok());
    EXPECT_EQ(first.value(), 8u);
    auto blocked = h.transport.write(
        h.server, std::span<const uint8_t>(chunk.data(), chunk.size()));
    ASSERT_FALSE(blocked.is_ok());
    EXPECT_EQ(blocked.status().code(), StatusCode::kUnavailable)
        << "a stalled reader must surface as would-block";

    // The client draining frees the buffer and unblocks the server.
    ASSERT_TRUE(h.transport.client_read(h.client).is_ok());
    auto retry = h.transport.write(
        h.server, std::span<const uint8_t>(chunk.data(), chunk.size()));
    ASSERT_TRUE(retry.is_ok());
    EXPECT_GT(retry.value(), 0u);
}

// --- NetServer over the simulated wire -----------------------------------

TEST(SimNetServerTest, EchoOverSimTransportMatchesReference) {
    const uint64_t seed = bitc::test::seed_or(0x51e0);
    BITC_SEED_TRACE(seed);
    simtest::EchoOutcome out = simtest::run_net_echo(seed, 40);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.answers, 40u);
    EXPECT_TRUE(out.all_matched)
        << "an answer diverged from the reference stage chain";
    EXPECT_TRUE(out.stats.conserved()) << out.stats.to_string();
    EXPECT_EQ(out.stats.generated, 40u);
    EXPECT_EQ(out.stats.protocol_errors, 0u);
    EXPECT_GT(out.decision_count, 0u)
        << "the echo must have run under the simulated scheduler";
}

TEST(SimNetServerTest, SameSeedReplaysTheEchoExactly) {
    const uint64_t seed = bitc::test::seed_or(0x51e1);
    BITC_SEED_TRACE(seed);
    simtest::EchoOutcome a = simtest::run_net_echo(seed, 24);
    simtest::EchoOutcome b = simtest::run_net_echo(seed, 24);
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    EXPECT_EQ(a.decision_log, b.decision_log);
    EXPECT_EQ(a.decision_count, b.decision_count);
    EXPECT_EQ(a.stats.to_string(), b.stats.to_string());
}

/**
 * The satellite differential: the same frame set over the simulated
 * transport and over a real loopback socket must produce
 * byte-identical per-flow answers and identical conservation
 * ledgers.  This is what makes sim results trustworthy — a bug found
 * on the simulated wire is a bug on the real one.
 */
TEST(SimNetServerTest, DifferentialSimVsRealLoopback) {
    const uint64_t seed = bitc::test::seed_or(0xd1ff);
    BITC_SEED_TRACE(seed);
    constexpr size_t kFrames = 60;

    // Build the frame set once; both sides replay it.
    std::vector<std::array<uint8_t, conc::kPipeWireBytes>> wires;
    {
        Rng rng(seed);
        for (size_t i = 0; i < kFrames; ++i) {
            std::array<uint8_t, conc::kPipeWireBytes> image{};
            interop::generate_packet(
                rng, std::span<uint8_t>(image.data(), image.size()));
            wires.push_back(image);
        }
    }

    struct Answer {
        FrameType type;
        std::vector<uint8_t> payload;
        bool operator==(const Answer&) const = default;
    };

    // Side A: simulated transport under the deterministic scheduler.
    std::map<uint32_t, Answer> sim_answers;
    ServerStats sim_stats;
    {
        sim::Simulation sim(seed);
        sim.attach("driver");
        {
            SimTransportOptions topts;
            topts.seed = seed;
            topts.max_chunk = 5;
            topts.stutter_every = 3;
            auto transport = std::make_unique<SimTransport>(topts);
            SimTransport* wire = transport.get();
            options::ServeSpec spec;
            auto server = NetServer::create(
                spec, simtest::small_engine(), std::move(transport));
            ASSERT_TRUE(server.is_ok()) << server.status().to_string();
            ASSERT_TRUE(server.value()->start().is_ok());
            int h = wire->connect();
            for (uint32_t flow = 1; flow <= kFrames; ++flow) {
                ASSERT_TRUE(
                    wire->client_write(
                            h, encode_frame(simtest::data_frame(
                                   flow, wires[flow - 1])))
                        .is_ok());
            }
            wire->client_close_write(h);
            simtest::AnswerSink sink;
            while (sink.frames.size() < kFrames && !sink.poisoned) {
                auto bytes = wire->client_read_for(h, 20000);
                if (!bytes.is_ok()) break;
                sink.feed(bytes.value());
            }
            for (const Frame& f : sink.frames) {
                sim_answers[f.flow] = {f.type, f.payload};
            }
            server.value()->stop();
            sim_stats = server.value()->stats();
        }
        sim.detach();
    }

    // Side B: a real loopback socket, no simulation installed.
    std::map<uint32_t, Answer> real_answers;
    ServerStats real_stats;
    {
        options::ServeSpec spec;
        auto server =
            NetServer::create(spec, simtest::small_engine());
        ASSERT_TRUE(server.is_ok()) << server.status().to_string();
        ASSERT_TRUE(server.value()->start().is_ok());
        auto client =
            NetClient::connect("127.0.0.1", server.value()->port());
        ASSERT_TRUE(client.is_ok()) << client.status().to_string();
        for (uint32_t flow = 1; flow <= kFrames; ++flow) {
            ASSERT_TRUE(client.value()
                            .send_frame(simtest::data_frame(
                                flow, wires[flow - 1]))
                            .is_ok());
        }
        for (size_t i = 0; i < kFrames; ++i) {
            auto got = client.value().recv_frame(10000);
            ASSERT_TRUE(got.is_ok()) << got.status().to_string();
            real_answers[got.value().flow] = {got.value().type,
                                              got.value().payload};
        }
        client.value().close();
        server.value()->stop();
        real_stats = server.value()->stats();
    }

    // Byte-identical answers, flow by flow.
    ASSERT_EQ(sim_answers.size(), kFrames);
    ASSERT_EQ(real_answers.size(), kFrames);
    for (uint32_t flow = 1; flow <= kFrames; ++flow) {
        EXPECT_EQ(sim_answers[flow], real_answers[flow])
            << "answers diverge for flow " << flow;
    }

    // Identical conservation ledgers.
    EXPECT_TRUE(sim_stats.conserved()) << sim_stats.to_string();
    EXPECT_TRUE(real_stats.conserved()) << real_stats.to_string();
    EXPECT_EQ(sim_stats.generated, real_stats.generated);
    EXPECT_EQ(sim_stats.delivered, real_stats.delivered);
    EXPECT_EQ(sim_stats.dropped, real_stats.dropped);
    EXPECT_EQ(sim_stats.fault_dropped, real_stats.fault_dropped);
    EXPECT_EQ(sim_stats.shed, real_stats.shed);
}

/**
 * The write-stall teardown, migrated onto the virtual clock: the
 * loopback original needs SO_RCVBUF tricks and real stall budgets; a
 * simulated peer just stops reading, the bounded buffer fills, the
 * sink's stall wait expires virtually, and the connection is torn
 * down sick — in milliseconds of wall time.  (The real-socket smoke
 * stays in tests/net/loopback_test.cpp.)
 */
TEST(SimNetServerTest, StalledReaderTripsWriteStallTeardownVirtually) {
    const uint64_t seed = bitc::test::seed_or(0x57a1);
    BITC_SEED_TRACE(seed);
    ServerStats stats;
    bool closed = false;
    auto start = std::chrono::steady_clock::now();
    {
        sim::Simulation sim(seed);
        sim.attach("driver");
        {
            SimTransportOptions topts;
            topts.seed = seed;
            // Room for barely two answer frames: the write queue
            // backs up behind it almost immediately.
            topts.conn_buf_bytes =
                2 * (kFrameHeaderBytes + conc::kPipeWireBytes + 8);
            auto transport = std::make_unique<SimTransport>(topts);
            SimTransport* wire = transport.get();
            options::ServeSpec spec;
            spec.write_queue_frames = 4;
            spec.write_stall_ms = 50;
            auto server = NetServer::create(
                spec, simtest::small_engine(), std::move(transport));
            ASSERT_TRUE(server.is_ok()) << server.status().to_string();
            ASSERT_TRUE(server.value()->start().is_ok());
            int h = wire->connect();
            Rng rng(seed);
            for (uint32_t flow = 1; flow <= 40; ++flow) {
                std::array<uint8_t, conc::kPipeWireBytes> image{};
                interop::generate_packet(
                    rng,
                    std::span<uint8_t>(image.data(), image.size()));
                ASSERT_TRUE(wire->client_write(
                                    h, encode_frame(simtest::data_frame(
                                           flow, image)))
                                .is_ok());
                sim::yield_now();  // let the server chew and stall
            }
            // Never read a byte.  The stall budget expires on the
            // virtual clock and the server hangs up on us.
            for (int spin = 0; spin < 10'000; ++spin) {
                if (wire->server_closed(h)) break;
                sim::sleep_us(1'000);
            }
            closed = wire->server_closed(h);
            server.value()->stop();
            stats = server.value()->stats();
        }
        sim.detach();
    }
    std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start;
    EXPECT_TRUE(closed) << "stalled reader was never torn down";
    EXPECT_GE(stats.teardowns_sick, 1u) << stats.to_string();
    EXPECT_TRUE(stats.conserved()) << stats.to_string();
    EXPECT_LT(wall.count(), 5.0)
        << "the stall budget must burn virtual, not real, time";
}

}  // namespace
}  // namespace bitc::net
