/**
 * @file
 * Seeded schedule exploration over the full stack: determinism of a
 * faulted net storm, a large seed sweep (pipeline + supervisor + net)
 * that must hold the conservation invariants on every schedule with
 * zero real sleeps, and the historical parked-batch-overwrite bug
 * (fixed by the PR-6 drain_frames guard) reproduced on demand by a
 * seeded schedule and replayed exactly.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "net/server.hpp"
#include "net/sim_transport.hpp"
#include "tests/sim/sim_harness.hpp"
#include "tests/support/test_seed.hpp"

namespace bitc {
namespace {

TEST(SimStormTest, SameSeedReplaysTheNetStormExactly) {
    const uint64_t seed = bitc::test::seed_or(0x570b);
    BITC_SEED_TRACE(seed);
    simtest::StormOutcome a =
        simtest::run_net_storm(seed, 18, 10, "worker-crash:every=9");
    simtest::StormOutcome b =
        simtest::run_net_storm(seed, 18, 10, "worker-crash:every=9");
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;

    // Everything replays: the decision trace, the client-visible
    // answer count, and the whole stats table (ledger included).
    EXPECT_EQ(a.decision_log, b.decision_log);
    EXPECT_EQ(a.decision_count, b.decision_count);
    EXPECT_EQ(a.answers, b.answers);
    EXPECT_EQ(a.stats.to_string(), b.stats.to_string());
    EXPECT_TRUE(a.stats.conserved()) << a.stats.to_string();
}

/**
 * The headline sweep: a thousand seeds across three storm flavors —
 * supervised pipeline under worker crashes, clean echo over an
 * adversarial wire, and the two-client net storm with a dropped peer
 * — every schedule must keep its ledger exact.  All waits are
 * virtual; the wall-clock budget guards against real sleeps creeping
 * back into the stack.
 */
TEST(SimStormTest, ThousandSeedSweepHoldsInvariantsOnEverySchedule) {
    const uint64_t base = bitc::test::seed_or(1);
    constexpr int kSeeds = 1000;
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kSeeds; ++i) {
        const uint64_t seed = base + static_cast<uint64_t>(i);
        switch (i % 3) {
          case 0: {
            simtest::PipelineOutcome out = simtest::run_pipeline_storm(
                seed, 48, "worker-crash:every=7");
            ASSERT_TRUE(out.ok)
                << "seed " << seed << ": " << out.error;
            ASSERT_TRUE(out.report.conserved())
                << "seed " << seed << " lost packets:\n"
                << out.report.to_string();
            break;
          }
          case 1: {
            simtest::EchoOutcome out = simtest::run_net_echo(seed, 6);
            ASSERT_TRUE(out.ok)
                << "seed " << seed << ": " << out.error;
            ASSERT_TRUE(out.all_matched)
                << "seed " << seed
                << " diverged from the reference chain ("
                << out.answers << "/6 answers)";
            ASSERT_TRUE(out.stats.conserved())
                << "seed " << seed << ":\n" << out.stats.to_string();
            break;
          }
          default: {
            simtest::StormOutcome out = simtest::run_net_storm(
                seed, 8, 4, "worker-crash:every=11");
            ASSERT_TRUE(out.ok)
                << "seed " << seed << ": " << out.error;
            ASSERT_TRUE(out.stats.conserved())
                << "seed " << seed << ":\n" << out.stats.to_string();
            break;
          }
        }
    }
    std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start;
    RecordProperty("sweep_seconds",
                   std::to_string(wall.count()));
    EXPECT_LT(wall.count(), 60.0)
        << kSeeds << " virtual-time storms must beat one minute";
}

// --- the historical schedule bug, on demand ------------------------------

struct ParkedOutcome {
    bool ok = false;
    std::string error;
    uint64_t answers = 0;
    net::ServerStats stats;
    std::string decision_log;
};

constexpr size_t kParkedFrames = 16;

/**
 * The PR-6 scenario: a one-batch queue with a slow (virtual) classify
 * lookup forces repeated engine parking while the client has already
 * half-closed — a draining connection never pauses, so with the
 * guard reverted (bug=true) drain_frames keeps decoding its backlog
 * and a second backpressured submit overwrites the parked batch.
 * The overwritten packet's originator never hears its answer.
 */
ParkedOutcome
run_parked(uint64_t seed, bool bug)
{
    ParkedOutcome out;
    sim::Simulation sim(seed);
    sim.attach("driver");
    {
        net::SimTransportOptions topts;
        topts.seed = seed;
        auto transport =
            std::make_unique<net::SimTransport>(topts);
        net::SimTransport* wire = transport.get();

        options::ServeSpec spec;
        // A tiny write queue makes answer backpressure pause the
        // connection mid-drain, stranding decoded frames in the
        // decoder.  When the flush unpauses it, the pending EOF is
        // read with that backlog still buffered — the draining+
        // backlog state where the PR-6 guard is the only protection
        // against a second backpressured submit overwriting the
        // parked batch.  The stall threshold stays generous so the
        // slow-reader watchdog never tears the connection down.
        spec.write_queue_frames = 2;
        spec.write_stall_ms = 60'000;
        conc::PipelineConfig engine = simtest::small_engine();
        engine.queue_capacity = 1;   // park on the second batch
        engine.batch_packets = 1;
        engine.lookup_latency_us = 500;  // classify stalls (virtually)

        auto server = net::NetServer::create(spec, engine,
                                             std::move(transport));
        Status started = Status::ok();
        if (!server.is_ok()) {
            started = server.status();
        } else {
            net::NetServerTestHooks hooks;
            hooks.parked_overwrite_bug = bug;
            server.value()->set_test_hooks(hooks);
            started = server.value()->start();
        }
        if (!started.is_ok()) {
            out.error = started.to_string();
        } else {
            int h = wire->connect();
            Rng rng(0xba7c);  // same frames for every seed/mode
            for (uint32_t flow = 1; flow <= kParkedFrames; ++flow) {
                std::array<uint8_t, conc::kPipeWireBytes> image{};
                interop::generate_packet(
                    rng,
                    std::span<uint8_t>(image.data(), image.size()));
                wire->client_write(
                    h, net::encode_frame(
                           simtest::data_frame(flow, image)));
            }
            wire->client_close_write(h);  // drain while batches park

            simtest::AnswerSink sink;
            while (!sink.poisoned) {
                auto bytes = wire->client_read_for(h, 30000);
                if (!bytes.is_ok()) break;
                sink.feed(bytes.value());
            }
            out.answers = sink.frames.size();
            server.value()->stop();
            out.stats = server.value()->stats();
            out.ok = true;
        }
    }
    out.decision_log = sim.decision_log();
    sim.detach();
    return out;
}

TEST(SimRegressionTest, SeededScheduleReproducesParkedBatchOverwrite) {
    // Sweep a small pinned seed range with the guard reverted: at
    // least one schedule must demonstrate the historical bug as a
    // client-observable lost answer.  (The ledger stays conserved —
    // the overwritten batch was never submitted — which is exactly
    // why only schedule-aware testing ever catches this class.)
    uint64_t repro_seed = 0;
    bool found = false;
    for (uint64_t seed = 1; seed <= 48 && !found; ++seed) {
        ParkedOutcome out = run_parked(seed, /*bug=*/true);
        ASSERT_TRUE(out.ok) << "seed " << seed << ": " << out.error;
        EXPECT_TRUE(out.stats.conserved())
            << "seed " << seed << ":\n" << out.stats.to_string();
        EXPECT_LE(out.answers, kParkedFrames);
        if (out.answers < kParkedFrames) {
            found = true;
            repro_seed = seed;
        }
    }
    ASSERT_TRUE(found)
        << "no seed in 1..48 reproduced the parked-batch overwrite";
    RecordProperty("parked_overwrite_repro_seed",
                   std::to_string(repro_seed));

    // The failing seed replays exactly: same lost-answer count, same
    // decision trace — a reported failure is a debuggable failure.
    ParkedOutcome a = run_parked(repro_seed, /*bug=*/true);
    ParkedOutcome b = run_parked(repro_seed, /*bug=*/true);
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_LT(a.answers, kParkedFrames);
    EXPECT_EQ(a.answers, b.answers);
    EXPECT_EQ(a.decision_log, b.decision_log);

    // And the PR-6 guard fixes that exact schedule: same seed, hook
    // off, every frame answered before the clean close.
    ParkedOutcome fixed = run_parked(repro_seed, /*bug=*/false);
    ASSERT_TRUE(fixed.ok) << fixed.error;
    EXPECT_EQ(fixed.answers, kParkedFrames)
        << "the guard must answer every frame on the bug's schedule";
    EXPECT_TRUE(fixed.stats.conserved()) << fixed.stats.to_string();
}

}  // namespace
}  // namespace bitc
