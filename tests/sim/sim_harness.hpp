/**
 * @file
 * Shared scenario runners for the deterministic-simulation suites.
 *
 * Each runner owns one complete Simulation lifecycle: install with a
 * seed, attach the driver, drive the stack (pipeline run, net echo,
 * net storm), capture the decision trace *before* detaching, and
 * return a plain outcome struct the tests assert on.  Keeping the
 * runners assertion-free lets the seed-sweep tests call them a
 * thousand times without gtest overhead, and lets the determinism
 * tests compare two outcomes field by field.
 */
#ifndef BITC_TESTS_SIM_SIM_HARNESS_HPP
#define BITC_TESTS_SIM_SIM_HARNESS_HPP

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "concurrency/pipeline.hpp"
#include "interop/packet_stages.hpp"
#include "net/server.hpp"
#include "net/sim_transport.hpp"
#include "net/wire.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"
#include "support/sim.hpp"

namespace bitc::simtest {

/** What the in-process stage chain would answer for one wire image. */
struct Expected {
    bool drop = false;
    std::array<uint8_t, conc::kPipeWireBytes> wire{};
    int64_t bucket = -1;
};

inline Expected
reference_process(const std::array<uint8_t, conc::kPipeWireBytes>& in)
{
    Expected out;
    out.wire = in;
    if (interop::legacy_validate(out.wire) == 0) {
        out.drop = true;
        return out;
    }
    interop::legacy_decrement_ttl(out.wire);
    interop::legacy_checksum(out.wire);
    out.bucket = interop::legacy_classify(out.wire);
    return out;
}

inline net::Frame
data_frame(uint32_t flow,
           const std::array<uint8_t, conc::kPipeWireBytes>& wire)
{
    net::Frame f;
    f.type = net::FrameType::kData;
    f.flow = flow;
    f.payload.assign(wire.begin(), wire.end());
    return f;
}

/** kResponse payload = processed wire image + big-endian bucket. */
inline int64_t
bucket_of(const net::Frame& response)
{
    uint64_t bucket = 0;
    for (size_t i = 0; i < 8; ++i) {
        bucket = (bucket << 8) |
                 response.payload[conc::kPipeWireBytes + i];
    }
    return static_cast<int64_t>(bucket);
}

inline conc::PipelineConfig
small_engine()
{
    conc::PipelineConfig config;
    config.workers = {1, 1, 1, 1};
    config.queue_capacity = 8;
    config.batch_packets = 4;
    config.seed = 7;
    return config;
}

/** Fast supervision so storms restart and trip breakers virtually. */
inline conc::SupervisorConfig
fast_supervision()
{
    conc::SupervisorConfig sup;
    sup.max_restarts = 2;
    sup.restart_window_ms = 50;
    sup.backoff_ms = 1;
    sup.backoff_cap_ms = 4;
    return sup;
}

/** Accumulates decoded answer frames from raw client_read bytes. */
struct AnswerSink {
    net::FrameDecoder decoder;
    std::vector<net::Frame> frames;
    bool poisoned = false;

    void feed(const std::vector<uint8_t>& bytes) {
        if (poisoned) return;
        decoder.feed(bytes);
        while (true) {
            auto got = decoder.next();
            if (!got.is_ok()) {
                poisoned = true;
                return;
            }
            if (!got.value().has_value()) return;
            frames.push_back(std::move(*got.value()));
        }
    }
};

// --- pipeline + supervisor storm -----------------------------------------

struct PipelineOutcome {
    bool ok = false;           ///< create()/run() both succeeded.
    std::string error;         ///< Status text when !ok.
    conc::PipelineReport report;
    std::string decision_log;
    uint64_t decision_count = 0;
};

/**
 * One supervised pipeline run under simulation: a seeded schedule, a
 * virtual-time lookup stall in classify, and (optionally) a fault
 * plan crashing workers so the supervisor's restart/backoff/breaker
 * machinery runs on the virtual clock.
 */
inline PipelineOutcome
run_pipeline_storm(uint64_t seed, size_t packets,
                   const char* fault_plan)
{
    PipelineOutcome out;
    sim::Simulation sim(seed);
    sim.attach("driver");
    {
        std::optional<fault::ScopedPlan> plan;
        if (fault_plan != nullptr) plan.emplace(fault_plan);

        conc::PipelineConfig config = small_engine();
        config.workers = {2, 1, 1, 1};
        config.queue_capacity = 4;
        config.batch_packets = 4;
        config.lookup_latency_us = 20;  // virtual stall in classify
        config.supervision = fast_supervision();

        auto pipeline = conc::PacketPipeline::create(config);
        if (!pipeline.is_ok()) {
            out.error = pipeline.status().to_string();
        } else {
            auto report = pipeline.value()->run(packets);
            if (!report.is_ok()) {
                out.error = report.status().to_string();
            } else {
                out.ok = true;
                out.report = report.value();
            }
        }
    }
    out.decision_log = sim.decision_log();
    out.decision_count = sim.decision_count();
    sim.detach();
    return out;
}

// --- net echo (clean traffic over an adversarial transport) --------------

struct EchoOutcome {
    bool ok = false;       ///< Server came up and served.
    std::string error;
    bool all_matched = false;  ///< Every answer byte-matched reference.
    uint64_t answers = 0;
    net::ServerStats stats;
    std::string decision_log;
    uint64_t decision_count = 0;
};

/**
 * One client, @p frames well-formed data frames over a SimTransport
 * with seeded chunking, stutter and readiness reorder.  Every frame
 * must come back as the reference kResponse/kDrop, byte-identical.
 */
inline EchoOutcome
run_net_echo(uint64_t seed, size_t frames)
{
    EchoOutcome out;
    sim::Simulation sim(seed);
    sim.attach("driver");
    {
        net::SimTransportOptions topts;
        topts.seed = seed;
        topts.max_chunk = 5;
        topts.stutter_every = 3;
        topts.reorder = true;
        auto transport =
            std::make_unique<net::SimTransport>(topts);
        net::SimTransport* wire = transport.get();

        options::ServeSpec spec;
        auto server = net::NetServer::create(spec, small_engine(),
                                             std::move(transport));
        Status started = server.is_ok() ? server.value()->start()
                                        : server.status();
        if (!started.is_ok()) {
            out.error = started.to_string();
        } else {
            int h = wire->connect();
            Rng rng(0xec40 ^ seed);
            std::map<uint32_t, Expected> expected;
            for (uint32_t flow = 1; flow <= frames; ++flow) {
                std::array<uint8_t, conc::kPipeWireBytes> image{};
                interop::generate_packet(
                    rng,
                    std::span<uint8_t>(image.data(), image.size()));
                expected[flow] = reference_process(image);
                wire->client_write(
                    h, net::encode_frame(data_frame(flow, image)));
                if (flow % 3 == 0) sim::yield_now();
            }
            wire->client_close_write(h);

            AnswerSink sink;
            while (sink.frames.size() < frames && !sink.poisoned) {
                auto bytes = wire->client_read_for(h, 20000);
                if (!bytes.is_ok()) break;
                sink.feed(bytes.value());
            }
            out.answers = sink.frames.size();
            out.all_matched = out.answers == frames;
            for (const net::Frame& f : sink.frames) {
                auto want = expected.find(f.flow);
                if (want == expected.end()) {
                    out.all_matched = false;
                    break;
                }
                if (want->second.drop) {
                    if (f.type != net::FrameType::kDrop) {
                        out.all_matched = false;
                        break;
                    }
                } else if (f.type != net::FrameType::kResponse ||
                           f.payload.size() !=
                               conc::kPipeWireBytes + 8 ||
                           !std::equal(want->second.wire.begin(),
                                       want->second.wire.end(),
                                       f.payload.begin()) ||
                           bucket_of(f) != want->second.bucket) {
                    out.all_matched = false;
                    break;
                }
                expected.erase(want);  // answered exactly once
            }
            server.value()->stop();
            out.stats = server.value()->stats();
            out.ok = true;
        }
    }
    out.decision_log = sim.decision_log();
    out.decision_count = sim.decision_count();
    sim.detach();
    return out;
}

// --- net storm (faults, a dropped peer, a draining peer) -----------------

struct StormOutcome {
    bool ok = false;
    std::string error;
    uint64_t answers = 0;  ///< Frames the draining client got back.
    net::ServerStats stats;
    std::string decision_log;
    uint64_t decision_count = 0;
};

/**
 * The full stack under fire: two clients over an adversarial
 * SimTransport, a fault plan (worker crashes and/or socket-io
 * faults), one peer hard-dropping mid-stream, the other half-closing
 * and draining.  The invariant that must survive any seed is the
 * conservation ledger; the determinism tests additionally pin the
 * whole decision trace.
 */
inline StormOutcome
run_net_storm(uint64_t seed, size_t frames_a, size_t frames_b,
              const char* fault_plan)
{
    StormOutcome out;
    sim::Simulation sim(seed);
    sim.attach("driver");
    {
        std::optional<fault::ScopedPlan> plan;
        if (fault_plan != nullptr) plan.emplace(fault_plan);

        net::SimTransportOptions topts;
        topts.seed = seed;
        topts.max_chunk = 7;
        topts.stutter_every = 5;
        topts.reorder = true;
        auto transport =
            std::make_unique<net::SimTransport>(topts);
        net::SimTransport* wire = transport.get();

        options::ServeSpec spec;
        spec.write_queue_frames = 8;
        spec.write_stall_ms = 100;

        conc::PipelineConfig engine = small_engine();
        engine.queue_capacity = 2;
        engine.batch_packets = 2;
        engine.supervision = fast_supervision();

        auto server = net::NetServer::create(spec, engine,
                                             std::move(transport));
        Status started = server.is_ok() ? server.value()->start()
                                        : server.status();
        if (!started.is_ok()) {
            out.error = started.to_string();
        } else {
            int a = wire->connect();
            int b = wire->connect();
            Rng rng(0x5117 ^ seed);
            for (uint32_t flow = 1; flow <= frames_a; ++flow) {
                std::array<uint8_t, conc::kPipeWireBytes> image{};
                interop::generate_packet(
                    rng,
                    std::span<uint8_t>(image.data(), image.size()));
                wire->client_write(
                    a, net::encode_frame(data_frame(flow, image)));
                if (flow % 3 == 0) sim::yield_now();
            }
            for (uint32_t flow = 1; flow <= frames_b; ++flow) {
                std::array<uint8_t, conc::kPipeWireBytes> image{};
                interop::generate_packet(
                    rng,
                    std::span<uint8_t>(image.data(), image.size()));
                wire->client_write(
                    b, net::encode_frame(data_frame(flow, image)));
                if (flow % 2 == 0) sim::yield_now();
            }
            wire->client_drop(b);       // peer reset mid-stream
            wire->client_close_write(a);  // drain to completion

            AnswerSink sink;
            while (!sink.poisoned) {
                auto bytes = wire->client_read_for(a, 20000);
                if (!bytes.is_ok()) break;
                sink.feed(bytes.value());
            }
            out.answers = sink.frames.size();
            server.value()->stop();
            out.stats = server.value()->stats();
            out.ok = true;
        }
    }
    out.decision_log = sim.decision_log();
    out.decision_count = sim.decision_count();
    sim.detach();
    return out;
}

}  // namespace bitc::simtest

#endif  // BITC_TESTS_SIM_SIM_HARNESS_HPP
