/**
 * @file
 * Deterministic-simulation core tests: the virtual clock, the seeded
 * cooperative scheduler, channel deadline waits with zero real
 * sleeps, supervisor backoff on virtual time, and the headline
 * determinism property — the same seed replays the same pipeline run
 * decision for decision, ledger for ledger.
 */
#include "support/sim.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "concurrency/channel.hpp"
#include "concurrency/pipeline.hpp"
#include "concurrency/supervisor.hpp"
#include "support/stats.hpp"
#include "tests/sim/sim_harness.hpp"
#include "tests/support/test_seed.hpp"

namespace bitc {
namespace {

using namespace std::chrono_literals;

/** Real wall-clock seconds spent in @p fn (the sim must beat it). */
double
wall_seconds(const std::function<void()>& fn)
{
    auto start = std::chrono::steady_clock::now();
    fn();
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count();
}

TEST(SimClockTest, VirtualSleepAdvancesTheClockWithoutRealTime) {
    uint64_t virtual_slept = 0;
    double wall = wall_seconds([&] {
        sim::Simulation sim(bitc::test::seed_or(1));
        sim.attach("driver");
        uint64_t t0 = now_ns();
        sim::sleep_us(5'000'000);  // five *virtual* seconds
        virtual_slept = now_ns() - t0;
        sim.detach();
    });
    EXPECT_GE(virtual_slept, 5'000'000'000ull);
    EXPECT_LT(wall, 2.0) << "virtual sleep must not sleep for real";
}

TEST(SimClockTest, NowNsRedirectsToTheVirtualClockWhileInstalled) {
    uint64_t before = now_ns();
    {
        sim::Simulation sim(1);
        sim.attach("driver");
        EXPECT_EQ(now_ns(), sim.now());
        sim::sleep_us(250);
        EXPECT_EQ(now_ns(), sim.now());
        sim.detach();
    }
    // Uninstalled again: back on the steady clock, which kept going.
    EXPECT_GE(now_ns(), before);
}

TEST(SimChannelTest, TimedWaitsExpireOnTheVirtualClock) {
    double wall = wall_seconds([&] {
        sim::Simulation sim(bitc::test::seed_or(2));
        sim.attach("driver");
        conc::Channel<int> ch(1);

        // Empty channel: a 750ms recv wait must expire virtually.
        uint64_t t0 = now_ns();
        auto got = ch.recv_for(750ms);
        ASSERT_FALSE(got.is_ok());
        EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
        EXPECT_GE(now_ns() - t0, 750'000'000ull)
            << "the deadline fired before the virtual clock reached it";

        // Full channel: a 500ms send wait must expire the same way.
        ASSERT_TRUE(ch.try_send(1).is_ok());
        t0 = now_ns();
        Status st = ch.try_send_for(2, 500ms);
        ASSERT_FALSE(st.is_ok());
        EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
        EXPECT_GE(now_ns() - t0, 500'000'000ull);
        sim.detach();
    });
    EXPECT_LT(wall, 2.0) << "deadline waits must not block real time";
}

TEST(SimChannelTest, AlreadyExpiredDeadlineFailsWithoutAdvancing) {
    sim::Simulation sim(bitc::test::seed_or(3));
    sim.attach("driver");
    conc::Channel<int> ch(1);
    uint64_t t0 = now_ns();
    auto past = std::chrono::steady_clock::time_point(
        std::chrono::nanoseconds(t0 > 0 ? t0 - 1 : 0));
    auto got = ch.recv_until(past);
    ASSERT_FALSE(got.is_ok());
    EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(now_ns(), t0)
        << "an expired deadline must not advance the clock";
    sim.detach();
}

TEST(SimSchedulerTest, HandOffAcrossSimThreadsDeliversAndTraces) {
    sim::Simulation sim(bitc::test::seed_or(4));
    sim.attach("driver");
    conc::Channel<int> ch(1);
    int got = 0;
    std::thread consumer = sim.spawn("consumer", [&] {
        auto r = ch.recv();
        if (r.is_ok()) got = r.value();
    });
    ASSERT_TRUE(ch.send(41).is_ok());
    sim::join_thread(consumer);
    EXPECT_EQ(got, 41);

    // The trace recorded the whole exchange: registrations, token
    // switches, at least one park/wake pair, and the exits.
    std::string log = sim.decision_log();
    EXPECT_GT(sim.decision_count(), 0u);
    EXPECT_NE(log.find("spawn"), std::string::npos) << log;
    EXPECT_NE(log.find("switch"), std::string::npos) << log;
    EXPECT_NE(log.find("exit"), std::string::npos) << log;
    sim.detach();
}

TEST(SimSchedulerTest, SupervisorBackoffRunsOnTheVirtualClock) {
    conc::SupervisorConfig config;
    config.max_restarts = 3;
    config.restart_window_ms = 600'000;  // crashes never age out here
    config.backoff_ms = 60'000;          // would hang a real-time test
    config.backoff_cap_ms = 240'000;

    uint64_t virtual_elapsed = 0;
    int runs = 0;
    double wall = wall_seconds([&] {
        sim::Simulation sim(bitc::test::seed_or(5));
        sim.attach("driver");
        uint64_t t0 = now_ns();
        conc::Supervisor sup(config);
        conc::WorkerHooks hooks;
        hooks.body = [&](conc::WorkerContext& ctx) {
            if (++runs < 3) return conc::WorkerExit::kCrash;
            ctx.note_progress();
            return conc::WorkerExit::kDone;
        };
        sup.supervise(0, hooks);
        virtual_elapsed = now_ns() - t0;
        EXPECT_EQ(sup.crashes(), 2u);
        EXPECT_EQ(sup.restarts(), 2u);
        sim.detach();
    });
    EXPECT_EQ(runs, 3);
    // Two backoff sleeps, 60s then 120s, both virtual.
    EXPECT_GE(virtual_elapsed, 180'000'000'000ull);
    EXPECT_LT(wall, 5.0)
        << "backoff must sleep on the virtual clock, not the wall";
}

TEST(SimDeterminismTest, SameSeedReplaysThePipelineRunExactly) {
    const uint64_t seed = bitc::test::seed_or(0xd5ee);
    BITC_SEED_TRACE(seed);

    simtest::PipelineOutcome a =
        simtest::run_pipeline_storm(seed, 160, nullptr);
    simtest::PipelineOutcome b =
        simtest::run_pipeline_storm(seed, 160, nullptr);
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;

    // The whole decision trace is bit-identical, not just the totals.
    EXPECT_EQ(a.decision_count, b.decision_count);
    EXPECT_EQ(a.decision_log, b.decision_log);
    EXPECT_GT(a.decision_count, 100u)
        << "a multi-worker run must route through the scheduler";

    // And so is everything the run produced.
    EXPECT_TRUE(a.report.conserved());
    EXPECT_EQ(a.report.generated, b.report.generated);
    EXPECT_EQ(a.report.delivered, b.report.delivered);
    EXPECT_EQ(a.report.dropped, b.report.dropped);
    EXPECT_EQ(a.report.fault_dropped, b.report.fault_dropped);
    EXPECT_EQ(a.report.shed, b.report.shed);
    EXPECT_EQ(a.report.route_checksum, b.report.route_checksum);
    EXPECT_EQ(a.report.header_checksum_sum,
              b.report.header_checksum_sum);
    EXPECT_EQ(a.report.flows_in_order, b.report.flows_in_order);
}

TEST(SimDeterminismTest, SameSeedReplaysASupervisedStormExactly) {
    const uint64_t seed = bitc::test::seed_or(0x570a);
    BITC_SEED_TRACE(seed);

    simtest::PipelineOutcome a =
        simtest::run_pipeline_storm(seed, 96, "worker-crash:every=9");
    simtest::PipelineOutcome b =
        simtest::run_pipeline_storm(seed, 96, "worker-crash:every=9");
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    EXPECT_EQ(a.decision_log, b.decision_log);
    EXPECT_EQ(a.decision_count, b.decision_count);
    EXPECT_TRUE(a.report.conserved());
    EXPECT_EQ(a.report.worker_crashes, b.report.worker_crashes);
    EXPECT_EQ(a.report.worker_restarts, b.report.worker_restarts);
    EXPECT_EQ(a.report.breaker_opens, b.report.breaker_opens);
    EXPECT_EQ(a.report.fault_dropped, b.report.fault_dropped);
}

TEST(SimDeterminismTest, DifferentSeedsExploreDifferentSchedules) {
    // Six seeds over a contended scenario must produce more than one
    // distinct decision trace — otherwise the "seeded exploration"
    // half of the harness is a no-op.  Deterministic per seed, so
    // this either always passes or always fails.
    std::set<std::string> distinct;
    for (uint64_t seed = 1; seed <= 6; ++seed) {
        simtest::PipelineOutcome out =
            simtest::run_pipeline_storm(seed, 64, nullptr);
        ASSERT_TRUE(out.ok) << "seed " << seed << ": " << out.error;
        EXPECT_TRUE(out.report.conserved()) << "seed " << seed;
        distinct.insert(out.decision_log);
    }
    EXPECT_GT(distinct.size(), 1u);
}

}  // namespace
}  // namespace bitc
