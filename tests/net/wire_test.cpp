/**
 * @file
 * Wire-protocol codec tests: framing round-trips, every documented
 * protocol-error class (bad magic, version mismatch, oversize length,
 * bad type), incremental delivery down to one byte at a time, and a
 * deterministic fuzz loop over the decoder (replay any failure with
 * BITC_TEST_SEED).
 */
#include "net/wire.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <gtest/gtest.h>

#include "support/rng.hpp"
#include "tests/support/test_seed.hpp"

namespace bitc::net {
namespace {

Frame
sample_frame()
{
    Frame f;
    f.type = FrameType::kData;
    f.flow = 0xdeadbeef;
    f.deadline_ms = 250;
    f.payload = {1, 2, 3, 4, 5};
    return f;
}

/** Feeds all of @p bytes and expects exactly one complete frame. */
Result<std::optional<Frame>>
decode_one(const std::vector<uint8_t>& bytes)
{
    FrameDecoder decoder;
    decoder.feed(bytes);
    return decoder.next();
}

TEST(WireFormatTest, HeaderLayoutIsPinned) {
    // The repr layout must stay 16 bytes with the documented offsets;
    // any drift is a protocol version bump.
    const repr::RecordSpec& spec = frame_header_spec();
    auto layout = repr::compute_layout(spec);
    ASSERT_TRUE(layout.is_ok()) << layout.status().to_string();
    EXPECT_EQ(layout.value().byte_size(), kFrameHeaderBytes);
}

TEST(WireFormatTest, RoundTripsAllFields) {
    std::vector<uint8_t> bytes = encode_frame(sample_frame());
    EXPECT_EQ(bytes.size(), kFrameHeaderBytes + 5);
    auto got = decode_one(bytes);
    ASSERT_TRUE(got.is_ok()) << got.status().to_string();
    ASSERT_TRUE(got.value().has_value());
    const Frame& f = *got.value();
    EXPECT_EQ(f.type, FrameType::kData);
    EXPECT_EQ(f.flow, 0xdeadbeefu);
    EXPECT_EQ(f.deadline_ms, 250u);
    EXPECT_EQ(f.payload, (std::vector<uint8_t>{1, 2, 3, 4, 5}));
}

TEST(WireFormatTest, RoundTripsZeroLengthPayload) {
    Frame f;
    f.type = FrameType::kError;
    f.flow = 7;
    std::vector<uint8_t> bytes = encode_frame(f);
    EXPECT_EQ(bytes.size(), kFrameHeaderBytes);
    auto got = decode_one(bytes);
    ASSERT_TRUE(got.is_ok()) << got.status().to_string();
    ASSERT_TRUE(got.value().has_value());
    EXPECT_EQ(got.value()->type, FrameType::kError);
    EXPECT_TRUE(got.value()->payload.empty());
}

TEST(WireFormatTest, TruncatedHeaderIsIncompleteNotError) {
    std::vector<uint8_t> bytes = encode_frame(sample_frame());
    for (size_t cut = 0; cut < kFrameHeaderBytes; ++cut) {
        FrameDecoder decoder;
        decoder.feed(std::span<const uint8_t>(bytes.data(), cut));
        auto got = decoder.next();
        ASSERT_TRUE(got.is_ok()) << "cut=" << cut;
        EXPECT_FALSE(got.value().has_value()) << "cut=" << cut;
        EXPECT_EQ(decoder.buffered(), cut);
    }
}

TEST(WireFormatTest, TruncatedPayloadIsIncompleteNotError) {
    std::vector<uint8_t> bytes = encode_frame(sample_frame());
    FrameDecoder decoder;
    decoder.feed(
        std::span<const uint8_t>(bytes.data(), bytes.size() - 1));
    auto got = decoder.next();
    ASSERT_TRUE(got.is_ok());
    EXPECT_FALSE(got.value().has_value());
    // The last byte completes it.
    decoder.feed(
        std::span<const uint8_t>(bytes.data() + bytes.size() - 1, 1));
    got = decoder.next();
    ASSERT_TRUE(got.is_ok());
    ASSERT_TRUE(got.value().has_value());
    EXPECT_EQ(got.value()->payload.size(), 5u);
    EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(WireFormatTest, ByteAtATimeDeliveryDecodesBackToBack) {
    std::vector<uint8_t> bytes = encode_frame(sample_frame());
    Frame second = sample_frame();
    second.flow = 42;
    second.payload.clear();
    encode_frame(second, bytes);

    FrameDecoder decoder;
    size_t decoded = 0;
    for (uint8_t byte : bytes) {
        decoder.feed(std::span<const uint8_t>(&byte, 1));
        while (true) {
            auto got = decoder.next();
            ASSERT_TRUE(got.is_ok()) << got.status().to_string();
            if (!got.value().has_value()) break;
            ++decoded;
            if (decoded == 2) EXPECT_EQ(got.value()->flow, 42u);
        }
    }
    EXPECT_EQ(decoded, 2u);
}

TEST(WireFormatTest, BadMagicPoisonsAsInvalidArgument) {
    std::vector<uint8_t> bytes = encode_frame(sample_frame());
    bytes[0] ^= 0xff;
    auto got = decode_one(bytes);
    ASSERT_FALSE(got.is_ok());
    EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireFormatTest, VersionMismatchPoisonsAsFailedPrecondition) {
    std::vector<uint8_t> bytes = encode_frame(sample_frame());
    bytes[2] = kFrameVersion + 1;
    auto got = decode_one(bytes);
    ASSERT_FALSE(got.is_ok());
    EXPECT_EQ(got.status().code(), StatusCode::kFailedPrecondition);
}

TEST(WireFormatTest, UnknownTypePoisonsAsInvalidArgument) {
    std::vector<uint8_t> bytes = encode_frame(sample_frame());
    bytes[3] = 99;
    auto got = decode_one(bytes);
    ASSERT_FALSE(got.is_ok());
    EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireFormatTest, OversizeLengthPoisonsAsOutOfRange) {
    // Hand-build a header whose length field exceeds the cap: the
    // decoder must refuse it *before* waiting for that many bytes.
    Frame f = sample_frame();
    f.payload.clear();
    std::vector<uint8_t> bytes = encode_frame(f);
    uint32_t huge = kMaxFramePayload + 1;
    std::memcpy(bytes.data() + 12, &huge, sizeof(huge));
    auto got = decode_one(bytes);
    ASSERT_FALSE(got.is_ok());
    EXPECT_EQ(got.status().code(), StatusCode::kOutOfRange);
}

TEST(WireFormatTest, MaxPayloadLengthIsAccepted) {
    Frame f = sample_frame();
    f.payload.assign(kMaxFramePayload, 0xab);
    std::vector<uint8_t> bytes = encode_frame(f);
    auto got = decode_one(bytes);
    ASSERT_TRUE(got.is_ok()) << got.status().to_string();
    ASSERT_TRUE(got.value().has_value());
    EXPECT_EQ(got.value()->payload.size(), kMaxFramePayload);
}

TEST(WireFormatTest, PoisonIsSticky) {
    std::vector<uint8_t> bad = encode_frame(sample_frame());
    bad[0] ^= 0xff;
    FrameDecoder decoder;
    decoder.feed(bad);
    ASSERT_FALSE(decoder.next().is_ok());
    // Feeding a perfectly good frame afterwards must not resurrect
    // the stream: resynchronisation on a binary protocol is a lie.
    decoder.feed(encode_frame(sample_frame()));
    auto still = decoder.next();
    ASSERT_FALSE(still.is_ok());
    EXPECT_EQ(still.status().code(), StatusCode::kInvalidArgument);
}

/**
 * Deterministic frame fuzz: random well-formed frames interleaved at
 * random split points must all decode intact; random corruption must
 * never produce anything but a clean error or an incomplete signal
 * (no crashes, no garbage frames).
 */
TEST(WireFuzzTest, RandomFramesSurviveRandomChunking) {
    uint64_t base_seed = bitc::test::seed_or(0xb17c);
    BITC_SEED_TRACE(base_seed);
    Rng rng(base_seed);
    for (int round = 0; round < 50; ++round) {
        std::vector<Frame> sent;
        std::vector<uint8_t> stream;
        size_t frames = 1 + rng.next() % 8;
        for (size_t i = 0; i < frames; ++i) {
            Frame f;
            f.type = static_cast<FrameType>(1 + rng.next() % 4);
            f.flow = static_cast<uint32_t>(rng.next());
            f.deadline_ms = static_cast<uint32_t>(rng.next() % 1000);
            f.payload.resize(rng.next() % 300);
            for (uint8_t& b : f.payload) {
                b = static_cast<uint8_t>(rng.next());
            }
            sent.push_back(f);
            encode_frame(f, stream);
        }
        FrameDecoder decoder;
        size_t decoded = 0;
        size_t offset = 0;
        while (offset < stream.size()) {
            size_t chunk = 1 + rng.next() % 64;
            chunk = std::min(chunk, stream.size() - offset);
            decoder.feed(std::span<const uint8_t>(
                stream.data() + offset, chunk));
            offset += chunk;
            while (true) {
                auto got = decoder.next();
                ASSERT_TRUE(got.is_ok())
                    << "round " << round << ": "
                    << got.status().to_string();
                if (!got.value().has_value()) break;
                ASSERT_LT(decoded, sent.size());
                EXPECT_EQ(got.value()->type, sent[decoded].type);
                EXPECT_EQ(got.value()->flow, sent[decoded].flow);
                EXPECT_EQ(got.value()->payload, sent[decoded].payload);
                ++decoded;
            }
        }
        EXPECT_EQ(decoded, sent.size()) << "round " << round;
    }
}

TEST(WireFuzzTest, RandomCorruptionNeverYieldsGarbageFrames) {
    uint64_t base_seed = bitc::test::seed_or(0xb17c);
    BITC_SEED_TRACE(base_seed);
    Rng rng(base_seed ^ 0x5eed);
    for (int round = 0; round < 200; ++round) {
        Frame f = sample_frame();
        f.payload.resize(rng.next() % 64);
        std::vector<uint8_t> bytes = encode_frame(f);
        // Flip one random byte anywhere in the frame.
        size_t victim = rng.next() % bytes.size();
        bytes[victim] ^= static_cast<uint8_t>(1 + rng.next() % 255);
        FrameDecoder decoder;
        decoder.feed(bytes);
        while (true) {
            auto got = decoder.next();
            if (!got.is_ok()) break;  // clean protocol error: fine
            if (!got.value().has_value()) break;  // incomplete: fine
            // A frame that still decoded must carry a sane header:
            // corruption hit the payload (or a don't-care bit).
            ASSERT_LE(got.value()->payload.size(), kMaxFramePayload)
                << "round " << round << " victim byte " << victim;
        }
    }
}

}  // namespace
}  // namespace bitc::net
