/**
 * @file
 * Vectored batch-write tests for the Transport seam.
 *
 * SimTransport::write_batch must apply write()'s exact adversarial
 * semantics — one fault consult, one stutter decision, one seeded
 * chunk — across the *flattened* iovec stream, so partial acceptance
 * can end mid-iovec and the caller's resume logic gets exercised on
 * boundaries real kernels never pick.  The loopback test at the end
 * drives the same seam through real sockets: a pipelined burst must
 * retire multiple frames per writev call, and a reader that stalls
 * mid-burst must still trip the write-stall teardown with the ledger
 * exact.
 */
#include "net/sim_transport.hpp"

#include <gtest/gtest.h>
#include <numeric>
#include <sys/socket.h>
#include <thread>

#include "interop/packet_stages.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "tests/support/test_seed.hpp"

namespace bitc::net {
namespace {

/** One accepted sim connection, both ends in hand. */
struct SimPair {
    std::unique_ptr<SimTransport> transport;
    int client_h = -1;
    int server_h = -1;
};

SimPair
sim_pair(SimTransportOptions opts)
{
    SimPair pair;
    pair.transport = std::make_unique<SimTransport>(opts);
    auto listener = pair.transport->listen("sim", 0);
    EXPECT_TRUE(listener.is_ok());
    pair.client_h = pair.transport->connect();
    auto accepted = pair.transport->accept();
    EXPECT_TRUE(accepted.is_ok());
    pair.server_h = accepted.value();
    return pair;
}

std::vector<uint8_t>
pattern_bytes(size_t n, uint8_t salt)
{
    std::vector<uint8_t> out(n);
    for (size_t i = 0; i < n; ++i) {
        out[i] = static_cast<uint8_t>(i * 31 + salt);
    }
    return out;
}

TEST(SimBatchWriteTest, DeliversAllIovsInOrder) {
    SimTransportOptions opts;
    opts.reorder = false;
    SimPair pair = sim_pair(opts);

    std::vector<uint8_t> a = pattern_bytes(100, 1);
    std::vector<uint8_t> b = pattern_bytes(1, 2);
    std::vector<uint8_t> c = pattern_bytes(977, 3);
    std::span<const uint8_t> iovs[] = {a, b, c};
    auto wrote = pair.transport->write_batch(pair.server_h, iovs);
    ASSERT_TRUE(wrote.is_ok()) << wrote.status().to_string();
    EXPECT_EQ(wrote.value(), a.size() + b.size() + c.size());

    auto got = pair.transport->client_read(pair.client_h);
    ASSERT_TRUE(got.is_ok());
    std::vector<uint8_t> want;
    want.insert(want.end(), a.begin(), a.end());
    want.insert(want.end(), b.begin(), b.end());
    want.insert(want.end(), c.begin(), c.end());
    EXPECT_EQ(got.value(), want);
}

TEST(SimBatchWriteTest, EmptyBatchAndEmptyIovsAreNoOps) {
    SimPair pair = sim_pair(SimTransportOptions{});
    auto none = pair.transport->write_batch(pair.server_h, {});
    ASSERT_TRUE(none.is_ok());
    EXPECT_EQ(none.value(), 0u);
    std::vector<uint8_t> data = pattern_bytes(8, 9);
    std::span<const uint8_t> iovs[] = {
        std::span<const uint8_t>{}, data, std::span<const uint8_t>{}};
    auto wrote = pair.transport->write_batch(pair.server_h, iovs);
    ASSERT_TRUE(wrote.is_ok());
    EXPECT_EQ(wrote.value(), data.size());
    auto got = pair.transport->client_read(pair.client_h);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(got.value(), data);
}

/** max_chunk=1: every call accepts exactly one byte, so the resume
 *  loop crosses every iovec boundary one byte at a time.  The
 *  reassembled stream must still be byte-exact. */
TEST(SimBatchWriteTest, MaxChunkOneDrainsAcrossIovBoundaries) {
    SimTransportOptions opts;
    opts.seed = bitc::test::seed_or(11);
    opts.max_chunk = 1;
    SimPair pair = sim_pair(opts);

    std::vector<uint8_t> a = pattern_bytes(3, 4);
    std::vector<uint8_t> b = pattern_bytes(5, 5);
    std::vector<uint8_t> c = pattern_bytes(2, 6);
    std::vector<uint8_t> want;
    want.insert(want.end(), a.begin(), a.end());
    want.insert(want.end(), b.begin(), b.end());
    want.insert(want.end(), c.begin(), c.end());

    size_t off = 0;
    while (off < want.size()) {
        // Rebuild the iov list from the current offset, exactly like
        // a write queue resuming after partial acceptance.
        std::vector<std::span<const uint8_t>> iovs;
        size_t skip = off;
        for (const std::vector<uint8_t>* part : {&a, &b, &c}) {
            if (skip >= part->size()) {
                skip -= part->size();
                continue;
            }
            iovs.emplace_back(part->data() + skip,
                              part->size() - skip);
            skip = 0;
        }
        auto wrote = pair.transport->write_batch(
            pair.server_h,
            std::span<const std::span<const uint8_t>>(iovs));
        ASSERT_TRUE(wrote.is_ok()) << wrote.status().to_string();
        EXPECT_EQ(wrote.value(), 1u) << "max_chunk=1 must cap each "
                                        "call at one byte";
        off += wrote.value();
    }
    auto got = pair.transport->client_read(pair.client_h);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(got.value(), want);
}

/** stutter_every: some calls report would-block; the retry loop must
 *  make progress without duplicating or losing bytes. */
TEST(SimBatchWriteTest, StutterWouldBlockRetriesCleanly) {
    SimTransportOptions opts;
    opts.seed = bitc::test::seed_or(13);
    opts.stutter_every = 2;
    opts.max_chunk = 7;
    SimPair pair = sim_pair(opts);

    std::vector<uint8_t> a = pattern_bytes(64, 1);
    std::vector<uint8_t> b = pattern_bytes(33, 2);
    std::vector<uint8_t> want;
    want.insert(want.end(), a.begin(), a.end());
    want.insert(want.end(), b.begin(), b.end());

    size_t off = 0;
    size_t stutters = 0;
    while (off < want.size()) {
        std::vector<std::span<const uint8_t>> iovs;
        size_t skip = off;
        for (const std::vector<uint8_t>* part : {&a, &b}) {
            if (skip >= part->size()) {
                skip -= part->size();
                continue;
            }
            iovs.emplace_back(part->data() + skip,
                              part->size() - skip);
            skip = 0;
        }
        auto wrote = pair.transport->write_batch(
            pair.server_h,
            std::span<const std::span<const uint8_t>>(iovs));
        if (!wrote.is_ok()) {
            ASSERT_EQ(wrote.status().code(),
                      StatusCode::kUnavailable)
                << wrote.status().to_string();
            ++stutters;
            continue;
        }
        off += wrote.value();
    }
    EXPECT_GT(stutters, 0u) << "stutter_every=2 should have produced "
                               "at least one would-block";
    auto got = pair.transport->client_read(pair.client_h);
    ASSERT_TRUE(got.is_ok());
    EXPECT_EQ(got.value(), want);
}

/** A peer reset between batches surfaces as kCancelled, exactly like
 *  single write()s. */
TEST(SimBatchWriteTest, PeerDropMidBatchSequenceFailsCancelled) {
    SimTransportOptions opts;
    opts.max_chunk = 4;  // first call accepts only a prefix
    opts.seed = bitc::test::seed_or(17);
    SimPair pair = sim_pair(opts);

    std::vector<uint8_t> a = pattern_bytes(16, 8);
    std::span<const uint8_t> iovs[] = {a};
    auto first = pair.transport->write_batch(pair.server_h, iovs);
    ASSERT_TRUE(first.is_ok());
    ASSERT_LT(first.value(), a.size());

    pair.transport->client_drop(pair.client_h);
    std::span<const uint8_t> rest[] = {
        std::span<const uint8_t>(a.data() + first.value(),
                                 a.size() - first.value())};
    auto second = pair.transport->write_batch(pair.server_h, rest);
    ASSERT_FALSE(second.is_ok());
    EXPECT_EQ(second.status().code(), StatusCode::kCancelled);
}

/** The simulated kernel buffer bounds acceptance; a full buffer is
 *  would-block, not an error, and partial acceptance stops at the
 *  boundary. */
TEST(SimBatchWriteTest, FullConnBufferReportsWouldBlock) {
    SimTransportOptions opts;
    opts.conn_buf_bytes = 10;
    SimPair pair = sim_pair(opts);

    std::vector<uint8_t> a = pattern_bytes(8, 3);
    std::vector<uint8_t> b = pattern_bytes(8, 4);
    std::span<const uint8_t> iovs[] = {a, b};
    auto first = pair.transport->write_batch(pair.server_h, iovs);
    ASSERT_TRUE(first.is_ok());
    EXPECT_EQ(first.value(), 10u) << "acceptance caps at buffer space";
    auto second = pair.transport->write_batch(pair.server_h, iovs);
    ASSERT_FALSE(second.is_ok());
    EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
}

/** One fault consult per batch, not per iovec: a plan that fails
 *  every socket-io hit fails the whole call exactly once. */
TEST(SimBatchWriteTest, OneFaultConsultPerBatch) {
    SimPair pair = sim_pair(SimTransportOptions{});
    auto& injector = fault::Injector::instance();
    injector.arm_count();
    uint64_t before = injector.hits(fault::Site::kSocketIo);
    std::vector<uint8_t> a = pattern_bytes(4, 1);
    std::vector<uint8_t> b = pattern_bytes(4, 2);
    std::vector<uint8_t> c = pattern_bytes(4, 3);
    std::span<const uint8_t> iovs[] = {a, b, c};
    auto wrote = pair.transport->write_batch(pair.server_h, iovs);
    ASSERT_TRUE(wrote.is_ok());
    EXPECT_EQ(injector.hits(fault::Site::kSocketIo) - before, 1u);
    injector.disarm();
}

// --- loopback: the seam under a real kernel --------------------------------

options::ServeSpec
loopback_spec()
{
    options::ServeSpec spec;  // 127.0.0.1, port 0
    return spec;
}

conc::PipelineConfig
small_engine()
{
    conc::PipelineConfig config;
    config.workers = {1, 1, 1, 1};
    config.queue_capacity = 8;
    config.batch_packets = 4;
    config.seed = 7;
    return config;
}

/**
 * A pipelined burst must retire multiple frames per vectored flush —
 * the whole point of batching the write side — and a reader that
 * stalls mid-burst must still trip the write-stall teardown with the
 * conservation ledger exact.  (The frame-content differential for
 * batched writes lives in loopback_test; this drill targets the
 * batching itself plus its interaction with the stall path.)
 */
TEST(LoopbackBatchWriteTest, BurstBatchesFramesThenStallTearsDown) {
    metrics::reset();
    metrics::enable();
    options::ServeSpec spec = loopback_spec();
    spec.write_queue_frames = 64;  // deep queue: real batches form
    spec.write_stall_ms = 50;
    auto server = NetServer::create(spec, small_engine());
    ASSERT_TRUE(server.is_ok());
    ASSERT_TRUE(server.value()->start().is_ok());

    // Phase 1: a cooperative pipelined burst.  Answers accumulate in
    // the write queue while we deliberately read nothing, then drain.
    auto client =
        NetClient::connect("127.0.0.1", server.value()->port());
    ASSERT_TRUE(client.is_ok());
    Rng rng(bitc::test::seed_or(7));
    constexpr size_t kBurst = 200;
    uint8_t payload[conc::kPipeWireBytes];
    for (uint32_t flow = 1; flow <= kBurst; ++flow) {
        interop::generate_packet(
            rng, std::span<uint8_t>(payload, sizeof payload));
        ASSERT_TRUE(client.value()
                        .send_data(flow, 0,
                                   std::span<const uint8_t>(
                                       payload, sizeof payload))
                        .is_ok());
    }
    for (size_t i = 0; i < kBurst; ++i) {
        auto got = client.value().recv_frame_view(10000);
        ASSERT_TRUE(got.is_ok()) << got.status().to_string();
    }
    client.value().close();

    metrics::Snapshot snap = metrics::snapshot();
    const auto& writev =
        snap.histogram(metrics::Histogram::kNetWritevFramesPerCall);
    EXPECT_GT(writev.count, 0u);
    EXPECT_GT(writev.sum, writev.count)
        << "every flush retired exactly one frame: the burst never "
           "produced a multi-frame writev";

    // Phase 2: same server, a reader that never drains.  The bounded
    // queue fills behind the stalled socket and the teardown fires.
    auto stalled =
        NetClient::connect("127.0.0.1", server.value()->port());
    ASSERT_TRUE(stalled.is_ok());
    int tiny = 1;
    ASSERT_EQ(::setsockopt(stalled.value().fd(), SOL_SOCKET,
                           SO_RCVBUF, &tiny, sizeof(tiny)),
              0);
    uint32_t flow = 0;
    bool torn_down = false;
    for (int round = 0; round < 6000 && !torn_down; ++round) {
        interop::generate_packet(
            rng, std::span<uint8_t>(payload, sizeof payload));
        Status st = stalled.value().send_data(
            ++flow % 0xffff + 1, 0,
            std::span<const uint8_t>(payload, sizeof payload));
        if (!st.is_ok()) torn_down = true;
    }
    server.value()->stop();
    metrics::disable();
    ServerStats stats = server.value()->stats();
    EXPECT_TRUE(stats.conserved()) << stats.to_string();
    EXPECT_EQ(stats.protocol_errors, 0u);
    if (torn_down) {
        EXPECT_GE(stats.teardowns_sick, 1u);
        EXPECT_GE(stats.rejected, 1u);
    }
}

}  // namespace
}  // namespace bitc::net
