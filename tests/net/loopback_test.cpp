/**
 * @file
 * Loopback end-to-end tests for the TCP front-end: a real NetServer
 * on 127.0.0.1 (ephemeral port), driven by NetClient.
 *
 *  - Echo differential: every response must byte-match what the
 *    legacy stage functions produce for the same wire image, and
 *    every validate reject must come back as a kDrop frame.
 *  - Lifecycle edges: mid-stream disconnect, slow readers that trip
 *    the write-stall teardown, protocol violations.
 *  - Fault storms on the socket-io site: the listener crashes under
 *    supervision, sick connections are torn down, and the packet
 *    conservation ledger stays exact through all of it.
 *
 * All tests run under the tier1_sanitizer label: ASan/UBSan and TSan
 * both see real socket traffic and the IO/sink thread handshake.
 */
#include "net/server.hpp"

#include <cstdlib>
#include <gtest/gtest.h>
#include <map>
#include <sys/socket.h>
#include <thread>

#include "interop/packet_stages.hpp"
#include "net/client.hpp"
#include "net/wire.hpp"
#include "support/fault.hpp"
#include "support/rng.hpp"
#include "tests/support/test_seed.hpp"

namespace bitc::net {
namespace {

options::ServeSpec
loopback_spec()
{
    options::ServeSpec spec;  // 127.0.0.1, port 0 = kernel's pick
    return spec;
}

conc::PipelineConfig
small_engine()
{
    conc::PipelineConfig config;
    config.workers = {1, 1, 1, 1};
    config.queue_capacity = 8;
    config.batch_packets = 4;
    config.seed = 7;
    return config;
}

Result<std::unique_ptr<NetServer>>
start_server(const options::ServeSpec& serve,
             const conc::PipelineConfig& config)
{
    auto server = NetServer::create(serve, config);
    if (!server.is_ok()) return server.status();
    Status st = server.value()->start();
    if (!st.is_ok()) return st;
    return std::move(server.value());
}

/** What the in-process pipeline would answer for this wire image. */
struct Expected {
    bool drop = false;
    std::array<uint8_t, conc::kPipeWireBytes> wire{};
    int64_t bucket = -1;
};

Expected
reference_process(const std::array<uint8_t, conc::kPipeWireBytes>& in)
{
    Expected out;
    out.wire = in;
    if (interop::legacy_validate(out.wire) == 0) {
        out.drop = true;
        return out;
    }
    interop::legacy_decrement_ttl(out.wire);
    interop::legacy_checksum(out.wire);
    out.bucket = interop::legacy_classify(out.wire);
    return out;
}

Frame
data_frame(uint32_t flow,
           const std::array<uint8_t, conc::kPipeWireBytes>& wire)
{
    Frame f;
    f.type = FrameType::kData;
    f.flow = flow;
    f.payload.assign(wire.begin(), wire.end());
    return f;
}

int64_t
bucket_of(const Frame& response)
{
    // kResponse payload = processed wire image + big-endian bucket.
    EXPECT_EQ(response.payload.size(), conc::kPipeWireBytes + 8);
    uint64_t bucket = 0;
    for (size_t i = 0; i < 8; ++i) {
        bucket = (bucket << 8) |
                 response.payload[conc::kPipeWireBytes + i];
    }
    return static_cast<int64_t>(bucket);
}

uint64_t
test_seed()
{
    return bitc::test::seed_or(7);
}

/**
 * The headline differential: frames over a real socket must come back
 * byte-identical to what the legacy stage chain computes in-process,
 * drops included, with the client flow id echoed intact.
 */
TEST(LoopbackTest, EchoDifferentialMatchesInProcessPipeline) {
    auto server = start_server(loopback_spec(), small_engine());
    ASSERT_TRUE(server.is_ok()) << server.status().to_string();
    auto client =
        NetClient::connect("127.0.0.1", server.value()->port());
    ASSERT_TRUE(client.is_ok()) << client.status().to_string();

    uint64_t seed = test_seed();
    BITC_SEED_TRACE(seed);
    Rng rng(seed);
    constexpr size_t kFrames = 300;
    std::map<uint32_t, Expected> expected;
    for (uint32_t flow = 1; flow <= kFrames; ++flow) {
        std::array<uint8_t, conc::kPipeWireBytes> wire{};
        interop::generate_packet(
            rng, std::span<uint8_t>(wire.data(), wire.size()));
        expected[flow] = reference_process(wire);
        ASSERT_TRUE(
            client.value().send_frame(data_frame(flow, wire)).is_ok());
    }

    size_t drops = 0;
    for (size_t i = 0; i < kFrames; ++i) {
        auto got = client.value().recv_frame(/*timeout_ms=*/10000);
        ASSERT_TRUE(got.is_ok()) << got.status().to_string();
        const Frame& f = got.value();
        auto want = expected.find(f.flow);
        ASSERT_NE(want, expected.end()) << "unknown flow " << f.flow;
        if (want->second.drop) {
            EXPECT_EQ(f.type, FrameType::kDrop);
            ++drops;
        } else {
            ASSERT_EQ(f.type, FrameType::kResponse);
            ASSERT_GE(f.payload.size(), conc::kPipeWireBytes);
            EXPECT_TRUE(std::equal(want->second.wire.begin(),
                                   want->second.wire.end(),
                                   f.payload.begin()))
                << "wire image differs for flow " << f.flow;
            EXPECT_EQ(bucket_of(f), want->second.bucket);
        }
        expected.erase(want);  // every frame answered exactly once
    }
    EXPECT_TRUE(expected.empty());
    EXPECT_GT(drops, 0u) << "generator should emit some invalid "
                            "packets; differential has no coverage "
                            "of the drop path otherwise";

    client.value().close();
    server.value()->stop();
    ServerStats stats = server.value()->stats();
    EXPECT_TRUE(stats.conserved()) << stats.to_string();
    EXPECT_EQ(stats.generated, kFrames);
    EXPECT_EQ(stats.delivered + stats.dropped, kFrames);
    EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(LoopbackTest, HalfCloseDrainsEveryAnswerThenCloses) {
    auto server = start_server(loopback_spec(), small_engine());
    ASSERT_TRUE(server.is_ok()) << server.status().to_string();
    auto client =
        NetClient::connect("127.0.0.1", server.value()->port());
    ASSERT_TRUE(client.is_ok());

    Rng rng(test_seed());
    constexpr size_t kFrames = 50;
    for (uint32_t flow = 1; flow <= kFrames; ++flow) {
        std::array<uint8_t, conc::kPipeWireBytes> wire{};
        interop::generate_packet(
            rng, std::span<uint8_t>(wire.data(), wire.size()));
        ASSERT_TRUE(
            client.value().send_frame(data_frame(flow, wire)).is_ok());
    }
    client.value().shutdown_send();
    // Every answer still arrives, then a clean server-side close.
    for (size_t i = 0; i < kFrames; ++i) {
        auto got = client.value().recv_frame(10000);
        ASSERT_TRUE(got.is_ok()) << got.status().to_string();
    }
    auto eof = client.value().recv_frame(10000);
    ASSERT_FALSE(eof.is_ok());
    EXPECT_EQ(eof.status().code(), StatusCode::kCancelled);

    server.value()->stop();
    ServerStats stats = server.value()->stats();
    EXPECT_TRUE(stats.conserved()) << stats.to_string();
    EXPECT_EQ(stats.teardowns_clean, 1u);
    EXPECT_EQ(stats.rejected, 0u);
}

TEST(LoopbackTest, MidStreamDisconnectDoesNotPoisonTheServer) {
    auto server = start_server(loopback_spec(), small_engine());
    ASSERT_TRUE(server.is_ok()) << server.status().to_string();

    {
        // First client slams the door with answers still in flight.
        auto rude =
            NetClient::connect("127.0.0.1", server.value()->port());
        ASSERT_TRUE(rude.is_ok());
        Rng rng(test_seed());
        for (uint32_t flow = 1; flow <= 40; ++flow) {
            std::array<uint8_t, conc::kPipeWireBytes> wire{};
            interop::generate_packet(
                rng, std::span<uint8_t>(wire.data(), wire.size()));
            ASSERT_TRUE(
                rude.value().send_frame(data_frame(flow, wire)).is_ok());
        }
        rude.value().close();
    }

    // A second client on the same server still gets exact service.
    auto polite =
        NetClient::connect("127.0.0.1", server.value()->port());
    ASSERT_TRUE(polite.is_ok());
    Rng rng(test_seed() + 1);
    std::array<uint8_t, conc::kPipeWireBytes> wire{};
    interop::generate_packet(
        rng, std::span<uint8_t>(wire.data(), wire.size()));
    Expected want = reference_process(wire);
    ASSERT_TRUE(
        polite.value().send_frame(data_frame(9, wire)).is_ok());
    auto got = polite.value().recv_frame(10000);
    ASSERT_TRUE(got.is_ok()) << got.status().to_string();
    EXPECT_EQ(got.value().flow, 9u);
    EXPECT_EQ(got.value().type,
              want.drop ? FrameType::kDrop : FrameType::kResponse);

    polite.value().close();
    server.value()->stop();
    ServerStats stats = server.value()->stats();
    // Answers for the rude client became orphans/remnants — rejected,
    // never lost: the ledger must still balance to the packet.
    EXPECT_TRUE(stats.conserved()) << stats.to_string();
    EXPECT_EQ(stats.accepted, 2u);
}

// Real-clock smoke: one genuine kernel-buffer stall through real
// sockets.  The same drill runs sleep-free on the virtual clock with
// a scripted bounded buffer in tests/sim/sim_net_test.cpp
// (StalledReaderTripsWriteStallTeardownVirtually).
TEST(LoopbackTest, SlowReaderTripsWriteStallTeardown) {
    options::ServeSpec spec = loopback_spec();
    spec.write_queue_frames = 4;  // tiny answer queue
    spec.write_stall_ms = 50;     // short stall budget
    auto server = start_server(spec, small_engine());
    ASSERT_TRUE(server.is_ok()) << server.status().to_string();

    auto client =
        NetClient::connect("127.0.0.1", server.value()->port());
    ASSERT_TRUE(client.is_ok());
    // Never read a byte; keep the pressure on until the server gives
    // up on us.  A tiny receive buffer stops the kernel from soaking
    // up the answers, the bounded write queue fills behind the full
    // socket, and the sink times out waiting for space and marks the
    // connection sick — which tears it down and unblocks our send
    // with a reset.
    int tiny = 1;
    ASSERT_EQ(::setsockopt(client.value().fd(), SOL_SOCKET, SO_RCVBUF,
                           &tiny, sizeof(tiny)),
              0);
    Rng rng(test_seed());
    uint32_t flow = 0;
    bool torn_down = false;
    for (int round = 0; round < 4000 && !torn_down; ++round) {
        std::array<uint8_t, conc::kPipeWireBytes> wire{};
        interop::generate_packet(
            rng, std::span<uint8_t>(wire.data(), wire.size()));
        Status st = client.value().send_frame(
            data_frame(++flow % 0xffff + 1, wire));
        if (!st.is_ok()) {
            torn_down = true;  // server closed us: teardown observed
        }
    }
    server.value()->stop();
    ServerStats stats = server.value()->stats();
    EXPECT_TRUE(stats.conserved()) << stats.to_string();
    if (torn_down) {
        EXPECT_GE(stats.teardowns_sick, 1u);
        EXPECT_GE(stats.rejected, 1u);
    }
}

/**
 * Regression: a draining connection with an engine-parked batch must
 * not lose frames.  A draining connection never pauses (there is no
 * read interest left to withdraw), so drain_frames used to keep
 * decoding its buffered backlog and a second backpressured submit
 * overwrote the parked batch — that packet's originator never heard
 * its promised answer.  A tiny engine plus a slow classify stage
 * forces repeated parking; every accepted frame still owes exactly
 * one answer before the clean close.
 */
TEST(LoopbackTest, BackpressuredDrainingConnectionAnswersEveryFrame) {
    conc::PipelineConfig engine = small_engine();
    engine.queue_capacity = 1;        // park on the second batch
    engine.batch_packets = 1;
    engine.lookup_latency_us = 3000;  // classify stalls the chain
    auto server = start_server(loopback_spec(), engine);
    ASSERT_TRUE(server.is_ok()) << server.status().to_string();
    auto client =
        NetClient::connect("127.0.0.1", server.value()->port());
    ASSERT_TRUE(client.is_ok());

    Rng rng(test_seed());
    constexpr size_t kFrames = 24;
    for (uint32_t flow = 1; flow <= kFrames; ++flow) {
        std::array<uint8_t, conc::kPipeWireBytes> wire{};
        interop::generate_packet(
            rng, std::span<uint8_t>(wire.data(), wire.size()));
        ASSERT_TRUE(
            client.value().send_frame(data_frame(flow, wire)).is_ok());
    }
    client.value().shutdown_send();  // drain while batches still park

    size_t answers = 0;
    auto got = client.value().recv_frame(10000);
    while (got.is_ok()) {
        EXPECT_NE(got.value().type, FrameType::kError)
            << "unexpected error frame for flow " << got.value().flow;
        ++answers;
        got = client.value().recv_frame(10000);
    }
    EXPECT_EQ(got.status().code(), StatusCode::kCancelled)
        << got.status().to_string();
    EXPECT_EQ(answers, kFrames)
        << "a parked packet was overwritten and never answered";

    server.value()->stop();
    ServerStats stats = server.value()->stats();
    EXPECT_TRUE(stats.conserved()) << stats.to_string();
    EXPECT_EQ(stats.rejected, 0u);
}

/**
 * Regression: the sink must never hold a raw Conn* across its
 * write-queue space wait without pinning the connection — an
 * abortive client close used to let the IO thread tear down and reap
 * the Conn while the sink was still parked on space_cv with a
 * pointer into it (a use-after-free ASan catches).  Full write
 * queues put the sink into that wait; RST closes land mid-wait.
 */
TEST(LoopbackTest, AbortiveCloseWhileSinkWaitsForWriteSpace) {
    options::ServeSpec spec = loopback_spec();
    spec.write_queue_frames = 2;  // sink parks almost immediately
    spec.write_stall_ms = 2000;   // long wait: the close lands inside
    auto server = start_server(spec, small_engine());
    ASSERT_TRUE(server.is_ok()) << server.status().to_string();

    Rng rng(test_seed());
    for (int round = 0; round < 3; ++round) {
        auto client =
            NetClient::connect("127.0.0.1", server.value()->port());
        ASSERT_TRUE(client.is_ok());
        int tiny = 1;  // keep answers queued server-side, not read
        ASSERT_EQ(::setsockopt(client.value().fd(), SOL_SOCKET,
                               SO_RCVBUF, &tiny, sizeof(tiny)),
                  0);
        for (uint32_t flow = 1; flow <= 48; ++flow) {
            std::array<uint8_t, conc::kPipeWireBytes> wire{};
            interop::generate_packet(
                rng, std::span<uint8_t>(wire.data(), wire.size()));
            if (!client.value()
                     .send_frame(data_frame(flow, wire))
                     .is_ok()) {
                break;
            }
        }
        // Give the sink time to fill the queue and block, then slam
        // the door abortively: SO_LINGER(0) turns close into a RST,
        // which the IO thread sees as a socket error and tears the
        // connection down while the sink still waits on it.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        struct linger lg{};
        lg.l_onoff = 1;
        lg.l_linger = 0;
        ASSERT_EQ(::setsockopt(client.value().fd(), SOL_SOCKET,
                               SO_LINGER, &lg, sizeof(lg)),
                  0);
        client.value().close();
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    server.value()->stop();
    ServerStats stats = server.value()->stats();
    EXPECT_TRUE(stats.conserved()) << stats.to_string();
    EXPECT_EQ(stats.accepted, 3u);
}

TEST(LoopbackTest, ProtocolViolationsAreAnsweredThenTornDown) {
    auto server = start_server(loopback_spec(), small_engine());
    ASSERT_TRUE(server.is_ok()) << server.status().to_string();

    // A data frame with a wrong-size payload earns an error answer on
    // a live connection.
    auto client =
        NetClient::connect("127.0.0.1", server.value()->port());
    ASSERT_TRUE(client.is_ok());
    Frame runt;
    runt.type = FrameType::kData;
    runt.flow = 3;
    runt.payload = {1, 2, 3};
    ASSERT_TRUE(client.value().send_frame(runt).is_ok());
    auto answer = client.value().recv_frame(10000);
    ASSERT_TRUE(answer.is_ok()) << answer.status().to_string();
    EXPECT_EQ(answer.value().type, FrameType::kError);
    EXPECT_EQ(answer.value().flow, 3u);

    // Garbage bytes poison the stream: the server must hang up.
    std::vector<uint8_t> garbage(64, 0x5a);
    ASSERT_TRUE(client.value().send_raw(garbage).is_ok());
    auto gone = client.value().recv_frame(10000);
    while (gone.is_ok()) {  // skip the best-effort parting error frame
        gone = client.value().recv_frame(10000);
    }
    EXPECT_NE(gone.status().code(), StatusCode::kDeadlineExceeded);

    server.value()->stop();
    ServerStats stats = server.value()->stats();
    EXPECT_TRUE(stats.conserved()) << stats.to_string();
    EXPECT_GE(stats.protocol_errors, 2u);
}

/**
 * socket-io storm at full strength: every accept/read/write attempt
 * on the server faults.  The supervised listener crashes, restarts
 * with backoff, trips its breaker; clients are refused or torn down.
 * Whatever was admitted before the storm must still be accounted —
 * conservation is exactly the property that survives the fire.
 */
TEST(LoopbackFaultTest, SocketIoStormKeepsTheLedgerExact) {
    auto server = start_server(loopback_spec(), small_engine());
    ASSERT_TRUE(server.is_ok()) << server.status().to_string();

    // Admit real traffic first so the ledger has something to lose.
    auto client =
        NetClient::connect("127.0.0.1", server.value()->port());
    ASSERT_TRUE(client.is_ok());
    Rng rng(test_seed());
    for (uint32_t flow = 1; flow <= 20; ++flow) {
        std::array<uint8_t, conc::kPipeWireBytes> wire{};
        interop::generate_packet(
            rng, std::span<uint8_t>(wire.data(), wire.size()));
        ASSERT_TRUE(
            client.value().send_frame(data_frame(flow, wire)).is_ok());
    }
    for (size_t i = 0; i < 20; ++i) {
        ASSERT_TRUE(client.value().recv_frame(10000).is_ok());
    }

    {
        fault::ScopedPlan storm("socket-io:every=1");
        // More traffic into the storm: reads on the server now fault,
        // so this connection will be torn down sick.
        for (uint32_t flow = 21; flow <= 30; ++flow) {
            std::array<uint8_t, conc::kPipeWireBytes> wire{};
            interop::generate_packet(
                rng, std::span<uint8_t>(wire.data(), wire.size()));
            if (!client.value()
                     .send_frame(data_frame(flow, wire))
                     .is_ok()) {
                break;  // already hung up on us
            }
        }
        // New connections meet a crashing accept loop; give the
        // supervisor time to burn through restarts into the breaker.
        for (int attempt = 0; attempt < 5; ++attempt) {
            auto doomed = NetClient::connect(
                "127.0.0.1", server.value()->port());
            // Connect may succeed at TCP level (backlog) even while
            // accept faults; either way the frames go nowhere.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        server.value()->stop();
    }

    ServerStats stats = server.value()->stats();
    EXPECT_TRUE(stats.conserved()) << stats.to_string();
    EXPECT_EQ(stats.delivered + stats.dropped, 20u)
        << "pre-storm answers all reached the client";
    EXPECT_GE(stats.listener_crashes, 1u)
        << "accept faults must crash the supervised IO loop";
}

/**
 * Regression: packets lost *inside* the engine (here: worker-crash
 * fault drops and breaker-drained backlogs) must settle the owing
 * connection's inflight ledger.  A half-closed connection whose
 * packets died in the engine used to never satisfy settled() — it
 * stayed a zombie holding its socket open until stop().  With loss
 * attribution the drain completes: late frames are answered or
 * accounted, and the server closes the connection on its own.
 */
TEST(LoopbackFaultTest, EngineLossesSettleDrainingConnections) {
    auto server = start_server(loopback_spec(), small_engine());
    ASSERT_TRUE(server.is_ok()) << server.status().to_string();
    auto client =
        NetClient::connect("127.0.0.1", server.value()->port());
    ASSERT_TRUE(client.is_ok());

    fault::ScopedPlan storm("worker-crash:every=1");
    Rng rng(test_seed());
    constexpr size_t kFrames = 12;
    for (uint32_t flow = 1; flow <= kFrames; ++flow) {
        std::array<uint8_t, conc::kPipeWireBytes> wire{};
        interop::generate_packet(
            rng, std::span<uint8_t>(wire.data(), wire.size()));
        ASSERT_TRUE(
            client.value().send_frame(data_frame(flow, wire)).is_ok());
    }
    client.value().shutdown_send();
    // Crashed packets earn no answer (they are fault-dropped with
    // accounting); frames rejected at the edge once the breaker opens
    // earn error frames.  Either way the server must reach settled()
    // and close — before stop(), which is what this pins.
    auto got = client.value().recv_frame(10000);
    while (got.is_ok()) {
        got = client.value().recv_frame(10000);
    }
    EXPECT_EQ(got.status().code(), StatusCode::kCancelled)
        << "draining connection never settled: "
        << got.status().to_string();

    server.value()->stop();
    ServerStats stats = server.value()->stats();
    EXPECT_TRUE(stats.conserved()) << stats.to_string();
    EXPECT_GE(stats.teardowns_clean, 1u);
    EXPECT_GT(stats.fault_dropped, 0u);
}

/** A milder storm with live traffic: some frames die, none vanish. */
TEST(LoopbackFaultTest, PeriodicSocketFaultsPreserveConservation) {
    auto server = start_server(loopback_spec(), small_engine());
    ASSERT_TRUE(server.is_ok()) << server.status().to_string();

    fault::ScopedPlan storm("socket-io:every=7");
    size_t sent = 0;
    for (int conn = 0; conn < 4; ++conn) {
        auto client =
            NetClient::connect("127.0.0.1", server.value()->port());
        if (!client.is_ok()) continue;
        Rng rng(test_seed() + static_cast<uint64_t>(conn));
        for (uint32_t flow = 1; flow <= 25; ++flow) {
            std::array<uint8_t, conc::kPipeWireBytes> wire{};
            interop::generate_packet(
                rng, std::span<uint8_t>(wire.data(), wire.size()));
            if (!client.value()
                     .send_frame(data_frame(flow, wire))
                     .is_ok()) {
                break;
            }
            ++sent;
            auto got = client.value().recv_frame(2000);
            if (!got.is_ok()) break;  // torn down mid-storm: expected
        }
    }
    server.value()->stop();
    ServerStats stats = server.value()->stats();
    EXPECT_TRUE(stats.conserved()) << stats.to_string();
    EXPECT_GT(sent, 0u);
}

/** The poll(2) fallback serves the same traffic as epoll. */
TEST(LoopbackTest, PollFallbackBackendServes) {
    ASSERT_EQ(::setenv("BITC_NET_POLLER", "poll", 1), 0);
    auto server = start_server(loopback_spec(), small_engine());
    ::unsetenv("BITC_NET_POLLER");
    ASSERT_TRUE(server.is_ok()) << server.status().to_string();

    auto client =
        NetClient::connect("127.0.0.1", server.value()->port());
    ASSERT_TRUE(client.is_ok());
    Rng rng(test_seed());
    constexpr size_t kFrames = 60;
    for (uint32_t flow = 1; flow <= kFrames; ++flow) {
        std::array<uint8_t, conc::kPipeWireBytes> wire{};
        interop::generate_packet(
            rng, std::span<uint8_t>(wire.data(), wire.size()));
        ASSERT_TRUE(
            client.value().send_frame(data_frame(flow, wire)).is_ok());
    }
    for (size_t i = 0; i < kFrames; ++i) {
        ASSERT_TRUE(client.value().recv_frame(10000).is_ok());
    }
    client.value().close();
    server.value()->stop();
    ServerStats stats = server.value()->stats();
    EXPECT_TRUE(stats.conserved()) << stats.to_string();
    EXPECT_EQ(stats.generated, kFrames);
}

}  // namespace
}  // namespace bitc::net
