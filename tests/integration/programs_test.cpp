/**
 * Whole-program integration tests: realistic BitC programs run through
 * the complete pipeline and cross-checked against native C++ oracles,
 * on multiple VM configurations.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "vm/pipeline.hpp"

namespace bitc::vm {
namespace {

std::unique_ptr<BuiltProgram> build_ok(std::string_view source) {
    BuildOptions options;
    options.compiler.elide_proved_checks = true;
    auto built = build_program(source, options);
    EXPECT_TRUE(built.is_ok()) << built.status().to_string();
    return std::move(built).take();
}

std::vector<VmConfig> spot_check_configs() {
    VmConfig unboxed;
    unboxed.heap_words = 1 << 20;
    VmConfig boxed;
    boxed.mode = ValueMode::kBoxed;
    boxed.heap = HeapPolicy::kGenerational;
    boxed.heap_words = 1 << 20;
    VmConfig compact;
    compact.mode = ValueMode::kBoxed;
    compact.heap = HeapPolicy::kMarkCompact;
    compact.heap_words = 1 << 20;
    return {unboxed, boxed, compact};
}

// --- Quicksort -----------------------------------------------------------

const char* kQuicksort = R"bitc(
(define (swap a : (array int64 256) i : int64 j : int64) : unit
  (require (>= i 0)) (require (< i 256))
  (require (>= j 0)) (require (< j 256))
  (let ((t (array-ref a i)))
    (array-set! a i (array-ref a j))
    (array-set! a j t)))

(define (partition a : (array int64 256) lo : int64 hi : int64) : int64
  (require (>= lo 0)) (require (< hi 256)) (require (<= lo hi))
  (ensure (>= result lo))
  (let ((pivot (array-ref a hi)) (i lo) (j lo))
    (while (< j hi)
      (invariant (>= i lo)) (invariant (<= i j))
      (invariant (>= j lo)) (invariant (<= j hi))
      (if (< (array-ref a j) pivot)
          (begin (swap a i j) (set! i (+ i 1)))
          (unit))
      (set! j (+ j 1)))
    (swap a i hi)
    i))

(define (qsort a : (array int64 256) lo : int64 hi : int64) : unit
  (require (>= lo 0)) (require (< hi 256))
  (if (< lo hi)
      (let ((p (partition a lo hi)))
        (if (> p lo) (qsort a lo (- p 1)) (unit))
        (if (< p hi) (qsort a (+ p 1) hi) (unit)))
      (unit)))

; Fill with an LCG, sort, and return a positional checksum that any
; misplacement would change.
(define (sort-main seed : int64) : int64
  (let ((a (array-make 256 0)) (i 0) (x seed))
    (while (< i 256)
      (invariant (>= i 0)) (invariant (<= i 256))
      (set! x (bitand (+ (* x 6364136223846793005) 1442695040888963407)
                      4294967295))
      (array-set! a i x)
      (set! i (+ i 1)))
    (qsort a 0 255)
    (let ((check 0) (sorted 1))
      (set! i 0)
      (while (< i 256)
        (invariant (>= i 0)) (invariant (<= i 256))
        (set! check (bitand (+ (* check 31) (array-ref a i))
                            1152921504606846975))
        ; note: 'and' is strict, so guard the i-1 access with nesting
        (if (> i 0)
            (if (> (array-ref a (- i 1)) (array-ref a i))
                (set! sorted 0)
                (unit))
            (unit))
        (set! i (+ i 1)))
      (if (== sorted 1) check -1))))
)bitc";

int64_t native_sort_checksum(int64_t seed) {
    std::vector<int64_t> a(256);
    int64_t x = seed;
    for (auto& v : a) {
        x = static_cast<int64_t>(
            (static_cast<uint64_t>(x) * 6364136223846793005ull +
             1442695040888963407ull) &
            4294967295ull);
        v = x;
    }
    std::sort(a.begin(), a.end());
    int64_t check = 0;
    for (int64_t v : a) {
        check = static_cast<int64_t>(
            (static_cast<uint64_t>(check) * 31 +
             static_cast<uint64_t>(v)) &
            1152921504606846975ull);
    }
    return check;
}

TEST(ProgramTest, QuicksortMatchesStdSortAcrossConfigs) {
    auto built = build_ok(kQuicksort);
    for (const VmConfig& config : spot_check_configs()) {
        auto vm = built->instantiate(config);
        for (int64_t seed : {1, 7, 12345}) {
            auto result = vm->call("sort-main", {seed});
            ASSERT_TRUE(result.is_ok()) << result.status().to_string();
            EXPECT_NE(result.value(), -1) << "output was not sorted";
            EXPECT_EQ(result.value(), native_sort_checksum(seed))
                << "seed " << seed;
        }
    }
}

// --- Matrix multiply --------------------------------------------------------

const char* kMatMul = R"bitc(
(define (matmul-main n : int64) : int64
  (require (>= n 1)) (require (<= n 16))
  (let ((a (array-make 256 0)) (b (array-make 256 0))
        (c (array-make 256 0)) (i 0))
    ; a[i][j] = i + j, b[i][j] = i * j  (flattened n x n)
    (while (< i n)
      (invariant (>= i 0))
      (let ((j 0))
        (while (< j n)
          (invariant (>= j 0))
          (array-set! a (+ (* i 16) j) (+ i j))
          (array-set! b (+ (* i 16) j) (* i j))
          (set! j (+ j 1))))
      (set! i (+ i 1)))
    ; c = a * b
    (set! i 0)
    (while (< i n)
      (invariant (>= i 0))
      (let ((j 0))
        (while (< j n)
          (invariant (>= j 0))
          (let ((acc 0) (k 0))
            (while (< k n)
              (invariant (>= k 0))
              (set! acc (+ acc (* (array-ref a (+ (* i 16) k))
                                  (array-ref b (+ (* k 16) j)))))
              (set! k (+ k 1)))
            (array-set! c (+ (* i 16) j) acc))
          (set! j (+ j 1))))
      (set! i (+ i 1)))
    ; checksum
    (let ((check 0))
      (set! i 0)
      (while (< i n)
        (invariant (>= i 0))
        (let ((j 0))
          (while (< j n)
            (invariant (>= j 0))
            (set! check (+ check (* (+ i 1)
                                    (array-ref c (+ (* i 16) j)))))
            (set! j (+ j 1))))
        (set! i (+ i 1)))
      check)))
)bitc";

int64_t native_matmul_checksum(int64_t n) {
    int64_t a[16][16] = {};
    int64_t b[16][16] = {};
    int64_t c[16][16] = {};
    for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            a[i][j] = i + j;
            b[i][j] = i * j;
        }
    }
    for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            for (int64_t k = 0; k < n; ++k) {
                c[i][j] += a[i][k] * b[k][j];
            }
        }
    }
    int64_t check = 0;
    for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            check += (i + 1) * c[i][j];
        }
    }
    return check;
}

TEST(ProgramTest, MatrixMultiplyMatchesNative) {
    auto built = build_ok(kMatMul);
    auto vm = built->instantiate(spot_check_configs()[0]);
    for (int64_t n : {1, 2, 5, 8, 16}) {
        auto result = vm->call("matmul-main", {n});
        ASSERT_TRUE(result.is_ok()) << result.status().to_string();
        EXPECT_EQ(result.value(), native_matmul_checksum(n)) << n;
    }
}

// --- A queue simulation (producer/consumer over a ring) -------------------

const char* kQueueSim = R"bitc(
; Single-threaded producer/consumer simulation: producer emits bursts,
; consumer drains at fixed rate; returns max queue depth reached.
(define (sim steps : int64 burst : int64) : int64
  (require (>= steps 0)) (require (>= burst 0)) (require (<= burst 16))
  (let ((depth 0) (max-depth 0) (t 0))
    (while (< t steps)
      (invariant (>= t 0)) (invariant (>= depth 0))
      (invariant (>= max-depth 0))
      ; produce a burst every 4th tick
      (if (== (bitand t 3) 0)
          (set! depth (+ depth burst))
          (unit))
      ; consume 2 per tick
      (if (>= depth 2) (set! depth (- depth 2)) (set! depth 0))
      (if (> depth max-depth) (set! max-depth depth) (unit))
      (set! t (+ t 1)))
    max-depth))
)bitc";

int64_t native_sim(int64_t steps, int64_t burst) {
    int64_t depth = 0;
    int64_t max_depth = 0;
    for (int64_t t = 0; t < steps; ++t) {
        if ((t & 3) == 0) depth += burst;
        depth = depth >= 2 ? depth - 2 : 0;
        max_depth = std::max(max_depth, depth);
    }
    return max_depth;
}

TEST(ProgramTest, QueueSimulationMatchesNative) {
    auto built = build_ok(kQueueSim);
    auto vm = built->instantiate({});
    for (int64_t burst : {0, 1, 2, 3, 8, 16}) {
        auto result = vm->call("sim", {1000, burst});
        ASSERT_TRUE(result.is_ok()) << result.status().to_string();
        EXPECT_EQ(result.value(), native_sim(1000, burst))
            << "burst " << burst;
    }
}

// --- Verified binary search -------------------------------------------------

const char* kBinarySearch = R"bitc(
(define (bsearch a : (array int64 128) target : int64) : int64
  (ensure (>= result -1)) (ensure (< result 128))
  (let ((lo 0) (hi 128) (found -1))
    (while (< lo hi)
      (invariant (>= lo 0)) (invariant (<= lo 128))
      (invariant (<= hi 128)) (invariant (>= hi 0))
      (invariant (>= found -1)) (invariant (< found 128))
      (let ((mid (/ (+ lo hi) 2)))
        (assert (>= mid 0)) (assert (< mid 128))
        (if (== (array-ref a mid) target)
            (begin (set! found mid) (set! lo hi))
            (if (< (array-ref a mid) target)
                (set! lo (+ mid 1))
                (set! hi mid)))))
    found))

(define (bsearch-main q : int64) : int64
  (let ((a (array-make 128 0)) (i 0))
    (while (< i 128)
      (invariant (>= i 0)) (invariant (<= i 128))
      (array-set! a i (* i 3))
      (set! i (+ i 1)))
    (bsearch a q)))
)bitc";

TEST(ProgramTest, VerifiedBinarySearch) {
    auto built = build_ok(kBinarySearch);
    // The in-loop array accesses must be statically check-free: the
    // invariants bound mid by lo/hi.
    size_t unchecked = 0;
    for (const auto& fn : built->code.functions) {
        for (const auto& instr : fn.code) {
            if (instr.op == Op::kArrayGet &&
                (instr.b & (kFlagCheckLower | kFlagCheckUpper)) == 0) {
                ++unchecked;
            }
        }
    }
    EXPECT_GT(unchecked, 0u) << "bsearch bounds should verify";

    auto vm = built->instantiate({});
    for (int64_t i = 0; i < 128; ++i) {
        auto hit = vm->call("bsearch-main", {i * 3});
        ASSERT_TRUE(hit.is_ok());
        EXPECT_EQ(hit.value(), i);
    }
    EXPECT_EQ(vm->call("bsearch-main", {7}).value(), -1);
    EXPECT_EQ(vm->call("bsearch-main", {-5}).value(), -1);
    EXPECT_EQ(vm->call("bsearch-main", {100000}).value(), -1);
}

// --- Buffer marshalling round trip -----------------------------------------

TEST(ProgramTest, CallWithBufferSharesMutationsBothWays) {
    auto built = build_ok(
        "(define (double-all buf : (array int64 8)) : int64"
        "  (let ((i 0) (sum 0))"
        "    (while (< i 8)"
        "      (invariant (>= i 0)) (invariant (<= i 8))"
        "      (array-set! buf i (* 2 (array-ref buf i)))"
        "      (set! sum (+ sum (array-ref buf i)))"
        "      (set! i (+ i 1)))"
        "    sum))");
    for (const VmConfig& config : spot_check_configs()) {
        auto vm = built->instantiate(config);
        int64_t buffer[8] = {1, 2, 3, 4, 5, 6, 7, 8};
        auto result = vm->call_with_buffer("double-all", buffer);
        ASSERT_TRUE(result.is_ok()) << result.status().to_string();
        EXPECT_EQ(result.value(), 72);
        for (int i = 0; i < 8; ++i) {
            EXPECT_EQ(buffer[i], 2 * (i + 1));
        }
    }
}

}  // namespace
}  // namespace bitc::vm
