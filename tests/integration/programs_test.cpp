/**
 * Whole-program integration tests: realistic BitC programs run through
 * the complete pipeline and cross-checked against native C++ oracles,
 * on multiple VM configurations.  The program corpus itself lives in
 * test_programs.hpp so the cross-policy differential suite can reuse
 * it unchanged.
 */
#include <gtest/gtest.h>

#include "tests/integration/test_programs.hpp"
#include "vm/pipeline.hpp"

namespace bitc::vm {
namespace {

using namespace testprog;

std::unique_ptr<BuiltProgram> build_ok(std::string_view source) {
    BuildOptions options;
    options.compiler.elide_proved_checks = true;
    auto built = build_program(source, options);
    EXPECT_TRUE(built.is_ok()) << built.status().to_string();
    return std::move(built).take();
}

std::vector<VmConfig> spot_check_configs() {
    VmConfig unboxed;
    unboxed.heap_words = 1 << 20;
    VmConfig boxed;
    boxed.mode = ValueMode::kBoxed;
    boxed.heap = HeapPolicy::kGenerational;
    boxed.heap_words = 1 << 20;
    VmConfig compact;
    compact.mode = ValueMode::kBoxed;
    compact.heap = HeapPolicy::kMarkCompact;
    compact.heap_words = 1 << 20;
    return {unboxed, boxed, compact};
}

TEST(ProgramTest, QuicksortMatchesStdSortAcrossConfigs) {
    auto built = build_ok(kQuicksort);
    for (const VmConfig& config : spot_check_configs()) {
        auto vm = built->instantiate(config);
        for (int64_t seed : {1, 7, 12345}) {
            auto result = vm->call("sort-main", {seed});
            ASSERT_TRUE(result.is_ok()) << result.status().to_string();
            EXPECT_NE(result.value(), -1) << "output was not sorted";
            EXPECT_EQ(result.value(), native_sort_checksum(seed))
                << "seed " << seed;
        }
    }
}

TEST(ProgramTest, MatrixMultiplyMatchesNative) {
    auto built = build_ok(kMatMul);
    auto vm = built->instantiate(spot_check_configs()[0]);
    for (int64_t n : {1, 2, 5, 8, 16}) {
        auto result = vm->call("matmul-main", {n});
        ASSERT_TRUE(result.is_ok()) << result.status().to_string();
        EXPECT_EQ(result.value(), native_matmul_checksum(n)) << n;
    }
}

TEST(ProgramTest, QueueSimulationMatchesNative) {
    auto built = build_ok(kQueueSim);
    auto vm = built->instantiate({});
    for (int64_t burst : {0, 1, 2, 3, 8, 16}) {
        auto result = vm->call("sim", {1000, burst});
        ASSERT_TRUE(result.is_ok()) << result.status().to_string();
        EXPECT_EQ(result.value(), native_sim(1000, burst))
            << "burst " << burst;
    }
}

TEST(ProgramTest, VerifiedBinarySearch) {
    auto built = build_ok(kBinarySearch);
    // The in-loop array accesses must be statically check-free: the
    // invariants bound mid by lo/hi.
    size_t unchecked = 0;
    for (const auto& fn : built->code.functions) {
        for (const auto& instr : fn.code) {
            if (instr.op == Op::kArrayGet &&
                (instr.b & (kFlagCheckLower | kFlagCheckUpper)) == 0) {
                ++unchecked;
            }
        }
    }
    EXPECT_GT(unchecked, 0u) << "bsearch bounds should verify";

    auto vm = built->instantiate({});
    for (int64_t i = 0; i < 128; ++i) {
        auto hit = vm->call("bsearch-main", {i * 3});
        ASSERT_TRUE(hit.is_ok());
        EXPECT_EQ(hit.value(), native_bsearch(i * 3));
    }
    EXPECT_EQ(vm->call("bsearch-main", {7}).value(), -1);
    EXPECT_EQ(vm->call("bsearch-main", {-5}).value(), -1);
    EXPECT_EQ(vm->call("bsearch-main", {100000}).value(), -1);
}

// --- Buffer marshalling round trip -----------------------------------------

TEST(ProgramTest, CallWithBufferSharesMutationsBothWays) {
    auto built = build_ok(
        "(define (double-all buf : (array int64 8)) : int64"
        "  (let ((i 0) (sum 0))"
        "    (while (< i 8)"
        "      (invariant (>= i 0)) (invariant (<= i 8))"
        "      (array-set! buf i (* 2 (array-ref buf i)))"
        "      (set! sum (+ sum (array-ref buf i)))"
        "      (set! i (+ i 1)))"
        "    sum))");
    for (const VmConfig& config : spot_check_configs()) {
        auto vm = built->instantiate(config);
        int64_t buffer[8] = {1, 2, 3, 4, 5, 6, 7, 8};
        auto result = vm->call_with_buffer("double-all", buffer);
        ASSERT_TRUE(result.is_ok()) << result.status().to_string();
        EXPECT_EQ(result.value(), 72);
        for (int i = 0; i < 8; ++i) {
            EXPECT_EQ(buffer[i], 2 * (i + 1));
        }
    }
}

}  // namespace
}  // namespace bitc::vm
