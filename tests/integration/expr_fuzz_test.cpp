/**
 * Differential fuzzing: random expression trees are rendered to BitC
 * source, run through the full pipeline (with and without the
 * optimiser) on unboxed and boxed VMs, and compared against an
 * independent reference evaluator.  Any divergence is a bug in the
 * lexer, parser, checker, compiler, optimiser or interpreter.
 */
#include <gtest/gtest.h>

#include <string>

#include "support/rng.hpp"
#include "tests/support/test_seed.hpp"
#include "vm/pipeline.hpp"

namespace bitc::vm {
namespace {

/** A random expression over variables a,b,c with its oracle value. */
class ExprGen {
  public:
    explicit ExprGen(Rng& rng) : rng_(rng) {}

    /** Generates source and evaluates it for the given inputs. */
    std::string generate(int depth, const int64_t inputs[3],
                         int64_t* value) {
        return gen_int(depth, inputs, value);
    }

  private:
    // Wrapping semantics identical to the VM's int64 arithmetic.
    static int64_t wrap_add(int64_t a, int64_t b) {
        return static_cast<int64_t>(static_cast<uint64_t>(a) +
                                    static_cast<uint64_t>(b));
    }
    static int64_t wrap_sub(int64_t a, int64_t b) {
        return static_cast<int64_t>(static_cast<uint64_t>(a) -
                                    static_cast<uint64_t>(b));
    }
    static int64_t wrap_mul(int64_t a, int64_t b) {
        return static_cast<int64_t>(static_cast<uint64_t>(a) *
                                    static_cast<uint64_t>(b));
    }

    std::string gen_int(int depth, const int64_t in[3], int64_t* out) {
        if (depth <= 0 || rng_.next_bool(0.25)) {
            if (rng_.next_bool(0.5)) {
                int64_t lit = rng_.next_in(-1000, 1000);
                *out = lit;
                return std::to_string(lit);
            }
            size_t v = rng_.next_below(3);
            *out = in[v];
            return std::string(1, static_cast<char>('a' + v));
        }
        switch (rng_.next_below(6)) {
          case 0: {
            int64_t l;
            int64_t r;
            std::string ls = gen_int(depth - 1, in, &l);
            std::string rs = gen_int(depth - 1, in, &r);
            *out = wrap_add(l, r);
            return "(+ " + ls + " " + rs + ")";
          }
          case 1: {
            int64_t l;
            int64_t r;
            std::string ls = gen_int(depth - 1, in, &l);
            std::string rs = gen_int(depth - 1, in, &r);
            *out = wrap_sub(l, r);
            return "(- " + ls + " " + rs + ")";
          }
          case 2: {
            int64_t l;
            int64_t r;
            std::string ls = gen_int(depth - 1, in, &l);
            std::string rs = gen_int(depth - 1, in, &r);
            *out = wrap_mul(l, r);
            return "(* " + ls + " " + rs + ")";
          }
          case 3: {  // if over a comparison
            int64_t c;
            int64_t t;
            int64_t e;
            std::string cs = gen_bool(depth - 1, in, &c);
            std::string ts = gen_int(depth - 1, in, &t);
            std::string es = gen_int(depth - 1, in, &e);
            *out = c != 0 ? t : e;
            return "(if " + cs + " " + ts + " " + es + ")";
          }
          case 4: {  // bitand
            int64_t l;
            int64_t r;
            std::string ls = gen_int(depth - 1, in, &l);
            std::string rs = gen_int(depth - 1, in, &r);
            *out = l & r;
            return "(bitand " + ls + " " + rs + ")";
          }
          default: {  // guarded division: (/ x (+ 1 (bitand y 255)))
            int64_t num;
            int64_t d;
            std::string ns = gen_int(depth - 1, in, &num);
            std::string ds = gen_int(depth - 1, in, &d);
            int64_t divisor = 1 + (d & 255);
            *out = num / divisor;  // divisor in [1,256]: defined
            return "(/ " + ns + " (+ 1 (bitand " + ds + " 255)))";
          }
        }
    }

    std::string gen_bool(int depth, const int64_t in[3], int64_t* out) {
        if (depth <= 0 || rng_.next_bool(0.3)) {
            int64_t l;
            int64_t r;
            std::string ls = gen_int(0, in, &l);
            std::string rs = gen_int(0, in, &r);
            *out = l < r ? 1 : 0;
            return "(< " + ls + " " + rs + ")";
        }
        switch (rng_.next_below(4)) {
          case 0: {
            int64_t l;
            int64_t r;
            std::string ls = gen_int(depth - 1, in, &l);
            std::string rs = gen_int(depth - 1, in, &r);
            *out = l <= r ? 1 : 0;
            return "(<= " + ls + " " + rs + ")";
          }
          case 1: {
            int64_t l;
            int64_t r;
            std::string ls = gen_int(depth - 1, in, &l);
            std::string rs = gen_int(depth - 1, in, &r);
            *out = l == r ? 1 : 0;
            return "(== " + ls + " " + rs + ")";
          }
          case 2: {
            int64_t l;
            int64_t r;
            std::string ls = gen_bool(depth - 1, in, &l);
            std::string rs = gen_bool(depth - 1, in, &r);
            *out = (l != 0 && r != 0) ? 1 : 0;
            return "(and " + ls + " " + rs + ")";
          }
          default: {
            int64_t v;
            std::string s = gen_bool(depth - 1, in, &v);
            *out = v == 0 ? 1 : 0;
            return "(not " + s + ")";
          }
        }
    }

    Rng& rng_;
};

class ExprFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ExprFuzzTest, PipelineMatchesReferenceEvaluator) {
    // The env override perturbs every instantiation, not just one:
    // the per-param stream stays distinct under a swept seed.
    uint64_t seed = bitc::test::seed_or(13) +
                    static_cast<uint64_t>(GetParam()) * 7919;
    BITC_SEED_TRACE(seed);
    Rng rng(seed);
    for (int trial = 0; trial < 40; ++trial) {
        int64_t inputs[3] = {rng.next_in(-10000, 10000),
                             rng.next_in(-10000, 10000),
                             rng.next_in(-100, 100)};
        ExprGen gen(rng);
        int64_t expected = 0;
        std::string body = gen.generate(4, inputs, &expected);
        std::string source = "(define (f a b c) " + body + ")";

        for (bool fold : {true, false}) {
            BuildOptions options;
            options.compiler.constant_fold = fold;
            options.verify = false;  // pure arithmetic: nothing to prove
            auto built = build_program(source, options);
            ASSERT_TRUE(built.is_ok())
                << built.status().to_string() << "\n" << source;

            for (ValueMode mode :
                 {ValueMode::kUnboxed, ValueMode::kBoxed}) {
                VmConfig config;
                config.mode = mode;
                config.heap = mode == ValueMode::kBoxed
                                  ? HeapPolicy::kSemispace
                                  : HeapPolicy::kRegion;
                config.heap_words = 1 << 16;
                config.stack_slots = 1 << 12;
                auto vm = built.value()->instantiate(config);
                auto result =
                    vm->call("f", {inputs[0], inputs[1], inputs[2]});
                ASSERT_TRUE(result.is_ok())
                    << result.status().to_string() << "\n" << source;
                EXPECT_EQ(result.value(), expected)
                    << "mode=" << value_mode_name(mode)
                    << " fold=" << fold << "\nsource: " << source;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprFuzzTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace bitc::vm
