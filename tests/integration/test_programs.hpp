/**
 * @file
 * Shared whole-program corpus for integration and differential tests:
 * four realistic BitC programs plus native C++ oracles computing the
 * same answers.  programs_test.cpp runs them on spot-check configs;
 * the observability cross-policy test runs them across every heap
 * policy x dispatch mode combination.
 */
#ifndef BITC_TESTS_INTEGRATION_TEST_PROGRAMS_HPP
#define BITC_TESTS_INTEGRATION_TEST_PROGRAMS_HPP

#include <algorithm>
#include <cstdint>
#include <vector>

namespace bitc::vm::testprog {

// --- Quicksort -----------------------------------------------------------

inline constexpr const char* kQuicksort = R"bitc(
(define (swap a : (array int64 256) i : int64 j : int64) : unit
  (require (>= i 0)) (require (< i 256))
  (require (>= j 0)) (require (< j 256))
  (let ((t (array-ref a i)))
    (array-set! a i (array-ref a j))
    (array-set! a j t)))

(define (partition a : (array int64 256) lo : int64 hi : int64) : int64
  (require (>= lo 0)) (require (< hi 256)) (require (<= lo hi))
  (ensure (>= result lo))
  (let ((pivot (array-ref a hi)) (i lo) (j lo))
    (while (< j hi)
      (invariant (>= i lo)) (invariant (<= i j))
      (invariant (>= j lo)) (invariant (<= j hi))
      (if (< (array-ref a j) pivot)
          (begin (swap a i j) (set! i (+ i 1)))
          (unit))
      (set! j (+ j 1)))
    (swap a i hi)
    i))

(define (qsort a : (array int64 256) lo : int64 hi : int64) : unit
  (require (>= lo 0)) (require (< hi 256))
  (if (< lo hi)
      (let ((p (partition a lo hi)))
        (if (> p lo) (qsort a lo (- p 1)) (unit))
        (if (< p hi) (qsort a (+ p 1) hi) (unit)))
      (unit)))

; Fill with an LCG, sort, and return a positional checksum that any
; misplacement would change.
(define (sort-main seed : int64) : int64
  (let ((a (array-make 256 0)) (i 0) (x seed))
    (while (< i 256)
      (invariant (>= i 0)) (invariant (<= i 256))
      (set! x (bitand (+ (* x 6364136223846793005) 1442695040888963407)
                      4294967295))
      (array-set! a i x)
      (set! i (+ i 1)))
    (qsort a 0 255)
    (let ((check 0) (sorted 1))
      (set! i 0)
      (while (< i 256)
        (invariant (>= i 0)) (invariant (<= i 256))
        (set! check (bitand (+ (* check 31) (array-ref a i))
                            1152921504606846975))
        ; note: 'and' is strict, so guard the i-1 access with nesting
        (if (> i 0)
            (if (> (array-ref a (- i 1)) (array-ref a i))
                (set! sorted 0)
                (unit))
            (unit))
        (set! i (+ i 1)))
      (if (== sorted 1) check -1))))
)bitc";

inline int64_t native_sort_checksum(int64_t seed) {
    std::vector<int64_t> a(256);
    int64_t x = seed;
    for (auto& v : a) {
        x = static_cast<int64_t>(
            (static_cast<uint64_t>(x) * 6364136223846793005ull +
             1442695040888963407ull) &
            4294967295ull);
        v = x;
    }
    std::sort(a.begin(), a.end());
    int64_t check = 0;
    for (int64_t v : a) {
        check = static_cast<int64_t>(
            (static_cast<uint64_t>(check) * 31 +
             static_cast<uint64_t>(v)) &
            1152921504606846975ull);
    }
    return check;
}

// --- Matrix multiply --------------------------------------------------------

inline constexpr const char* kMatMul = R"bitc(
(define (matmul-main n : int64) : int64
  (require (>= n 1)) (require (<= n 16))
  (let ((a (array-make 256 0)) (b (array-make 256 0))
        (c (array-make 256 0)) (i 0))
    ; a[i][j] = i + j, b[i][j] = i * j  (flattened n x n)
    (while (< i n)
      (invariant (>= i 0))
      (let ((j 0))
        (while (< j n)
          (invariant (>= j 0))
          (array-set! a (+ (* i 16) j) (+ i j))
          (array-set! b (+ (* i 16) j) (* i j))
          (set! j (+ j 1))))
      (set! i (+ i 1)))
    ; c = a * b
    (set! i 0)
    (while (< i n)
      (invariant (>= i 0))
      (let ((j 0))
        (while (< j n)
          (invariant (>= j 0))
          (let ((acc 0) (k 0))
            (while (< k n)
              (invariant (>= k 0))
              (set! acc (+ acc (* (array-ref a (+ (* i 16) k))
                                  (array-ref b (+ (* k 16) j)))))
              (set! k (+ k 1)))
            (array-set! c (+ (* i 16) j) acc))
          (set! j (+ j 1))))
      (set! i (+ i 1)))
    ; checksum
    (let ((check 0))
      (set! i 0)
      (while (< i n)
        (invariant (>= i 0))
        (let ((j 0))
          (while (< j n)
            (invariant (>= j 0))
            (set! check (+ check (* (+ i 1)
                                    (array-ref c (+ (* i 16) j)))))
            (set! j (+ j 1))))
        (set! i (+ i 1)))
      check)))
)bitc";

inline int64_t native_matmul_checksum(int64_t n) {
    int64_t a[16][16] = {};
    int64_t b[16][16] = {};
    int64_t c[16][16] = {};
    for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            a[i][j] = i + j;
            b[i][j] = i * j;
        }
    }
    for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            for (int64_t k = 0; k < n; ++k) {
                c[i][j] += a[i][k] * b[k][j];
            }
        }
    }
    int64_t check = 0;
    for (int64_t i = 0; i < n; ++i) {
        for (int64_t j = 0; j < n; ++j) {
            check += (i + 1) * c[i][j];
        }
    }
    return check;
}

// --- A queue simulation (producer/consumer over a ring) -------------------

inline constexpr const char* kQueueSim = R"bitc(
; Single-threaded producer/consumer simulation: producer emits bursts,
; consumer drains at fixed rate; returns max queue depth reached.
(define (sim steps : int64 burst : int64) : int64
  (require (>= steps 0)) (require (>= burst 0)) (require (<= burst 16))
  (let ((depth 0) (max-depth 0) (t 0))
    (while (< t steps)
      (invariant (>= t 0)) (invariant (>= depth 0))
      (invariant (>= max-depth 0))
      ; produce a burst every 4th tick
      (if (== (bitand t 3) 0)
          (set! depth (+ depth burst))
          (unit))
      ; consume 2 per tick
      (if (>= depth 2) (set! depth (- depth 2)) (set! depth 0))
      (if (> depth max-depth) (set! max-depth depth) (unit))
      (set! t (+ t 1)))
    max-depth))
)bitc";

inline int64_t native_sim(int64_t steps, int64_t burst) {
    int64_t depth = 0;
    int64_t max_depth = 0;
    for (int64_t t = 0; t < steps; ++t) {
        if ((t & 3) == 0) depth += burst;
        depth = depth >= 2 ? depth - 2 : 0;
        max_depth = std::max(max_depth, depth);
    }
    return max_depth;
}

// --- Verified binary search -------------------------------------------------

inline constexpr const char* kBinarySearch = R"bitc(
(define (bsearch a : (array int64 128) target : int64) : int64
  (ensure (>= result -1)) (ensure (< result 128))
  (let ((lo 0) (hi 128) (found -1))
    (while (< lo hi)
      (invariant (>= lo 0)) (invariant (<= lo 128))
      (invariant (<= hi 128)) (invariant (>= hi 0))
      (invariant (>= found -1)) (invariant (< found 128))
      (let ((mid (/ (+ lo hi) 2)))
        (assert (>= mid 0)) (assert (< mid 128))
        (if (== (array-ref a mid) target)
            (begin (set! found mid) (set! lo hi))
            (if (< (array-ref a mid) target)
                (set! lo (+ mid 1))
                (set! hi mid)))))
    found))

(define (bsearch-main q : int64) : int64
  (let ((a (array-make 128 0)) (i 0))
    (while (< i 128)
      (invariant (>= i 0)) (invariant (<= i 128))
      (array-set! a i (* i 3))
      (set! i (+ i 1)))
    (bsearch a q)))
)bitc";

inline int64_t native_bsearch(int64_t q) {
    // a[i] = 3i for i in [0, 128); return the index or -1.
    return q >= 0 && q < 3 * 128 && q % 3 == 0 ? q / 3 : -1;
}

}  // namespace bitc::vm::testprog

#endif  // BITC_TESTS_INTEGRATION_TEST_PROGRAMS_HPP
