#include "lang/parser.hpp"

#include <gtest/gtest.h>

namespace bitc::lang {
namespace {

Program parse_ok(std::string_view source) {
    DiagnosticEngine diags;
    auto program = parse_program(source, diags);
    EXPECT_TRUE(program.is_ok()) << diags.to_string();
    return std::move(program).take();
}

std::string parse_error_message(std::string_view source) {
    DiagnosticEngine diags;
    auto program = parse_program(source, diags);
    EXPECT_FALSE(program.is_ok());
    return diags.first_error();
}

TEST(ParserTest, SimpleFunction) {
    Program p = parse_ok("(define (inc x : int32) : int32 (+ x 1))");
    ASSERT_EQ(p.functions.size(), 1u);
    const FunctionDecl& f = p.functions[0];
    EXPECT_EQ(f.name, "inc");
    ASSERT_EQ(f.params.size(), 1u);
    EXPECT_EQ(f.params[0].name, "x");
    ASSERT_NE(f.params[0].declared_type, nullptr);
    EXPECT_EQ(f.params[0].declared_type->to_string(), "int32");
    ASSERT_NE(f.declared_result, nullptr);
    EXPECT_EQ(f.declared_result->to_string(), "int32");
    ASSERT_EQ(f.body.size(), 1u);
    EXPECT_EQ(f.body[0]->to_string(), "(+ x 1)");
}

TEST(ParserTest, UnannotatedParams) {
    Program p = parse_ok("(define (id x) x)");
    EXPECT_EQ(p.functions[0].params[0].declared_type, nullptr);
    EXPECT_EQ(p.functions[0].declared_result, nullptr);
}

TEST(ParserTest, MixedAnnotations) {
    Program p = parse_ok("(define (f a b : int8 c) a)");
    const auto& params = p.functions[0].params;
    ASSERT_EQ(params.size(), 3u);
    EXPECT_EQ(params[0].declared_type, nullptr);
    ASSERT_NE(params[1].declared_type, nullptr);
    EXPECT_EQ(params[1].declared_type->to_string(), "int8");
    EXPECT_EQ(params[2].declared_type, nullptr);
}

TEST(ParserTest, ContractClauses) {
    Program p = parse_ok(
        "(define (safe-div a b) : int64"
        "  (require (!= b 0))"
        "  (ensure (>= result 0))"
        "  (/ a b))");
    const FunctionDecl& f = p.functions[0];
    ASSERT_EQ(f.requires_clauses.size(), 1u);
    ASSERT_EQ(f.ensures_clauses.size(), 1u);
    EXPECT_EQ(f.requires_clauses[0]->to_string(), "(!= b 0)");
    EXPECT_EQ(f.ensures_clauses[0]->to_string(), "(>= result 0)");
    ASSERT_EQ(f.body.size(), 1u);
}

TEST(ParserTest, LetWithAnnotations) {
    Program p = parse_ok(
        "(define (f) (let ((x 1) (y : int8 2)) (+ x y)))");
    Expr* let = p.functions[0].body[0];
    ASSERT_EQ(let->kind, ExprKind::kLet);
    ASSERT_EQ(let->bindings.size(), 2u);
    EXPECT_EQ(let->bindings[0].declared_type, nullptr);
    ASSERT_NE(let->bindings[1].declared_type, nullptr);
    EXPECT_EQ(let->bindings[1].declared_type->to_string(), "int8");
}

TEST(ParserTest, WhileWithInvariant) {
    Program p = parse_ok(
        "(define (f) (let ((i 0))"
        "  (while (< i 10) (invariant (>= i 0)) (set! i (+ i 1)))))");
    Expr* let = p.functions[0].body[0];
    Expr* loop = let->body[0];
    ASSERT_EQ(loop->kind, ExprKind::kWhile);
    ASSERT_EQ(loop->invariants.size(), 1u);
    ASSERT_EQ(loop->body.size(), 1u);
    EXPECT_EQ(loop->body[0]->kind, ExprKind::kSet);
}

TEST(ParserTest, IfWithoutElseGetsUnit) {
    Program p = parse_ok("(define (f b : bool) (if b (unit)))");
    Expr* branch = p.functions[0].body[0];
    ASSERT_EQ(branch->kind, ExprKind::kIf);
    ASSERT_EQ(branch->args.size(), 3u);
    EXPECT_EQ(branch->args[2]->kind, ExprKind::kUnitLit);
}

TEST(ParserTest, ArrayForms) {
    Program p = parse_ok(
        "(define (f a : (array int32 8))"
        "  (array-set! a 0 (array-ref a 1))"
        "  (array-len a))");
    EXPECT_EQ(p.functions[0].params[0].declared_type->to_string(),
              "(array int32 8)");
    EXPECT_EQ(p.functions[0].body[0]->kind, ExprKind::kArraySet);
    EXPECT_EQ(p.functions[0].body[1]->kind, ExprKind::kArrayLen);
}

TEST(ParserTest, UnaryMinusBecomesNeg) {
    Program p = parse_ok("(define (f x) (- x))");
    Expr* e = p.functions[0].body[0];
    ASSERT_EQ(e->kind, ExprKind::kPrim);
    EXPECT_EQ(e->prim, PrimOp::kNeg);
    Program p2 = parse_ok("(define (f x y) (- x y))");
    EXPECT_EQ(p2.functions[0].body[0]->prim, PrimOp::kSub);
}

TEST(ParserTest, MultipleDefines) {
    Program p = parse_ok(
        "(define (f) 1)\n(define (g) (f))\n(define (h) 3)");
    EXPECT_EQ(p.functions.size(), 3u);
    EXPECT_EQ(p.find_function("g"), 1);
    EXPECT_EQ(p.find_function("missing"), -1);
}

// --- Error cases --------------------------------------------------------

TEST(ParserTest, TopLevelMustBeDefine) {
    EXPECT_NE(parse_error_message("(+ 1 2)").find("define"),
              std::string::npos);
}

TEST(ParserTest, EmptyBodyRejected) {
    EXPECT_NE(parse_error_message("(define (f))").find("body"),
              std::string::npos);
    EXPECT_NE(parse_error_message("(define (f) (require #t))")
                  .find("empty body"),
              std::string::npos);
}

TEST(ParserTest, WrongPrimArity) {
    EXPECT_NE(parse_error_message("(define (f) (+ 1 2 3))")
                  .find("operand"),
              std::string::npos);
    EXPECT_NE(parse_error_message("(define (f) (not #t #f))")
                  .find("operand"),
              std::string::npos);
}

TEST(ParserTest, BadArrayType) {
    EXPECT_FALSE(
        parse_error_message("(define (f a : (array int32)) a)").empty());
}

TEST(ParserTest, UnknownNamedType) {
    EXPECT_NE(parse_error_message("(define (f x : float99) x)")
                  .find("unknown type"),
              std::string::npos);
    EXPECT_NE(parse_error_message("(define (f x : uint65) x)")
                  .find("unknown type"),
              std::string::npos);
}

TEST(ParserTest, EmptyApplicationRejected) {
    EXPECT_NE(parse_error_message("(define (f) ())").find("empty"),
              std::string::npos);
}

TEST(ParserTest, SetRequiresSymbolTarget) {
    EXPECT_FALSE(
        parse_error_message("(define (f) (set! 3 4))").empty());
}

TEST(ParserTest, ProgramToStringRoundTrips) {
    const char* source =
        "(define (fib n : int64) : int64 "
        "(if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))";
    Program p1 = parse_ok(source);
    std::string rendered = p1.to_string();
    Program p2 = parse_ok(rendered);
    EXPECT_EQ(rendered, p2.to_string());
}

}  // namespace
}  // namespace bitc::lang
