#include "lang/resolver.hpp"

#include <gtest/gtest.h>

#include "lang/parser.hpp"

namespace bitc::lang {
namespace {

Program resolve_ok(std::string_view source) {
    DiagnosticEngine diags;
    auto program = parse_program(source, diags);
    EXPECT_TRUE(program.is_ok()) << diags.to_string();
    Program p = std::move(program).take();
    Status s = resolve_program(p, diags);
    EXPECT_TRUE(s.is_ok()) << diags.to_string();
    return p;
}

std::string resolve_error(std::string_view source) {
    DiagnosticEngine diags;
    auto program = parse_program(source, diags);
    EXPECT_TRUE(program.is_ok()) << diags.to_string();
    Program p = std::move(program).take();
    Status s = resolve_program(p, diags);
    EXPECT_FALSE(s.is_ok());
    return diags.first_error();
}

TEST(ResolverTest, ParamsGetSequentialSlots) {
    Program p = resolve_ok("(define (f a b c) c)");
    EXPECT_EQ(p.functions[0].params[0].slot, 0);
    EXPECT_EQ(p.functions[0].params[1].slot, 1);
    EXPECT_EQ(p.functions[0].params[2].slot, 2);
    EXPECT_EQ(p.functions[0].num_locals, 3);
    EXPECT_EQ(p.functions[0].body[0]->local_slot, 2);
}

TEST(ResolverTest, LetBindingsExtendSlots) {
    Program p = resolve_ok("(define (f a) (let ((x 1) (y 2)) y))");
    Expr* let = p.functions[0].body[0];
    EXPECT_EQ(let->bindings[0].slot, 1);
    EXPECT_EQ(let->bindings[1].slot, 2);
    EXPECT_EQ(p.functions[0].num_locals, 3);
    EXPECT_EQ(let->body[0]->local_slot, 2);
}

TEST(ResolverTest, InnerLetShadowsOuter) {
    Program p = resolve_ok(
        "(define (f x) (let ((x 2)) (let ((x 3)) x)))");
    Expr* outer = p.functions[0].body[0];
    Expr* inner = outer->body[0];
    EXPECT_EQ(inner->body[0]->local_slot, inner->bindings[0].slot);
    EXPECT_NE(inner->bindings[0].slot, outer->bindings[0].slot);
}

TEST(ResolverTest, LetInitSeesOuterScopeNotItself) {
    Program p = resolve_ok("(define (f x) (let ((x (+ x 1))) x))");
    Expr* let = p.functions[0].body[0];
    // The init's x is the parameter (slot 0), not the new binding.
    EXPECT_EQ(let->bindings[0].init->args[0]->local_slot, 0);
    EXPECT_EQ(let->body[0]->local_slot, let->bindings[0].slot);
}

TEST(ResolverTest, CallsResolveToFunctionIndices) {
    Program p = resolve_ok(
        "(define (f) (g))\n(define (g) 1)");
    EXPECT_EQ(p.functions[0].body[0]->callee_index, 1)
        << "forward reference must resolve";
}

TEST(ResolverTest, RecursionResolves) {
    Program p = resolve_ok("(define (f n) (if (< n 1) 0 (f (- n 1))))");
    Expr* if_expr = p.functions[0].body[0];
    EXPECT_EQ(if_expr->args[2]->callee_index, 0);
}

TEST(ResolverTest, ResultVisibleOnlyInEnsures) {
    Program p = resolve_ok(
        "(define (f x) : int64 (ensure (== result x)) x)");
    Expr* ensure = p.functions[0].ensures_clauses[0];
    EXPECT_EQ(ensure->args[0]->local_slot, kResultSlot);
}

TEST(ResolverTest, UnboundVariableReported) {
    EXPECT_NE(resolve_error("(define (f) y)").find("unbound"),
              std::string::npos);
}

TEST(ResolverTest, ResultOutsideEnsuresIsUnbound) {
    EXPECT_NE(resolve_error("(define (f) result)").find("unbound"),
              std::string::npos);
}

TEST(ResolverTest, UnknownCalleeReported) {
    EXPECT_NE(resolve_error("(define (f) (nope 1))").find("unknown"),
              std::string::npos);
}

TEST(ResolverTest, ArityMismatchReported) {
    EXPECT_NE(resolve_error("(define (f x) x)\n(define (g) (f 1 2))")
                  .find("argument"),
              std::string::npos);
}

TEST(ResolverTest, DuplicateFunctionReported) {
    EXPECT_NE(resolve_error("(define (f) 1)\n(define (f) 2)")
                  .find("duplicate"),
              std::string::npos);
}

TEST(ResolverTest, DuplicateParameterReported) {
    EXPECT_NE(resolve_error("(define (f x x) x)").find("duplicate"),
              std::string::npos);
}

TEST(ResolverTest, FunctionAsValueReported) {
    EXPECT_NE(resolve_error("(define (f) 1)\n(define (g) f)")
                  .find("first-class"),
              std::string::npos);
}

TEST(ResolverTest, SetOfUnboundReported) {
    EXPECT_NE(resolve_error("(define (f) (set! q 1))").find("unbound"),
              std::string::npos);
}

TEST(ResolverTest, SetOfResultReported) {
    EXPECT_NE(resolve_error("(define (f) : int64 "
                            "(ensure (begin (set! result 2) #t)) 1)")
                  .find("read-only"),
              std::string::npos);
}

}  // namespace
}  // namespace bitc::lang
