#include "lang/lexer.hpp"

#include <gtest/gtest.h>

namespace bitc::lang {
namespace {

std::vector<Token> lex_ok(std::string_view source) {
    DiagnosticEngine diags;
    auto tokens = lex(source, diags);
    EXPECT_FALSE(diags.has_errors()) << diags.to_string();
    return tokens;
}

TEST(LexerTest, EmptyInputYieldsEof) {
    auto tokens = lex_ok("");
    ASSERT_EQ(tokens.size(), 1u);
    EXPECT_EQ(tokens[0].kind, TokenKind::kEof);
}

TEST(LexerTest, ParensAndSymbols) {
    auto tokens = lex_ok("(define foo)");
    ASSERT_EQ(tokens.size(), 5u);
    EXPECT_EQ(tokens[0].kind, TokenKind::kLParen);
    EXPECT_EQ(tokens[1].kind, TokenKind::kSymbol);
    EXPECT_EQ(tokens[1].text, "define");
    EXPECT_EQ(tokens[2].text, "foo");
    EXPECT_EQ(tokens[3].kind, TokenKind::kRParen);
}

TEST(LexerTest, IntegerLiterals) {
    auto tokens = lex_ok("0 42 1000000 0xff");
    EXPECT_EQ(tokens[0].int_value, 0);
    EXPECT_EQ(tokens[1].int_value, 42);
    EXPECT_EQ(tokens[2].int_value, 1000000);
    EXPECT_EQ(tokens[3].int_value, 255);
}

TEST(LexerTest, NegativeLiteralVsMinusSymbol) {
    auto tokens = lex_ok("-5 - -x");
    EXPECT_EQ(tokens[0].kind, TokenKind::kInt);
    EXPECT_EQ(tokens[0].int_value, -5);
    EXPECT_EQ(tokens[1].kind, TokenKind::kSymbol);
    EXPECT_EQ(tokens[1].text, "-");
    EXPECT_EQ(tokens[2].kind, TokenKind::kSymbol);
    EXPECT_EQ(tokens[2].text, "-x");
}

TEST(LexerTest, Booleans) {
    auto tokens = lex_ok("#t #f");
    EXPECT_EQ(tokens[0].kind, TokenKind::kBool);
    EXPECT_EQ(tokens[0].int_value, 1);
    EXPECT_EQ(tokens[1].int_value, 0);
}

TEST(LexerTest, OperatorSymbols) {
    auto tokens = lex_ok("+ - <= == set! array-ref");
    EXPECT_EQ(tokens[0].text, "+");
    EXPECT_EQ(tokens[2].text, "<=");
    EXPECT_EQ(tokens[3].text, "==");
    EXPECT_EQ(tokens[4].text, "set!");
    EXPECT_EQ(tokens[5].text, "array-ref");
}

TEST(LexerTest, ColonIsItsOwnToken) {
    auto tokens = lex_ok("x : int32");
    EXPECT_EQ(tokens[0].text, "x");
    EXPECT_EQ(tokens[1].kind, TokenKind::kColon);
    EXPECT_EQ(tokens[2].text, "int32");
}

TEST(LexerTest, CommentsAreSkipped) {
    auto tokens = lex_ok("a ; this is a comment\nb");
    ASSERT_EQ(tokens.size(), 3u);
    EXPECT_EQ(tokens[0].text, "a");
    EXPECT_EQ(tokens[1].text, "b");
}

TEST(LexerTest, TracksLineAndColumn) {
    auto tokens = lex_ok("a\n  b");
    EXPECT_EQ(tokens[0].span.begin.line, 1u);
    EXPECT_EQ(tokens[0].span.begin.column, 1u);
    EXPECT_EQ(tokens[1].span.begin.line, 2u);
    EXPECT_EQ(tokens[1].span.begin.column, 3u);
}

TEST(LexerTest, BadCharacterIsReported) {
    DiagnosticEngine diags;
    auto tokens = lex("a $ b", diags);
    EXPECT_TRUE(diags.has_errors());
    // Stream remains usable around the error.
    EXPECT_EQ(tokens[0].text, "a");
    EXPECT_EQ(tokens[1].text, "b");
}

TEST(LexerTest, BadHashIsReported) {
    DiagnosticEngine diags;
    lex("#q", diags);
    EXPECT_TRUE(diags.has_errors());
}

}  // namespace
}  // namespace bitc::lang
