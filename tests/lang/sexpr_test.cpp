#include "lang/sexpr.hpp"

#include <gtest/gtest.h>

#include "lang/lexer.hpp"

namespace bitc::lang {
namespace {

std::vector<const SExpr*> read_ok(std::string_view source,
                                  SExprPool& pool) {
    DiagnosticEngine diags;
    auto tokens = lex(source, diags);
    auto forms = read_sexprs(tokens, pool, diags);
    EXPECT_FALSE(diags.has_errors()) << diags.to_string();
    return forms;
}

TEST(SExprTest, ReadsAtoms) {
    SExprPool pool;
    auto forms = read_ok("foo 42 #t", pool);
    ASSERT_EQ(forms.size(), 3u);
    EXPECT_TRUE(forms[0]->is_symbol("foo"));
    EXPECT_EQ(forms[1]->kind, SExprKind::kInt);
    EXPECT_EQ(forms[1]->int_value, 42);
    EXPECT_EQ(forms[2]->kind, SExprKind::kBool);
}

TEST(SExprTest, ReadsNestedLists) {
    SExprPool pool;
    auto forms = read_ok("(a (b c) d)", pool);
    ASSERT_EQ(forms.size(), 1u);
    const SExpr* list = forms[0];
    ASSERT_TRUE(list->is_list());
    ASSERT_EQ(list->size(), 3u);
    EXPECT_EQ(list->head(), "a");
    EXPECT_TRUE(list->at(1)->is_list());
    EXPECT_EQ(list->at(1)->head(), "b");
    EXPECT_TRUE(list->at(2)->is_symbol("d"));
}

TEST(SExprTest, RoundTripsToString) {
    SExprPool pool;
    auto forms = read_ok("(define (f x) (+ x 1))", pool);
    ASSERT_EQ(forms.size(), 1u);
    EXPECT_EQ(forms[0]->to_string(), "(define (f x) (+ x 1))");
}

TEST(SExprTest, UnclosedParenReported) {
    SExprPool pool;
    DiagnosticEngine diags;
    auto tokens = lex("(a (b)", diags);
    read_sexprs(tokens, pool, diags);
    EXPECT_TRUE(diags.has_errors());
    EXPECT_NE(diags.first_error().find("unclosed"), std::string::npos);
}

TEST(SExprTest, StrayCloseParenReported) {
    SExprPool pool;
    DiagnosticEngine diags;
    auto tokens = lex("a ) b", diags);
    auto forms = read_sexprs(tokens, pool, diags);
    EXPECT_TRUE(diags.has_errors());
    EXPECT_EQ(forms.size(), 2u);  // a and b still read
}

TEST(SExprTest, ColonBecomesSymbol) {
    SExprPool pool;
    auto forms = read_ok("(x : int32)", pool);
    ASSERT_EQ(forms[0]->size(), 3u);
    EXPECT_TRUE(forms[0]->at(1)->is_symbol(":"));
}

TEST(SExprTest, EmptyListHasEmptyHead) {
    SExprPool pool;
    auto forms = read_ok("()", pool);
    ASSERT_EQ(forms.size(), 1u);
    EXPECT_TRUE(forms[0]->is_list());
    EXPECT_EQ(forms[0]->head(), "");
}

}  // namespace
}  // namespace bitc::lang
