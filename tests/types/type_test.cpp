#include "types/type.hpp"

#include <gtest/gtest.h>

namespace bitc::types {
namespace {

TEST(TypeStoreTest, RendersTypes) {
    TypeStore store;
    EXPECT_EQ(store.to_string(store.int_type(32, true)), "int32");
    EXPECT_EQ(store.to_string(store.int_type(13, false)), "uint13");
    EXPECT_EQ(store.to_string(store.bool_type()), "bool");
    EXPECT_EQ(store.to_string(store.unit_type()), "unit");
    Type* arr = store.array_type(store.int_type(8, true), 10);
    EXPECT_EQ(store.to_string(arr), "(array int8 10)");
    Type* f = store.func_type({store.int64_type()}, store.bool_type());
    EXPECT_EQ(store.to_string(f), "(-> int64 bool)");
}

TEST(TypeStoreTest, UnifyIdenticalConcrete) {
    TypeStore store;
    EXPECT_TRUE(
        store.unify(store.int_type(32, true), store.int_type(32, true))
            .is_ok());
    EXPECT_TRUE(store.unify(store.bool_type(), store.bool_type()).is_ok());
}

TEST(TypeStoreTest, UnifyMismatchedWidthsFails) {
    TypeStore store;
    EXPECT_FALSE(
        store.unify(store.int_type(32, true), store.int_type(64, true))
            .is_ok());
    EXPECT_FALSE(
        store.unify(store.int_type(32, true), store.int_type(32, false))
            .is_ok());
}

TEST(TypeStoreTest, VariableBindsAndPrunes) {
    TypeStore store;
    Type* v = store.fresh_var();
    ASSERT_TRUE(store.unify(v, store.int_type(16, true)).is_ok());
    EXPECT_EQ(store.to_string(v), "int16");
    EXPECT_EQ(store.prune(v)->kind, TypeKind::kInt);
}

TEST(TypeStoreTest, TransitiveVariableChains) {
    TypeStore store;
    Type* a = store.fresh_var();
    Type* b = store.fresh_var();
    Type* c = store.fresh_var();
    ASSERT_TRUE(store.unify(a, b).is_ok());
    ASSERT_TRUE(store.unify(b, c).is_ok());
    ASSERT_TRUE(store.unify(c, store.bool_type()).is_ok());
    EXPECT_EQ(store.prune(a), store.bool_type());
}

TEST(TypeStoreTest, OccursCheckRejectsInfiniteType) {
    TypeStore store;
    Type* v = store.fresh_var();
    Type* arr = store.array_type(v, 4);
    auto status = store.unify(v, arr);
    ASSERT_FALSE(status.is_ok());
    EXPECT_NE(status.message().find("infinite"), std::string::npos);
}

TEST(TypeStoreTest, NumericVarAcceptsIntsOnly) {
    TypeStore store;
    Type* n = store.fresh_var(/*numeric=*/true);
    EXPECT_FALSE(store.unify(n, store.bool_type()).is_ok());
    Type* n2 = store.fresh_var(/*numeric=*/true);
    EXPECT_TRUE(store.unify(n2, store.int_type(8, false)).is_ok());
}

TEST(TypeStoreTest, NumericConstraintPropagatesThroughVars) {
    TypeStore store;
    Type* n = store.fresh_var(/*numeric=*/true);
    Type* plain = store.fresh_var();
    ASSERT_TRUE(store.unify(n, plain).is_ok());
    // plain inherited the numeric constraint.
    EXPECT_FALSE(store.unify(plain, store.bool_type()).is_ok());
}

TEST(TypeStoreTest, ArraySizesMustAgreeWhenKnown) {
    TypeStore store;
    Type* a = store.array_type(store.int64_type(), 8);
    Type* b = store.array_type(store.int64_type(), 9);
    EXPECT_FALSE(store.unify(a, b).is_ok());
    Type* c = store.array_type(store.int64_type(), kUnknownSize);
    EXPECT_TRUE(store.unify(a, c).is_ok());
}

TEST(TypeStoreTest, FuncArityMismatchFails) {
    TypeStore store;
    Type* f1 = store.func_type({store.int64_type()}, store.unit_type());
    Type* f2 = store.func_type(
        {store.int64_type(), store.int64_type()}, store.unit_type());
    auto status = store.unify(f1, f2);
    ASSERT_FALSE(status.is_ok());
    EXPECT_NE(status.message().find("arity"), std::string::npos);
}

TEST(TypeStoreTest, DefaultingNumericToInt64PlainToUnit) {
    TypeStore store;
    Type* n = store.fresh_var(/*numeric=*/true);
    Type* p = store.fresh_var();
    store.default_free_vars(n);
    store.default_free_vars(p);
    EXPECT_EQ(store.to_string(n), "int64");
    EXPECT_EQ(store.to_string(p), "unit");
}

TEST(TypeStoreTest, InstantiationMakesFreshCopies) {
    TypeStore store;
    Type* v = store.fresh_var();
    TypeScheme scheme{{v}, store.func_type({v}, v)};
    Type* inst1 = store.instantiate(scheme);
    Type* inst2 = store.instantiate(scheme);
    // Unifying one instance's domain must not constrain the other.
    ASSERT_TRUE(
        store.unify(inst1->params[0], store.bool_type()).is_ok());
    EXPECT_TRUE(
        store.unify(inst2->params[0], store.int64_type()).is_ok());
    EXPECT_EQ(store.prune(inst1->result), store.bool_type());
}

TEST(TypeStoreTest, InstantiationPreservesNumericFlag) {
    TypeStore store;
    Type* n = store.fresh_var(/*numeric=*/true);
    TypeScheme scheme{{n}, store.func_type({n}, n)};
    Type* inst = store.instantiate(scheme);
    EXPECT_FALSE(
        store.unify(inst->params[0], store.bool_type()).is_ok());
}

TEST(TypeStoreTest, FreeVarsCollectsUnboundOnly) {
    TypeStore store;
    Type* a = store.fresh_var();
    Type* b = store.fresh_var();
    ASSERT_TRUE(store.unify(b, store.bool_type()).is_ok());
    Type* f = store.func_type({a, b}, a);
    std::vector<Type*> out;
    store.free_vars(f, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], a);
}

}  // namespace
}  // namespace bitc::types
