#include "types/checker.hpp"

#include <gtest/gtest.h>

#include "lang/parser.hpp"
#include "lang/resolver.hpp"

namespace bitc::types {
namespace {

TypedProgram check_ok(std::string_view source) {
    DiagnosticEngine diags;
    auto parsed = lang::parse_program(source, diags);
    EXPECT_TRUE(parsed.is_ok()) << diags.to_string();
    lang::Program program = std::move(parsed).take();
    EXPECT_TRUE(lang::resolve_program(program, diags).is_ok())
        << diags.to_string();
    auto typed = check_program(std::move(program), diags);
    EXPECT_TRUE(typed.is_ok()) << diags.to_string();
    return std::move(typed).take();
}

std::string check_error(std::string_view source) {
    DiagnosticEngine diags;
    auto parsed = lang::parse_program(source, diags);
    EXPECT_TRUE(parsed.is_ok()) << diags.to_string();
    lang::Program program = std::move(parsed).take();
    EXPECT_TRUE(lang::resolve_program(program, diags).is_ok())
        << diags.to_string();
    auto typed = check_program(std::move(program), diags);
    EXPECT_FALSE(typed.is_ok());
    return diags.first_error();
}

/** Rendered signature of function @p index. */
std::string signature(TypedProgram& tp, size_t index) {
    const FunctionType& ft = tp.function_type(index);
    std::string out = "(->";
    for (Type* p : ft.params) {
        out += ' ';
        out += tp.store().to_string(p);
    }
    out += ' ';
    out += tp.store().to_string(ft.result);
    out += ')';
    return out;
}

TEST(CheckerTest, AnnotatedSignatureIsKept) {
    auto tp = check_ok("(define (inc x : int32) : int32 (+ x 1))");
    EXPECT_EQ(signature(tp, 0), "(-> int32 int32)");
}

TEST(CheckerTest, UnannotatedArithmeticDefaultsToInt64) {
    auto tp = check_ok("(define (double x) (+ x x))");
    EXPECT_EQ(signature(tp, 0), "(-> int64 int64)");
}

TEST(CheckerTest, WidthsPropagateFromAnnotations) {
    auto tp = check_ok("(define (f x : uint13) (+ x 1))");
    EXPECT_EQ(signature(tp, 0), "(-> uint13 uint13)");
}

TEST(CheckerTest, ReturnAnnotationConstrainsBody) {
    auto tp = check_ok("(define (f x) : int8 (+ x 1))");
    EXPECT_EQ(signature(tp, 0), "(-> int8 int8)");
}

TEST(CheckerTest, MixedWidthArithmeticRejected) {
    std::string err = check_error(
        "(define (f a : int8 b : int16) (+ a b))");
    EXPECT_NE(err.find("mismatch"), std::string::npos);
}

TEST(CheckerTest, BoolArithmeticRejected) {
    std::string err = check_error("(define (f b : bool) (+ b 1))");
    EXPECT_NE(err.find("numeric"), std::string::npos);
}

TEST(CheckerTest, IfConditionMustBeBool) {
    EXPECT_FALSE(check_error("(define (f) (if 1 2 3))").empty());
}

TEST(CheckerTest, IfBranchesMustAgree) {
    EXPECT_FALSE(
        check_error("(define (f b : bool) (if b 1 #t))").empty());
}

TEST(CheckerTest, ComparisonYieldsBool) {
    auto tp = check_ok("(define (f x y) (< x y))");
    EXPECT_EQ(signature(tp, 0), "(-> int64 int64 bool)");
}

TEST(CheckerTest, PolymorphicIdentityGeneralizes) {
    auto tp = check_ok(
        "(define (id x) x)"
        "(define (use-both) : int32"
        "  (let ((b (id #t)))"
        "    (if b (id 7) (id 8))))");
    // id must be usable at bool and int32 simultaneously.
    EXPECT_EQ(signature(tp, 1), "(-> int32)");
}

TEST(CheckerTest, MonomorphicRecursionChecks) {
    auto tp = check_ok(
        "(define (fib n : int64) : int64"
        "  (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))");
    EXPECT_EQ(signature(tp, 0), "(-> int64 int64)");
}

TEST(CheckerTest, ForwardReferenceChecks) {
    auto tp = check_ok(
        "(define (even? n : int64) : bool"
        "  (if (== n 0) #t (odd? (- n 1))))"
        "(define (odd? n : int64) : bool"
        "  (if (== n 0) #f (even? (- n 1))))");
    EXPECT_EQ(signature(tp, 0), "(-> int64 bool)");
    EXPECT_EQ(signature(tp, 1), "(-> int64 bool)");
}

TEST(CheckerTest, SetMustPreserveVariableType) {
    EXPECT_FALSE(check_error(
        "(define (f) (let ((x 1)) (set! x #t)))").empty());
}

TEST(CheckerTest, LetAnnotationEnforced) {
    EXPECT_FALSE(
        check_error("(define (f) (let ((x : bool 3)) x))").empty());
    auto tp = check_ok("(define (f) (let ((x : int8 3)) x))");
    EXPECT_EQ(signature(tp, 0), "(-> int8)");
}

TEST(CheckerTest, WhileBodyTypesAndResultUnit) {
    auto tp = check_ok(
        "(define (count) : int64"
        "  (let ((i 0))"
        "    (while (< i 10) (set! i (+ i 1)))"
        "    i))");
    EXPECT_EQ(signature(tp, 0), "(-> int64)");
}

TEST(CheckerTest, WhileConditionMustBeBool) {
    EXPECT_FALSE(check_error("(define (f) (while 1 (unit)))").empty());
}

TEST(CheckerTest, ArrayElementTypeFlows) {
    auto tp = check_ok(
        "(define (sum a : (array int32 4)) : int32"
        "  (+ (array-ref a 0) (array-ref a 1)))");
    EXPECT_EQ(signature(tp, 0), "(-> (array int32 4) int32)");
}

TEST(CheckerTest, ArrayMakeInfersSizeFromLiteral) {
    auto tp = check_ok("(define (f) (array-make 8 0))");
    Type* result = tp.function_type(0).result;
    EXPECT_EQ(tp.store().to_string(result), "(array int64 8)");
}

TEST(CheckerTest, ArraySetValueMustMatchElem) {
    EXPECT_FALSE(check_error(
        "(define (f a : (array int32 4)) (array-set! a 0 #t))").empty());
}

TEST(CheckerTest, ArrayLengthMismatchRejected) {
    EXPECT_FALSE(check_error(
        "(define (g a : (array int64 4)) : int64 (array-ref a 0))"
        "(define (f) (g (array-make 5 0)))").empty());
}

TEST(CheckerTest, AssertTakesBool) {
    EXPECT_FALSE(check_error("(define (f) (assert 3))").empty());
    check_ok("(define (f x) (assert (< x 10)) x)");
}

TEST(CheckerTest, ContractsMustBeBool) {
    EXPECT_FALSE(check_error(
        "(define (f x) (require (+ x 1)) x)").empty());
    EXPECT_FALSE(check_error(
        "(define (f x) : int64 (ensure (+ result 1)) x)").empty());
}

TEST(CheckerTest, EnsureResultHasFunctionResultType) {
    auto tp = check_ok(
        "(define (abs x : int32) : int32"
        "  (ensure (>= result 0))"
        "  (if (< x 0) (- 0 x) x))");
    EXPECT_EQ(signature(tp, 0), "(-> int32 int32)");
}

TEST(CheckerTest, LiteralTooWideForAnnotatedType) {
    std::string err =
        check_error("(define (f x : int8) : int8 (+ x 300))");
    EXPECT_NE(err.find("does not fit"), std::string::npos);
}

TEST(CheckerTest, NegativeLiteralIntoUnsignedRejected) {
    std::string err =
        check_error("(define (f x : uint8) : uint8 (+ x -1))");
    EXPECT_NE(err.find("does not fit"), std::string::npos);
}

TEST(CheckerTest, LiteralBoundaryValuesAccepted) {
    check_ok("(define (f x : int8) (+ x 127))");
    check_ok("(define (f2 x : int8) (+ x -128))");
    check_ok("(define (g x : uint8) (+ x 255))");
}

TEST(CheckerTest, ExprTypesAreRecorded) {
    auto tp = check_ok("(define (f x : int16) (< (+ x 1) 5))");
    const lang::Expr* body = tp.program().functions[0].body[0];
    EXPECT_EQ(tp.store().to_string(tp.type_of(body)), "bool");
    EXPECT_EQ(tp.store().to_string(tp.type_of(body->args[0])), "int16");
}

TEST(CheckerTest, CallResultTypeFlowsToCaller) {
    auto tp = check_ok(
        "(define (five) : int8 5)"
        "(define (six) (+ (five) 1))");
    EXPECT_EQ(signature(tp, 1), "(-> int8)");
}

TEST(CheckerTest, UnitFunctionDefaultsWork) {
    auto tp = check_ok("(define (noop) (unit))");
    EXPECT_EQ(signature(tp, 0), "(-> unit)");
}

}  // namespace
}  // namespace bitc::types
