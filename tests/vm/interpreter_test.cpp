/** Interpreter internals: heap interaction, reclamation, statistics. */
#include "vm/interpreter.hpp"

#include <gtest/gtest.h>

#include "vm/pipeline.hpp"

namespace bitc::vm {
namespace {

std::unique_ptr<BuiltProgram> build_ok(std::string_view source) {
    auto built = build_program(source);
    EXPECT_TRUE(built.is_ok()) << built.status().to_string();
    return std::move(built).take();
}

TEST(InterpreterTest, BoxedModeAllocatesPerValue) {
    auto built = build_ok("(define (f x y) (+ x y))");
    VmConfig unboxed;
    unboxed.mode = ValueMode::kUnboxed;
    VmConfig boxed;
    boxed.mode = ValueMode::kBoxed;
    boxed.heap = HeapPolicy::kMarkSweep;

    auto vm_u = built->instantiate(unboxed);
    auto vm_b = built->instantiate(boxed);
    ASSERT_TRUE(vm_u->call("f", {1, 2}).is_ok());
    ASSERT_TRUE(vm_b->call("f", {1, 2}).is_ok());
    EXPECT_EQ(vm_u->heap().stats().allocations, 0u)
        << "no heap traffic for scalar code unboxed";
    EXPECT_GT(vm_b->heap().stats().allocations, 0u)
        << "every value is a box";
}

TEST(InterpreterTest, BoxedGarbageIsCollectedUnderPressure) {
    // Enough churn that a small mark-sweep heap must collect.
    auto built = build_ok(
        "(define (churn n : int64) : int64"
        "  (let ((acc 0) (i 0))"
        "    (while (< i n)"
        "      (set! acc (+ acc i))"
        "      (set! i (+ i 1)))"
        "    acc))");
    VmConfig config;
    config.mode = ValueMode::kBoxed;
    config.heap = HeapPolicy::kMarkSweep;
    config.heap_words = 1 << 12;  // small: forces collections
    auto vm = built->instantiate(config);
    auto result = vm->call("churn", {20000});
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    EXPECT_EQ(result.value(), 19999LL * 20000 / 2);
    EXPECT_GT(vm->heap().stats().collections, 0u);
}

TEST(InterpreterTest, RefcountReclaimsEagerly) {
    auto built = build_ok(
        "(define (f n : int64) : int64"
        "  (let ((acc 0) (i 0))"
        "    (while (< i n)"
        "      (set! acc (+ acc 1))"
        "      (set! i (+ i 1)))"
        "    acc))");
    VmConfig config;
    config.mode = ValueMode::kBoxed;
    config.heap = HeapPolicy::kRefCount;
    config.heap_words = 1 << 12;  // tiny heap: only works if eager
    auto vm = built->instantiate(config);
    auto result = vm->call("f", {50000});
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    // Eager reclamation keeps the live set tiny despite huge traffic.
    EXPECT_GT(vm->heap().stats().frees, 40000u);
    EXPECT_LT(vm->heap().live_objects(), 64u);
}

TEST(InterpreterTest, SemispaceSurvivesMovesWithLiveArrays) {
    auto built = build_ok(
        "(define (f n : int64) : int64"
        "  (let ((keep (array-make 32 7)) (i 0) (acc 0))"
        "    (while (< i n)"
        "      (let ((junk (array-make 32 i)))"
        "        (set! acc (+ acc (array-ref junk 0))))"
        "      (set! i (+ i 1)))"
        "    (+ acc (array-ref keep 31))))");
    VmConfig config;
    config.mode = ValueMode::kBoxed;
    config.heap = HeapPolicy::kSemispace;
    config.heap_words = 1 << 14;
    auto vm = built->instantiate(config);
    auto result = vm->call("f", {2000});
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    EXPECT_EQ(result.value(), 1999LL * 2000 / 2 + 7);
    EXPECT_GT(vm->heap().stats().collections, 0u)
        << "the survivor array must have moved at least once";
}

TEST(InterpreterTest, HeapExhaustionSurfacesCleanly) {
    auto built = build_ok(
        "(define (hog) : int64"
        "  (let ((a (array-make 100000 1))) (array-ref a 0)))");
    VmConfig config;
    config.heap_words = 1 << 10;  // far too small
    auto vm = built->instantiate(config);
    auto result = vm->call("hog", {});
    ASSERT_FALSE(result.is_ok());
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(InterpreterTest, NegativeArrayLengthTraps) {
    auto built = build_ok(
        "(define (f n : int64) (array-make n 0))");
    auto vm = built->instantiate({});
    auto result = vm->call("f", {-5});
    ASSERT_FALSE(result.is_ok());
    EXPECT_NE(result.status().message().find("bad array length"),
              std::string::npos);
}

TEST(InterpreterTest, MultipleCallsReuseTheHeap) {
    auto built = build_ok("(define (f) (array-make 8 1))");
    VmConfig config;
    config.mode = ValueMode::kBoxed;
    config.heap = HeapPolicy::kMarkSweep;
    auto vm = built->instantiate(config);
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(vm->call("f", {}).is_ok()) << "iteration " << i;
    }
    // Heap survives across calls; garbage from prior calls reclaimable.
    EXPECT_GT(vm->heap().stats().allocations, 100u);
}

TEST(InterpreterTest, InstructionCountScalesWithWork) {
    auto built = build_ok(
        "(define (loop n : int64) : int64"
        "  (let ((i 0)) (while (< i n) (set! i (+ i 1))) i))");
    auto vm_small = built->instantiate({});
    auto vm_large = built->instantiate({});
    ASSERT_TRUE(vm_small->call("loop", {10}).is_ok());
    ASSERT_TRUE(vm_large->call("loop", {1000}).is_ok());
    EXPECT_GT(vm_large->instructions_executed(),
              10 * vm_small->instructions_executed());
}

TEST(InterpreterTest, ModeAndPolicyNames) {
    EXPECT_STREQ(value_mode_name(ValueMode::kUnboxed), "unboxed");
    EXPECT_STREQ(value_mode_name(ValueMode::kBoxed), "boxed");
    EXPECT_STREQ(heap_policy_name(HeapPolicy::kGenerational),
                 "generational");
}

TEST(MakeHeapTest, BuildsEveryPolicy) {
    for (HeapPolicy policy :
         {HeapPolicy::kRegion, HeapPolicy::kManual, HeapPolicy::kRefCount,
          HeapPolicy::kMarkSweep, HeapPolicy::kMarkCompact,
          HeapPolicy::kSemispace,
          HeapPolicy::kGenerational}) {
        auto heap = make_heap(policy, 1 << 12);
        ASSERT_NE(heap, nullptr);
        EXPECT_TRUE(heap->allocate(4, 0, 1).is_ok())
            << heap_policy_name(policy);
    }
}

}  // namespace
}  // namespace bitc::vm
