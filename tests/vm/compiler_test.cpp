#include "vm/compiler.hpp"

#include <gtest/gtest.h>

#include "lang/parser.hpp"
#include "lang/resolver.hpp"
#include "vm/pipeline.hpp"

namespace bitc::vm {
namespace {

/** Compiles with explicit options, returning the program. */
CompiledProgram compile_with(std::string_view source,
                             CompilerOptions options) {
    DiagnosticEngine diags;
    auto parsed = lang::parse_program(source, diags);
    EXPECT_TRUE(parsed.is_ok()) << diags.to_string();
    lang::Program program = std::move(parsed).take();
    EXPECT_TRUE(lang::resolve_program(program, diags).is_ok());
    auto typed = types::check_program(std::move(program), diags);
    EXPECT_TRUE(typed.is_ok()) << diags.to_string();
    types::TypedProgram tp = std::move(typed).take();
    verify::VerifyReport report = verify::verify_program(tp);
    if (options.elide_proved_checks && options.proofs == nullptr) {
        options.proofs = &report;
    }
    auto compiled = compile_program(tp, options);
    EXPECT_TRUE(compiled.is_ok()) << compiled.status().to_string();
    return std::move(compiled).take();
}

size_t count_op(const CompiledProgram& program, Op op) {
    size_t n = 0;
    for (const auto& f : program.functions) {
        for (const auto& i : f.code) {
            if (i.op == op) ++n;
        }
    }
    return n;
}

TEST(CompilerTest, ConstantFoldingCollapsesLiteralTrees) {
    CompilerOptions fold;
    fold.constant_fold = true;
    CompilerOptions no_fold;
    no_fold.constant_fold = false;

    const char* source = "(define (f) (+ (* 3 4) (- 10 2)))";
    auto folded = compile_with(source, fold);
    auto unfolded = compile_with(source, no_fold);
    EXPECT_LT(folded.functions[0].code.size(),
              unfolded.functions[0].code.size());
    EXPECT_EQ(count_op(folded, Op::kAdd), 0u);
    EXPECT_EQ(count_op(unfolded, Op::kAdd), 1u);
}

TEST(CompilerTest, FoldingNeverFoldsDivisionByZero) {
    CompilerOptions fold;
    fold.constant_fold = true;
    auto program = compile_with("(define (f) (/ 1 0))", fold);
    EXPECT_EQ(count_op(program, Op::kDiv), 1u)
        << "the trap must survive folding";
}

TEST(CompilerTest, BoundsChecksKeptWithoutProofs) {
    CompilerOptions options;  // elide off
    auto program = compile_with(
        "(define (f a : (array int64 8)) : int64 (array-ref a 3))",
        options);
    bool found = false;
    for (const auto& i : program.functions[0].code) {
        if (i.op == Op::kArrayGet) {
            found = true;
            EXPECT_NE(i.b & kFlagCheckLower, 0);
            EXPECT_NE(i.b & kFlagCheckUpper, 0);
        }
    }
    EXPECT_TRUE(found);
}

TEST(CompilerTest, ProvedBoundsChecksAreElided) {
    CompilerOptions options;
    options.elide_proved_checks = true;
    auto program = compile_with(
        "(define (f a : (array int64 8)) : int64 (array-ref a 3))",
        options);
    for (const auto& i : program.functions[0].code) {
        if (i.op == Op::kArrayGet) {
            EXPECT_EQ(i.b & kFlagCheckLower, 0);
            EXPECT_EQ(i.b & kFlagCheckUpper, 0);
        }
    }
}

TEST(CompilerTest, UnprovedSideKeepsItsCheck) {
    CompilerOptions options;
    options.elide_proved_checks = true;
    // Lower bound provable (uint index), upper not (index may be 100).
    auto program = compile_with(
        "(define (f a : (array int64 8) i : uint32) : int64"
        "  (array-ref a i))",
        options);
    for (const auto& i : program.functions[0].code) {
        if (i.op == Op::kArrayGet) {
            EXPECT_EQ(i.b & kFlagCheckLower, 0) << "lower was proved";
            EXPECT_NE(i.b & kFlagCheckUpper, 0) << "upper was not";
        }
    }
}

TEST(CompilerTest, ProvedAssertsVanish) {
    CompilerOptions options;
    options.elide_proved_checks = true;
    auto program = compile_with(
        "(define (f x : int64) (require (> x 0))"
        "  (assert (>= x 1)) x)",
        options);
    EXPECT_EQ(count_op(program, Op::kAssert), 0u);

    CompilerOptions keep;
    auto unopt = compile_with(
        "(define (f x : int64) (require (> x 0))"
        "  (assert (>= x 1)) x)",
        keep);
    EXPECT_EQ(count_op(unopt, Op::kAssert), 1u);
}

TEST(CompilerTest, NarrowArithmeticGetsWrapOps) {
    CompilerOptions options;
    options.constant_fold = false;
    auto narrow = compile_with("(define (f x : uint8) (+ x 1))", options);
    EXPECT_EQ(count_op(narrow, Op::kWrap), 1u);
    auto wide = compile_with("(define (f x : int64) (+ x 1))", options);
    EXPECT_EQ(count_op(wide, Op::kWrap), 0u);
}

TEST(CompilerTest, SignednessFlagsOnComparisons) {
    CompilerOptions options;
    options.constant_fold = false;
    auto program = compile_with(
        "(define (f x : uint32 y : uint32) (< x y))"
        "(define (g x : int32 y : int32) (< x y))",
        options);
    for (const auto& i : program.functions[0].code) {
        if (i.op == Op::kLt) {
            EXPECT_EQ(i.b & kFlagSigned, 0);
        }
    }
    for (const auto& i : program.functions[1].code) {
        if (i.op == Op::kLt) {
            EXPECT_NE(i.b & kFlagSigned, 0);
        }
    }
}

TEST(CompilerTest, DisassemblerMentionsFunctionsAndOps) {
    CompilerOptions options;
    auto program = compile_with(
        "(define (answer) : int64 42)", options);
    std::string text = program.disassemble();
    EXPECT_NE(text.find("answer"), std::string::npos);
    EXPECT_NE(text.find("const 42"), std::string::npos);
    EXPECT_NE(text.find("ret"), std::string::npos);
}

TEST(CompilerTest, OpHistogramCountsInstructions) {
    CompilerOptions options;
    options.constant_fold = false;
    auto program = compile_with("(define (f x) (+ x (+ x x)))", options);
    auto histogram = program.op_histogram();
    bool saw_add = false;
    for (const auto& [name, count] : histogram) {
        if (name == "add") {
            saw_add = true;
            EXPECT_EQ(count, 2u);
        }
    }
    EXPECT_TRUE(saw_add);
}

TEST(CompilerTest, NativeWithoutRegistryFails) {
    DiagnosticEngine diags;
    auto parsed =
        lang::parse_program("(define (f) (native clock))", diags);
    ASSERT_TRUE(parsed.is_ok());
    lang::Program program = std::move(parsed).take();
    ASSERT_TRUE(lang::resolve_program(program, diags).is_ok());
    auto typed = types::check_program(std::move(program), diags);
    ASSERT_TRUE(typed.is_ok());
    types::TypedProgram tp = std::move(typed).take();
    auto compiled = compile_program(tp, {});
    ASSERT_FALSE(compiled.is_ok());
    EXPECT_NE(compiled.status().message().find("native"),
              std::string::npos);
}

}  // namespace
}  // namespace bitc::vm
