/**
 * Differential tests for the two interpreter loops: switch and
 * threaded dispatch must be observationally identical — same results,
 * same trap statuses, and the same retired-instruction counts — across
 * both value modes, the example programs, and synthetic programs that
 * exercise every opcode cluster.  The threaded loop earns its speed
 * only if nothing else about it is observable.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "vm/pipeline.hpp"

#ifndef BITC_EXAMPLES_DIR
#define BITC_EXAMPLES_DIR "examples/bitc"
#endif

namespace bitc::vm {
namespace {

std::string read_example(const std::string& name) {
    std::string path = std::string(BITC_EXAMPLES_DIR) + "/" + name;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

std::unique_ptr<BuiltProgram> build_ok(std::string_view source) {
    auto built = build_program(source);
    EXPECT_TRUE(built.is_ok()) << built.status().to_string();
    return std::move(built).take();
}

VmConfig config_for(ValueMode mode, DispatchMode dispatch) {
    VmConfig config;
    config.mode = mode;
    config.heap = mode == ValueMode::kBoxed ? HeapPolicy::kGenerational
                                            : HeapPolicy::kRegion;
    config.dispatch = dispatch;
    return config;
}

/**
 * Runs @p entry under both dispatch strategies in @p mode and checks
 * value-and-retire-count equivalence; returns the common result.
 */
Result<int64_t> run_both(const BuiltProgram& built,
                         const std::string& entry,
                         std::span<const int64_t> args, ValueMode mode,
                         const NativeRegistry* natives = nullptr) {
    RunReport sw_report;
    RunReport th_report;
    auto sw = run_built(built, entry, args,
                        config_for(mode, DispatchMode::kSwitch), natives,
                        &sw_report);
    auto th = run_built(built, entry, args,
                        config_for(mode, DispatchMode::kThreaded),
                        natives, &th_report);
    EXPECT_EQ(sw.is_ok(), th.is_ok())
        << value_mode_name(mode) << " " << entry;
    if (sw.is_ok() && th.is_ok()) {
        EXPECT_EQ(sw.value(), th.value())
            << value_mode_name(mode) << " " << entry;
    } else if (!sw.is_ok() && !th.is_ok()) {
        EXPECT_EQ(sw.status().code(), th.status().code());
        EXPECT_EQ(sw.status().message(), th.status().message());
    }
    EXPECT_EQ(sw_report.instructions, th_report.instructions)
        << value_mode_name(mode) << " " << entry
        << ": dispatch must not change the retire count";
    return sw;
}

class DispatchDifferentialTest
    : public ::testing::TestWithParam<ValueMode> {};

TEST_P(DispatchDifferentialTest, ExamplesAgree) {
    struct Case {
        const char* file;
        const char* entry;
        std::vector<int64_t> args;
        int64_t expected;
    };
    const Case cases[] = {
        {"fib.bitc", "main", {}, 6765},
        {"fib.bitc", "fib", {15}, 610},
        {"saturating_add.bitc", "main", {}, 127},
        {"saturating_add.bitc", "sat-add", {100, 50}, 127},
        {"bounded_buffer.bitc", "main", {}, 100},
    };
    for (const Case& c : cases) {
        auto built = build_ok(read_example(c.file));
        auto result = run_both(*built, c.entry, c.args, GetParam());
        ASSERT_TRUE(result.is_ok()) << result.status().to_string();
        EXPECT_EQ(result.value(), c.expected) << c.file;
    }
}

TEST_P(DispatchDifferentialTest, OpcodeClustersAgree) {
    // Touches every arithmetic/compare/shift/wrap opcode with mixed
    // signedness, plus arrays, calls and recursion.
    auto built = build_ok(R"bitc(
(define (mix a : int64 b : int64) : int64
  (require (!= b 0))
  (+ (* a b)
     (+ (- a b)
        (+ (/ a b)
           (+ (% a b)
              (+ (<< a 3)
                 (+ (>> a 2)
                    (+ (bitand a b)
                       (+ (bitor a b) (bitxor a b))))))))))

(define (cmps a : int64 b : int64) : int64
  (+ (if (< a b) 1 0)
     (+ (if (<= a b) 2 0)
        (+ (if (> a b) 4 0)
           (+ (if (>= a b) 8 0)
              (+ (if (== a b) 16 0)
                 (+ (if (!= a b) 32 0)
                    (if (not (== a b)) 64 0))))))))

; int8 arithmetic forces kWrap after every operation.
(define (wrap8 x : int8 y : int8) : int8 (+ (* x y) y))

(define (arrays n : int64) : int64
  (require (>= n 1)) (require (<= n 256))
  (let ((a (array-make n 7)) (i 0) (acc 0))
    (while (< i n)
      (invariant (>= i 0))
      (array-set! a i (* i i))
      (set! i (+ i 1)))
    (set! i 0)
    (while (< i n)
      (invariant (>= i 0))
      (set! acc (+ acc (array-ref a i)))
      (set! i (+ i 1)))
    (+ acc (array-len a))))

(define (reentrant n : int64) : int64
  (require (>= n 0))
  (if (< n 2) n (+ (reentrant (- n 1)) (reentrant (- n 2)))))
)bitc");
    const ValueMode mode = GetParam();
    struct Case {
        const char* entry;
        std::vector<int64_t> args;
    };
    const Case cases[] = {
        {"mix", {1000, 7}},    {"mix", {-1000, 7}},
        {"mix", {1000, -13}},  {"cmps", {3, 4}},
        {"cmps", {4, 3}},      {"cmps", {-5, 5}},
        {"wrap8", {100, 27}},  {"wrap8", {-100, 27}},
        {"arrays", {64}},      {"reentrant", {12}},
    };
    for (const Case& c : cases) {
        auto result = run_both(*built, c.entry, c.args, mode);
        ASSERT_TRUE(result.is_ok())
            << c.entry << ": " << result.status().to_string();
    }
}

TEST_P(DispatchDifferentialTest, TrapsAgree) {
    auto built = build_ok(R"bitc(
(define (div0 a : int64 b : int64) : int64 (require (!= b 0)) (/ a b))
(define (boom) : int64 (let ((x 1)) (assert (== x 2)) x))
)bitc");
    // Both traps surface identically: same code, message, and count.
    // (div0's require is checked at the call boundary only for verified
    // entry calls; calling with b=0 from outside still traps in the
    // division.)
    (void)run_both(*built, "div0", std::vector<int64_t>{5, 0},
                   GetParam());
    (void)run_both(*built, "boom", {}, GetParam());
}

TEST_P(DispatchDifferentialTest, InstructionBudgetAgrees) {
    auto built = build_ok(
        "(define (spin n : int64) : int64"
        "  (let ((i 0)) (while (< i n) (set! i (+ i 1))) i))");
    for (DispatchMode dispatch :
         {DispatchMode::kSwitch, DispatchMode::kThreaded}) {
        VmConfig config = config_for(GetParam(), dispatch);
        config.max_instructions = 1000;
        RunReport report;
        auto result = run_built(*built, "spin", std::vector<int64_t>{100000},
                                config, nullptr, &report);
        ASSERT_FALSE(result.is_ok()) << dispatch_mode_name(dispatch);
        EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
        EXPECT_EQ(report.instructions, 1000u)
            << dispatch_mode_name(dispatch)
            << " must stop exactly at the budget";
    }
}

TEST_P(DispatchDifferentialTest, NativeCallsAgree) {
    NativeRegistry registry;
    ASSERT_TRUE(registry
                    .add("mulsum", 2,
                         [](std::span<const uint64_t> args)
                             -> Result<uint64_t> {
                             return args[0] * 3 + args[1];
                         })
                    .is_ok());
    BuildOptions options;
    options.compiler.natives = &registry;
    auto built =
        build_program("(define (f x y) (native mulsum x y))", options);
    ASSERT_TRUE(built.is_ok()) << built.status().to_string();
    auto result = run_both(*built.value(), "f",
                           std::vector<int64_t>{7, 5}, GetParam(),
                           &registry);
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    EXPECT_EQ(result.value(), 26);
}

TEST_P(DispatchDifferentialTest, ProfileCountsMatchRetired) {
    auto built = build_ok(read_example("fib.bitc"));
    for (DispatchMode dispatch :
         {DispatchMode::kSwitch, DispatchMode::kThreaded}) {
        VmConfig config = config_for(GetParam(), dispatch);
        config.profile = true;
        RunReport report;
        auto result =
            run_built(*built, "main", {}, config, nullptr, &report);
        ASSERT_TRUE(result.is_ok()) << result.status().to_string();
        EXPECT_EQ(report.profile.total_count(), report.instructions)
            << dispatch_mode_name(dispatch)
            << ": profile must count every retired instruction";
        EXPECT_NE(report.profile.to_string().find("call"),
                  std::string::npos);
    }
}

INSTANTIATE_TEST_SUITE_P(
    BothModes, DispatchDifferentialTest,
    ::testing::Values(ValueMode::kUnboxed, ValueMode::kBoxed),
    [](const ::testing::TestParamInfo<ValueMode>& info) {
        return value_mode_name(info.param);
    });

}  // namespace
}  // namespace bitc::vm
