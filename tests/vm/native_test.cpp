/** FFI boundary tests (the F4 apparatus). */
#include "vm/native.hpp"

#include <gtest/gtest.h>

#include "vm/pipeline.hpp"

namespace bitc::vm {
namespace {

NativeRegistry make_registry() {
    NativeRegistry registry;
    EXPECT_TRUE(registry
                    .add("add3",
                         3,
                         [](std::span<const uint64_t> args)
                             -> Result<uint64_t> {
                             return args[0] + args[1] + args[2];
                         })
                    .is_ok());
    EXPECT_TRUE(registry
                    .add("fail", 0,
                         [](std::span<const uint64_t>)
                             -> Result<uint64_t> {
                             return runtime_error("native exploded");
                         })
                    .is_ok());
    return registry;
}

std::unique_ptr<BuiltProgram> build_with_natives(
    std::string_view source, const NativeRegistry& registry) {
    BuildOptions options;
    options.compiler.natives = &registry;
    auto built = build_program(source, options);
    EXPECT_TRUE(built.is_ok()) << built.status().to_string();
    return std::move(built).take();
}

TEST(NativeRegistryTest, DuplicateNamesRejected) {
    NativeRegistry registry;
    auto fn = [](std::span<const uint64_t>) -> Result<uint64_t> {
        return 0;
    };
    ASSERT_TRUE(registry.add("f", 0, fn).is_ok());
    EXPECT_FALSE(registry.add("f", 1, fn).is_ok());
}

TEST(NativeRegistryTest, LookupByName) {
    NativeRegistry registry = make_registry();
    auto found = registry.find("add3");
    ASSERT_TRUE(found.is_ok());
    EXPECT_EQ(registry.arity(found.value()), 3u);
    EXPECT_EQ(registry.name(found.value()), "add3");
    EXPECT_FALSE(registry.find("nope").is_ok());
}

TEST(NativeCallTest, RoundTripsThroughBothModes) {
    NativeRegistry registry = make_registry();
    auto built = build_with_natives(
        "(define (f x y z) (native add3 x y z))", registry);
    for (ValueMode mode : {ValueMode::kUnboxed, ValueMode::kBoxed}) {
        VmConfig config;
        config.mode = mode;
        config.heap = mode == ValueMode::kBoxed ? HeapPolicy::kMarkSweep
                                                : HeapPolicy::kRegion;
        auto vm = built->instantiate(config, &registry);
        auto result = vm->call("f", {10, 20, 30});
        ASSERT_TRUE(result.is_ok()) << result.status().to_string();
        EXPECT_EQ(result.value(), 60);
    }
}

TEST(NativeCallTest, NativeErrorsPropagateAsTraps) {
    NativeRegistry registry = make_registry();
    auto built =
        build_with_natives("(define (f) (native fail))", registry);
    auto vm = built->instantiate({}, &registry);
    auto result = vm->call("f", {});
    ASSERT_FALSE(result.is_ok());
    EXPECT_NE(result.status().message().find("native exploded"),
              std::string::npos);
}

TEST(NativeCallTest, ArityMismatchCaughtAtCompileTime) {
    NativeRegistry registry = make_registry();
    BuildOptions options;
    options.compiler.natives = &registry;
    auto built =
        build_program("(define (f x) (native add3 x))", options);
    ASSERT_FALSE(built.is_ok());
    EXPECT_NE(built.status().message().find("argument"),
              std::string::npos);
}

TEST(NativeCallTest, UnknownNativeCaughtAtCompileTime) {
    NativeRegistry registry = make_registry();
    BuildOptions options;
    options.compiler.natives = &registry;
    auto built = build_program("(define (f) (native mystery))", options);
    ASSERT_FALSE(built.is_ok());
    EXPECT_EQ(built.status().code(), StatusCode::kNotFound);
}

TEST(NativeCallTest, ResultsFeedBackIntoLanguageArithmetic) {
    NativeRegistry registry = make_registry();
    auto built = build_with_natives(
        "(define (f x) (* 2 (native add3 x x x)))", registry);
    auto vm = built->instantiate({}, &registry);
    auto result = vm->call("f", {5});
    ASSERT_TRUE(result.is_ok());
    EXPECT_EQ(result.value(), 30);
}

}  // namespace
}  // namespace bitc::vm
