/**
 * End-to-end language tests: source in, value out, across every value
 * mode x heap policy combination that is legal.
 */
#include "vm/pipeline.hpp"

#include <gtest/gtest.h>

namespace bitc::vm {
namespace {

int64_t run(std::string_view source, const std::string& fn,
            std::vector<int64_t> args, VmConfig config = {}) {
    auto built = build_program(source);
    EXPECT_TRUE(built.is_ok()) << built.status().to_string();
    auto vm = built.value()->instantiate(config);
    auto result = vm->call(fn, args);
    EXPECT_TRUE(result.is_ok()) << result.status().to_string();
    return result.is_ok() ? result.value() : INT64_MIN;
}

struct ModeParam {
    std::string label;
    VmConfig config;
};

class AllModesTest : public ::testing::TestWithParam<ModeParam> {};

TEST_P(AllModesTest, Arithmetic) {
    EXPECT_EQ(run("(define (f x y) (+ (* x 3) (/ y 2)))", "f", {5, 8},
                  GetParam().config),
              19);
}

TEST_P(AllModesTest, RecursionFib) {
    EXPECT_EQ(run("(define (fib n : int64) : int64"
                  "  (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))",
                  "fib", {15}, GetParam().config),
              610);
}

TEST_P(AllModesTest, MutualRecursion) {
    const char* source =
        "(define (even? n : int64) : bool"
        "  (if (== n 0) #t (odd? (- n 1))))"
        "(define (odd? n : int64) : bool"
        "  (if (== n 0) #f (even? (- n 1))))";
    EXPECT_EQ(run(source, "even?", {10}, GetParam().config), 1);
    EXPECT_EQ(run(source, "even?", {11}, GetParam().config), 0);
}

TEST_P(AllModesTest, LoopsAndMutation) {
    const char* source =
        "(define (sum-to n : int64) : int64"
        "  (let ((i 0) (acc 0))"
        "    (while (< i n)"
        "      (set! i (+ i 1))"
        "      (set! acc (+ acc i)))"
        "    acc))";
    EXPECT_EQ(run(source, "sum-to", {100}, GetParam().config), 5050);
}

TEST_P(AllModesTest, Arrays) {
    const char* source =
        "(define (rev-sum n : int64) : int64"
        "  (let ((a (array-make 64 0)) (i 0) (acc 0))"
        "    (while (< i 64)"
        "      (array-set! a i (* i i))"
        "      (set! i (+ i 1)))"
        "    (set! i 63)"
        "    (while (>= i 0)"
        "      (set! acc (+ acc (array-ref a i)))"
        "      (set! i (- i 1)))"
        "    acc))";
    // sum of squares 0..63 = 63*64*127/6
    EXPECT_EQ(run(source, "rev-sum", {0}, GetParam().config), 85344);
}

TEST_P(AllModesTest, BitPreciseWrapping) {
    // uint8 arithmetic wraps at 256.
    const char* source =
        "(define (wrap8 x : uint8) : uint8 (+ x 200))";
    EXPECT_EQ(run(source, "wrap8", {100}, GetParam().config),
              (100 + 200) % 256);
}

TEST_P(AllModesTest, SignedNarrowWrapping) {
    // int8: 120 + 10 wraps to -126.
    const char* source = "(define (w x : int8) : int8 (+ x 10))";
    EXPECT_EQ(run(source, "w", {120}, GetParam().config), -126);
}

TEST_P(AllModesTest, GarbageHeavyWorkload) {
    // Allocates a fresh array per iteration: exercises reclamation on
    // every policy that reclaims (and region growth where not).
    const char* source =
        "(define (churn n : int64) : int64"
        "  (let ((acc 0) (i 0))"
        "    (while (< i n)"
        "      (let ((a (array-make 16 i)))"
        "        (set! acc (+ acc (array-ref a 7))))"
        "      (set! i (+ i 1)))"
        "    acc))";
    VmConfig config = GetParam().config;
    EXPECT_EQ(run(source, "churn", {1000}, config), 999 * 1000 / 2);
}

std::vector<ModeParam> all_modes() {
    std::vector<ModeParam> out;
    VmConfig base;
    base.heap_words = 1 << 20;
    base.stack_slots = 1 << 12;

    VmConfig c = base;
    c.mode = ValueMode::kUnboxed;
    c.heap = HeapPolicy::kRegion;
    out.push_back({"unboxed_region", c});
    c.heap = HeapPolicy::kManual;
    out.push_back({"unboxed_manual", c});

    c.mode = ValueMode::kBoxed;
    c.heap = HeapPolicy::kRegion;
    VmConfig big = c;
    big.heap_words = 1 << 22;  // boxed region never frees; needs room
    out.push_back({"boxed_region", big});
    c.heap = HeapPolicy::kRefCount;
    out.push_back({"boxed_refcount", c});
    c.heap = HeapPolicy::kMarkSweep;
    out.push_back({"boxed_marksweep", c});
    c.heap = HeapPolicy::kMarkCompact;
    out.push_back({"boxed_markcompact", c});
    c.heap = HeapPolicy::kSemispace;
    out.push_back({"boxed_semispace", c});
    c.heap = HeapPolicy::kGenerational;
    out.push_back({"boxed_generational", c});
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndHeaps, AllModesTest, ::testing::ValuesIn(all_modes()),
    [](const ::testing::TestParamInfo<ModeParam>& info) {
        return info.param.label;
    });

// --- Mode-independent pipeline behaviour --------------------------------

TEST(PipelineTest, UnboxedWithTracingHeapIsRejected) {
    auto built = build_program("(define (f) 1)");
    ASSERT_TRUE(built.is_ok());
    VmConfig config;
    config.mode = ValueMode::kUnboxed;
    config.heap = HeapPolicy::kMarkSweep;
    auto vm = built.value()->instantiate(config);
    auto result = vm->call("f", {});
    ASSERT_FALSE(result.is_ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PipelineTest, TypeErrorSurfacesFromBuild) {
    auto built = build_program("(define (f b : bool) (+ b 1))");
    ASSERT_FALSE(built.is_ok());
    EXPECT_EQ(built.status().code(), StatusCode::kTypeError);
}

TEST(PipelineTest, VerificationReportIsPopulated) {
    auto built = build_program(
        "(define (f a : (array int64 8)) : int64 (array-ref a 3))");
    ASSERT_TRUE(built.is_ok());
    EXPECT_GT(built.value()->verification.total(), 0u);
    EXPECT_EQ(built.value()->verification.proved(),
              built.value()->verification.total());
}

TEST(PipelineTest, DivisionByZeroTraps) {
    auto built = build_program("(define (f x y) (/ x y))");
    ASSERT_TRUE(built.is_ok());
    auto vm = built.value()->instantiate({});
    auto result = vm->call("f", {10, 0});
    ASSERT_FALSE(result.is_ok());
    EXPECT_EQ(result.status().code(), StatusCode::kRuntimeError);
    EXPECT_NE(result.status().message().find("division"),
              std::string::npos);
}

TEST(PipelineTest, OutOfBoundsTrapsWithChecksOn) {
    auto built = build_program(
        "(define (f a : (array int64 8) i : int64) : int64"
        "  (array-ref a i))"
        "(define (g i : int64) : int64 (f (array-make 8 1) i))");
    ASSERT_TRUE(built.is_ok());
    auto vm = built.value()->instantiate({});
    EXPECT_TRUE(vm->call("g", {7}).is_ok());
    auto bad = vm->call("g", {8});
    ASSERT_FALSE(bad.is_ok());
    EXPECT_NE(bad.status().message().find("beyond length"),
              std::string::npos);
    auto neg = vm->call("g", {-1});
    ASSERT_FALSE(neg.is_ok());
    EXPECT_NE(neg.status().message().find("below zero"),
              std::string::npos);
}

TEST(PipelineTest, FailedAssertTraps) {
    auto built = build_program(
        "(define (f x : int64) : int64 (assert (> x 0)) x)");
    ASSERT_TRUE(built.is_ok());
    auto vm = built.value()->instantiate({});
    EXPECT_TRUE(vm->call("f", {5}).is_ok());
    auto bad = vm->call("f", {-5});
    ASSERT_FALSE(bad.is_ok());
    EXPECT_NE(bad.status().message().find("assertion"),
              std::string::npos);
}

TEST(PipelineTest, InstructionBudgetStopsRunawayLoops) {
    auto built = build_program(
        "(define (spin) : int64 (while #t (unit)) 0)");
    ASSERT_TRUE(built.is_ok());
    VmConfig config;
    config.max_instructions = 10000;
    auto vm = built.value()->instantiate(config);
    auto result = vm->call("spin", {});
    ASSERT_FALSE(result.is_ok());
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(PipelineTest, DeepRecursionOverflowsGracefully) {
    auto built = build_program(
        "(define (down n : int64) : int64"
        "  (if (== n 0) 0 (down (- n 1))))");
    ASSERT_TRUE(built.is_ok());
    VmConfig config;
    config.stack_slots = 256;
    auto vm = built.value()->instantiate(config);
    auto result = vm->call("down", {100000});
    ASSERT_FALSE(result.is_ok());
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(PipelineTest, WrongArgumentCountRejected) {
    auto built = build_program("(define (f x y) (+ x y))");
    ASSERT_TRUE(built.is_ok());
    auto vm = built.value()->instantiate({});
    auto result = vm->call("f", {1});
    ASSERT_FALSE(result.is_ok());
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PipelineTest, UnknownEntryFunction) {
    auto built = build_program("(define (f) 1)");
    ASSERT_TRUE(built.is_ok());
    auto vm = built.value()->instantiate({});
    EXPECT_EQ(vm->call("missing", {}).status().code(),
              StatusCode::kNotFound);
}

TEST(PipelineTest, InstructionsCountedAndHeapVisible) {
    auto built = build_program("(define (f) (array-make 4 9))");
    ASSERT_TRUE(built.is_ok());
    auto vm = built.value()->instantiate({});
    ASSERT_TRUE(vm->call("f", {}).is_ok());
    EXPECT_GT(vm->instructions_executed(), 0u);
    EXPECT_GT(vm->heap().stats().allocations, 0u);
}

}  // namespace
}  // namespace bitc::vm
