#include "verify/verifier.hpp"

#include <gtest/gtest.h>

#include "lang/parser.hpp"
#include "lang/resolver.hpp"

namespace bitc::verify {
namespace {

struct Verified {
    types::TypedProgram typed;
    VerifyReport report;
};

Verified verify_source(std::string_view source) {
    DiagnosticEngine diags;
    auto parsed = lang::parse_program(source, diags);
    EXPECT_TRUE(parsed.is_ok()) << diags.to_string();
    lang::Program program = std::move(parsed).take();
    EXPECT_TRUE(lang::resolve_program(program, diags).is_ok())
        << diags.to_string();
    auto typed = types::check_program(std::move(program), diags);
    EXPECT_TRUE(typed.is_ok()) << diags.to_string();
    Verified out{std::move(typed).take(), {}};
    out.report = verify_program(out.typed);
    return out;
}

/** Outcomes of all obligations of @p kind, across all functions. */
std::vector<Outcome> outcomes_of(const VerifyReport& report,
                                 ObligationKind kind) {
    std::vector<Outcome> out;
    for (const auto& f : report.functions) {
        for (const auto& o : f.obligations) {
            if (o.kind == kind) out.push_back(o.outcome);
        }
    }
    return out;
}

TEST(VerifierTest, TrivialAssertProves) {
    auto v = verify_source("(define (f) (assert (< 1 2)) 0)");
    auto outcomes = outcomes_of(v.report, ObligationKind::kAssert);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0], Outcome::kProved);
}

TEST(VerifierTest, FalseAssertIsUnknown) {
    auto v = verify_source("(define (f) (assert (< 2 1)) 0)");
    auto outcomes = outcomes_of(v.report, ObligationKind::kAssert);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0], Outcome::kUnknown);
}

TEST(VerifierTest, RequireDischargesAssert) {
    auto v = verify_source(
        "(define (f x) (require (< x 10)) (assert (< x 11)) x)");
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kAssert)[0],
              Outcome::kProved);
}

TEST(VerifierTest, ConstantIndexBoundsProve) {
    auto v = verify_source(
        "(define (f a : (array int64 8)) : int64 (array-ref a 3))");
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kBoundsLower)[0],
              Outcome::kProved);
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kBoundsUpper)[0],
              Outcome::kProved);
}

TEST(VerifierTest, OutOfBoundsConstantIndexIsUnknown) {
    auto v = verify_source(
        "(define (f a : (array int64 8)) : int64 (array-ref a 9))");
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kBoundsUpper)[0],
              Outcome::kUnknown);
}

TEST(VerifierTest, RequireBoundsFlowToIndex) {
    auto v = verify_source(
        "(define (get a : (array int64 100) i : int64) : int64"
        "  (require (>= i 0)) (require (< i 100))"
        "  (array-ref a i))");
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kBoundsLower)[0],
              Outcome::kProved);
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kBoundsUpper)[0],
              Outcome::kProved);
}

TEST(VerifierTest, BitPreciseParamTypeProvesBounds) {
    // A uint5 index is 0..31 by construction: no require needed for a
    // 32-element array. This is the C3-representation / C1-verification
    // synergy.
    auto v = verify_source(
        "(define (get a : (array int64 32) i : uint5) : int64"
        "  (array-ref a i))");
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kBoundsLower)[0],
              Outcome::kProved);
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kBoundsUpper)[0],
              Outcome::kProved);
}

TEST(VerifierTest, TooWideParamTypeLeavesUpperUnknown) {
    auto v = verify_source(
        "(define (get a : (array int64 32) i : uint6) : int64"
        "  (array-ref a i))");
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kBoundsLower)[0],
              Outcome::kProved);
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kBoundsUpper)[0],
              Outcome::kUnknown);
}

TEST(VerifierTest, IfGuardDischargesBranchObligation) {
    auto v = verify_source(
        "(define (safe a : (array int64 10) i : int64) : int64"
        "  (if (and (>= i 0) (< i 10)) (array-ref a i) 0))");
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kBoundsLower)[0],
              Outcome::kProved);
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kBoundsUpper)[0],
              Outcome::kProved);
}

TEST(VerifierTest, DivByZeroObligations) {
    auto v1 = verify_source("(define (f x) (/ x 2))");
    EXPECT_EQ(outcomes_of(v1.report, ObligationKind::kDivByZero)[0],
              Outcome::kProved);
    auto v2 = verify_source("(define (f x y) (/ x y))");
    EXPECT_EQ(outcomes_of(v2.report, ObligationKind::kDivByZero)[0],
              Outcome::kUnknown);
    auto v3 = verify_source(
        "(define (f x y) (require (> y 0)) (/ x y))");
    EXPECT_EQ(outcomes_of(v3.report, ObligationKind::kDivByZero)[0],
              Outcome::kProved);
}

TEST(VerifierTest, EnsureProvedFromBranches) {
    auto v = verify_source(
        "(define (max2 a b) : int64"
        "  (ensure (>= result a))"
        "  (ensure (>= result b))"
        "  (if (> a b) a b))");
    auto outcomes = outcomes_of(v.report, ObligationKind::kEnsure);
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_EQ(outcomes[0], Outcome::kProved);
    EXPECT_EQ(outcomes[1], Outcome::kProved);
}

TEST(VerifierTest, WrongEnsureIsUnknown) {
    auto v = verify_source(
        "(define (broken a b) : int64 (ensure (> result a)) a)");
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kEnsure)[0],
              Outcome::kUnknown);
}

TEST(VerifierTest, CalleeRequireCheckedAtCallSite) {
    auto v = verify_source(
        "(define (idx a : (array int64 10) i : int64) : int64"
        "  (require (>= i 0)) (require (< i 10))"
        "  (array-ref a i))"
        "(define (good a : (array int64 10)) : int64 (idx a 5))"
        "(define (bad a : (array int64 10)) : int64 (idx a 15))");
    auto outcomes =
        outcomes_of(v.report, ObligationKind::kRequireAtCall);
    // good: two proved; bad: lower proved, upper unknown.
    ASSERT_EQ(outcomes.size(), 4u);
    EXPECT_EQ(outcomes[0], Outcome::kProved);
    EXPECT_EQ(outcomes[1], Outcome::kProved);
    EXPECT_EQ(outcomes[2], Outcome::kProved);
    EXPECT_EQ(outcomes[3], Outcome::kUnknown);
}

TEST(VerifierTest, CalleeEnsureAssumedAtCallSite) {
    auto v = verify_source(
        "(define (abs x) : int64 (ensure (>= result 0))"
        "  (if (< x 0) (- 0 x) x))"
        "(define (f a : (array int64 10) x : int64) : int64"
        "  (let ((i (abs x)))"
        "    (if (< i 10) (array-ref a i) 0)))");
    // Lower bound needs abs's ensure; upper needs the if guard.
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kBoundsLower)[0],
              Outcome::kProved);
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kBoundsUpper)[0],
              Outcome::kProved);
}

TEST(VerifierTest, LoopInvariantProtocol) {
    auto v = verify_source(
        "(define (fill a : (array int64 64)) : unit"
        "  (let ((i 0))"
        "    (while (< i 64)"
        "      (invariant (>= i 0))"
        "      (invariant (<= i 64))"
        "      (array-set! a i 7)"
        "      (set! i (+ i 1)))))");
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kInvariantEntry),
              (std::vector<Outcome>{Outcome::kProved, Outcome::kProved}));
    EXPECT_EQ(
        outcomes_of(v.report, ObligationKind::kInvariantPreserved),
        (std::vector<Outcome>{Outcome::kProved, Outcome::kProved}));
    // In-loop bounds follow from invariant + condition.
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kBoundsLower)[0],
              Outcome::kProved);
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kBoundsUpper)[0],
              Outcome::kProved);
}

TEST(VerifierTest, LoopWithoutInvariantLeavesBoundsUnknown) {
    auto v = verify_source(
        "(define (fill a : (array int64 64)) : unit"
        "  (let ((i 0))"
        "    (while (< i 64)"
        "      (array-set! a i 7)"
        "      (set! i (+ i 1)))))");
    // Without an invariant the havocked i has no lower bound.
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kBoundsLower)[0],
              Outcome::kUnknown);
    // The loop condition still gives the upper bound.
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kBoundsUpper)[0],
              Outcome::kProved);
}

TEST(VerifierTest, BrokenInvariantReportedUnknown) {
    auto v = verify_source(
        "(define (f) : unit"
        "  (let ((i 0))"
        "    (while (< i 10)"
        "      (invariant (<= i 3))"  // not preserved
        "      (set! i (+ i 1)))))");
    auto preserved =
        outcomes_of(v.report, ObligationKind::kInvariantPreserved);
    ASSERT_EQ(preserved.size(), 1u);
    EXPECT_EQ(preserved[0], Outcome::kUnknown);
}

TEST(VerifierTest, AllocSizeObligation) {
    auto v1 = verify_source("(define (f) (array-make 8 0))");
    EXPECT_EQ(outcomes_of(v1.report, ObligationKind::kAllocSize)[0],
              Outcome::kProved);
    auto v2 = verify_source("(define (f n : int64) (array-make n 0))");
    EXPECT_EQ(outcomes_of(v2.report, ObligationKind::kAllocSize)[0],
              Outcome::kUnknown);
}

TEST(VerifierTest, AssertActsAsAssumeDownstream) {
    auto v = verify_source(
        "(define (f a : (array int64 10) i : int64) : int64"
        "  (assert (>= i 0)) (assert (< i 10))"
        "  (array-ref a i))");
    // The asserts themselves are unknown (nothing implies them)...
    auto asserts = outcomes_of(v.report, ObligationKind::kAssert);
    EXPECT_EQ(asserts[0], Outcome::kUnknown);
    // ...but the bounds checks after them are discharged.
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kBoundsLower)[0],
              Outcome::kProved);
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kBoundsUpper)[0],
              Outcome::kProved);
}

TEST(VerifierTest, ReportRendersAndIndexes) {
    auto v = verify_source(
        "(define (f a : (array int64 8)) : int64 (array-ref a 3))");
    EXPECT_GT(v.report.total(), 0u);
    EXPECT_EQ(v.report.proved(), v.report.total());
    std::string rendered = v.report.to_string();
    EXPECT_NE(rendered.find("bounds-upper"), std::string::npos);

    const lang::Expr* site = v.typed.program().functions[0].body[0];
    EXPECT_TRUE(v.report.is_proved(site, ObligationKind::kBoundsUpper));
    EXPECT_TRUE(v.report.is_proved(site, ObligationKind::kBoundsLower));
}

TEST(VerifierTest, MaskedIndexIsBounded) {
    // The ring-buffer idiom: (bitand i 15) lies in [0, 15], so a
    // 16-slot buffer access needs no runtime checks.
    auto v = verify_source(
        "(define (ring buf : (array int64 16) i : int64) : int64"
        "  (array-ref buf (bitand i 15)))");
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kBoundsLower)[0],
              Outcome::kProved);
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kBoundsUpper)[0],
              Outcome::kProved);
}

TEST(VerifierTest, MaskTooWideLeavesUpperUnknown) {
    auto v = verify_source(
        "(define (ring buf : (array int64 16) i : int64) : int64"
        "  (array-ref buf (bitand i 31)))");
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kBoundsLower)[0],
              Outcome::kProved);
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kBoundsUpper)[0],
              Outcome::kUnknown);
}

TEST(VerifierTest, MaskOnEitherSide) {
    auto v = verify_source(
        "(define (ring buf : (array int64 16) i : int64) : int64"
        "  (array-ref buf (bitand 15 i)))");
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kBoundsUpper)[0],
              Outcome::kProved);
}

Verified verify_overflow(std::string_view source) {
    DiagnosticEngine diags;
    auto parsed = lang::parse_program(source, diags);
    EXPECT_TRUE(parsed.is_ok()) << diags.to_string();
    lang::Program program = std::move(parsed).take();
    EXPECT_TRUE(lang::resolve_program(program, diags).is_ok());
    auto typed = types::check_program(std::move(program), diags);
    EXPECT_TRUE(typed.is_ok()) << diags.to_string();
    Verified out{std::move(typed).take(), {}};
    VerifyOptions options;
    options.overflow_obligations = true;
    out.report = verify_program_with_options(out.typed, options);
    return out;
}

TEST(VerifierTest, OverflowObligationsOffByDefault) {
    auto v = verify_source("(define (f x : int8) : int8 (+ x 1))");
    EXPECT_TRUE(outcomes_of(v.report, ObligationKind::kOverflow).empty());
}

TEST(VerifierTest, OverflowProvedWhenRangeGuarded) {
    auto v = verify_overflow(
        "(define (f x : int8) : int8 (require (< x 100)) "
        "(require (> x -100)) (+ x 1))");
    auto outcomes = outcomes_of(v.report, ObligationKind::kOverflow);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0], Outcome::kProved);
}

TEST(VerifierTest, OverflowUnknownWhenUnguarded) {
    // x could be 127: x + 1 wraps.
    auto v = verify_overflow("(define (f x : int8) : int8 (+ x 1))");
    auto outcomes = outcomes_of(v.report, ObligationKind::kOverflow);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0], Outcome::kUnknown);
}

TEST(VerifierTest, OverflowUsesTypeRangeOfOperands) {
    // uint4 operands: max 15 + 15 = 30 fits uint8 result... but the
    // result type here is uint4 via unification, so 15+15 can wrap.
    auto v1 = verify_overflow(
        "(define (f x : uint4 y : uint4) : uint4 (+ x y))");
    EXPECT_EQ(outcomes_of(v1.report, ObligationKind::kOverflow)[0],
              Outcome::kUnknown);
    // With operand guards the sum provably fits (7 + 7 = 14 <= 15).
    auto v2 = verify_overflow(
        "(define (f x : uint4 y : uint4) : uint4 "
        "(require (< x 8)) (require (< y 8)) (+ x y))");
    auto outcomes = outcomes_of(v2.report, ObligationKind::kOverflow);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0], Outcome::kProved);
}

TEST(VerifierTest, SixtyFourBitArithmeticHasNoOverflowObligation) {
    auto v = verify_overflow("(define (f x : int64) (+ x 1))");
    EXPECT_TRUE(outcomes_of(v.report, ObligationKind::kOverflow).empty());
}

TEST(VerifierTest, MutationInvalidatesEarlierFacts) {
    // After set! the old bound must not stick to the new value.
    auto v = verify_source(
        "(define (f a : (array int64 10) i : int64) : int64"
        "  (require (>= i 0)) (require (< i 10))"
        "  (let ((j i))"
        "    (set! j (+ j 100))"
        "    (array-ref a j)))");
    EXPECT_EQ(outcomes_of(v.report, ObligationKind::kBoundsUpper)[0],
              Outcome::kUnknown)
        << "j+100 must not inherit j's old upper bound";
}

}  // namespace
}  // namespace bitc::verify
