#include "verify/solver.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace bitc::verify {
namespace {

LinTerm var(SymVar v) { return LinTerm::variable(v); }

TEST(SolverTest, TautologyProves) {
    Solver solver;
    EXPECT_EQ(solver.prove_valid(Formula::truth()), Outcome::kProved);
    // x <= x
    EXPECT_EQ(solver.prove_valid(Formula::le(var(1), var(1))),
              Outcome::kProved);
}

TEST(SolverTest, FalsehoodDoesNotProve) {
    Solver solver;
    EXPECT_EQ(solver.prove_valid(Formula::falsity()), Outcome::kUnknown);
    // x <= 5 is not valid.
    EXPECT_EQ(solver.prove_valid(Formula::le(var(1), LinTerm(5))),
              Outcome::kUnknown);
}

TEST(SolverTest, TransitivityOfBounds) {
    // (0 <= i) and (i < n) and (n <= 10)  =>  i < 10
    Solver solver;
    std::vector<Formula::Ref> premises = {
        Formula::le(LinTerm(0), var(1)),
        Formula::lt(var(1), var(2)),
        Formula::le(var(2), LinTerm(10)),
    };
    EXPECT_EQ(solver.prove_entails(premises,
                                   Formula::lt(var(1), LinTerm(10))),
              Outcome::kProved);
    // ... but not i < 9.
    EXPECT_EQ(solver.prove_entails(premises,
                                   Formula::lt(var(1), LinTerm(9))),
              Outcome::kUnknown);
}

TEST(SolverTest, EqualitySubstitutes) {
    // (x == 2y) and (y == 3)  =>  x == 6
    Solver solver;
    std::vector<Formula::Ref> premises = {
        Formula::eq(var(1), var(2).scale(2)),
        Formula::eq(var(2), LinTerm(3)),
    };
    EXPECT_EQ(solver.prove_entails(premises,
                                   Formula::eq(var(1), LinTerm(6))),
              Outcome::kProved);
}

TEST(SolverTest, DisjunctivePremise) {
    // (x == 1 or x == 2)  =>  1 <= x <= 2
    Solver solver;
    std::vector<Formula::Ref> premises = {
        Formula::disj({Formula::eq(var(1), LinTerm(1)),
                       Formula::eq(var(1), LinTerm(2))}),
    };
    auto goal = Formula::conj({Formula::le(LinTerm(1), var(1)),
                               Formula::le(var(1), LinTerm(2))});
    EXPECT_EQ(solver.prove_entails(premises, goal), Outcome::kProved);
}

TEST(SolverTest, NegatedGoalSplits) {
    // (x >= 1)  =>  x != 0
    Solver solver;
    std::vector<Formula::Ref> premises = {
        Formula::le(LinTerm(1), var(1)),
    };
    auto goal = Formula::negate(Formula::eq(var(1), LinTerm(0)));
    EXPECT_EQ(solver.prove_entails(premises, goal), Outcome::kProved);
}

TEST(SolverTest, IntegerTighteningBeatsRationalGap) {
    // For integers: (2x <= 5) => (x <= 2). Rationally x could be 2.5.
    Solver solver;
    std::vector<Formula::Ref> premises = {
        Formula::le(var(1).scale(2), LinTerm(5)),
    };
    EXPECT_EQ(solver.prove_entails(premises,
                                   Formula::le(var(1), LinTerm(2))),
              Outcome::kProved);
}

TEST(SolverTest, ImplicationChains) {
    // ((a -> b) and a) => b   with a := x<=0, b := y<=0 as opaque atoms.
    Solver solver;
    auto a = Formula::le(var(1), LinTerm(0));
    auto b = Formula::le(var(2), LinTerm(0));
    std::vector<Formula::Ref> premises = {Formula::implies(a, b), a};
    EXPECT_EQ(solver.prove_entails(premises, b), Outcome::kProved);
}

TEST(SolverTest, UnsatPremisesProveAnything) {
    Solver solver;
    std::vector<Formula::Ref> premises = {
        Formula::le(var(1), LinTerm(0)),
        Formula::le(LinTerm(1), var(1)),
    };
    EXPECT_EQ(solver.prove_entails(premises,
                                   Formula::eq(var(9), LinTerm(42))),
              Outcome::kProved);
}

TEST(SolverTest, ManyVariableChain) {
    // x0 <= x1 <= ... <= x19  =>  x0 <= x19
    Solver solver;
    std::vector<Formula::Ref> premises;
    for (SymVar i = 0; i < 19; ++i) {
        premises.push_back(Formula::le(var(i), var(i + 1)));
    }
    EXPECT_EQ(solver.prove_entails(premises, Formula::le(var(0), var(19))),
              Outcome::kProved);
    EXPECT_EQ(solver.prove_entails(premises, Formula::le(var(19), var(0))),
              Outcome::kUnknown);
}

TEST(SolverTest, StatsAreCounted) {
    Solver solver;
    solver.prove_valid(Formula::truth());
    solver.prove_valid(Formula::le(var(1), LinTerm(0)));
    EXPECT_EQ(solver.stats().queries, 2u);
    EXPECT_EQ(solver.stats().proved, 1u);
    EXPECT_EQ(solver.stats().unknown, 1u);
}

TEST(SolverTest, BlowupCapReturnsUnknownNotWrong) {
    // A big disjunction of equalities exceeds the disjunct cap.
    SolverConfig config;
    config.max_disjuncts = 4;
    Solver solver(config);
    std::vector<Formula::Ref> options;
    for (int i = 0; i < 32; ++i) {
        options.push_back(Formula::eq(var(1), LinTerm(i)));
    }
    std::vector<Formula::Ref> premises = {Formula::disj(options)};
    EXPECT_EQ(solver.prove_entails(premises,
                                   Formula::le(LinTerm(0), var(1))),
              Outcome::kUnknown);
}

TEST(SolverTest, SoundnessFuzz) {
    // Property: whenever the solver proves premises => goal, a random
    // integer assignment satisfying the premises satisfies the goal.
    Rng rng(20260705);
    Solver solver;
    int proved_checked = 0;
    for (int trial = 0; trial < 300; ++trial) {
        // Build random premises/goal over 3 variables.
        auto random_term = [&] {
            LinTerm t(rng.next_in(-5, 5));
            for (SymVar v = 0; v < 3; ++v) {
                t = t.add(LinTerm::variable(v).scale(rng.next_in(-3, 3)));
            }
            return t;
        };
        std::vector<Formula::Ref> premises;
        bool folded = false;
        for (int i = 0; i < 3; ++i) {
            auto p = Formula::le(random_term(), random_term());
            // Constant atoms fold to true/false; the evaluator below
            // only understands real atoms, so skip those trials.
            folded |= p->kind() != FormulaKind::kAtomLe;
            premises.push_back(std::move(p));
        }
        auto goal = Formula::le(random_term(), random_term());
        folded |= goal->kind() != FormulaKind::kAtomLe;
        if (folded) continue;
        if (solver.prove_entails(premises, goal) != Outcome::kProved) {
            continue;
        }
        ++proved_checked;
        // Sample assignments; count only those satisfying premises.
        for (int sample = 0; sample < 200; ++sample) {
            int64_t vals[3] = {rng.next_in(-10, 10), rng.next_in(-10, 10),
                               rng.next_in(-10, 10)};
            auto eval_term = [&](const LinTerm& t) {
                int64_t acc = t.constant();
                for (const auto& [v, c] : t.coefficients()) {
                    acc += c * vals[v];
                }
                return acc;
            };
            bool premises_hold = true;
            for (const auto& p : premises) {
                if (eval_term(p->term()) > 0) {
                    premises_hold = false;
                    break;
                }
            }
            if (!premises_hold) continue;
            EXPECT_LE(eval_term(goal->term()), 0)
                << "solver proved a falsifiable entailment";
        }
    }
    // The fuzz must actually exercise proved cases to mean anything.
    EXPECT_GT(proved_checked, 5);
}

}  // namespace
}  // namespace bitc::verify
