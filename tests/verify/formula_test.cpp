#include "verify/formula.hpp"

#include <gtest/gtest.h>

namespace bitc::verify {
namespace {

TEST(LinTermTest, ArithmeticCombines) {
    LinTerm x = LinTerm::variable(1);
    LinTerm y = LinTerm::variable(2);
    LinTerm t = x.scale(2).add(y).add(LinTerm(5));
    EXPECT_EQ(t.coefficient(1), 2);
    EXPECT_EQ(t.coefficient(2), 1);
    EXPECT_EQ(t.constant(), 5);
}

TEST(LinTermTest, CancellationDropsVariables) {
    LinTerm x = LinTerm::variable(1);
    LinTerm t = x.add(LinTerm(3)).sub(x);
    EXPECT_TRUE(t.is_constant());
    EXPECT_EQ(t.constant(), 3);
}

TEST(LinTermTest, ScaleByZeroIsConstantZero) {
    LinTerm x = LinTerm::variable(1).add(LinTerm(7));
    LinTerm t = x.scale(0);
    EXPECT_TRUE(t.is_constant());
    EXPECT_EQ(t.constant(), 0);
}

TEST(LinTermTest, NegateFlipsEverything) {
    LinTerm t = LinTerm::variable(3).scale(4).add(LinTerm(-2)).negate();
    EXPECT_EQ(t.coefficient(3), -4);
    EXPECT_EQ(t.constant(), 2);
}

TEST(FormulaTest, ConstantFoldingAtoms) {
    EXPECT_EQ(Formula::le_zero(LinTerm(-1))->kind(), FormulaKind::kTrue);
    EXPECT_EQ(Formula::le_zero(LinTerm(0))->kind(), FormulaKind::kTrue);
    EXPECT_EQ(Formula::le_zero(LinTerm(1))->kind(), FormulaKind::kFalse);
    EXPECT_EQ(Formula::eq_zero(LinTerm(0))->kind(), FormulaKind::kTrue);
    EXPECT_EQ(Formula::eq_zero(LinTerm(2))->kind(), FormulaKind::kFalse);
}

TEST(FormulaTest, ConjSimplifies) {
    auto t = Formula::truth();
    auto f = Formula::falsity();
    EXPECT_EQ(Formula::conj({t, t})->kind(), FormulaKind::kTrue);
    EXPECT_EQ(Formula::conj({t, f})->kind(), FormulaKind::kFalse);
    auto atom = Formula::lt(LinTerm::variable(1), LinTerm(5));
    EXPECT_EQ(Formula::conj({t, atom}), atom);
}

TEST(FormulaTest, DisjSimplifies) {
    auto t = Formula::truth();
    auto f = Formula::falsity();
    EXPECT_EQ(Formula::disj({f, f})->kind(), FormulaKind::kFalse);
    EXPECT_EQ(Formula::disj({f, t})->kind(), FormulaKind::kTrue);
    auto atom = Formula::lt(LinTerm::variable(1), LinTerm(5));
    EXPECT_EQ(Formula::disj({f, atom}), atom);
}

TEST(FormulaTest, DoubleNegationCancels) {
    auto atom = Formula::lt(LinTerm::variable(1), LinTerm(5));
    EXPECT_EQ(Formula::negate(Formula::negate(atom)), atom);
}

TEST(FormulaTest, IntegerTighteningInLt) {
    // x < 5 should become x - 4 <= 0.
    auto f = Formula::lt(LinTerm::variable(1), LinTerm(5));
    ASSERT_EQ(f->kind(), FormulaKind::kAtomLe);
    EXPECT_EQ(f->term().coefficient(1), 1);
    EXPECT_EQ(f->term().constant(), -4);
}

TEST(FormulaTest, RendersReadably) {
    auto f = Formula::conj(
        {Formula::le(LinTerm(0), LinTerm::variable(1)),
         Formula::lt(LinTerm::variable(1), LinTerm(10))});
    EXPECT_NE(f->to_string().find("and"), std::string::npos);
}

}  // namespace
}  // namespace bitc::verify
