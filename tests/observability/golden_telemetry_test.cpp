/**
 * Golden-telemetry determinism: a fixed program under a fixed seed
 * must produce byte-identical opcode counts and identical allocation
 * counters on every run, and the numbers must not depend on which
 * dispatch loop executed the program.  Telemetry that drifts between
 * identical runs is worse than no telemetry — this is the test that
 * keeps it trustworthy.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "support/metrics.hpp"
#include "tests/integration/test_programs.hpp"
#include "vm/pipeline.hpp"

namespace bitc::vm {
namespace {

using namespace testprog;

constexpr int64_t kSeed = 12345;

/** Everything one instrumented run yields. */
struct Telemetry {
    int64_t result = 0;
    metrics::Snapshot snap;
};

Telemetry run_instrumented(const BuiltProgram& built, ValueMode mode,
                           HeapPolicy policy, DispatchMode dispatch) {
    VmConfig config;
    config.mode = mode;
    config.heap = policy;
    config.dispatch = dispatch;
    config.heap_words = 1 << 22;
    config.count_ops = true;
    auto vm = built.instantiate(config);

    metrics::reset();
    metrics::enable();
    auto result = vm->call("sort-main", {kSeed});
    metrics::disable();

    Telemetry out;
    out.snap = metrics::snapshot();
    EXPECT_TRUE(result.is_ok()) << result.status().to_string();
    out.result = result.is_ok() ? result.value() : -1;
    return out;
}

std::unique_ptr<BuiltProgram> build_sort() {
    BuildOptions options;
    options.compiler.elide_proved_checks = true;
    auto built = build_program(kQuicksort, options);
    EXPECT_TRUE(built.is_ok()) << built.status().to_string();
    return std::move(built).take();
}

void expect_identical(const Telemetry& a, const Telemetry& b,
                      const char* what) {
    EXPECT_EQ(a.result, b.result) << what;
    // Byte-identical opcode table — not merely "close".
    EXPECT_EQ(std::memcmp(a.snap.opcodes.data(), b.snap.opcodes.data(),
                          sizeof(a.snap.opcodes)),
              0)
        << what;
    EXPECT_EQ(a.snap.counter(metrics::Counter::kVmInstructions),
              b.snap.counter(metrics::Counter::kVmInstructions))
        << what;
    EXPECT_EQ(a.snap.counter(metrics::Counter::kHeapAllocations),
              b.snap.counter(metrics::Counter::kHeapAllocations))
        << what;
    EXPECT_EQ(a.snap.counter(metrics::Counter::kHeapBytesAllocated),
              b.snap.counter(metrics::Counter::kHeapBytesAllocated))
        << what;
}

TEST(GoldenTelemetryTest, RepeatRunsAreByteIdentical) {
    auto built = build_sort();
    Telemetry first = run_instrumented(
        *built, ValueMode::kBoxed, HeapPolicy::kGenerational,
        DispatchMode::kThreaded);
    EXPECT_EQ(first.result, native_sort_checksum(kSeed));
    for (int run = 1; run < 3; ++run) {
        Telemetry again = run_instrumented(
            *built, ValueMode::kBoxed, HeapPolicy::kGenerational,
            DispatchMode::kThreaded);
        expect_identical(first, again, "repeat run");
    }
}

TEST(GoldenTelemetryTest, DispatchModeDoesNotChangeTelemetry) {
    auto built = build_sort();
    for (auto [mode, policy] :
         {std::pair{ValueMode::kUnboxed, HeapPolicy::kRegion},
          std::pair{ValueMode::kBoxed, HeapPolicy::kGenerational}}) {
        Telemetry sw = run_instrumented(*built, mode, policy,
                                        DispatchMode::kSwitch);
        Telemetry th = run_instrumented(*built, mode, policy,
                                        DispatchMode::kThreaded);
        expect_identical(sw, th, heap_policy_name(policy));
    }
}

TEST(GoldenTelemetryTest, OpcodeCountsSumToInstructionsRetired) {
    auto built = build_sort();
    Telemetry t = run_instrumented(*built, ValueMode::kUnboxed,
                                   HeapPolicy::kRegion,
                                   DispatchMode::kThreaded);
    uint64_t opcode_total = std::accumulate(
        t.snap.opcodes.begin(), t.snap.opcodes.end(), uint64_t{0});
    EXPECT_EQ(opcode_total,
              t.snap.counter(metrics::Counter::kVmInstructions));
    EXPECT_GT(opcode_total, 0u);
    EXPECT_EQ(t.snap.counter(metrics::Counter::kVmRuns), 1u);
}

TEST(GoldenTelemetryTest, CountOpsMatchesProfileCounts) {
    // count_ops is the clock-free sibling of --profile: both must see
    // the exact same opcode counts for the same program.
    auto built = build_sort();
    Telemetry counted = run_instrumented(*built, ValueMode::kUnboxed,
                                         HeapPolicy::kRegion,
                                         DispatchMode::kThreaded);

    VmConfig config;
    config.profile = true;
    config.heap_words = 1 << 22;
    auto vm = built->instantiate(config);
    auto result = vm->call("sort-main", {kSeed});
    ASSERT_TRUE(result.is_ok()) << result.status().to_string();
    const OpProfile& profile = vm->profile();
    for (size_t op = 0; op < kNumOps; ++op) {
        EXPECT_EQ(counted.snap.opcodes[op], profile.counts[op])
            << op_name(static_cast<Op>(op));
    }
}

}  // namespace
}  // namespace bitc::vm
