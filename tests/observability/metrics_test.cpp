/**
 * Unit tests for the process-wide metrics registry: counter/gauge/
 * histogram semantics, the disabled fast path, atomicity under
 * threads, snapshot monotonicity, and the versioned JSON schema.
 *
 * The registry is process-global state, so every test starts from
 * reset() + enable() and leaves the registry disabled; suites run
 * single-process under gtest, which serializes tests.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "support/metrics.hpp"

namespace bitc::metrics {
namespace {

class MetricsTest : public ::testing::Test {
  protected:
    void SetUp() override {
        reset();
        enable();
    }
    void TearDown() override {
        disable();
        reset();
    }
};

TEST_F(MetricsTest, CountersAccumulate) {
    count(Counter::kVmRuns);
    count(Counter::kVmRuns);
    count(Counter::kVmInstructions, 1000);
    count(Counter::kVmInstructions, 234);

    Snapshot snap = snapshot();
    EXPECT_EQ(snap.counter(Counter::kVmRuns), 2u);
    EXPECT_EQ(snap.counter(Counter::kVmInstructions), 1234u);
    EXPECT_EQ(snap.counter(Counter::kStmCommits), 0u);
}

TEST_F(MetricsTest, DisabledUpdatesAreNoOps) {
    disable();
    ASSERT_FALSE(enabled());
    count(Counter::kVmRuns);
    gauge_set(Gauge::kHeapWordsInUse, 42);
    gauge_max(Gauge::kHeapPeakWordsInUse, 42);
    observe(Histogram::kGcPauseNs, 42);
    count_opcode(3, 42);

    Snapshot snap = snapshot();
    EXPECT_EQ(snap.counter(Counter::kVmRuns), 0u);
    EXPECT_EQ(snap.gauge(Gauge::kHeapWordsInUse), 0u);
    EXPECT_EQ(snap.gauge(Gauge::kHeapPeakWordsInUse), 0u);
    EXPECT_EQ(snap.histogram(Histogram::kGcPauseNs).count, 0u);
    EXPECT_EQ(snap.opcodes[3], 0u);
}

TEST_F(MetricsTest, EnableDoesNotClearPriorValues) {
    count(Counter::kChanSends, 5);
    disable();
    enable();
    EXPECT_EQ(snapshot().counter(Counter::kChanSends), 5u);
}

TEST_F(MetricsTest, ResetZeroesEverything) {
    count(Counter::kChanSends, 5);
    gauge_set(Gauge::kHeapWordsInUse, 9);
    observe(Histogram::kVmRunNs, 100);
    count_opcode(1, 7);
    reset();

    Snapshot snap = snapshot();
    for (uint64_t v : snap.counters) EXPECT_EQ(v, 0u);
    for (uint64_t v : snap.gauges) EXPECT_EQ(v, 0u);
    for (const auto& h : snap.histograms) {
        EXPECT_EQ(h.count, 0u);
        EXPECT_EQ(h.sum, 0u);
    }
    for (uint64_t v : snap.opcodes) EXPECT_EQ(v, 0u);
}

TEST_F(MetricsTest, GaugeSetIsLastWriteWins) {
    gauge_set(Gauge::kHeapWordsInUse, 100);
    gauge_set(Gauge::kHeapWordsInUse, 7);
    EXPECT_EQ(snapshot().gauge(Gauge::kHeapWordsInUse), 7u);
}

TEST_F(MetricsTest, GaugeMaxKeepsHighWater) {
    gauge_max(Gauge::kHeapPeakWordsInUse, 10);
    gauge_max(Gauge::kHeapPeakWordsInUse, 100);
    gauge_max(Gauge::kHeapPeakWordsInUse, 50);
    EXPECT_EQ(snapshot().gauge(Gauge::kHeapPeakWordsInUse), 100u);
}

TEST_F(MetricsTest, HistogramBucketBoundaries) {
    // Bucket 0 holds 0; bucket i holds [2^(i-1), 2^i).
    EXPECT_EQ(bucket_of(0), 0u);
    EXPECT_EQ(bucket_of(1), 1u);
    EXPECT_EQ(bucket_of(2), 2u);
    EXPECT_EQ(bucket_of(3), 2u);
    EXPECT_EQ(bucket_of(4), 3u);
    EXPECT_EQ(bucket_of(7), 3u);
    EXPECT_EQ(bucket_of(8), 4u);
    EXPECT_EQ(bucket_of(1023), 10u);
    EXPECT_EQ(bucket_of(1024), 11u);
    // The last bucket absorbs everything past the table.
    EXPECT_EQ(bucket_of(uint64_t{1} << 40), kNumBuckets - 1);
    EXPECT_EQ(bucket_of(~uint64_t{0}), kNumBuckets - 1);

    // bucket_lower_bound inverts bucket_of at bucket starts.
    EXPECT_EQ(bucket_lower_bound(0), 0u);
    for (size_t b = 1; b + 1 < kNumBuckets; ++b) {
        uint64_t lo = bucket_lower_bound(b);
        EXPECT_EQ(bucket_of(lo), b) << "bucket " << b;
        EXPECT_EQ(bucket_of(2 * lo - 1), b) << "bucket " << b;
        EXPECT_EQ(bucket_of(2 * lo), b + 1) << "bucket " << b;
    }
}

TEST_F(MetricsTest, HistogramObservationsLandInBuckets) {
    observe(Histogram::kGcPauseNs, 0);
    observe(Histogram::kGcPauseNs, 1);
    observe(Histogram::kGcPauseNs, 3);
    observe(Histogram::kGcPauseNs, 1000);

    Snapshot snap = snapshot();
    const HistogramSnapshot& h = snap.histogram(Histogram::kGcPauseNs);
    EXPECT_EQ(h.count, 4u);
    EXPECT_EQ(h.sum, 1004u);
    EXPECT_EQ(h.buckets[0], 1u);
    EXPECT_EQ(h.buckets[1], 1u);
    EXPECT_EQ(h.buckets[2], 1u);
    EXPECT_EQ(h.buckets[10], 1u);

    uint64_t total = 0;
    for (uint64_t b : h.buckets) total += b;
    EXPECT_EQ(total, h.count);
}

TEST_F(MetricsTest, CountersAreExactUnderThreads) {
    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 100000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (uint64_t i = 0; i < kPerThread; ++i) {
                count(Counter::kStmCommits);
                observe(Histogram::kStmRetriesPerTxn, i & 7);
                gauge_max(Gauge::kChanDepthHighWater, i & 1023);
                count_opcode(5, 2);
            }
        });
    }
    for (auto& t : threads) t.join();

    Snapshot snap = snapshot();
    EXPECT_EQ(snap.counter(Counter::kStmCommits),
              kThreads * kPerThread);
    EXPECT_EQ(snap.histogram(Histogram::kStmRetriesPerTxn).count,
              kThreads * kPerThread);
    EXPECT_EQ(snap.gauge(Gauge::kChanDepthHighWater), 1023u);
    EXPECT_EQ(snap.opcodes[5], 2 * kThreads * kPerThread);
}

TEST_F(MetricsTest, SnapshotsBracketMonotonically) {
    count(Counter::kVmRuns, 3);
    Snapshot before = snapshot();
    count(Counter::kVmRuns, 2);
    observe(Histogram::kVmRunNs, 10);
    Snapshot after = snapshot();

    for (size_t i = 0; i < kNumCounters; ++i) {
        EXPECT_GE(after.counters[i], before.counters[i]) << i;
    }
    for (size_t i = 0; i < kNumHistograms; ++i) {
        EXPECT_GE(after.histograms[i].count, before.histograms[i].count);
        EXPECT_GE(after.histograms[i].sum, before.histograms[i].sum);
    }
    EXPECT_EQ(after.counter(Counter::kVmRuns), 5u);
}

TEST_F(MetricsTest, InstrumentNamesAreStableAndDotted) {
    // Spot-check the catalogue; the JSON test asserts full coverage.
    EXPECT_STREQ(counter_name(Counter::kVmRuns), "vm.runs");
    EXPECT_STREQ(counter_name(Counter::kGcMajorCollections),
                 "gc.major_collections");
    EXPECT_STREQ(counter_name(Counter::kFaultsInjected),
                 "fault.injected");
    EXPECT_STREQ(gauge_name(Gauge::kHeapWordsInUse),
                 "heap.words_in_use");
    EXPECT_STREQ(histogram_name(Histogram::kGcPauseNs), "gc.pause_ns");
    // The zero-copy data path's instruments: external dashboards key
    // on these exact strings.
    EXPECT_STREQ(counter_name(Counter::kNetPoolHits), "net.pool.hits");
    EXPECT_STREQ(counter_name(Counter::kNetPoolMisses),
                 "net.pool.misses");
    EXPECT_STREQ(counter_name(Counter::kNetBytesCopied),
                 "net.bytes_copied");
    EXPECT_STREQ(histogram_name(Histogram::kNetWritevFramesPerCall),
                 "net.writev_frames_per_call");

    // Every instrument has a unique non-empty name.
    std::vector<std::string> names;
    for (size_t i = 0; i < kNumCounters; ++i) {
        names.push_back(counter_name(static_cast<Counter>(i)));
    }
    for (size_t i = 0; i < kNumGauges; ++i) {
        names.push_back(gauge_name(static_cast<Gauge>(i)));
    }
    for (size_t i = 0; i < kNumHistograms; ++i) {
        names.push_back(histogram_name(static_cast<Histogram>(i)));
    }
    for (const auto& n : names) EXPECT_FALSE(n.empty());
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::adjacent_find(names.begin(), names.end()),
              names.end())
        << "duplicate instrument name";
}

// --- JSON schema ---------------------------------------------------------

TEST_F(MetricsTest, JsonCarriesSchemaAndVersion) {
    std::string json = to_json(snapshot());
    EXPECT_NE(json.find("\"schema\": \"bitc-metrics\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"version\": 1"), std::string::npos) << json;
    EXPECT_EQ(json.find("bitc-metrics"),
              json.rfind("bitc-metrics"));  // exactly once
}

TEST_F(MetricsTest, JsonListsEveryCatalogueInstrument) {
    std::string json = to_json(snapshot());
    for (size_t i = 0; i < kNumCounters; ++i) {
        std::string key =
            '"' + std::string(counter_name(static_cast<Counter>(i))) +
            "\":";
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
    for (size_t i = 0; i < kNumGauges; ++i) {
        std::string key =
            '"' + std::string(gauge_name(static_cast<Gauge>(i))) +
            "\":";
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
    for (size_t i = 0; i < kNumHistograms; ++i) {
        std::string key =
            '"' +
            std::string(histogram_name(static_cast<Histogram>(i))) +
            "\":";
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
    for (const char* section :
         {"\"counters\":", "\"gauges\":", "\"histograms\":",
          "\"opcodes\":"}) {
        EXPECT_NE(json.find(section), std::string::npos) << section;
    }
}

TEST_F(MetricsTest, JsonReflectsRecordedValues) {
    count(Counter::kVmInstructions, 12345);
    gauge_set(Gauge::kHeapWordsInUse, 777);
    observe(Histogram::kVmRunNs, 9);
    std::string json = to_json(snapshot());
    EXPECT_NE(json.find("\"vm.instructions\": 12345"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"heap.words_in_use\": 777"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"count\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"sum\": 9"), std::string::npos) << json;
}

TEST_F(MetricsTest, JsonHistogramBucketsSerializeAllThirtyTwo) {
    observe(Histogram::kGcPauseNs, 4);
    std::string json = to_json(snapshot());
    size_t pos = json.find("\"gc.pause_ns\":");
    ASSERT_NE(pos, std::string::npos);
    size_t open = json.find('[', pos);
    size_t close = json.find(']', open);
    ASSERT_NE(open, std::string::npos);
    ASSERT_NE(close, std::string::npos);
    std::string buckets = json.substr(open, close - open);
    EXPECT_EQ(std::count(buckets.begin(), buckets.end(), ','),
              static_cast<long>(kNumBuckets - 1));
}

TEST_F(MetricsTest, JsonAppendsCallerExtraSections) {
    std::string json = to_json(
        snapshot(),
        {{"fault_sites", "{\"x\": 1}"}, {"extra", "[2, 3]"}});
    EXPECT_NE(json.find("\"fault_sites\": {\"x\": 1}"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"extra\": [2, 3]"), std::string::npos)
        << json;
    // Extras ride after the catalogue; the document still closes.
    EXPECT_EQ(json.back(), '\n');
    EXPECT_EQ(json[json.size() - 2], '}');

    // And the plain overload emits none of them.
    std::string plain = to_json(snapshot());
    EXPECT_EQ(plain.find("fault_sites"), std::string::npos);
}

TEST_F(MetricsTest, JsonOpcodesSectionEmitsNonzeroOnly) {
    std::string empty = to_json(snapshot());
    size_t ops = empty.find("\"opcodes\": {");
    ASSERT_NE(ops, std::string::npos);
    size_t open = empty.find('{', ops);
    size_t close = empty.find('}', open);
    ASSERT_NE(close, std::string::npos);
    // No opcode counted yet: the section holds no keys.
    EXPECT_EQ(empty.substr(open, close - open).find('"'),
              std::string::npos)
        << empty;

    count_opcode(2, 41);
    std::string json = to_json(snapshot());
    // The VM registers its opcode namer at static init; linked into
    // this binary, index 2 prints as a named op, not "op2".
    EXPECT_EQ(json.find("\"op2\":"), std::string::npos) << json;
    EXPECT_NE(json.find(": 41"), std::string::npos) << json;
}

}  // namespace
}  // namespace bitc::metrics
