/**
 * Unit tests for the trace ring: basic emit/snapshot/dump round trips,
 * wraparound with an exact dropped count, the disabled fast path, and
 * concurrent emitters.
 *
 * The ring is process-global; each test starts it fresh and clears it
 * on the way out.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "support/trace.hpp"

namespace bitc::trace {
namespace {

class TraceTest : public ::testing::Test {
  protected:
    void TearDown() override { clear(); }
};

TEST_F(TraceTest, EmitSnapshotRoundTrip) {
    start(64);
    ASSERT_TRUE(enabled());
    emit(Event::kGcBegin, 1, 0);
    emit(Event::kGcEnd, 12345, 4096);
    emit(Event::kStmCommit, 2);
    stop();
    ASSERT_FALSE(enabled());

    std::vector<Record> records = snapshot();
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].seq, 0u);
    EXPECT_EQ(records[0].event, Event::kGcBegin);
    EXPECT_EQ(records[0].arg0, 1u);
    EXPECT_EQ(records[1].event, Event::kGcEnd);
    EXPECT_EQ(records[1].arg0, 12345u);
    EXPECT_EQ(records[1].arg1, 4096u);
    EXPECT_EQ(records[2].event, Event::kStmCommit);
    EXPECT_EQ(records[2].seq, 2u);
    // Timestamps are monotone per thread.
    EXPECT_LE(records[0].ts_ns, records[1].ts_ns);
    EXPECT_LE(records[1].ts_ns, records[2].ts_ns);

    EXPECT_EQ(total(), 3u);
    EXPECT_EQ(dropped(), 0u);
}

TEST_F(TraceTest, CapacityRoundsUpToPowerOfTwo) {
    start(9);
    EXPECT_EQ(capacity(), 16u);
    start(3);
    EXPECT_EQ(capacity(), 8u);  // minimum 8
    start(64);
    EXPECT_EQ(capacity(), 64u);
}

TEST_F(TraceTest, WraparoundKeepsNewestAndCountsDropped) {
    start(8);
    for (uint64_t i = 0; i < 20; ++i) {
        emit(Event::kChanSend, i);
    }
    stop();

    EXPECT_EQ(total(), 20u);
    EXPECT_EQ(dropped(), 12u);

    std::vector<Record> records = snapshot();
    ASSERT_EQ(records.size(), 8u);
    // The retained window is the newest 8, oldest first.
    for (size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].seq, 12 + i);
        EXPECT_EQ(records[i].arg0, 12 + i);
        EXPECT_EQ(records[i].event, Event::kChanSend);
    }
}

TEST_F(TraceTest, RestartClearsPriorContents) {
    start(8);
    emit(Event::kChanSend, 1);
    emit(Event::kChanSend, 2);
    start(8);
    EXPECT_EQ(total(), 0u);
    EXPECT_EQ(dropped(), 0u);
    EXPECT_TRUE(snapshot().empty());
}

TEST_F(TraceTest, DisabledEmitIsANoOp) {
    start(8);
    stop();
    emit(Event::kChanSend, 1);
    EXPECT_EQ(total(), 0u);
    EXPECT_TRUE(snapshot().empty());

    clear();
    EXPECT_EQ(capacity(), 0u);
    emit(Event::kChanSend, 1);  // never started: must not crash
    EXPECT_EQ(total(), 0u);
}

TEST_F(TraceTest, ConcurrentEmittersLoseNothing) {
    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 10000;
    start(1u << 15);  // 32768 slots < 80000 events: forces wraparound
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            for (uint64_t i = 0; i < kPerThread; ++i) {
                emit(Event::kStmCommit, static_cast<uint64_t>(t), i);
            }
        });
    }
    for (auto& t : threads) t.join();
    stop();

    EXPECT_EQ(total(), kThreads * kPerThread);
    EXPECT_EQ(dropped(), kThreads * kPerThread - capacity());
    std::vector<Record> records = snapshot();
    ASSERT_EQ(records.size(), capacity());
    // Sequence numbers are unique and contiguous over the window.
    for (size_t i = 1; i < records.size(); ++i) {
        EXPECT_EQ(records[i].seq, records[i - 1].seq + 1);
    }
    // Each record survived intact: its per-thread payload is coherent.
    for (const Record& r : records) {
        EXPECT_EQ(r.event, Event::kStmCommit);
        EXPECT_LT(r.arg0, static_cast<uint64_t>(kThreads));
        EXPECT_LT(r.arg1, kPerThread);
    }
}

TEST_F(TraceTest, EventNamesAreStable) {
    EXPECT_STREQ(event_name(Event::kGcBegin), "gc-begin");
    EXPECT_STREQ(event_name(Event::kAllocSlowPath), "alloc-slow-path");
    EXPECT_STREQ(event_name(Event::kStmAbort), "stm-abort");
    EXPECT_STREQ(event_name(Event::kChanBlock), "chan-block");
    EXPECT_STREQ(event_name(Event::kVmExit), "vm-exit");
    EXPECT_STREQ(event_name(Event::kFaultInjected), "fault-injected");
    for (size_t i = 0; i < kNumEvents; ++i) {
        EXPECT_STRNE(event_name(static_cast<Event>(i)), "");
    }
}

TEST_F(TraceTest, DumpIsVersionedAndLineOriented) {
    start(8);
    emit(Event::kVmEnter, 7);
    emit(Event::kVmExit, 100, 2000);
    stop();

    std::string text = dump();
    EXPECT_EQ(text.rfind("bitc-trace v1 events=2 total=2 dropped=0", 0),
              0u)
        << text;
    EXPECT_NE(text.find("vm-enter 7 0"), std::string::npos) << text;
    EXPECT_NE(text.find("vm-exit 100 2000"), std::string::npos) << text;
    // Header plus one line per event.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

}  // namespace
}  // namespace bitc::trace
