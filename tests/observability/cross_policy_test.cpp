/**
 * Cross-policy differential suite: every program in the shared corpus
 * (tests/integration/test_programs.hpp) runs under all seven heap
 * policies and both dispatch loops, and must (a) agree with the native
 * oracle everywhere and (b) report telemetry satisfying the policy
 * invariants — identical instruction streams across configurations
 * that only differ in storage management or dispatch, and zero GC
 * pauses for the non-collecting policies.
 *
 * This is the paper's F1/F2 argument made executable: storage policy
 * and dispatch strategy are performance knobs, not semantic ones, and
 * the telemetry proves it.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "support/metrics.hpp"
#include "tests/integration/test_programs.hpp"
#include "vm/pipeline.hpp"

namespace bitc::vm {
namespace {

using namespace testprog;

struct Program {
    const char* label;
    const char* source;
    const char* entry;
    std::vector<int64_t> args;
    int64_t expected;
};

std::vector<Program> corpus() {
    return {
        {"quicksort", kQuicksort, "sort-main", {12345},
         native_sort_checksum(12345)},
        {"matmul", kMatMul, "matmul-main", {8},
         native_matmul_checksum(8)},
        {"queue-sim", kQueueSim, "sim", {1000, 8},
         native_sim(1000, 8)},
        {"bsearch", kBinarySearch, "bsearch-main", {33},
         native_bsearch(33)},
    };
}

constexpr HeapPolicy kAllPolicies[] = {
    HeapPolicy::kRegion,      HeapPolicy::kManual,
    HeapPolicy::kRefCount,    HeapPolicy::kMarkSweep,
    HeapPolicy::kMarkCompact, HeapPolicy::kSemispace,
    HeapPolicy::kGenerational,
};
constexpr DispatchMode kBothDispatch[] = {DispatchMode::kSwitch,
                                          DispatchMode::kThreaded};

bool is_collecting(HeapPolicy policy) {
    return policy != HeapPolicy::kRegion &&
           policy != HeapPolicy::kManual;
}

struct RunOutcome {
    int64_t result = 0;
    metrics::Snapshot snap;
};

RunOutcome run_config(const BuiltProgram& built, const Program& prog,
                      ValueMode mode, HeapPolicy policy,
                      DispatchMode dispatch) {
    VmConfig config;
    config.mode = mode;
    config.heap = policy;
    config.dispatch = dispatch;
    config.heap_words = 1 << 22;
    config.count_ops = true;
    auto vm = built.instantiate(config);

    metrics::reset();
    metrics::enable();
    auto result = vm->call(
        prog.entry,
        std::span<const int64_t>(prog.args.data(), prog.args.size()));
    metrics::disable();

    RunOutcome out;
    out.snap = metrics::snapshot();
    EXPECT_TRUE(result.is_ok())
        << prog.label << " " << value_mode_name(mode) << "/"
        << heap_policy_name(policy) << "/"
        << dispatch_mode_name(dispatch) << ": "
        << result.status().to_string();
    out.result = result.is_ok() ? result.value() : ~prog.expected;
    return out;
}

std::unique_ptr<BuiltProgram> build_ok(const Program& prog) {
    BuildOptions options;
    options.compiler.elide_proved_checks = true;
    auto built = build_program(prog.source, options);
    EXPECT_TRUE(built.is_ok())
        << prog.label << ": " << built.status().to_string();
    return std::move(built).take();
}

void check_invariants(const Program& prog, const RunOutcome& run,
                      ValueMode mode, HeapPolicy policy,
                      DispatchMode dispatch) {
    std::string where = std::string(prog.label) + " " +
                        value_mode_name(mode) + "/" +
                        heap_policy_name(policy) + "/" +
                        dispatch_mode_name(dispatch);
    EXPECT_EQ(run.result, prog.expected) << where;
    EXPECT_EQ(run.snap.counter(metrics::Counter::kVmRuns), 1u) << where;
    EXPECT_GT(run.snap.counter(metrics::Counter::kVmInstructions), 0u)
        << where;

    const metrics::HistogramSnapshot& pauses =
        run.snap.histogram(metrics::Histogram::kGcPauseNs);
    uint64_t collections =
        run.snap.counter(metrics::Counter::kGcMinorCollections) +
        run.snap.counter(metrics::Counter::kGcMajorCollections) +
        run.snap.counter(metrics::Counter::kGcRegionReleases);
    if (!is_collecting(policy)) {
        // The VM never bulk-releases its region mid-call: the
        // non-collecting policies must report zero pauses.
        EXPECT_EQ(pauses.count, 0u) << where;
        EXPECT_EQ(collections, 0u) << where;
    } else {
        // Every pause recorded belongs to a counted collection.
        EXPECT_EQ(pauses.count, collections) << where;
    }
    if (mode == ValueMode::kBoxed) {
        // Boxed execution allocates; the folded deltas must show it.
        EXPECT_GT(run.snap.counter(metrics::Counter::kHeapAllocations),
                  0u)
            << where;
    }
    EXPECT_EQ(run.snap.counter(metrics::Counter::kHeapAllocFailures),
              0u)
        << where;

    const metrics::HistogramSnapshot& run_ns =
        run.snap.histogram(metrics::Histogram::kVmRunNs);
    EXPECT_EQ(run_ns.count, 1u) << where;
}

TEST(CrossPolicyTest, BoxedProgramsAgreeAcrossAllPoliciesAndDispatch) {
    for (const Program& prog : corpus()) {
        auto built = build_ok(prog);
        // Reference: boxed mark-sweep under switch dispatch.
        RunOutcome ref =
            run_config(*built, prog, ValueMode::kBoxed,
                       HeapPolicy::kMarkSweep, DispatchMode::kSwitch);
        check_invariants(prog, ref, ValueMode::kBoxed,
                         HeapPolicy::kMarkSweep, DispatchMode::kSwitch);
        for (HeapPolicy policy : kAllPolicies) {
            for (DispatchMode dispatch : kBothDispatch) {
                RunOutcome run = run_config(*built, prog,
                                            ValueMode::kBoxed, policy,
                                            dispatch);
                check_invariants(prog, run, ValueMode::kBoxed, policy,
                                 dispatch);
                std::string where =
                    std::string(prog.label) + " boxed/" +
                    heap_policy_name(policy) + "/" +
                    dispatch_mode_name(dispatch);
                // Storage management and dispatch are transparent:
                // the instruction stream cannot depend on them.
                EXPECT_EQ(
                    run.snap.counter(
                        metrics::Counter::kVmInstructions),
                    ref.snap.counter(metrics::Counter::kVmInstructions))
                    << where;
                EXPECT_EQ(std::memcmp(run.snap.opcodes.data(),
                                      ref.snap.opcodes.data(),
                                      sizeof(run.snap.opcodes)),
                          0)
                    << where;
                // The program allocates the same objects no matter
                // who reclaims them.
                EXPECT_EQ(
                    run.snap.counter(
                        metrics::Counter::kHeapAllocations),
                    ref.snap.counter(
                        metrics::Counter::kHeapAllocations))
                    << where;
            }
        }
    }
}

TEST(CrossPolicyTest, UnboxedProgramsAgreeAcrossPoliciesAndDispatch) {
    for (const Program& prog : corpus()) {
        auto built = build_ok(prog);
        RunOutcome ref =
            run_config(*built, prog, ValueMode::kUnboxed,
                       HeapPolicy::kRegion, DispatchMode::kSwitch);
        check_invariants(prog, ref, ValueMode::kUnboxed,
                         HeapPolicy::kRegion, DispatchMode::kSwitch);
        for (HeapPolicy policy :
             {HeapPolicy::kRegion, HeapPolicy::kManual}) {
            for (DispatchMode dispatch : kBothDispatch) {
                RunOutcome run = run_config(*built, prog,
                                            ValueMode::kUnboxed,
                                            policy, dispatch);
                check_invariants(prog, run, ValueMode::kUnboxed,
                                 policy, dispatch);
                EXPECT_EQ(
                    run.snap.counter(
                        metrics::Counter::kVmInstructions),
                    ref.snap.counter(metrics::Counter::kVmInstructions))
                    << prog.label << " unboxed/"
                    << heap_policy_name(policy) << "/"
                    << dispatch_mode_name(dispatch);
                EXPECT_EQ(std::memcmp(run.snap.opcodes.data(),
                                      ref.snap.opcodes.data(),
                                      sizeof(run.snap.opcodes)),
                          0)
                    << prog.label;
            }
        }
    }
}

TEST(CrossPolicyTest, BoxedRunsRetireMoreInstructionsThanUnboxed) {
    // F2 regression guard in telemetry form: the uniform boxed
    // representation costs instructions, and the counters see it.
    for (const Program& prog : corpus()) {
        auto built = build_ok(prog);
        RunOutcome unboxed =
            run_config(*built, prog, ValueMode::kUnboxed,
                       HeapPolicy::kRegion, DispatchMode::kThreaded);
        RunOutcome boxed = run_config(*built, prog, ValueMode::kBoxed,
                                      HeapPolicy::kGenerational,
                                      DispatchMode::kThreaded);
        EXPECT_GE(
            boxed.snap.counter(metrics::Counter::kVmInstructions),
            unboxed.snap.counter(metrics::Counter::kVmInstructions))
            << prog.label;
        EXPECT_GT(
            boxed.snap.counter(metrics::Counter::kHeapAllocations),
            unboxed.snap.counter(metrics::Counter::kHeapAllocations))
            << prog.label;
    }
}

}  // namespace
}  // namespace bitc::vm
