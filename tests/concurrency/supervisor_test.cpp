/**
 * Supervision tests: the CircuitBreaker state machine driven with
 * explicit clocks, the Supervisor restart loop against scripted worker
 * bodies (including the shutdown races), and the end-to-end acceptance
 * runs — a fail-every-hit worker-crash plan on a 4-wide pipeline must
 * restart-or-isolate every killed worker, terminate, and conserve
 * packets exactly; a transient plan must recover to within 10% of the
 * fault-free throughput; the ActorBank must survive a server crash
 * with its ledger intact.
 */
#include "concurrency/supervisor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "concurrency/bank.hpp"
#include "concurrency/pipeline.hpp"
#include "support/fault.hpp"

namespace bitc::conc {
namespace {

using namespace std::chrono_literals;

// --- CircuitBreaker: pure state machine, explicit time ------------------

constexpr uint64_t kMs = 1000 * 1000;  // ns per ms

TEST(CircuitBreakerTest, BudgetExhaustionTripsTheBreaker) {
    CircuitBreaker breaker(/*max_restarts=*/2, /*window_ns=*/100 * kMs);
    EXPECT_FALSE(breaker.on_crash(10 * kMs));
    EXPECT_FALSE(breaker.on_crash(20 * kMs));
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);
    EXPECT_TRUE(breaker.on_crash(30 * kMs))
        << "the (max_restarts + 1)-th crash in the window must trip";
    EXPECT_EQ(breaker.state(), BreakerState::kOpen);
}

TEST(CircuitBreakerTest, CrashesAgeOutOfTheWindow) {
    CircuitBreaker breaker(/*max_restarts=*/1, /*window_ns=*/100 * kMs);
    EXPECT_FALSE(breaker.on_crash(0));
    // 150ms later the first crash has aged out: budget is back to one.
    EXPECT_FALSE(breaker.on_crash(150 * kMs));
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);
    // But two crashes inside one window still trip.
    EXPECT_TRUE(breaker.on_crash(200 * kMs));
}

TEST(CircuitBreakerTest, ProgressRefillsTheBudget) {
    CircuitBreaker breaker(/*max_restarts=*/1, /*window_ns=*/1000 * kMs);
    EXPECT_FALSE(breaker.on_crash(10 * kMs));
    breaker.on_progress();  // healthy again: forget the crash
    EXPECT_FALSE(breaker.on_crash(20 * kMs))
        << "progress must have refilled the restart budget";
    EXPECT_TRUE(breaker.on_crash(30 * kMs));
}

TEST(CircuitBreakerTest, CooldownProbeOutcomeDecides) {
    CircuitBreaker breaker(/*max_restarts=*/0, /*window_ns=*/100 * kMs);
    EXPECT_TRUE(breaker.on_crash(0)) << "zero budget: first crash trips";
    EXPECT_EQ(breaker.state(), BreakerState::kOpen);

    EXPECT_FALSE(breaker.try_probe(50 * kMs)) << "cooldown not over";
    EXPECT_TRUE(breaker.try_probe(100 * kMs));
    EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);

    // A crashing probe reopens for a fresh cooldown.
    EXPECT_TRUE(breaker.on_crash(110 * kMs));
    EXPECT_EQ(breaker.state(), BreakerState::kOpen);
    EXPECT_FALSE(breaker.try_probe(209 * kMs))
        << "cooldown restarts from the reopen";
    EXPECT_TRUE(breaker.try_probe(210 * kMs));

    // A succeeding probe closes.
    breaker.on_progress();
    EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

// --- Supervisor: restart loop against scripted bodies -------------------

SupervisorConfig
fast_config()
{
    SupervisorConfig config;
    config.max_restarts = 5;
    config.restart_window_ms = 10000;
    config.backoff_ms = 1;
    config.backoff_cap_ms = 2;
    return config;
}

TEST(SupervisorTest, RestartsACrashingBodyUntilItSucceeds) {
    Supervisor sup(fast_config());
    int runs = 0;
    bool abandoned = false;
    WorkerHooks hooks;
    hooks.body = [&](WorkerContext& ctx) {
        if (++runs < 3) return WorkerExit::kCrash;
        ctx.note_progress();
        return WorkerExit::kDone;
    };
    hooks.abandon = [&] { abandoned = true; };
    sup.supervise(0, hooks);
    EXPECT_EQ(runs, 3);
    EXPECT_EQ(sup.crashes(), 2u);
    EXPECT_EQ(sup.restarts(), 2u);
    EXPECT_EQ(sup.breaker_opens(), 0u);
    EXPECT_TRUE(abandoned) << "abandon must run on the normal path too";
}

// A worker that crashes while close propagation has already reached it
// must NOT be resurrected into the dead pipeline: the supervisor
// re-checks input_closed before every restart.
TEST(SupervisorTest, NeverResurrectsAWorkerWhoseInputIsClosed) {
    Supervisor sup(fast_config());
    int runs = 0;
    bool abandoned = false;
    WorkerHooks hooks;
    hooks.body = [&](WorkerContext&) {
        ++runs;
        return WorkerExit::kCrash;
    };
    hooks.input_closed = [] { return true; };  // already closed+drained
    hooks.abandon = [&] { abandoned = true; };
    sup.supervise(0, hooks);
    EXPECT_EQ(runs, 1) << "no restart into a closed downstream";
    EXPECT_EQ(sup.crashes(), 1u);
    EXPECT_EQ(sup.restarts(), 0u);
    EXPECT_TRUE(abandoned);
}

// Real-clock smoke for the backoff path: it only proves shutdown
// interrupts the sleep, never waits the ladder out.  The ladder's
// actual durations (60 s + 120 s observed in microseconds of wall
// time) are pinned on the virtual clock in tests/sim/sim_test.cpp.
TEST(SupervisorTest, ShutdownInterruptsTheBackoffSleep) {
    SupervisorConfig config = fast_config();
    config.backoff_ms = 60000;  // would hang the test if uninterrupted
    config.backoff_cap_ms = 60000;
    Supervisor sup(config);
    int runs = 0;
    WorkerHooks hooks;
    hooks.body = [&](WorkerContext&) {
        ++runs;
        return WorkerExit::kCrash;
    };
    auto start = std::chrono::steady_clock::now();
    std::thread stopper([&] {
        std::this_thread::sleep_for(20ms);
        sup.request_shutdown();
    });
    sup.supervise(0, hooks);
    stopper.join();
    auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(elapsed, 10s) << "shutdown must interrupt the backoff";
    EXPECT_EQ(runs, 1);
    EXPECT_EQ(sup.restarts(), 0u) << "shutdown wins over restart";
}

// The breaker is open with a cooldown far in the future; the worker is
// parked in the open-state wait.  An explicit shutdown must win.
TEST(SupervisorTest, ShutdownInterruptsTheOpenStateWait) {
    SupervisorConfig config;
    config.max_restarts = 0;        // first crash opens the breaker
    config.restart_window_ms = 60000;  // cooldown outlives the test
    config.backoff_ms = 1;
    Supervisor sup(config);
    WorkerHooks hooks;
    hooks.body = [&](WorkerContext&) { return WorkerExit::kCrash; };
    std::thread stopper([&] {
        std::this_thread::sleep_for(20ms);
        sup.request_shutdown();
    });
    sup.supervise(0, hooks);
    stopper.join();
    EXPECT_EQ(sup.crashes(), 1u);
    EXPECT_EQ(sup.breaker_opens(), 1u);
    EXPECT_EQ(sup.restarts(), 0u);
}

// Half-open probe racing shutdown: the breaker trips, cools down fast,
// and probe restarts keep crashing while another thread requests
// shutdown.  Whatever the interleaving, supervise() must terminate and
// the counters must stay coherent (every restart was preceded by a
// crash).  Run a few rounds to vary the race.
TEST(SupervisorTest, HalfOpenProbeRacingShutdownTerminates) {
    for (int round = 0; round < 5; ++round) {
        SupervisorConfig config;
        config.max_restarts = 0;
        config.restart_window_ms = 1;  // near-instant cooldown
        config.backoff_ms = 1;
        Supervisor sup(config);
        std::atomic<uint64_t> bodies{0};
        WorkerHooks hooks;
        hooks.body = [&](WorkerContext& ctx) {
            bodies.fetch_add(1, std::memory_order_relaxed);
            if (ctx.stop_requested()) return WorkerExit::kDone;
            return WorkerExit::kCrash;
        };
        std::thread worker([&] { sup.supervise(0, hooks); });
        while (sup.breaker_opens() == 0) std::this_thread::yield();
        sup.request_shutdown();
        worker.join();  // must not deadlock
        EXPECT_GE(sup.crashes(), 1u);
        EXPECT_GE(sup.breaker_opens(), 1u);
        EXPECT_LE(sup.restarts(), sup.crashes())
            << "every restart is a response to a crash";
        EXPECT_GE(bodies.load(), 1u);
    }
}

// --- Pipeline under supervision (acceptance) ----------------------------

PipelineReport
must_run(const PipelineConfig& config, size_t packets)
{
    auto pipeline = PacketPipeline::create(config);
    EXPECT_TRUE(pipeline.is_ok()) << pipeline.status().to_string();
    auto report = pipeline.value()->run(packets);
    EXPECT_TRUE(report.is_ok()) << report.status().to_string();
    return report.value();
}

// The acceptance run: worker-crash every=1 on a 4-worker-per-stage
// pipeline.  Every stage-0 worker burns its full restart budget (the
// initial run plus max_restarts restarts, each killed by the plan),
// then its breaker opens and the shard's backlog drains into the loss
// ledger.  The run terminates, and conservation holds exactly.
TEST(SupervisedPipelineTest, CrashEveryHitRestartsOpensAndConserves) {
    constexpr size_t kPackets = 3000;
    PipelineConfig config;
    config.workers = {4, 4, 4, 4};
    config.seed = 7;
    config.supervision.max_restarts = 3;
    config.supervision.restart_window_ms = 10000;  // no mid-run probe
    config.supervision.backoff_ms = 1;
    config.supervision.backoff_cap_ms = 2;
    fault::ScopedPlan plan("worker-crash:every=1");
    ASSERT_TRUE(plan.status().is_ok()) << plan.status().to_string();
    PipelineReport report = must_run(config, kPackets);

    EXPECT_TRUE(report.conserved())
        << report.generated << " != " << report.delivered << " + "
        << report.dropped << " + " << report.fault_dropped << " + "
        << report.shed;
    EXPECT_EQ(report.generated, kPackets);
    EXPECT_EQ(report.delivered, 0u) << "every batch dies at stage 0";
    EXPECT_EQ(report.fault_dropped, kPackets);

    // 4 stage-0 workers x (1 initial run + 3 restarts) crashes each;
    // then all four breakers are open and nothing runs again.
    EXPECT_EQ(report.worker_crashes, 16u);
    EXPECT_EQ(report.worker_restarts, 12u);
    EXPECT_EQ(report.breaker_opens, 4u);
    EXPECT_EQ(report.stages[0].crashes, 16u);
    for (size_t s = 1; s < report.stages.size(); ++s) {
        EXPECT_EQ(report.stages[s].crashes, 0u)
            << "stage " << s << " never sees a batch";
    }
}

// A transient plan (one crash, then exhausted): the supervisor
// restarts the killed worker and the pipeline finishes within 10% of
// the fault-free wall clock.  The shape is lookup-bound (the classify
// sleep dominates) so elapsed time has a hard floor; each variant
// takes its best of three interleaved runs, which measures achievable
// throughput rather than whatever else the CI box was doing.
TEST(SupervisedPipelineTest, RecoversToBaselineThroughputAfterCrash) {
    constexpr size_t kPackets = 2000;
    PipelineConfig config;
    config.workers = {1, 1, 1, 4};
    config.lookup_latency_us = 200;  // 2000 * 200us / 4 ~= 100ms floor
    config.seed = 7;
    config.supervision.backoff_ms = 1;
    config.supervision.backoff_cap_ms = 2;

    double baseline_ms = 0;
    double faulted_ms = 0;
    for (int round = 0; round < 3; ++round) {
        PipelineReport baseline = must_run(config, kPackets);
        ASSERT_TRUE(baseline.conserved());
        ASSERT_EQ(baseline.worker_crashes, 0u);
        if (round == 0 || baseline.elapsed_ms < baseline_ms) {
            baseline_ms = baseline.elapsed_ms;
        }

        fault::ScopedPlan plan("worker-crash:nth=2");
        ASSERT_TRUE(plan.status().is_ok());
        PipelineReport faulted = must_run(config, kPackets);
        EXPECT_TRUE(faulted.conserved());
        EXPECT_EQ(faulted.worker_crashes, 1u);
        EXPECT_EQ(faulted.worker_restarts, 1u)
            << "the killed worker must be restarted, not abandoned";
        EXPECT_EQ(faulted.breaker_opens, 0u);
        EXPECT_LE(faulted.fault_dropped, config.batch_packets)
            << "only the in-flight batch dies with the worker";
        if (round == 0 || faulted.elapsed_ms < faulted_ms) {
            faulted_ms = faulted.elapsed_ms;
        }
    }
    EXPECT_LE(faulted_ms, baseline_ms * 1.10)
        << "recovered throughput within 10% of fault-free ("
        << faulted_ms << "ms vs " << baseline_ms << "ms)";
}

TEST(SupervisedPipelineTest, DeadlineShedsExpiredBatchesWithAccounting) {
    PipelineConfig config;
    config.workers = {1, 1, 1, 1};
    config.queue_capacity = 2;
    config.batch_packets = 16;
    config.lookup_latency_us = 100;
    config.deadline_ms = 1;  // far less than the lookup backlog needs
    config.seed = 7;
    PipelineReport report = must_run(config, 800);
    EXPECT_TRUE(report.conserved())
        << report.generated << " != " << report.delivered << " + "
        << report.dropped << " + " << report.fault_dropped << " + "
        << report.shed;
    EXPECT_GT(report.shed, 0u) << "the deadline must shed late batches";
    EXPECT_EQ(report.fault_dropped, 0u) << "shed is its own ledger";
}

// --- ActorBank under supervision ----------------------------------------

TEST(SupervisedBankTest, SurvivesACrashAndKeepsItsLedger) {
    SupervisorConfig config = fast_config();
    ActorBank bank(4, 100, config);
    bank.deposit(0, 50);  // pre-crash state the restart must preserve

    {
        fault::ScopedPlan plan("worker-crash:nth=1");
        ASSERT_TRUE(plan.status().is_ok());
        Status crashed = bank.transfer(0, 1, 10);
        EXPECT_FALSE(crashed.is_ok())
            << "the crashing request is answered with the injected "
               "error, never silence";
    }

    // The restarted server still has the pre-crash ledger.
    EXPECT_EQ(bank.balance(0), 150);
    EXPECT_TRUE(bank.transfer(0, 1, 10).is_ok());
    EXPECT_EQ(bank.balance(1), 110);
    EXPECT_EQ(bank.total(), 450) << "no money minted or lost";
    EXPECT_EQ(bank.supervision().crashes(), 1u);
    EXPECT_EQ(bank.supervision().restarts(), 1u);
}

TEST(SupervisedBankTest, OpenBreakerAnswersWithErrorsNotSilence) {
    SupervisorConfig config;
    config.max_restarts = 0;           // first crash trips the breaker
    config.restart_window_ms = 60000;  // cooldown outlives the test
    config.backoff_ms = 1;
    ActorBank bank(2, 100, config);
    fault::ScopedPlan plan("worker-crash:every=1");
    ASSERT_TRUE(plan.status().is_ok());

    EXPECT_FALSE(bank.transfer(0, 1, 10).is_ok());
    // Breaker open: every further call must still return an error
    // promptly (the drain loop answers), never block forever.
    for (int i = 0; i < 5; ++i) {
        EXPECT_FALSE(bank.transfer(0, 1, 10).is_ok());
    }
    EXPECT_EQ(bank.balance(0), 0) << "balance errors map to 0";
    EXPECT_EQ(bank.supervision().breaker_opens(), 1u);
    EXPECT_EQ(bank.supervision().restarts(), 0u);
    bank.shutdown();  // must terminate despite the open breaker
}

TEST(SupervisedBankTest, HalfOpenProbeRecoversTheServer) {
    SupervisorConfig config;
    config.max_restarts = 0;
    config.restart_window_ms = 20;  // short cooldown: probe soon
    config.backoff_ms = 1;
    ActorBank bank(2, 100, config);
    {
        fault::ScopedPlan plan("worker-crash:nth=1");
        ASSERT_TRUE(plan.status().is_ok());
        EXPECT_FALSE(bank.transfer(0, 1, 10).is_ok());  // trips open
    }
    // The crashing request is answered *before* the supervisor counts
    // the crash on the server thread, so wait for the trip to land
    // rather than asserting it instantly.
    for (int i = 0; i < 500 && bank.supervision().breaker_opens() == 0;
         ++i) {
        std::this_thread::sleep_for(1ms);
    }
    EXPECT_EQ(bank.supervision().breaker_opens(), 1u);

    // The plan is exhausted and disarmed: once the cooldown elapses
    // the half-open probe serves a request successfully, which closes
    // the breaker.  Retry with a bound rather than sleeping blind.
    bool recovered = false;
    for (int i = 0; i < 500 && !recovered; ++i) {
        recovered = bank.transfer(0, 1, 10).is_ok();
        if (!recovered) std::this_thread::sleep_for(1ms);
    }
    EXPECT_TRUE(recovered) << "the probe must close the breaker";
    EXPECT_EQ(bank.balance(1), 110)
        << "exactly one transfer succeeded; rejected calls mutated "
           "nothing";
    EXPECT_EQ(bank.supervision().restarts(), 1u) << "the probe restart";
}

}  // namespace
}  // namespace bitc::conc
