#include "concurrency/pipeline.hpp"

#include <gtest/gtest.h>

#include "interop/migration.hpp"
#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"

namespace bitc::conc {
namespace {

constexpr uint64_t kSeed = 7;

PipelineReport
must_run(const PipelineConfig& config, size_t packets)
{
    auto pipeline = PacketPipeline::create(config);
    EXPECT_TRUE(pipeline.is_ok()) << pipeline.status().to_string();
    auto report = pipeline.value()->run(packets);
    EXPECT_TRUE(report.is_ok()) << report.status().to_string();
    return report.value();
}

TEST(PipelineTest, ConservesEveryPacketAndPreservesFlowOrder) {
    PipelineConfig config;
    config.workers = {2, 2, 2, 2};
    config.seed = kSeed;
    PipelineReport report = must_run(config, 4000);
    EXPECT_TRUE(report.conserved())
        << report.generated << " != " << report.delivered << " + "
        << report.dropped << " + " << report.fault_dropped;
    EXPECT_TRUE(report.flows_in_order);
    EXPECT_EQ(report.fault_dropped, 0u);
    EXPECT_GT(report.delivered, 0u);
    EXPECT_GT(report.dropped, 0u) << "~5% of packets are invalid";
}

TEST(PipelineTest, SequentialRunsOnOneInstanceAreIndependent) {
    PipelineConfig config;
    config.workers = {1, 2, 1, 2};
    config.seed = kSeed;
    auto pipeline = PacketPipeline::create(config);
    ASSERT_TRUE(pipeline.is_ok());
    auto first = pipeline.value()->run(1000);
    auto second = pipeline.value()->run(1000);
    ASSERT_TRUE(first.is_ok());
    ASSERT_TRUE(second.is_ok());
    EXPECT_EQ(first.value().route_checksum,
              second.value().route_checksum);
    EXPECT_EQ(first.value().header_checksum_sum,
              second.value().header_checksum_sum);
    EXPECT_EQ(first.value().dropped, second.value().dropped);
}

// The concurrent server against the single-threaded reference: same
// seed means the identical packet stream, so every aggregate the two
// implementations share must match exactly — for any worker layout.
TEST(PipelineTest, MatchesSingleThreadedMigrationPipeline) {
    constexpr size_t kPackets = 3000;
    interop::MigrationConfig reference_config;  // all-legacy
    auto reference =
        interop::MigrationPipeline::create(reference_config);
    ASSERT_TRUE(reference.is_ok());
    Rng rng(kSeed);
    auto expected = reference.value()->run(kPackets, rng);
    ASSERT_TRUE(expected.is_ok());

    for (std::array<size_t, 4> workers :
         {std::array<size_t, 4>{1, 1, 1, 1},
          std::array<size_t, 4>{3, 1, 2, 4}}) {
        PipelineConfig config;
        config.workers = workers;
        config.seed = kSeed;
        PipelineReport actual = must_run(config, kPackets);
        EXPECT_EQ(actual.route_checksum,
                  expected.value().route_checksum);
        EXPECT_EQ(actual.header_checksum_sum,
                  expected.value().header_checksum_sum);
        EXPECT_EQ(actual.dropped, expected.value().dropped);
    }
}

// Legacy and migrated stage implementations have identical semantics,
// so swapping worlds under the same seed must not change any result.
TEST(PipelineTest, BitcStagesMatchLegacyStages) {
    constexpr size_t kPackets = 800;
    PipelineConfig legacy;
    legacy.workers = {1, 2, 2, 1};
    legacy.seed = kSeed;
    PipelineReport legacy_report = must_run(legacy, kPackets);

    PipelineConfig bitc = legacy;
    bitc.migrated = true;
    PipelineReport bitc_report = must_run(bitc, kPackets);

    EXPECT_EQ(bitc_report.route_checksum,
              legacy_report.route_checksum);
    EXPECT_EQ(bitc_report.header_checksum_sum,
              legacy_report.header_checksum_sum);
    EXPECT_EQ(bitc_report.dropped, legacy_report.dropped);
    EXPECT_TRUE(bitc_report.conserved());
    EXPECT_TRUE(bitc_report.flows_in_order);
}

TEST(PipelineTest, UnbatchedHandoffsPreserveFlowOrderToo) {
    // batch=1 maximises cross-worker interleaving — the hardest case
    // for the per-flow ordering guarantee.
    PipelineConfig config;
    config.workers = {4, 4, 4, 4};
    config.batch_packets = 1;
    config.queue_capacity = 8;
    config.seed = kSeed;
    PipelineReport report = must_run(config, 2000);
    EXPECT_TRUE(report.flows_in_order);
    EXPECT_TRUE(report.conserved());
}

TEST(PipelineTest, PayloadWorkDoesNotDisturbHeaderResults) {
    PipelineConfig plain;
    plain.workers = {2, 2, 2, 2};
    plain.seed = kSeed;
    PipelineReport without = must_run(plain, 1000);

    PipelineConfig loaded = plain;
    loaded.payload_bytes = 512;
    PipelineReport with = must_run(loaded, 1000);

    EXPECT_EQ(with.route_checksum, without.route_checksum);
    EXPECT_EQ(with.header_checksum_sum, without.header_checksum_sum);
    EXPECT_EQ(without.payload_checksum, 0u);
    EXPECT_GT(with.payload_checksum, 0u);
}

TEST(PipelineTest, InjectedChannelFaultsDrainGracefully) {
    // Sparse faults: the bounded send retries absorb every one, so
    // nothing is lost and results still match the fault-free run.
    PipelineConfig config;
    config.workers = {2, 2, 2, 2};
    config.seed = kSeed;
    PipelineReport clean = must_run(config, 2000);
    {
        fault::ScopedPlan plan("channel-op:every=40");
        ASSERT_TRUE(plan.status().is_ok());
        PipelineReport faulted = must_run(config, 2000);
        EXPECT_TRUE(faulted.conserved());
        EXPECT_TRUE(faulted.flows_in_order);
        EXPECT_EQ(faulted.route_checksum, clean.route_checksum);
        EXPECT_EQ(faulted.fault_dropped, 0u)
            << "sparse faults are absorbed by retries";
    }
    {
        // Dense faults: losses are allowed, deadlock and
        // double-accounting are not.
        fault::ScopedPlan plan("channel-op:every=2");
        ASSERT_TRUE(plan.status().is_ok());
        PipelineReport faulted = must_run(config, 2000);
        EXPECT_TRUE(faulted.conserved());
    }
    {
        // Total failure: every channel op fails.  The server must
        // still terminate, with every packet accounted as lost.
        fault::ScopedPlan plan("channel-op:every=1");
        ASSERT_TRUE(plan.status().is_ok());
        PipelineReport faulted = must_run(config, 500);
        EXPECT_TRUE(faulted.conserved());
        EXPECT_EQ(faulted.delivered + faulted.dropped +
                      faulted.fault_dropped,
                  500u);
    }
}

TEST(PipelineTest, BoundedQueuesEnforceBackpressure) {
    PipelineConfig config;
    config.workers = {1, 1, 1, 1};
    config.queue_capacity = 4;
    config.batch_packets = 8;
    config.seed = kSeed;
    PipelineReport report = must_run(config, 4000);
    EXPECT_TRUE(report.conserved());
    for (const auto& stage : report.stages) {
        EXPECT_LE(stage.depth_high_water, 4u)
            << "queue depth must respect the configured bound";
    }
    EXPECT_LE(report.sink_depth_high_water, 4u);
}

TEST(PipelineTest, RunFoldsTotalsIntoMetricsRegistry) {
    PipelineConfig config;
    config.workers = {2, 1, 1, 2};
    config.seed = kSeed;
    auto pipeline = PacketPipeline::create(config);
    ASSERT_TRUE(pipeline.is_ok());
    metrics::reset();
    metrics::enable();
    auto report = pipeline.value()->run(1500);
    metrics::disable();
    ASSERT_TRUE(report.is_ok());
    metrics::Snapshot snap = metrics::snapshot();
    EXPECT_EQ(snap.counter(metrics::Counter::kPipePacketsIn), 1500u);
    EXPECT_EQ(snap.counter(metrics::Counter::kPipePacketsOut),
              report.value().delivered);
    EXPECT_EQ(snap.counter(metrics::Counter::kPipePacketsDropped),
              report.value().dropped);
    EXPECT_GT(snap.counter(metrics::Counter::kPipeBatches), 0u);
    EXPECT_EQ(snap.gauge(metrics::Gauge::kPipeWorkers), 6u);
    EXPECT_GT(snap.histogram(metrics::Histogram::kPipeBatchNs).count,
              0u);
    EXPECT_EQ(snap.gauge(metrics::Gauge::kChanBlockedNow), 0u)
        << "no waiter may survive the run";
    metrics::reset();
}

// --- Spec parsing -------------------------------------------------------

TEST(PipelineSpecTest, ParsesFullSpec) {
    auto spec = parse_pipeline_spec(
        "workers=1:2:4:2,queue=16,batch=8,packets=500,impl=bitc,"
        "seed=9,payload=256,lookup-us=50");
    ASSERT_TRUE(spec.is_ok()) << spec.status().to_string();
    const PipelineConfig& config = spec.value().config;
    EXPECT_EQ(config.workers, (std::array<size_t, 4>{1, 2, 4, 2}));
    EXPECT_EQ(config.queue_capacity, 16u);
    EXPECT_EQ(config.batch_packets, 8u);
    EXPECT_EQ(spec.value().packets, 500u);
    EXPECT_TRUE(config.migrated);
    EXPECT_EQ(config.seed, 9u);
    EXPECT_EQ(config.payload_bytes, 256u);
    EXPECT_EQ(config.lookup_latency_us, 50u);
}

TEST(PipelineSpecTest, ParsesSupervisionAndDeadlineKnobs) {
    auto spec = parse_pipeline_spec(
        "restarts=5,window=250,backoff=2,deadline=8");
    ASSERT_TRUE(spec.is_ok()) << spec.status().to_string();
    const PipelineConfig& config = spec.value().config;
    EXPECT_EQ(config.supervision.max_restarts, 5u);
    EXPECT_EQ(config.supervision.restart_window_ms, 250u);
    EXPECT_EQ(config.supervision.backoff_ms, 2u);
    EXPECT_EQ(config.deadline_ms, 8u);

    // Defaults when the knobs are absent.
    auto plain = parse_pipeline_spec("workers=2");
    ASSERT_TRUE(plain.is_ok());
    EXPECT_EQ(plain.value().config.deadline_ms, 0u)
        << "no deadline unless asked for";
}

TEST(PipelineSpecTest, SingleWorkerCountAppliesToEveryStage) {
    auto spec = parse_pipeline_spec("workers=3");
    ASSERT_TRUE(spec.is_ok());
    EXPECT_EQ(spec.value().config.workers,
              (std::array<size_t, 4>{3, 3, 3, 3}));
}

TEST(PipelineSpecTest, RejectsMalformedSpecs) {
    EXPECT_FALSE(parse_pipeline_spec("workers=1:2").is_ok());
    EXPECT_FALSE(parse_pipeline_spec("workers=0").is_ok());
    EXPECT_FALSE(parse_pipeline_spec("impl=rust").is_ok());
    EXPECT_FALSE(parse_pipeline_spec("bogus=1").is_ok());
    EXPECT_FALSE(parse_pipeline_spec("queue").is_ok());
    EXPECT_FALSE(parse_pipeline_spec("queue=abc").is_ok());
}

TEST(PipelineSpecTest, EmptySpecYieldsDefaults) {
    auto spec = parse_pipeline_spec("");
    ASSERT_TRUE(spec.is_ok());
    EXPECT_EQ(spec.value().packets, 10000u);
    EXPECT_FALSE(spec.value().config.migrated);
}

}  // namespace
}  // namespace bitc::conc
