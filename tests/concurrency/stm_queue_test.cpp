/**
 * Composable transactional data structures: a bounded queue built
 * purely from TVars, with blocking push/pop composed out of retry and
 * two-queue selection composed out of orElse — the Harris et al.
 * showcase running on this STM.
 */
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "concurrency/stm.hpp"

namespace bitc::conc {
namespace {

/** Bounded FIFO over TVars: head, tail, and a power-of-two ring. */
class TxQueue {
  public:
    explicit TxQueue(size_t capacity_log2 = 6)
        : mask_((1u << capacity_log2) - 1),
          slots_(1u << capacity_log2) {
        for (auto& s : slots_) s = std::make_unique<TVar>(0);
    }

    /** Transactional push; retries while full. */
    void push(Txn& txn, uint64_t value) {
        uint64_t head = txn.read(head_);
        uint64_t tail = txn.read(tail_);
        if (tail - head > mask_) txn.retry();
        txn.write(*slots_[tail & mask_], value);
        txn.write(tail_, tail + 1);
    }

    /** Transactional pop; retries while empty. */
    uint64_t pop(Txn& txn) {
        uint64_t head = txn.read(head_);
        uint64_t tail = txn.read(tail_);
        if (head == tail) txn.retry();
        uint64_t value = txn.read(*slots_[head & mask_]);
        txn.write(head_, head + 1);
        return value;
    }

    /** Transactional size (consistent with concurrent transfers). */
    uint64_t size(Txn& txn) {
        return txn.read(tail_) - txn.read(head_);
    }

    /** Non-transactional size, for post-run checks only. */
    uint64_t unsafe_size() const {
        return tail_.unsafe_load() - head_.unsafe_load();
    }

  private:
    TVar head_{0};
    TVar tail_{0};
    uint64_t mask_;
    std::vector<std::unique_ptr<TVar>> slots_;
};

TEST(TxQueueTest, FifoSingleThreaded) {
    Stm stm;
    TxQueue q;
    atomically(stm, [&](Txn& txn) {
        q.push(txn, 10);
        q.push(txn, 20);
    });
    uint64_t a = atomically(stm, [&](Txn& txn) { return q.pop(txn); });
    uint64_t b = atomically(stm, [&](Txn& txn) { return q.pop(txn); });
    EXPECT_EQ(a, 10u);
    EXPECT_EQ(b, 20u);
    EXPECT_EQ(q.unsafe_size(), 0u);
}

TEST(TxQueueTest, TransferBetweenQueuesIsAtomic) {
    // The composition payoff: pop-from-one-push-to-other is a single
    // transaction; no observer can see the element in neither queue.
    Stm stm;
    TxQueue from;
    TxQueue to;
    atomically(stm, [&](Txn& txn) { from.push(txn, 99); });

    std::atomic<bool> stop{false};
    std::atomic<int> violations{0};
    std::thread observer([&] {
        while (!stop) {
            // A transactional snapshot across both queues: this is the
            // cross-structure composition locks cannot express.
            uint64_t total = atomically(stm, [&](Txn& txn) {
                return from.size(txn) + to.size(txn);
            });
            // The element must always be in exactly one queue.
            if (total != 1) ++violations;
        }
    });

    for (int i = 0; i < 5000; ++i) {
        atomically(stm, [&](Txn& txn) {
            uint64_t v = from.pop(txn);
            to.push(txn, v);
        });
        atomically(stm, [&](Txn& txn) {
            uint64_t v = to.pop(txn);
            from.push(txn, v);
        });
    }
    stop = true;
    observer.join();
    EXPECT_EQ(violations.load(), 0);
    EXPECT_EQ(from.unsafe_size() + to.unsafe_size(), 1u);
}

TEST(TxQueueTest, ProducersAndConsumersConserveSum) {
    Stm stm;
    TxQueue q(4);  // small ring: exercises full-queue retry
    constexpr int kProducers = 2;
    constexpr int kConsumers = 2;
    constexpr uint64_t kPerProducer = 3000;

    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
        threads.emplace_back([&, p] {
            for (uint64_t i = 0; i < kPerProducer; ++i) {
                uint64_t value =
                    static_cast<uint64_t>(p) * kPerProducer + i + 1;
                atomically(stm,
                           [&](Txn& txn) { q.push(txn, value); });
            }
        });
    }
    std::atomic<uint64_t> consumed_sum{0};
    std::atomic<uint64_t> consumed_count{0};
    for (int c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&] {
            while (consumed_count.fetch_add(1) <
                   kProducers * kPerProducer) {
                uint64_t v = atomically(
                    stm, [&](Txn& txn) { return q.pop(txn); });
                consumed_sum += v;
            }
            consumed_count.fetch_sub(1);
        });
    }
    for (auto& t : threads) t.join();

    uint64_t n = kProducers * kPerProducer;
    EXPECT_EQ(consumed_sum.load(), n * (n + 1) / 2);
    EXPECT_EQ(q.unsafe_size(), 0u);
}

TEST(TxQueueTest, OrElseSelectsBetweenQueues) {
    // select: pop from q1 if possible, else q2, else block.
    Stm stm;
    TxQueue q1;
    TxQueue q2;
    atomically(stm, [&](Txn& txn) { q2.push(txn, 7); });
    uint64_t got = atomically(stm, [&](Txn& txn) {
        return txn.or_else(
            [&](Txn& t) { return q1.pop(t); },
            [&](Txn& t) { return q2.pop(t); });
    });
    EXPECT_EQ(got, 7u);

    atomically(stm, [&](Txn& txn) { q1.push(txn, 5); });
    got = atomically(stm, [&](Txn& txn) {
        return txn.or_else([&](Txn& t) { return q1.pop(t); },
                           [&](Txn& t) { return q2.pop(t); });
    });
    EXPECT_EQ(got, 5u);
}

}  // namespace
}  // namespace bitc::conc
