#include "concurrency/bank.hpp"

#include <gtest/gtest.h>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "support/fault.hpp"
#include "support/rng.hpp"

namespace bitc::conc {
namespace {

constexpr size_t kAccounts = 16;
constexpr int64_t kInitial = 1000;

struct BankParam {
    std::string label;
    std::function<std::unique_ptr<Bank>()> make;
};

class BankTest : public ::testing::TestWithParam<BankParam> {
  protected:
    void SetUp() override { bank_ = GetParam().make(); }
    std::unique_ptr<Bank> bank_;
};

TEST_P(BankTest, InitialState) {
    EXPECT_EQ(bank_->account_count(), kAccounts);
    EXPECT_EQ(bank_->balance(0), kInitial);
    EXPECT_EQ(bank_->total(),
              static_cast<int64_t>(kAccounts) * kInitial);
}

TEST_P(BankTest, DepositMovesBalance) {
    bank_->deposit(3, 250);
    EXPECT_EQ(bank_->balance(3), kInitial + 250);
}

TEST_P(BankTest, TransferMovesMoneyExactlyOnce) {
    ASSERT_TRUE(bank_->transfer(0, 1, 400).is_ok());
    EXPECT_EQ(bank_->balance(0), kInitial - 400);
    EXPECT_EQ(bank_->balance(1), kInitial + 400);
    EXPECT_EQ(bank_->total(),
              static_cast<int64_t>(kAccounts) * kInitial);
}

TEST_P(BankTest, InsufficientFundsRejectedAtomically) {
    auto status = bank_->transfer(0, 1, kInitial + 1);
    ASSERT_FALSE(status.is_ok());
    EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(bank_->balance(0), kInitial);
    EXPECT_EQ(bank_->balance(1), kInitial);
}

TEST_P(BankTest, ConcurrentTransfersConserveTotal) {
    constexpr int kThreads = 4;
    constexpr int kOps = 4000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Rng rng(1000 + t);
            for (int i = 0; i < kOps; ++i) {
                size_t from = rng.next_below(kAccounts);
                size_t to = rng.next_below(kAccounts);
                if (from == to) continue;
                (void)bank_->transfer(from, to,
                                      rng.next_in(1, 50));
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(bank_->total(),
              static_cast<int64_t>(kAccounts) * kInitial);
}

TEST_P(BankTest, TotalIsConsistentWhileTransfersRun) {
    std::atomic<bool> stop{false};
    std::atomic<int> violations{0};
    std::thread mutator([&] {
        Rng rng(7);
        while (!stop) {
            size_t from = rng.next_below(kAccounts);
            size_t to = (from + 1) % kAccounts;
            (void)bank_->transfer(from, to, 1);
        }
    });
    for (int i = 0; i < 200; ++i) {
        if (bank_->total() !=
            static_cast<int64_t>(kAccounts) * kInitial) {
            ++violations;
        }
    }
    stop = true;
    mutator.join();
    EXPECT_EQ(violations.load(), 0)
        << GetParam().label << " exposed a torn total";
}

std::vector<BankParam> all_banks() {
    return {
        {"coarse",
         [] { return std::make_unique<CoarseLockBank>(kAccounts, kInitial); }},
        {"fine",
         [] { return std::make_unique<FineLockBank>(kAccounts, kInitial); }},
        {"stm",
         [] { return std::make_unique<StmBank>(kAccounts, kInitial); }},
        {"actor",
         [] { return std::make_unique<ActorBank>(kAccounts, kInitial); }},
    };
}

INSTANTIATE_TEST_SUITE_P(
    AllBanks, BankTest, ::testing::ValuesIn(all_banks()),
    [](const ::testing::TestParamInfo<BankParam>& info) {
        return info.param.label;
    });

// --- The composition demonstrations (fine-lock only) -------------------

TEST(CompositionTest, NonatomicTransferExposesIntermediateState) {
    FineLockBank bank(2, 1000);
    // The observer samples the ledger exactly while the transfer is
    // preempted between debit and credit: the `between` hook opens the
    // window, hands control to the observer, and waits for its sample.
    // This pins the schedule the old spin-and-hope version raced for,
    // so the composition failure reproduces on every run.
    std::mutex m;
    std::condition_variable cv;
    bool window_open = false;
    bool sampled = false;
    int64_t mid_transfer_total = -1;
    std::thread observer([&] {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return window_open; });
        mid_transfer_total = bank.unsafe_total();
        sampled = true;
        cv.notify_all();
    });
    bank.nonatomic_transfer(0, 1, 10, [&] {
        std::unique_lock<std::mutex> lock(m);
        window_open = true;
        cv.notify_all();
        cv.wait(lock, [&] { return sampled; });
    });
    observer.join();
    // The individually-correct operations compose into an observable
    // inconsistency: mid-transfer, the money is in neither account.
    EXPECT_EQ(mid_transfer_total, 2000 - 10)
        << "expected the lock-composition failure the paper describes";
    EXPECT_EQ(bank.total(), 2000) << "transfer must still complete";
}

TEST(CompositionTest, OrderedTransferNeverTearsLockedTotal) {
    FineLockBank bank(2, 1000);
    std::atomic<bool> stop{false};
    std::atomic<int> torn{0};
    std::thread observer([&] {
        while (!stop) {
            if (bank.total() != 2000) ++torn;
        }
    });
    for (int i = 0; i < 20000; ++i) {
        ASSERT_TRUE(bank.transfer(0, 1, 10).is_ok());
        ASSERT_TRUE(bank.transfer(1, 0, 10).is_ok());
    }
    stop = true;
    observer.join();
    EXPECT_EQ(torn.load(), 0);
}

// --- ActorBank shutdown lifecycle ---------------------------------------

TEST(ActorBankTest, ShutdownIsIdempotentAndDestructorSafe) {
    ActorBank bank(kAccounts, kInitial);
    bank.deposit(0, 100);
    bank.shutdown();
    bank.shutdown();  // second call must be a no-op, not a crash
    // Destructor runs shutdown a third time on scope exit.
}

TEST(ActorBankTest, CallAfterShutdownReturnsErrorNotSilence) {
    ActorBank bank(kAccounts, kInitial);
    bank.shutdown();
    // Every client API must come back promptly with an error-shaped
    // answer; a hang here (the old destructor ordering) times out the
    // whole suite.
    Status transfer = bank.transfer(0, 1, 10);
    ASSERT_FALSE(transfer.is_ok());
    EXPECT_EQ(transfer.code(), StatusCode::kCancelled);
    EXPECT_EQ(bank.balance(0), 0) << "error path reports 0, not junk";
    EXPECT_EQ(bank.total(), 0);
    bank.deposit(0, 5);  // fire-and-forget must also not hang
}

TEST(ActorBankTest, InFlightClientsReleasedOnShutdown) {
    auto bank = std::make_unique<ActorBank>(kAccounts, kInitial);
    constexpr int kClients = 4;
    std::atomic<int> resolved{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            // Each call either completes normally (accepted before
            // the close) or fails fast (after it) — never blocks
            // forever on an unanswered reply future.
            for (int i = 0; i < 2000; ++i) {
                (void)bank->transfer(c % kAccounts,
                                     (c + 1) % kAccounts, 1);
            }
            resolved.fetch_add(1);
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    bank->shutdown();
    for (auto& t : clients) t.join();  // a silent drop would hang here
    EXPECT_EQ(resolved.load(), kClients);
}

TEST(ActorBankTest, ServerSurvivesInjectedChannelFaults) {
    ActorBank bank(kAccounts, kInitial);
    {
        // Every third channel op fails.  The server must treat these
        // as transient — keep serving, never mistake one for a close.
        fault::ScopedPlan plan("channel-op:every=3");
        ASSERT_TRUE(plan.status().is_ok());
        int served = 0;
        for (int i = 0; i < 300; ++i) {
            if (bank.transfer(i % kAccounts, (i + 1) % kAccounts, 1)
                    .is_ok()) {
                ++served;
            }
        }
        EXPECT_GT(served, 0) << "server must keep serving under faults";
    }
    // Plan disarmed: full service and a clean shutdown.
    EXPECT_EQ(bank.total(),
              static_cast<int64_t>(kAccounts) * kInitial);
    bank.shutdown();
}

TEST(StmBankTest, BlockingTransferWaitsForFunds) {
    StmBank bank(2, 0);
    std::atomic<bool> done{false};
    std::thread waiter([&] {
        bank.transfer_blocking(0, 1, 500);  // account 0 is empty
        done = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(done.load());
    bank.deposit(0, 600);
    waiter.join();
    EXPECT_TRUE(done.load());
    EXPECT_EQ(bank.balance(0), 100);
    EXPECT_EQ(bank.balance(1), 500);
}

TEST(StmBankTest, AbortStatisticsAreReported) {
    StmBank bank(4, 1000);
    // Conflicts are probabilistic; on a lightly-loaded small machine a
    // single round can get lucky, so repeat until an abort shows up.
    for (int attempt = 0;
         attempt < 20 && bank.stm().stats().aborts == 0; ++attempt) {
        std::vector<std::thread> threads;
        for (int t = 0; t < 4; ++t) {
            threads.emplace_back([&] {
                for (int i = 0; i < 2000; ++i) {
                    (void)bank.transfer(0, 1, 1);
                    (void)bank.transfer(1, 0, 1);
                }
            });
        }
        for (auto& t : threads) t.join();
    }
    StmStats stats = bank.stm().stats();
    EXPECT_GT(stats.commits, 0u);
    EXPECT_GT(stats.aborts, 0u);
}

}  // namespace
}  // namespace bitc::conc
