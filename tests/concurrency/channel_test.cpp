#include "concurrency/channel.hpp"

#include <gtest/gtest.h>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "support/metrics.hpp"
#include "tests/support/test_seed.hpp"

namespace bitc::conc {
namespace {

TEST(ChannelTest, FifoSingleThread) {
    Channel<int> ch(8);
    ASSERT_TRUE(ch.send(1).is_ok());
    ASSERT_TRUE(ch.send(2).is_ok());
    ASSERT_TRUE(ch.send(3).is_ok());
    EXPECT_EQ(ch.recv().value(), 1);
    EXPECT_EQ(ch.recv().value(), 2);
    EXPECT_EQ(ch.recv().value(), 3);
}

TEST(ChannelTest, TrySendReportsUnavailableWhenFull) {
    Channel<int> ch(2);
    EXPECT_TRUE(ch.try_send(1).is_ok());
    EXPECT_TRUE(ch.try_send(2).is_ok());
    Status full = ch.try_send(3);
    ASSERT_FALSE(full.is_ok());
    EXPECT_EQ(full.code(), StatusCode::kUnavailable);
    EXPECT_EQ(ch.size(), 2u);
}

TEST(ChannelTest, TryRecvReportsUnavailableWhenEmpty) {
    Channel<int> ch(2);
    auto empty = ch.try_recv();
    ASSERT_FALSE(empty.is_ok());
    EXPECT_EQ(empty.status().code(), StatusCode::kUnavailable);
    ASSERT_TRUE(ch.try_send(9).is_ok());
    auto v = ch.try_recv();
    ASSERT_TRUE(v.is_ok());
    EXPECT_EQ(*v, 9);
}

TEST(ChannelTest, SendAfterCloseFails) {
    Channel<int> ch(2);
    ch.close();
    Status blocking = ch.send(1);
    ASSERT_FALSE(blocking.is_ok());
    EXPECT_EQ(blocking.code(), StatusCode::kCancelled);
    Status trying = ch.try_send(1);
    ASSERT_FALSE(trying.is_ok());
    EXPECT_EQ(trying.code(), StatusCode::kCancelled);
    EXPECT_TRUE(ch.closed());
}

TEST(ChannelTest, RecvDrainsBacklogAfterClose) {
    Channel<int> ch(4);
    ASSERT_TRUE(ch.send(10).is_ok());
    ASSERT_TRUE(ch.send(20).is_ok());
    ch.close();
    EXPECT_EQ(ch.recv().value(), 10);
    EXPECT_EQ(ch.recv().value(), 20);
    auto end = ch.recv();
    ASSERT_FALSE(end.is_ok());
    EXPECT_EQ(end.status().code(), StatusCode::kCancelled);
}

TEST(ChannelTest, CloseWakesBlockedReceiver) {
    Channel<int> ch(1);
    std::thread receiver([&] {
        auto r = ch.recv();
        EXPECT_FALSE(r.is_ok());
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ch.close();
    receiver.join();
}

TEST(ChannelTest, BlockingSendWaitsForRoom) {
    Channel<int> ch(1);
    ASSERT_TRUE(ch.send(1).is_ok());
    std::atomic<bool> sent{false};
    std::thread sender([&] {
        ASSERT_TRUE(ch.send(2).is_ok());
        sent = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_FALSE(sent.load()) << "send should block while full";
    EXPECT_EQ(ch.recv().value(), 1);
    sender.join();
    EXPECT_TRUE(sent.load());
    EXPECT_EQ(ch.recv().value(), 2);
}

TEST(ChannelTest, MpmcConservesMessages) {
    Channel<uint64_t> ch(64);
    constexpr int kProducers = 3;
    constexpr int kConsumers = 3;
    constexpr uint64_t kPerProducer = 10000;

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (uint64_t i = 0; i < kPerProducer; ++i) {
                ASSERT_TRUE(
                    ch.send(static_cast<uint64_t>(p) * kPerProducer + i)
                        .is_ok());
            }
        });
    }

    std::atomic<uint64_t> received_sum{0};
    std::atomic<uint64_t> received_count{0};
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&] {
            while (true) {
                auto v = ch.recv();
                if (!v.is_ok()) break;
                received_sum += v.value();
                ++received_count;
            }
        });
    }

    for (auto& t : producers) t.join();
    ch.close();
    for (auto& t : consumers) t.join();

    uint64_t n = kProducers * kPerProducer;
    EXPECT_EQ(received_count.load(), n);
    EXPECT_EQ(received_sum.load(), n * (n - 1) / 2);
}

TEST(ChannelTest, MoveOnlyPayloads) {
    Channel<std::unique_ptr<int>> ch(2);
    ASSERT_TRUE(ch.send(std::make_unique<int>(5)).is_ok());
    auto out = ch.recv();
    ASSERT_TRUE(out.is_ok());
    EXPECT_EQ(*out.value(), 5);
}


TEST(ChannelTest, DepthHighWaterTracksDeepestQueue) {
    Channel<int> ch(8);
    EXPECT_EQ(ch.depth_high_water(), 0u);
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(ch.send(i).is_ok());
    EXPECT_EQ(ch.depth_high_water(), 5u);
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(ch.recv().is_ok());
    // Draining never lowers the high-water mark.
    EXPECT_EQ(ch.depth_high_water(), 5u);
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(ch.send(i).is_ok());
    EXPECT_EQ(ch.depth_high_water(), 5u);
}

TEST(ChannelTest, BlockedTimeAccumulatesWhenReceiverWaits) {
    Channel<int> ch(1);
    EXPECT_EQ(ch.blocked_ns(), 0u);
    std::thread receiver([&] {
        auto v = ch.recv();  // blocks until the send below
        ASSERT_TRUE(v.is_ok());
        EXPECT_EQ(v.value(), 7);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(ch.send(7).is_ok());
    receiver.join();
    // The receiver demonstrably waited; the fast path records nothing,
    // so any nonzero value here came from the blocking slow path.
    EXPECT_GT(ch.blocked_ns(), 0u);
}

// --- Deadline/close decision order ----------------------------------
//
// Every test below uses an already-expired deadline, so the timed wait
// returns immediately with its predicate result — the exact situation
// where an implementation that trusts the timeout flag alone reports
// the wrong outcome.  The contract: a queued value beats everything, a
// close beats a timeout, and kDeadlineExceeded is only ever reported
// when the channel was provably open and unready.
//
// These are the real-clock smokes: the waits that actually elapse
// (recv_for/try_send_for expiring mid-park) run sleep-free on the
// virtual clock in tests/sim/sim_test.cpp (docs/simulation.md).

TEST(ChannelTest, RecvUntilDeliversValueDespiteExpiredDeadline) {
    Channel<int> ch(2);
    ASSERT_TRUE(ch.send(11).is_ok());
    auto past = std::chrono::steady_clock::now() -
                std::chrono::milliseconds(5);
    auto v = ch.recv_until(past);
    ASSERT_TRUE(v.is_ok());
    EXPECT_EQ(v.value(), 11);
}

TEST(ChannelTest, RecvUntilReportsCloseNotTimeout) {
    Channel<int> ch(2);
    ch.close();
    auto past = std::chrono::steady_clock::now() -
                std::chrono::milliseconds(5);
    auto v = ch.recv_until(past);
    ASSERT_FALSE(v.is_ok());
    EXPECT_EQ(v.status().code(), StatusCode::kCancelled)
        << "close must beat deadline";
}

TEST(ChannelTest, RecvUntilDrainsBacklogOfClosedChannelFirst) {
    Channel<int> ch(2);
    ASSERT_TRUE(ch.send(21).is_ok());
    ch.close();
    auto past = std::chrono::steady_clock::now() -
                std::chrono::milliseconds(5);
    EXPECT_EQ(ch.recv_until(past).value(), 21);
    auto end = ch.recv_until(past);
    ASSERT_FALSE(end.is_ok());
    EXPECT_EQ(end.status().code(), StatusCode::kCancelled);
}

TEST(ChannelTest, RecvUntilTimesOutOnlyWhenOpenAndEmpty) {
    Channel<int> ch(2);
    auto past = std::chrono::steady_clock::now() -
                std::chrono::milliseconds(5);
    auto v = ch.recv_until(past);
    ASSERT_FALSE(v.is_ok());
    EXPECT_EQ(v.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ChannelTest, RecvForZeroTimeoutStillSeesClose) {
    Channel<int> ch(1);
    ch.close();
    auto v = ch.recv_for(std::chrono::milliseconds(0));
    ASSERT_FALSE(v.is_ok());
    EXPECT_EQ(v.status().code(), StatusCode::kCancelled);
}

TEST(ChannelTest, TrySendUntilUsesRoomDespiteExpiredDeadline) {
    Channel<int> ch(1);
    auto past = std::chrono::steady_clock::now() -
                std::chrono::milliseconds(5);
    EXPECT_TRUE(ch.try_send_until(5, past).is_ok());
    EXPECT_EQ(ch.recv().value(), 5);
}

TEST(ChannelTest, TrySendUntilReportsCloseNotTimeout) {
    Channel<int> ch(1);
    ASSERT_TRUE(ch.send(1).is_ok());  // full AND closed below
    ch.close();
    auto past = std::chrono::steady_clock::now() -
                std::chrono::milliseconds(5);
    Status s = ch.try_send_until(2, past);
    ASSERT_FALSE(s.is_ok());
    EXPECT_EQ(s.code(), StatusCode::kCancelled)
        << "close must beat deadline";
}

TEST(ChannelTest, TrySendUntilTimesOutOnlyWhenOpenAndFull) {
    Channel<int> ch(1);
    ASSERT_TRUE(ch.send(1).is_ok());
    auto past = std::chrono::steady_clock::now() -
                std::chrono::milliseconds(5);
    Status s = ch.try_send_until(2, past);
    ASSERT_FALSE(s.is_ok());
    EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(ch.recv().value(), 1) << "timed-out send must not leak";
    EXPECT_FALSE(ch.try_recv().is_ok());
}

TEST(ChannelTest, CloseDuringBlockedRecvUntilReportsClose) {
    Channel<int> ch(1);
    std::thread closer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        ch.close();
    });
    // Deadline far in the future: the wake-up is the close.
    auto v = ch.recv_for(std::chrono::seconds(30));
    ASSERT_FALSE(v.is_ok());
    EXPECT_EQ(v.status().code(), StatusCode::kCancelled);
    closer.join();
}

TEST(ChannelTest, TimedOutRecvEndsBlockedIntervalExactlyOnce) {
    metrics::reset();
    metrics::enable();
    Channel<int> ch(1);
    auto v = ch.recv_for(std::chrono::milliseconds(10));
    metrics::disable();
    ASSERT_FALSE(v.is_ok());
    EXPECT_EQ(v.status().code(), StatusCode::kDeadlineExceeded);
    metrics::Snapshot snap = metrics::snapshot();
    // Exactly one blocked interval: begun once, ended once, with the
    // level gauge back at zero — a leaked interval would leave a
    // phantom waiter (gauge 1) or a double-ended one would wrap it.
    EXPECT_EQ(snap.counter(metrics::Counter::kChanRecvBlocked), 1u);
    EXPECT_EQ(snap.gauge(metrics::Gauge::kChanBlockedNow), 0u);
    EXPECT_EQ(snap.histogram(metrics::Histogram::kChanBlockedNs).count,
              1u);
    EXPECT_GT(ch.blocked_ns(), 0u);
    metrics::reset();
}

TEST(ChannelTest, TimedOutSendEndsBlockedIntervalExactlyOnce) {
    metrics::reset();
    metrics::enable();
    Channel<int> ch(1);
    ASSERT_TRUE(ch.send(1).is_ok());
    Status s = ch.try_send_for(2, std::chrono::milliseconds(10));
    metrics::disable();
    ASSERT_FALSE(s.is_ok());
    EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
    metrics::Snapshot snap = metrics::snapshot();
    EXPECT_EQ(snap.counter(metrics::Counter::kChanSendBlocked), 1u);
    EXPECT_EQ(snap.gauge(metrics::Gauge::kChanBlockedNow), 0u);
    metrics::reset();
}

// --- Many-producer/many-consumer stress over timed operations -------
//
// Producers race timed sends against consumers racing timed receives
// while a third party closes the channel mid-stream.  Run under TSan
// via the tier1_sanitizer label.  The invariant is exactly-once
// delivery: every value whose send succeeded is received exactly once,
// every value whose send failed (timeout or close) is received never —
// independent of how the deadlines and the close interleave.
TEST(ChannelStressTest, TimedMpmcWithMidStreamCloseLosesNothing) {
    constexpr int kProducers = 4;
    constexpr int kConsumers = 4;
    constexpr uint64_t kPerProducer = 2000;
    constexpr uint64_t kTotal = kProducers * kPerProducer;

    // Base seed for the per-thread deadline streams: BITC_TEST_SEED in
    // the environment overrides the default, so a failing interleaving
    // can be replayed exactly.  Any failure below prints the seed.
    uint64_t base_seed =
        bitc::test::seed_or(0x9e3779b97f4a7c15ull);
    BITC_SEED_TRACE(base_seed);

    Channel<uint64_t> ch(16);
    std::vector<std::atomic<uint32_t>> seen(kTotal);
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> received{0};

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            // Deterministically seeded, per-thread randomized
            // deadlines: some expire instantly, some wait a while.
            uint64_t state = base_seed ^ (0x9e3779b9u * (p + 1));
            for (uint64_t i = 0; i < kPerProducer; ++i) {
                state = state * 6364136223846793005ull + 1442695040888963407ull;
                auto timeout = std::chrono::microseconds(
                    (state >> 33) % 300);
                uint64_t value = p * kPerProducer + i;
                Status s = ch.try_send_for(value, timeout);
                if (s.is_ok()) {
                    accepted.fetch_add(1);
                } else if (s.code() == StatusCode::kCancelled) {
                    break;  // closed: nothing further can be accepted
                }
                // kDeadlineExceeded: this value was not enqueued;
                // move on (the value is simply never delivered).
            }
        });
    }

    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&, c] {
            uint64_t state = base_seed ^ (0x85ebca6bu * (c + 1));
            while (true) {
                state = state * 6364136223846793005ull + 1442695040888963407ull;
                auto timeout = std::chrono::microseconds(
                    (state >> 33) % 300);
                auto v = ch.recv_for(timeout);
                if (v.is_ok()) {
                    received.fetch_add(1);
                    seen[v.value()].fetch_add(1);
                    continue;
                }
                if (v.status().code() == StatusCode::kCancelled) {
                    break;  // closed and drained
                }
                // kDeadlineExceeded: try again until the close.
            }
        });
    }

    // Close mid-stream, while traffic is in full flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ch.close();

    for (auto& t : producers) t.join();
    for (auto& t : consumers) t.join();

    // The close may strand accepted values in the backlog only if
    // every consumer exited first — but consumers only exit on
    // closed-and-drained, so the backlog must be empty.
    EXPECT_FALSE(ch.try_recv().is_ok());
    EXPECT_EQ(received.load(), accepted.load())
        << "every accepted value is delivered, nothing else";
    uint64_t delivered_once = 0;
    for (uint64_t i = 0; i < kTotal; ++i) {
        uint32_t n = seen[i].load();
        ASSERT_LE(n, 1u) << "value " << i << " delivered " << n
                         << " times";
        delivered_once += n;
    }
    EXPECT_EQ(delivered_once, accepted.load());
}

// Pins the locking discipline the header documents: every observer
// (drained/size/depth_high_water/blocked_ns/closed) takes mutex_, so
// polling them from a reporting thread while producers and consumers
// run full-tilt must be race-free.  This suite carries the
// tier1_sanitizer label, so TSan enforces the claim — an unlocked
// observer shows up as a data race here, not as a flaky report.
TEST(ChannelStressTest, TelemetryObserversAreLockedUnderTraffic) {
    Channel<int> ch(8);
    constexpr int kMessages = 20000;
    std::thread producer([&] {
        for (int i = 0; i < kMessages; ++i) {
            if (!ch.send(i).is_ok()) break;
        }
        ch.close();
    });
    std::thread consumer([&] {
        while (ch.recv().is_ok()) {
        }
    });
    // The reporting thread: exactly what the pipeline report path does
    // mid-run.  The values are racy-by-intent snapshots; the accesses
    // must not be.
    uint64_t sink = 0;
    while (!ch.closed() || !ch.drained()) {
        sink += ch.size();
        sink += ch.depth_high_water();
        sink += ch.blocked_ns();
        std::this_thread::yield();
    }
    producer.join();
    consumer.join();
    EXPECT_TRUE(ch.drained());
    (void)sink;
}

TEST(ChannelTest, TrafficMirrorsIntoMetricsRegistry) {
    metrics::reset();
    metrics::enable();
    {
        Channel<int> ch(4);
        for (int i = 0; i < 3; ++i) ASSERT_TRUE(ch.send(i).is_ok());
        ASSERT_TRUE(ch.try_send(3).is_ok());
        for (int i = 0; i < 4; ++i) ASSERT_TRUE(ch.recv().is_ok());
        ch.close();
        ch.close();  // idempotent: must count once
    }
    metrics::disable();
    metrics::Snapshot snap = metrics::snapshot();
    EXPECT_EQ(snap.counter(metrics::Counter::kChanSends), 4u);
    EXPECT_EQ(snap.counter(metrics::Counter::kChanRecvs), 4u);
    EXPECT_EQ(snap.counter(metrics::Counter::kChanCloses), 1u);
    EXPECT_EQ(snap.counter(metrics::Counter::kChanSendBlocked), 0u);
    EXPECT_EQ(snap.gauge(metrics::Gauge::kChanDepthHighWater), 4u);
    metrics::reset();
}

}  // namespace
}  // namespace bitc::conc
