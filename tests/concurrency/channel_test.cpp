#include "concurrency/channel.hpp"

#include <gtest/gtest.h>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "support/metrics.hpp"

namespace bitc::conc {
namespace {

TEST(ChannelTest, FifoSingleThread) {
    Channel<int> ch(8);
    ASSERT_TRUE(ch.send(1).is_ok());
    ASSERT_TRUE(ch.send(2).is_ok());
    ASSERT_TRUE(ch.send(3).is_ok());
    EXPECT_EQ(ch.recv().value(), 1);
    EXPECT_EQ(ch.recv().value(), 2);
    EXPECT_EQ(ch.recv().value(), 3);
}

TEST(ChannelTest, TrySendFailsWhenFull) {
    Channel<int> ch(2);
    EXPECT_TRUE(ch.try_send(1));
    EXPECT_TRUE(ch.try_send(2));
    EXPECT_FALSE(ch.try_send(3));
    EXPECT_EQ(ch.size(), 2u);
}

TEST(ChannelTest, TryRecvOnEmptyReturnsNothing) {
    Channel<int> ch(2);
    EXPECT_FALSE(ch.try_recv().has_value());
    ch.try_send(9);
    auto v = ch.try_recv();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 9);
}

TEST(ChannelTest, SendAfterCloseFails) {
    Channel<int> ch(2);
    ch.close();
    EXPECT_FALSE(ch.send(1).is_ok());
    EXPECT_FALSE(ch.try_send(1));
    EXPECT_TRUE(ch.closed());
}

TEST(ChannelTest, RecvDrainsBacklogAfterClose) {
    Channel<int> ch(4);
    ASSERT_TRUE(ch.send(10).is_ok());
    ASSERT_TRUE(ch.send(20).is_ok());
    ch.close();
    EXPECT_EQ(ch.recv().value(), 10);
    EXPECT_EQ(ch.recv().value(), 20);
    auto end = ch.recv();
    ASSERT_FALSE(end.is_ok());
    EXPECT_EQ(end.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ChannelTest, CloseWakesBlockedReceiver) {
    Channel<int> ch(1);
    std::thread receiver([&] {
        auto r = ch.recv();
        EXPECT_FALSE(r.is_ok());
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ch.close();
    receiver.join();
}

TEST(ChannelTest, BlockingSendWaitsForRoom) {
    Channel<int> ch(1);
    ASSERT_TRUE(ch.send(1).is_ok());
    std::atomic<bool> sent{false};
    std::thread sender([&] {
        ASSERT_TRUE(ch.send(2).is_ok());
        sent = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_FALSE(sent.load()) << "send should block while full";
    EXPECT_EQ(ch.recv().value(), 1);
    sender.join();
    EXPECT_TRUE(sent.load());
    EXPECT_EQ(ch.recv().value(), 2);
}

TEST(ChannelTest, MpmcConservesMessages) {
    Channel<uint64_t> ch(64);
    constexpr int kProducers = 3;
    constexpr int kConsumers = 3;
    constexpr uint64_t kPerProducer = 10000;

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (uint64_t i = 0; i < kPerProducer; ++i) {
                ASSERT_TRUE(
                    ch.send(static_cast<uint64_t>(p) * kPerProducer + i)
                        .is_ok());
            }
        });
    }

    std::atomic<uint64_t> received_sum{0};
    std::atomic<uint64_t> received_count{0};
    std::vector<std::thread> consumers;
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&] {
            while (true) {
                auto v = ch.recv();
                if (!v.is_ok()) break;
                received_sum += v.value();
                ++received_count;
            }
        });
    }

    for (auto& t : producers) t.join();
    ch.close();
    for (auto& t : consumers) t.join();

    uint64_t n = kProducers * kPerProducer;
    EXPECT_EQ(received_count.load(), n);
    EXPECT_EQ(received_sum.load(), n * (n - 1) / 2);
}

TEST(ChannelTest, MoveOnlyPayloads) {
    Channel<std::unique_ptr<int>> ch(2);
    ASSERT_TRUE(ch.send(std::make_unique<int>(5)).is_ok());
    auto out = ch.recv();
    ASSERT_TRUE(out.is_ok());
    EXPECT_EQ(*out.value(), 5);
}


TEST(ChannelTest, DepthHighWaterTracksDeepestQueue) {
    Channel<int> ch(8);
    EXPECT_EQ(ch.depth_high_water(), 0u);
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(ch.send(i).is_ok());
    EXPECT_EQ(ch.depth_high_water(), 5u);
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(ch.recv().is_ok());
    // Draining never lowers the high-water mark.
    EXPECT_EQ(ch.depth_high_water(), 5u);
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(ch.send(i).is_ok());
    EXPECT_EQ(ch.depth_high_water(), 5u);
}

TEST(ChannelTest, BlockedTimeAccumulatesWhenReceiverWaits) {
    Channel<int> ch(1);
    EXPECT_EQ(ch.blocked_ns(), 0u);
    std::thread receiver([&] {
        auto v = ch.recv();  // blocks until the send below
        ASSERT_TRUE(v.is_ok());
        EXPECT_EQ(v.value(), 7);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(ch.send(7).is_ok());
    receiver.join();
    // The receiver demonstrably waited; the fast path records nothing,
    // so any nonzero value here came from the blocking slow path.
    EXPECT_GT(ch.blocked_ns(), 0u);
}

TEST(ChannelTest, TrafficMirrorsIntoMetricsRegistry) {
    metrics::reset();
    metrics::enable();
    {
        Channel<int> ch(4);
        for (int i = 0; i < 3; ++i) ASSERT_TRUE(ch.send(i).is_ok());
        ASSERT_TRUE(ch.try_send(3));
        for (int i = 0; i < 4; ++i) ASSERT_TRUE(ch.recv().is_ok());
        ch.close();
        ch.close();  // idempotent: must count once
    }
    metrics::disable();
    metrics::Snapshot snap = metrics::snapshot();
    EXPECT_EQ(snap.counter(metrics::Counter::kChanSends), 4u);
    EXPECT_EQ(snap.counter(metrics::Counter::kChanRecvs), 4u);
    EXPECT_EQ(snap.counter(metrics::Counter::kChanCloses), 1u);
    EXPECT_EQ(snap.counter(metrics::Counter::kChanSendBlocked), 0u);
    EXPECT_EQ(snap.gauge(metrics::Gauge::kChanDepthHighWater), 4u);
    metrics::reset();
}

}  // namespace
}  // namespace bitc::conc
