#include "concurrency/stm.hpp"

#include <gtest/gtest.h>
#include <thread>
#include <vector>

namespace bitc::conc {
namespace {

TEST(StmTest, SingleThreadedReadWrite) {
    Stm stm;
    TVar var(10);
    atomically(stm, [&](Txn& txn) {
        uint64_t v = txn.read(var);
        txn.write(var, v + 5);
    });
    EXPECT_EQ(var.unsafe_load(), 15u);
    EXPECT_EQ(stm.stats().commits, 1u);
    EXPECT_EQ(stm.stats().aborts, 0u);
}

TEST(StmTest, ReadOwnWrites) {
    Stm stm;
    TVar var(1);
    uint64_t seen = atomically(stm, [&](Txn& txn) {
        txn.write(var, 42);
        return txn.read(var);
    });
    EXPECT_EQ(seen, 42u);
}

TEST(StmTest, LastWriteWins) {
    Stm stm;
    TVar var(0);
    atomically(stm, [&](Txn& txn) {
        txn.write(var, 1);
        txn.write(var, 2);
        txn.write(var, 3);
    });
    EXPECT_EQ(var.unsafe_load(), 3u);
}

TEST(StmTest, ReturnsValueFromBody) {
    Stm stm;
    TVar var(7);
    uint64_t doubled = atomically(stm, [&](Txn& txn) {
        return txn.read(var) * 2;
    });
    EXPECT_EQ(doubled, 14u);
}

TEST(StmTest, ConcurrentIncrementsLoseNothing) {
    Stm stm;
    TVar counter(0);
    constexpr int kThreads = 4;
    constexpr int kIncrements = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIncrements; ++i) {
                atomically(stm, [&](Txn& txn) {
                    txn.write(counter, txn.read(counter) + 1);
                });
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(counter.unsafe_load(),
              static_cast<uint64_t>(kThreads * kIncrements));
    EXPECT_EQ(stm.stats().commits,
              static_cast<uint64_t>(kThreads * kIncrements));
}

TEST(StmTest, ConsistentSnapshotAcrossTwoVars) {
    // Invariant: a + b == 100 under concurrent transfers between them.
    Stm stm;
    TVar a(50);
    TVar b(50);
    std::atomic<bool> stop{false};
    std::atomic<int> violations{0};

    std::thread mutator([&] {
        for (int i = 0; i < 20000; ++i) {
            atomically(stm, [&](Txn& txn) {
                uint64_t av = txn.read(a);
                uint64_t bv = txn.read(b);
                txn.write(a, av - 1);
                txn.write(b, bv + 1);
            });
        }
        stop = true;
    });
    std::thread observer([&] {
        while (!stop) {
            uint64_t sum = atomically(stm, [&](Txn& txn) {
                return txn.read(a) + txn.read(b);
            });
            if (sum != 100) ++violations;
        }
    });
    mutator.join();
    observer.join();
    EXPECT_EQ(violations.load(), 0)
        << "observer saw a torn intermediate state";
}

TEST(StmTest, RetryBlocksUntilConditionHolds) {
    Stm stm;
    TVar flag(0);
    TVar result(0);

    std::thread waiter([&] {
        atomically(stm, [&](Txn& txn) {
            if (txn.read(flag) == 0) txn.retry();
            txn.write(result, 99);
        });
    });
    // Give the waiter time to block on the unset flag.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(result.unsafe_load(), 0u);
    atomically(stm, [&](Txn& txn) { txn.write(flag, 1); });
    waiter.join();
    EXPECT_EQ(result.unsafe_load(), 99u);
    EXPECT_GE(stm.stats().retries, 1u);
}

TEST(StmTest, OrElseTakesFirstBranchWhenItSucceeds) {
    Stm stm;
    TVar var(5);
    uint64_t taken = atomically(stm, [&](Txn& txn) {
        return txn.or_else(
            [&](Txn& t) -> uint64_t { return t.read(var); },
            [&](Txn&) -> uint64_t { return 999; });
    });
    EXPECT_EQ(taken, 5u);
}

TEST(StmTest, OrElseFallsThroughOnRetry) {
    Stm stm;
    TVar empty_queue(0);
    TVar fallback(77);
    uint64_t taken = atomically(stm, [&](Txn& txn) {
        return txn.or_else(
            [&](Txn& t) -> uint64_t {
                if (t.read(empty_queue) == 0) t.retry();
                return t.read(empty_queue);
            },
            [&](Txn& t) -> uint64_t { return t.read(fallback); });
    });
    EXPECT_EQ(taken, 77u);
}

TEST(StmTest, OrElseRollsBackFirstBranchWrites) {
    Stm stm;
    TVar var(0);
    TVar other(0);
    atomically(stm, [&](Txn& txn) {
        txn.or_else(
            [&](Txn& t) {
                t.write(var, 123);  // must be rolled back
                t.retry();
            },
            [&](Txn& t) { t.write(other, 1); });
    });
    EXPECT_EQ(var.unsafe_load(), 0u)
        << "first branch's write leaked through retry";
    EXPECT_EQ(other.unsafe_load(), 1u);
}

TEST(StmTest, WriteOnlyTransactionsCommit) {
    Stm stm;
    TVar a(0);
    TVar b(0);
    atomically(stm, [&](Txn& txn) {
        txn.write(a, 1);
        txn.write(b, 2);
    });
    EXPECT_EQ(a.unsafe_load(), 1u);
    EXPECT_EQ(b.unsafe_load(), 2u);
}

TEST(StmTest, ManyVarsTransactionalSwapPreservesMultiset) {
    Stm stm;
    constexpr size_t kVars = 16;
    std::vector<std::unique_ptr<TVar>> vars;
    for (size_t i = 0; i < kVars; ++i) {
        vars.push_back(std::make_unique<TVar>(i));
    }
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < 2000; ++i) {
                size_t x = (t + i) % kVars;
                size_t y = (t * 7 + i * 3 + 1) % kVars;
                if (x == y) continue;
                atomically(stm, [&](Txn& txn) {
                    uint64_t xv = txn.read(*vars[x]);
                    uint64_t yv = txn.read(*vars[y]);
                    txn.write(*vars[x], yv);
                    txn.write(*vars[y], xv);
                });
            }
        });
    }
    for (auto& t : threads) t.join();
    // Swaps permute values; the sum is invariant.
    uint64_t sum = 0;
    for (auto& v : vars) sum += v->unsafe_load();
    EXPECT_EQ(sum, kVars * (kVars - 1) / 2);
}

}  // namespace
}  // namespace bitc::conc
