#include "support/intern.hpp"

#include <gtest/gtest.h>
#include <unordered_set>

namespace bitc {
namespace {

TEST(InternTest, SameTextSameSymbol) {
    SymbolTable table;
    Symbol a = table.intern("foo");
    Symbol b = table.intern("foo");
    EXPECT_EQ(a, b);
    EXPECT_EQ(table.size(), 1u);
}

TEST(InternTest, DifferentTextDifferentSymbol) {
    SymbolTable table;
    Symbol a = table.intern("foo");
    Symbol b = table.intern("bar");
    EXPECT_NE(a, b);
    EXPECT_EQ(table.size(), 2u);
}

TEST(InternTest, ResolvesBackToText) {
    SymbolTable table;
    Symbol a = table.intern("lambda");
    EXPECT_EQ(table.text(a), "lambda");
}

TEST(InternTest, DefaultSymbolIsInvalid) {
    Symbol s;
    EXPECT_FALSE(s.is_valid());
}

TEST(InternTest, EmptyStringIsInternable) {
    SymbolTable table;
    Symbol s = table.intern("");
    EXPECT_TRUE(s.is_valid());
    EXPECT_EQ(table.text(s), "");
}

TEST(InternTest, UsableInHashContainers) {
    SymbolTable table;
    std::unordered_set<Symbol> set;
    set.insert(table.intern("a"));
    set.insert(table.intern("b"));
    set.insert(table.intern("a"));
    EXPECT_EQ(set.size(), 2u);
    EXPECT_TRUE(set.contains(table.intern("a")));
    EXPECT_FALSE(set.contains(table.intern("c")));
}

TEST(InternTest, ManySymbolsStayStable) {
    SymbolTable table;
    std::vector<Symbol> symbols;
    for (int i = 0; i < 1000; ++i) {
        symbols.push_back(table.intern("sym" + std::to_string(i)));
    }
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(table.text(symbols[i]), "sym" + std::to_string(i));
    }
}

}  // namespace
}  // namespace bitc
