#include "support/diagnostics.hpp"

#include <gtest/gtest.h>

namespace bitc {
namespace {

SourceSpan span_at(uint32_t line, uint32_t col) {
    return SourceSpan{{line, col}, {line, col + 1}};
}

TEST(DiagnosticsTest, StartsEmpty) {
    DiagnosticEngine engine;
    EXPECT_FALSE(engine.has_errors());
    EXPECT_EQ(engine.error_count(), 0u);
    EXPECT_EQ(engine.first_error(), "");
}

TEST(DiagnosticsTest, ErrorsAreCounted) {
    DiagnosticEngine engine;
    engine.error(span_at(1, 1), "first");
    engine.warning(span_at(2, 1), "careful");
    engine.error(span_at(3, 1), "second");
    EXPECT_TRUE(engine.has_errors());
    EXPECT_EQ(engine.error_count(), 2u);
    EXPECT_EQ(engine.warning_count(), 1u);
    EXPECT_EQ(engine.first_error(), "first");
}

TEST(DiagnosticsTest, NotesDoNotTripErrorFlag) {
    DiagnosticEngine engine;
    engine.note(span_at(1, 1), "fyi");
    EXPECT_FALSE(engine.has_errors());
}

TEST(DiagnosticsTest, RendersLocationAndSeverity) {
    DiagnosticEngine engine;
    engine.error(span_at(12, 3), "unbound identifier 'x'");
    EXPECT_EQ(engine.diagnostics()[0].to_string(),
              "12:3: error: unbound identifier 'x'");
}

TEST(DiagnosticsTest, ToStringJoinsLines) {
    DiagnosticEngine engine;
    engine.error(span_at(1, 1), "a");
    engine.warning(span_at(2, 2), "b");
    EXPECT_EQ(engine.to_string(),
              "1:1: error: a\n2:2: warning: b\n");
}

TEST(DiagnosticsTest, ClearResets) {
    DiagnosticEngine engine;
    engine.error(span_at(1, 1), "a");
    engine.clear();
    EXPECT_FALSE(engine.has_errors());
    EXPECT_TRUE(engine.diagnostics().empty());
}

TEST(SourceSpanTest, JoinCoversBoth) {
    SourceSpan a{{1, 2}, {1, 5}};
    SourceSpan b{{3, 1}, {3, 9}};
    SourceSpan joined = SourceSpan::join(a, b);
    EXPECT_EQ(joined.begin, (SourceLoc{1, 2}));
    EXPECT_EQ(joined.end, (SourceLoc{3, 9}));
}

TEST(SourceSpanTest, JoinWithInvalidKeepsValid) {
    SourceSpan a{{1, 2}, {1, 5}};
    SourceSpan invalid;
    EXPECT_EQ(SourceSpan::join(a, invalid), a);
    EXPECT_EQ(SourceSpan::join(invalid, a), a);
}

TEST(SourceLocTest, InvalidRendersQuestionMark) {
    SourceLoc loc;
    EXPECT_EQ(loc.to_string(), "?");
    EXPECT_EQ((SourceLoc{4, 7}).to_string(), "4:7");
}

}  // namespace
}  // namespace bitc
