#include "support/stats.hpp"

#include <gtest/gtest.h>

namespace bitc {
namespace {

TEST(SampleStatsTest, BasicMoments) {
    SampleStats stats;
    for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) stats.record(v);
    EXPECT_EQ(stats.count(), 5u);
    EXPECT_DOUBLE_EQ(stats.min(), 1.0);
    EXPECT_DOUBLE_EQ(stats.max(), 5.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
    EXPECT_DOUBLE_EQ(stats.sum(), 15.0);
    EXPECT_NEAR(stats.stddev(), 1.4142, 1e-3);
}

TEST(SampleStatsTest, PercentilesAreOrderStatistics) {
    SampleStats stats;
    for (int i = 99; i >= 0; --i) stats.record(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(stats.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(stats.percentile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(stats.percentile(0.99), 99.0);
    EXPECT_DOUBLE_EQ(stats.percentile(1.0), 99.0);
}

TEST(SampleStatsTest, SummaryMentionsCount) {
    SampleStats stats;
    stats.record(10.0);
    EXPECT_NE(stats.summary().find("n=1"), std::string::npos);
    SampleStats empty;
    EXPECT_EQ(empty.summary(), "n=0");
}

TEST(SampleStatsTest, ClearEmpties) {
    SampleStats stats;
    stats.record(1.0);
    stats.clear();
    EXPECT_EQ(stats.count(), 0u);
}

TEST(ScopedTimerTest, RecordsNonNegativeDuration) {
    SampleStats stats;
    {
        ScopedTimer timer(stats);
        int x = 0;
        for (int i = 0; i < 1000; ++i) x += i;
        testing::internal::GetArgvs();  // opaque call: keeps loop alive
        (void)x;
    }
    ASSERT_EQ(stats.count(), 1u);
    EXPECT_GE(stats.min(), 0.0);
}

TEST(NowNsTest, Monotonic) {
    uint64_t a = now_ns();
    uint64_t b = now_ns();
    EXPECT_LE(a, b);
}

}  // namespace
}  // namespace bitc
