#include "support/string_util.hpp"

#include <gtest/gtest.h>

namespace bitc {
namespace {

TEST(SplitTest, SplitsOnSeparator) {
    auto parts = split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, PreservesEmptyFields) {
    auto parts = split(",a,", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "");
    EXPECT_EQ(parts[1], "a");
    EXPECT_EQ(parts[2], "");
}

TEST(SplitTest, EmptyInputYieldsSingleEmptyField) {
    auto parts = split("", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "");
}

TEST(JoinTest, RoundTripsWithSplit) {
    std::vector<std::string> parts = {"x", "y", "z"};
    EXPECT_EQ(join(parts, "::"), "x::y::z");
    EXPECT_EQ(join({}, ","), "");
}

TEST(StartsWithTest, Basic) {
    EXPECT_TRUE(starts_with("foobar", "foo"));
    EXPECT_FALSE(starts_with("foobar", "bar"));
    EXPECT_TRUE(starts_with("foo", ""));
    EXPECT_FALSE(starts_with("fo", "foo"));
}

TEST(TrimTest, StripsBothEnds) {
    EXPECT_EQ(trim("  hi \t\n"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    EXPECT_EQ(trim("a b"), "a b");
}

TEST(StrFormatTest, FormatsLikePrintf) {
    EXPECT_EQ(str_format("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
    EXPECT_EQ(str_format("%s", "plain"), "plain");
    EXPECT_EQ(str_format("%.2f", 3.14159), "3.14");
}

TEST(HumanBytesTest, PicksUnits) {
    EXPECT_EQ(human_bytes(512), "512.0 B");
    EXPECT_EQ(human_bytes(2048), "2.0 KiB");
    EXPECT_EQ(human_bytes(3u << 20), "3.0 MiB");
    EXPECT_EQ(human_bytes(5ull << 30), "5.0 GiB");
}

}  // namespace
}  // namespace bitc
