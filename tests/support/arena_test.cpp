#include "support/arena.hpp"

#include <cstdint>
#include <cstring>
#include <gtest/gtest.h>

namespace bitc {
namespace {

TEST(ArenaTest, AllocationsAreDistinctAndWritable) {
    Arena arena;
    int* a = arena.create<int>(1);
    int* b = arena.create<int>(2);
    EXPECT_NE(a, b);
    EXPECT_EQ(*a, 1);
    EXPECT_EQ(*b, 2);
}

TEST(ArenaTest, RespectsAlignment) {
    Arena arena;
    arena.allocate(1, 1);
    void* p = arena.allocate(8, 64);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u);
}

TEST(ArenaTest, GrowsAcrossChunks) {
    Arena arena(64);
    for (int i = 0; i < 100; ++i) {
        void* p = arena.allocate(32);
        std::memset(p, 0xab, 32);
    }
    EXPECT_GT(arena.chunk_count(), 1u);
    EXPECT_EQ(arena.bytes_allocated(), 3200u);
}

TEST(ArenaTest, LargeAllocationExceedingChunkSize) {
    Arena arena(64);
    void* p = arena.allocate(100000);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0, 100000);
}

TEST(ArenaTest, ResetReleasesEverything) {
    Arena arena;
    arena.allocate(1000);
    arena.reset();
    EXPECT_EQ(arena.bytes_allocated(), 0u);
    EXPECT_EQ(arena.chunk_count(), 0u);
}

TEST(ArenaTest, ZeroByteAllocationReturnsUniquePointers) {
    Arena arena;
    void* a = arena.allocate(0);
    void* b = arena.allocate(0);
    EXPECT_NE(a, b);
}

struct Node {
    Node* next;
    uint64_t payload;
};

TEST(ArenaTest, BuildsLinkedStructures) {
    Arena arena;
    Node* head = nullptr;
    for (uint64_t i = 0; i < 1000; ++i) {
        head = arena.create<Node>(head, i);
    }
    uint64_t sum = 0;
    for (Node* n = head; n != nullptr; n = n->next) sum += n->payload;
    EXPECT_EQ(sum, 999u * 1000u / 2);
}

}  // namespace
}  // namespace bitc
