#include "support/buffer_pool.hpp"

#include <cstring>
#include <gtest/gtest.h>
#include <thread>
#include <vector>

#include "support/fault.hpp"

namespace bitc::pool {
namespace {

TEST(BufferPoolTest, AcquireGivesWritableClassSizedSlab) {
    BufferPool pool;
    auto buf = pool.acquire(100);
    ASSERT_TRUE(buf.is_ok());
    EXPECT_TRUE(buf.value().valid());
    EXPECT_GE(buf.value().capacity(), 100u);
    std::memset(buf.value().data(), 0xab, buf.value().capacity());
    EXPECT_EQ(buf.value().span().size(), buf.value().capacity());
}

TEST(BufferPoolTest, ReleaseThenAcquireReusesTheSlab) {
    BufferPool pool;
    auto first = pool.acquire(4096);
    ASSERT_TRUE(first.is_ok());
    uint8_t* bytes = first.value().data();
    first.value().reset();
    auto second = pool.acquire(4096);
    ASSERT_TRUE(second.is_ok());
    EXPECT_EQ(second.value().data(), bytes);
    BufferPoolStats stats = pool.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.outstanding, 1u);
}

TEST(BufferPoolTest, DistinctLiveSlabsNeverAlias) {
    BufferPool pool;
    auto a = pool.acquire(64);
    auto b = pool.acquire(64);
    ASSERT_TRUE(a.is_ok());
    ASSERT_TRUE(b.is_ok());
    EXPECT_NE(a.value().data(), b.value().data());
}

TEST(BufferPoolTest, CopiesShareTheSlabUntilLastRefDrops) {
    BufferPool pool;
    auto buf = pool.acquire(64);
    ASSERT_TRUE(buf.is_ok());
    uint8_t* bytes = buf.value().data();
    BufferRef copy = buf.value();
    EXPECT_EQ(copy.data(), bytes);
    buf.value().reset();
    // The copy still pins the slab: it must not be on a freelist.
    EXPECT_EQ(pool.stats().pooled, 0u);
    auto other = pool.acquire(64);
    ASSERT_TRUE(other.is_ok());
    EXPECT_NE(other.value().data(), bytes);
    copy.reset();
    EXPECT_EQ(pool.stats().pooled, 1u);
}

TEST(BufferPoolTest, SizeClassesServeAscendingRequests) {
    BufferPool pool;
    size_t last = 0;
    for (size_t want : {1ul, 4096ul, 4097ul, 65536ul, 262144ul}) {
        auto buf = pool.acquire(want);
        ASSERT_TRUE(buf.is_ok()) << want;
        EXPECT_GE(buf.value().capacity(), want);
        EXPECT_GE(buf.value().capacity(), last);
        last = want;
    }
}

TEST(BufferPoolTest, OversizeRequestsGetExactOneOffSlabs) {
    BufferPool pool;
    constexpr size_t kHuge = 1u << 20;  // over the top class
    auto buf = pool.acquire(kHuge);
    ASSERT_TRUE(buf.is_ok());
    EXPECT_GE(buf.value().capacity(), kHuge);
    buf.value().reset();
    // One-off slabs are freed, not pooled: no freelist growth.
    EXPECT_EQ(pool.stats().pooled, 0u);
}

TEST(BufferPoolTest, FreelistBoundCapsPooledSlabs) {
    BufferPool pool(/*max_pooled_per_class=*/2);
    std::vector<BufferRef> live;
    for (int i = 0; i < 5; ++i) {
        auto buf = pool.acquire(64);
        ASSERT_TRUE(buf.is_ok());
        live.push_back(std::move(buf).take());
    }
    live.clear();
    EXPECT_EQ(pool.stats().pooled, 2u);
    EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(BufferPoolTest, WarmSteadyStateNeverMisses) {
    BufferPool pool;
    { auto warm = pool.acquire(4096); ASSERT_TRUE(warm.is_ok()); }
    uint64_t misses_before = pool.stats().misses;
    for (int i = 0; i < 100; ++i) {
        auto buf = pool.acquire(4096);
        ASSERT_TRUE(buf.is_ok());
    }
    EXPECT_EQ(pool.stats().misses, misses_before);
    EXPECT_GE(pool.stats().hits, 100u);
}

TEST(BufferPoolTest, RefillConsultsHeapAllocFaultSite) {
    BufferPool pool;
    auto& injector = fault::Injector::instance();
    injector.arm_nth(fault::Site::kHeapAlloc, 1);
    auto miss = pool.acquire(64);  // empty freelist -> real refill
    EXPECT_FALSE(miss.is_ok());
    EXPECT_EQ(miss.status().code(), StatusCode::kResourceExhausted);
    injector.disarm();
    // The failed acquire left the pool consistent.
    auto after = pool.acquire(64);
    ASSERT_TRUE(after.is_ok());
    EXPECT_EQ(pool.stats().outstanding, 1u);
}

TEST(BufferPoolTest, FreelistHitsAreInjectionFree) {
    BufferPool pool;
    { auto warm = pool.acquire(64); ASSERT_TRUE(warm.is_ok()); }
    auto& injector = fault::Injector::instance();
    injector.arm_every(fault::Site::kHeapAlloc, 1);  // fail them all
    auto hit = pool.acquire(64);
    injector.disarm();
    ASSERT_TRUE(hit.is_ok()) << "freelist hit must not consult the "
                                "fault site";
}

TEST(BufferPoolTest, ConcurrentAcquireReleaseStaysConsistent) {
    BufferPool pool;
    constexpr int kThreads = 4;
    constexpr int kIters = 2000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&pool] {
            for (int i = 0; i < kIters; ++i) {
                auto buf = pool.acquire(64 + (i % 3) * 8192);
                ASSERT_TRUE(buf.is_ok());
                buf.value().data()[0] = static_cast<uint8_t>(i);
                BufferRef copy = buf.value();
                buf.value().reset();
                copy.reset();
            }
        });
    }
    for (auto& t : threads) t.join();
    BufferPoolStats stats = pool.stats();
    EXPECT_EQ(stats.outstanding, 0u);
    EXPECT_EQ(stats.hits + stats.misses,
              static_cast<uint64_t>(kThreads) * kIters);
}

TEST(BufferPoolTest, FramePoolIsSharedAndUsable) {
    auto a = frame_pool().acquire(1024);
    ASSERT_TRUE(a.is_ok());
    std::memset(a.value().data(), 0, 1024);
}

}  // namespace
}  // namespace bitc::pool
