/**
 * @file
 * Round-trip tests for the structured options layer: for every valid
 * spec value s, parse(to_string(s)) == s — the property that lets the
 * CLI strings survive as thin adapters over the typed API.  Plus the
 * grammar rejection matrix and the generated usage text.
 */
#include "support/options.hpp"

#include <gtest/gtest.h>

namespace bitc::options {
namespace {

TEST(PipelineSpecRoundTripTest, DefaultSurvives) {
    PipelineSpec spec;
    auto back = PipelineSpec::parse(spec.to_string());
    ASSERT_TRUE(back.is_ok()) << back.status().to_string();
    EXPECT_EQ(back.value(), spec);
}

TEST(PipelineSpecRoundTripTest, EveryFieldSurvives) {
    PipelineSpec spec;
    spec.with_stage_workers({1, 2, 4, 3})
        .with_queue(16)
        .with_batch(8)
        .with_packets(4321)
        .with_payload(256)
        .with_lookup_us(50)
        .with_migrated(true)
        .with_seed(99)
        .with_deadline_ms(25);
    spec.max_restarts = 5;
    spec.restart_window_ms = 2000;
    spec.backoff_ms = 7;
    auto back = PipelineSpec::parse(spec.to_string());
    ASSERT_TRUE(back.is_ok()) << back.status().to_string();
    EXPECT_EQ(back.value(), spec);
}

TEST(PipelineSpecRoundTripTest, UniformWorkersCollapseToOneCount) {
    PipelineSpec spec = PipelineSpec{}.with_workers(4);
    std::string text = spec.to_string();
    EXPECT_NE(text.find("workers=4,"), std::string::npos) << text;
    auto back = PipelineSpec::parse(text);
    ASSERT_TRUE(back.is_ok());
    EXPECT_EQ(back.value(), spec);
}

TEST(PipelineSpecRoundTripTest, EmptyStringIsTheDefaultSpec) {
    auto parsed = PipelineSpec::parse("");
    ASSERT_TRUE(parsed.is_ok());
    EXPECT_EQ(parsed.value(), PipelineSpec{});
}

TEST(PipelineSpecTest, ValidateRejectsZeroes) {
    EXPECT_FALSE(PipelineSpec{}.with_workers(0).validate().is_ok());
    EXPECT_FALSE(PipelineSpec{}.with_queue(0).validate().is_ok());
    EXPECT_FALSE(PipelineSpec{}.with_batch(0).validate().is_ok());
    EXPECT_TRUE(PipelineSpec{}.validate().is_ok());
}

TEST(PipelineSpecTest, ParseRejectsBadGrammar) {
    EXPECT_FALSE(PipelineSpec::parse("workers=1:2").is_ok());
    EXPECT_FALSE(PipelineSpec::parse("workers=0").is_ok());
    EXPECT_FALSE(PipelineSpec::parse("impl=rust").is_ok());
    EXPECT_FALSE(PipelineSpec::parse("bogus=1").is_ok());
    EXPECT_FALSE(PipelineSpec::parse("queue").is_ok());
    EXPECT_FALSE(PipelineSpec::parse("queue=abc").is_ok());
    EXPECT_FALSE(PipelineSpec::parse("seed=-3").is_ok());
}

TEST(ServeSpecRoundTripTest, DefaultSurvives) {
    ServeSpec spec;
    auto back = ServeSpec::parse(spec.to_string());
    ASSERT_TRUE(back.is_ok()) << back.status().to_string();
    EXPECT_EQ(back.value(), spec);
}

TEST(ServeSpecRoundTripTest, EveryFieldSurvives) {
    ServeSpec spec = ServeSpec{}
                         .with_endpoint("0.0.0.0", 8080)
                         .with_write_queue(16)
                         .with_max_frames(50000)
                         .with_stall_ms(250)
                         .with_max_connections(8);
    auto back = ServeSpec::parse(spec.to_string());
    ASSERT_TRUE(back.is_ok()) << back.status().to_string();
    EXPECT_EQ(back.value(), spec);
}

TEST(ServeSpecTest, ParsesBareEndpoint) {
    auto spec = ServeSpec::parse("10.1.2.3:4567");
    ASSERT_TRUE(spec.is_ok());
    EXPECT_EQ(spec.value().host, "10.1.2.3");
    EXPECT_EQ(spec.value().port, 4567);
}

TEST(ServeSpecTest, ParseRejectsBadGrammar) {
    EXPECT_FALSE(ServeSpec::parse("").is_ok());
    EXPECT_FALSE(ServeSpec::parse("no-port").is_ok());
    EXPECT_FALSE(ServeSpec::parse("host:99999").is_ok());
    EXPECT_FALSE(ServeSpec::parse("h:1,bogus=2").is_ok());
    EXPECT_FALSE(ServeSpec::parse("h:1,write-queue=0").is_ok());
}

TEST(FaultPlanRoundTripTest, EmptyPlanIsTheEmptyString) {
    FaultPlan plan;
    EXPECT_TRUE(plan.empty());
    EXPECT_EQ(plan.to_string(), "");
    auto off = FaultPlan::parse("off");
    ASSERT_TRUE(off.is_ok());
    EXPECT_TRUE(off.value().empty());
    auto blank = FaultPlan::parse("");
    ASSERT_TRUE(blank.is_ok());
    EXPECT_TRUE(blank.value().empty());
}

TEST(FaultPlanRoundTripTest, ClausesSurvive) {
    FaultPlan plan = FaultPlan{}
                         .nth(fault::Site::kHeapAlloc, 3)
                         .every(fault::Site::kSocketIo, 7)
                         .count_site(fault::Site::kChannelOp);
    auto back = FaultPlan::parse(plan.to_string());
    ASSERT_TRUE(back.is_ok()) << back.status().to_string();
    EXPECT_EQ(back.value(), plan);
}

TEST(FaultPlanRoundTripTest, CountAllSurvives) {
    FaultPlan plan = FaultPlan{}.count();
    auto back = FaultPlan::parse(plan.to_string());
    ASSERT_TRUE(back.is_ok()) << back.status().to_string();
    EXPECT_EQ(back.value(), plan);
}

TEST(FaultPlanTest, ValidateRejectsZeroOperands) {
    EXPECT_FALSE(FaultPlan{}
                     .nth(fault::Site::kSocketIo, 0)
                     .validate()
                     .is_ok());
    EXPECT_FALSE(FaultPlan{}
                     .every(fault::Site::kSocketIo, 0)
                     .validate()
                     .is_ok());
    EXPECT_TRUE(FaultPlan{}
                    .every(fault::Site::kSocketIo, 1)
                    .validate()
                    .is_ok());
}

TEST(FaultPlanTest, ParseRejectsUnknownSite) {
    EXPECT_FALSE(FaultPlan::parse("warp-core:every=2").is_ok());
    EXPECT_FALSE(FaultPlan::parse("socket-io:sometimes").is_ok());
}

TEST(RuntimeOptionsTest, ValidateChainsConstituents) {
    RuntimeOptions opts;
    EXPECT_TRUE(opts.validate().is_ok());
    opts.with_serve(ServeSpec{}.with_write_queue(0));
    EXPECT_FALSE(opts.validate().is_ok());
    opts.serve.reset();
    opts.pipeline.with_queue(0);
    EXPECT_FALSE(opts.validate().is_ok());
}

TEST(CliUsageTest, GeneratedFromTheOptionTable) {
    // Every flag in the table must appear in the generated usage —
    // that is the whole point of generating it.
    std::string usage = cli_usage();
    for (const CliOption& opt : cli_options()) {
        EXPECT_NE(usage.find(opt.flag), std::string::npos)
            << opt.flag << " missing from usage";
        EXPECT_NE(usage.find(opt.help), std::string::npos)
            << opt.flag << " help line missing from usage";
    }
    EXPECT_NE(usage.find("--serve"), std::string::npos);
    EXPECT_NE(usage.find("--pipeline"), std::string::npos);
}

}  // namespace
}  // namespace bitc::options
