#include "support/rng.hpp"

#include <gtest/gtest.h>

namespace bitc {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next()) ++same;
    }
    EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowRespectsBound) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.next_below(17), 17u);
    }
}

TEST(RngTest, NextInIsInclusive) {
    Rng rng(7);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        int64_t v = rng.next_in(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
    Rng rng(99);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = rng.next_double();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    // Mean of uniform(0,1) should be close to 0.5.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolRespectsProbability) {
    Rng rng(123);
    int trues = 0;
    for (int i = 0; i < 10000; ++i) {
        if (rng.next_bool(0.25)) ++trues;
    }
    EXPECT_NEAR(static_cast<double>(trues) / 10000.0, 0.25, 0.02);
}

}  // namespace
}  // namespace bitc
