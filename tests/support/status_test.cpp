#include "support/status.hpp"

#include <gtest/gtest.h>

namespace bitc {
namespace {

TEST(StatusTest, DefaultIsOk) {
    Status s;
    EXPECT_TRUE(s.is_ok());
    EXPECT_EQ(s.code(), StatusCode::kOk);
    EXPECT_EQ(s.to_string(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
    Status s = type_error("expected int32, got bool");
    EXPECT_FALSE(s.is_ok());
    EXPECT_EQ(s.code(), StatusCode::kTypeError);
    EXPECT_EQ(s.message(), "expected int32, got bool");
    EXPECT_EQ(s.to_string(), "type error: expected int32, got bool");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
    EXPECT_EQ(invalid_argument_error("x").code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(not_found_error("x").code(), StatusCode::kNotFound);
    EXPECT_EQ(already_exists_error("x").code(),
              StatusCode::kAlreadyExists);
    EXPECT_EQ(out_of_range_error("x").code(), StatusCode::kOutOfRange);
    EXPECT_EQ(resource_exhausted_error("x").code(),
              StatusCode::kResourceExhausted);
    EXPECT_EQ(failed_precondition_error("x").code(),
              StatusCode::kFailedPrecondition);
    EXPECT_EQ(unimplemented_error("x").code(), StatusCode::kUnimplemented);
    EXPECT_EQ(internal_error("x").code(), StatusCode::kInternal);
    EXPECT_EQ(type_error("x").code(), StatusCode::kTypeError);
    EXPECT_EQ(parse_error("x").code(), StatusCode::kParseError);
    EXPECT_EQ(verify_error("x").code(), StatusCode::kVerifyError);
    EXPECT_EQ(runtime_error("x").code(), StatusCode::kRuntimeError);
}

TEST(ResultTest, HoldsValue) {
    Result<int> r = 42;
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(r.value(), 42);
    EXPECT_TRUE(r.to_status().is_ok());
}

TEST(ResultTest, HoldsError) {
    Result<int> r = not_found_error("nope");
    ASSERT_FALSE(r.is_ok());
    EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
    EXPECT_EQ(r.to_status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, TakeMovesValue) {
    Result<std::string> r = std::string("payload");
    std::string s = std::move(r).take();
    EXPECT_EQ(s, "payload");
}

Result<int> half(int x) {
    if (x % 2 != 0) return invalid_argument_error("odd");
    return x / 2;
}

Result<int> quarter(int x) {
    BITC_ASSIGN_OR_RETURN(int h, half(x));
    BITC_ASSIGN_OR_RETURN(int q, half(h));
    return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
    auto ok = quarter(8);
    ASSERT_TRUE(ok.is_ok());
    EXPECT_EQ(ok.value(), 2);

    auto err = quarter(6);  // 6/2 = 3 which is odd
    ASSERT_FALSE(err.is_ok());
    EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

Status check_positive(int x) {
    if (x <= 0) return out_of_range_error("not positive");
    return Status::ok();
}

Status check_both(int a, int b) {
    BITC_RETURN_IF_ERROR(check_positive(a));
    BITC_RETURN_IF_ERROR(check_positive(b));
    return Status::ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
    EXPECT_TRUE(check_both(1, 2).is_ok());
    EXPECT_FALSE(check_both(1, -2).is_ok());
    EXPECT_FALSE(check_both(-1, 2).is_ok());
}

}  // namespace
}  // namespace bitc
