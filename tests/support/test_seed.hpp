/**
 * @file
 * Shared seed plumbing for every randomized test in the repo.
 *
 * One environment variable — BITC_TEST_SEED — overrides the seed of
 * any test that includes this header, and every such test announces
 * the seed it actually used through gtest's recorded properties plus
 * a SCOPED_TRACE, so a CI failure always prints the exact replay
 * command.  Before this helper each suite hand-rolled its own getenv
 * parsing (and the fuzz suites had none at all): a failing fuzz run
 * was unreproducible by construction.
 *
 * Usage:
 *
 *   uint64_t seed = bitc::test::seed_or(0xF00D);  // env override
 *   BITC_SEED_TRACE(seed);  // failure output names the seed
 */
#ifndef BITC_TESTS_SUPPORT_TEST_SEED_HPP
#define BITC_TESTS_SUPPORT_TEST_SEED_HPP

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

namespace bitc::test {

/**
 * @p fallback, unless BITC_TEST_SEED is set — then the override.
 * Parsed as base-10 or 0x-prefixed hex, matching what the failure
 * message printed.
 */
inline uint64_t
seed_or(uint64_t fallback)
{
    const char* env = std::getenv("BITC_TEST_SEED");
    if (env == nullptr || *env == '\0') return fallback;
    return std::strtoull(env, nullptr, 0);
}

}  // namespace bitc::test

/**
 * Announces @p seed on the active test: any assertion failure below
 * this line carries "replay with BITC_TEST_SEED=<seed>", and the
 * seed is recorded as a test property (visible in the XML CI
 * artifacts even on pass).
 */
#define BITC_SEED_TRACE(seed)                                        \
    ::testing::Test::RecordProperty("bitc_test_seed",               \
                                    std::to_string(seed));          \
    SCOPED_TRACE(::testing::Message()                               \
                 << "replay with BITC_TEST_SEED=" << (seed))

#endif  // BITC_TESTS_SUPPORT_TEST_SEED_HPP
