# Empty compiler generated dependencies file for bitc_interop.
# This may be replaced when dependencies are built.
