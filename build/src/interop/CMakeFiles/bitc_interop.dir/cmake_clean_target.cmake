file(REMOVE_RECURSE
  "libbitc_interop.a"
)
