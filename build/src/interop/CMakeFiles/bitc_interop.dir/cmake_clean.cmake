file(REMOVE_RECURSE
  "CMakeFiles/bitc_interop.dir/marshal.cpp.o"
  "CMakeFiles/bitc_interop.dir/marshal.cpp.o.d"
  "CMakeFiles/bitc_interop.dir/migration.cpp.o"
  "CMakeFiles/bitc_interop.dir/migration.cpp.o.d"
  "CMakeFiles/bitc_interop.dir/packet_stages.cpp.o"
  "CMakeFiles/bitc_interop.dir/packet_stages.cpp.o.d"
  "libbitc_interop.a"
  "libbitc_interop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitc_interop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
