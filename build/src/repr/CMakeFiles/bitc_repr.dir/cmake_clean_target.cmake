file(REMOVE_RECURSE
  "libbitc_repr.a"
)
