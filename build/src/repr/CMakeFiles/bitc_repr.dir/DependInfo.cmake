
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/repr/bitfield.cpp" "src/repr/CMakeFiles/bitc_repr.dir/bitfield.cpp.o" "gcc" "src/repr/CMakeFiles/bitc_repr.dir/bitfield.cpp.o.d"
  "/root/repo/src/repr/boxed_value.cpp" "src/repr/CMakeFiles/bitc_repr.dir/boxed_value.cpp.o" "gcc" "src/repr/CMakeFiles/bitc_repr.dir/boxed_value.cpp.o.d"
  "/root/repo/src/repr/codec.cpp" "src/repr/CMakeFiles/bitc_repr.dir/codec.cpp.o" "gcc" "src/repr/CMakeFiles/bitc_repr.dir/codec.cpp.o.d"
  "/root/repo/src/repr/layout.cpp" "src/repr/CMakeFiles/bitc_repr.dir/layout.cpp.o" "gcc" "src/repr/CMakeFiles/bitc_repr.dir/layout.cpp.o.d"
  "/root/repo/src/repr/scalar_type.cpp" "src/repr/CMakeFiles/bitc_repr.dir/scalar_type.cpp.o" "gcc" "src/repr/CMakeFiles/bitc_repr.dir/scalar_type.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/bitc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
