# Empty dependencies file for bitc_repr.
# This may be replaced when dependencies are built.
