file(REMOVE_RECURSE
  "CMakeFiles/bitc_repr.dir/bitfield.cpp.o"
  "CMakeFiles/bitc_repr.dir/bitfield.cpp.o.d"
  "CMakeFiles/bitc_repr.dir/boxed_value.cpp.o"
  "CMakeFiles/bitc_repr.dir/boxed_value.cpp.o.d"
  "CMakeFiles/bitc_repr.dir/codec.cpp.o"
  "CMakeFiles/bitc_repr.dir/codec.cpp.o.d"
  "CMakeFiles/bitc_repr.dir/layout.cpp.o"
  "CMakeFiles/bitc_repr.dir/layout.cpp.o.d"
  "CMakeFiles/bitc_repr.dir/scalar_type.cpp.o"
  "CMakeFiles/bitc_repr.dir/scalar_type.cpp.o.d"
  "libbitc_repr.a"
  "libbitc_repr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitc_repr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
