# Empty dependencies file for bitc_types.
# This may be replaced when dependencies are built.
