file(REMOVE_RECURSE
  "CMakeFiles/bitc_types.dir/checker.cpp.o"
  "CMakeFiles/bitc_types.dir/checker.cpp.o.d"
  "CMakeFiles/bitc_types.dir/type.cpp.o"
  "CMakeFiles/bitc_types.dir/type.cpp.o.d"
  "libbitc_types.a"
  "libbitc_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitc_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
