file(REMOVE_RECURSE
  "libbitc_types.a"
)
