file(REMOVE_RECURSE
  "CMakeFiles/bitc_vm.dir/bytecode.cpp.o"
  "CMakeFiles/bitc_vm.dir/bytecode.cpp.o.d"
  "CMakeFiles/bitc_vm.dir/compiler.cpp.o"
  "CMakeFiles/bitc_vm.dir/compiler.cpp.o.d"
  "CMakeFiles/bitc_vm.dir/interpreter.cpp.o"
  "CMakeFiles/bitc_vm.dir/interpreter.cpp.o.d"
  "CMakeFiles/bitc_vm.dir/native.cpp.o"
  "CMakeFiles/bitc_vm.dir/native.cpp.o.d"
  "CMakeFiles/bitc_vm.dir/pipeline.cpp.o"
  "CMakeFiles/bitc_vm.dir/pipeline.cpp.o.d"
  "libbitc_vm.a"
  "libbitc_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitc_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
