# Empty compiler generated dependencies file for bitc_vm.
# This may be replaced when dependencies are built.
