file(REMOVE_RECURSE
  "libbitc_vm.a"
)
