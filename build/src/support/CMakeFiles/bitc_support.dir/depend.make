# Empty dependencies file for bitc_support.
# This may be replaced when dependencies are built.
