file(REMOVE_RECURSE
  "CMakeFiles/bitc_support.dir/arena.cpp.o"
  "CMakeFiles/bitc_support.dir/arena.cpp.o.d"
  "CMakeFiles/bitc_support.dir/diagnostics.cpp.o"
  "CMakeFiles/bitc_support.dir/diagnostics.cpp.o.d"
  "CMakeFiles/bitc_support.dir/intern.cpp.o"
  "CMakeFiles/bitc_support.dir/intern.cpp.o.d"
  "CMakeFiles/bitc_support.dir/stats.cpp.o"
  "CMakeFiles/bitc_support.dir/stats.cpp.o.d"
  "CMakeFiles/bitc_support.dir/status.cpp.o"
  "CMakeFiles/bitc_support.dir/status.cpp.o.d"
  "CMakeFiles/bitc_support.dir/string_util.cpp.o"
  "CMakeFiles/bitc_support.dir/string_util.cpp.o.d"
  "libbitc_support.a"
  "libbitc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
