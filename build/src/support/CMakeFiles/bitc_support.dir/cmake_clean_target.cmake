file(REMOVE_RECURSE
  "libbitc_support.a"
)
