# Empty dependencies file for bitc_concurrency.
# This may be replaced when dependencies are built.
