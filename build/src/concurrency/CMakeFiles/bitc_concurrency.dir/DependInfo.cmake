
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/concurrency/bank.cpp" "src/concurrency/CMakeFiles/bitc_concurrency.dir/bank.cpp.o" "gcc" "src/concurrency/CMakeFiles/bitc_concurrency.dir/bank.cpp.o.d"
  "/root/repo/src/concurrency/stm.cpp" "src/concurrency/CMakeFiles/bitc_concurrency.dir/stm.cpp.o" "gcc" "src/concurrency/CMakeFiles/bitc_concurrency.dir/stm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/bitc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
