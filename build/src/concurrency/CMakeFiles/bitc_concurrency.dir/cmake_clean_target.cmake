file(REMOVE_RECURSE
  "libbitc_concurrency.a"
)
