file(REMOVE_RECURSE
  "CMakeFiles/bitc_concurrency.dir/bank.cpp.o"
  "CMakeFiles/bitc_concurrency.dir/bank.cpp.o.d"
  "CMakeFiles/bitc_concurrency.dir/stm.cpp.o"
  "CMakeFiles/bitc_concurrency.dir/stm.cpp.o.d"
  "libbitc_concurrency.a"
  "libbitc_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitc_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
