# Empty dependencies file for bitc_verify.
# This may be replaced when dependencies are built.
