file(REMOVE_RECURSE
  "libbitc_verify.a"
)
