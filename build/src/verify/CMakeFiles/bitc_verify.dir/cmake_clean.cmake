file(REMOVE_RECURSE
  "CMakeFiles/bitc_verify.dir/formula.cpp.o"
  "CMakeFiles/bitc_verify.dir/formula.cpp.o.d"
  "CMakeFiles/bitc_verify.dir/solver.cpp.o"
  "CMakeFiles/bitc_verify.dir/solver.cpp.o.d"
  "CMakeFiles/bitc_verify.dir/term.cpp.o"
  "CMakeFiles/bitc_verify.dir/term.cpp.o.d"
  "CMakeFiles/bitc_verify.dir/vcgen.cpp.o"
  "CMakeFiles/bitc_verify.dir/vcgen.cpp.o.d"
  "libbitc_verify.a"
  "libbitc_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitc_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
