
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/verify/formula.cpp" "src/verify/CMakeFiles/bitc_verify.dir/formula.cpp.o" "gcc" "src/verify/CMakeFiles/bitc_verify.dir/formula.cpp.o.d"
  "/root/repo/src/verify/solver.cpp" "src/verify/CMakeFiles/bitc_verify.dir/solver.cpp.o" "gcc" "src/verify/CMakeFiles/bitc_verify.dir/solver.cpp.o.d"
  "/root/repo/src/verify/term.cpp" "src/verify/CMakeFiles/bitc_verify.dir/term.cpp.o" "gcc" "src/verify/CMakeFiles/bitc_verify.dir/term.cpp.o.d"
  "/root/repo/src/verify/vcgen.cpp" "src/verify/CMakeFiles/bitc_verify.dir/vcgen.cpp.o" "gcc" "src/verify/CMakeFiles/bitc_verify.dir/vcgen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/bitc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/bitc_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/bitc_types.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
