file(REMOVE_RECURSE
  "CMakeFiles/bitc_lang.dir/ast.cpp.o"
  "CMakeFiles/bitc_lang.dir/ast.cpp.o.d"
  "CMakeFiles/bitc_lang.dir/lexer.cpp.o"
  "CMakeFiles/bitc_lang.dir/lexer.cpp.o.d"
  "CMakeFiles/bitc_lang.dir/parser.cpp.o"
  "CMakeFiles/bitc_lang.dir/parser.cpp.o.d"
  "CMakeFiles/bitc_lang.dir/resolver.cpp.o"
  "CMakeFiles/bitc_lang.dir/resolver.cpp.o.d"
  "CMakeFiles/bitc_lang.dir/sexpr.cpp.o"
  "CMakeFiles/bitc_lang.dir/sexpr.cpp.o.d"
  "libbitc_lang.a"
  "libbitc_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitc_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
