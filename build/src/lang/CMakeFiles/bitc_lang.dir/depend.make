# Empty dependencies file for bitc_lang.
# This may be replaced when dependencies are built.
