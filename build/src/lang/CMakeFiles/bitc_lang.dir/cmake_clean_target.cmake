file(REMOVE_RECURSE
  "libbitc_lang.a"
)
