file(REMOVE_RECURSE
  "libbitc_memory.a"
)
