# Empty dependencies file for bitc_memory.
# This may be replaced when dependencies are built.
