
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memory/freelist_space.cpp" "src/memory/CMakeFiles/bitc_memory.dir/freelist_space.cpp.o" "gcc" "src/memory/CMakeFiles/bitc_memory.dir/freelist_space.cpp.o.d"
  "/root/repo/src/memory/generational_heap.cpp" "src/memory/CMakeFiles/bitc_memory.dir/generational_heap.cpp.o" "gcc" "src/memory/CMakeFiles/bitc_memory.dir/generational_heap.cpp.o.d"
  "/root/repo/src/memory/heap.cpp" "src/memory/CMakeFiles/bitc_memory.dir/heap.cpp.o" "gcc" "src/memory/CMakeFiles/bitc_memory.dir/heap.cpp.o.d"
  "/root/repo/src/memory/manual_heap.cpp" "src/memory/CMakeFiles/bitc_memory.dir/manual_heap.cpp.o" "gcc" "src/memory/CMakeFiles/bitc_memory.dir/manual_heap.cpp.o.d"
  "/root/repo/src/memory/markcompact_heap.cpp" "src/memory/CMakeFiles/bitc_memory.dir/markcompact_heap.cpp.o" "gcc" "src/memory/CMakeFiles/bitc_memory.dir/markcompact_heap.cpp.o.d"
  "/root/repo/src/memory/marksweep_heap.cpp" "src/memory/CMakeFiles/bitc_memory.dir/marksweep_heap.cpp.o" "gcc" "src/memory/CMakeFiles/bitc_memory.dir/marksweep_heap.cpp.o.d"
  "/root/repo/src/memory/mutator.cpp" "src/memory/CMakeFiles/bitc_memory.dir/mutator.cpp.o" "gcc" "src/memory/CMakeFiles/bitc_memory.dir/mutator.cpp.o.d"
  "/root/repo/src/memory/refcount_heap.cpp" "src/memory/CMakeFiles/bitc_memory.dir/refcount_heap.cpp.o" "gcc" "src/memory/CMakeFiles/bitc_memory.dir/refcount_heap.cpp.o.d"
  "/root/repo/src/memory/region_heap.cpp" "src/memory/CMakeFiles/bitc_memory.dir/region_heap.cpp.o" "gcc" "src/memory/CMakeFiles/bitc_memory.dir/region_heap.cpp.o.d"
  "/root/repo/src/memory/semispace_heap.cpp" "src/memory/CMakeFiles/bitc_memory.dir/semispace_heap.cpp.o" "gcc" "src/memory/CMakeFiles/bitc_memory.dir/semispace_heap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/bitc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
