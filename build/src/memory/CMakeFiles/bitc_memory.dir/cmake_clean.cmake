file(REMOVE_RECURSE
  "CMakeFiles/bitc_memory.dir/freelist_space.cpp.o"
  "CMakeFiles/bitc_memory.dir/freelist_space.cpp.o.d"
  "CMakeFiles/bitc_memory.dir/generational_heap.cpp.o"
  "CMakeFiles/bitc_memory.dir/generational_heap.cpp.o.d"
  "CMakeFiles/bitc_memory.dir/heap.cpp.o"
  "CMakeFiles/bitc_memory.dir/heap.cpp.o.d"
  "CMakeFiles/bitc_memory.dir/manual_heap.cpp.o"
  "CMakeFiles/bitc_memory.dir/manual_heap.cpp.o.d"
  "CMakeFiles/bitc_memory.dir/markcompact_heap.cpp.o"
  "CMakeFiles/bitc_memory.dir/markcompact_heap.cpp.o.d"
  "CMakeFiles/bitc_memory.dir/marksweep_heap.cpp.o"
  "CMakeFiles/bitc_memory.dir/marksweep_heap.cpp.o.d"
  "CMakeFiles/bitc_memory.dir/mutator.cpp.o"
  "CMakeFiles/bitc_memory.dir/mutator.cpp.o.d"
  "CMakeFiles/bitc_memory.dir/refcount_heap.cpp.o"
  "CMakeFiles/bitc_memory.dir/refcount_heap.cpp.o.d"
  "CMakeFiles/bitc_memory.dir/region_heap.cpp.o"
  "CMakeFiles/bitc_memory.dir/region_heap.cpp.o.d"
  "CMakeFiles/bitc_memory.dir/semispace_heap.cpp.o"
  "CMakeFiles/bitc_memory.dir/semispace_heap.cpp.o.d"
  "libbitc_memory.a"
  "libbitc_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitc_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
