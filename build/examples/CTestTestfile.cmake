# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  PASS_REGULAR_EXPRESSION "main\\(10\\) = 285" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_packet_parser "/root/repo/build/examples/packet_parser" "20000")
set_tests_properties(example_packet_parser PROPERTIES  PASS_REGULAR_EXPRESSION "parsed 20000 packets" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bank_stm "/root/repo/build/examples/bank_stm" "2000")
set_tests_properties(example_bank_stm PROPERTIES  PASS_REGULAR_EXPRESSION "total preserved: yes" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capability_ipc "/root/repo/build/examples/capability_ipc" "20000")
set_tests_properties(example_capability_ipc PROPERTIES  PASS_REGULAR_EXPRESSION "checksum: .* ok" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_region_lifetimes "/root/repo/build/examples/region_lifetimes" "200000")
set_tests_properties(example_region_lifetimes PROPERTIES  PASS_REGULAR_EXPRESSION "the config" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
