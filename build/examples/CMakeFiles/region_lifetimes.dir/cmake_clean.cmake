file(REMOVE_RECURSE
  "CMakeFiles/region_lifetimes.dir/region_lifetimes.cpp.o"
  "CMakeFiles/region_lifetimes.dir/region_lifetimes.cpp.o.d"
  "region_lifetimes"
  "region_lifetimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/region_lifetimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
