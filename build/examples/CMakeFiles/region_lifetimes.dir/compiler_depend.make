# Empty compiler generated dependencies file for region_lifetimes.
# This may be replaced when dependencies are built.
