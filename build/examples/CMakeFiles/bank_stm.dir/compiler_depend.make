# Empty compiler generated dependencies file for bank_stm.
# This may be replaced when dependencies are built.
