# Empty compiler generated dependencies file for capability_ipc.
# This may be replaced when dependencies are built.
