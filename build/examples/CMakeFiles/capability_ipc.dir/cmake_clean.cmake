file(REMOVE_RECURSE
  "CMakeFiles/capability_ipc.dir/capability_ipc.cpp.o"
  "CMakeFiles/capability_ipc.dir/capability_ipc.cpp.o.d"
  "capability_ipc"
  "capability_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capability_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
