file(REMOVE_RECURSE
  "CMakeFiles/packet_parser.dir/packet_parser.cpp.o"
  "CMakeFiles/packet_parser.dir/packet_parser.cpp.o.d"
  "packet_parser"
  "packet_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
