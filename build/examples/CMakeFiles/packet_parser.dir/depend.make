# Empty dependencies file for packet_parser.
# This may be replaced when dependencies are built.
