file(REMOVE_RECURSE
  "CMakeFiles/bench_c2_storage.dir/bench_c2_storage.cpp.o"
  "CMakeFiles/bench_c2_storage.dir/bench_c2_storage.cpp.o.d"
  "bench_c2_storage"
  "bench_c2_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c2_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
