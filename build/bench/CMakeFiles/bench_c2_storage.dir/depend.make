# Empty dependencies file for bench_c2_storage.
# This may be replaced when dependencies are built.
