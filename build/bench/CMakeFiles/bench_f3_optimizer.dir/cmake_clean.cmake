file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_optimizer.dir/bench_f3_optimizer.cpp.o"
  "CMakeFiles/bench_f3_optimizer.dir/bench_f3_optimizer.cpp.o.d"
  "bench_f3_optimizer"
  "bench_f3_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
