
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_f3_optimizer.cpp" "bench/CMakeFiles/bench_f3_optimizer.dir/bench_f3_optimizer.cpp.o" "gcc" "bench/CMakeFiles/bench_f3_optimizer.dir/bench_f3_optimizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/bitc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/interop/CMakeFiles/bitc_interop.dir/DependInfo.cmake"
  "/root/repo/build/src/concurrency/CMakeFiles/bitc_concurrency.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/bitc_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/repr/CMakeFiles/bitc_repr.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/bitc_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/bitc_types.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/bitc_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bitc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
