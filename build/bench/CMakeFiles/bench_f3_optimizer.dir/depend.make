# Empty dependencies file for bench_f3_optimizer.
# This may be replaced when dependencies are built.
