file(REMOVE_RECURSE
  "CMakeFiles/bench_c3_representation.dir/bench_c3_representation.cpp.o"
  "CMakeFiles/bench_c3_representation.dir/bench_c3_representation.cpp.o.d"
  "bench_c3_representation"
  "bench_c3_representation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c3_representation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
