# Empty dependencies file for bench_c3_representation.
# This may be replaced when dependencies are built.
