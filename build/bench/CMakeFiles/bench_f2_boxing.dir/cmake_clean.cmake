file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_boxing.dir/bench_f2_boxing.cpp.o"
  "CMakeFiles/bench_f2_boxing.dir/bench_f2_boxing.cpp.o.d"
  "bench_f2_boxing"
  "bench_f2_boxing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_boxing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
