# Empty compiler generated dependencies file for bench_f2_boxing.
# This may be replaced when dependencies are built.
