file(REMOVE_RECURSE
  "CMakeFiles/bench_c1_constraints.dir/bench_c1_constraints.cpp.o"
  "CMakeFiles/bench_c1_constraints.dir/bench_c1_constraints.cpp.o.d"
  "bench_c1_constraints"
  "bench_c1_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c1_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
