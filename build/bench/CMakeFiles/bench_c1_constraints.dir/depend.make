# Empty dependencies file for bench_c1_constraints.
# This may be replaced when dependencies are built.
