file(REMOVE_RECURSE
  "CMakeFiles/bench_c4_shared_state.dir/bench_c4_shared_state.cpp.o"
  "CMakeFiles/bench_c4_shared_state.dir/bench_c4_shared_state.cpp.o.d"
  "bench_c4_shared_state"
  "bench_c4_shared_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c4_shared_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
