# Empty compiler generated dependencies file for bench_c4_shared_state.
# This may be replaced when dependencies are built.
