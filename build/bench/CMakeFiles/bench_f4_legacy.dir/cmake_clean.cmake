file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_legacy.dir/bench_f4_legacy.cpp.o"
  "CMakeFiles/bench_f4_legacy.dir/bench_f4_legacy.cpp.o.d"
  "bench_f4_legacy"
  "bench_f4_legacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_legacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
