# Empty compiler generated dependencies file for bench_f1_performance_factors.
# This may be replaced when dependencies are built.
