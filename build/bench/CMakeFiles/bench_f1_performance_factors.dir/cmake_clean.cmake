file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_performance_factors.dir/bench_f1_performance_factors.cpp.o"
  "CMakeFiles/bench_f1_performance_factors.dir/bench_f1_performance_factors.cpp.o.d"
  "bench_f1_performance_factors"
  "bench_f1_performance_factors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_performance_factors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
