
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lang/lexer_test.cpp" "tests/lang/CMakeFiles/lang_test.dir/lexer_test.cpp.o" "gcc" "tests/lang/CMakeFiles/lang_test.dir/lexer_test.cpp.o.d"
  "/root/repo/tests/lang/parser_test.cpp" "tests/lang/CMakeFiles/lang_test.dir/parser_test.cpp.o" "gcc" "tests/lang/CMakeFiles/lang_test.dir/parser_test.cpp.o.d"
  "/root/repo/tests/lang/resolver_test.cpp" "tests/lang/CMakeFiles/lang_test.dir/resolver_test.cpp.o" "gcc" "tests/lang/CMakeFiles/lang_test.dir/resolver_test.cpp.o.d"
  "/root/repo/tests/lang/sexpr_test.cpp" "tests/lang/CMakeFiles/lang_test.dir/sexpr_test.cpp.o" "gcc" "tests/lang/CMakeFiles/lang_test.dir/sexpr_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lang/CMakeFiles/bitc_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bitc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
