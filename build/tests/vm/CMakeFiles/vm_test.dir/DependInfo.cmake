
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vm/compiler_test.cpp" "tests/vm/CMakeFiles/vm_test.dir/compiler_test.cpp.o" "gcc" "tests/vm/CMakeFiles/vm_test.dir/compiler_test.cpp.o.d"
  "/root/repo/tests/vm/interpreter_test.cpp" "tests/vm/CMakeFiles/vm_test.dir/interpreter_test.cpp.o" "gcc" "tests/vm/CMakeFiles/vm_test.dir/interpreter_test.cpp.o.d"
  "/root/repo/tests/vm/native_test.cpp" "tests/vm/CMakeFiles/vm_test.dir/native_test.cpp.o" "gcc" "tests/vm/CMakeFiles/vm_test.dir/native_test.cpp.o.d"
  "/root/repo/tests/vm/pipeline_test.cpp" "tests/vm/CMakeFiles/vm_test.dir/pipeline_test.cpp.o" "gcc" "tests/vm/CMakeFiles/vm_test.dir/pipeline_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vm/CMakeFiles/bitc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/bitc_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/bitc_types.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/bitc_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/bitc_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/repr/CMakeFiles/bitc_repr.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bitc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
