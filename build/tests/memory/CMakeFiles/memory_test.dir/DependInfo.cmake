
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/memory/freelist_space_test.cpp" "tests/memory/CMakeFiles/memory_test.dir/freelist_space_test.cpp.o" "gcc" "tests/memory/CMakeFiles/memory_test.dir/freelist_space_test.cpp.o.d"
  "/root/repo/tests/memory/heap_common_test.cpp" "tests/memory/CMakeFiles/memory_test.dir/heap_common_test.cpp.o" "gcc" "tests/memory/CMakeFiles/memory_test.dir/heap_common_test.cpp.o.d"
  "/root/repo/tests/memory/heap_fuzz_test.cpp" "tests/memory/CMakeFiles/memory_test.dir/heap_fuzz_test.cpp.o" "gcc" "tests/memory/CMakeFiles/memory_test.dir/heap_fuzz_test.cpp.o.d"
  "/root/repo/tests/memory/manual_heap_test.cpp" "tests/memory/CMakeFiles/memory_test.dir/manual_heap_test.cpp.o" "gcc" "tests/memory/CMakeFiles/memory_test.dir/manual_heap_test.cpp.o.d"
  "/root/repo/tests/memory/mutator_test.cpp" "tests/memory/CMakeFiles/memory_test.dir/mutator_test.cpp.o" "gcc" "tests/memory/CMakeFiles/memory_test.dir/mutator_test.cpp.o.d"
  "/root/repo/tests/memory/refcount_heap_test.cpp" "tests/memory/CMakeFiles/memory_test.dir/refcount_heap_test.cpp.o" "gcc" "tests/memory/CMakeFiles/memory_test.dir/refcount_heap_test.cpp.o.d"
  "/root/repo/tests/memory/region_heap_test.cpp" "tests/memory/CMakeFiles/memory_test.dir/region_heap_test.cpp.o" "gcc" "tests/memory/CMakeFiles/memory_test.dir/region_heap_test.cpp.o.d"
  "/root/repo/tests/memory/tracing_gc_test.cpp" "tests/memory/CMakeFiles/memory_test.dir/tracing_gc_test.cpp.o" "gcc" "tests/memory/CMakeFiles/memory_test.dir/tracing_gc_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/memory/CMakeFiles/bitc_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bitc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
