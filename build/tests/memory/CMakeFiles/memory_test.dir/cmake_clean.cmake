file(REMOVE_RECURSE
  "CMakeFiles/memory_test.dir/freelist_space_test.cpp.o"
  "CMakeFiles/memory_test.dir/freelist_space_test.cpp.o.d"
  "CMakeFiles/memory_test.dir/heap_common_test.cpp.o"
  "CMakeFiles/memory_test.dir/heap_common_test.cpp.o.d"
  "CMakeFiles/memory_test.dir/heap_fuzz_test.cpp.o"
  "CMakeFiles/memory_test.dir/heap_fuzz_test.cpp.o.d"
  "CMakeFiles/memory_test.dir/manual_heap_test.cpp.o"
  "CMakeFiles/memory_test.dir/manual_heap_test.cpp.o.d"
  "CMakeFiles/memory_test.dir/mutator_test.cpp.o"
  "CMakeFiles/memory_test.dir/mutator_test.cpp.o.d"
  "CMakeFiles/memory_test.dir/refcount_heap_test.cpp.o"
  "CMakeFiles/memory_test.dir/refcount_heap_test.cpp.o.d"
  "CMakeFiles/memory_test.dir/region_heap_test.cpp.o"
  "CMakeFiles/memory_test.dir/region_heap_test.cpp.o.d"
  "CMakeFiles/memory_test.dir/tracing_gc_test.cpp.o"
  "CMakeFiles/memory_test.dir/tracing_gc_test.cpp.o.d"
  "memory_test"
  "memory_test.pdb"
  "memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
