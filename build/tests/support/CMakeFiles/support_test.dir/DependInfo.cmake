
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/support/arena_test.cpp" "tests/support/CMakeFiles/support_test.dir/arena_test.cpp.o" "gcc" "tests/support/CMakeFiles/support_test.dir/arena_test.cpp.o.d"
  "/root/repo/tests/support/diagnostics_test.cpp" "tests/support/CMakeFiles/support_test.dir/diagnostics_test.cpp.o" "gcc" "tests/support/CMakeFiles/support_test.dir/diagnostics_test.cpp.o.d"
  "/root/repo/tests/support/intern_test.cpp" "tests/support/CMakeFiles/support_test.dir/intern_test.cpp.o" "gcc" "tests/support/CMakeFiles/support_test.dir/intern_test.cpp.o.d"
  "/root/repo/tests/support/rng_test.cpp" "tests/support/CMakeFiles/support_test.dir/rng_test.cpp.o" "gcc" "tests/support/CMakeFiles/support_test.dir/rng_test.cpp.o.d"
  "/root/repo/tests/support/stats_test.cpp" "tests/support/CMakeFiles/support_test.dir/stats_test.cpp.o" "gcc" "tests/support/CMakeFiles/support_test.dir/stats_test.cpp.o.d"
  "/root/repo/tests/support/status_test.cpp" "tests/support/CMakeFiles/support_test.dir/status_test.cpp.o" "gcc" "tests/support/CMakeFiles/support_test.dir/status_test.cpp.o.d"
  "/root/repo/tests/support/string_util_test.cpp" "tests/support/CMakeFiles/support_test.dir/string_util_test.cpp.o" "gcc" "tests/support/CMakeFiles/support_test.dir/string_util_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/bitc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
