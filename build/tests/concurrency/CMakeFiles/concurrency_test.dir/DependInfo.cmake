
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/concurrency/bank_test.cpp" "tests/concurrency/CMakeFiles/concurrency_test.dir/bank_test.cpp.o" "gcc" "tests/concurrency/CMakeFiles/concurrency_test.dir/bank_test.cpp.o.d"
  "/root/repo/tests/concurrency/channel_test.cpp" "tests/concurrency/CMakeFiles/concurrency_test.dir/channel_test.cpp.o" "gcc" "tests/concurrency/CMakeFiles/concurrency_test.dir/channel_test.cpp.o.d"
  "/root/repo/tests/concurrency/stm_queue_test.cpp" "tests/concurrency/CMakeFiles/concurrency_test.dir/stm_queue_test.cpp.o" "gcc" "tests/concurrency/CMakeFiles/concurrency_test.dir/stm_queue_test.cpp.o.d"
  "/root/repo/tests/concurrency/stm_test.cpp" "tests/concurrency/CMakeFiles/concurrency_test.dir/stm_test.cpp.o" "gcc" "tests/concurrency/CMakeFiles/concurrency_test.dir/stm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/concurrency/CMakeFiles/bitc_concurrency.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bitc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
