file(REMOVE_RECURSE
  "CMakeFiles/repr_test.dir/bitfield_test.cpp.o"
  "CMakeFiles/repr_test.dir/bitfield_test.cpp.o.d"
  "CMakeFiles/repr_test.dir/boxed_value_test.cpp.o"
  "CMakeFiles/repr_test.dir/boxed_value_test.cpp.o.d"
  "CMakeFiles/repr_test.dir/codec_test.cpp.o"
  "CMakeFiles/repr_test.dir/codec_test.cpp.o.d"
  "CMakeFiles/repr_test.dir/layout_test.cpp.o"
  "CMakeFiles/repr_test.dir/layout_test.cpp.o.d"
  "CMakeFiles/repr_test.dir/scalar_type_test.cpp.o"
  "CMakeFiles/repr_test.dir/scalar_type_test.cpp.o.d"
  "repr_test"
  "repr_test.pdb"
  "repr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
