# Empty compiler generated dependencies file for repr_test.
# This may be replaced when dependencies are built.
