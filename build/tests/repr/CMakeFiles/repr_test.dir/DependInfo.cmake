
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/repr/bitfield_test.cpp" "tests/repr/CMakeFiles/repr_test.dir/bitfield_test.cpp.o" "gcc" "tests/repr/CMakeFiles/repr_test.dir/bitfield_test.cpp.o.d"
  "/root/repo/tests/repr/boxed_value_test.cpp" "tests/repr/CMakeFiles/repr_test.dir/boxed_value_test.cpp.o" "gcc" "tests/repr/CMakeFiles/repr_test.dir/boxed_value_test.cpp.o.d"
  "/root/repo/tests/repr/codec_test.cpp" "tests/repr/CMakeFiles/repr_test.dir/codec_test.cpp.o" "gcc" "tests/repr/CMakeFiles/repr_test.dir/codec_test.cpp.o.d"
  "/root/repo/tests/repr/layout_test.cpp" "tests/repr/CMakeFiles/repr_test.dir/layout_test.cpp.o" "gcc" "tests/repr/CMakeFiles/repr_test.dir/layout_test.cpp.o.d"
  "/root/repo/tests/repr/scalar_type_test.cpp" "tests/repr/CMakeFiles/repr_test.dir/scalar_type_test.cpp.o" "gcc" "tests/repr/CMakeFiles/repr_test.dir/scalar_type_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/repr/CMakeFiles/bitc_repr.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/bitc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
