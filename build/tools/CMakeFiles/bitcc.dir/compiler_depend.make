# Empty compiler generated dependencies file for bitcc.
# This may be replaced when dependencies are built.
