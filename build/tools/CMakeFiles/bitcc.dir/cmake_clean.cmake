file(REMOVE_RECURSE
  "CMakeFiles/bitcc.dir/bitcc.cpp.o"
  "CMakeFiles/bitcc.dir/bitcc.cpp.o.d"
  "bitcc"
  "bitcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
