# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bitcc_run_fib "/root/repo/build/tools/bitcc" "run" "/root/repo/examples/bitc/fib.bitc")
set_tests_properties(bitcc_run_fib PROPERTIES  PASS_REGULAR_EXPRESSION "6765" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(bitcc_run_fib_boxed "/root/repo/build/tools/bitcc" "run" "/root/repo/examples/bitc/fib.bitc" "--mode" "boxed" "--heap" "mark-compact")
set_tests_properties(bitcc_run_fib_boxed PROPERTIES  PASS_REGULAR_EXPRESSION "6765" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(bitcc_verify_bounded_buffer "/root/repo/build/tools/bitcc" "verify" "/root/repo/examples/bitc/bounded_buffer.bitc")
set_tests_properties(bitcc_verify_bounded_buffer PROPERTIES  PASS_REGULAR_EXPRESSION "7/7 obligations proved" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(bitcc_check_reports_signatures "/root/repo/build/tools/bitcc" "check" "/root/repo/examples/bitc/fib.bitc")
set_tests_properties(bitcc_check_reports_signatures PROPERTIES  PASS_REGULAR_EXPRESSION "fib.*int64 int64" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(bitcc_disasm_shows_unchecked "/root/repo/build/tools/bitcc" "disasm" "/root/repo/examples/bitc/bounded_buffer.bitc")
set_tests_properties(bitcc_disasm_shows_unchecked PROPERTIES  PASS_REGULAR_EXPRESSION "array.set unchecked" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(bitcc_overflow_obligations "/root/repo/build/tools/bitcc" "verify" "/root/repo/examples/bitc/saturating_add.bitc" "--overflow")
set_tests_properties(bitcc_overflow_obligations PROPERTIES  PASS_REGULAR_EXPRESSION "overflow" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;28;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(bitcc_run_saturating "/root/repo/build/tools/bitcc" "run" "/root/repo/examples/bitc/saturating_add.bitc")
set_tests_properties(bitcc_run_saturating PROPERTIES  PASS_REGULAR_EXPRESSION "127" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;34;add_test;/root/repo/tools/CMakeLists.txt;0;")
