/**
 * @file
 * Representation-boundary marshalling: wire-format byte buffers
 * (legacy C view, accessed through repr codecs) <-> flat int64 field
 * arrays (the managed-language view the VM consumes).
 *
 * Every legacy<->migrated transition in the F4 experiment pays exactly
 * one unmarshal or marshal; keeping that cost small and measurable is
 * the paper's argument for why incremental migration is viable.
 */
#ifndef BITC_INTEROP_MARSHAL_HPP
#define BITC_INTEROP_MARSHAL_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "repr/codec.hpp"
#include "support/status.hpp"

namespace bitc::interop {

/**
 * Decodes every field of @p codec's record from @p wire into
 * @p fields (in declaration order). @p fields must have exactly one
 * slot per field.
 */
Status unmarshal_record(const repr::RecordCodec& codec,
                        std::span<const uint8_t> wire,
                        std::span<int64_t> fields);

/**
 * Encodes @p fields back into wire format.  Values are masked to
 * their field widths (the VM already wrapped them; masking here keeps
 * the function total).
 */
Status marshal_record(const repr::RecordCodec& codec,
                      std::span<const int64_t> fields,
                      std::span<uint8_t> wire);

}  // namespace bitc::interop

#endif  // BITC_INTEROP_MARSHAL_HPP
