/**
 * @file
 * The packet-processing pipeline used by the legacy-migration
 * experiment (F4): four stages over IPv4-style headers, each available
 * in two implementations with identical semantics:
 *
 *  - a "legacy" C++ function operating directly on wire-format bytes
 *    (what the installed base looks like), and
 *  - a BitC source function operating on an unpacked field array
 *    (what freshly migrated code looks like).
 *
 * Stages: validate -> decrement TTL -> recompute checksum -> classify.
 */
#ifndef BITC_INTEROP_PACKET_STAGES_HPP
#define BITC_INTEROP_PACKET_STAGES_HPP

#include <cstdint>
#include <span>
#include <string>

#include "repr/codec.hpp"
#include "support/rng.hpp"

namespace bitc::interop {

/** Number of pipeline stages. */
inline constexpr size_t kStageCount = 4;

/** Stage indices (pipeline order). */
enum Stage : size_t {
    kValidate = 0,
    kDecrementTtl = 1,
    kChecksum = 2,
    kClassify = 3,
};

const char* stage_name(size_t stage);

/** Field indices within the unpacked IPv4 header array. */
enum Field : size_t {
    kVersion = 0, kIhl, kDscp, kEcn, kTotalLength, kIdentification,
    kFlags, kFragmentOffset, kTtl, kProtocol, kHeaderChecksum,
    kSrcAddr, kDstAddr,
    kFieldCount,
};

/** Codec for the experiment's header format (shared by both worlds). */
const repr::RecordCodec& packet_codec();

/** Fills @p wire with a random valid-ish header. */
void generate_packet(Rng& rng, std::span<uint8_t> wire);

// --- Legacy (wire-format) implementations -------------------------------

/** validate: version==4, ihl>=5, ttl>0. Returns 1 = keep, 0 = drop. */
int64_t legacy_validate(std::span<const uint8_t> wire);

/** Decrements TTL in place. */
void legacy_decrement_ttl(std::span<uint8_t> wire);

/**
 * Recomputes the header checksum (simplified: 16-bit ones'-complement
 * sum over the header with the checksum field zeroed).
 */
void legacy_checksum(std::span<uint8_t> wire);

/** Returns the route bucket: top byte of the destination address. */
int64_t legacy_classify(std::span<const uint8_t> wire);

// --- Migrated (BitC) implementations -------------------------------------

/**
 * BitC source defining stage functions of the same semantics over a
 * field array:
 *   (validate p)   -> 0/1
 *   (dec-ttl p)    -> unit-ish 0
 *   (checksum p)   -> 0, updates field kHeaderChecksum
 *   (classify p)   -> route bucket
 */
const std::string& migrated_stage_source();

/** Entry-point name of stage @p stage in migrated_stage_source(). */
const char* migrated_stage_function(size_t stage);

}  // namespace bitc::interop

#endif  // BITC_INTEROP_PACKET_STAGES_HPP
