#include "interop/packet_stages.hpp"

#include <cassert>

namespace bitc::interop {

const char*
stage_name(size_t stage)
{
    switch (stage) {
      case kValidate: return "validate";
      case kDecrementTtl: return "dec-ttl";
      case kChecksum: return "checksum";
      case kClassify: return "classify";
    }
    return "?";
}

const repr::RecordCodec&
packet_codec()
{
    static const repr::RecordCodec* codec = [] {
        auto layout = repr::compute_layout(repr::ipv4_header_spec());
        assert(layout.is_ok());
        return new repr::RecordCodec(std::move(layout).take());
    }();
    return *codec;
}

void
generate_packet(Rng& rng, std::span<uint8_t> wire)
{
    const repr::RecordCodec& codec = packet_codec();
    assert(wire.size() >= codec.layout().byte_size());
    // ~5% of packets are invalid (bad version or expired TTL) so the
    // validate stage has real work to do.
    bool valid = !rng.next_bool(0.05);
    struct FieldValue {
        const char* name;
        uint64_t value;
    };
    const FieldValue values[] = {
        {"version", valid ? 4u : 6u},
        {"ihl", 5},
        {"dscp", rng.next_below(64)},
        {"ecn", rng.next_below(4)},
        {"total_length", 20 + rng.next_below(1481)},
        {"identification", rng.next_below(65536)},
        {"flags", rng.next_bool(0.5) ? 2u : 0u},
        {"fragment_offset", rng.next_below(8192)},
        {"ttl", valid ? 1 + rng.next_below(255) : 0},
        {"protocol", rng.next_bool(0.5) ? 6u : 17u},
        {"header_checksum", 0},
        {"src_addr", rng.next() & 0xffffffffu},
        {"dst_addr", rng.next() & 0xffffffffu},
    };
    for (const FieldValue& f : values) {
        Status s = codec.write(wire, f.name, f.value);
        assert(s.is_ok());
        (void)s;
    }
}

namespace {

/** 16-bit big-endian word @p i of the header. */
uint32_t
wire_word(std::span<const uint8_t> wire, size_t i)
{
    return (static_cast<uint32_t>(wire[2 * i]) << 8) | wire[2 * i + 1];
}

}  // namespace

int64_t
legacy_validate(std::span<const uint8_t> wire)
{
    uint8_t version = wire[0] >> 4;
    uint8_t ihl = wire[0] & 0xf;
    uint8_t ttl = wire[8];
    return (version == 4 && ihl >= 5 && ttl > 0) ? 1 : 0;
}

void
legacy_decrement_ttl(std::span<uint8_t> wire)
{
    wire[8] = static_cast<uint8_t>(wire[8] - 1);
}

void
legacy_checksum(std::span<uint8_t> wire)
{
    uint32_t sum = 0;
    for (size_t i = 0; i < 10; ++i) {
        if (i == 5) continue;  // checksum field counts as zero
        sum += wire_word(wire, i);
    }
    sum = (sum & 0xffff) + (sum >> 16);
    sum = (sum & 0xffff) + (sum >> 16);
    uint16_t checksum = static_cast<uint16_t>(~sum);
    wire[10] = static_cast<uint8_t>(checksum >> 8);
    wire[11] = static_cast<uint8_t>(checksum & 0xff);
}

int64_t
legacy_classify(std::span<const uint8_t> wire)
{
    return wire[16];  // top byte of dst_addr (big-endian)
}

const std::string&
migrated_stage_source()
{
    static const std::string* source = new std::string(R"bitc(
(define (validate p : (array int64 13)) : int64
  (if (and (== (array-ref p 0) 4)
           (and (>= (array-ref p 1) 5) (> (array-ref p 8) 0)))
      1 0))

(define (dec-ttl p : (array int64 13)) : int64
  (array-set! p 8 (- (array-ref p 8) 1))
  0)

(define (fold16 s : int64) : int64
  (+ (bitand s 65535) (>> s 16)))

(define (checksum p : (array int64 13)) : int64
  (let ((s 0))
    (set! s (+ s (bitor (<< (array-ref p 0) 12)
              (bitor (<< (array-ref p 1) 8)
              (bitor (<< (array-ref p 2) 2) (array-ref p 3))))))
    (set! s (+ s (array-ref p 4)))
    (set! s (+ s (array-ref p 5)))
    (set! s (+ s (bitor (<< (array-ref p 6) 13) (array-ref p 7))))
    (set! s (+ s (bitor (<< (array-ref p 8) 8) (array-ref p 9))))
    (set! s (+ s (>> (array-ref p 11) 16)))
    (set! s (+ s (bitand (array-ref p 11) 65535)))
    (set! s (+ s (>> (array-ref p 12) 16)))
    (set! s (+ s (bitand (array-ref p 12) 65535)))
    (set! s (fold16 s))
    (set! s (fold16 s))
    (array-set! p 10 (bitand (bitxor s 65535) 65535))
    0))

(define (classify p : (array int64 13)) : int64
  (>> (array-ref p 12) 24))

; Runs stages [start, end) in one VM entry; returns -1 when the packet
; is dropped by validate, otherwise the classify bucket (or 0 when the
; classify stage is outside the range).
(define (run-stages p : (array int64 13) start : int64 end : int64)
    : int64
  (let ((result 0) (dropped 0) (i start))
    (while (< i end)
      (if (and (== i 0) (== dropped 0))
          (if (== (validate p) 0) (set! dropped 1) (unit))
          (unit))
      (if (and (== i 1) (== dropped 0))
          (begin (dec-ttl p) (unit))
          (unit))
      (if (and (== i 2) (== dropped 0))
          (begin (checksum p) (unit))
          (unit))
      (if (and (== i 3) (== dropped 0))
          (set! result (classify p))
          (unit))
      (set! i (+ i 1)))
    (if (== dropped 1) -1 result)))
)bitc");
    return *source;
}

const char*
migrated_stage_function(size_t stage)
{
    return stage_name(stage);
}

}  // namespace bitc::interop
