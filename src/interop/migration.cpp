#include "interop/migration.hpp"

#include "interop/marshal.hpp"
#include "memory/region_heap.hpp"
#include "support/stats.hpp"

namespace bitc::interop {

MigrationPipeline::MigrationPipeline(
    MigrationConfig config, std::unique_ptr<vm::BuiltProgram> built)
    : config_(config), built_(std::move(built))
{
    if (built_ != nullptr) {
        vm_ = built_->instantiate(config_.vm);
    }
}

Result<std::unique_ptr<MigrationPipeline>>
MigrationPipeline::create(MigrationConfig config)
{
    std::unique_ptr<vm::BuiltProgram> built;
    if (config.migrated_count() > 0) {
        vm::BuildOptions options;
        options.compiler.elide_proved_checks = true;
        BITC_ASSIGN_OR_RETURN(
            built, vm::build_program(migrated_stage_source(), options));
    }
    return std::unique_ptr<MigrationPipeline>(
        new MigrationPipeline(config, std::move(built)));
}

Status
MigrationPipeline::process_packet(std::span<uint8_t> wire,
                                  MigrationReport& report)
{
    int64_t fields[kFieldCount] = {0};
    bool in_fields = false;  // current representation of the packet
    bool dropped = false;
    int64_t bucket = -1;

    size_t stage = 0;
    while (stage < kStageCount && !dropped) {
        if (!config_.migrated[stage]) {
            // Legacy world: needs wire representation.
            if (in_fields) {
                BITC_RETURN_IF_ERROR(
                    marshal_record(packet_codec(), fields, wire));
                in_fields = false;
                ++report.boundary_crossings;
            }
            switch (stage) {
              case kValidate:
                dropped = legacy_validate(wire) == 0;
                break;
              case kDecrementTtl:
                legacy_decrement_ttl(wire);
                break;
              case kChecksum:
                legacy_checksum(wire);
                break;
              case kClassify:
                bucket = legacy_classify(wire);
                break;
            }
            ++stage;
            continue;
        }

        // Migrated world: run the maximal contiguous migrated range in
        // one VM entry.
        size_t end = stage;
        while (end < kStageCount && config_.migrated[end]) ++end;
        if (!in_fields) {
            BITC_RETURN_IF_ERROR(
                unmarshal_record(packet_codec(), wire, fields));
            in_fields = true;
            ++report.boundary_crossings;
        }
        int64_t range[2] = {static_cast<int64_t>(stage),
                            static_cast<int64_t>(end)};
        auto result = vm_->call_with_buffer("run-stages", fields, range);
        if (!result.is_ok()) return result.status();
        if (result.value() == -1) {
            dropped = true;
        } else if (end == kStageCount) {
            bucket = result.value();
        }
        stage = end;
    }

    if (dropped) {
        ++report.dropped;
    } else {
        report.route_checksum += static_cast<uint64_t>(bucket + 1);
        uint64_t checksum;
        if (in_fields) {
            checksum = static_cast<uint64_t>(fields[kHeaderChecksum]);
        } else {
            auto read = packet_codec().read(wire, "header_checksum");
            BITC_RETURN_IF_ERROR(read.to_status());
            checksum = read.value();
        }
        report.header_checksum_sum += checksum;
    }
    ++report.packets;
    return Status::ok();
}

Result<MigrationReport>
MigrationPipeline::run(size_t packet_count, Rng& rng)
{
    MigrationReport report;
    auto* region =
        vm_ != nullptr
            ? dynamic_cast<mem::RegionHeap*>(&vm_->heap())
            : nullptr;
    uint64_t start = now_ns();
    std::vector<uint8_t> wire(packet_codec().layout().byte_size());
    for (size_t i = 0; i < packet_count; ++i) {
        generate_packet(rng, wire);
        BITC_RETURN_IF_ERROR(process_packet(wire, report));
        // The region idiom: per-packet scratch dies wholesale.
        if (region != nullptr) region->reset_region();
    }
    report.elapsed_ms = static_cast<double>(now_ns() - start) / 1e6;
    return report;
}

}  // namespace bitc::interop
