#include "interop/marshal.hpp"

#include "support/fault.hpp"
#include "support/metrics.hpp"
#include "support/string_util.hpp"

namespace bitc::interop {

Status
unmarshal_record(const repr::RecordCodec& codec,
                 std::span<const uint8_t> wire,
                 std::span<int64_t> fields)
{
    // Decode side of the interop boundary; injected faults stand in
    // for torn packets and representation mismatches.
    if (fault::inject(fault::Site::kFfiMarshal)) {
        return fault::injected_error(fault::Site::kFfiMarshal);
    }
    const auto& layout = codec.layout();
    if (wire.size() < layout.byte_size()) {
        return out_of_range_error("wire buffer too short");
    }
    if (fields.size() != layout.fields().size()) {
        return invalid_argument_error(str_format(
            "field buffer has %zu slots, record has %zu fields",
            fields.size(), layout.fields().size()));
    }
    for (size_t i = 0; i < layout.fields().size(); ++i) {
        fields[i] = static_cast<int64_t>(
            codec.read_field(wire, layout.fields()[i]));
    }
    metrics::count(metrics::Counter::kMarshalRecordsIn);
    return Status::ok();
}

Status
marshal_record(const repr::RecordCodec& codec,
               std::span<const int64_t> fields, std::span<uint8_t> wire)
{
    if (fault::inject(fault::Site::kFfiMarshal)) {
        return fault::injected_error(fault::Site::kFfiMarshal);
    }
    const auto& layout = codec.layout();
    if (wire.size() < layout.byte_size()) {
        return out_of_range_error("wire buffer too short");
    }
    if (fields.size() != layout.fields().size()) {
        return invalid_argument_error(str_format(
            "field buffer has %zu slots, record has %zu fields",
            fields.size(), layout.fields().size()));
    }
    for (size_t i = 0; i < layout.fields().size(); ++i) {
        codec.write_field(wire, layout.fields()[i],
                          static_cast<uint64_t>(fields[i]));
    }
    metrics::count(metrics::Counter::kMarshalRecordsOut);
    return Status::ok();
}

}  // namespace bitc::interop
