/**
 * @file
 * The incremental-migration simulator (fallacy F4).
 *
 * A four-stage packet pipeline where each stage independently runs as
 * legacy C++ (on wire bytes) or migrated BitC (on field arrays in the
 * VM).  Data crosses the representation boundary only on world
 * transitions; contiguous migrated stages share one VM entry.  The F4
 * bench sweeps the migrated set from none to all and interleaved, and
 * the report's checksums let tests assert that every configuration
 * computes the same results.
 */
#ifndef BITC_INTEROP_MIGRATION_HPP
#define BITC_INTEROP_MIGRATION_HPP

#include <array>
#include <memory>

#include "interop/packet_stages.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"
#include "vm/pipeline.hpp"

namespace bitc::interop {

/** Which stages are migrated, and how the VM side runs. */
struct MigrationConfig {
    std::array<bool, kStageCount> migrated{};  ///< false = legacy C++
    vm::VmConfig vm;  ///< configuration for migrated stages

    MigrationConfig() {
        vm.mode = vm::ValueMode::kUnboxed;
        vm.heap = vm::HeapPolicy::kRegion;
        vm.heap_words = 1u << 16;
        vm.stack_slots = 1u << 10;
    }

    /** Number of migrated stages. */
    size_t migrated_count() const {
        size_t n = 0;
        for (bool m : migrated) n += m ? 1 : 0;
        return n;
    }
};

/** Aggregate results; identical across configurations by construction. */
struct MigrationReport {
    uint64_t packets = 0;
    uint64_t dropped = 0;
    uint64_t boundary_crossings = 0;   ///< wire <-> fields conversions
    uint64_t route_checksum = 0;       ///< sum of (bucket+1) of kept pkts
    uint64_t header_checksum_sum = 0;  ///< sum of final checksum fields
    double elapsed_ms = 0;
};

/** A runnable pipeline instance. */
class MigrationPipeline {
  public:
    /** Builds the migrated-stage program once per pipeline. */
    static Result<std::unique_ptr<MigrationPipeline>> create(
        MigrationConfig config);

    /** Processes @p packet_count generated packets. */
    Result<MigrationReport> run(size_t packet_count, Rng& rng);

    const MigrationConfig& config() const { return config_; }

  private:
    MigrationPipeline(MigrationConfig config,
                      std::unique_ptr<vm::BuiltProgram> built);

    Status process_packet(std::span<uint8_t> wire,
                          MigrationReport& report);

    MigrationConfig config_;
    std::unique_ptr<vm::BuiltProgram> built_;
    std::unique_ptr<vm::Vm> vm_;
};

}  // namespace bitc::interop

#endif  // BITC_INTEROP_MIGRATION_HPP
