/**
 * @file
 * The transport seam: everything NetServer needs from "the network"
 * behind one virtual interface, so the same event loop runs over real
 * epoll/poll sockets in production and over an in-memory simulated
 * transport (sim_transport.hpp) in deterministic tests.
 *
 * Handles are small ints.  For the real transport they are the raw
 * fds; for the simulated one they are synthetic ids.  The server
 * never closes a handle behind the transport's back — close() is the
 * only way out, and remove() must precede it (mirroring the
 * poller-before-close rule real fds impose).
 *
 * wait() owns its own wakeup mechanism: wake() makes a concurrent or
 * future wait() return promptly, and wakeup bookkeeping (the real
 * transport's self-pipe) never leaks into the event list the server
 * sees.
 */
#ifndef BITC_NET_TRANSPORT_HPP
#define BITC_NET_TRANSPORT_HPP

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "net/poller.hpp"
#include "net/socket.hpp"
#include "support/status.hpp"

namespace bitc::net {

/**
 * One server-side endpoint abstraction.  All methods are called from
 * the server's IO thread except wake(), which any thread may call.
 * Status vocabulary matches socket.hpp: kUnavailable = would-block,
 * kResourceExhausted = injected fault, kCancelled = peer gone.
 */
class Transport {
  public:
    virtual ~Transport() = default;

    /** Binds the listening endpoint; returns its handle. */
    virtual Result<int> listen(const std::string& host,
                               uint16_t port) = 0;

    /** The bound port (real transports; simulated ones return 0). */
    virtual Result<uint16_t> listen_port() = 0;

    /**
     * Accepts one pending connection: its handle, kUnavailable when
     * none is pending, kResourceExhausted on an injected fault.
     */
    virtual Result<int> accept() = 0;

    /** read_some semantics (partial reads, eof flag). */
    virtual Result<ReadResult> read(int h, std::span<uint8_t> buf) = 0;

    /** write_some semantics (partial writes, kCancelled on EPIPE). */
    virtual Result<size_t> write(int h,
                                 std::span<const uint8_t> data) = 0;

    /**
     * Vectored write: drains the buffers of @p iovs in order as one
     * transport operation (writev_some semantics — one syscall, one
     * fault consult, partial progress allowed mid-iovec).  Returns
     * total bytes accepted.  The default lowers onto write() one
     * buffer at a time, stopping at the first partial acceptance, so
     * every Transport keeps correct resume semantics even before it
     * grows a native implementation.
     */
    virtual Result<size_t> write_batch(
        int h, std::span<const std::span<const uint8_t>> iovs);

    /** Readiness interest registration, poller add/modify/remove. */
    virtual Status add(int h, bool want_read, bool want_write) = 0;
    virtual Status modify(int h, bool want_read, bool want_write) = 0;
    virtual Status remove(int h) = 0;

    /** Closes the handle (idempotent; also drops any interest). */
    virtual void close(int h) = 0;

    /**
     * Blocks up to @p timeout_ms for readiness events and appends
     * them to @p out (handle in PollEvent::fd).  Returns the count;
     * 0 means timeout or a wake().  Wakeup plumbing never appears in
     * @p out.
     */
    virtual Result<size_t> wait(int timeout_ms,
                                std::vector<PollEvent>& out) = 0;

    /** Interrupts a concurrent or future wait().  Any thread. */
    virtual void wake() = 0;
};

/** The production transport: real sockets + epoll/poll + self-pipe. */
Result<std::unique_ptr<Transport>> make_real_transport();

}  // namespace bitc::net

#endif  // BITC_NET_TRANSPORT_HPP
