/**
 * @file
 * In-memory simulated transport for deterministic NetServer tests.
 *
 * A SimTransport is both sides of the wire: the server drives the
 * Transport interface from its IO thread, and the test drives the
 * client_* API as one or more simulated peers.  Each connection is a
 * pair of in-memory byte queues; "readiness" is computed from queue
 * state, and all waits ride the sim-aware condvar helpers, so under a
 * Simulation nothing ever blocks in real time.
 *
 * Adversarial knobs (all seeded, all deterministic per seed):
 *
 *  - max_chunk: reads and writes transfer 1..max_chunk bytes per
 *    call, exercising every partial-read/partial-write resume path
 *    that a real kernel only produces under memory pressure;
 *  - stutter_every: every Nth data-plane io returns kUnavailable
 *    once, forcing would-block handling on paths loopback never
 *    stresses;
 *  - reorder: readiness events are shuffled per wait() call, so the
 *    server processes connections in seed-chosen orders;
 *  - conn_buf_bytes: the simulated kernel buffer; a client that stops
 *    reading fills it and write() reports would-block — the write
 *    stall scenario on demand.
 *
 * The kSocketIo fault site is consulted before every accept/read/
 * write, exactly like the real socket wrappers, so fault plans behave
 * identically over both transports.  client_drop() hard-drops a
 * connection: subsequent server io fails with kCancelled and
 * readiness reports an error, modeling a peer reset.
 */
#ifndef BITC_NET_SIM_TRANSPORT_HPP
#define BITC_NET_SIM_TRANSPORT_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "net/transport.hpp"
#include "support/status.hpp"

namespace bitc::net {

/** Tuning for one SimTransport instance. */
struct SimTransportOptions {
    uint64_t seed = 1;           ///< Chunking/reorder RNG seed.
    size_t max_chunk = 0;        ///< 0 = whole-buffer transfers.
    uint32_t stutter_every = 0;  ///< 0 = never would-block.
    bool reorder = true;         ///< Shuffle readiness per wait().
    size_t conn_buf_bytes = 64 * 1024;  ///< Simulated kernel buffer.
};

class SimTransport final : public Transport {
  public:
    explicit SimTransport(SimTransportOptions opts);
    ~SimTransport() override;

    // --- Transport (server side, IO thread) ---------------------------

    Result<int> listen(const std::string& host,
                       uint16_t port) override;
    Result<uint16_t> listen_port() override;
    Result<int> accept() override;
    Result<ReadResult> read(int h, std::span<uint8_t> buf) override;
    Result<size_t> write(int h,
                         std::span<const uint8_t> data) override;
    /**
     * Vectored write with write()'s exact adversarial semantics —
     * one fault consult, one stutter decision, one seeded chunk —
     * applied across the *flattened* byte stream, so a chunk may end
     * mid-iovec and the server's resume path gets exercised on frame
     * boundaries real kernels never pick.
     */
    Result<size_t> write_batch(
        int h, std::span<const std::span<const uint8_t>> iovs) override;
    Status add(int h, bool want_read, bool want_write) override;
    Status modify(int h, bool want_read, bool want_write) override;
    Status remove(int h) override;
    void close(int h) override;
    Result<size_t> wait(int timeout_ms,
                        std::vector<PollEvent>& out) override;
    void wake() override;

    // --- simulated peers (test side) ----------------------------------

    /** Opens a connection; pending until the server accepts. */
    int connect();

    /** Queues bytes for the server (its simulated kernel buffer is
     *  unbounded on this side: client sends never block). */
    Status client_write(int h, std::span<const uint8_t> data);

    /**
     * Drains everything the server has written.  kUnavailable when
     * nothing is pending yet; kCancelled once the server closed the
     * connection and the backlog is drained.
     */
    Result<std::vector<uint8_t>> client_read(int h);

    /**
     * client_read that waits (virtually, under a simulation) up to
     * @p timeout_ms for data or close.
     */
    Result<std::vector<uint8_t>> client_read_for(int h,
                                                 int timeout_ms);

    /** Half-close: the server sees EOF after draining our bytes. */
    void client_close_write(int h);

    /** Hard drop: server io on @p h fails like a peer reset. */
    void client_drop(int h);

    /** True once the server closed (or dropped) the connection.  A
     *  client that simply stops calling client_read models a stalled
     *  reader: server bytes pile up to conn_buf_bytes, then server
     *  writes would-block — the write-stall scenario on demand. */
    bool server_closed(int h);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

}  // namespace bitc::net

#endif  // BITC_NET_SIM_TRANSPORT_HPP
