#include "net/socket.hpp"

#include <arpa/inet.h>
#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include "support/fault.hpp"
#include "support/string_util.hpp"

namespace bitc::net {

namespace {

Status
errno_error(const char* what)
{
    return internal_error(
        str_format("%s: %s", what, std::strerror(errno)));
}

Result<sockaddr_in>
make_addr(const std::string& host, uint16_t port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        return invalid_argument_error(
            str_format("bad IPv4 address '%s'", host.c_str()));
    }
    return addr;
}

}  // namespace

void
Fd::reset()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Status
set_nonblocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0) return errno_error("fcntl(F_GETFL)");
    if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
        return errno_error("fcntl(F_SETFL)");
    }
    return Status::ok();
}

Result<Fd>
listen_tcp(const std::string& host, uint16_t port)
{
    BITC_ASSIGN_OR_RETURN(sockaddr_in addr, make_addr(host, port));
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) return errno_error("socket");
    int one = 1;
    (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof(one));
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
        return errno_error("bind");
    }
    if (::listen(fd.get(), SOMAXCONN) < 0) {
        return errno_error("listen");
    }
    BITC_RETURN_IF_ERROR(set_nonblocking(fd.get()));
    return fd;
}

Result<uint16_t>
local_port(int fd)
{
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) <
        0) {
        return errno_error("getsockname");
    }
    return ntohs(addr.sin_port);
}

Result<Fd>
connect_tcp(const std::string& host, uint16_t port)
{
    BITC_ASSIGN_OR_RETURN(sockaddr_in addr, make_addr(host, port));
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) return errno_error("socket");
    int rc;
    do {
        rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr));
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) return errno_error("connect");
    int one = 1;
    (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one,
                       sizeof(one));
    return fd;
}

Result<Fd>
accept_conn(int listen_fd)
{
    if (fault::inject(fault::Site::kSocketIo)) {
        return fault::injected_error(fault::Site::kSocketIo);
    }
    int rc;
    do {
        rc = ::accept(listen_fd, nullptr, nullptr);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            return unavailable_error("no pending connection");
        }
        return errno_error("accept");
    }
    Fd fd(rc);
    int one = 1;
    (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one,
                       sizeof(one));
    if (Status nb = set_nonblocking(fd.get()); !nb.is_ok()) return nb;
    return fd;
}

Result<ReadResult>
read_some(int fd, std::span<uint8_t> buf)
{
    if (fault::inject(fault::Site::kSocketIo)) {
        return fault::injected_error(fault::Site::kSocketIo);
    }
    ssize_t rc;
    do {
        rc = ::read(fd, buf.data(), buf.size());
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            return unavailable_error("socket drained");
        }
        if (errno == ECONNRESET) {
            return cancelled_error("connection reset by peer");
        }
        return errno_error("read");
    }
    ReadResult out;
    out.bytes = static_cast<size_t>(rc);
    out.eof = rc == 0;
    return out;
}

Result<size_t>
write_some(int fd, std::span<const uint8_t> data)
{
    if (fault::inject(fault::Site::kSocketIo)) {
        return fault::injected_error(fault::Site::kSocketIo);
    }
    ssize_t rc;
    do {
        rc = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            return unavailable_error("socket full");
        }
        if (errno == EPIPE || errno == ECONNRESET) {
            return cancelled_error("peer gone");
        }
        return errno_error("write");
    }
    return static_cast<size_t>(rc);
}

Result<size_t>
writev_some(int fd, std::span<const std::span<const uint8_t>> iovs)
{
    if (fault::inject(fault::Site::kSocketIo)) {
        return fault::injected_error(fault::Site::kSocketIo);
    }
    // IOV_MAX is far above anything the flush path batches, but cap
    // defensively rather than fail a giant queue.
    iovec vecs[64];
    size_t n = std::min(iovs.size(), sizeof(vecs) / sizeof(vecs[0]));
    for (size_t i = 0; i < n; ++i) {
        vecs[i].iov_base =
            const_cast<uint8_t*>(iovs[i].data());
        vecs[i].iov_len = iovs[i].size();
    }
    msghdr msg{};
    msg.msg_iov = vecs;
    msg.msg_iovlen = n;
    ssize_t rc;
    do {
        rc = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            return unavailable_error("socket full");
        }
        if (errno == EPIPE || errno == ECONNRESET) {
            return cancelled_error("peer gone");
        }
        return errno_error("sendmsg");
    }
    return static_cast<size_t>(rc);
}

}  // namespace bitc::net
