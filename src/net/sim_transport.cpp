#include "net/sim_transport.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>

#include "support/fault.hpp"
#include "support/sim.hpp"

namespace bitc::net {

namespace {

/** The listener's handle; connection handles start above it. */
constexpr int kListenerHandle = 0;

uint64_t
splitmix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

}  // namespace

struct SimTransport::Impl {
    struct Conn {
        int handle = 0;
        std::deque<uint8_t> to_server;  ///< client -> server bytes
        std::deque<uint8_t> to_client;  ///< server -> client bytes
        bool accepted = false;      ///< still in the accept backlog
        bool client_half_closed = false;  ///< server reads hit EOF
        bool dropped = false;       ///< peer reset; server io fails
        bool server_closed = false;
        bool want_read = false;
        bool want_write = false;
        bool registered = false;    ///< add()ed, not yet remove()d
    };

    explicit Impl(SimTransportOptions o) : opts(o) {
        rng[0] = splitmix(o.seed);
        rng[1] = splitmix(o.seed + 0x94d049bb133111ebull);
    }

    uint64_t next_rng() {
        uint64_t s1 = rng[0];
        const uint64_t s0 = rng[1];
        rng[0] = s0;
        s1 ^= s1 << 23;
        rng[1] = s1 ^ s0 ^ (s1 >> 17) ^ (s0 >> 26);
        return rng[1] + s0;
    }

    /** mu held.  Seeded transfer size for one read/write call. */
    size_t chunk(size_t want) {
        if (opts.max_chunk == 0 || want <= 1) return want;
        size_t cap = std::min(want, opts.max_chunk);
        return 1 + static_cast<size_t>(next_rng() % cap);
    }

    /** mu held.  True when this data-plane io should would-block. */
    bool stutter() {
        if (opts.stutter_every == 0) return false;
        return ++io_count % opts.stutter_every == 0;
    }

    /** mu held. */
    Conn* find(int h) {
        auto it = conns.find(h);
        return it == conns.end() ? nullptr : &it->second;
    }

    /** mu held.  The readiness set the server would poll out. */
    void collect_ready(std::vector<PollEvent>& out) {
        if (listening && !backlog.empty()) {
            out.push_back(PollEvent{kListenerHandle, true, false,
                                    false});
        }
        for (auto& [h, c] : conns) {
            if (!c.registered || !c.accepted || c.server_closed) {
                continue;
            }
            PollEvent ev;
            ev.fd = h;
            if (c.dropped) {
                ev.error = true;
            } else {
                if (c.want_read && (!c.to_server.empty() ||
                                    c.client_half_closed)) {
                    ev.readable = true;
                }
                if (c.want_write &&
                    c.to_client.size() < opts.conn_buf_bytes) {
                    ev.writable = true;
                }
            }
            if (ev.readable || ev.writable || ev.error) {
                out.push_back(ev);
            }
        }
    }

    SimTransportOptions opts;
    uint64_t rng[2];
    uint64_t io_count = 0;

    std::mutex mu;
    std::condition_variable cv;  ///< Server wait() + client reads.
    bool listening = false;
    bool wake_pending = false;
    int next_handle = kListenerHandle + 1;
    std::map<int, Conn> conns;
    std::deque<int> backlog;  ///< Connected, not yet accepted.
};

SimTransport::SimTransport(SimTransportOptions opts)
    : impl_(std::make_unique<Impl>(opts))
{
}

SimTransport::~SimTransport() = default;

Result<int>
SimTransport::listen(const std::string&, uint16_t)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->listening = true;
    return kListenerHandle;
}

Result<uint16_t>
SimTransport::listen_port()
{
    return static_cast<uint16_t>(0);
}

Result<int>
SimTransport::accept()
{
    if (fault::inject(fault::Site::kSocketIo)) {
        return fault::injected_error(fault::Site::kSocketIo);
    }
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->backlog.empty()) {
        return unavailable_error("no pending connection");
    }
    int h = impl_->backlog.front();
    impl_->backlog.pop_front();
    Impl::Conn* c = impl_->find(h);
    if (c != nullptr) c->accepted = true;
    return h;
}

Result<ReadResult>
SimTransport::read(int h, std::span<uint8_t> buf)
{
    if (fault::inject(fault::Site::kSocketIo)) {
        return fault::injected_error(fault::Site::kSocketIo);
    }
    std::lock_guard<std::mutex> lock(impl_->mu);
    Impl::Conn* c = impl_->find(h);
    if (c == nullptr || c->server_closed) {
        return cancelled_error("read on closed sim connection");
    }
    if (c->dropped) {
        return cancelled_error("connection reset by peer (sim)");
    }
    if (c->to_server.empty()) {
        if (c->client_half_closed) {
            return ReadResult{0, /*eof=*/true};
        }
        return unavailable_error("sim socket empty");
    }
    if (impl_->stutter()) {
        return unavailable_error("sim socket stutter");
    }
    size_t n = impl_->chunk(
        std::min(buf.size(), c->to_server.size()));
    for (size_t i = 0; i < n; ++i) {
        buf[i] = c->to_server.front();
        c->to_server.pop_front();
    }
    return ReadResult{n, /*eof=*/false};
}

Result<size_t>
SimTransport::write(int h, std::span<const uint8_t> data)
{
    if (fault::inject(fault::Site::kSocketIo)) {
        return fault::injected_error(fault::Site::kSocketIo);
    }
    std::unique_lock<std::mutex> lock(impl_->mu);
    Impl::Conn* c = impl_->find(h);
    if (c == nullptr || c->server_closed) {
        return cancelled_error("write on closed sim connection");
    }
    if (c->dropped) {
        return cancelled_error("broken pipe (sim)");
    }
    if (data.empty()) return size_t{0};
    size_t space = c->to_client.size() < impl_->opts.conn_buf_bytes
                       ? impl_->opts.conn_buf_bytes -
                             c->to_client.size()
                       : 0;
    if (space == 0) {
        return unavailable_error("sim socket buffer full");
    }
    if (impl_->stutter()) {
        return unavailable_error("sim socket stutter");
    }
    size_t n = impl_->chunk(std::min(data.size(), space));
    c->to_client.insert(c->to_client.end(), data.begin(),
                        data.begin() + static_cast<long>(n));
    lock.unlock();
    sim::cv_notify_all(impl_->cv);  // a client read may be waiting
    return n;
}

Result<size_t>
SimTransport::write_batch(int h,
                          std::span<const std::span<const uint8_t>> iovs)
{
    if (fault::inject(fault::Site::kSocketIo)) {
        return fault::injected_error(fault::Site::kSocketIo);
    }
    std::unique_lock<std::mutex> lock(impl_->mu);
    Impl::Conn* c = impl_->find(h);
    if (c == nullptr || c->server_closed) {
        return cancelled_error("write on closed sim connection");
    }
    if (c->dropped) {
        return cancelled_error("broken pipe (sim)");
    }
    size_t total = 0;
    for (std::span<const uint8_t> iov : iovs) total += iov.size();
    if (total == 0) return size_t{0};
    size_t space = c->to_client.size() < impl_->opts.conn_buf_bytes
                       ? impl_->opts.conn_buf_bytes -
                             c->to_client.size()
                       : 0;
    if (space == 0) {
        return unavailable_error("sim socket buffer full");
    }
    if (impl_->stutter()) {
        return unavailable_error("sim socket stutter");
    }
    size_t n = impl_->chunk(std::min(total, space));
    size_t left = n;
    for (std::span<const uint8_t> iov : iovs) {
        if (left == 0) break;
        size_t take = std::min(left, iov.size());
        c->to_client.insert(c->to_client.end(), iov.begin(),
                            iov.begin() + static_cast<long>(take));
        left -= take;
    }
    lock.unlock();
    sim::cv_notify_all(impl_->cv);  // a client read may be waiting
    return n;
}

Status
SimTransport::add(int h, bool want_read, bool want_write)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (h == kListenerHandle) return Status::ok();
    Impl::Conn* c = impl_->find(h);
    if (c == nullptr) return not_found_error("unknown sim handle");
    c->registered = true;
    c->want_read = want_read;
    c->want_write = want_write;
    return Status::ok();
}

Status
SimTransport::modify(int h, bool want_read, bool want_write)
{
    return add(h, want_read, want_write);
}

Status
SimTransport::remove(int h)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (h == kListenerHandle) return Status::ok();
    Impl::Conn* c = impl_->find(h);
    if (c == nullptr) return not_found_error("unknown sim handle");
    c->registered = false;
    c->want_read = false;
    c->want_write = false;
    return Status::ok();
}

void
SimTransport::close(int h)
{
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        Impl::Conn* c = impl_->find(h);
        if (c == nullptr) return;
        c->server_closed = true;
        c->registered = false;
        c->to_server.clear();
    }
    sim::cv_notify_all(impl_->cv);  // unblock client readers
}

Result<size_t>
SimTransport::wait(int timeout_ms, std::vector<PollEvent>& out)
{
    std::unique_lock<std::mutex> lock(impl_->mu);
    size_t before = out.size();
    impl_->collect_ready(out);
    if (out.size() == before && !impl_->wake_pending &&
        timeout_ms != 0) {
        auto ready = [&] {
            if (impl_->wake_pending) return true;
            std::vector<PollEvent> probe;
            impl_->collect_ready(probe);
            return !probe.empty();
        };
        if (timeout_ms < 0) {
            sim::cv_wait(impl_->cv, lock, ready);
        } else {
            sim::cv_wait_for(impl_->cv, lock,
                             std::chrono::milliseconds(timeout_ms),
                             ready);
        }
        impl_->collect_ready(out);
    }
    impl_->wake_pending = false;
    size_t appended = out.size() - before;
    if (impl_->opts.reorder && appended > 1) {
        // Seeded Fisher-Yates over the appended events: the server
        // services ready connections in a per-seed order.
        for (size_t i = appended - 1; i > 0; --i) {
            size_t j = static_cast<size_t>(impl_->next_rng() %
                                           (i + 1));
            std::swap(out[before + i], out[before + j]);
        }
    }
    return appended;
}

void
SimTransport::wake()
{
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        impl_->wake_pending = true;
    }
    sim::cv_notify_all(impl_->cv);
}

int
SimTransport::connect()
{
    int h;
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        h = impl_->next_handle++;
        Impl::Conn c;
        c.handle = h;
        impl_->conns.emplace(h, std::move(c));
        impl_->backlog.push_back(h);
    }
    sim::cv_notify_all(impl_->cv);  // listener readiness changed
    return h;
}

Status
SimTransport::client_write(int h, std::span<const uint8_t> data)
{
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        Impl::Conn* c = impl_->find(h);
        if (c == nullptr || c->server_closed || c->dropped) {
            return cancelled_error("sim connection closed");
        }
        if (c->client_half_closed) {
            return failed_precondition_error(
                "client write after half-close");
        }
        c->to_server.insert(c->to_server.end(), data.begin(),
                            data.end());
    }
    sim::cv_notify_all(impl_->cv);
    return Status::ok();
}

Result<std::vector<uint8_t>>
SimTransport::client_read(int h)
{
    bool freed = false;
    std::vector<uint8_t> got;
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        Impl::Conn* c = impl_->find(h);
        if (c == nullptr) {
            return cancelled_error("sim connection closed");
        }
        if (c->to_client.empty()) {
            if (c->server_closed || c->dropped) {
                return cancelled_error("sim connection closed");
            }
            return unavailable_error("nothing from server yet");
        }
        freed = c->to_client.size() >= impl_->opts.conn_buf_bytes;
        got.assign(c->to_client.begin(), c->to_client.end());
        c->to_client.clear();
    }
    if (freed) {
        // The simulated kernel buffer just drained: the server's
        // write interest becomes actionable again.
        sim::cv_notify_all(impl_->cv);
    }
    return got;
}

Result<std::vector<uint8_t>>
SimTransport::client_read_for(int h, int timeout_ms)
{
    std::unique_lock<std::mutex> lock(impl_->mu);
    Impl::Conn* c = impl_->find(h);
    if (c == nullptr) return cancelled_error("sim connection closed");
    sim::cv_wait_for(impl_->cv, lock,
                     std::chrono::milliseconds(timeout_ms), [&] {
                         return !c->to_client.empty() ||
                                c->server_closed || c->dropped;
                     });
    lock.unlock();
    return client_read(h);
}

void
SimTransport::client_close_write(int h)
{
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        Impl::Conn* c = impl_->find(h);
        if (c == nullptr) return;
        c->client_half_closed = true;
    }
    sim::cv_notify_all(impl_->cv);
}

void
SimTransport::client_drop(int h)
{
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        Impl::Conn* c = impl_->find(h);
        if (c == nullptr) return;
        c->dropped = true;
        c->to_server.clear();
        c->to_client.clear();
    }
    sim::cv_notify_all(impl_->cv);
}

bool
SimTransport::server_closed(int h)
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    Impl::Conn* c = impl_->find(h);
    return c == nullptr || c->server_closed;
}

}  // namespace bitc::net
