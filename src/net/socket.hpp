/**
 * @file
 * Thin RAII + Status wrappers over the POSIX socket calls the net
 * front-end uses.  Two jobs:
 *
 *  - own file descriptors the systems-C++ way (move-only Fd, close on
 *    destruction, EINTR handled once here instead of at every call
 *    site), and
 *  - make every accept/read/write a deterministic fault boundary: the
 *    kSocketIo injection site fires *before* the system call, so a
 *    fault plan like "socket-io:every=3" exercises the server's
 *    failure paths on a loopback socket that would otherwise never
 *    fail.
 *
 * All addresses are IPv4 dotted-quads ("127.0.0.1"); that is all the
 * loopback experiments need.
 */
#ifndef BITC_NET_SOCKET_HPP
#define BITC_NET_SOCKET_HPP

#include <cstdint>
#include <span>
#include <string>
#include <utility>

#include "support/status.hpp"

namespace bitc::net {

/** Move-only owner of a file descriptor (closes on destruction). */
class Fd {
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { reset(); }

    Fd(const Fd&) = delete;
    Fd& operator=(const Fd&) = delete;
    Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
    Fd& operator=(Fd&& other) noexcept {
        if (this != &other) {
            reset();
            fd_ = std::exchange(other.fd_, -1);
        }
        return *this;
    }

    bool valid() const { return fd_ >= 0; }
    int get() const { return fd_; }

    /** Releases ownership without closing. */
    int release() { return std::exchange(fd_, -1); }

    /** Closes now (idempotent). */
    void reset();

  private:
    int fd_ = -1;
};

/** What a read produced: bytes, or the peer's orderly shutdown. */
struct ReadResult {
    size_t bytes = 0;
    bool eof = false;  ///< true: the peer closed its write side.
};

/** Puts @p fd in non-blocking mode. */
Status set_nonblocking(int fd);

/**
 * Binds and listens on @p host:@p port (port 0 = kernel-chosen
 * ephemeral).  SO_REUSEADDR is set so tests can rebind promptly.
 */
Result<Fd> listen_tcp(const std::string& host, uint16_t port);

/** The locally bound port of a listening/connected socket. */
Result<uint16_t> local_port(int fd);

/** Blocking connect to @p host:@p port. */
Result<Fd> connect_tcp(const std::string& host, uint16_t port);

/**
 * Accepts one pending connection from non-blocking @p listen_fd.
 * kUnavailable when none is pending; kResourceExhausted when the
 * kSocketIo fault site fires (the listener's injected failure).
 */
Result<Fd> accept_conn(int listen_fd);

/**
 * Reads whatever is available into @p buf.  kUnavailable when the
 * socket has nothing (EAGAIN); kResourceExhausted on an injected
 * kSocketIo fault; eof set when the peer shut down cleanly.
 */
Result<ReadResult> read_some(int fd, std::span<uint8_t> buf);

/**
 * Writes as much of @p data as the socket accepts; returns the byte
 * count (possibly 0 under EAGAIN via kUnavailable).  kResourceExhausted
 * on an injected kSocketIo fault; kCancelled when the peer is gone
 * (EPIPE/ECONNRESET).
 */
Result<size_t> write_some(int fd, std::span<const uint8_t> data);

/**
 * Vectored write: sends the buffers of @p iovs in order with one
 * sendmsg(2), returning how many bytes the socket accepted (the
 * kernel may stop mid-iovec; the caller resumes from that offset).
 * Same Status vocabulary and single up-front kSocketIo fault consult
 * as write_some — one syscall, one fault boundary.
 */
Result<size_t> writev_some(
    int fd, std::span<const std::span<const uint8_t>> iovs);

}  // namespace bitc::net

#endif  // BITC_NET_SOCKET_HPP
