/**
 * @file
 * Blocking client for the pipeline's TCP front-end — the counterpart
 * tests, the load generator and the network bench drive.  One
 * NetClient is one connection; it is deliberately synchronous (send a
 * frame, poll frames out with a deadline) because its users are
 * scripted drivers, not servers.  Not thread-safe; one thread per
 * client.
 */
#ifndef BITC_NET_CLIENT_HPP
#define BITC_NET_CLIENT_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "support/status.hpp"

namespace bitc::net {

class NetClient {
  public:
    /** Blocking TCP connect to the server. */
    static Result<NetClient> connect(const std::string& host,
                                     uint16_t port);

    NetClient(NetClient&&) = default;
    NetClient& operator=(NetClient&&) = default;

    /** Writes one whole frame (blocking until accepted or error). */
    Status send_frame(const Frame& frame);

    /** Sends pre-encoded bytes (fuzz tests send malformed input). */
    Status send_raw(std::span<const uint8_t> bytes);

    /**
     * Receives the next frame, waiting up to @p timeout_ms.
     * kDeadlineExceeded on timeout; kCancelled when the server closed
     * the connection; decoder errors pass through.
     */
    Result<Frame> recv_frame(uint64_t timeout_ms);

    /** Half-close: no more sends; responses still readable. */
    void shutdown_send();

    /** Hard close. */
    void close();

    int fd() const { return fd_.get(); }

  private:
    explicit NetClient(Fd fd) : fd_(std::move(fd)) {}

    Fd fd_;
    FrameDecoder decoder_;
};

}  // namespace bitc::net

#endif  // BITC_NET_CLIENT_HPP
