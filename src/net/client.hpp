/**
 * @file
 * Blocking client for the pipeline's TCP front-end — the counterpart
 * tests, the load generator and the network bench drive.  One
 * NetClient is one connection; it is deliberately synchronous (send a
 * frame, poll frames out with a deadline) because its users are
 * scripted drivers, not servers.  Not thread-safe; one thread per
 * client.
 */
#ifndef BITC_NET_CLIENT_HPP
#define BITC_NET_CLIENT_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "support/status.hpp"

namespace bitc::net {

class NetClient {
  public:
    /** Blocking TCP connect to the server. */
    static Result<NetClient> connect(const std::string& host,
                                     uint16_t port);

    NetClient(NetClient&&) = default;
    NetClient& operator=(NetClient&&) = default;

    /** Writes one whole frame (blocking until accepted or error). */
    Status send_frame(const Frame& frame);

    /**
     * Allocation-free send for small frames: encodes into a stack
     * buffer when the encoded frame fits (every data frame does),
     * falling back to send_frame otherwise.  The bench's hot path.
     */
    Status send_data(uint32_t flow, uint32_t deadline_ms,
                     std::span<const uint8_t> payload);

    /** Sends pre-encoded bytes (fuzz tests send malformed input). */
    Status send_raw(std::span<const uint8_t> bytes);

    /**
     * Receives the next frame, waiting up to @p timeout_ms.
     * kDeadlineExceeded on timeout; kCancelled when the server closed
     * the connection; decoder errors pass through.
     */
    Result<Frame> recv_frame(uint64_t timeout_ms);

    /**
     * Zero-copy variant of recv_frame: the view's payload borrows the
     * decoder's pooled buffer and is valid only until the next
     * recv_frame/recv_frame_view call.  Reads land directly in the
     * decoder slab — no bounce buffer, no payload allocation.
     */
    Result<FrameView> recv_frame_view(uint64_t timeout_ms);

    /** Half-close: no more sends; responses still readable. */
    void shutdown_send();

    /** Hard close. */
    void close();

    int fd() const { return fd_.get(); }

  private:
    explicit NetClient(Fd fd) : fd_(std::move(fd)) {}

    Fd fd_;
    FrameDecoder decoder_;
};

}  // namespace bitc::net

#endif  // BITC_NET_CLIENT_HPP
