/**
 * @file
 * Wire protocol of the pipeline's TCP front-end: length-prefixed
 * binary frames with a versioned, repr-described header.
 *
 * The header is not parsed with hand-written shifts: its layout is a
 * repr::RecordSpec and the bytes are read through the same
 * RecordCodec machinery the packet stages use (the C3 argument,
 * applied to the server's own protocol).  Every frame is
 *
 *   +----------------- 16-byte header -----------------+---------+
 *   | magic u16 | version u8 | type u8 | flow u32      | payload |
 *   | deadline_ms u32 | length u32                     | (length)|
 *   +---------------------------------------------------+---------+
 *
 * Requests are kData frames whose payload is one packet wire image
 * (conc::kPipeWireBytes bytes).  The server answers every data frame
 * exactly once: kResponse (processed wire image + route bucket),
 * kDrop (validate rejected it), or kError (the connection is being
 * torn down / the shard is sick; payload is human-readable text).
 *
 * FrameDecoder is incremental and pool-backed: its parse buffer is a
 * slab from pool::frame_pool(), callers can read straight into
 * tail()/commit() (no intermediate copy), and next_view() yields
 * frames whose payload is a span into that slab — the zero-copy path
 * the server runs.  feed()/next() remain as the copying convenience
 * API scripted clients use.  Protocol violations (bad magic, unknown
 * version, oversize length) are Status errors — the connection they
 * arrived on cannot be resynchronised and must be torn down.
 */
#ifndef BITC_NET_WIRE_HPP
#define BITC_NET_WIRE_HPP

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "repr/codec.hpp"
#include "support/buffer_pool.hpp"
#include "support/status.hpp"

namespace bitc::net {

/** Frame-header magic ("BitC" pipeline port). */
inline constexpr uint16_t kFrameMagic = 0xB17C;
/** Current protocol version; bumped on any layout change. */
inline constexpr uint8_t kFrameVersion = 1;
/** Header size on the wire, pinned by the repr layout. */
inline constexpr size_t kFrameHeaderBytes = 16;
/** Upper bound on a frame payload; larger lengths are protocol errors. */
inline constexpr size_t kMaxFramePayload = 1u << 16;

/** Frame kinds (the header's type field). */
enum class FrameType : uint8_t {
    kData = 1,      ///< Client -> server: one packet to process.
    kResponse = 2,  ///< Server -> client: processed packet + bucket.
    kDrop = 3,      ///< Server -> client: validate rejected the packet.
    kError = 4,     ///< Server -> client: text diagnostic; conn is dying.
};

/** Stable name for a frame type ("data", "response", ...). */
const char* frame_type_name(FrameType type);

/** One decoded frame: typed header fields plus the raw payload. */
struct Frame {
    FrameType type = FrameType::kData;
    uint32_t flow = 0;         ///< Client-chosen flow id (echoed back).
    uint32_t deadline_ms = 0;  ///< Relative deadline budget; 0 = none.
    std::vector<uint8_t> payload;
};

/**
 * A decoded frame that still lives in the decoder's pooled buffer:
 * header fields by value, payload as a borrowed span.  Valid only
 * until the decoder's next tail()/commit()/feed()/next_view() call —
 * consume (or copy out) before touching the decoder again.
 */
struct FrameView {
    FrameType type = FrameType::kData;
    uint32_t flow = 0;
    uint32_t deadline_ms = 0;
    std::span<const uint8_t> payload;
};

/** The header layout as a repr record spec (natural packing, 16 B). */
const repr::RecordSpec& frame_header_spec();

/** Shared codec for the header layout. */
const repr::RecordCodec& frame_codec();

/** Serialises @p frame (header + payload) into @p out (appending). */
void encode_frame(const Frame& frame, std::vector<uint8_t>& out);

/** Convenience: a fresh buffer holding just @p frame. */
std::vector<uint8_t> encode_frame(const Frame& frame);

/** Bytes one encoded frame occupies for @p payload_len payload. */
inline constexpr size_t
encoded_frame_size(size_t payload_len)
{
    return kFrameHeaderBytes + payload_len;
}

/**
 * Serialises one frame (header fields + @p payload) into @p out,
 * which must hold at least encoded_frame_size(payload.size()) bytes.
 * The allocation-free encode the pooled write path uses.
 */
void encode_frame_into(FrameType type, uint32_t flow,
                       uint32_t deadline_ms,
                       std::span<const uint8_t> payload,
                       std::span<uint8_t> out);

/**
 * Incremental frame parser over a pooled slab.  Two input paths:
 *
 *  - zero-copy: tail(n) exposes >= n writable bytes at the end of the
 *    buffer (compacting/growing through the pool as needed; the pool
 *    refill can fail — injected kHeapAlloc), the caller reads from
 *    the socket straight into them and commit()s what arrived;
 *  - copying: feed() appends caller-owned bytes (the client path).
 *
 * Frames come out of next_view() (borrowed payload, the server path)
 * or next() (owned payload, compatibility):
 *
 *   - Result holding a value: one complete frame was consumed;
 *   - Result holding std::nullopt: the buffer holds only a frame
 *     prefix — feed more bytes;
 *   - error Status: the stream is not speaking this protocol
 *     (kInvalidArgument: bad magic or type; kFailedPrecondition:
 *     version mismatch; kOutOfRange: length above kMaxFramePayload).
 *     The decoder is poisoned and the connection must be torn down.
 */
class FrameDecoder {
  public:
    /** Appends raw socket bytes to the parse buffer (copying path). */
    void feed(std::span<const uint8_t> bytes);

    /**
     * Writable space of at least @p min_bytes at the buffer tail.
     * Invalidates outstanding FrameViews (may compact).  Fails only
     * when the pool refill does (injected allocation fault).
     */
    Result<std::span<uint8_t>> tail(size_t min_bytes);

    /** Marks @p n bytes of the last tail() span as filled. */
    void commit(size_t n) { size_ += n; }

    /** Extracts the next complete frame without copying its payload. */
    Result<std::optional<FrameView>> next_view();

    /** Extracts the next complete frame, payload copied out. */
    Result<std::optional<Frame>> next();

    /** Bytes buffered but not yet consumed by next()/next_view(). */
    size_t buffered() const { return size_ - consumed_; }

  private:
    pool::BufferRef buf_;
    size_t size_ = 0;      ///< Filled prefix of buf_.
    size_t consumed_ = 0;  ///< Prefix of size_ already parsed out.
    Status poisoned_;      ///< First protocol error, sticky.
};

}  // namespace bitc::net

#endif  // BITC_NET_WIRE_HPP
