/**
 * @file
 * Wire protocol of the pipeline's TCP front-end: length-prefixed
 * binary frames with a versioned, repr-described header.
 *
 * The header is not parsed with hand-written shifts: its layout is a
 * repr::RecordSpec and the bytes are read through the same
 * RecordCodec machinery the packet stages use (the C3 argument,
 * applied to the server's own protocol).  Every frame is
 *
 *   +----------------- 16-byte header -----------------+---------+
 *   | magic u16 | version u8 | type u8 | flow u32      | payload |
 *   | deadline_ms u32 | length u32                     | (length)|
 *   +---------------------------------------------------+---------+
 *
 * Requests are kData frames whose payload is one packet wire image
 * (conc::kPipeWireBytes bytes).  The server answers every data frame
 * exactly once: kResponse (processed wire image + route bucket),
 * kDrop (validate rejected it), or kError (the connection is being
 * torn down / the shard is sick; payload is human-readable text).
 *
 * FrameDecoder is incremental: feed() whatever the socket produced,
 * call next() until it reports "incomplete".  Protocol violations
 * (bad magic, unknown version, oversize length) are Status errors —
 * the connection they arrived on cannot be resynchronised and must be
 * torn down.
 */
#ifndef BITC_NET_WIRE_HPP
#define BITC_NET_WIRE_HPP

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "repr/codec.hpp"
#include "support/status.hpp"

namespace bitc::net {

/** Frame-header magic ("BitC" pipeline port). */
inline constexpr uint16_t kFrameMagic = 0xB17C;
/** Current protocol version; bumped on any layout change. */
inline constexpr uint8_t kFrameVersion = 1;
/** Header size on the wire, pinned by the repr layout. */
inline constexpr size_t kFrameHeaderBytes = 16;
/** Upper bound on a frame payload; larger lengths are protocol errors. */
inline constexpr size_t kMaxFramePayload = 1u << 16;

/** Frame kinds (the header's type field). */
enum class FrameType : uint8_t {
    kData = 1,      ///< Client -> server: one packet to process.
    kResponse = 2,  ///< Server -> client: processed packet + bucket.
    kDrop = 3,      ///< Server -> client: validate rejected the packet.
    kError = 4,     ///< Server -> client: text diagnostic; conn is dying.
};

/** Stable name for a frame type ("data", "response", ...). */
const char* frame_type_name(FrameType type);

/** One decoded frame: typed header fields plus the raw payload. */
struct Frame {
    FrameType type = FrameType::kData;
    uint32_t flow = 0;         ///< Client-chosen flow id (echoed back).
    uint32_t deadline_ms = 0;  ///< Relative deadline budget; 0 = none.
    std::vector<uint8_t> payload;
};

/** The header layout as a repr record spec (natural packing, 16 B). */
const repr::RecordSpec& frame_header_spec();

/** Shared codec for the header layout. */
const repr::RecordCodec& frame_codec();

/** Serialises @p frame (header + payload) into @p out (appending). */
void encode_frame(const Frame& frame, std::vector<uint8_t>& out);

/** Convenience: a fresh buffer holding just @p frame. */
std::vector<uint8_t> encode_frame(const Frame& frame);

/**
 * Incremental frame parser.  Bytes go in via feed(); complete frames
 * come out of next():
 *
 *   - Result holding a Frame: one complete frame was consumed;
 *   - Result holding std::nullopt: the buffer holds only a frame
 *     prefix — feed more bytes;
 *   - error Status: the stream is not speaking this protocol
 *     (kInvalidArgument: bad magic or type; kFailedPrecondition:
 *     version mismatch; kOutOfRange: length above kMaxFramePayload).
 *     The decoder is poisoned and the connection must be torn down.
 */
class FrameDecoder {
  public:
    /** Appends raw socket bytes to the parse buffer. */
    void feed(std::span<const uint8_t> bytes);

    /** Extracts the next complete frame (see class comment). */
    Result<std::optional<Frame>> next();

    /** Bytes buffered but not yet consumed by next(). */
    size_t buffered() const { return buffer_.size() - consumed_; }

  private:
    std::vector<uint8_t> buffer_;
    size_t consumed_ = 0;  ///< Prefix of buffer_ already parsed out.
    Status poisoned_;      ///< First protocol error, sticky.
};

}  // namespace bitc::net

#endif  // BITC_NET_WIRE_HPP
