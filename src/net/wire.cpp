#include "net/wire.hpp"

#include <cassert>
#include <cstring>

#include "support/metrics.hpp"
#include "support/string_util.hpp"

namespace bitc::net {

namespace {

using repr::FieldSpec;
using repr::RecordSpec;
using repr::ScalarType;

/** First slab the decoder acquires; grows through pool classes. */
constexpr size_t kDecoderInitialBytes = 16 * 1024;

RecordSpec
make_header_spec()
{
    RecordSpec spec;
    spec.name = "net-frame-header";
    spec.packing = repr::Packing::kNatural;
    spec.pinned_byte_size = static_cast<uint32_t>(kFrameHeaderBytes);
    spec.fields.push_back(FieldSpec("magic", ScalarType::uint_type(16)));
    spec.fields.push_back(FieldSpec("version", ScalarType::uint_type(8)));
    spec.fields.push_back(FieldSpec("type", ScalarType::uint_type(8)));
    spec.fields.push_back(FieldSpec("flow", ScalarType::uint_type(32)));
    spec.fields.push_back(
        FieldSpec("deadline_ms", ScalarType::uint_type(32)));
    spec.fields.push_back(FieldSpec("length", ScalarType::uint_type(32)));
    return spec;
}

}  // namespace

const char*
frame_type_name(FrameType type)
{
    switch (type) {
      case FrameType::kData: return "data";
      case FrameType::kResponse: return "response";
      case FrameType::kDrop: return "drop";
      case FrameType::kError: return "error";
    }
    return "unknown";
}

const repr::RecordSpec&
frame_header_spec()
{
    static const RecordSpec spec = make_header_spec();
    return spec;
}

const repr::RecordCodec&
frame_codec()
{
    static const repr::RecordCodec codec = [] {
        auto layout = repr::compute_layout(frame_header_spec());
        // The spec is a compile-time constant of this file; a layout
        // failure is a programming error, not an input error.
        assert(layout.is_ok());
        return repr::RecordCodec(std::move(layout).take());
    }();
    return codec;
}

void
encode_frame_into(FrameType type, uint32_t flow, uint32_t deadline_ms,
                  std::span<const uint8_t> payload,
                  std::span<uint8_t> out)
{
    assert(out.size() >= encoded_frame_size(payload.size()));
    const repr::RecordCodec& codec = frame_codec();
    std::span<uint8_t> header = out.first(kFrameHeaderBytes);
    const auto& fields = codec.layout().fields();
    codec.write_field(header, fields[0], kFrameMagic);
    codec.write_field(header, fields[1], kFrameVersion);
    codec.write_field(header, fields[2], static_cast<uint64_t>(type));
    codec.write_field(header, fields[3], flow);
    codec.write_field(header, fields[4], deadline_ms);
    codec.write_field(header, fields[5], payload.size());
    if (!payload.empty()) {
        std::memcpy(out.data() + kFrameHeaderBytes, payload.data(),
                    payload.size());
    }
}

void
encode_frame(const Frame& frame, std::vector<uint8_t>& out)
{
    size_t base = out.size();
    out.resize(base + encoded_frame_size(frame.payload.size()));
    encode_frame_into(frame.type, frame.flow, frame.deadline_ms,
                      frame.payload,
                      std::span<uint8_t>(out.data() + base,
                                         out.size() - base));
}

std::vector<uint8_t>
encode_frame(const Frame& frame)
{
    std::vector<uint8_t> out;
    out.reserve(kFrameHeaderBytes + frame.payload.size());
    encode_frame(frame, out);
    return out;
}

void
FrameDecoder::feed(std::span<const uint8_t> bytes)
{
    if (bytes.empty()) return;
    auto room = tail(bytes.size());
    // feed() keeps the historical infallible signature; a pool refill
    // fault here surfaces as a poisoned stream instead.
    if (!room.is_ok()) {
        if (poisoned_.is_ok()) poisoned_ = room.status();
        return;
    }
    std::memcpy(room.value().data(), bytes.data(), bytes.size());
    metrics::count(metrics::Counter::kNetBytesCopied, bytes.size());
    commit(bytes.size());
}

Result<std::span<uint8_t>>
FrameDecoder::tail(size_t min_bytes)
{
    // Compact first: the consumed prefix is dead weight, and the
    // residue is at most one partial frame.
    if (consumed_ > 0) {
        if (consumed_ == size_) {
            size_ = 0;
            consumed_ = 0;
        } else if (buf_.valid() &&
                   buf_.capacity() - size_ < min_bytes) {
            size_t live = size_ - consumed_;
            std::memmove(buf_.data(), buf_.data() + consumed_, live);
            metrics::count(metrics::Counter::kNetBytesCopied, live);
            size_ = live;
            consumed_ = 0;
        }
    }
    size_t need = size_ + min_bytes;
    if (!buf_.valid() || buf_.capacity() < need) {
        size_t want = need > kDecoderInitialBytes
                          ? need
                          : kDecoderInitialBytes;
        auto grown = pool::frame_pool().acquire(want);
        if (!grown.is_ok()) return grown.status();
        if (buf_.valid() && size_ > consumed_) {
            size_t live = size_ - consumed_;
            std::memcpy(grown.value().data(),
                        buf_.data() + consumed_, live);
            metrics::count(metrics::Counter::kNetBytesCopied, live);
            size_ = live;
        } else {
            size_ = 0;
        }
        consumed_ = 0;
        buf_ = std::move(grown).take();
    }
    return std::span<uint8_t>(buf_.data() + size_,
                              buf_.capacity() - size_);
}

Result<std::optional<FrameView>>
FrameDecoder::next_view()
{
    if (!poisoned_.is_ok()) return poisoned_;
    std::span<const uint8_t> rest(
        buf_.valid() ? buf_.data() + consumed_ : nullptr,
        size_ - consumed_);
    if (rest.size() < kFrameHeaderBytes) {
        return std::optional<FrameView>();  // truncated header
    }
    const repr::RecordCodec& codec = frame_codec();
    const auto& fields = codec.layout().fields();
    uint64_t magic = codec.read_field(rest, fields[0]);
    uint64_t version = codec.read_field(rest, fields[1]);
    uint64_t type = codec.read_field(rest, fields[2]);
    uint64_t flow = codec.read_field(rest, fields[3]);
    uint64_t deadline_ms = codec.read_field(rest, fields[4]);
    uint64_t length = codec.read_field(rest, fields[5]);
    if (magic != kFrameMagic) {
        poisoned_ = invalid_argument_error(str_format(
            "frame magic 0x%04llx (want 0x%04x)",
            static_cast<unsigned long long>(magic), kFrameMagic));
        return poisoned_;
    }
    if (version != kFrameVersion) {
        poisoned_ = failed_precondition_error(str_format(
            "frame version %llu (this server speaks %u)",
            static_cast<unsigned long long>(version), kFrameVersion));
        return poisoned_;
    }
    if (type < static_cast<uint64_t>(FrameType::kData) ||
        type > static_cast<uint64_t>(FrameType::kError)) {
        poisoned_ = invalid_argument_error(str_format(
            "frame type %llu", static_cast<unsigned long long>(type)));
        return poisoned_;
    }
    if (length > kMaxFramePayload) {
        poisoned_ = out_of_range_error(str_format(
            "frame length %llu exceeds %zu",
            static_cast<unsigned long long>(length), kMaxFramePayload));
        return poisoned_;
    }
    if (rest.size() < kFrameHeaderBytes + length) {
        return std::optional<FrameView>();  // payload still in flight
    }
    FrameView view;
    view.type = static_cast<FrameType>(type);
    view.flow = static_cast<uint32_t>(flow);
    view.deadline_ms = static_cast<uint32_t>(deadline_ms);
    view.payload = rest.subspan(kFrameHeaderBytes,
                                static_cast<size_t>(length));
    consumed_ += kFrameHeaderBytes + length;
    return std::optional<FrameView>(view);
}

Result<std::optional<Frame>>
FrameDecoder::next()
{
    auto view = next_view();
    if (!view.is_ok()) return view.status();
    if (!view.value().has_value()) return std::optional<Frame>();
    Frame frame;
    frame.type = view.value()->type;
    frame.flow = view.value()->flow;
    frame.deadline_ms = view.value()->deadline_ms;
    frame.payload.assign(view.value()->payload.begin(),
                         view.value()->payload.end());
    return std::optional<Frame>(std::move(frame));
}

}  // namespace bitc::net
