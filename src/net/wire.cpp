#include "net/wire.hpp"

#include "support/string_util.hpp"

namespace bitc::net {

namespace {

using repr::FieldSpec;
using repr::RecordSpec;
using repr::ScalarType;

RecordSpec
make_header_spec()
{
    RecordSpec spec;
    spec.name = "net-frame-header";
    spec.packing = repr::Packing::kNatural;
    spec.pinned_byte_size = static_cast<uint32_t>(kFrameHeaderBytes);
    spec.fields.push_back(FieldSpec("magic", ScalarType::uint_type(16)));
    spec.fields.push_back(FieldSpec("version", ScalarType::uint_type(8)));
    spec.fields.push_back(FieldSpec("type", ScalarType::uint_type(8)));
    spec.fields.push_back(FieldSpec("flow", ScalarType::uint_type(32)));
    spec.fields.push_back(
        FieldSpec("deadline_ms", ScalarType::uint_type(32)));
    spec.fields.push_back(FieldSpec("length", ScalarType::uint_type(32)));
    return spec;
}

}  // namespace

const char*
frame_type_name(FrameType type)
{
    switch (type) {
      case FrameType::kData: return "data";
      case FrameType::kResponse: return "response";
      case FrameType::kDrop: return "drop";
      case FrameType::kError: return "error";
    }
    return "unknown";
}

const repr::RecordSpec&
frame_header_spec()
{
    static const RecordSpec spec = make_header_spec();
    return spec;
}

const repr::RecordCodec&
frame_codec()
{
    static const repr::RecordCodec codec = [] {
        auto layout = repr::compute_layout(frame_header_spec());
        // The spec is a compile-time constant of this file; a layout
        // failure is a programming error, not an input error.
        assert(layout.is_ok());
        return repr::RecordCodec(std::move(layout).take());
    }();
    return codec;
}

void
encode_frame(const Frame& frame, std::vector<uint8_t>& out)
{
    const repr::RecordCodec& codec = frame_codec();
    size_t base = out.size();
    out.resize(base + kFrameHeaderBytes);
    std::span<uint8_t> header(out.data() + base, kFrameHeaderBytes);
    const auto& fields = codec.layout().fields();
    codec.write_field(header, fields[0], kFrameMagic);
    codec.write_field(header, fields[1], kFrameVersion);
    codec.write_field(header, fields[2],
                      static_cast<uint64_t>(frame.type));
    codec.write_field(header, fields[3], frame.flow);
    codec.write_field(header, fields[4], frame.deadline_ms);
    codec.write_field(header, fields[5], frame.payload.size());
    out.insert(out.end(), frame.payload.begin(), frame.payload.end());
}

std::vector<uint8_t>
encode_frame(const Frame& frame)
{
    std::vector<uint8_t> out;
    out.reserve(kFrameHeaderBytes + frame.payload.size());
    encode_frame(frame, out);
    return out;
}

void
FrameDecoder::feed(std::span<const uint8_t> bytes)
{
    // Compact lazily: drop the consumed prefix before growing, so a
    // long-lived connection does not accrete its whole history.
    if (consumed_ > 0 && consumed_ == buffer_.size()) {
        buffer_.clear();
        consumed_ = 0;
    } else if (consumed_ > kMaxFramePayload) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<long>(consumed_));
        consumed_ = 0;
    }
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

Result<std::optional<Frame>>
FrameDecoder::next()
{
    if (!poisoned_.is_ok()) return poisoned_;
    std::span<const uint8_t> rest(buffer_.data() + consumed_,
                                  buffer_.size() - consumed_);
    if (rest.size() < kFrameHeaderBytes) {
        return std::optional<Frame>();  // truncated header: need bytes
    }
    const repr::RecordCodec& codec = frame_codec();
    const auto& fields = codec.layout().fields();
    uint64_t magic = codec.read_field(rest, fields[0]);
    uint64_t version = codec.read_field(rest, fields[1]);
    uint64_t type = codec.read_field(rest, fields[2]);
    uint64_t flow = codec.read_field(rest, fields[3]);
    uint64_t deadline_ms = codec.read_field(rest, fields[4]);
    uint64_t length = codec.read_field(rest, fields[5]);
    if (magic != kFrameMagic) {
        poisoned_ = invalid_argument_error(str_format(
            "frame magic 0x%04llx (want 0x%04x)",
            static_cast<unsigned long long>(magic), kFrameMagic));
        return poisoned_;
    }
    if (version != kFrameVersion) {
        poisoned_ = failed_precondition_error(str_format(
            "frame version %llu (this server speaks %u)",
            static_cast<unsigned long long>(version), kFrameVersion));
        return poisoned_;
    }
    if (type < static_cast<uint64_t>(FrameType::kData) ||
        type > static_cast<uint64_t>(FrameType::kError)) {
        poisoned_ = invalid_argument_error(str_format(
            "frame type %llu", static_cast<unsigned long long>(type)));
        return poisoned_;
    }
    if (length > kMaxFramePayload) {
        poisoned_ = out_of_range_error(str_format(
            "frame length %llu exceeds %zu",
            static_cast<unsigned long long>(length), kMaxFramePayload));
        return poisoned_;
    }
    if (rest.size() < kFrameHeaderBytes + length) {
        return std::optional<Frame>();  // payload still in flight
    }
    Frame frame;
    frame.type = static_cast<FrameType>(type);
    frame.flow = static_cast<uint32_t>(flow);
    frame.deadline_ms = static_cast<uint32_t>(deadline_ms);
    frame.payload.assign(
        rest.begin() + kFrameHeaderBytes,
        rest.begin() + static_cast<long>(kFrameHeaderBytes + length));
    consumed_ += kFrameHeaderBytes + length;
    return std::optional<Frame>(std::move(frame));
}

}  // namespace bitc::net
