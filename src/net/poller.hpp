/**
 * @file
 * Readiness multiplexer for the server's event loop: epoll on Linux,
 * with a portable poll(2) fallback selected at runtime (or forced via
 * BITC_NET_POLLER=poll, which is how the fallback stays tested on a
 * Linux CI host).  One instance belongs to one thread; the server
 * wakes it from other threads through a self-pipe registered like any
 * other fd.
 */
#ifndef BITC_NET_POLLER_HPP
#define BITC_NET_POLLER_HPP

#include <map>
#include <vector>

#include "net/socket.hpp"
#include "support/status.hpp"

namespace bitc::net {

/** One ready fd, with the conditions that fired. */
struct PollEvent {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;  ///< HUP/ERR: tear the connection down.
};

/** Which kernel interface a Poller instance ended up on. */
enum class PollBackend : uint8_t { kEpoll, kPoll };

const char* poll_backend_name(PollBackend backend);

class Poller {
  public:
    /**
     * Picks epoll when available, poll otherwise.  The environment
     * variable BITC_NET_POLLER=poll forces the fallback.
     */
    static Result<Poller> create();

    Poller(Poller&&) = default;
    Poller& operator=(Poller&&) = default;

    PollBackend backend() const { return backend_; }

    /** Registers @p fd with the given interest set. */
    Status add(int fd, bool want_read, bool want_write);

    /** Replaces @p fd's interest set. */
    Status modify(int fd, bool want_read, bool want_write);

    /** Deregisters @p fd (must precede closing it). */
    Status remove(int fd);

    /**
     * Blocks up to @p timeout_ms (-1 = forever) and appends ready fds
     * to @p out.  Returns the number appended; 0 means timeout.
     */
    Result<size_t> wait(int timeout_ms, std::vector<PollEvent>& out);

  private:
    Poller(PollBackend backend, Fd epoll_fd)
        : backend_(backend), epoll_(std::move(epoll_fd)) {}

    PollBackend backend_;
    Fd epoll_;  ///< epoll instance; invalid under the poll backend.
    /** poll backend: fd -> POLLIN|POLLOUT interest mask. */
    std::map<int, short> interest_;
};

}  // namespace bitc::net

#endif  // BITC_NET_POLLER_HPP
