#include "net/server.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "net/transport.hpp"
#include "net/wire.hpp"
#include "support/buffer_pool.hpp"
#include "support/metrics.hpp"
#include "support/sim.hpp"
#include "support/stats.hpp"
#include "support/string_util.hpp"
#include "support/trace.hpp"

namespace bitc::net {

namespace {

/** Flow ids are 16-bit on this transport; the top half routes. */
constexpr uint32_t kClientFlowMask = 0xffffu;

/** Socket read size per transport->read into the decoder tail. */
constexpr size_t kReadChunk = 16 * 1024;

/** Frames gathered per vectored flush call (RealTransport's writev
 *  wrapper caps at 64 iovecs; stay comfortably under it). */
constexpr size_t kMaxFlushIovs = 32;

/** Slab size answer frames pack into (dozens of answers per slab). */
constexpr size_t kEncodeSlabBytes = 4096;

/** @p text viewed as a frame payload. */
std::span<const uint8_t>
text_payload(const std::string& text)
{
    return {reinterpret_cast<const uint8_t*>(text.data()),
            text.size()};
}

}  // namespace

std::string
ServerStats::to_string() const
{
    return str_format(
        "net: %llu conns (%llu refused), %llu frames in, %llu out, "
        "%llu protocol errors, %llu edge rejects\n"
        "     teardowns: %llu sick, %llu clean; listener: %llu "
        "crashes, %llu restarts, %llu breaker opens\n"
        "     ledger: %llu generated = %llu delivered + %llu dropped "
        "+ %llu fault-dropped + %llu shed + %llu rejected (%s)\n",
        static_cast<unsigned long long>(accepted),
        static_cast<unsigned long long>(refused),
        static_cast<unsigned long long>(frames_in),
        static_cast<unsigned long long>(frames_out),
        static_cast<unsigned long long>(protocol_errors),
        static_cast<unsigned long long>(edge_rejects),
        static_cast<unsigned long long>(teardowns_sick),
        static_cast<unsigned long long>(teardowns_clean),
        static_cast<unsigned long long>(listener_crashes),
        static_cast<unsigned long long>(listener_restarts),
        static_cast<unsigned long long>(breaker_opens),
        static_cast<unsigned long long>(generated),
        static_cast<unsigned long long>(delivered),
        static_cast<unsigned long long>(dropped),
        static_cast<unsigned long long>(fault_dropped),
        static_cast<unsigned long long>(shed),
        static_cast<unsigned long long>(rejected),
        conserved() ? "conserved" : "NOT CONSERVED");
}

/**
 * All server state.  Threading contract:
 *
 *  - the IO thread owns the poller, every fd, and each connection's
 *    decoder/pending/parked batches (never touched by anyone else);
 *  - mu guards the connection table, the per-connection write queues
 *    and liveness flags — the only state the sink thread reaches;
 *  - the ledger counters are atomics so stats() can read mid-run.
 *
 * Buffer ownership (docs/networking.md "Data path and buffer
 * ownership" has the full map): inbound bytes live in the decoder's
 * pooled slab until handle_frame copies the 24-byte wire image into
 * the packet; outbound frames are encoded back-to-back into pooled
 * slabs that each queued OutFrame pins by refcount, released as the
 * flush pops them — at exactly the points their ledger tags resolve.
 */
struct NetServer::Impl {
    /** How one queued answer frame is accounted, for reclassification
     *  when its connection dies before the bytes leave. */
    enum LedgerTag : uint8_t { kNone = 0, kDelivered, kDropped };

    /** One encoded frame in a write queue: a window into a pooled
     *  slab (shared with its queue neighbours) plus its ledger tag. */
    struct OutFrame {
        pool::BufferRef buf;
        uint32_t off = 0;
        uint32_t len = 0;
        LedgerTag tag = kNone;
    };

    struct Conn {
        int h = -1;  ///< Transport handle; -1 once dead.
        uint32_t id = 0;
        FrameDecoder decoder;

        // IO-thread-only read-side batching: packets decoded in one
        // pass group per engine shard here, and groups the engine
        // backpressured park in parked until the shard drains.
        std::vector<conc::PipeBatch> pending;  ///< One slot per shard.
        std::vector<std::pair<size_t, conc::PipeBatch>> parked;

        bool paused = false;    ///< Read interest withdrawn.
        bool want_write = false;///< Write interest registered.
        bool draining = false;  ///< Peer EOF'd; answers still owed.
        bool sick = false;      ///< Marked for teardown.
        bool closing = false;   ///< Sick; goodbye frame still queued.
        bool dead = false;      ///< fd closed; zombie until answered.
        uint64_t close_deadline_ns = 0;  ///< closing drain budget.

        uint64_t inflight = 0;  ///< Packets in the engine (mu).
        /**
         * Sink waits parked on this connection's write queue (mu).
         * A nonzero count pins the Conn against reap_dead: the sink
         * releases mu inside space_cv.wait_for while still holding a
         * raw pointer here, so teardown may mark the connection dead
         * mid-wait but must never let it be freed.
         */
        uint64_t waiters = 0;
        size_t write_off = 0;   ///< Bytes of the front frame written.
        std::deque<OutFrame> write_q;  ///< mu.

        // Encode packing state: answers append into this slab until
        // it fills, so dozens of frames share one pool acquire.
        pool::BufferRef enc_buf;
        size_t enc_used = 0;
    };

    /** A refused connection whose goodbye is still draining: no id,
     *  no ledger presence — just a handle, the encoded frame, and a
     *  drain budget. */
    struct PendingBye {
        pool::BufferRef buf;
        size_t len = 0;
        size_t off = 0;
        uint64_t deadline_ns = 0;
    };

    Impl(options::ServeSpec s, conc::PipelineConfig c)
        : serve(std::move(s)), config(c), supervisor(c.supervision) {}

    options::ServeSpec serve;
    conc::PipelineConfig config;
    std::unique_ptr<conc::PipelineEngine> engine;
    conc::Supervisor supervisor;
    NetServerTestHooks hooks;

    /** The network seam: real sockets or the in-memory simulation. */
    std::unique_ptr<Transport> transport;
    int listener_h = -1;
    uint16_t bound_port = 0;

    std::thread io_thread;
    std::thread sink_thread;

    mutable std::mutex mu;
    std::condition_variable space_cv;  ///< Write-queue space freed.
    std::condition_variable done_cv;   ///< max_frames drained / stop.
    std::map<uint32_t, std::unique_ptr<Conn>> conns;
    std::map<int, Conn*> by_h;  ///< Transport handle -> connection.
    std::map<int, PendingBye> byes;  ///< Refusal goodbyes in flight.
    uint32_t next_id = 1;
    /** Ids of reaped connections, ready for reuse (the wire flow
     *  field gives connection ids only 16 bits). */
    std::vector<uint32_t> free_ids;
    bool started = false;
    bool stopped = false;
    bool done = false;
    std::atomic<bool> stopping{false};

    std::atomic<uint64_t> accepted{0}, refused{0}, frames_in{0},
        frames_out{0}, protocol_errors{0}, edge_rejects{0},
        teardowns_sick{0}, teardowns_clean{0};
    std::atomic<uint64_t> generated{0}, delivered{0}, dropped{0},
        rejected{0};
    std::atomic<uint64_t> inflight_total{0};

    // --- helpers ---------------------------------------------------------

    void wake_io() { transport->wake(); }

    bool max_frames_reached() const {
        return serve.max_frames > 0 &&
               generated.load(std::memory_order_relaxed) >=
                   serve.max_frames;
    }

    /**
     * mu held.  Encodes one answer frame into the connection's
     * current encode slab (acquiring a fresh one when it fills) and
     * queues it.  False when the pool refill failed (injected
     * allocation fault) — the caller owns the ledger consequence.
     */
    bool enqueue(Conn& c, FrameType type, uint32_t flow,
                 std::span<const uint8_t> payload, LedgerTag tag) {
        size_t need = encoded_frame_size(payload.size());
        if (!c.enc_buf.valid() ||
            c.enc_used + need > c.enc_buf.capacity()) {
            auto slab = pool::frame_pool().acquire(
                std::max(need, kEncodeSlabBytes));
            if (!slab.is_ok()) return false;
            c.enc_buf = std::move(slab).take();
            c.enc_used = 0;
        }
        std::span<uint8_t> out(c.enc_buf.data() + c.enc_used, need);
        encode_frame_into(type, flow, /*deadline_ms=*/0, payload, out);
        metrics::count(metrics::Counter::kNetBytesCopied,
                       payload.size());
        OutFrame f;
        f.buf = c.enc_buf;
        f.off = static_cast<uint32_t>(c.enc_used);
        f.len = static_cast<uint32_t>(need);
        f.tag = tag;
        c.enc_used += need;
        c.write_q.push_back(std::move(f));
        frames_out.fetch_add(1, std::memory_order_relaxed);
        metrics::count(metrics::Counter::kNetFramesOut);
        return true;
    }

    /** mu held.  enqueue for error/text frames; failures fall back to
     *  tearing the connection down at the call site. */
    bool enqueue_error(Conn& c, uint32_t flow,
                       const std::string& text) {
        return enqueue(c, FrameType::kError, flow, text_payload(text),
                       kNone);
    }

    /** mu held, IO thread.  Read interest tracks queue + park state. */
    void update_read_interest(Conn& c) {
        bool should_pause =
            !c.parked.empty() ||
            c.write_q.size() >= serve.write_queue_frames;
        if (c.dead || c.draining || c.closing) return;
        if (should_pause == c.paused) return;
        c.paused = should_pause;
        (void)transport->modify(c.h, /*want_read=*/!c.paused,
                                /*want_write=*/c.want_write);
    }

    /** mu held, IO thread.  Registers/clears write interest. */
    void update_write_interest(Conn& c, bool want) {
        if (c.dead || want == c.want_write) return;
        c.want_write = want;
        (void)transport->modify(
            c.h,
            /*want_read=*/!c.paused && !c.draining && !c.closing,
            /*want_write=*/c.want_write);
    }

    /** mu held.  Drops un-submitted packet groups (never entered the
     *  ledger) and recycles their vectors. */
    void clear_unsubmitted(Conn& c) {
        for (conc::PipeBatch& g : c.pending) {
            if (g.packets.capacity() > 0) {
                conc::recycle_packet_vec(std::move(g.packets));
            }
            g = conc::PipeBatch{};
        }
        for (auto& [shard, batch] : c.parked) {
            conc::recycle_packet_vec(std::move(batch.packets));
        }
        c.parked.clear();
    }

    /**
     * mu held, IO thread.  Final act of a teardown: reclassify queued
     * answers that never left (skip a half-written front frame: its
     * bytes are on the wire and stay delivered), close the fd, and
     * leave the entry as a zombie while the engine still owes it
     * packets (the sink rejects those as orphans).
     */
    void finish_close(Conn& c) {
        if (c.dead) return;
        (void)transport->remove(c.h);
        by_h.erase(c.h);
        transport->close(c.h);
        c.h = -1;
        c.dead = true;
        size_t skip = c.write_off > 0 ? 1 : 0;
        size_t i = 0;
        for (const OutFrame& f : c.write_q) {
            if (i++ < skip) continue;
            if (f.tag == kDelivered) {
                delivered.fetch_sub(1, std::memory_order_relaxed);
                rejected.fetch_add(1, std::memory_order_relaxed);
            } else if (f.tag == kDropped) {
                dropped.fetch_sub(1, std::memory_order_relaxed);
                rejected.fetch_add(1, std::memory_order_relaxed);
            }
        }
        c.write_q.clear();
        c.write_off = 0;
        c.enc_buf.reset();
        clear_unsubmitted(c);
        sim::cv_notify_all(space_cv);
    }

    /**
     * mu held, IO thread.  Tears a connection down.  A sick teardown
     * with a diagnosis queues the goodbye frame through the normal
     * write queue (closing state) so a short write can no longer
     * truncate it on the wire; the fd closes once it drains, on the
     * write-stall budget, or immediately when the stream is already
     * mid-frame (a goodbye after a truncated frame is garbage to the
     * peer's decoder anyway).
     */
    void teardown(Conn& c, bool sick_teardown,
                  const std::string& reason) {
        if (c.dead) return;
        if (c.closing) {
            // Second failure while the goodbye drained: give up.
            finish_close(c);
            return;
        }
        bool mid_frame = c.write_off > 0;
        // Reclassify undeliverable answers now; only the goodbye may
        // still ride the queue after this point.
        size_t skip = mid_frame ? 1 : 0;
        size_t i = 0;
        for (const OutFrame& f : c.write_q) {
            if (i++ < skip) continue;
            if (f.tag == kDelivered) {
                delivered.fetch_sub(1, std::memory_order_relaxed);
                rejected.fetch_add(1, std::memory_order_relaxed);
            } else if (f.tag == kDropped) {
                dropped.fetch_sub(1, std::memory_order_relaxed);
                rejected.fetch_add(1, std::memory_order_relaxed);
            }
        }
        c.write_q.clear();
        c.write_off = 0;
        clear_unsubmitted(c);
        sim::cv_notify_all(space_cv);
        c.sick = sick_teardown;
        if (sick_teardown) {
            teardowns_sick.fetch_add(1, std::memory_order_relaxed);
            metrics::count(metrics::Counter::kNetConnTeardowns);
        } else {
            teardowns_clean.fetch_add(1, std::memory_order_relaxed);
        }
        metrics::gauge_sub(metrics::Gauge::kNetConnections);
        trace::emit(trace::Event::kNetConnClose, c.id,
                    sick_teardown ? 1 : 0);
        if (sick_teardown && !reason.empty() && !mid_frame &&
            !stopping.load(std::memory_order_acquire) &&
            enqueue_error(c, 0, reason)) {
            c.closing = true;
            c.close_deadline_ns =
                now_ns() + serve.write_stall_ms * 1000000ull;
            (void)transport->modify(c.h, /*want_read=*/false,
                                    /*want_write=*/true);
            c.paused = true;
            c.want_write = true;
            flush_conn(c);  // usually drains in this one call
            return;
        }
        finish_close(c);
    }

    /** mu held.  Erases zombies nothing references anymore — no
     *  engine packets owed, no sink wait parked on them — and
     *  recycles their ids for future accepts. */
    void reap_dead() {
        for (auto it = conns.begin(); it != conns.end();) {
            const Conn& c = *it->second;
            if (c.dead && c.inflight == 0 && c.waiters == 0) {
                free_ids.push_back(it->first);
                it = conns.erase(it);
            } else {
                ++it;
            }
        }
    }

    /** mu held.  max_frames done condition (see wait_done). */
    void check_done() {
        if (done || serve.max_frames == 0) return;
        if (!max_frames_reached()) return;
        // Engine losses settle inflight through note_engine_loss, so
        // zero means every admitted packet was answered or accounted.
        if (inflight_total.load(std::memory_order_relaxed) != 0) {
            return;
        }
        for (const auto& [id, c] : conns) {
            if (!c->write_q.empty()) return;
        }
        done = true;
        sim::cv_notify_all(done_cv);
    }

    // --- IO loop ---------------------------------------------------------

    /**
     * IO thread, mu held.  Flushes one connection's write queue with
     * vectored writes: up to kMaxFlushIovs queued frames drain per
     * transport call instead of one syscall each.
     */
    bool flush_conn(Conn& c) {
        bool progressed = false;
        while (!c.dead && !c.write_q.empty()) {
            std::span<const uint8_t> iovs[kMaxFlushIovs];
            size_t n = 0;
            size_t offered = 0;
            for (const OutFrame& f : c.write_q) {
                if (n == kMaxFlushIovs) break;
                size_t skip = n == 0 ? c.write_off : 0;
                iovs[n] = std::span<const uint8_t>(
                    f.buf.data() + f.off + skip, f.len - skip);
                offered += iovs[n].size();
                ++n;
            }
            auto wrote = transport->write_batch(
                c.h,
                std::span<const std::span<const uint8_t>>(iovs, n));
            if (!wrote.is_ok()) {
                if (wrote.status().code() ==
                    StatusCode::kUnavailable) {
                    update_write_interest(c, true);
                } else if (c.closing) {
                    // The goodbye will never make it: stop trying.
                    finish_close(c);
                } else {
                    // Injected socket-io fault or a dead peer: the
                    // connection is sick either way.
                    teardown(c, /*sick=*/true,
                             wrote.status().message());
                }
                return progressed;
            }
            progressed = progressed || wrote.value() > 0;
            size_t remaining = wrote.value();
            size_t completed = 0;
            while (remaining > 0) {
                OutFrame& front = c.write_q.front();
                size_t left = front.len - c.write_off;
                if (remaining >= left) {
                    remaining -= left;
                    c.write_q.pop_front();
                    c.write_off = 0;
                    ++completed;
                } else {
                    c.write_off += remaining;
                    remaining = 0;
                }
            }
            metrics::observe(
                metrics::Histogram::kNetWritevFramesPerCall,
                completed);
            if (completed > 0) sim::cv_notify_all(space_cv);
            if (wrote.value() < offered) {
                // Partial acceptance: the socket is (about to be)
                // full — register interest and come back on the
                // writable event.
                update_write_interest(c, true);
                return progressed;
            }
        }
        if (!c.dead) {
            if (c.closing) {
                if (c.write_q.empty()) finish_close(c);
                return progressed;
            }
            update_write_interest(c, false);
            update_read_interest(c);
            if (c.draining && settled(c)) {
                teardown(c, /*sick=*/false, "");
            }
        }
        return progressed;
    }

    /**
     * mu held, IO thread.  Submits one shard's pending group.  On
     * success the group's vector moves into the engine and the ledger
     * admits its packets; on backpressure the group parks (pausing
     * reads); on engine shutdown every packet is answered with an
     * error frame (nothing entered the ledger).
     */
    void submit_shard(Conn& c, size_t shard) {
        conc::PipeBatch& group = c.pending[shard];
        size_t count = group.packets.size();
        if (count == 0) return;
        Status st = engine->try_submit(shard, std::move(group));
        if (st.is_ok()) {
            generated.fetch_add(count, std::memory_order_relaxed);
            c.inflight += count;
            inflight_total.fetch_add(count,
                                     std::memory_order_relaxed);
            group = conc::PipeBatch{};
            return;
        }
        if (st.code() == StatusCode::kUnavailable) {
            // Engine backpressure: park the group and stop reading
            // this socket until the shard drains.  The test hook
            // reintroduces the PR-6 overwrite bug: a second
            // backpressured group for the same shard replaces the
            // first, silently losing its packets.
            if (hooks.parked_overwrite_bug) {
                for (auto& [ps, pb] : c.parked) {
                    if (ps == shard) {
                        conc::recycle_packet_vec(
                            std::move(pb.packets));
                        pb = std::move(group);
                        group = conc::PipeBatch{};
                        update_read_interest(c);
                        return;
                    }
                }
            }
            c.parked.emplace_back(shard, std::move(group));
            group = conc::PipeBatch{};
            update_read_interest(c);
            return;
        }
        // kCancelled: the engine is shutting down.
        for (const conc::PipePacket& p : group.packets) {
            (void)enqueue_error(c, p.flow & kClientFlowMask,
                                "server stopping");
        }
        conc::recycle_packet_vec(std::move(group.packets));
        group = conc::PipeBatch{};
    }

    /** mu held, IO thread.  Submits every group this pass filled. */
    void submit_pending(Conn& c) {
        for (size_t shard = 0; shard < c.pending.size(); ++shard) {
            if (c.dead) return;
            submit_shard(c, shard);
        }
    }

    /** IO thread, mu held.  Retries engine-backpressured groups. */
    bool retry_parked() {
        bool progressed = false;
        for (auto& [id, cp] : conns) {
            Conn& c = *cp;
            if (c.parked.empty() || c.dead) continue;
            for (size_t i = 0; i < c.parked.size();) {
                auto& [shard, batch] = c.parked[i];
                size_t count = batch.packets.size();
                Status st = engine->try_submit(shard,
                                               std::move(batch));
                if (st.is_ok()) {
                    generated.fetch_add(count,
                                        std::memory_order_relaxed);
                    c.inflight += count;
                    inflight_total.fetch_add(
                        count, std::memory_order_relaxed);
                    c.parked.erase(c.parked.begin() +
                                   static_cast<long>(i));
                    progressed = true;
                } else if (st.code() == StatusCode::kCancelled) {
                    for (const conc::PipePacket& p : batch.packets) {
                        (void)enqueue_error(c,
                                            p.flow & kClientFlowMask,
                                            "server stopping");
                    }
                    conc::recycle_packet_vec(
                        std::move(batch.packets));
                    c.parked.erase(c.parked.begin() +
                                   static_cast<long>(i));
                } else {
                    // kUnavailable: stay parked, reading stays paused.
                    ++i;
                }
            }
            if (c.parked.empty()) update_read_interest(c);
        }
        return progressed;
    }

    /** IO thread, mu held.  One decoded frame view from @p c.  The
     *  payload is borrowed from the decoder and fully consumed here
     *  (copied into the packet's inline wire image or answered). */
    void handle_frame(Conn& c, const FrameView& frame) {
        metrics::count(metrics::Counter::kNetFramesIn);
        trace::emit(trace::Event::kNetFrameIn, c.id,
                    static_cast<uint64_t>(frame.type));
        if (frame.type != FrameType::kData) {
            protocol_errors.fetch_add(1, std::memory_order_relaxed);
            metrics::count(metrics::Counter::kNetRejects);
            if (!enqueue_error(
                    c, frame.flow,
                    str_format("unexpected %s frame",
                               frame_type_name(frame.type)))) {
                teardown(c, /*sick=*/true, "");
            }
            return;
        }
        if (frame.payload.size() != conc::kPipeWireBytes) {
            protocol_errors.fetch_add(1, std::memory_order_relaxed);
            metrics::count(metrics::Counter::kNetRejects);
            if (!enqueue_error(
                    c, frame.flow,
                    str_format("data payload %zu bytes (want %zu)",
                               frame.payload.size(),
                               conc::kPipeWireBytes))) {
                teardown(c, /*sick=*/true, "");
            }
            return;
        }
        frames_in.fetch_add(1, std::memory_order_relaxed);
        if (max_frames_reached()) {
            edge_rejects.fetch_add(1, std::memory_order_relaxed);
            metrics::count(metrics::Counter::kNetRejects);
            if (!enqueue_error(c, frame.flow, "server draining")) {
                teardown(c, /*sick=*/true, "");
            }
            return;
        }

        uint32_t flow = (c.id << 16) | (frame.flow & kClientFlowMask);
        size_t shard = engine->shard_for(flow);
        if (engine->shard_sick(shard)) {
            edge_rejects.fetch_add(1, std::memory_order_relaxed);
            metrics::count(metrics::Counter::kNetRejects);
            if (!enqueue_error(c, frame.flow, "shard sick")) {
                teardown(c, /*sick=*/true, "");
            }
            return;
        }

        if (c.pending.empty()) {
            c.pending.resize(engine->shard_count());
        }
        conc::PipeBatch& group = c.pending[shard];
        if (group.packets.capacity() == 0) {
            group.packets =
                conc::acquire_packet_vec(config.batch_packets);
        }
        group.packets.emplace_back();
        conc::PipePacket& packet = group.packets.back();
        std::memcpy(packet.wire.data(), frame.payload.data(),
                    conc::kPipeWireBytes);
        metrics::count(metrics::Counter::kNetBytesCopied,
                       conc::kPipeWireBytes);
        packet.flow = flow;
        packet.ingress_ns = now_ns();
        uint64_t deadline_ms = frame.deadline_ms != 0
                                   ? frame.deadline_ms
                                   : config.deadline_ms;
        if (deadline_ms != 0) {
            uint64_t deadline_ns =
                now_ns() + deadline_ms * 1000000ull;
            if (group.deadline_ns == 0 ||
                deadline_ns < group.deadline_ns) {
                group.deadline_ns = deadline_ns;
            }
        }
        if (group.packets.size() >=
            std::max<size_t>(config.batch_packets, 1)) {
            submit_shard(c, shard);
        }
    }

    /**
     * IO thread, mu held.  Decodes buffered bytes into frames until
     * the buffer runs dry or the connection pauses (parked group /
     * full write queue), then submits everything the pass grouped —
     * one engine hand-off per shard per read, not per frame.  Also
     * called from the tick loop: a paused connection's backlog lives
     * in the decoder, not the kernel, so unpausing alone would never
     * deliver a read event for it.
     *
     * The park state is checked on its own, not just via paused: a
     * draining connection never pauses (update_read_interest ignores
     * it — there is no read interest left to withdraw), and decoding
     * past a parked group would pile more packets behind a shard that
     * already refused them.
     */
    bool drain_frames(Conn& c) {
        bool progressed = false;
        // The hooks escape reverts the PR-6 guard for the simulation
        // fixture that reproduces the parked-batch overwrite.
        while (!c.dead && !c.closing && !c.paused &&
               (c.parked.empty() || hooks.parked_overwrite_bug)) {
            auto next = c.decoder.next_view();
            if (!next.is_ok()) {
                protocol_errors.fetch_add(1,
                                          std::memory_order_relaxed);
                metrics::count(metrics::Counter::kNetRejects);
                teardown(c, /*sick=*/true, next.status().message());
                return progressed;
            }
            if (!next.value().has_value()) break;
            progressed = true;
            handle_frame(c, *next.value());
            update_read_interest(c);
        }
        if (!c.dead && !c.closing) {
            submit_pending(c);
            update_read_interest(c);
        }
        return progressed;
    }

    /** IO thread, mu held.  Drains readable bytes + complete frames.
     *  Reads land directly in the decoder's pooled slab — no stack
     *  bounce buffer, no feed() copy. */
    bool handle_readable(Conn& c) {
        bool progressed = false;
        while (!c.dead && !c.paused && !c.draining && !c.closing) {
            auto room = c.decoder.tail(kReadChunk);
            if (!room.is_ok()) {
                // Pool refill hit the injected allocation fault.
                teardown(c, /*sick=*/true, room.status().message());
                return progressed;
            }
            auto got = transport->read(c.h, room.value());
            if (!got.is_ok()) {
                if (got.status().code() == StatusCode::kUnavailable) {
                    break;  // socket drained
                }
                teardown(c, /*sick=*/true, got.status().message());
                return progressed;
            }
            if (got.value().eof) {
                c.draining = true;
                // Withdraw read interest now: a half-closed socket
                // stays level-triggered readable forever, so polling
                // it again buys nothing and busy-spins the loop until
                // the drain settles.
                (void)transport->modify(c.h, /*want_read=*/false,
                                        c.want_write);
                if (settled(c)) teardown(c, /*sick=*/false, "");
                return progressed;
            }
            progressed = true;
            c.decoder.commit(got.value().bytes);
            progressed = drain_frames(c) || progressed;
        }
        return progressed;
    }

    /** mu held.  Nothing owed: no packets in flight, no answers or
     *  requests still buffered, no un-submitted groups. */
    bool settled(const Conn& c) const {
        if (c.inflight != 0 || !c.write_q.empty() ||
            !c.parked.empty() || c.decoder.buffered() != 0) {
            return false;
        }
        for (const conc::PipeBatch& g : c.pending) {
            if (!g.packets.empty()) return false;
        }
        return true;
    }

    /** mu held, IO thread.  Closes one refusal goodbye's handle. */
    void close_bye(std::map<int, PendingBye>::iterator it) {
        (void)transport->remove(it->first);
        transport->close(it->first);
        byes.erase(it);
    }

    /** mu held, IO thread.  Pushes one refusal goodbye forward. */
    void flush_bye(std::map<int, PendingBye>::iterator it) {
        PendingBye& bye = it->second;
        std::span<const uint8_t> rest(bye.buf.data() + bye.off,
                                      bye.len - bye.off);
        auto wrote = transport->write(it->first, rest);
        if (!wrote.is_ok()) {
            if (wrote.status().code() == StatusCode::kUnavailable) {
                return;  // writable event will come back
            }
            close_bye(it);
            return;
        }
        bye.off += wrote.value();
        if (bye.off >= bye.len) close_bye(it);
    }

    /**
     * IO thread, takes mu.  Accepts until the listener is dry.
     * Returns false when an injected accept fault should crash the
     * loop body (the supervisor owns what happens next).
     */
    bool accept_ready(bool& progressed) {
        while (true) {
            auto conn_h = transport->accept();
            if (!conn_h.is_ok()) {
                if (conn_h.status().code() ==
                    StatusCode::kUnavailable) {
                    return true;
                }
                // Injected socket-io fault (or a real accept
                // failure): this is a listener-level crash.
                return false;
            }
            progressed = true;
            std::lock_guard<std::mutex> lock(mu);
            bool id_available =
                !free_ids.empty() || next_id <= 0xffff;
            if (conns.size() >= serve.max_connections ||
                max_frames_reached() || !id_available) {
                refused.fetch_add(1, std::memory_order_relaxed);
                metrics::count(metrics::Counter::kNetRejects);
                // The goodbye drains through the event loop like any
                // other frame (a fire-and-forget write could truncate
                // it); the handle rides in byes until it finishes or
                // the stall budget expires.
                std::string reason =
                    conns.size() >= serve.max_connections
                        ? "connection limit reached"
                    : !id_available
                        ? "connection id space exhausted"
                        : "server draining";
                size_t need =
                    encoded_frame_size(reason.size());
                auto slab = pool::frame_pool().acquire(need);
                if (!slab.is_ok()) {
                    transport->close(conn_h.value());
                    continue;
                }
                PendingBye bye;
                bye.buf = std::move(slab).take();
                bye.len = need;
                bye.deadline_ns =
                    now_ns() + serve.write_stall_ms * 1000000ull;
                encode_frame_into(FrameType::kError, 0, 0,
                                  text_payload(reason),
                                  bye.buf.span().first(need));
                int h = conn_h.value();
                (void)transport->add(h, /*want_read=*/false,
                                     /*want_write=*/true);
                auto [it, inserted] = byes.emplace(h, std::move(bye));
                if (inserted) flush_bye(it);
                continue;
            }
            auto conn = std::make_unique<Conn>();
            conn->h = conn_h.value();
            if (!free_ids.empty()) {
                conn->id = free_ids.back();
                free_ids.pop_back();
            } else {
                conn->id = next_id++;
            }
            uint32_t id = conn->id;
            (void)transport->add(conn->h, /*want_read=*/true,
                                 /*want_write=*/false);
            by_h[conn->h] = conn.get();
            conns[id] = std::move(conn);
            accepted.fetch_add(1, std::memory_order_relaxed);
            metrics::count(metrics::Counter::kNetAccepts);
            metrics::gauge_add(metrics::Gauge::kNetConnections);
            trace::emit(trace::Event::kNetAccept, id);
        }
    }

    /** The supervised IO-loop body (one incarnation). */
    conc::WorkerExit io_body(conc::WorkerContext& ctx) {
        std::vector<PollEvent> events;
        while (!ctx.stop_requested() &&
               !stopping.load(std::memory_order_acquire)) {
            // Hand-off point (no locks held): an IO loop kept hot by
            // level-triggered readiness must not starve the other
            // simulated threads of the run token.
            sim::maybe_yield();
            bool progressed = false;
            {
                std::lock_guard<std::mutex> lock(mu);
                progressed = retry_parked() || progressed;
                for (auto& [id, c] : conns) {
                    if (!c->dead && c->sick && !c->closing) {
                        // The sink marked it: its reader stalled past
                        // the write budget.
                        teardown(*c, /*sick=*/true, "write stall");
                        continue;
                    }
                    if (!c->dead && c->closing &&
                        now_ns() > c->close_deadline_ns) {
                        // Goodbye drain budget exhausted.
                        finish_close(*c);
                        continue;
                    }
                    // Frames stranded in the decoder while the
                    // connection was paused (no read event will ever
                    // re-announce them).
                    if (!c->dead && !c->closing && !c->paused &&
                        c->decoder.buffered() > 0) {
                        progressed = drain_frames(*c) || progressed;
                    }
                    if (!c->dead && !c->write_q.empty()) {
                        progressed = flush_conn(*c) || progressed;
                    }
                    if (!c->dead && !c->closing && c->draining &&
                        settled(*c)) {
                        teardown(*c, /*sick=*/false, "");
                    }
                }
                for (auto it = byes.begin(); it != byes.end();) {
                    auto cur = it++;
                    if (now_ns() > cur->second.deadline_ns) {
                        close_bye(cur);
                    }
                }
                reap_dead();
                check_done();
            }
            events.clear();
            auto waited = transport->wait(/*timeout_ms=*/5, events);
            if (!waited.is_ok()) return conc::WorkerExit::kCrash;
            for (const PollEvent& ev : events) {
                if (ev.fd == listener_h) {
                    if (ev.readable && !accept_ready(progressed)) {
                        return conc::WorkerExit::kCrash;
                    }
                    continue;
                }
                std::lock_guard<std::mutex> lock(mu);
                auto it = by_h.find(ev.fd);
                if (it == by_h.end()) {
                    auto bit = byes.find(ev.fd);
                    if (bit != byes.end()) {
                        if (ev.error) {
                            close_bye(bit);
                        } else if (ev.writable) {
                            flush_bye(bit);
                        }
                    }
                    continue;
                }
                Conn& c = *it->second;
                if (ev.error) {
                    if (c.closing) {
                        finish_close(c);
                    } else {
                        teardown(c, /*sick=*/!c.draining,
                                 "socket error");
                    }
                    continue;
                }
                if (ev.writable) progressed = flush_conn(c) || progressed;
                if (ev.readable && !c.dead) {
                    progressed = handle_readable(c) || progressed;
                }
            }
            if (progressed) ctx.note_progress();
        }
        return conc::WorkerExit::kDone;
    }

    /** IO-loop thread entry: the body under supervision. */
    void io_main() {
        conc::WorkerHooks worker_hooks;
        worker_hooks.body = [this](conc::WorkerContext& ctx) {
            return io_body(ctx);
        };
        worker_hooks.input_closed = [this] {
            return stopping.load(std::memory_order_acquire);
        };
        worker_hooks.drain_one = [this] {
            // Open breaker: answer one parked group with error
            // frames so its originators are not left hanging (the
            // frames never entered the ledger — they were never
            // submitted).
            std::lock_guard<std::mutex> lock(mu);
            for (auto& [id, c] : conns) {
                if (c->parked.empty() || c->dead) continue;
                auto& [shard, batch] = c->parked.front();
                for (const conc::PipePacket& p : batch.packets) {
                    edge_rejects.fetch_add(1,
                                           std::memory_order_relaxed);
                    metrics::count(metrics::Counter::kNetRejects);
                    (void)enqueue_error(*c, p.flow & kClientFlowMask,
                                        "listener down");
                }
                conc::recycle_packet_vec(std::move(batch.packets));
                c->parked.erase(c->parked.begin());
                return true;
            }
            return false;
        };
        supervisor.supervise(/*worker_id=*/0, worker_hooks);
    }

    // --- sink thread ------------------------------------------------------

    /**
     * Any engine thread.  A submitted packet was lost inside the
     * engine — deadline-shed or fault-dropped — and will never reach
     * the sink: settle the owing connection's inflight so settled()
     * and check_done() stop waiting for an answer that cannot come
     * (a draining connection with a lost packet would otherwise stay
     * a zombie until stop()).
     */
    void note_engine_loss(uint32_t flow) {
        std::lock_guard<std::mutex> lock(mu);
        inflight_total.fetch_sub(1, std::memory_order_relaxed);
        auto it = conns.find(flow >> 16);
        if (it != conns.end() && it->second->inflight > 0) {
            it->second->inflight -= 1;
        }
        check_done();
        // A draining connection may just have settled; only the IO
        // thread owns teardown (poller state), so poke it.
        wake_io();
    }

    /** Sink thread.  Routes one processed packet to its connection.
     *  Returns true when an answer was queued (the caller wakes the
     *  IO thread once per batch, not once per packet). */
    bool route_packet(const conc::PipePacket& packet) {
        uint32_t conn_id = packet.flow >> 16;
        uint32_t client_flow = packet.flow & kClientFlowMask;
        std::unique_lock<std::mutex> lock(mu);
        inflight_total.fetch_sub(1, std::memory_order_relaxed);
        auto it = conns.find(conn_id);
        Conn* c = it != conns.end() ? it->second.get() : nullptr;
        if (c != nullptr && c->inflight > 0) c->inflight -= 1;
        if (c == nullptr || c->dead || c->sick) {
            // Orphan: its connection died before the answer came out.
            rejected.fetch_add(1, std::memory_order_relaxed);
            wake_io();
            return false;
        }
        if (c->write_q.size() >= serve.write_queue_frames) {
            // Bounded queue is full: wait for the reader, up to the
            // stall budget; a reader this slow is a sick connection.
            // The wait releases mu, so the waiter count pins c: the
            // IO thread may tear the connection down mid-wait (dead
            // wakes the predicate) but reap_dead cannot free it.
            wake_io();
            c->waiters += 1;
            bool roomy = sim::cv_wait_for(
                space_cv, lock,
                std::chrono::milliseconds(serve.write_stall_ms),
                [&] {
                    return c->dead || c->sick ||
                           c->write_q.size() <
                               serve.write_queue_frames ||
                           stopping.load(std::memory_order_acquire);
                });
            c->waiters -= 1;
            if (!roomy || c->dead || c->sick ||
                c->write_q.size() >= serve.write_queue_frames) {
                c->sick = true;
                rejected.fetch_add(1, std::memory_order_relaxed);
                wake_io();
                return false;
            }
        }
        bool is_drop = packet.bucket == conc::kPipeDropBucket;
        // Answer payload: the wire image, plus the route bucket
        // (big-endian, sign-extended) on responses.
        uint8_t payload[conc::kPipeWireBytes + 8];
        std::memcpy(payload, packet.wire.data(),
                    conc::kPipeWireBytes);
        size_t len = conc::kPipeWireBytes;
        if (!is_drop) {
            uint64_t bucket = static_cast<uint64_t>(packet.bucket);
            for (int shift = 56; shift >= 0; shift -= 8) {
                payload[len++] =
                    static_cast<uint8_t>(bucket >> shift);
            }
        }
        if (!enqueue(*c,
                     is_drop ? FrameType::kDrop
                             : FrameType::kResponse,
                     client_flow,
                     std::span<const uint8_t>(payload, len),
                     is_drop ? kDropped : kDelivered)) {
            // Pool refill fault: this answer cannot be built.  The
            // connection is sick; the packet settles as rejected.
            c->sick = true;
            rejected.fetch_add(1, std::memory_order_relaxed);
            wake_io();
            return false;
        }
        if (is_drop) {
            dropped.fetch_add(1, std::memory_order_relaxed);
        } else {
            delivered.fetch_add(1, std::memory_order_relaxed);
        }
        if (packet.ingress_ns != 0) {
            metrics::observe(metrics::Histogram::kNetFrameLatencyNs,
                             now_ns() - packet.ingress_ns);
        }
        trace::emit(trace::Event::kNetFrameOut, conn_id,
                    is_drop ? static_cast<uint64_t>(FrameType::kDrop)
                            : static_cast<uint64_t>(
                                  FrameType::kResponse));
        return true;
    }

    void sink_main() {
        conc::Channel<conc::PipeBatch>& sink = engine->sink_channel();
        while (true) {
            auto got = sink.recv();
            if (!got.is_ok()) {
                if (got.status().code() == StatusCode::kCancelled) {
                    break;  // engine drained and closed
                }
                continue;  // injected channel fault: keep draining
            }
            bool queued = false;
            for (const conc::PipePacket& packet :
                 got.value().packets) {
                queued = route_packet(packet) || queued;
            }
            conc::recycle_packet_vec(
                std::move(got.value().packets));
            // One wakeup per sink batch: the IO thread flushes every
            // answer this batch queued in one pass.
            if (queued) wake_io();
        }
    }
};

NetServer::NetServer(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

NetServer::~NetServer() { stop(); }

Result<std::unique_ptr<NetServer>>
NetServer::create(const options::ServeSpec& serve,
                  conc::PipelineConfig pipeline)
{
    return create(serve, std::move(pipeline), nullptr);
}

Result<std::unique_ptr<NetServer>>
NetServer::create(const options::ServeSpec& serve,
                  conc::PipelineConfig pipeline,
                  std::unique_ptr<Transport> transport)
{
    BITC_RETURN_IF_ERROR(serve.validate());
    // Every data frame's originator must hear an answer: validate
    // rejects ride to the sink as kDrop frames instead of vanishing
    // into the in-process drop ledger.
    pipeline.forward_drops = true;
    auto impl = std::make_unique<Impl>(serve, pipeline);
    impl->transport = std::move(transport);
    // Engine losses must settle the owing connection's ledger; the
    // raw Impl pointer is safe because stop() joins the engine's
    // workers before the Impl can die.
    pipeline.on_loss = [im = impl.get()](uint32_t flow) {
        im->note_engine_loss(flow);
    };
    BITC_ASSIGN_OR_RETURN(impl->engine,
                          conc::PipelineEngine::create(pipeline));
    return std::unique_ptr<NetServer>(new NetServer(std::move(impl)));
}

Status
NetServer::start()
{
    Impl& im = *impl_;
    if (im.started) {
        return failed_precondition_error("server already started");
    }
    if (im.transport == nullptr) {
        BITC_ASSIGN_OR_RETURN(im.transport, make_real_transport());
    }
    BITC_ASSIGN_OR_RETURN(
        im.listener_h,
        im.transport->listen(im.serve.host, im.serve.port));
    BITC_ASSIGN_OR_RETURN(im.bound_port,
                          im.transport->listen_port());
    BITC_RETURN_IF_ERROR(
        im.transport->add(im.listener_h, true, false));

    im.engine->start();
    im.started = true;
    im.sink_thread =
        sim::spawn_thread("net-sink", [&im] { im.sink_main(); });
    im.io_thread =
        sim::spawn_thread("net-io", [&im] { im.io_main(); });
    return Status::ok();
}

void
NetServer::set_test_hooks(const NetServerTestHooks& hooks)
{
    impl_->hooks = hooks;
}

uint16_t
NetServer::port() const
{
    return impl_->bound_port;
}

const options::ServeSpec&
NetServer::serve_spec() const
{
    return impl_->serve;
}

void
NetServer::wait_done()
{
    Impl& im = *impl_;
    std::unique_lock<std::mutex> lock(im.mu);
    sim::cv_wait(im.done_cv, lock, [&] {
        return im.done || im.stopped ||
               im.stopping.load(std::memory_order_acquire);
    });
}

void
NetServer::stop()
{
    Impl& im = *impl_;
    {
        std::lock_guard<std::mutex> lock(im.mu);
        if (!im.started || im.stopped) return;
        im.stopped = true;
    }
    im.stopping.store(true, std::memory_order_release);
    im.wake_io();
    sim::cv_notify_all(im.space_cv);
    im.supervisor.request_shutdown();
    if (im.io_thread.joinable()) sim::join_thread(im.io_thread);
    im.engine->close_input();
    im.engine->finish();
    if (im.sink_thread.joinable()) sim::join_thread(im.sink_thread);

    // Final sweep: whatever never left a write queue is rejected.
    std::lock_guard<std::mutex> lock(im.mu);
    for (auto& [id, c] : im.conns) {
        if (c->dead) continue;
        size_t skip = c->write_off > 0 ? 1 : 0;
        size_t i = 0;
        for (const Impl::OutFrame& f : c->write_q) {
            if (i++ < skip) continue;
            if (f.tag == Impl::kDelivered) {
                im.delivered.fetch_sub(1, std::memory_order_relaxed);
                im.rejected.fetch_add(1, std::memory_order_relaxed);
            } else if (f.tag == Impl::kDropped) {
                im.dropped.fetch_sub(1, std::memory_order_relaxed);
                im.rejected.fetch_add(1, std::memory_order_relaxed);
            }
        }
        c->write_q.clear();
        im.clear_unsubmitted(*c);
        im.transport->close(c->h);
        c->h = -1;
        c->dead = true;
        im.teardowns_clean.fetch_add(1, std::memory_order_relaxed);
        metrics::gauge_sub(metrics::Gauge::kNetConnections);
        trace::emit(trace::Event::kNetConnClose, c->id, 0);
    }
    im.conns.clear();
    im.by_h.clear();
    for (auto& [h, bye] : im.byes) {
        im.transport->close(h);
    }
    im.byes.clear();
    sim::cv_notify_all(im.done_cv);
}

ServerStats
NetServer::stats() const
{
    const Impl& im = *impl_;
    ServerStats out;
    out.accepted = im.accepted.load(std::memory_order_relaxed);
    out.refused = im.refused.load(std::memory_order_relaxed);
    out.frames_in = im.frames_in.load(std::memory_order_relaxed);
    out.frames_out = im.frames_out.load(std::memory_order_relaxed);
    out.protocol_errors =
        im.protocol_errors.load(std::memory_order_relaxed);
    out.edge_rejects =
        im.edge_rejects.load(std::memory_order_relaxed);
    out.teardowns_sick =
        im.teardowns_sick.load(std::memory_order_relaxed);
    out.teardowns_clean =
        im.teardowns_clean.load(std::memory_order_relaxed);
    out.listener_crashes = im.supervisor.crashes();
    out.listener_restarts = im.supervisor.restarts();
    out.breaker_opens = im.supervisor.breaker_opens();
    out.generated = im.generated.load(std::memory_order_relaxed);
    out.delivered = im.delivered.load(std::memory_order_relaxed);
    out.dropped = im.dropped.load(std::memory_order_relaxed);
    out.fault_dropped = im.engine->fault_dropped();
    out.shed = im.engine->shed();
    out.rejected = im.rejected.load(std::memory_order_relaxed);
    return out;
}

}  // namespace bitc::net
