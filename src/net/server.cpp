#include "net/server.hpp"

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "net/transport.hpp"
#include "net/wire.hpp"
#include "support/metrics.hpp"
#include "support/sim.hpp"
#include "support/stats.hpp"
#include "support/string_util.hpp"
#include "support/trace.hpp"

namespace bitc::net {

namespace {

/** Flow ids are 16-bit on this transport; the top half routes. */
constexpr uint32_t kClientFlowMask = 0xffffu;

/** An error frame for @p flow carrying @p text. */
std::vector<uint8_t>
make_error_frame(uint32_t flow, const std::string& text)
{
    Frame frame;
    frame.type = FrameType::kError;
    frame.flow = flow;
    frame.payload.assign(text.begin(), text.end());
    return encode_frame(frame);
}

}  // namespace

std::string
ServerStats::to_string() const
{
    return str_format(
        "net: %llu conns (%llu refused), %llu frames in, %llu out, "
        "%llu protocol errors, %llu edge rejects\n"
        "     teardowns: %llu sick, %llu clean; listener: %llu "
        "crashes, %llu restarts, %llu breaker opens\n"
        "     ledger: %llu generated = %llu delivered + %llu dropped "
        "+ %llu fault-dropped + %llu shed + %llu rejected (%s)\n",
        static_cast<unsigned long long>(accepted),
        static_cast<unsigned long long>(refused),
        static_cast<unsigned long long>(frames_in),
        static_cast<unsigned long long>(frames_out),
        static_cast<unsigned long long>(protocol_errors),
        static_cast<unsigned long long>(edge_rejects),
        static_cast<unsigned long long>(teardowns_sick),
        static_cast<unsigned long long>(teardowns_clean),
        static_cast<unsigned long long>(listener_crashes),
        static_cast<unsigned long long>(listener_restarts),
        static_cast<unsigned long long>(breaker_opens),
        static_cast<unsigned long long>(generated),
        static_cast<unsigned long long>(delivered),
        static_cast<unsigned long long>(dropped),
        static_cast<unsigned long long>(fault_dropped),
        static_cast<unsigned long long>(shed),
        static_cast<unsigned long long>(rejected),
        conserved() ? "conserved" : "NOT CONSERVED");
}

/**
 * All server state.  Threading contract:
 *
 *  - the IO thread owns the poller, every fd, and each connection's
 *    decoder/parked batch (never touched by anyone else);
 *  - mu guards the connection table, the per-connection write queues
 *    and liveness flags — the only state the sink thread reaches;
 *  - the ledger counters are atomics so stats() can read mid-run.
 */
struct NetServer::Impl {
    /** How one queued answer frame is accounted, for reclassification
     *  when its connection dies before the bytes leave. */
    enum LedgerTag : uint8_t { kNone = 0, kDelivered, kDropped };

    struct OutFrame {
        std::vector<uint8_t> bytes;
        LedgerTag tag = kNone;
    };

    struct Conn {
        int h = -1;  ///< Transport handle; -1 once dead.
        uint32_t id = 0;
        FrameDecoder decoder;

        // IO-thread-only: one batch the engine backpressured.
        bool parked = false;
        size_t parked_shard = 0;
        conc::PipeBatch parked_batch;

        bool paused = false;    ///< Read interest withdrawn.
        bool want_write = false;///< Write interest registered.
        bool draining = false;  ///< Peer EOF'd; answers still owed.
        bool sick = false;      ///< Marked for teardown.
        bool dead = false;      ///< fd closed; zombie until answered.

        uint64_t inflight = 0;  ///< Packets in the engine (mu).
        /**
         * Sink waits parked on this connection's write queue (mu).
         * A nonzero count pins the Conn against reap_dead: the sink
         * releases mu inside space_cv.wait_for while still holding a
         * raw pointer here, so teardown may mark the connection dead
         * mid-wait but must never let it be freed.
         */
        uint64_t waiters = 0;
        size_t write_off = 0;   ///< Bytes of the front frame written.
        std::deque<OutFrame> write_q;  ///< mu.
    };

    Impl(options::ServeSpec s, conc::PipelineConfig c)
        : serve(std::move(s)), config(c), supervisor(c.supervision) {}

    options::ServeSpec serve;
    conc::PipelineConfig config;
    std::unique_ptr<conc::PipelineEngine> engine;
    conc::Supervisor supervisor;
    NetServerTestHooks hooks;

    /** The network seam: real sockets or the in-memory simulation. */
    std::unique_ptr<Transport> transport;
    int listener_h = -1;
    uint16_t bound_port = 0;

    std::thread io_thread;
    std::thread sink_thread;

    mutable std::mutex mu;
    std::condition_variable space_cv;  ///< Write-queue space freed.
    std::condition_variable done_cv;   ///< max_frames drained / stop.
    std::map<uint32_t, std::unique_ptr<Conn>> conns;
    std::map<int, Conn*> by_h;  ///< Transport handle -> connection.
    uint32_t next_id = 1;
    /** Ids of reaped connections, ready for reuse (the wire flow
     *  field gives connection ids only 16 bits). */
    std::vector<uint32_t> free_ids;
    bool started = false;
    bool stopped = false;
    bool done = false;
    std::atomic<bool> stopping{false};

    std::atomic<uint64_t> accepted{0}, refused{0}, frames_in{0},
        frames_out{0}, protocol_errors{0}, edge_rejects{0},
        teardowns_sick{0}, teardowns_clean{0};
    std::atomic<uint64_t> generated{0}, delivered{0}, dropped{0},
        rejected{0};
    std::atomic<uint64_t> inflight_total{0};

    // --- helpers ---------------------------------------------------------

    void wake_io() { transport->wake(); }

    bool max_frames_reached() const {
        return serve.max_frames > 0 &&
               generated.load(std::memory_order_relaxed) >=
                   serve.max_frames;
    }

    /** mu held.  Answer frames ride the same bounded queue. */
    void enqueue(Conn& c, std::vector<uint8_t> bytes, LedgerTag tag) {
        c.write_q.push_back(OutFrame{std::move(bytes), tag});
        frames_out.fetch_add(1, std::memory_order_relaxed);
        metrics::count(metrics::Counter::kNetFramesOut);
    }

    /** mu held, IO thread.  Read interest tracks queue + park state. */
    void update_read_interest(Conn& c) {
        bool should_pause =
            c.parked || c.write_q.size() >= serve.write_queue_frames;
        if (c.dead || c.draining) return;
        if (should_pause == c.paused) return;
        c.paused = should_pause;
        (void)transport->modify(c.h, /*want_read=*/!c.paused,
                                /*want_write=*/c.want_write);
    }

    /** mu held, IO thread.  Registers/clears write interest. */
    void update_write_interest(Conn& c, bool want) {
        if (c.dead || want == c.want_write) return;
        c.want_write = want;
        (void)transport->modify(c.h,
                                /*want_read=*/!c.paused && !c.draining,
                                /*want_write=*/c.want_write);
    }

    /**
     * mu held, IO thread.  Tears a connection down.  Queued answers
     * that never left move from delivered/dropped to rejected; the
     * fd closes; the entry lingers as a zombie while the engine still
     * owes it packets (the sink rejects those as orphans).
     */
    void teardown(Conn& c, bool sick_teardown,
                  const std::string& reason) {
        if (c.dead) return;
        if (sick_teardown && !reason.empty()) {
            // Best-effort parting diagnostic; the socket may be gone.
            std::vector<uint8_t> bye = make_error_frame(0, reason);
            (void)transport->write(c.h, bye);
        }
        (void)transport->remove(c.h);
        by_h.erase(c.h);
        transport->close(c.h);
        c.h = -1;
        c.dead = true;
        c.sick = sick_teardown;
        // Reclassify undeliverable answers (skip a half-written front
        // frame: its bytes are on the wire and stay delivered).
        size_t skip = c.write_off > 0 ? 1 : 0;
        size_t i = 0;
        for (const OutFrame& f : c.write_q) {
            if (i++ < skip) continue;
            if (f.tag == kDelivered) {
                delivered.fetch_sub(1, std::memory_order_relaxed);
                rejected.fetch_add(1, std::memory_order_relaxed);
            } else if (f.tag == kDropped) {
                dropped.fetch_sub(1, std::memory_order_relaxed);
                rejected.fetch_add(1, std::memory_order_relaxed);
            }
        }
        c.write_q.clear();
        c.write_off = 0;
        c.parked = false;
        sim::cv_notify_all(space_cv);
        if (sick_teardown) {
            teardowns_sick.fetch_add(1, std::memory_order_relaxed);
            metrics::count(metrics::Counter::kNetConnTeardowns);
        } else {
            teardowns_clean.fetch_add(1, std::memory_order_relaxed);
        }
        metrics::gauge_sub(metrics::Gauge::kNetConnections);
        trace::emit(trace::Event::kNetConnClose, c.id,
                    sick_teardown ? 1 : 0);
    }

    /** mu held.  Erases zombies nothing references anymore — no
     *  engine packets owed, no sink wait parked on them — and
     *  recycles their ids for future accepts. */
    void reap_dead() {
        for (auto it = conns.begin(); it != conns.end();) {
            const Conn& c = *it->second;
            if (c.dead && c.inflight == 0 && c.waiters == 0) {
                free_ids.push_back(it->first);
                it = conns.erase(it);
            } else {
                ++it;
            }
        }
    }

    /** mu held.  max_frames done condition (see wait_done). */
    void check_done() {
        if (done || serve.max_frames == 0) return;
        if (!max_frames_reached()) return;
        // Engine losses settle inflight through note_engine_loss, so
        // zero means every admitted packet was answered or accounted.
        if (inflight_total.load(std::memory_order_relaxed) != 0) {
            return;
        }
        for (const auto& [id, c] : conns) {
            if (!c->write_q.empty()) return;
        }
        done = true;
        sim::cv_notify_all(done_cv);
    }

    // --- IO loop ---------------------------------------------------------

    /** IO thread, takes mu.  Flushes one connection's write queue. */
    bool flush_conn(Conn& c) {
        bool progressed = false;
        while (!c.dead && !c.write_q.empty()) {
            OutFrame& front = c.write_q.front();
            std::span<const uint8_t> rest(
                front.bytes.data() + c.write_off,
                front.bytes.size() - c.write_off);
            auto wrote = transport->write(c.h, rest);
            if (!wrote.is_ok()) {
                if (wrote.status().code() ==
                    StatusCode::kUnavailable) {
                    update_write_interest(c, true);
                } else {
                    // Injected socket-io fault or a dead peer: the
                    // connection is sick either way.
                    teardown(c, /*sick=*/true,
                             wrote.status().message());
                }
                return progressed;
            }
            progressed = progressed || wrote.value() > 0;
            c.write_off += wrote.value();
            if (c.write_off < front.bytes.size()) {
                update_write_interest(c, true);
                return progressed;
            }
            c.write_q.pop_front();
            c.write_off = 0;
            sim::cv_notify_all(space_cv);
        }
        if (!c.dead) {
            update_write_interest(c, false);
            update_read_interest(c);
            if (c.draining && settled(c)) {
                teardown(c, /*sick=*/false, "");
            }
        }
        return progressed;
    }

    /** IO thread, mu held.  Retries engine-backpressured batches. */
    bool retry_parked() {
        bool progressed = false;
        for (auto& [id, cp] : conns) {
            Conn& c = *cp;
            if (!c.parked || c.dead) continue;
            Status st =
                engine->try_submit(c.parked_shard, c.parked_batch);
            if (st.is_ok()) {
                generated.fetch_add(c.parked_batch.packets.size(),
                                    std::memory_order_relaxed);
                c.inflight += c.parked_batch.packets.size();
                inflight_total.fetch_add(
                    c.parked_batch.packets.size(),
                    std::memory_order_relaxed);
                c.parked = false;
                c.parked_batch.packets.clear();
                update_read_interest(c);
                progressed = true;
            } else if (st.code() == StatusCode::kCancelled) {
                uint32_t flow =
                    c.parked_batch.packets.empty()
                        ? 0
                        : c.parked_batch.packets[0].flow &
                              kClientFlowMask;
                enqueue(c, make_error_frame(flow, "server stopping"),
                        kNone);
                c.parked = false;
                c.parked_batch.packets.clear();
            }
            // kUnavailable: stay parked, reading stays paused.
        }
        return progressed;
    }

    /** IO thread, mu held.  One decoded frame from @p c. */
    void handle_frame(Conn& c, Frame&& frame) {
        metrics::count(metrics::Counter::kNetFramesIn);
        trace::emit(trace::Event::kNetFrameIn, c.id,
                    static_cast<uint64_t>(frame.type));
        if (frame.type != FrameType::kData) {
            protocol_errors.fetch_add(1, std::memory_order_relaxed);
            metrics::count(metrics::Counter::kNetRejects);
            enqueue(c,
                    make_error_frame(
                        frame.flow,
                        str_format("unexpected %s frame",
                                   frame_type_name(frame.type))),
                    kNone);
            return;
        }
        if (frame.payload.size() != conc::kPipeWireBytes) {
            protocol_errors.fetch_add(1, std::memory_order_relaxed);
            metrics::count(metrics::Counter::kNetRejects);
            enqueue(c,
                    make_error_frame(
                        frame.flow,
                        str_format("data payload %zu bytes (want %zu)",
                                   frame.payload.size(),
                                   conc::kPipeWireBytes)),
                    kNone);
            return;
        }
        frames_in.fetch_add(1, std::memory_order_relaxed);
        if (max_frames_reached()) {
            edge_rejects.fetch_add(1, std::memory_order_relaxed);
            metrics::count(metrics::Counter::kNetRejects);
            enqueue(c, make_error_frame(frame.flow, "server draining"),
                    kNone);
            return;
        }

        conc::PipePacket packet;
        std::memcpy(packet.wire.data(), frame.payload.data(),
                    conc::kPipeWireBytes);
        packet.flow = (c.id << 16) | (frame.flow & kClientFlowMask);
        packet.ingress_ns = now_ns();
        size_t shard = engine->shard_for(packet.flow);
        if (engine->shard_sick(shard)) {
            edge_rejects.fetch_add(1, std::memory_order_relaxed);
            metrics::count(metrics::Counter::kNetRejects);
            enqueue(c, make_error_frame(frame.flow, "shard sick"),
                    kNone);
            return;
        }

        conc::PipeBatch batch;
        uint64_t deadline_ms = frame.deadline_ms != 0
                                   ? frame.deadline_ms
                                   : config.deadline_ms;
        if (deadline_ms != 0) {
            batch.deadline_ns = now_ns() + deadline_ms * 1000000ull;
        }
        batch.packets.push_back(packet);

        Status st = engine->try_submit(shard, batch);
        if (st.is_ok()) {
            generated.fetch_add(1, std::memory_order_relaxed);
            c.inflight += 1;
            inflight_total.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        if (st.code() == StatusCode::kUnavailable) {
            // Engine backpressure: park the batch and stop reading
            // this socket until the shard drains.
            c.parked = true;
            c.parked_shard = shard;
            c.parked_batch = std::move(batch);
            update_read_interest(c);
            return;
        }
        enqueue(c, make_error_frame(frame.flow, "server stopping"),
                kNone);
    }

    /**
     * IO thread, mu held.  Decodes buffered bytes into frames until
     * the buffer runs dry or the connection pauses (parked batch /
     * full write queue).  Also called from the tick loop: a paused
     * connection's backlog lives in the decoder, not the kernel, so
     * unpausing alone would never deliver a read event for it.
     *
     * The park flag is checked on its own, not just via paused: a
     * draining connection never pauses (update_read_interest ignores
     * it — there is no read interest left to withdraw), and decoding
     * past a parked batch would let a second backpressured submit
     * overwrite it, silently losing the first packet.
     */
    bool drain_frames(Conn& c) {
        bool progressed = false;
        // The hooks escape reverts the PR-6 guard for the simulation
        // fixture that reproduces the parked-batch overwrite.
        while (!c.dead && !c.paused &&
               (!c.parked || hooks.parked_overwrite_bug)) {
            auto next = c.decoder.next();
            if (!next.is_ok()) {
                protocol_errors.fetch_add(1,
                                          std::memory_order_relaxed);
                metrics::count(metrics::Counter::kNetRejects);
                teardown(c, /*sick=*/true, next.status().message());
                return progressed;
            }
            if (!next.value().has_value()) break;
            progressed = true;
            handle_frame(c, std::move(*next.value()));
            update_read_interest(c);
        }
        return progressed;
    }

    /** IO thread, mu held.  Drains readable bytes + complete frames. */
    bool handle_readable(Conn& c) {
        bool progressed = false;
        uint8_t buf[4096];
        while (!c.dead && !c.paused && !c.draining) {
            auto got = transport->read(c.h, buf);
            if (!got.is_ok()) {
                if (got.status().code() == StatusCode::kUnavailable) {
                    break;  // socket drained
                }
                teardown(c, /*sick=*/true, got.status().message());
                return progressed;
            }
            if (got.value().eof) {
                c.draining = true;
                // Withdraw read interest now: a half-closed socket
                // stays level-triggered readable forever, so polling
                // it again buys nothing and busy-spins the loop until
                // the drain settles.
                (void)transport->modify(c.h, /*want_read=*/false,
                                        c.want_write);
                if (settled(c)) teardown(c, /*sick=*/false, "");
                return progressed;
            }
            progressed = true;
            c.decoder.feed(
                std::span<const uint8_t>(buf, got.value().bytes));
            progressed = drain_frames(c) || progressed;
        }
        return progressed;
    }

    /** mu held.  Nothing owed: no packets in flight, no answers or
     *  requests still buffered. */
    bool settled(const Conn& c) const {
        return c.inflight == 0 && c.write_q.empty() && !c.parked &&
               c.decoder.buffered() == 0;
    }

    /**
     * IO thread, takes mu.  Accepts until the listener is dry.
     * Returns false when an injected accept fault should crash the
     * loop body (the supervisor owns what happens next).
     */
    bool accept_ready(bool& progressed) {
        while (true) {
            auto conn_h = transport->accept();
            if (!conn_h.is_ok()) {
                if (conn_h.status().code() ==
                    StatusCode::kUnavailable) {
                    return true;
                }
                // Injected socket-io fault (or a real accept
                // failure): this is a listener-level crash.
                return false;
            }
            progressed = true;
            std::lock_guard<std::mutex> lock(mu);
            bool id_available =
                !free_ids.empty() || next_id <= 0xffff;
            if (conns.size() >= serve.max_connections ||
                max_frames_reached() || !id_available) {
                refused.fetch_add(1, std::memory_order_relaxed);
                metrics::count(metrics::Counter::kNetRejects);
                std::vector<uint8_t> bye = make_error_frame(
                    0, conns.size() >= serve.max_connections
                           ? "connection limit reached"
                       : !id_available
                           ? "connection id space exhausted"
                           : "server draining");
                (void)transport->write(conn_h.value(), bye);
                transport->close(conn_h.value());
                continue;
            }
            auto conn = std::make_unique<Conn>();
            conn->h = conn_h.value();
            if (!free_ids.empty()) {
                conn->id = free_ids.back();
                free_ids.pop_back();
            } else {
                conn->id = next_id++;
            }
            uint32_t id = conn->id;
            (void)transport->add(conn->h, /*want_read=*/true,
                                 /*want_write=*/false);
            by_h[conn->h] = conn.get();
            conns[id] = std::move(conn);
            accepted.fetch_add(1, std::memory_order_relaxed);
            metrics::count(metrics::Counter::kNetAccepts);
            metrics::gauge_add(metrics::Gauge::kNetConnections);
            trace::emit(trace::Event::kNetAccept, id);
        }
    }

    /** The supervised IO-loop body (one incarnation). */
    conc::WorkerExit io_body(conc::WorkerContext& ctx) {
        std::vector<PollEvent> events;
        while (!ctx.stop_requested() &&
               !stopping.load(std::memory_order_acquire)) {
            // Hand-off point (no locks held): an IO loop kept hot by
            // level-triggered readiness must not starve the other
            // simulated threads of the run token.
            sim::maybe_yield();
            bool progressed = false;
            {
                std::lock_guard<std::mutex> lock(mu);
                progressed = retry_parked() || progressed;
                for (auto& [id, c] : conns) {
                    if (!c->dead && c->sick) {
                        // The sink marked it: its reader stalled past
                        // the write budget.
                        teardown(*c, /*sick=*/true, "write stall");
                        continue;
                    }
                    // Frames stranded in the decoder while the
                    // connection was paused (no read event will ever
                    // re-announce them).
                    if (!c->dead && !c->paused &&
                        c->decoder.buffered() > 0) {
                        progressed = drain_frames(*c) || progressed;
                    }
                    if (!c->dead && !c->write_q.empty()) {
                        progressed = flush_conn(*c) || progressed;
                    }
                    if (!c->dead && c->draining && settled(*c)) {
                        teardown(*c, /*sick=*/false, "");
                    }
                }
                reap_dead();
                check_done();
            }
            events.clear();
            auto waited = transport->wait(/*timeout_ms=*/5, events);
            if (!waited.is_ok()) return conc::WorkerExit::kCrash;
            for (const PollEvent& ev : events) {
                if (ev.fd == listener_h) {
                    if (ev.readable && !accept_ready(progressed)) {
                        return conc::WorkerExit::kCrash;
                    }
                    continue;
                }
                std::lock_guard<std::mutex> lock(mu);
                auto it = by_h.find(ev.fd);
                if (it == by_h.end()) continue;
                Conn& c = *it->second;
                if (ev.error) {
                    teardown(c, /*sick=*/!c.draining, "socket error");
                    continue;
                }
                if (ev.writable) progressed = flush_conn(c) || progressed;
                if (ev.readable && !c.dead) {
                    progressed = handle_readable(c) || progressed;
                }
            }
            if (progressed) ctx.note_progress();
        }
        return conc::WorkerExit::kDone;
    }

    /** IO-loop thread entry: the body under supervision. */
    void io_main() {
        conc::WorkerHooks hooks;
        hooks.body = [this](conc::WorkerContext& ctx) {
            return io_body(ctx);
        };
        hooks.input_closed = [this] {
            return stopping.load(std::memory_order_acquire);
        };
        hooks.drain_one = [this] {
            // Open breaker: answer one parked batch with an error
            // frame so its originator is not left hanging (the frame
            // never entered the ledger — it was never submitted).
            std::lock_guard<std::mutex> lock(mu);
            for (auto& [id, c] : conns) {
                if (!c->parked || c->dead) continue;
                uint32_t flow = c->parked_batch.packets.empty()
                                    ? 0
                                    : c->parked_batch.packets[0].flow &
                                          kClientFlowMask;
                edge_rejects.fetch_add(1, std::memory_order_relaxed);
                metrics::count(metrics::Counter::kNetRejects);
                enqueue(*c, make_error_frame(flow, "listener down"),
                        kNone);
                c->parked = false;
                c->parked_batch.packets.clear();
                return true;
            }
            return false;
        };
        supervisor.supervise(/*worker_id=*/0, hooks);
    }

    // --- sink thread ------------------------------------------------------

    /**
     * Any engine thread.  A submitted packet was lost inside the
     * engine — deadline-shed or fault-dropped — and will never reach
     * the sink: settle the owing connection's inflight so settled()
     * and check_done() stop waiting for an answer that cannot come
     * (a draining connection with a lost packet would otherwise stay
     * a zombie until stop()).
     */
    void note_engine_loss(uint32_t flow) {
        std::lock_guard<std::mutex> lock(mu);
        inflight_total.fetch_sub(1, std::memory_order_relaxed);
        auto it = conns.find(flow >> 16);
        if (it != conns.end() && it->second->inflight > 0) {
            it->second->inflight -= 1;
        }
        check_done();
        // A draining connection may just have settled; only the IO
        // thread owns teardown (poller state), so poke it.
        wake_io();
    }

    /** Sink thread.  Routes one processed packet to its connection. */
    void route_packet(const conc::PipePacket& packet) {
        uint32_t conn_id = packet.flow >> 16;
        uint32_t client_flow = packet.flow & kClientFlowMask;
        std::unique_lock<std::mutex> lock(mu);
        inflight_total.fetch_sub(1, std::memory_order_relaxed);
        auto it = conns.find(conn_id);
        Conn* c = it != conns.end() ? it->second.get() : nullptr;
        if (c != nullptr && c->inflight > 0) c->inflight -= 1;
        if (c == nullptr || c->dead || c->sick) {
            // Orphan: its connection died before the answer came out.
            rejected.fetch_add(1, std::memory_order_relaxed);
            wake_io();
            return;
        }
        if (c->write_q.size() >= serve.write_queue_frames) {
            // Bounded queue is full: wait for the reader, up to the
            // stall budget; a reader this slow is a sick connection.
            // The wait releases mu, so the waiter count pins c: the
            // IO thread may tear the connection down mid-wait (dead
            // wakes the predicate) but reap_dead cannot free it.
            wake_io();
            c->waiters += 1;
            bool roomy = sim::cv_wait_for(
                space_cv, lock,
                std::chrono::milliseconds(serve.write_stall_ms),
                [&] {
                    return c->dead || c->sick ||
                           c->write_q.size() <
                               serve.write_queue_frames ||
                           stopping.load(std::memory_order_acquire);
                });
            c->waiters -= 1;
            if (!roomy || c->dead || c->sick ||
                c->write_q.size() >= serve.write_queue_frames) {
                c->sick = true;
                rejected.fetch_add(1, std::memory_order_relaxed);
                wake_io();
                return;
            }
        }
        bool is_drop = packet.bucket == conc::kPipeDropBucket;
        Frame frame;
        frame.type = is_drop ? FrameType::kDrop : FrameType::kResponse;
        frame.flow = client_flow;
        frame.payload.assign(packet.wire.begin(), packet.wire.end());
        if (!is_drop) {
            // Route bucket rides after the wire image, sign-extended.
            uint64_t bucket = static_cast<uint64_t>(packet.bucket);
            for (int shift = 56; shift >= 0; shift -= 8) {
                frame.payload.push_back(
                    static_cast<uint8_t>(bucket >> shift));
            }
        }
        enqueue(*c, encode_frame(frame),
                is_drop ? kDropped : kDelivered);
        if (is_drop) {
            dropped.fetch_add(1, std::memory_order_relaxed);
        } else {
            delivered.fetch_add(1, std::memory_order_relaxed);
        }
        if (packet.ingress_ns != 0) {
            metrics::observe(metrics::Histogram::kNetFrameLatencyNs,
                             now_ns() - packet.ingress_ns);
        }
        trace::emit(trace::Event::kNetFrameOut, conn_id,
                    static_cast<uint64_t>(frame.type));
        wake_io();
    }

    void sink_main() {
        conc::Channel<conc::PipeBatch>& sink = engine->sink_channel();
        while (true) {
            auto got = sink.recv();
            if (!got.is_ok()) {
                if (got.status().code() == StatusCode::kCancelled) {
                    break;  // engine drained and closed
                }
                continue;  // injected channel fault: keep draining
            }
            for (const conc::PipePacket& packet :
                 got.value().packets) {
                route_packet(packet);
            }
        }
    }
};

NetServer::NetServer(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

NetServer::~NetServer() { stop(); }

Result<std::unique_ptr<NetServer>>
NetServer::create(const options::ServeSpec& serve,
                  conc::PipelineConfig pipeline)
{
    return create(serve, std::move(pipeline), nullptr);
}

Result<std::unique_ptr<NetServer>>
NetServer::create(const options::ServeSpec& serve,
                  conc::PipelineConfig pipeline,
                  std::unique_ptr<Transport> transport)
{
    BITC_RETURN_IF_ERROR(serve.validate());
    // Every data frame's originator must hear an answer: validate
    // rejects ride to the sink as kDrop frames instead of vanishing
    // into the in-process drop ledger.
    pipeline.forward_drops = true;
    auto impl = std::make_unique<Impl>(serve, pipeline);
    impl->transport = std::move(transport);
    // Engine losses must settle the owing connection's ledger; the
    // raw Impl pointer is safe because stop() joins the engine's
    // workers before the Impl can die.
    pipeline.on_loss = [im = impl.get()](uint32_t flow) {
        im->note_engine_loss(flow);
    };
    BITC_ASSIGN_OR_RETURN(impl->engine,
                          conc::PipelineEngine::create(pipeline));
    return std::unique_ptr<NetServer>(new NetServer(std::move(impl)));
}

Status
NetServer::start()
{
    Impl& im = *impl_;
    if (im.started) {
        return failed_precondition_error("server already started");
    }
    if (im.transport == nullptr) {
        BITC_ASSIGN_OR_RETURN(im.transport, make_real_transport());
    }
    BITC_ASSIGN_OR_RETURN(
        im.listener_h,
        im.transport->listen(im.serve.host, im.serve.port));
    BITC_ASSIGN_OR_RETURN(im.bound_port,
                          im.transport->listen_port());
    BITC_RETURN_IF_ERROR(
        im.transport->add(im.listener_h, true, false));

    im.engine->start();
    im.started = true;
    im.sink_thread =
        sim::spawn_thread("net-sink", [&im] { im.sink_main(); });
    im.io_thread =
        sim::spawn_thread("net-io", [&im] { im.io_main(); });
    return Status::ok();
}

void
NetServer::set_test_hooks(const NetServerTestHooks& hooks)
{
    impl_->hooks = hooks;
}

uint16_t
NetServer::port() const
{
    return impl_->bound_port;
}

const options::ServeSpec&
NetServer::serve_spec() const
{
    return impl_->serve;
}

void
NetServer::wait_done()
{
    Impl& im = *impl_;
    std::unique_lock<std::mutex> lock(im.mu);
    sim::cv_wait(im.done_cv, lock, [&] {
        return im.done || im.stopped ||
               im.stopping.load(std::memory_order_acquire);
    });
}

void
NetServer::stop()
{
    Impl& im = *impl_;
    {
        std::lock_guard<std::mutex> lock(im.mu);
        if (!im.started || im.stopped) return;
        im.stopped = true;
    }
    im.stopping.store(true, std::memory_order_release);
    im.wake_io();
    sim::cv_notify_all(im.space_cv);
    im.supervisor.request_shutdown();
    if (im.io_thread.joinable()) sim::join_thread(im.io_thread);
    im.engine->close_input();
    im.engine->finish();
    if (im.sink_thread.joinable()) sim::join_thread(im.sink_thread);

    // Final sweep: whatever never left a write queue is rejected.
    std::lock_guard<std::mutex> lock(im.mu);
    for (auto& [id, c] : im.conns) {
        if (c->dead) continue;
        size_t skip = c->write_off > 0 ? 1 : 0;
        size_t i = 0;
        for (const Impl::OutFrame& f : c->write_q) {
            if (i++ < skip) continue;
            if (f.tag == Impl::kDelivered) {
                im.delivered.fetch_sub(1, std::memory_order_relaxed);
                im.rejected.fetch_add(1, std::memory_order_relaxed);
            } else if (f.tag == Impl::kDropped) {
                im.dropped.fetch_sub(1, std::memory_order_relaxed);
                im.rejected.fetch_add(1, std::memory_order_relaxed);
            }
        }
        c->write_q.clear();
        im.transport->close(c->h);
        c->h = -1;
        c->dead = true;
        im.teardowns_clean.fetch_add(1, std::memory_order_relaxed);
        metrics::gauge_sub(metrics::Gauge::kNetConnections);
        trace::emit(trace::Event::kNetConnClose, c->id, 0);
    }
    im.conns.clear();
    im.by_h.clear();
    sim::cv_notify_all(im.done_cv);
}

ServerStats
NetServer::stats() const
{
    const Impl& im = *impl_;
    ServerStats out;
    out.accepted = im.accepted.load(std::memory_order_relaxed);
    out.refused = im.refused.load(std::memory_order_relaxed);
    out.frames_in = im.frames_in.load(std::memory_order_relaxed);
    out.frames_out = im.frames_out.load(std::memory_order_relaxed);
    out.protocol_errors =
        im.protocol_errors.load(std::memory_order_relaxed);
    out.edge_rejects =
        im.edge_rejects.load(std::memory_order_relaxed);
    out.teardowns_sick =
        im.teardowns_sick.load(std::memory_order_relaxed);
    out.teardowns_clean =
        im.teardowns_clean.load(std::memory_order_relaxed);
    out.listener_crashes = im.supervisor.crashes();
    out.listener_restarts = im.supervisor.restarts();
    out.breaker_opens = im.supervisor.breaker_opens();
    out.generated = im.generated.load(std::memory_order_relaxed);
    out.delivered = im.delivered.load(std::memory_order_relaxed);
    out.dropped = im.dropped.load(std::memory_order_relaxed);
    out.fault_dropped = im.engine->fault_dropped();
    out.shed = im.engine->shed();
    out.rejected = im.rejected.load(std::memory_order_relaxed);
    return out;
}

}  // namespace bitc::net
