#include "net/transport.hpp"

#include <unistd.h>

#include <map>
#include <utility>

namespace bitc::net {

Result<size_t>
Transport::write_batch(int h,
                       std::span<const std::span<const uint8_t>> iovs)
{
    // Fallback: one write() per buffer until the first short/failed
    // acceptance.  kUnavailable with prior progress is progress.
    size_t total = 0;
    for (std::span<const uint8_t> iov : iovs) {
        if (iov.empty()) continue;
        auto wrote = write(h, iov);
        if (!wrote.is_ok()) {
            if (total > 0 && wrote.status().code() ==
                                 StatusCode::kUnavailable) {
                return total;
            }
            return wrote.status();
        }
        total += wrote.value();
        if (wrote.value() < iov.size()) break;
    }
    return total;
}

namespace {

/**
 * The production Transport: a thin re-packaging of socket.hpp +
 * poller.hpp.  Handles are the raw fds; the self-pipe that backed
 * NetServer's wake_io() moves in here so wait()/wake() are
 * self-contained and the pipe's events never reach the server.
 */
class RealTransport final : public Transport {
  public:
    RealTransport(Poller poller, Fd wake_r, Fd wake_w)
        : poller_(std::move(poller)), wake_r_(std::move(wake_r)),
          wake_w_(std::move(wake_w)) {}

    Result<int> listen(const std::string& host,
                       uint16_t port) override {
        BITC_ASSIGN_OR_RETURN(Fd fd, listen_tcp(host, port));
        int h = fd.get();
        fds_[h] = std::move(fd);
        listener_ = h;
        return h;
    }

    Result<uint16_t> listen_port() override {
        if (listener_ < 0) {
            return failed_precondition_error("no listener");
        }
        return local_port(listener_);
    }

    Result<int> accept() override {
        if (listener_ < 0) {
            return failed_precondition_error("no listener");
        }
        BITC_ASSIGN_OR_RETURN(Fd fd, accept_conn(listener_));
        int h = fd.get();
        fds_[h] = std::move(fd);
        return h;
    }

    Result<ReadResult> read(int h, std::span<uint8_t> buf) override {
        return read_some(h, buf);
    }

    Result<size_t> write(int h,
                         std::span<const uint8_t> data) override {
        return write_some(h, data);
    }

    Result<size_t> write_batch(
        int h,
        std::span<const std::span<const uint8_t>> iovs) override {
        return writev_some(h, iovs);
    }

    Status add(int h, bool want_read, bool want_write) override {
        return poller_.add(h, want_read, want_write);
    }

    Status modify(int h, bool want_read, bool want_write) override {
        return poller_.modify(h, want_read, want_write);
    }

    Status remove(int h) override { return poller_.remove(h); }

    void close(int h) override { fds_.erase(h); }

    Result<size_t> wait(int timeout_ms,
                        std::vector<PollEvent>& out) override {
        size_t before = out.size();
        auto waited = poller_.wait(timeout_ms, out);
        if (!waited.is_ok()) return waited.status();
        // Filter out (and drain) the self-pipe's events: wakeups are
        // transport plumbing, not server-visible readiness.
        size_t kept = before;
        for (size_t i = before; i < out.size(); ++i) {
            if (out[i].fd == wake_r_.get()) {
                uint8_t drain[256];
                while (::read(wake_r_.get(), drain, sizeof(drain)) >
                       0) {
                }
                continue;
            }
            out[kept++] = out[i];
        }
        out.resize(kept);
        return kept - before;
    }

    void wake() override {
        uint8_t byte = 1;
        // Best-effort: a full pipe already guarantees a wakeup.
        (void)!::write(wake_w_.get(), &byte, 1);
    }

  private:
    Poller poller_;
    Fd wake_r_, wake_w_;
    int listener_ = -1;
    std::map<int, Fd> fds_;  ///< Owned open handles.
};

}  // namespace

Result<std::unique_ptr<Transport>>
make_real_transport()
{
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
        return internal_error("self-pipe creation failed");
    }
    Fd wake_r(pipe_fds[0]);
    Fd wake_w(pipe_fds[1]);
    BITC_RETURN_IF_ERROR(set_nonblocking(wake_r.get()));
    BITC_RETURN_IF_ERROR(set_nonblocking(wake_w.get()));
    BITC_ASSIGN_OR_RETURN(Poller poller, Poller::create());
    BITC_RETURN_IF_ERROR(poller.add(wake_r.get(), true, false));
    return std::unique_ptr<Transport>(new RealTransport(
        std::move(poller), std::move(wake_r), std::move(wake_w)));
}

}  // namespace bitc::net
