#include "net/client.hpp"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/stats.hpp"
#include "support/string_util.hpp"

namespace bitc::net {

Result<NetClient>
NetClient::connect(const std::string& host, uint16_t port)
{
    BITC_ASSIGN_OR_RETURN(Fd fd, connect_tcp(host, port));
    return NetClient(std::move(fd));
}

Status
NetClient::send_frame(const Frame& frame)
{
    return send_raw(encode_frame(frame));
}

Status
NetClient::send_data(uint32_t flow, uint32_t deadline_ms,
                     std::span<const uint8_t> payload)
{
    constexpr size_t kSmallSendBytes = 128;
    size_t need = encoded_frame_size(payload.size());
    if (need > kSmallSendBytes) {
        Frame frame;
        frame.type = FrameType::kData;
        frame.flow = flow;
        frame.deadline_ms = deadline_ms;
        frame.payload.assign(payload.begin(), payload.end());
        return send_frame(frame);
    }
    uint8_t buf[kSmallSendBytes];
    encode_frame_into(FrameType::kData, flow, deadline_ms, payload,
                      std::span<uint8_t>(buf, need));
    return send_raw(std::span<const uint8_t>(buf, need));
}

Status
NetClient::send_raw(std::span<const uint8_t> bytes)
{
    size_t off = 0;
    while (off < bytes.size()) {
        ssize_t rc = ::send(fd_.get(), bytes.data() + off,
                            bytes.size() - off, MSG_NOSIGNAL);
        if (rc < 0) {
            if (errno == EINTR) continue;
            if (errno == EPIPE || errno == ECONNRESET) {
                return cancelled_error("server closed the connection");
            }
            return internal_error(
                str_format("send: %s", std::strerror(errno)));
        }
        off += static_cast<size_t>(rc);
    }
    return Status::ok();
}

Result<Frame>
NetClient::recv_frame(uint64_t timeout_ms)
{
    BITC_ASSIGN_OR_RETURN(FrameView view,
                          recv_frame_view(timeout_ms));
    Frame frame;
    frame.type = view.type;
    frame.flow = view.flow;
    frame.deadline_ms = view.deadline_ms;
    frame.payload.assign(view.payload.begin(), view.payload.end());
    return frame;
}

Result<FrameView>
NetClient::recv_frame_view(uint64_t timeout_ms)
{
    uint64_t deadline = now_ns() + timeout_ms * 1000000ull;
    while (true) {
        auto parsed = decoder_.next_view();
        if (!parsed.is_ok()) return parsed.status();
        if (parsed.value().has_value()) {
            return *parsed.value();
        }
        uint64_t now = now_ns();
        if (now >= deadline) {
            return deadline_exceeded_error("no frame before deadline");
        }
        pollfd pfd{fd_.get(), POLLIN, 0};
        int wait_ms =
            static_cast<int>((deadline - now) / 1000000ull) + 1;
        int rc = ::poll(&pfd, 1, wait_ms);
        if (rc < 0 && errno != EINTR) {
            return internal_error(
                str_format("poll: %s", std::strerror(errno)));
        }
        if (rc <= 0) continue;
        // Read straight into the decoder's pooled buffer.
        auto room = decoder_.tail(4096);
        if (!room.is_ok()) return room.status();
        ssize_t got = ::read(fd_.get(), room.value().data(),
                             room.value().size());
        if (got < 0) {
            if (errno == EINTR || errno == EAGAIN) continue;
            return cancelled_error("connection reset");
        }
        if (got == 0) {
            return cancelled_error("server closed the connection");
        }
        decoder_.commit(static_cast<size_t>(got));
    }
}

void
NetClient::shutdown_send()
{
    if (fd_.valid()) (void)::shutdown(fd_.get(), SHUT_WR);
}

void
NetClient::close()
{
    fd_.reset();
}

}  // namespace bitc::net
