#include "net/client.hpp"

#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "support/stats.hpp"
#include "support/string_util.hpp"

namespace bitc::net {

Result<NetClient>
NetClient::connect(const std::string& host, uint16_t port)
{
    BITC_ASSIGN_OR_RETURN(Fd fd, connect_tcp(host, port));
    return NetClient(std::move(fd));
}

Status
NetClient::send_frame(const Frame& frame)
{
    return send_raw(encode_frame(frame));
}

Status
NetClient::send_raw(std::span<const uint8_t> bytes)
{
    size_t off = 0;
    while (off < bytes.size()) {
        ssize_t rc = ::send(fd_.get(), bytes.data() + off,
                            bytes.size() - off, MSG_NOSIGNAL);
        if (rc < 0) {
            if (errno == EINTR) continue;
            if (errno == EPIPE || errno == ECONNRESET) {
                return cancelled_error("server closed the connection");
            }
            return internal_error(
                str_format("send: %s", std::strerror(errno)));
        }
        off += static_cast<size_t>(rc);
    }
    return Status::ok();
}

Result<Frame>
NetClient::recv_frame(uint64_t timeout_ms)
{
    uint64_t deadline = now_ns() + timeout_ms * 1000000ull;
    while (true) {
        auto parsed = decoder_.next();
        if (!parsed.is_ok()) return parsed.status();
        if (parsed.value().has_value()) {
            return std::move(*parsed.value());
        }
        uint64_t now = now_ns();
        if (now >= deadline) {
            return deadline_exceeded_error("no frame before deadline");
        }
        pollfd pfd{fd_.get(), POLLIN, 0};
        int wait_ms =
            static_cast<int>((deadline - now) / 1000000ull) + 1;
        int rc = ::poll(&pfd, 1, wait_ms);
        if (rc < 0 && errno != EINTR) {
            return internal_error(
                str_format("poll: %s", std::strerror(errno)));
        }
        if (rc <= 0) continue;
        uint8_t buf[4096];
        ssize_t got = ::read(fd_.get(), buf, sizeof(buf));
        if (got < 0) {
            if (errno == EINTR || errno == EAGAIN) continue;
            return cancelled_error("connection reset");
        }
        if (got == 0) {
            return cancelled_error("server closed the connection");
        }
        decoder_.feed(
            std::span<const uint8_t>(buf, static_cast<size_t>(got)));
    }
}

void
NetClient::shutdown_send()
{
    if (fd_.valid()) (void)::shutdown(fd_.get(), SHUT_WR);
}

void
NetClient::close()
{
    fd_.reset();
}

}  // namespace bitc::net
