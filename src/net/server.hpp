/**
 * @file
 * TCP front-end for the supervised packet pipeline: real sockets in,
 * the PR-5 worker fleet behind them, answers routed back by flow.
 *
 * Architecture (docs/networking.md has the full story):
 *
 *  - One non-blocking IO-loop thread owns the listener, every
 *    connection fd and the Poller (epoll, poll fallback).  It decodes
 *    length-prefixed frames (net/wire.hpp) into single-packet
 *    PipeBatches and submits them to a PipelineEngine with
 *    try_submit: kUnavailable parks the batch on its connection and
 *    *pauses reading that socket* — backpressure reaches the client
 *    as TCP flow control, never as unbounded buffering.
 *  - One sink thread drains the engine's sink channel and routes each
 *    processed packet back to its connection by the conn-id half of
 *    the flow word, as a kResponse (or kDrop) frame on a bounded
 *    per-connection write queue.  A queue that stays full past
 *    write_stall_ms marks the connection sick; the IO loop tears it
 *    down and the undeliverable answers move to the rejected ledger.
 *  - The IO loop runs under the same Supervisor machinery as the
 *    stage workers, registered as the "socket-io" fault site's
 *    victim: an injected accept fault crashes the loop body, the
 *    supervisor restarts the listener with backoff, and a storm trips
 *    the circuit breaker (connections survive restarts — their state
 *    lives in the server, not the loop incarnation).  Injected
 *    read/write faults are connection-level: the sick connection is
 *    torn down, its originator answered best-effort with an error
 *    frame.
 *
 * Conservation: every packet the server submits to the engine is
 * accounted exactly once —
 *
 *   generated == delivered + dropped + fault_dropped + shed + rejected
 *
 * where delivered/dropped are answer frames handed to a live
 * connection, fault_dropped/shed come from the engine's ledger, and
 * rejected counts orphans (answers whose connection died first) and
 * teardown remnants.  stats().conserved() checks it; exact after
 * stop().
 */
#ifndef BITC_NET_SERVER_HPP
#define BITC_NET_SERVER_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "concurrency/pipeline.hpp"
#include "support/options.hpp"
#include "support/status.hpp"

namespace bitc::net {

class Transport;

/**
 * Test-only switches, set before start().  parked_overwrite_bug
 * reverts the PR-6 drain_frames guard so the historical parked-batch
 * overwrite is reproducible by the deterministic simulation suite —
 * a pinned seed must be able to demonstrate the schedule bug the
 * guard fixed.
 */
struct NetServerTestHooks {
    bool parked_overwrite_bug = false;
};

/** Server-side totals; the packet ledger is exact after stop(). */
struct ServerStats {
    uint64_t accepted = 0;         ///< Connections accepted.
    uint64_t refused = 0;          ///< Accepts refused (max-conns).
    uint64_t frames_in = 0;        ///< Data frames decoded.
    uint64_t frames_out = 0;       ///< Answer frames enqueued.
    uint64_t protocol_errors = 0;  ///< Malformed frames answered kError.
    uint64_t edge_rejects = 0;     ///< Data frames refused pre-submit
                                   ///< (sick shard / server draining).
    uint64_t teardowns_sick = 0;   ///< Connections torn down on fault.
    uint64_t teardowns_clean = 0;  ///< Orderly disconnects.
    uint64_t listener_crashes = 0; ///< IO-loop crashes (accept faults).
    uint64_t listener_restarts = 0;///< Supervised loop restarts.
    uint64_t breaker_opens = 0;    ///< Listener breaker trips.

    // The packet conservation ledger.
    uint64_t generated = 0;      ///< Packets submitted to the engine.
    uint64_t delivered = 0;      ///< kResponse frames to live conns.
    uint64_t dropped = 0;        ///< kDrop frames to live conns.
    uint64_t fault_dropped = 0;  ///< Engine: lost to injected faults.
    uint64_t shed = 0;           ///< Engine: deadline-shed batches.
    uint64_t rejected = 0;       ///< Orphans + teardown remnants.

    bool conserved() const {
        return generated == delivered + dropped + fault_dropped +
                                shed + rejected;
    }

    std::string to_string() const;
};

/**
 * The front-end.  create() builds the engine (forward_drops is forced
 * on so every frame's originator hears an answer); start() binds the
 * listener and spawns the IO + sink threads; stop() drains and joins
 * everything.  One-shot lifecycle like the engine's.
 */
class NetServer {
  public:
    /** Engine + listener configuration; binds nothing yet. */
    static Result<std::unique_ptr<NetServer>> create(
        const options::ServeSpec& serve,
        conc::PipelineConfig pipeline);

    /**
     * Same, but over an injected transport — the seam the
     * deterministic simulation tests use (sim_transport.hpp).  Pass
     * nullptr to get the real-socket transport at start().
     */
    static Result<std::unique_ptr<NetServer>> create(
        const options::ServeSpec& serve,
        conc::PipelineConfig pipeline,
        std::unique_ptr<Transport> transport);

    /** Installs test hooks.  Only valid before start(). */
    void set_test_hooks(const NetServerTestHooks& hooks);

    ~NetServer();
    NetServer(const NetServer&) = delete;
    NetServer& operator=(const NetServer&) = delete;

    /** Binds, listens and spawns the threads.  Call exactly once. */
    Status start();

    /** The bound port (the kernel's pick when the spec said 0). */
    uint16_t port() const;

    const options::ServeSpec& serve_spec() const;

    /**
     * Blocks until the spec's max_frames data frames have been
     * submitted *and* every answer has left the write queues (or the
     * server is stopping).  Requires max_frames > 0.
     */
    void wait_done();

    /** Graceful shutdown: drain, join, close.  Idempotent. */
    void stop();

    /** Totals; the ledger is exact once stop() has returned. */
    ServerStats stats() const;

  private:
    struct Impl;
    explicit NetServer(std::unique_ptr<Impl> impl);
    std::unique_ptr<Impl> impl_;
};

}  // namespace bitc::net

#endif  // BITC_NET_SERVER_HPP
