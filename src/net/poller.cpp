#include "net/poller.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <poll.h>
#include <sys/epoll.h>

#include "support/string_util.hpp"

namespace bitc::net {

namespace {

Status
errno_error(const char* what)
{
    return internal_error(
        str_format("%s: %s", what, std::strerror(errno)));
}

uint32_t
epoll_mask(bool want_read, bool want_write)
{
    uint32_t mask = 0;
    if (want_read) mask |= EPOLLIN;
    if (want_write) mask |= EPOLLOUT;
    return mask;
}

short
poll_mask(bool want_read, bool want_write)
{
    short mask = 0;
    if (want_read) mask |= POLLIN;
    if (want_write) mask |= POLLOUT;
    return mask;
}

}  // namespace

const char*
poll_backend_name(PollBackend backend)
{
    return backend == PollBackend::kEpoll ? "epoll" : "poll";
}

Result<Poller>
Poller::create()
{
    const char* forced = std::getenv("BITC_NET_POLLER");
    if (forced != nullptr && std::string(forced) == "poll") {
        return Poller(PollBackend::kPoll, Fd());
    }
    Fd epoll_fd(::epoll_create1(EPOLL_CLOEXEC));
    if (!epoll_fd.valid()) {
        return Poller(PollBackend::kPoll, Fd());
    }
    return Poller(PollBackend::kEpoll, std::move(epoll_fd));
}

Status
Poller::add(int fd, bool want_read, bool want_write)
{
    if (backend_ == PollBackend::kPoll) {
        interest_[fd] = poll_mask(want_read, want_write);
        return Status::ok();
    }
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) < 0) {
        return errno_error("epoll_ctl(ADD)");
    }
    return Status::ok();
}

Status
Poller::modify(int fd, bool want_read, bool want_write)
{
    if (backend_ == PollBackend::kPoll) {
        auto it = interest_.find(fd);
        if (it == interest_.end()) {
            return not_found_error(
                str_format("fd %d not registered", fd));
        }
        it->second = poll_mask(want_read, want_write);
        return Status::ok();
    }
    epoll_event ev{};
    ev.events = epoll_mask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) < 0) {
        return errno_error("epoll_ctl(MOD)");
    }
    return Status::ok();
}

Status
Poller::remove(int fd)
{
    if (backend_ == PollBackend::kPoll) {
        interest_.erase(fd);
        return Status::ok();
    }
    if (::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr) < 0) {
        return errno_error("epoll_ctl(DEL)");
    }
    return Status::ok();
}

Result<size_t>
Poller::wait(int timeout_ms, std::vector<PollEvent>& out)
{
    if (backend_ == PollBackend::kPoll) {
        std::vector<pollfd> fds;
        fds.reserve(interest_.size());
        for (const auto& [fd, mask] : interest_) {
            fds.push_back(pollfd{fd, mask, 0});
        }
        int rc;
        do {
            rc = ::poll(fds.data(),
                        static_cast<nfds_t>(fds.size()), timeout_ms);
        } while (rc < 0 && errno == EINTR);
        if (rc < 0) return errno_error("poll");
        size_t appended = 0;
        for (const pollfd& p : fds) {
            if (p.revents == 0) continue;
            PollEvent ev;
            ev.fd = p.fd;
            ev.readable = (p.revents & POLLIN) != 0;
            ev.writable = (p.revents & POLLOUT) != 0;
            ev.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
            out.push_back(ev);
            ++appended;
        }
        return appended;
    }
    epoll_event events[64];
    int rc;
    do {
        rc = ::epoll_wait(epoll_.get(), events, 64, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) return errno_error("epoll_wait");
    for (int i = 0; i < rc; ++i) {
        PollEvent ev;
        ev.fd = events[i].data.fd;
        ev.readable = (events[i].events & EPOLLIN) != 0;
        ev.writable = (events[i].events & EPOLLOUT) != 0;
        ev.error = (events[i].events & (EPOLLERR | EPOLLHUP)) != 0;
        out.push_back(ev);
    }
    return static_cast<size_t>(rc);
}

}  // namespace bitc::net
