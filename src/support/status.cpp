#include "support/status.hpp"

namespace bitc {

const char*
status_code_name(StatusCode code)
{
    switch (code) {
      case StatusCode::kOk: return "ok";
      case StatusCode::kInvalidArgument: return "invalid argument";
      case StatusCode::kNotFound: return "not found";
      case StatusCode::kAlreadyExists: return "already exists";
      case StatusCode::kOutOfRange: return "out of range";
      case StatusCode::kResourceExhausted: return "resource exhausted";
      case StatusCode::kFailedPrecondition: return "failed precondition";
      case StatusCode::kDeadlineExceeded: return "deadline exceeded";
      case StatusCode::kUnavailable: return "unavailable";
      case StatusCode::kCancelled: return "cancelled";
      case StatusCode::kUnimplemented: return "unimplemented";
      case StatusCode::kInternal: return "internal";
      case StatusCode::kTypeError: return "type error";
      case StatusCode::kParseError: return "parse error";
      case StatusCode::kVerifyError: return "verify error";
      case StatusCode::kRuntimeError: return "runtime error";
    }
    return "unknown";
}

std::string
Status::to_string() const
{
    if (is_ok()) return "ok";
    std::string out = status_code_name(code_);
    if (!message_.empty()) {
        out += ": ";
        out += message_;
    }
    return out;
}

Status invalid_argument_error(std::string m)
{ return Status(StatusCode::kInvalidArgument, std::move(m)); }
Status not_found_error(std::string m)
{ return Status(StatusCode::kNotFound, std::move(m)); }
Status already_exists_error(std::string m)
{ return Status(StatusCode::kAlreadyExists, std::move(m)); }
Status out_of_range_error(std::string m)
{ return Status(StatusCode::kOutOfRange, std::move(m)); }
Status resource_exhausted_error(std::string m)
{ return Status(StatusCode::kResourceExhausted, std::move(m)); }
Status failed_precondition_error(std::string m)
{ return Status(StatusCode::kFailedPrecondition, std::move(m)); }
Status deadline_exceeded_error(std::string m)
{ return Status(StatusCode::kDeadlineExceeded, std::move(m)); }
Status unavailable_error(std::string m)
{ return Status(StatusCode::kUnavailable, std::move(m)); }
Status cancelled_error(std::string m)
{ return Status(StatusCode::kCancelled, std::move(m)); }
Status unimplemented_error(std::string m)
{ return Status(StatusCode::kUnimplemented, std::move(m)); }
Status internal_error(std::string m)
{ return Status(StatusCode::kInternal, std::move(m)); }
Status type_error(std::string m)
{ return Status(StatusCode::kTypeError, std::move(m)); }
Status parse_error(std::string m)
{ return Status(StatusCode::kParseError, std::move(m)); }
Status verify_error(std::string m)
{ return Status(StatusCode::kVerifyError, std::move(m)); }
Status runtime_error(std::string m)
{ return Status(StatusCode::kRuntimeError, std::move(m)); }

}  // namespace bitc
