/**
 * @file
 * Deterministic simulation harness: a virtual clock and a seeded
 * cooperative scheduler for the concurrency stack (FoundationDB
 * style).
 *
 * The problem it solves: the channel/pipeline/supervisor/net stack is
 * schedule-dependent code tested with real threads, real sleeps and
 * real sockets, so a bug that needs one specific interleaving is only
 * found by luck.  Under a Simulation the same code runs on real
 * std::threads but *cooperatively*: exactly one registered thread
 * executes at a time, every hand-off (channel wait, condvar notify,
 * timed sleep, scheduling checkpoint) routes through the simulation,
 * and every choice — which thread runs next, which notify_one victim
 * wakes, whether a checkpoint preempts — is drawn from one seeded RNG
 * and appended to a replayable decision trace.  Time is virtual: a
 * timed wait never sleeps; when no thread is runnable the clock jumps
 * to the earliest registered deadline.  Same seed, same decisions,
 * same interleaving — a thousand schedules explored in the time one
 * real-sleep test used to take, and a failing seed replays exactly.
 *
 * Integration contract (what instrumented code must follow):
 *
 *  - Blocking waits go through cv_wait / cv_wait_until / cv_wait_for
 *    below.  The caller holds its own mutex via the unique_lock, the
 *    helper releases it while parked — standard condvar semantics.
 *  - Every notify on an instrumented condvar goes through
 *    cv_notify_one / cv_notify_all (they also poke the real condvar,
 *    so unregistered threads parked the classic way still wake).
 *  - Threads that should participate are created with spawn_thread()
 *    (falls back to plain std::thread when no simulation is
 *    installed); test drivers join with Simulation::attach/detach.
 *  - maybe_yield() checkpoints must only be placed where the calling
 *    thread holds no user locks: a parked thread must never pin a
 *    mutex another registered thread needs to reach its next sim
 *    call.
 *  - Off-sim cost: one relaxed atomic load and a predicted branch per
 *    helper call (the same discipline as fault.hpp and trace.hpp).
 */
#ifndef BITC_SUPPORT_SIM_HPP
#define BITC_SUPPORT_SIM_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace bitc::sim {

class Simulation;

namespace detail {
/** The installed simulation; null in production and ordinary tests. */
extern std::atomic<Simulation*> g_installed;
/** The calling thread's registration, if it belongs to @p sim. */
bool this_thread_registered(const Simulation* sim);
}  // namespace detail

/** "No deadline" sentinel for untimed waits. */
inline constexpr uint64_t kNoDeadline = ~0ull;

/** Every scheduling choice the simulation makes, for the trace. */
enum class DecisionKind : uint8_t {
    kSpawn = 0,  ///< Thread registered (arg 1 = attached driver).
    kSwitch,     ///< Thread granted the run token.
    kBlock,      ///< Thread parked (arg = virtual deadline or 0).
    kNotify,     ///< notify_one victim chosen (arg = waiter count).
    kNotifyAll,  ///< All waiters on one condvar woken (arg = count).
    kAdvance,    ///< Virtual clock advanced (arg = delta ns).
    kTimeout,    ///< A timed waiter's deadline fired.
    kYield,      ///< Checkpoint preemption taken.
    kExit,       ///< Thread finished or detached.
};

const char* decision_kind_name(DecisionKind k);

/** One replayable scheduler decision. */
struct Decision {
    uint64_t step = 0;    ///< Global decision sequence number.
    DecisionKind kind = DecisionKind::kSpawn;
    uint32_t thread = 0;  ///< Logical thread id the decision concerns.
    uint64_t arg = 0;     ///< Kind-specific (deterministic; no pointers).
};

/**
 * One deterministic run: virtual clock + cooperative scheduler +
 * decision trace.  Construction installs it process-wide (one at a
 * time); destruction uninstalls.  Not copyable, not movable.
 *
 * Thread ids are assigned in registration order, which is itself
 * serialized by the scheduler — so the decision trace for a given
 * seed is bit-identical across runs.
 */
class Simulation {
  public:
    explicit Simulation(uint64_t seed);
    ~Simulation();

    Simulation(const Simulation&) = delete;
    Simulation& operator=(const Simulation&) = delete;

    static Simulation* installed() {
        return detail::g_installed.load(std::memory_order_acquire);
    }

    uint64_t seed() const { return seed_; }

    /** Virtual time; now_ns() redirects here while installed. */
    uint64_t now() const {
        return vnow_.load(std::memory_order_relaxed);
    }

    /**
     * Creates a participating thread.  The spawn is a synchronization
     * point: the scheduler never makes a choice while a spawned
     * thread has not yet checked in, so registration order — and with
     * it the whole decision trace — is deterministic.
     */
    std::thread spawn(std::string name, std::function<void()> fn);

    /** Registers the calling (driver) thread and acquires the token. */
    void attach(std::string name);

    /**
     * Deregisters the calling thread and releases the token.  After
     * the first detach an unregistered actor exists, so an idle
     * scheduler parks instead of declaring deadlock.
     */
    void detach();

    /**
     * Parks the calling registered thread until notify() wakes it or
     * the virtual @p deadline_ns passes (kNoDeadline = never).
     * Releases @p user_lock while parked, reacquires before
     * returning.  Returns false when the wait timed out.
     */
    bool wait(const void* chan, std::unique_lock<std::mutex>& user_lock,
              uint64_t deadline_ns);

    /** Wakes one (seeded choice) or all threads parked on @p chan. */
    void notify(const void* chan, bool all);

    /** Virtual sleep: parks until the clock reaches now() + ns. */
    void sleep_ns(uint64_t ns);

    /**
     * Joins @p t from a registered thread without deadlocking: a
     * plain join would block the token holder on a target that needs
     * the token to finish.  Parks the caller until the target's
     * simulated work completes, then performs the real join.
     */
    void join(std::thread& t);

    /**
     * Checkpoint: with seeded probability, re-enters the scheduler so
     * another runnable thread may be granted instead.  @p force takes
     * the reschedule unconditionally (sim-aware yield loops).  Must
     * not be called with user locks held.
     */
    void checkpoint(bool force);

    /** Decisions recorded so far (also the total when capped). */
    uint64_t decision_count() const;

    /**
     * The replayable decision trace as text, one line per decision:
     * "<step> <kind> t<thread> <arg>".  Identical for identical
     * seeds; recording caps at an internal limit but the count keeps
     * going, so equality of log + count pins full-run determinism.
     */
    std::string decision_log() const;

  private:
    struct ThreadRec;

    void note_locked(DecisionKind kind, uint32_t thread, uint64_t arg);
    void wake_joiners_locked(const void* chan);
    void schedule_locked(std::unique_lock<std::mutex>& lk);
    void park_until_running_locked(std::unique_lock<std::mutex>& lk,
                                   ThreadRec& rec);
    [[noreturn]] void deadlock_abort_locked();

    const uint64_t seed_;
    std::atomic<uint64_t> vnow_;

    mutable std::mutex mu_;
    std::condition_variable embryo_cv_;  ///< Spawn-barrier wakeups.
    std::vector<std::unique_ptr<ThreadRec>> threads_;
    size_t embryos_ = 0;        ///< Spawned, not yet checked in.
    bool scheduler_busy_ = false;
    uint32_t running_ = kNone;  ///< Token holder; kNone when idle.
    uint64_t detaches_ = 0;     ///< > 0: external actors may exist.
    uint64_t rng_state_[2];     ///< Inline xorshift128+ (see .cpp).

    std::vector<Decision> decisions_;
    std::atomic<uint64_t> decision_count_{0};

    static constexpr uint32_t kNone = 0xffffffffu;

    friend bool detail::this_thread_registered(const Simulation*);
};

// --- helpers for instrumented code ----------------------------------------

/**
 * The installed simulation, but only when the calling thread is
 * registered with it; the off-sim fast path is one atomic load.
 */
inline Simulation*
participant()
{
    Simulation* s = Simulation::installed();
    if (__builtin_expect(s == nullptr, 1)) return nullptr;
    return detail::this_thread_registered(s) ? s : nullptr;
}

/** Nanos-since-epoch of an arbitrary chrono time_point. */
template <typename Clock, typename Duration>
uint64_t
deadline_ns_of(const std::chrono::time_point<Clock, Duration>& tp)
{
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  tp.time_since_epoch())
                  .count();
    return ns > 0 ? static_cast<uint64_t>(ns) : 0;
}

/**
 * Drop-in for cv.wait(lock, pred): simulation-routed when the calling
 * thread is registered, the real condvar otherwise.
 */
template <typename Pred>
void
cv_wait(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
        Pred pred)
{
    if (Simulation* s = participant()) {
        while (!pred()) s->wait(&cv, lock, kNoDeadline);
        return;
    }
    cv.wait(lock, pred);
}

/**
 * Drop-in for cv.wait_until(lock, deadline, pred).  In simulation the
 * deadline is interpreted on the virtual clock (the caller computed
 * it from now_ns()/steady_clock::now(), which the installed clock
 * already redirected).  Returns pred() at exit, like the standard.
 */
template <typename Clock, typename Duration, typename Pred>
bool
cv_wait_until(std::condition_variable& cv,
              std::unique_lock<std::mutex>& lock,
              const std::chrono::time_point<Clock, Duration>& deadline,
              Pred pred)
{
    if (Simulation* s = participant()) {
        const uint64_t dl = deadline_ns_of(deadline);
        while (!pred()) {
            if (s->now() >= dl) return pred();
            if (!s->wait(&cv, lock, dl)) return pred();
        }
        return true;
    }
    return cv.wait_until(lock, deadline, pred);
}

/** Drop-in for cv.wait_for(lock, timeout, pred). */
template <typename Rep, typename Period, typename Pred>
bool
cv_wait_for(std::condition_variable& cv,
            std::unique_lock<std::mutex>& lock,
            const std::chrono::duration<Rep, Period>& timeout, Pred pred)
{
    if (Simulation* s = participant()) {
        const uint64_t dl =
            s->now() +
            static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    timeout)
                    .count());
        while (!pred()) {
            if (s->now() >= dl) return pred();
            if (!s->wait(&cv, lock, dl)) return pred();
        }
        return true;
    }
    return cv.wait_for(lock, timeout, pred);
}

/**
 * Drop-in for cv.notify_one().  The simulation picks the victim among
 * registered waiters (a seeded, traced decision); the real condvar is
 * notified broadly so unregistered waiters — which wait with a
 * predicate — cannot be starved by the split.
 */
inline void
cv_notify_one(std::condition_variable& cv)
{
    if (Simulation* s = Simulation::installed()) {
        s->notify(&cv, /*all=*/false);
        cv.notify_all();
        return;
    }
    cv.notify_one();
}

/** Drop-in for cv.notify_all(). */
inline void
cv_notify_all(std::condition_variable& cv)
{
    if (Simulation* s = Simulation::installed()) {
        s->notify(&cv, /*all=*/true);
    }
    cv.notify_all();
}

/**
 * Simulation-aware std::thread factory: participates when a
 * simulation is installed, plain std::thread otherwise.
 */
std::thread spawn_thread(const char* name, std::function<void()> fn);

/**
 * Scheduling checkpoint: seeded chance to hand the token to another
 * runnable thread.  No-op off-sim and on unregistered threads.  Only
 * place where no user locks are held.
 */
inline void
maybe_yield()
{
    if (Simulation* s = participant()) s->checkpoint(/*force=*/false);
}

/** Sim-aware std::this_thread::yield() for polite retry loops. */
inline void
yield_now()
{
    if (Simulation* s = participant()) {
        s->checkpoint(/*force=*/true);
        return;
    }
    std::this_thread::yield();
}

/**
 * Sim-aware join: safe for registered joiners (the simulation parks
 * them until the target finishes); a plain join otherwise.
 */
inline void
join_thread(std::thread& t)
{
    if (Simulation* s = participant()) {
        s->join(t);
        return;
    }
    t.join();
}

/** Sim-aware sleep: virtual when registered, real otherwise. */
inline void
sleep_us(uint64_t us)
{
    if (Simulation* s = participant()) {
        s->sleep_ns(us * 1000);
        return;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace bitc::sim

#endif  // BITC_SUPPORT_SIM_HPP
