#include "support/sim.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "support/string_util.hpp"
#include "support/trace.hpp"

namespace bitc::sim {

namespace detail {

std::atomic<Simulation*> g_installed{nullptr};

namespace {
struct Tls {
    const Simulation* sim = nullptr;
    void* rec = nullptr;
};
thread_local Tls t_reg;
}  // namespace

bool
this_thread_registered(const Simulation* sim)
{
    return t_reg.sim == sim && t_reg.rec != nullptr;
}

}  // namespace detail

namespace {

/** Virtual epoch: 1 s, so "deadline 0 = none" conventions stay safe. */
constexpr uint64_t kEpochNs = 1'000'000'000ull;

/** Decisions kept verbatim; the count keeps going past the cap. */
constexpr size_t kMaxRecordedDecisions = 1u << 20;

/** Checkpoint preemption: 1-in-kYieldDenom of eligible checkpoints. */
constexpr uint64_t kYieldDenom = 4;

uint64_t
splitmix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

}  // namespace

const char*
decision_kind_name(DecisionKind k)
{
    switch (k) {
        case DecisionKind::kSpawn: return "spawn";
        case DecisionKind::kSwitch: return "switch";
        case DecisionKind::kBlock: return "block";
        case DecisionKind::kNotify: return "notify";
        case DecisionKind::kNotifyAll: return "notify-all";
        case DecisionKind::kAdvance: return "advance";
        case DecisionKind::kTimeout: return "timeout";
        case DecisionKind::kYield: return "yield";
        case DecisionKind::kExit: return "exit";
    }
    return "unknown";
}

/**
 * One registered thread.  state transitions are all made under mu_:
 *
 *   kEmbryo   spawned, has not checked in yet (spawn barrier)
 *   kRunnable eligible; waiting for the scheduler's grant
 *   kRunning  holds the token — exactly one thread at a time
 *   kBlocked  parked in wait()/sleep_ns() on chan (+ deadline)
 *   kDone     exited or detached; the record stays for the trace
 */
struct Simulation::ThreadRec {
    enum class St : uint8_t {
        kEmbryo,
        kRunnable,
        kRunning,
        kBlocked,
        kDone
    };

    uint32_t id = 0;
    std::string name;
    St state = St::kEmbryo;
    const void* chan = nullptr;
    uint64_t deadline = kNoDeadline;
    bool timed_out = false;
    std::thread::id tid;         ///< Set at check-in; join() lookup.
    std::condition_variable cv;  ///< Parked threads wait here on mu_.
};

Simulation::Simulation(uint64_t seed)
    : seed_(seed), vnow_(kEpochNs)
{
    rng_state_[0] = splitmix(seed);
    rng_state_[1] = splitmix(seed + 0xbf58476d1ce4e5b9ull);
    Simulation* expected = nullptr;
    bool installed = detail::g_installed.compare_exchange_strong(
        expected, this, std::memory_order_acq_rel);
    assert(installed && "one Simulation at a time");
    (void)installed;
}

Simulation::~Simulation()
{
    detail::g_installed.store(nullptr, std::memory_order_release);
}

/** xorshift128+ inline so the header needs no rng.hpp include. */
static uint64_t
rng_next(uint64_t state[2])
{
    uint64_t s1 = state[0];
    const uint64_t s0 = state[1];
    state[0] = s0;
    s1 ^= s1 << 23;
    state[1] = s1 ^ s0 ^ (s1 >> 17) ^ (s0 >> 26);
    return state[1] + s0;
}

void
Simulation::note_locked(DecisionKind kind, uint32_t thread, uint64_t arg)
{
    uint64_t step =
        decision_count_.fetch_add(1, std::memory_order_relaxed);
    if (decisions_.size() < kMaxRecordedDecisions) {
        decisions_.push_back(Decision{step, kind, thread, arg});
    }
    if (kind == DecisionKind::kSwitch) {
        trace::emit(trace::Event::kSimSwitch, thread, step);
    } else if (kind == DecisionKind::kAdvance) {
        trace::emit(trace::Event::kSimAdvance, arg, step);
    }
}

void
Simulation::deadlock_abort_locked()
{
    std::fprintf(stderr,
                 "bitc-sim DEADLOCK: seed=%llu vnow=%llu decisions=%llu\n",
                 static_cast<unsigned long long>(seed_),
                 static_cast<unsigned long long>(now()),
                 static_cast<unsigned long long>(
                     decision_count_.load(std::memory_order_relaxed)));
    for (const auto& t : threads_) {
        std::fprintf(stderr, "  t%u <%s> state=%d deadline=%llu\n",
                     t->id, t->name.c_str(),
                     static_cast<int>(t->state),
                     static_cast<unsigned long long>(t->deadline));
    }
    size_t n = decisions_.size();
    size_t from = n > 40 ? n - 40 : 0;
    for (size_t i = from; i < n; ++i) {
        const Decision& d = decisions_[i];
        std::fprintf(stderr, "  #%llu %s t%u %llu\n",
                     static_cast<unsigned long long>(d.step),
                     decision_kind_name(d.kind), d.thread,
                     static_cast<unsigned long long>(d.arg));
    }
    std::fprintf(stderr,
                 "replay with BITC_TEST_SEED=%llu\n",
                 static_cast<unsigned long long>(seed_));
    std::abort();
}

/**
 * The scheduler: grants the token to one runnable thread, chosen by
 * the seeded RNG.  Runs only when no thread holds the token.  When
 * nothing is runnable but timed waiters exist, the virtual clock
 * jumps to the earliest deadline and fires those waiters.  When
 * nothing is runnable at all: deadlock — unless a detached external
 * actor exists that may still notify (then the simulation idles until
 * it does).  The spawn barrier (embryos_) keeps the runnable set — and
 * with it every choice — deterministic.
 */
void
Simulation::schedule_locked(std::unique_lock<std::mutex>& lk)
{
    if (scheduler_busy_) return;  // active scheduler will re-collect
    scheduler_busy_ = true;
    for (;;) {
        while (embryos_ > 0) embryo_cv_.wait(lk);
        bool someone_running = false;
        std::vector<uint32_t> runnable;
        for (const auto& t : threads_) {
            if (t->state == ThreadRec::St::kRunning) {
                someone_running = true;
                break;
            }
            if (t->state == ThreadRec::St::kRunnable) {
                runnable.push_back(t->id);
            }
        }
        if (someone_running) break;  // a grant raced in; done
        if (!runnable.empty()) {
            uint32_t pick =
                runnable.size() == 1
                    ? runnable[0]
                    : runnable[static_cast<size_t>(
                          rng_next(rng_state_) % runnable.size())];
            ThreadRec& r = *threads_[pick];
            r.state = ThreadRec::St::kRunning;
            running_ = pick;
            note_locked(DecisionKind::kSwitch, pick, 0);
            r.cv.notify_one();
            break;
        }
        // Nothing runnable: advance the clock to the earliest timed
        // waiter and fire everyone whose deadline it reaches.
        uint64_t min_dl = kNoDeadline;
        for (const auto& t : threads_) {
            if (t->state == ThreadRec::St::kBlocked &&
                t->deadline < min_dl) {
                min_dl = t->deadline;
            }
        }
        if (min_dl != kNoDeadline) {
            uint64_t now = vnow_.load(std::memory_order_relaxed);
            if (min_dl > now) {
                vnow_.store(min_dl, std::memory_order_relaxed);
                note_locked(DecisionKind::kAdvance, kNone,
                            min_dl - now);
            }
            for (const auto& t : threads_) {
                if (t->state == ThreadRec::St::kBlocked &&
                    t->deadline <= min_dl) {
                    t->state = ThreadRec::St::kRunnable;
                    t->timed_out = true;
                    t->chan = nullptr;
                    t->deadline = kNoDeadline;
                    note_locked(DecisionKind::kTimeout, t->id, 0);
                }
            }
            continue;
        }
        bool any_blocked = false;
        for (const auto& t : threads_) {
            if (t->state == ThreadRec::St::kBlocked) {
                any_blocked = true;
                break;
            }
        }
        running_ = kNone;
        if (any_blocked && detaches_ == 0) deadlock_abort_locked();
        break;  // idle: an external notify/attach/spawn restarts us
    }
    scheduler_busy_ = false;
}

void
Simulation::park_until_running_locked(std::unique_lock<std::mutex>& lk,
                                      ThreadRec& rec)
{
    rec.cv.wait(lk, [&] {
        return rec.state == ThreadRec::St::kRunning;
    });
}

std::thread
Simulation::spawn(std::string name, std::function<void()> fn)
{
    ThreadRec* rec;
    {
        std::unique_lock<std::mutex> lk(mu_);
        auto owned = std::make_unique<ThreadRec>();
        rec = owned.get();
        rec->id = static_cast<uint32_t>(threads_.size());
        rec->name = std::move(name);
        rec->state = ThreadRec::St::kEmbryo;
        ++embryos_;
        note_locked(DecisionKind::kSpawn, rec->id, 0);
        threads_.push_back(std::move(owned));
    }
    return std::thread([this, rec, fn = std::move(fn)]() mutable {
        {
            std::unique_lock<std::mutex> lk(mu_);
            detail::t_reg = {this, rec};
            rec->tid = std::this_thread::get_id();
            rec->state = ThreadRec::St::kRunnable;
            --embryos_;
            embryo_cv_.notify_all();
            if (running_ == kNone) schedule_locked(lk);
            park_until_running_locked(lk, *rec);
        }
        fn();
        {
            std::unique_lock<std::mutex> lk(mu_);
            rec->state = ThreadRec::St::kDone;
            running_ = kNone;
            note_locked(DecisionKind::kExit, rec->id, 0);
            wake_joiners_locked(rec);
            detail::t_reg = {};
            schedule_locked(lk);
        }
    });
}

void
Simulation::attach(std::string name)
{
    assert(detail::t_reg.rec == nullptr &&
           "thread already registered with a simulation");
    std::unique_lock<std::mutex> lk(mu_);
    auto owned = std::make_unique<ThreadRec>();
    ThreadRec* rec = owned.get();
    rec->id = static_cast<uint32_t>(threads_.size());
    rec->name = std::move(name);
    rec->state = ThreadRec::St::kRunnable;
    rec->tid = std::this_thread::get_id();
    note_locked(DecisionKind::kSpawn, rec->id, 1);
    threads_.push_back(std::move(owned));
    detail::t_reg = {this, rec};
    if (running_ == kNone) schedule_locked(lk);
    park_until_running_locked(lk, *rec);
}

void
Simulation::detach()
{
    auto* rec = static_cast<ThreadRec*>(detail::t_reg.rec);
    assert(rec != nullptr && detail::t_reg.sim == this);
    std::unique_lock<std::mutex> lk(mu_);
    rec->state = ThreadRec::St::kDone;
    running_ = kNone;
    ++detaches_;
    note_locked(DecisionKind::kExit, rec->id, 1);
    detail::t_reg = {};
    schedule_locked(lk);
}

bool
Simulation::wait(const void* chan, std::unique_lock<std::mutex>& user_lock,
                 uint64_t deadline_ns)
{
    auto* rec = static_cast<ThreadRec*>(detail::t_reg.rec);
    assert(rec != nullptr && detail::t_reg.sim == this &&
           "sim wait from unregistered thread");
    std::unique_lock<std::mutex> lk(mu_);
    rec->state = ThreadRec::St::kBlocked;
    rec->chan = chan;
    rec->deadline = deadline_ns;
    rec->timed_out = false;
    running_ = kNone;
    note_locked(DecisionKind::kBlock, rec->id,
                deadline_ns == kNoDeadline ? 0 : deadline_ns);
    // Release the caller's mutex only after registering: a notifier
    // must either see the registration or have acted before we held
    // the user lock — no lost wakeups.
    user_lock.unlock();
    schedule_locked(lk);
    park_until_running_locked(lk, *rec);
    bool timed_out = rec->timed_out;
    rec->timed_out = false;
    lk.unlock();
    user_lock.lock();
    return !timed_out;
}

void
Simulation::notify(const void* chan, bool all)
{
    std::unique_lock<std::mutex> lk(mu_);
    std::vector<uint32_t> waiters;
    for (const auto& t : threads_) {
        if (t->state == ThreadRec::St::kBlocked && t->chan == chan) {
            waiters.push_back(t->id);
        }
    }
    if (waiters.empty()) return;
    auto wake = [&](uint32_t id) {
        ThreadRec& r = *threads_[id];
        r.state = ThreadRec::St::kRunnable;
        r.chan = nullptr;
        r.deadline = kNoDeadline;
        r.timed_out = false;
    };
    if (all) {
        for (uint32_t id : waiters) wake(id);
        note_locked(DecisionKind::kNotifyAll, waiters[0],
                    waiters.size());
    } else {
        uint32_t pick =
            waiters.size() == 1
                ? waiters[0]
                : waiters[static_cast<size_t>(
                      rng_next(rng_state_) % waiters.size())];
        wake(pick);
        note_locked(DecisionKind::kNotify, pick, waiters.size());
    }
    // A notify from the token holder never reschedules (the woken
    // thread runs when the holder next blocks or yields); a notify
    // from an unregistered actor while the simulation idles must
    // restart the scheduler itself.
    if (running_ == kNone) schedule_locked(lk);
}

void
Simulation::wake_joiners_locked(const void* chan)
{
    size_t woken = 0;
    uint32_t first = kNone;
    for (const auto& t : threads_) {
        if (t->state == ThreadRec::St::kBlocked && t->chan == chan) {
            t->state = ThreadRec::St::kRunnable;
            t->chan = nullptr;
            t->deadline = kNoDeadline;
            t->timed_out = false;
            if (first == kNone) first = t->id;
            ++woken;
        }
    }
    if (woken > 0) {
        note_locked(DecisionKind::kNotifyAll, first, woken);
    }
}

void
Simulation::join(std::thread& t)
{
    auto* rec = static_cast<ThreadRec*>(detail::t_reg.rec);
    assert(rec != nullptr && detail::t_reg.sim == this);
    if (!t.joinable()) return;
    const std::thread::id target = t.get_id();
    {
        std::unique_lock<std::mutex> lk(mu_);
        ThreadRec* trec = nullptr;
        for (;;) {
            for (const auto& tr : threads_) {
                if (tr.get() != rec && tr->tid == target) {
                    trec = tr.get();
                    break;
                }
            }
            if (trec != nullptr || embryos_ == 0) break;
            // The target may be a spawned thread that has not checked
            // in yet; its check-in signals embryo_cv_.
            embryo_cv_.wait(lk);
        }
        while (trec != nullptr &&
               trec->state != ThreadRec::St::kDone) {
            rec->state = ThreadRec::St::kBlocked;
            rec->chan = trec;  // the exit path wakes chan == rec
            rec->deadline = kNoDeadline;
            rec->timed_out = false;
            running_ = kNone;
            note_locked(DecisionKind::kBlock, rec->id, 0);
            schedule_locked(lk);
            park_until_running_locked(lk, *rec);
        }
    }
    // The target is past its last simulated action (or was never a
    // participant); the real join completes without the token.
    t.join();
}

void
Simulation::sleep_ns(uint64_t ns)
{
    auto* rec = static_cast<ThreadRec*>(detail::t_reg.rec);
    assert(rec != nullptr && detail::t_reg.sim == this);
    std::unique_lock<std::mutex> lk(mu_);
    rec->state = ThreadRec::St::kBlocked;
    rec->chan = rec;  // private channel: only the clock can wake it
    rec->deadline = now() + ns;
    rec->timed_out = false;
    running_ = kNone;
    note_locked(DecisionKind::kBlock, rec->id, rec->deadline);
    schedule_locked(lk);
    park_until_running_locked(lk, *rec);
    rec->timed_out = false;
}

void
Simulation::checkpoint(bool force)
{
    auto* rec = static_cast<ThreadRec*>(detail::t_reg.rec);
    if (rec == nullptr || detail::t_reg.sim != this) return;
    std::unique_lock<std::mutex> lk(mu_);
    bool others = embryos_ > 0;
    if (!others) {
        for (const auto& t : threads_) {
            if (t.get() != rec &&
                t->state == ThreadRec::St::kRunnable) {
                others = true;
                break;
            }
        }
    }
    if (!others) return;  // nobody to switch to; keep running
    if (!force && rng_next(rng_state_) % kYieldDenom != 0) return;
    note_locked(DecisionKind::kYield, rec->id, 0);
    rec->state = ThreadRec::St::kRunnable;
    running_ = kNone;
    schedule_locked(lk);
    park_until_running_locked(lk, *rec);
}

uint64_t
Simulation::decision_count() const
{
    return decision_count_.load(std::memory_order_relaxed);
}

std::string
Simulation::decision_log() const
{
    std::unique_lock<std::mutex> lk(mu_);
    std::string out;
    out.reserve(decisions_.size() * 24);
    for (const Decision& d : decisions_) {
        out += str_format("%llu %s t%u %llu\n",
                          static_cast<unsigned long long>(d.step),
                          decision_kind_name(d.kind), d.thread,
                          static_cast<unsigned long long>(d.arg));
    }
    return out;
}

std::thread
spawn_thread(const char* name, std::function<void()> fn)
{
    if (Simulation* s = Simulation::installed()) {
        return s->spawn(name, std::move(fn));
    }
    return std::thread(std::move(fn));
}

}  // namespace bitc::sim
