#include "support/intern.hpp"

#include <cassert>

namespace bitc {

Symbol
SymbolTable::intern(std::string_view text)
{
    auto it = index_.find(std::string(text));
    if (it != index_.end()) return Symbol(it->second);
    uint32_t id = static_cast<uint32_t>(strings_.size());
    strings_.emplace_back(text);
    index_.emplace(strings_.back(), id);
    return Symbol(id);
}

const std::string&
SymbolTable::text(Symbol symbol) const
{
    assert(symbol.is_valid() && symbol.id() < strings_.size());
    return strings_[symbol.id()];
}

}  // namespace bitc
