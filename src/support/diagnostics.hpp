/**
 * @file
 * Diagnostic accumulation for the language pipeline.
 *
 * Every front-end stage (lexer, parser, type checker, verifier) reports
 * problems into a DiagnosticEngine instead of printing or aborting, so
 * tests can assert on exact diagnostics and tools can render them.
 */
#ifndef BITC_SUPPORT_DIAGNOSTICS_HPP
#define BITC_SUPPORT_DIAGNOSTICS_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "support/source_location.hpp"

namespace bitc {

/** Severity of a diagnostic. Errors make the pipeline fail. */
enum class Severity { kNote, kWarning, kError };

const char* severity_name(Severity severity);

/** One reported problem, anchored to a source span. */
struct Diagnostic {
    Severity severity = Severity::kError;
    SourceSpan span;
    std::string message;

    /** "3:7: error: unbound identifier 'x'" rendering. */
    std::string to_string() const;
};

/**
 * Collects diagnostics produced while processing one compilation unit.
 */
class DiagnosticEngine {
  public:
    void error(SourceSpan span, std::string message);
    void warning(SourceSpan span, std::string message);
    void note(SourceSpan span, std::string message);

    bool has_errors() const { return error_count_ > 0; }
    size_t error_count() const { return error_count_; }
    size_t warning_count() const { return warning_count_; }

    const std::vector<Diagnostic>& diagnostics() const {
        return diagnostics_;
    }

    /** All diagnostics, one per line. */
    std::string to_string() const;

    /** Message of the first error, or "" if none; handy in tests. */
    std::string first_error() const;

    void clear();

  private:
    std::vector<Diagnostic> diagnostics_;
    size_t error_count_ = 0;
    size_t warning_count_ = 0;
};

}  // namespace bitc

#endif  // BITC_SUPPORT_DIAGNOSTICS_HPP
