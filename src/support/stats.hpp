/**
 * @file
 * Latency/throughput statistics used by the experiment harness,
 * notably pause-time percentiles for the storage-management study (C2).
 */
#ifndef BITC_SUPPORT_STATS_HPP
#define BITC_SUPPORT_STATS_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace bitc {

/**
 * Records individual samples (e.g. nanosecond pause times) and reports
 * order statistics.  Stores raw samples; fine for the ~1e6 sample scale
 * of these experiments.
 */
class SampleStats {
  public:
    void record(double value) { samples_.push_back(value); }
    void clear() { samples_.clear(); }

    size_t count() const { return samples_.size(); }
    double min() const;
    double max() const;
    double mean() const;
    double stddev() const;
    /** q in [0,1]; nearest-rank percentile. Requires count() > 0. */
    double percentile(double q) const;
    double sum() const;

    /** "n=100 mean=1.2 p50=1.0 p99=3.4 max=9.1" rendering. */
    std::string summary() const;

  private:
    // percentile() sorts a copy lazily; recording stays O(1).
    std::vector<double> samples_;
};

/** Monotonic wall-clock in nanoseconds. */
uint64_t now_ns();

/** RAII timer recording elapsed ns into a SampleStats on destruction. */
class ScopedTimer {
  public:
    explicit ScopedTimer(SampleStats& stats)
        : stats_(stats), start_(now_ns()) {}
    ~ScopedTimer() {
        stats_.record(static_cast<double>(now_ns() - start_));
    }
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

  private:
    SampleStats& stats_;
    uint64_t start_;
};

}  // namespace bitc

#endif  // BITC_SUPPORT_STATS_HPP
