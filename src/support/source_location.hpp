/**
 * @file
 * Source positions and spans for the BitC-like language front end.
 */
#ifndef BITC_SUPPORT_SOURCE_LOCATION_HPP
#define BITC_SUPPORT_SOURCE_LOCATION_HPP

#include <cstdint>
#include <string>

namespace bitc {

/** A 1-based (line, column) position within a named source buffer. */
struct SourceLoc {
    uint32_t line = 0;
    uint32_t column = 0;

    bool is_valid() const { return line != 0; }

    bool operator==(const SourceLoc&) const = default;

    /** "12:3" rendering; "?" when invalid. */
    std::string to_string() const {
        if (!is_valid()) return "?";
        return std::to_string(line) + ":" + std::to_string(column);
    }
};

/** Half-open span [begin, end) over a source buffer. */
struct SourceSpan {
    SourceLoc begin;
    SourceLoc end;

    bool is_valid() const { return begin.is_valid(); }

    bool operator==(const SourceSpan&) const = default;

    std::string to_string() const { return begin.to_string(); }

    /** Smallest span covering both operands. */
    static SourceSpan join(const SourceSpan& a, const SourceSpan& b) {
        if (!a.is_valid()) return b;
        if (!b.is_valid()) return a;
        return SourceSpan{a.begin, b.end};
    }
};

}  // namespace bitc

#endif  // BITC_SUPPORT_SOURCE_LOCATION_HPP
