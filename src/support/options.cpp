#include "support/options.hpp"

#include <cstdlib>

#include "support/string_util.hpp"

namespace bitc::options {

namespace {

/** Strict unsigned parse: the whole token must be digits. */
Result<uint64_t>
parse_count(const std::string& key, const std::string& value)
{
    // strtoull silently accepts a sign (negatives wrap); digits only.
    bool digits_only = !value.empty();
    for (char ch : value) digits_only = digits_only && ch >= '0' && ch <= '9';
    char* end = nullptr;
    unsigned long long n = std::strtoull(value.c_str(), &end, 10);
    if (!digits_only || end == value.c_str() || *end != '\0') {
        return invalid_argument_error(
            str_format("%s wants a number, got '%s'", key.c_str(),
                       value.c_str()));
    }
    return static_cast<uint64_t>(n);
}

/** Splits "a,b,c" into tokens (no empties collapsed). */
std::vector<std::string>
split(const std::string& text, char sep)
{
    std::vector<std::string> out;
    size_t pos = 0;
    while (pos <= text.size()) {
        size_t next = text.find(sep, pos);
        if (next == std::string::npos) next = text.size();
        out.push_back(text.substr(pos, next - pos));
        if (next == text.size()) break;
        pos = next + 1;
    }
    return out;
}

/** Splits one "key=value" clause. */
Status
split_clause(const std::string& clause, std::string& key,
             std::string& value)
{
    size_t eq = clause.find('=');
    if (eq == std::string::npos) {
        return invalid_argument_error(str_format(
            "clause '%s' is not key=value", clause.c_str()));
    }
    key = clause.substr(0, eq);
    value = clause.substr(eq + 1);
    return Status::ok();
}

}  // namespace

// --- PipelineSpec --------------------------------------------------------

Status
PipelineSpec::validate() const
{
    for (size_t w : workers) {
        if (w == 0) {
            return invalid_argument_error(
                "pipeline workers must be >= 1 per stage");
        }
    }
    if (queue_capacity == 0) {
        return invalid_argument_error("pipeline queue must be >= 1");
    }
    if (batch_packets == 0) {
        return invalid_argument_error("pipeline batch must be >= 1");
    }
    return Status::ok();
}

std::string
PipelineSpec::to_string() const
{
    bool uniform = true;
    for (size_t w : workers) uniform = uniform && w == workers[0];
    std::string w;
    if (uniform) {
        w = str_format("%zu", workers[0]);
    } else {
        for (size_t s = 0; s < workers.size(); ++s) {
            w += str_format(s == 0 ? "%zu" : ":%zu", workers[s]);
        }
    }
    return str_format(
        "workers=%s,queue=%zu,batch=%zu,packets=%zu,impl=%s,"
        "seed=%llu,payload=%zu,lookup-us=%u,restarts=%u,window=%llu,"
        "backoff=%llu,deadline=%llu",
        w.c_str(), queue_capacity, batch_packets, packets,
        migrated ? "bitc" : "legacy",
        static_cast<unsigned long long>(seed), payload_bytes,
        lookup_latency_us, max_restarts,
        static_cast<unsigned long long>(restart_window_ms),
        static_cast<unsigned long long>(backoff_ms),
        static_cast<unsigned long long>(deadline_ms));
}

Result<PipelineSpec>
PipelineSpec::parse(const std::string& spec)
{
    PipelineSpec out;
    if (spec.empty()) return out;
    for (const std::string& clause : split(spec, ',')) {
        std::string key, value;
        BITC_RETURN_IF_ERROR(split_clause(clause, key, value));
        if (key == "workers") {
            // Either one count for all stages or s0:s1:s2:s3.
            std::vector<std::string> fields = split(value, ':');
            if (fields.size() != 1 &&
                fields.size() != kPipelineStages) {
                return invalid_argument_error(
                    "workers wants 1 or 4 colon-separated counts");
            }
            std::array<size_t, kPipelineStages> w{};
            for (size_t i = 0; i < fields.size(); ++i) {
                BITC_ASSIGN_OR_RETURN(
                    uint64_t n, parse_count("workers", fields[i]));
                if (n == 0) {
                    return invalid_argument_error(str_format(
                        "bad worker count '%s'", fields[i].c_str()));
                }
                w[i] = static_cast<size_t>(n);
            }
            if (fields.size() == 1) w.fill(w[0]);
            out.workers = w;
        } else if (key == "queue") {
            BITC_ASSIGN_OR_RETURN(uint64_t n, parse_count(key, value));
            out.queue_capacity = static_cast<size_t>(n);
        } else if (key == "batch") {
            BITC_ASSIGN_OR_RETURN(uint64_t n, parse_count(key, value));
            out.batch_packets = static_cast<size_t>(n);
        } else if (key == "packets") {
            BITC_ASSIGN_OR_RETURN(uint64_t n, parse_count(key, value));
            out.packets = static_cast<size_t>(n);
        } else if (key == "seed") {
            BITC_ASSIGN_OR_RETURN(out.seed, parse_count(key, value));
        } else if (key == "payload") {
            BITC_ASSIGN_OR_RETURN(uint64_t n, parse_count(key, value));
            out.payload_bytes = static_cast<size_t>(n);
        } else if (key == "lookup-us") {
            BITC_ASSIGN_OR_RETURN(uint64_t n, parse_count(key, value));
            out.lookup_latency_us = static_cast<uint32_t>(n);
        } else if (key == "restarts") {
            BITC_ASSIGN_OR_RETURN(uint64_t n, parse_count(key, value));
            out.max_restarts = static_cast<uint32_t>(n);
        } else if (key == "window") {
            BITC_ASSIGN_OR_RETURN(out.restart_window_ms,
                                  parse_count(key, value));
        } else if (key == "backoff") {
            BITC_ASSIGN_OR_RETURN(out.backoff_ms,
                                  parse_count(key, value));
        } else if (key == "deadline") {
            BITC_ASSIGN_OR_RETURN(out.deadline_ms,
                                  parse_count(key, value));
        } else if (key == "impl") {
            if (value == "legacy") {
                out.migrated = false;
            } else if (value == "bitc" || value == "migrated") {
                out.migrated = true;
            } else {
                return invalid_argument_error(str_format(
                    "pipeline impl '%s' (want legacy|bitc)",
                    value.c_str()));
            }
        } else {
            return invalid_argument_error(str_format(
                "unknown pipeline key '%s'", key.c_str()));
        }
    }
    BITC_RETURN_IF_ERROR(out.validate());
    return out;
}

// --- ServeSpec -----------------------------------------------------------

Status
ServeSpec::validate() const
{
    if (host.empty()) {
        return invalid_argument_error("serve host must be nonempty");
    }
    if (write_queue_frames == 0) {
        return invalid_argument_error(
            "serve write-queue must be >= 1");
    }
    if (max_connections == 0) {
        return invalid_argument_error("serve max-conns must be >= 1");
    }
    return Status::ok();
}

std::string
ServeSpec::to_string() const
{
    return str_format(
        "%s:%u,write-queue=%zu,max-frames=%llu,stall-ms=%llu,"
        "max-conns=%zu",
        host.c_str(), static_cast<unsigned>(port), write_queue_frames,
        static_cast<unsigned long long>(max_frames),
        static_cast<unsigned long long>(write_stall_ms),
        max_connections);
}

Result<ServeSpec>
ServeSpec::parse(const std::string& spec)
{
    if (spec.empty()) {
        return invalid_argument_error("serve spec is empty");
    }
    ServeSpec out;
    std::vector<std::string> clauses = split(spec, ',');
    // First clause is HOST:PORT; the last ':' splits it so bracketless
    // IPv6-ish hosts with colons still parse.
    const std::string& endpoint = clauses[0];
    size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos || colon == 0) {
        return invalid_argument_error(str_format(
            "serve endpoint '%s' is not HOST:PORT",
            endpoint.c_str()));
    }
    out.host = endpoint.substr(0, colon);
    BITC_ASSIGN_OR_RETURN(
        uint64_t port, parse_count("port", endpoint.substr(colon + 1)));
    if (port > 0xffff) {
        return invalid_argument_error(
            str_format("serve port %llu out of range",
                       static_cast<unsigned long long>(port)));
    }
    out.port = static_cast<uint16_t>(port);
    for (size_t i = 1; i < clauses.size(); ++i) {
        std::string key, value;
        BITC_RETURN_IF_ERROR(split_clause(clauses[i], key, value));
        if (key == "write-queue") {
            BITC_ASSIGN_OR_RETURN(uint64_t n, parse_count(key, value));
            out.write_queue_frames = static_cast<size_t>(n);
        } else if (key == "max-frames") {
            BITC_ASSIGN_OR_RETURN(out.max_frames,
                                  parse_count(key, value));
        } else if (key == "stall-ms") {
            BITC_ASSIGN_OR_RETURN(out.write_stall_ms,
                                  parse_count(key, value));
        } else if (key == "max-conns") {
            BITC_ASSIGN_OR_RETURN(uint64_t n, parse_count(key, value));
            out.max_connections = static_cast<size_t>(n);
        } else {
            return invalid_argument_error(str_format(
                "unknown serve key '%s'", key.c_str()));
        }
    }
    BITC_RETURN_IF_ERROR(out.validate());
    return out;
}

// --- FaultPlan -----------------------------------------------------------

Status
FaultPlan::validate() const
{
    for (const Clause& c : clauses) {
        if (c.action != Action::kCount && c.operand == 0) {
            return invalid_argument_error(str_format(
                "fault clause for %s wants a 1-based operand",
                fault::site_name(c.site)));
        }
    }
    return Status::ok();
}

std::string
FaultPlan::to_string() const
{
    if (empty()) return "";
    std::string out;
    auto append = [&](const std::string& clause) {
        if (!out.empty()) out += ',';
        out += clause;
    };
    if (count_all) append("count");
    for (const Clause& c : clauses) {
        switch (c.action) {
          case Action::kCount:
            append(str_format("%s:count", fault::site_name(c.site)));
            break;
          case Action::kNth:
            append(str_format(
                "%s:nth=%llu", fault::site_name(c.site),
                static_cast<unsigned long long>(c.operand)));
            break;
          case Action::kEvery:
            append(str_format(
                "%s:every=%llu", fault::site_name(c.site),
                static_cast<unsigned long long>(c.operand)));
            break;
        }
    }
    return out;
}

Result<FaultPlan>
FaultPlan::parse(const std::string& plan)
{
    FaultPlan out;
    if (plan.empty() || plan == "off") return out;
    for (const std::string& clause : split(plan, ',')) {
        if (clause == "count") {
            out.count_all = true;
            continue;
        }
        size_t colon = clause.find(':');
        if (colon == std::string::npos) {
            return invalid_argument_error(str_format(
                "fault clause '%s' is not site:action",
                clause.c_str()));
        }
        BITC_ASSIGN_OR_RETURN(
            fault::Site site,
            fault::parse_site(clause.substr(0, colon)));
        std::string action = clause.substr(colon + 1);
        Clause c;
        c.site = site;
        if (action == "count") {
            c.action = Action::kCount;
        } else if (action.rfind("nth=", 0) == 0) {
            c.action = Action::kNth;
            BITC_ASSIGN_OR_RETURN(
                c.operand, parse_count("nth", action.substr(4)));
        } else if (action.rfind("every=", 0) == 0) {
            c.action = Action::kEvery;
            BITC_ASSIGN_OR_RETURN(
                c.operand, parse_count("every", action.substr(6)));
        } else {
            return invalid_argument_error(str_format(
                "fault action '%s' (want count|nth=N|every=K)",
                action.c_str()));
        }
        out.clauses.push_back(c);
    }
    BITC_RETURN_IF_ERROR(out.validate());
    return out;
}

// --- RuntimeOptions ------------------------------------------------------

Status
RuntimeOptions::validate() const
{
    BITC_RETURN_IF_ERROR(pipeline.validate());
    if (serve.has_value()) BITC_RETURN_IF_ERROR(serve->validate());
    return faults.validate();
}

// --- CLI option table ----------------------------------------------------

const std::vector<CliOption>&
cli_options()
{
    static const std::vector<CliOption> kTable = {
        {"--entry", "NAME", "entry function for run (default: main)"},
        {"--mode", "unboxed|boxed",
         "value representation (default: unboxed)"},
        {"--heap", "POLICY",
         "region|manual|refcount|mark-sweep|mark-compact|semispace|"
         "generational"},
        {"--heap-words", "N", "heap size in 64-bit words (default: 4M)"},
        {"--dispatch", "switch|threaded",
         "interpreter loop (default: threaded)"},
        {"--profile", nullptr,
         "print a per-opcode count/time table after run"},
        {"--no-fold", nullptr, "disable constant folding"},
        {"--no-bce", nullptr, "keep all checks even when proved"},
        {"--no-verify", nullptr, "skip verification entirely"},
        {"--overflow", nullptr,
         "also emit overflow obligations (verify)"},
        {"--stats", nullptr,
         "print instruction/heap statistics after run"},
        {"--faults", "PLAN",
         "arm fault injection: site:nth=N | site:every=K | count"},
        {"--metrics", "FILE",
         "write the versioned metrics JSON snapshot (\"-\" = stdout)"},
        {"--trace", "FILE", "record runtime events; write the dump"},
        {"--pipeline", "SPEC",
         "run the CSP packet-pipeline server (see spec grammar below)"},
        {"--serve", "HOST:PORT[,opts]",
         "serve the pipeline over TCP: write-queue=N, max-frames=N, "
         "stall-ms=MS, max-conns=N"},
    };
    return kTable;
}

std::string
cli_usage()
{
    std::string out =
        "usage: bitcc {check|verify|disasm|run} FILE [options] "
        "[-- args...]\n"
        "       bitcc --pipeline SPEC [--faults PLAN] "
        "[--metrics FILE] [--trace FILE]\n"
        "       bitcc --serve HOST:PORT[,opts] [--pipeline SPEC] "
        "[--faults PLAN]\n"
        "             [--metrics FILE] [--trace FILE]\n"
        "options:\n";
    for (const CliOption& opt : cli_options()) {
        std::string flag = opt.flag;
        if (opt.value != nullptr) {
            flag += ' ';
            flag += opt.value;
        }
        out += str_format("  %-28s %s\n", flag.c_str(), opt.help);
    }
    out +=
        "pipeline spec (comma-separated key=value):\n"
        "  workers=N|a:b:c:d queue=N batch=N packets=N "
        "impl=legacy|bitc\n"
        "  seed=N payload=BYTES lookup-us=US restarts=N window=MS\n"
        "  backoff=MS deadline=MS\n";
    return out;
}

}  // namespace bitc::options
