/**
 * @file
 * Deterministic, seedless fault injection for the runtime's failure
 * boundaries.
 *
 * Systems code is reasoned about under failure: allocation can fail at
 * any site, a commit can be refused, a channel peer can vanish.  The
 * paper's credibility argument (safe systems languages must keep their
 * guarantees on the *failure* paths, not just the hot paths) is only
 * testable if failures can be provoked on demand, at a precise site,
 * reproducibly.  This module provides that: every fallible runtime
 * boundary declares a tagged injection point, and a process-wide
 * injector arms plans like "fail the Nth hit of site S" or "fail every
 * Kth hit".  The exhaustive sweep driver in tests/robustness/ runs a
 * workload once to census the hits, then re-runs it once per hit with
 * that hit forced to fail.
 *
 * Cost model: when disarmed (the production state) an injection point
 * is one relaxed atomic load and a predicted-not-taken branch —
 * bench_robustness holds this under 1.10x on the shared kernels, well
 * inside the paper's F1 band.  Counters only tick while armed.
 */
#ifndef BITC_SUPPORT_FAULT_HPP
#define BITC_SUPPORT_FAULT_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "support/status.hpp"

namespace bitc::fault {

/** Tagged injection points, one per hardened runtime boundary. */
enum class Site : uint8_t {
    kHeapAlloc = 0,  ///< ManagedHeap::allocate, every policy.
    kGcTrigger,      ///< Entry of a collection; injection denies the GC.
    kStmCommit,      ///< Txn::commit; injection forces an abort.
    kChannelOp,      ///< Channel send/recv entry points.
    kFfiMarshal,     ///< Record marshalling and VM buffer crossings.
    kWorkerCrash,    ///< Supervised worker loops; injection kills the worker.
    kSocketIo,       ///< Network accept/read/write system-call boundaries.
};

/** Number of distinct sites (array sizing). */
inline constexpr size_t kNumSites = 7;

/** Stable name used in plans and messages, e.g. "heap-alloc". */
const char* site_name(Site site);

/** Parses a site name; inverse of site_name. */
Result<Site> parse_site(const std::string& name);

/** Per-site hit/injection counters (snapshot). */
struct SiteCounters {
    uint64_t hits = 0;      ///< Times the site was reached while armed.
    uint64_t injected = 0;  ///< Times a failure was injected.
};

namespace detail {
/** Process-wide fast flag: false means every inject() is a no-op. */
extern std::atomic<bool> g_armed;
/** Slow path: counts the hit and decides; defined in fault.cpp. */
bool on_hit(Site site);
}  // namespace detail

/**
 * The process-wide injector.  Thread-safe for concurrent inject()
 * calls; arming/disarming must not race with injection points (tests
 * arm before starting worker threads and disarm after joining them).
 */
class Injector {
  public:
    static Injector& instance();

    /**
     * Arms a plan and resets all counters.  Grammar (documented in
     * docs/robustness.md):
     *
     *   plan    := "off" | clause ("," clause)*
     *   clause  := "count" | site ":" action
     *   action  := "nth=" N | "every=" K | "count"
     *
     * "count" alone counts hits at every site without failing any —
     * the census mode the sweep driver uses.  N and K are 1-based;
     * "nth=3" fails exactly the third hit, "every=2" fails hits
     * 2, 4, 6, ...
     */
    Status arm(const std::string& plan);

    // The programmatic arms below zero the armed site's counters (and
    // arm_count zeroes all of them): arming is always the start of a
    // fresh experiment, never a continuation of a previous one's hit
    // numbering.

    /** Arms "fail the @p nth hit of @p site" (1-based). */
    void arm_nth(Site site, uint64_t nth);
    /** Arms "fail every @p k-th hit of @p site" (k >= 1). */
    void arm_every(Site site, uint64_t k);
    /** Arms count-only mode at every site. */
    void arm_count();
    /** Disarms everything; injection points return to the fast path. */
    void disarm();
    /** Zeroes hit/injection counters without changing the plan. */
    void reset_counters();

    bool armed() const {
        return detail::g_armed.load(std::memory_order_relaxed);
    }

    SiteCounters counters(Site site) const;
    uint64_t hits(Site site) const { return counters(site).hits; }
    uint64_t injected(Site site) const {
        return counters(site).injected;
    }

    /** "heap-alloc: 12 hits, 1 injected" lines for every armed site. */
    std::string report() const;

    /**
     * Per-site counters as a JSON object keyed by site name, e.g.
     *
     *   { "heap-alloc": {"hits": 12, "injected": 1}, ... }
     *
     * Iterates the site registry, so every Site — present and future —
     * appears without edits here or in the serializer; tools splice it
     * into the metrics document as the "fault_sites" section.  Indented
     * for 2-space nesting inside that document.
     */
    std::string sites_json() const;

  private:
    Injector() = default;
    friend bool detail::on_hit(Site);

    // Plan word per site: mode in the top 2 bits, operand below.
    // Packing keeps reads race-free against a concurrent arm() without
    // a lock on the injection path.
    static constexpr uint64_t kModeShift = 62;
    static constexpr uint64_t kModeOff = 0;
    static constexpr uint64_t kModeCount = 1;
    static constexpr uint64_t kModeNth = 2;
    static constexpr uint64_t kModeEvery = 3;

    void set_plan(Site site, uint64_t mode, uint64_t operand);
    void reset_site(Site site);

    std::array<std::atomic<uint64_t>, kNumSites> plans_{};
    std::array<std::atomic<uint64_t>, kNumSites> hits_{};
    std::array<std::atomic<uint64_t>, kNumSites> injected_{};
};

/**
 * The injection point.  Returns true when the caller must fail now
 * (with injected_error(site) or the site's native failure mode).
 */
inline bool
inject(Site site)
{
    if (__builtin_expect(
            !detail::g_armed.load(std::memory_order_relaxed), 1)) {
        return false;
    }
    return detail::on_hit(site);
}

/** The Status an injected failure surfaces as: kResourceExhausted. */
Status injected_error(Site site);

/**
 * RAII plan: arms on construction, disarms on destruction.  Tests use
 * this so a failed assertion cannot leave the process armed.
 */
class ScopedPlan {
  public:
    explicit ScopedPlan(const std::string& plan)
        : status_(Injector::instance().arm(plan)) {}
    ~ScopedPlan() { Injector::instance().disarm(); }
    ScopedPlan(const ScopedPlan&) = delete;
    ScopedPlan& operator=(const ScopedPlan&) = delete;

    /** Parse result of the plan string. */
    const Status& status() const { return status_; }

  private:
    Status status_;
};

}  // namespace bitc::fault

#endif  // BITC_SUPPORT_FAULT_HPP
