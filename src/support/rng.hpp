/**
 * @file
 * Deterministic xorshift128+ RNG for workload generators and property
 * tests.  Deterministic seeding keeps every benchmark and property test
 * reproducible run-to-run, which the experiment harness relies on.
 */
#ifndef BITC_SUPPORT_RNG_HPP
#define BITC_SUPPORT_RNG_HPP

#include <cstdint>

namespace bitc {

/** xorshift128+ generator; not cryptographic, very fast, deterministic. */
class Rng {
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
        // splitmix64 seeding avoids correlated low-entropy states.
        state_[0] = splitmix(seed);
        state_[1] = splitmix(seed + 0xbf58476d1ce4e5b9ull);
    }

    /** Uniform 64-bit value. */
    uint64_t next() {
        uint64_t s1 = state_[0];
        const uint64_t s0 = state_[1];
        state_[0] = s0;
        s1 ^= s1 << 23;
        state_[1] = s1 ^ s0 ^ (s1 >> 17) ^ (s0 >> 26);
        return state_[1] + s0;
    }

    /** Uniform value in [0, bound); bound must be nonzero. */
    uint64_t next_below(uint64_t bound) { return next() % bound; }

    /** Uniform value in [lo, hi] inclusive. */
    int64_t next_in(int64_t lo, int64_t hi) {
        return lo + static_cast<int64_t>(
            next_below(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double next_double() {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability @p p of true. */
    bool next_bool(double p = 0.5) { return next_double() < p; }

  private:
    static uint64_t splitmix(uint64_t x) {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    }

    uint64_t state_[2];
};

}  // namespace bitc

#endif  // BITC_SUPPORT_RNG_HPP
