#include "support/diagnostics.hpp"

namespace bitc {

const char*
severity_name(Severity severity)
{
    switch (severity) {
      case Severity::kNote: return "note";
      case Severity::kWarning: return "warning";
      case Severity::kError: return "error";
    }
    return "unknown";
}

std::string
Diagnostic::to_string() const
{
    std::string out = span.to_string();
    out += ": ";
    out += severity_name(severity);
    out += ": ";
    out += message;
    return out;
}

void
DiagnosticEngine::error(SourceSpan span, std::string message)
{
    diagnostics_.push_back({Severity::kError, span, std::move(message)});
    ++error_count_;
}

void
DiagnosticEngine::warning(SourceSpan span, std::string message)
{
    diagnostics_.push_back({Severity::kWarning, span, std::move(message)});
    ++warning_count_;
}

void
DiagnosticEngine::note(SourceSpan span, std::string message)
{
    diagnostics_.push_back({Severity::kNote, span, std::move(message)});
}

std::string
DiagnosticEngine::to_string() const
{
    std::string out;
    for (const Diagnostic& d : diagnostics_) {
        out += d.to_string();
        out += '\n';
    }
    return out;
}

std::string
DiagnosticEngine::first_error() const
{
    for (const Diagnostic& d : diagnostics_) {
        if (d.severity == Severity::kError) return d.message;
    }
    return "";
}

void
DiagnosticEngine::clear()
{
    diagnostics_.clear();
    error_count_ = 0;
    warning_count_ = 0;
}

}  // namespace bitc
