#include "support/string_util.hpp"

#include <cstdarg>
#include <cstdio>

namespace bitc {

std::vector<std::string>
split(std::string_view text, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == sep) {
            out.emplace_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::string
join(const std::vector<std::string>& parts, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i != 0) out += sep;
        out += parts[i];
    }
    return out;
}

bool
starts_with(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

std::string_view
trim(std::string_view text)
{
    size_t b = 0;
    size_t e = text.size();
    while (b < e && (text[b] == ' ' || text[b] == '\t' ||
                     text[b] == '\n' || text[b] == '\r')) {
        ++b;
    }
    while (e > b && (text[e - 1] == ' ' || text[e - 1] == '\t' ||
                     text[e - 1] == '\n' || text[e - 1] == '\r')) {
        --e;
    }
    return text.substr(b, e - b);
}

std::string
str_format(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out(needed > 0 ? static_cast<size_t>(needed) : 0, '\0');
    if (needed > 0) {
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

std::string
human_bytes(uint64_t bytes)
{
    const char* units[] = {"B", "KiB", "MiB", "GiB"};
    double value = static_cast<double>(bytes);
    size_t unit = 0;
    while (value >= 1024.0 && unit + 1 < 4) {
        value /= 1024.0;
        ++unit;
    }
    return str_format("%.1f %s", value, units[unit]);
}

}  // namespace bitc
