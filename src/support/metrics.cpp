#include "support/metrics.hpp"

#include "support/string_util.hpp"

namespace bitc::metrics {

namespace {

/** All registry storage, constant-initialized atomics. */
struct Registry {
    std::array<std::atomic<uint64_t>, kNumCounters> counters{};
    std::array<std::atomic<uint64_t>, kNumGauges> gauges{};
    struct Hist {
        std::atomic<uint64_t> count{};
        std::atomic<uint64_t> sum{};
        std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
    };
    std::array<Hist, kNumHistograms> histograms{};
    std::array<std::atomic<uint64_t>, kMaxOpcodes> opcodes{};
    std::atomic<const char* (*)(size_t)> opcode_namer{nullptr};
};

Registry g_registry;

constexpr std::array<const char*, kNumCounters> kCounterNames = {
    "vm.runs",
    "vm.instructions",
    "heap.allocations",
    "heap.bytes_allocated",
    "heap.frees",
    "heap.alloc_failures",
    "gc.minor_collections",
    "gc.major_collections",
    "gc.region_releases",
    "gc.bytes_reclaimed",
    "stm.commits",
    "stm.aborts",
    "stm.retries",
    "stm.abort_storms",
    "channel.sends",
    "channel.recvs",
    "channel.send_blocked",
    "channel.recv_blocked",
    "channel.closes",
    "pipeline.packets_in",
    "pipeline.packets_out",
    "pipeline.packets_dropped",
    "pipeline.fault_drops",
    "pipeline.batches",
    "pipeline.packets_shed",
    "pipeline.worker_crashes",
    "pipeline.worker_restarts",
    "pipeline.breaker_opens",
    "marshal.records_in",
    "marshal.records_out",
    "fault.hits",
    "fault.injected",
    "net.accepts",
    "net.frames_in",
    "net.frames_out",
    "net.rejects",
    "net.conn_teardowns",
    "net.pool.hits",
    "net.pool.misses",
    "net.bytes_copied",
};

constexpr std::array<const char*, kNumGauges> kGaugeNames = {
    "heap.words_in_use",
    "heap.peak_words_in_use",
    "channel.depth_high_water",
    "channel.blocked_now",
    "pipeline.workers",
    "pipeline.breakers_open",
    "net.connections",
};

constexpr std::array<const char*, kNumHistograms> kHistogramNames = {
    "gc.pause_ns",
    "stm.retries_per_txn",
    "channel.blocked_ns",
    "vm.run_ns",
    "pipeline.batch_ns",
    "pipeline.shed_late_ns",
    "net.frame_latency_ns",
    "net.writev_frames_per_call",
};

}  // namespace

const char*
counter_name(Counter c)
{
    return kCounterNames[static_cast<size_t>(c)];
}

const char*
gauge_name(Gauge g)
{
    return kGaugeNames[static_cast<size_t>(g)];
}

const char*
histogram_name(Histogram h)
{
    return kHistogramNames[static_cast<size_t>(h)];
}

namespace detail {

std::atomic<bool> g_enabled{false};

void
count_slow(Counter c, uint64_t n)
{
    g_registry.counters[static_cast<size_t>(c)].fetch_add(
        n, std::memory_order_relaxed);
}

void
gauge_set_slow(Gauge g, uint64_t value)
{
    g_registry.gauges[static_cast<size_t>(g)].store(
        value, std::memory_order_relaxed);
}

void
gauge_max_slow(Gauge g, uint64_t value)
{
    auto& cell = g_registry.gauges[static_cast<size_t>(g)];
    uint64_t seen = cell.load(std::memory_order_relaxed);
    while (seen < value &&
           !cell.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
        // seen reloaded by compare_exchange_weak.
    }
}

void
gauge_add_slow(Gauge g, uint64_t n)
{
    g_registry.gauges[static_cast<size_t>(g)].fetch_add(
        n, std::memory_order_relaxed);
}

void
gauge_sub_slow(Gauge g, uint64_t n)
{
    // Saturate at zero: a reset() between the paired add and sub must
    // not leave a level gauge wrapped around to 2^64 - n.
    auto& cell = g_registry.gauges[static_cast<size_t>(g)];
    uint64_t seen = cell.load(std::memory_order_relaxed);
    while (!cell.compare_exchange_weak(seen, seen > n ? seen - n : 0,
                                       std::memory_order_relaxed)) {
        // seen reloaded by compare_exchange_weak.
    }
}

void
observe_slow(Histogram h, uint64_t value)
{
    auto& hist = g_registry.histograms[static_cast<size_t>(h)];
    hist.count.fetch_add(1, std::memory_order_relaxed);
    hist.sum.fetch_add(value, std::memory_order_relaxed);
    hist.buckets[bucket_of(value)].fetch_add(
        1, std::memory_order_relaxed);
}

void
count_opcode_slow(size_t opcode, uint64_t n)
{
    if (opcode >= kMaxOpcodes) return;
    g_registry.opcodes[opcode].fetch_add(n,
                                         std::memory_order_relaxed);
}

}  // namespace detail

void
enable()
{
    detail::g_enabled.store(true, std::memory_order_relaxed);
}

void
disable()
{
    detail::g_enabled.store(false, std::memory_order_relaxed);
}

void
reset()
{
    for (auto& c : g_registry.counters) {
        c.store(0, std::memory_order_relaxed);
    }
    for (auto& g : g_registry.gauges) {
        g.store(0, std::memory_order_relaxed);
    }
    for (auto& h : g_registry.histograms) {
        h.count.store(0, std::memory_order_relaxed);
        h.sum.store(0, std::memory_order_relaxed);
        for (auto& b : h.buckets) {
            b.store(0, std::memory_order_relaxed);
        }
    }
    for (auto& o : g_registry.opcodes) {
        o.store(0, std::memory_order_relaxed);
    }
}

void
set_opcode_namer(const char* (*namer)(size_t))
{
    g_registry.opcode_namer.store(namer, std::memory_order_relaxed);
}

Snapshot
snapshot()
{
    Snapshot snap;
    for (size_t i = 0; i < kNumCounters; ++i) {
        snap.counters[i] =
            g_registry.counters[i].load(std::memory_order_relaxed);
    }
    for (size_t i = 0; i < kNumGauges; ++i) {
        snap.gauges[i] =
            g_registry.gauges[i].load(std::memory_order_relaxed);
    }
    for (size_t i = 0; i < kNumHistograms; ++i) {
        const auto& hist = g_registry.histograms[i];
        auto& out = snap.histograms[i];
        out.count = hist.count.load(std::memory_order_relaxed);
        out.sum = hist.sum.load(std::memory_order_relaxed);
        for (size_t b = 0; b < kNumBuckets; ++b) {
            out.buckets[b] =
                hist.buckets[b].load(std::memory_order_relaxed);
        }
    }
    for (size_t i = 0; i < kMaxOpcodes; ++i) {
        snap.opcodes[i] =
            g_registry.opcodes[i].load(std::memory_order_relaxed);
    }
    return snap;
}

std::string
to_json(const Snapshot& snap)
{
    return to_json(snap, {});
}

std::string
to_json(const Snapshot& snap, const std::vector<ExtraSection>& extras)
{
    std::string out;
    out.reserve(4096);
    out += str_format("{\n  \"schema\": \"%s\",\n  \"version\": %d",
                      kJsonSchema, kJsonVersion);

    out += ",\n  \"counters\": {";
    for (size_t i = 0; i < kNumCounters; ++i) {
        out += str_format(
            "%s\n    \"%s\": %llu", i ? "," : "", kCounterNames[i],
            static_cast<unsigned long long>(snap.counters[i]));
    }
    out += "\n  }";

    out += ",\n  \"gauges\": {";
    for (size_t i = 0; i < kNumGauges; ++i) {
        out += str_format(
            "%s\n    \"%s\": %llu", i ? "," : "", kGaugeNames[i],
            static_cast<unsigned long long>(snap.gauges[i]));
    }
    out += "\n  }";

    out += ",\n  \"histograms\": {";
    for (size_t i = 0; i < kNumHistograms; ++i) {
        const auto& hist = snap.histograms[i];
        out += str_format(
            "%s\n    \"%s\": {\"count\": %llu, \"sum\": %llu, "
            "\"buckets\": [",
            i ? "," : "", kHistogramNames[i],
            static_cast<unsigned long long>(hist.count),
            static_cast<unsigned long long>(hist.sum));
        for (size_t b = 0; b < kNumBuckets; ++b) {
            out += str_format(
                "%s%llu", b ? ", " : "",
                static_cast<unsigned long long>(hist.buckets[b]));
        }
        out += "]}";
    }
    out += "\n  }";

    out += ",\n  \"opcodes\": {";
    auto namer =
        g_registry.opcode_namer.load(std::memory_order_relaxed);
    bool first = true;
    for (size_t i = 0; i < kMaxOpcodes; ++i) {
        if (snap.opcodes[i] == 0) continue;
        std::string name = namer
                               ? std::string(namer(i))
                               : str_format("op%zu", i);
        out += str_format(
            "%s\n    \"%s\": %llu", first ? "" : ",", name.c_str(),
            static_cast<unsigned long long>(snap.opcodes[i]));
        first = false;
    }
    out += "\n  }";

    for (const auto& section : extras) {
        out += str_format(",\n  \"%s\": ", section.name.c_str());
        out += section.body;
    }
    out += "\n}\n";
    return out;
}

}  // namespace bitc::metrics
