#include "support/arena.hpp"

#include <algorithm>
#include <cassert>

namespace bitc {

namespace {

/** Bytes to add to @p address to reach @p alignment. */
size_t
align_gap(const std::byte* base, size_t used, size_t alignment)
{
    auto address = reinterpret_cast<uintptr_t>(base) + used;
    uintptr_t aligned = (address + alignment - 1) & ~(alignment - 1);
    return aligned - address;
}

}  // namespace

void*
Arena::allocate(size_t bytes, size_t alignment)
{
    assert(alignment != 0 && (alignment & (alignment - 1)) == 0);
    if (bytes == 0) bytes = 1;

    if (!chunks_.empty()) {
        Chunk& chunk = chunks_.back();
        size_t gap = align_gap(chunk.data.get(), chunk.used, alignment);
        if (chunk.used + gap + bytes <= chunk.size) {
            void* p = chunk.data.get() + chunk.used + gap;
            chunk.used += gap + bytes;
            bytes_allocated_ += bytes;
            return p;
        }
    }
    add_chunk(bytes + alignment);
    Chunk& chunk = chunks_.back();
    size_t gap = align_gap(chunk.data.get(), chunk.used, alignment);
    assert(chunk.used + gap + bytes <= chunk.size);
    void* p = chunk.data.get() + chunk.used + gap;
    chunk.used += gap + bytes;
    bytes_allocated_ += bytes;
    return p;
}

void
Arena::add_chunk(size_t min_bytes)
{
    size_t size = std::max(next_chunk_bytes_, min_bytes);
    Chunk chunk;
    chunk.data = std::make_unique<std::byte[]>(size);
    chunk.size = size;
    chunks_.push_back(std::move(chunk));
    // Geometric growth caps per-allocation chunk overhead at O(1) amortized.
    next_chunk_bytes_ = std::min<size_t>(next_chunk_bytes_ * 2, 1u << 20);
}

void
Arena::reset()
{
    chunks_.clear();
    bytes_allocated_ = 0;
}

}  // namespace bitc
