/**
 * @file
 * Process-wide metrics registry: monotonic counters, gauges and
 * fixed-bucket latency histograms for the whole runtime.
 *
 * The paper's F3 argument ("the optimiser can fix it") is really about
 * transparency: systems programmers trust C because they can see what
 * the machine does.  A managed runtime earns the same trust only if its
 * costs are observable — GC pause distributions, STM abort storms,
 * channel backpressure — as uniform machine-readable telemetry rather
 * than ad-hoc printfs.  This registry is that substrate: every runtime
 * subsystem (heap policies, both interpreter loops, STM, channels,
 * marshalling, fault injection) ticks a fixed, enum-keyed set of
 * instruments, and tools snapshot them as a versioned JSON document.
 *
 * Cost model (same discipline as fault.hpp): when disabled — the
 * production default — every instrumentation point is one relaxed
 * atomic load and a predicted-not-taken branch.  When enabled, updates
 * are relaxed atomic adds; nothing blocks and nothing allocates.  Hot
 * per-allocation paths are NOT instrumented individually: the heap
 * keeps its cheap non-atomic HeapStats and callers fold *deltas* into
 * the registry at coarse boundaries (end of a VM run, end of a mutator
 * workload) via mem::fold_heap_telemetry.
 */
#ifndef BITC_SUPPORT_METRICS_HPP
#define BITC_SUPPORT_METRICS_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace bitc::metrics {

/** Monotonic counters, one per instrumented runtime event. */
enum class Counter : uint16_t {
    kVmRuns = 0,          ///< Vm::run invocations (incl. nested calls).
    kVmInstructions,      ///< Instructions retired across all runs.
    kHeapAllocations,     ///< Successful allocations (folded deltas).
    kHeapBytesAllocated,  ///< Bytes allocated (folded deltas).
    kHeapFrees,           ///< Explicit/refcount frees (folded deltas).
    kHeapAllocFailures,   ///< allocate() calls that returned an error.
    kGcMinorCollections,  ///< Nursery collections (generational).
    kGcMajorCollections,  ///< Full collections, any tracing policy.
    kGcRegionReleases,    ///< Region bulk-release pauses.
    kGcBytesReclaimed,    ///< Bytes freed by collections (live delta).
    kStmCommits,          ///< Transactions that committed.
    kStmAborts,           ///< Aborted attempts (incl. retried ones).
    kStmRetries,          ///< Re-executed attempts after an abort.
    kStmAbortStorms,      ///< try_atomically gave up after the cap.
    kChanSends,           ///< Values enqueued into channels.
    kChanRecvs,           ///< Values dequeued from channels.
    kChanSendBlocked,     ///< Sends that had to wait for space.
    kChanRecvBlocked,     ///< Receives that had to wait for data.
    kChanCloses,          ///< Channel close() calls.
    kPipePacketsIn,       ///< Packets injected into a pipeline source.
    kPipePacketsOut,      ///< Packets delivered by a pipeline sink.
    kPipePacketsDropped,  ///< Packets dropped by the validate stage.
    kPipeFaultDrops,      ///< Packets lost to injected channel faults.
    kPipeBatches,         ///< Stage hand-off batches sent downstream.
    kPipePacketsShed,     ///< Packets shed because their deadline passed.
    kPipeWorkerCrashes,   ///< Supervised worker bodies that died.
    kPipeWorkerRestarts,  ///< Worker bodies restarted by a supervisor.
    kPipeBreakerOpens,    ///< Circuit breakers that tripped open.
    kMarshalRecordsIn,    ///< Records unmarshalled from raw bytes.
    kMarshalRecordsOut,   ///< Records marshalled out to raw bytes.
    kFaultHits,           ///< Armed fault sites reached.
    kFaultsInjected,      ///< Failures actually injected.
    kNetAccepts,          ///< Connections accepted by the server.
    kNetFramesIn,         ///< Wire frames decoded off sockets.
    kNetFramesOut,        ///< Wire frames fully written to sockets.
    kNetRejects,          ///< Frames answered with error/reject frames.
    kNetConnTeardowns,    ///< Connections torn down as sick.
    kNetPoolHits,         ///< Buffer acquires served from a freelist.
    kNetPoolMisses,       ///< Buffer acquires that hit the allocator.
    kNetBytesCopied,      ///< Payload bytes copied on the data path.
    kCount_,              ///< Sentinel: number of counters.
};

/** Point-in-time values; set- or max-merged rather than summed. */
enum class Gauge : uint16_t {
    kHeapWordsInUse = 0,    ///< Live words at the last fold (set).
    kHeapPeakWordsInUse,    ///< High-water live words (max-merge).
    kChanDepthHighWater,    ///< Deepest queue seen on any channel (max).
    kChanBlockedNow,        ///< Threads currently blocked on a channel.
    kPipeWorkers,           ///< Stage workers of the running pipeline.
    kPipeBreakersOpen,      ///< Breakers currently open (level gauge).
    kNetConnections,        ///< Connections currently open (level gauge).
    kCount_,                ///< Sentinel: number of gauges.
};

/**
 * Power-of-two-bucket latency/size histograms.  Bucket 0 holds the
 * value 0; bucket i (i >= 1) holds values in [2^(i-1), 2^i); the last
 * bucket absorbs everything larger.  Log-spaced buckets keep the whole
 * histogram in 34 words and need no configuration — pause times from
 * 1ns to ~1s land in distinct buckets.
 */
enum class Histogram : uint16_t {
    kGcPauseNs = 0,     ///< Stop-the-world pause per collection.
    kStmRetriesPerTxn,  ///< Aborted attempts before a commit.
    kChanBlockedNs,     ///< Time a send/recv spent blocked.
    kVmRunNs,           ///< Wall time of one Vm::run.
    kPipeBatchNs,       ///< Stage processing time per hand-off batch.
    kPipeShedLateNs,    ///< How far past its deadline a shed batch was.
    kNetFrameLatencyNs, ///< Frame decode-to-response-write latency.
    kNetWritevFramesPerCall, ///< Frames drained per vectored write.
    kCount_,            ///< Sentinel: number of histograms.
};

inline constexpr size_t kNumCounters =
    static_cast<size_t>(Counter::kCount_);
inline constexpr size_t kNumGauges = static_cast<size_t>(Gauge::kCount_);
inline constexpr size_t kNumHistograms =
    static_cast<size_t>(Histogram::kCount_);
inline constexpr size_t kNumBuckets = 32;
/** Capacity of the generic opcode-count table (>= vm::kNumOps). */
inline constexpr size_t kMaxOpcodes = 64;

/** Stable dotted name, e.g. "gc.pause_ns"; used as the JSON key. */
const char* counter_name(Counter c);
const char* gauge_name(Gauge g);
const char* histogram_name(Histogram h);

/** Bucket index a value lands in (see Histogram docs). */
inline size_t
bucket_of(uint64_t value)
{
    if (value == 0) return 0;
    size_t bit = 64 - static_cast<size_t>(__builtin_clzll(value));
    return bit < kNumBuckets ? bit : kNumBuckets - 1;
}

/** Smallest value that lands in @p bucket (0, 1, 2, 4, 8, ...). */
inline uint64_t
bucket_lower_bound(size_t bucket)
{
    return bucket == 0 ? 0 : uint64_t{1} << (bucket - 1);
}

namespace detail {
/** Process-wide fast flag: false makes every update a no-op. */
extern std::atomic<bool> g_enabled;
// Slow paths; defined in metrics.cpp.
void count_slow(Counter c, uint64_t n);
void gauge_set_slow(Gauge g, uint64_t value);
void gauge_max_slow(Gauge g, uint64_t value);
void gauge_add_slow(Gauge g, uint64_t n);
void gauge_sub_slow(Gauge g, uint64_t n);
void observe_slow(Histogram h, uint64_t value);
void count_opcode_slow(size_t opcode, uint64_t n);
}  // namespace detail

/** True while the registry is recording. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/** Starts/stops recording.  Enabling does not clear prior values. */
void enable();
void disable();

/** Zeroes every instrument (tests isolate runs with this). */
void reset();

/** Adds @p n to counter @p c.  No-op while disabled. */
inline void
count(Counter c, uint64_t n = 1)
{
    if (__builtin_expect(
            !detail::g_enabled.load(std::memory_order_relaxed), 1)) {
        return;
    }
    detail::count_slow(c, n);
}

/** Sets gauge @p g to @p value (last write wins). */
inline void
gauge_set(Gauge g, uint64_t value)
{
    if (__builtin_expect(
            !detail::g_enabled.load(std::memory_order_relaxed), 1)) {
        return;
    }
    detail::gauge_set_slow(g, value);
}

/** Raises gauge @p g to @p value if it is higher (high-water mark). */
inline void
gauge_max(Gauge g, uint64_t value)
{
    if (__builtin_expect(
            !detail::g_enabled.load(std::memory_order_relaxed), 1)) {
        return;
    }
    detail::gauge_max_slow(g, value);
}

/**
 * Adds @p n to gauge @p g.  Level gauges (e.g. threads currently
 * blocked on a channel) pair every gauge_add with exactly one
 * gauge_sub; callers use RAII so early returns cannot leak a level.
 */
inline void
gauge_add(Gauge g, uint64_t n = 1)
{
    if (__builtin_expect(
            !detail::g_enabled.load(std::memory_order_relaxed), 1)) {
        return;
    }
    detail::gauge_add_slow(g, n);
}

/** Subtracts @p n from gauge @p g (saturating at zero). */
inline void
gauge_sub(Gauge g, uint64_t n = 1)
{
    if (__builtin_expect(
            !detail::g_enabled.load(std::memory_order_relaxed), 1)) {
        return;
    }
    detail::gauge_sub_slow(g, n);
}

/** Records @p value into histogram @p h (bucket + count + sum). */
inline void
observe(Histogram h, uint64_t value)
{
    if (__builtin_expect(
            !detail::g_enabled.load(std::memory_order_relaxed), 1)) {
        return;
    }
    detail::observe_slow(h, value);
}

/**
 * Folds @p n retirements of @p opcode into the per-opcode table.  The
 * interpreter counts opcodes in a local table during the run and folds
 * the whole table here once at exit, so the dispatch loops stay free
 * of shared-memory traffic.
 */
inline void
count_opcode(size_t opcode, uint64_t n)
{
    if (__builtin_expect(
            !detail::g_enabled.load(std::memory_order_relaxed), 1)) {
        return;
    }
    detail::count_opcode_slow(opcode, n);
}

/**
 * Registers the opcode-index -> name function used by snapshots.  The
 * support layer cannot depend on the VM, so the interpreter installs
 * vm::op_name through this hook at static-init time; until then
 * opcodes serialize as "op<N>".
 */
void set_opcode_namer(const char* (*namer)(size_t));

/** Plain-data copy of one histogram. */
struct HistogramSnapshot {
    uint64_t count = 0;  ///< Number of observations.
    uint64_t sum = 0;    ///< Sum of observed values.
    std::array<uint64_t, kNumBuckets> buckets{};
};

/**
 * Plain-data copy of the whole registry.  Taken with relaxed loads:
 * values written before the snapshot by the same thread are always
 * visible; concurrent updates may or may not be, but every counter is
 * monotonic so two snapshots bracket the truth.
 */
struct Snapshot {
    std::array<uint64_t, kNumCounters> counters{};
    std::array<uint64_t, kNumGauges> gauges{};
    std::array<HistogramSnapshot, kNumHistograms> histograms{};
    std::array<uint64_t, kMaxOpcodes> opcodes{};

    uint64_t counter(Counter c) const {
        return counters[static_cast<size_t>(c)];
    }
    uint64_t gauge(Gauge g) const {
        return gauges[static_cast<size_t>(g)];
    }
    const HistogramSnapshot& histogram(Histogram h) const {
        return histograms[static_cast<size_t>(h)];
    }
};

/** Copies the current registry state. */
Snapshot snapshot();

/** Schema identity of the JSON serialization below. */
inline constexpr const char* kJsonSchema = "bitc-metrics";
inline constexpr int kJsonVersion = 1;

/**
 * Serializes @p snap as a versioned JSON document:
 *
 *   {
 *     "schema": "bitc-metrics", "version": 1,
 *     "counters":   { "<name>": N, ... },          // every counter
 *     "gauges":     { "<name>": N, ... },          // every gauge
 *     "histograms": { "<name>": { "count": N, "sum": N,
 *                                 "buckets": [32 ints] }, ... },
 *     "opcodes":    { "<op-name>": N, ... }        // nonzero only
 *   }
 *
 * Consumers key on names, never positions; adding instruments is a
 * compatible change, renaming or retyping bumps "version".
 */
std::string to_json(const Snapshot& snap);

/**
 * A named top-level JSON section contributed by another subsystem
 * (e.g. the fault injector's per-site counters).  @p body is a
 * complete JSON value, already indented for 2-space nesting.
 */
struct ExtraSection {
    std::string name;  ///< Top-level key, e.g. "fault_sites".
    std::string body;  ///< Complete JSON value for that key.
};

/**
 * Like to_json(snap) but appends @p extras as additional top-level
 * sections after "opcodes".  Adding a section is a schema-compatible
 * change (consumers key on names).
 */
std::string to_json(const Snapshot& snap,
                    const std::vector<ExtraSection>& extras);

}  // namespace bitc::metrics

#endif  // BITC_SUPPORT_METRICS_HPP
