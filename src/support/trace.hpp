/**
 * @file
 * Fixed-capacity binary trace ring for typed runtime events.
 *
 * Where the metrics registry (metrics.hpp) answers "how much", the
 * trace ring answers "in what order": it records the last N runtime
 * events — GC begin/end with pause and bytes reclaimed, allocation
 * slow paths, STM commit/abort with retry counts, channel traffic and
 * blocking, VM entry/exit, injected faults — as fixed-size binary
 * records in a preallocated ring.  The ring never blocks, never
 * allocates after start(), and overwrites the oldest records when
 * full, keeping an exact count of how many were dropped.
 *
 * Cost model: when stopped (the production default) an emit() is one
 * relaxed atomic load and a predicted-not-taken branch — the same
 * discipline as fault.hpp and metrics.hpp.  When recording, an emit is
 * one relaxed fetch_add to claim a slot plus four relaxed word stores.
 * Records are stored as atomic words so concurrent writers and readers
 * are race-free by construction (TSan-clean); a reader that races a
 * lapped writer may see one torn record, which the dropped count makes
 * detectable.
 */
#ifndef BITC_SUPPORT_TRACE_HPP
#define BITC_SUPPORT_TRACE_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace bitc::trace {

/** Typed runtime events.  Argument meanings are per-event. */
enum class Event : uint8_t {
    kGcBegin = 0,     ///< arg0 = kind (0 minor, 1 major, 2 release).
    kGcEnd,           ///< arg0 = pause ns, arg1 = bytes reclaimed.
    kAllocSlowPath,   ///< arg0 = words requested.
    kStmBegin,        ///< transaction attempt 1 entered.
    kStmCommit,       ///< arg0 = aborted attempts before this commit.
    kStmAbort,        ///< arg0 = attempt number that aborted.
    kChanSend,        ///< arg0 = queue depth after the send.
    kChanRecv,        ///< arg0 = queue depth after the recv.
    kChanBlock,       ///< arg0 = 0 send / 1 recv, arg1 = blocked ns.
    kChanClose,       ///< arg0 = queue depth at close.
    kVmEnter,         ///< arg0 = function index.
    kVmExit,          ///< arg0 = instructions retired, arg1 = run ns.
    kFaultInjected,   ///< arg0 = fault::Site.
    kPipeHandoff,     ///< arg0 = destination stage, arg1 = batch size.
    kPipeStageExit,   ///< arg0 = stage, arg1 = packets processed.
    kWorkerCrash,     ///< arg0 = worker id, arg1 = crash count.
    kWorkerRestart,   ///< arg0 = worker id, arg1 = backoff ns slept.
    kBreakerState,    ///< arg0 = worker id, arg1 = BreakerState.
    kBatchShed,       ///< arg0 = packets shed, arg1 = lateness ns.
    kNetAccept,       ///< arg0 = connection id.
    kNetConnClose,    ///< arg0 = connection id, arg1 = 0 clean/1 sick.
    kNetFrameIn,      ///< arg0 = connection id, arg1 = frame type.
    kNetFrameOut,     ///< arg0 = connection id, arg1 = frame type.
    kSimSwitch,       ///< arg0 = thread granted, arg1 = decision step.
    kSimAdvance,      ///< arg0 = delta ns, arg1 = decision step.
    kCount_,          ///< Sentinel: number of event types.
};

inline constexpr size_t kNumEvents =
    static_cast<size_t>(Event::kCount_);

/** Stable event name, e.g. "gc-begin"; used in the text dump. */
const char* event_name(Event e);

/** One decoded trace record (32 bytes in the ring). */
struct Record {
    uint64_t seq = 0;    ///< Global sequence number (0-based).
    uint64_t ts_ns = 0;  ///< Monotonic timestamp.
    uint64_t arg0 = 0;
    uint64_t arg1 = 0;
    uint32_t tid = 0;    ///< Small per-thread id (registration order).
    Event event = Event::kGcBegin;
};

namespace detail {
/** Process-wide fast flag: false makes every emit() a no-op. */
extern std::atomic<bool> g_enabled;
/** Slow path: claims a slot and stores the record. */
void record(Event e, uint64_t arg0, uint64_t arg1);
}  // namespace detail

/** True while the ring is recording. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/**
 * The emission point.  One predicted branch when stopped; see the
 * file comment for the recording cost.
 */
inline void
emit(Event e, uint64_t arg0 = 0, uint64_t arg1 = 0)
{
    if (__builtin_expect(
            !detail::g_enabled.load(std::memory_order_relaxed), 1)) {
        return;
    }
    detail::record(e, arg0, arg1);
}

/** Default ring capacity in events (2 MiB of slots). */
inline constexpr size_t kDefaultCapacity = 1u << 16;

/**
 * Allocates (or reallocates) the ring with room for @p capacity
 * events — rounded up to a power of two, minimum 8 — clears it, and
 * starts recording.  Not thread-safe against concurrent emitters:
 * start before spawning instrumented threads (same rule as arming
 * fault plans).
 */
void start(size_t capacity = kDefaultCapacity);

/** Stops recording; the ring contents stay readable. */
void stop();

/** Stops and discards the ring storage. */
void clear();

/** Events emitted since start(). */
uint64_t total();

/** Events overwritten because the ring wrapped. */
uint64_t dropped();

/** Ring capacity in events (0 before the first start()). */
size_t capacity();

/**
 * Decodes the retained window, oldest first.  Take it after emitters
 * quiesce (or after stop()) for a tear-free read.
 */
std::vector<Record> snapshot();

/**
 * Versioned text dump:
 *
 *   bitc-trace v1 events=<retained> total=<emitted> dropped=<n>
 *   <seq> <ts_ns> <event> <arg0> <arg1> tid=<tid>
 *   ...
 */
std::string dump();

}  // namespace bitc::trace

#endif  // BITC_SUPPORT_TRACE_HPP
