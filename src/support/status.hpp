/**
 * @file
 * Error-handling primitives used across the BitC reproduction toolchain.
 *
 * Systems code in the style the paper advocates does not throw exceptions
 * across module boundaries; every fallible public API in this repository
 * returns a Status or a Result<T>.  Both are cheap value types.
 */
#ifndef BITC_SUPPORT_STATUS_HPP
#define BITC_SUPPORT_STATUS_HPP

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace bitc {

/** Coarse classification of failures, in the spirit of POSIX errno. */
enum class StatusCode {
    kOk = 0,
    kInvalidArgument,   ///< Caller passed something malformed.
    kNotFound,          ///< Lookup failed (symbol, type, function...).
    kAlreadyExists,     ///< Duplicate definition.
    kOutOfRange,        ///< Index / value outside its domain.
    kResourceExhausted, ///< Allocator or budget ran dry.
    kFailedPrecondition,///< Call sequencing or state error.
    kDeadlineExceeded,  ///< A bounded wait timed out.
    kUnavailable,       ///< Try-again condition: full queue, empty queue.
    kCancelled,         ///< Peer closed / operation torn down mid-flight.
    kUnimplemented,     ///< Feature intentionally absent.
    kInternal,          ///< Invariant violation inside the toolchain.
    kTypeError,         ///< Type-check failure in the language pipeline.
    kParseError,        ///< Syntax error in the language pipeline.
    kVerifyError,       ///< A verification condition was refuted.
    kRuntimeError,      ///< VM trap (bounds, overflow, null...).
};

/** Human-readable name for a StatusCode ("kTypeError" -> "type error"). */
const char* status_code_name(StatusCode code);

/**
 * Result of a fallible operation that produces no value.
 *
 * An OK status carries no message and is trivially cheap to copy.
 */
class Status {
  public:
    /** Constructs an OK status. */
    Status() : code_(StatusCode::kOk) {}

    /** Constructs a failed status; @p code must not be kOk. */
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message)) {
        assert(code != StatusCode::kOk);
    }

    static Status ok() { return Status(); }

    bool is_ok() const { return code_ == StatusCode::kOk; }
    explicit operator bool() const { return is_ok(); }

    StatusCode code() const { return code_; }
    const std::string& message() const { return message_; }

    /** "type error: expected int32, got bool" style rendering. */
    std::string to_string() const;

  private:
    StatusCode code_;
    std::string message_;
};

/** Convenience factories mirroring the StatusCode enumerators. */
Status invalid_argument_error(std::string message);
Status not_found_error(std::string message);
Status already_exists_error(std::string message);
Status out_of_range_error(std::string message);
Status resource_exhausted_error(std::string message);
Status failed_precondition_error(std::string message);
Status deadline_exceeded_error(std::string message);
Status unavailable_error(std::string message);
Status cancelled_error(std::string message);
Status unimplemented_error(std::string message);
Status internal_error(std::string message);
Status type_error(std::string message);
Status parse_error(std::string message);
Status verify_error(std::string message);
Status runtime_error(std::string message);

/**
 * Result of a fallible operation producing a T on success.
 *
 * Holds either a value or a non-OK Status.  Accessors assert on misuse;
 * callers are expected to branch on ok() first (the toolchain never
 * dereferences an error Result).
 */
template <typename T>
class Result {
  public:
    /** Implicit from a value: `return 42;`. */
    Result(T value) : state_(std::move(value)) {}
    /** Implicit from an error status: `return type_error(...)`. */
    Result(Status status) : state_(std::move(status)) {
        assert(!std::get<Status>(state_).is_ok());
    }

    bool is_ok() const { return std::holds_alternative<T>(state_); }
    explicit operator bool() const { return is_ok(); }

    /** The contained value; requires is_ok(). */
    const T& value() const& {
        assert(is_ok());
        return std::get<T>(state_);
    }
    T& value() & {
        assert(is_ok());
        return std::get<T>(state_);
    }
    T&& take() && {
        assert(is_ok());
        return std::get<T>(std::move(state_));
    }

    /** Pointer-style access to the value; requires is_ok(). */
    const T& operator*() const& { return value(); }
    T& operator*() & { return value(); }
    const T* operator->() const { return &value(); }
    T* operator->() { return &value(); }

    /** The error status; requires !is_ok(). */
    const Status& status() const {
        assert(!is_ok());
        return std::get<Status>(state_);
    }

    /** OK status or the error, for code that only needs the Status. */
    Status to_status() const {
        return is_ok() ? Status::ok() : status();
    }

  private:
    std::variant<T, Status> state_;
};

/**
 * Propagates an error Status out of the current function.
 * Usage: BITC_RETURN_IF_ERROR(do_thing());
 */
#define BITC_RETURN_IF_ERROR(expr)                                         \
    do {                                                                    \
        ::bitc::Status bitc_status_ = (expr);                               \
        if (!bitc_status_.is_ok()) return bitc_status_;                     \
    } while (0)

/**
 * Unwraps a Result<T> into a local, propagating errors.
 * Usage: BITC_ASSIGN_OR_RETURN(auto x, compute());
 */
#define BITC_ASSIGN_OR_RETURN(decl, expr)                                   \
    BITC_ASSIGN_OR_RETURN_IMPL_(                                            \
        BITC_STATUS_CONCAT_(bitc_result_, __LINE__), decl, expr)

#define BITC_STATUS_CONCAT_INNER_(a, b) a##b
#define BITC_STATUS_CONCAT_(a, b) BITC_STATUS_CONCAT_INNER_(a, b)
#define BITC_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr)                        \
    auto tmp = (expr);                                                      \
    if (!tmp.is_ok()) return tmp.status();                                  \
    decl = std::move(tmp).take()

}  // namespace bitc

#endif  // BITC_SUPPORT_STATUS_HPP
