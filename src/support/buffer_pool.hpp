/**
 * @file
 * Slab-style, size-classed buffer pool for the zero-copy frame data
 * path — the C2 argument (idiomatic manual storage management)
 * applied to network buffers.
 *
 * The paper's systems programmers keep C because a managed runtime
 * hides who owns a buffer and when it is released; the front-end's
 * answer is to make both explicit: a BufferPool hands out refcounted
 * slabs from per-class freelists, a BufferRef pins one slab for as
 * long as any frame still points into it, and release is a freelist
 * push — no allocator traffic in steady state, no hidden copies.
 *
 * Concurrency: acquire/release are thread-safe (one mutex per size
 * class).  The refcount is atomic, so BufferRefs may be copied and
 * dropped from any thread; the *bytes* they guard follow the usual
 * reader/writer rules of whatever protocol put them there (the net
 * server writes a slab only from its IO thread).
 *
 * Fault awareness: refilling a class with a fresh slab is a real
 * allocation, so it consults the kHeapAlloc fault site first —
 * exactly like ManagedHeap::allocate — and reports the injected
 * failure as a Status instead of dying.  Freelist hits are
 * injection-free: recycling cannot fail.
 *
 * Metrics: every acquire counts net.pool.hits or net.pool.misses, so
 * a steady state that still misses is visible in --metrics and is
 * budget-enforced by bench_network.
 */
#ifndef BITC_SUPPORT_BUFFER_POOL_HPP
#define BITC_SUPPORT_BUFFER_POOL_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "support/status.hpp"

namespace bitc::pool {

class BufferPool;

/**
 * One pooled slab: capacity bytes plus the intrusive control state
 * (refcount, owning pool, size class).  Never handled directly —
 * BufferRef is the only public face.
 */
struct Slab {
    BufferPool* pool = nullptr;
    std::atomic<uint32_t> refs{0};
    uint32_t size_class = 0;
    size_t capacity = 0;
    std::unique_ptr<uint8_t[]> bytes;
};

/**
 * Shared handle to a pooled slab.  Copies share the refcount; the
 * last one out returns the slab to its pool's freelist.  A default-
 * constructed ref is empty (data() == nullptr).
 */
class BufferRef {
  public:
    BufferRef() = default;
    BufferRef(const BufferRef& other) : slab_(other.slab_) {
        if (slab_ != nullptr) {
            slab_->refs.fetch_add(1, std::memory_order_relaxed);
        }
    }
    BufferRef(BufferRef&& other) noexcept
        : slab_(std::exchange(other.slab_, nullptr)) {}
    BufferRef& operator=(const BufferRef& other) {
        BufferRef copy(other);
        std::swap(slab_, copy.slab_);
        return *this;
    }
    BufferRef& operator=(BufferRef&& other) noexcept {
        if (this != &other) {
            reset();
            slab_ = std::exchange(other.slab_, nullptr);
        }
        return *this;
    }
    ~BufferRef() { reset(); }

    bool valid() const { return slab_ != nullptr; }
    uint8_t* data() const {
        return slab_ != nullptr ? slab_->bytes.get() : nullptr;
    }
    size_t capacity() const {
        return slab_ != nullptr ? slab_->capacity : 0;
    }
    std::span<uint8_t> span() const {
        return {data(), capacity()};
    }

    /** Drops this reference (possibly recycling the slab). */
    void reset();

  private:
    friend class BufferPool;
    explicit BufferRef(Slab* slab) : slab_(slab) {}
    Slab* slab_ = nullptr;
};

/** Point-in-time pool accounting (relaxed reads; exact when quiesced). */
struct BufferPoolStats {
    uint64_t hits = 0;      ///< Acquires served from a freelist.
    uint64_t misses = 0;    ///< Acquires that allocated a fresh slab.
    uint64_t outstanding = 0;  ///< Slabs currently referenced.
    uint64_t pooled = 0;    ///< Slabs parked on freelists.
};

class BufferPool {
  public:
    /**
     * @p max_pooled_per_class bounds each freelist: releases past the
     * bound free the slab instead of parking it, so a burst does not
     * pin its high-water memory forever.
     */
    explicit BufferPool(size_t max_pooled_per_class = 64);
    ~BufferPool();
    BufferPool(const BufferPool&) = delete;
    BufferPool& operator=(const BufferPool&) = delete;

    /**
     * A slab of at least @p min_bytes.  Freelist hit: infallible and
     * allocation-free.  Miss: consults the kHeapAlloc fault site, then
     * allocates a fresh slab of the class size (oversize requests get
     * an exact-size one-off slab, still refcounted and recycled into
     * the top class's list if it fits the bound).
     */
    Result<BufferRef> acquire(size_t min_bytes);

    BufferPoolStats stats() const;

  private:
    friend class BufferRef;
    static size_t class_for(size_t min_bytes);
    void recycle(Slab* slab);

    struct ClassList {
        std::mutex mu;
        std::vector<Slab*> free;
    };

    size_t max_pooled_;
    std::vector<ClassList> classes_;
    std::atomic<uint64_t> hits_{0}, misses_{0}, outstanding_{0};
};

/** The process-wide pool the frame data path draws from. */
BufferPool& frame_pool();

}  // namespace bitc::pool

#endif  // BITC_SUPPORT_BUFFER_POOL_HPP
