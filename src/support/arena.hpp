/**
 * @file
 * A chunked bump arena used by the front end for AST and type-term
 * allocation.  Objects allocated here are never individually freed;
 * the whole arena is released at once (the region idiom the paper's
 * challenge C2 asks languages to support natively).
 *
 * Note this is the *toolchain's* internal arena; the measurable region
 * allocator under test lives in src/memory/region_allocator.hpp.
 */
#ifndef BITC_SUPPORT_ARENA_HPP
#define BITC_SUPPORT_ARENA_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace bitc {

/**
 * Bump allocator over a chain of geometrically growing chunks.
 *
 * Only trivially destructible types may be created with create<T>();
 * the arena does not run destructors.
 */
class Arena {
  public:
    explicit Arena(size_t initial_chunk_bytes = 4096)
        : next_chunk_bytes_(initial_chunk_bytes) {}

    Arena(const Arena&) = delete;
    Arena& operator=(const Arena&) = delete;

    /** Raw allocation of @p bytes aligned to @p alignment. */
    void* allocate(size_t bytes, size_t alignment = alignof(max_align_t));

    /** Constructs a T in arena storage. T must be trivially destructible. */
    template <typename T, typename... Args>
    T* create(Args&&... args) {
        static_assert(std::is_trivially_destructible_v<T>,
                      "Arena does not run destructors");
        void* p = allocate(sizeof(T), alignof(T));
        return new (p) T(std::forward<Args>(args)...);
    }

    /** Total bytes handed out (excluding chunk slack). */
    size_t bytes_allocated() const { return bytes_allocated_; }

    /** Number of backing chunks allocated so far. */
    size_t chunk_count() const { return chunks_.size(); }

    /** Releases all chunks; outstanding pointers become invalid. */
    void reset();

  private:
    struct Chunk {
        std::unique_ptr<std::byte[]> data;
        size_t size = 0;
        size_t used = 0;
    };

    void add_chunk(size_t min_bytes);

    std::vector<Chunk> chunks_;
    size_t next_chunk_bytes_;
    size_t bytes_allocated_ = 0;
};

}  // namespace bitc

#endif  // BITC_SUPPORT_ARENA_HPP
