/**
 * @file
 * String interning.  Symbols are small value types comparing by id,
 * which keeps AST nodes and type terms compact and comparison O(1).
 */
#ifndef BITC_SUPPORT_INTERN_HPP
#define BITC_SUPPORT_INTERN_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace bitc {

class SymbolTable;

/** An interned string; valid only with the SymbolTable that produced it. */
class Symbol {
  public:
    Symbol() : id_(kInvalidId) {}

    bool is_valid() const { return id_ != kInvalidId; }
    uint32_t id() const { return id_; }

    bool operator==(const Symbol&) const = default;
    /** Orders by intern id (creation order), not lexicographically. */
    bool operator<(const Symbol& other) const { return id_ < other.id_; }

  private:
    friend class SymbolTable;
    explicit Symbol(uint32_t id) : id_(id) {}

    static constexpr uint32_t kInvalidId = 0xffffffffu;
    uint32_t id_;
};

/** Owns interned strings; lookup by content, O(1) resolve by Symbol. */
class SymbolTable {
  public:
    /** Interns @p text, returning the existing Symbol if already present. */
    Symbol intern(std::string_view text);

    /** The text of @p symbol; asserts the symbol came from this table. */
    const std::string& text(Symbol symbol) const;

    size_t size() const { return strings_.size(); }

  private:
    std::unordered_map<std::string, uint32_t> index_;
    std::vector<std::string> strings_;
};

}  // namespace bitc

namespace std {
template <>
struct hash<bitc::Symbol> {
    size_t operator()(const bitc::Symbol& s) const noexcept {
        return std::hash<uint32_t>()(s.id());
    }
};
}  // namespace std

#endif  // BITC_SUPPORT_INTERN_HPP
