#include "support/fault.hpp"

#include "support/metrics.hpp"
#include "support/trace.hpp"

#include <cstdlib>

namespace bitc::fault {

namespace {

constexpr const char* kSiteNames[kNumSites] = {
    "heap-alloc", "gc-trigger", "stm-commit", "channel-op",
    "ffi-marshal", "worker-crash", "socket-io",
};

constexpr uint64_t kOperandMask =
    (uint64_t{1} << 62) - 1;  // low 62 bits

}  // namespace

const char*
site_name(Site site)
{
    return kSiteNames[static_cast<size_t>(site)];
}

Result<Site>
parse_site(const std::string& name)
{
    for (size_t i = 0; i < kNumSites; ++i) {
        if (name == kSiteNames[i]) {
            return static_cast<Site>(i);
        }
    }
    std::string expected;
    for (size_t i = 0; i < kNumSites; ++i) {
        expected += i == 0 ? "" : i + 1 == kNumSites ? " or " : ", ";
        expected += kSiteNames[i];
    }
    return invalid_argument_error("unknown fault site '" + name +
                                  "' (expected " + expected + ")");
}

namespace detail {

std::atomic<bool> g_armed{false};

bool
on_hit(Site site)
{
    Injector& inj = Injector::instance();
    size_t i = static_cast<size_t>(site);
    uint64_t plan = inj.plans_[i].load(std::memory_order_relaxed);
    uint64_t mode = plan >> Injector::kModeShift;
    if (mode == Injector::kModeOff) {
        return false;
    }
    uint64_t hit =
        inj.hits_[i].fetch_add(1, std::memory_order_relaxed) + 1;
    uint64_t operand = plan & kOperandMask;
    bool fail = false;
    switch (mode) {
        case Injector::kModeCount:
            break;
        case Injector::kModeNth:
            fail = hit == operand;
            break;
        case Injector::kModeEvery:
            fail = operand != 0 && hit % operand == 0;
            break;
        default:
            break;
    }
    metrics::count(metrics::Counter::kFaultHits);
    if (fail) {
        inj.injected_[i].fetch_add(1, std::memory_order_relaxed);
        metrics::count(metrics::Counter::kFaultsInjected);
        trace::emit(trace::Event::kFaultInjected,
                    static_cast<uint64_t>(site));
    }
    return fail;
}

}  // namespace detail

Injector&
Injector::instance()
{
    static Injector injector;
    return injector;
}

void
Injector::set_plan(Site site, uint64_t mode, uint64_t operand)
{
    plans_[static_cast<size_t>(site)].store(
        mode << kModeShift | (operand & kOperandMask),
        std::memory_order_relaxed);
    detail::g_armed.store(true, std::memory_order_relaxed);
}

void
Injector::reset_site(Site site)
{
    size_t i = static_cast<size_t>(site);
    hits_[i].store(0, std::memory_order_relaxed);
    injected_[i].store(0, std::memory_order_relaxed);
}

void
Injector::arm_nth(Site site, uint64_t nth)
{
    reset_site(site);
    set_plan(site, kModeNth, nth);
}

void
Injector::arm_every(Site site, uint64_t k)
{
    reset_site(site);
    set_plan(site, kModeEvery, k);
}

void
Injector::arm_count()
{
    reset_counters();
    for (size_t i = 0; i < kNumSites; ++i) {
        plans_[i].store(kModeCount << kModeShift,
                        std::memory_order_relaxed);
    }
    detail::g_armed.store(true, std::memory_order_relaxed);
}

void
Injector::disarm()
{
    detail::g_armed.store(false, std::memory_order_relaxed);
    for (size_t i = 0; i < kNumSites; ++i) {
        plans_[i].store(0, std::memory_order_relaxed);
    }
}

void
Injector::reset_counters()
{
    for (size_t i = 0; i < kNumSites; ++i) {
        hits_[i].store(0, std::memory_order_relaxed);
        injected_[i].store(0, std::memory_order_relaxed);
    }
}

SiteCounters
Injector::counters(Site site) const
{
    size_t i = static_cast<size_t>(site);
    SiteCounters out;
    out.hits = hits_[i].load(std::memory_order_relaxed);
    out.injected = injected_[i].load(std::memory_order_relaxed);
    return out;
}

std::string
Injector::report() const
{
    std::string out;
    for (size_t i = 0; i < kNumSites; ++i) {
        uint64_t plan = plans_[i].load(std::memory_order_relaxed);
        SiteCounters c = counters(static_cast<Site>(i));
        if (plan >> kModeShift == kModeOff && c.hits == 0) {
            continue;
        }
        out += kSiteNames[i];
        out += ": ";
        out += std::to_string(c.hits);
        out += " hits, ";
        out += std::to_string(c.injected);
        out += " injected\n";
    }
    return out;
}

std::string
Injector::sites_json() const
{
    std::string out = "{";
    for (size_t i = 0; i < kNumSites; ++i) {
        SiteCounters c = counters(static_cast<Site>(i));
        out += i ? "," : "";
        out += "\n    \"";
        out += kSiteNames[i];
        out += "\": {\"hits\": ";
        out += std::to_string(c.hits);
        out += ", \"injected\": ";
        out += std::to_string(c.injected);
        out += "}";
    }
    out += "\n  }";
    return out;
}

Status
Injector::arm(const std::string& plan)
{
    disarm();
    reset_counters();
    if (plan.empty() || plan == "off") {
        return Status::ok();
    }
    size_t pos = 0;
    while (pos <= plan.size()) {
        size_t comma = plan.find(',', pos);
        std::string clause = plan.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        if (clause.empty()) {
            disarm();
            return invalid_argument_error(
                "empty clause in fault plan '" + plan + "'");
        }
        if (clause == "count") {
            arm_count();
        } else {
            size_t colon = clause.find(':');
            if (colon == std::string::npos) {
                disarm();
                return invalid_argument_error(
                    "fault clause '" + clause +
                    "' is not 'count' or 'site:action'");
            }
            auto site = parse_site(clause.substr(0, colon));
            if (!site.is_ok()) {
                disarm();
                return site.status();
            }
            std::string action = clause.substr(colon + 1);
            uint64_t mode = 0;
            uint64_t operand = 0;
            if (action == "count") {
                mode = kModeCount;
            } else if (action.rfind("nth=", 0) == 0 ||
                       action.rfind("every=", 0) == 0) {
                mode = action[0] == 'n' ? kModeNth : kModeEvery;
                std::string num =
                    action.substr(action.find('=') + 1);
                char* end = nullptr;
                operand = std::strtoull(num.c_str(), &end, 10);
                if (num.empty() || end == nullptr || *end != '\0' ||
                    operand == 0) {
                    disarm();
                    return invalid_argument_error(
                        "fault action '" + action +
                        "' needs a positive integer");
                }
            } else {
                disarm();
                return invalid_argument_error(
                    "unknown fault action '" + action +
                    "' (expected nth=N, every=K or count)");
            }
            set_plan(site.value(), mode, operand);
        }
        if (comma == std::string::npos) {
            break;
        }
        pos = comma + 1;
    }
    return Status::ok();
}

Status
injected_error(Site site)
{
    return resource_exhausted_error(
        std::string("fault injected at ") + site_name(site));
}

}  // namespace bitc::fault
