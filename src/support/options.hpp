/**
 * @file
 * Structured runtime options: the typed forms behind every stringly
 * bitcc flag and bench spec.
 *
 * The paper's API argument cuts both ways: a systems runtime that asks
 * its operators to assemble "workers=4,queue=64,..." strings by hand
 * has pushed its configuration invariants out of the type system and
 * into everyone's fingers.  This module is the inversion: programs
 * construct PipelineSpec / ServeSpec / FaultPlan values directly (every
 * field typed, every constraint checked in validate()), and the string
 * grammar survives only as a parse()/to_string() round-trip pair for
 * the command line.  bitcc's usage text is generated from the option
 * table here, so flags, help and parser can no longer drift apart.
 *
 * Layering: this is the support layer — the specs are plain data with
 * no dependency on conc/ or net/.  Each consumer owns its converter
 * (conc::config_from_spec, net::server_config_from_spec) so the specs
 * stay reusable from tools, benches and tests alike.
 */
#ifndef BITC_SUPPORT_OPTIONS_HPP
#define BITC_SUPPORT_OPTIONS_HPP

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/fault.hpp"
#include "support/status.hpp"

namespace bitc::options {

/** Pipeline stage count as the option layer knows it (== interop's). */
inline constexpr size_t kPipelineStages = 4;

/**
 * Typed form of the --pipeline spec.  Field defaults mirror
 * conc::PipelineConfig so an empty spec string and a
 * default-constructed value mean the same run.
 *
 * Canonical string grammar (parse accepts, to_string emits):
 *
 *   workers=N|a:b:c:d,queue=N,batch=N,packets=N,impl=legacy|bitc,
 *   seed=N,payload=BYTES,lookup-us=US,restarts=N,window=MS,
 *   backoff=MS,deadline=MS
 *
 * parse(to_string(s)) == s for every valid s (the round-trip tests
 * pin this).
 */
struct PipelineSpec {
    std::array<size_t, kPipelineStages> workers{1, 1, 1, 1};
    size_t queue_capacity = 64;   ///< Bounded input depth, in batches.
    size_t batch_packets = 32;    ///< Packets per hand-off batch.
    size_t packets = 10000;       ///< Packets a driver run generates.
    size_t payload_bytes = 0;     ///< Checksummed payload per packet.
    uint32_t lookup_latency_us = 0;  ///< Simulated classify lookup.
    bool migrated = false;        ///< true = BitC stage implementations.
    uint64_t seed = 1;            ///< Packet-stream seed.
    uint32_t max_restarts = 3;    ///< Supervisor breaker budget.
    uint64_t restart_window_ms = 1000;  ///< Crash window + cooldown.
    uint64_t backoff_ms = 1;      ///< First restart backoff.
    uint64_t deadline_ms = 0;     ///< Per-batch deadline; 0 = none.

    /** Every stage has a worker, every queue/batch has capacity. */
    Status validate() const;

    /** Canonical spec string (parses back to an equal value). */
    std::string to_string() const;

    /** Parses the spec grammar; validates before returning. */
    static Result<PipelineSpec> parse(const std::string& spec);

    bool operator==(const PipelineSpec&) const = default;

    // Fluent builder steps, so call sites read as configuration:
    //   PipelineSpec{}.with_workers(4).with_packets(20000)
    PipelineSpec& with_workers(size_t all) {
        workers.fill(all);
        return *this;
    }
    PipelineSpec& with_stage_workers(
        const std::array<size_t, kPipelineStages>& per_stage) {
        workers = per_stage;
        return *this;
    }
    PipelineSpec& with_queue(size_t n) { queue_capacity = n; return *this; }
    PipelineSpec& with_batch(size_t n) { batch_packets = n; return *this; }
    PipelineSpec& with_packets(size_t n) { packets = n; return *this; }
    PipelineSpec& with_payload(size_t bytes) {
        payload_bytes = bytes;
        return *this;
    }
    PipelineSpec& with_lookup_us(uint32_t us) {
        lookup_latency_us = us;
        return *this;
    }
    PipelineSpec& with_migrated(bool on) { migrated = on; return *this; }
    PipelineSpec& with_seed(uint64_t s) { seed = s; return *this; }
    PipelineSpec& with_deadline_ms(uint64_t ms) {
        deadline_ms = ms;
        return *this;
    }
};

/**
 * Typed form of the --serve target.  Grammar:
 *
 *   HOST:PORT[,write-queue=N][,max-frames=N][,stall-ms=MS]
 *            [,max-conns=N]
 *
 * PORT 0 asks the kernel for an ephemeral port (tests bind loopback
 * this way and read the chosen port back from the server).
 */
struct ServeSpec {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    size_t write_queue_frames = 64;  ///< Per-connection write queue cap.
    uint64_t max_frames = 0;   ///< Stop after N data frames; 0 = serve on.
    uint64_t write_stall_ms = 5000;  ///< Slow-reader teardown threshold.
    size_t max_connections = 64;     ///< Accept cap; extras are refused.

    Status validate() const;
    std::string to_string() const;
    static Result<ServeSpec> parse(const std::string& spec);

    bool operator==(const ServeSpec&) const = default;

    ServeSpec& with_endpoint(std::string h, uint16_t p) {
        host = std::move(h);
        port = p;
        return *this;
    }
    ServeSpec& with_write_queue(size_t frames) {
        write_queue_frames = frames;
        return *this;
    }
    ServeSpec& with_max_frames(uint64_t n) {
        max_frames = n;
        return *this;
    }
    ServeSpec& with_stall_ms(uint64_t ms) {
        write_stall_ms = ms;
        return *this;
    }
    ServeSpec& with_max_connections(size_t n) {
        max_connections = n;
        return *this;
    }
};

/**
 * Typed form of a --faults plan: the clause list the injector's
 * string grammar encodes.  to_string() emits exactly the grammar
 * fault::Injector::arm understands, so arming is
 *
 *   fault::ScopedPlan scoped(plan.to_string());
 */
struct FaultPlan {
    enum class Action : uint8_t {
        kCount,  ///< Census: count hits, never fail.
        kNth,    ///< Fail exactly the operand-th hit (1-based).
        kEvery,  ///< Fail every operand-th hit.
    };
    struct Clause {
        fault::Site site{};
        Action action = Action::kCount;
        uint64_t operand = 0;  ///< N/K for kNth/kEvery; unused for kCount.
        bool operator==(const Clause&) const = default;
    };

    bool count_all = false;  ///< The bare "count" plan: census every site.
    std::vector<Clause> clauses;

    bool empty() const { return !count_all && clauses.empty(); }

    FaultPlan& count() { count_all = true; return *this; }
    FaultPlan& nth(fault::Site site, uint64_t n) {
        clauses.push_back({site, Action::kNth, n});
        return *this;
    }
    FaultPlan& every(fault::Site site, uint64_t k) {
        clauses.push_back({site, Action::kEvery, k});
        return *this;
    }
    FaultPlan& count_site(fault::Site site) {
        clauses.push_back({site, Action::kCount, 0});
        return *this;
    }

    /** Operands are 1-based; kCount carries none. */
    Status validate() const;

    /** Injector plan string; "" when empty (ScopedPlan treats as off). */
    std::string to_string() const;

    /** Parses the injector grammar ("", "off", "count", clauses). */
    static Result<FaultPlan> parse(const std::string& plan);

    bool operator==(const FaultPlan&) const = default;
};

/**
 * Everything a bitcc-style runtime invocation needs, as one validated
 * value: what to run (pipeline), how to expose it (serve, when the
 * front-end is wanted), what to break (faults) and where the
 * telemetry goes.  Benches and tests build this instead of spec
 * strings; the CLI builds it through the parse adapters above.
 */
struct RuntimeOptions {
    PipelineSpec pipeline;
    std::optional<ServeSpec> serve;
    FaultPlan faults;
    std::string metrics_path;  ///< "" = metrics registry stays off.
    std::string trace_path;    ///< "" = trace ring stays off.

    RuntimeOptions& with_pipeline(PipelineSpec spec) {
        pipeline = std::move(spec);
        return *this;
    }
    RuntimeOptions& with_serve(ServeSpec spec) {
        serve = std::move(spec);
        return *this;
    }
    RuntimeOptions& with_faults(FaultPlan plan) {
        faults = std::move(plan);
        return *this;
    }
    RuntimeOptions& with_metrics(std::string path) {
        metrics_path = std::move(path);
        return *this;
    }
    RuntimeOptions& with_trace(std::string path) {
        trace_path = std::move(path);
        return *this;
    }

    /** Validates every constituent spec. */
    Status validate() const;

    bool operator==(const RuntimeOptions&) const = default;
};

/**
 * One row of the bitcc flag table: the flag, its value metavar («»
 * when the flag is boolean), and the one-line help.  usage text is
 * generated from these rows — the single source the parser and the
 * help share, so they cannot drift.
 */
struct CliOption {
    const char* flag;   ///< e.g. "--pipeline".
    const char* value;  ///< Metavar like "SPEC", or nullptr (boolean).
    const char* help;   ///< One line, no trailing newline.
};

/** Every bitcc flag, in display order. */
const std::vector<CliOption>& cli_options();

/** The full generated usage text (command forms + flag table). */
std::string cli_usage();

}  // namespace bitc::options

#endif  // BITC_SUPPORT_OPTIONS_HPP
