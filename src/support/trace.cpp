#include "support/trace.hpp"

#include <array>
#include <memory>

#include "support/stats.hpp"
#include "support/string_util.hpp"

namespace bitc::trace {

namespace {

// Each record is four atomic words: ts, meta (event | tid), arg0,
// arg1.  Atomic words keep concurrent writers (two threads lapped a
// full ring apart) and snapshot readers race-free by definition.
constexpr size_t kWordsPerRecord = 4;

struct Ring {
    std::unique_ptr<std::atomic<uint64_t>[]> words;
    size_t capacity = 0;  ///< Records; always a power of two.
    size_t mask = 0;
    std::atomic<uint64_t> head{0};  ///< Next sequence number.
};

Ring g_ring;

std::atomic<uint32_t> g_next_tid{0};

uint32_t
this_tid()
{
    thread_local uint32_t tid =
        g_next_tid.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

constexpr std::array<const char*, kNumEvents> kEventNames = {
    "gc-begin",     "gc-end",     "alloc-slow-path", "stm-begin",
    "stm-commit",   "stm-abort",  "chan-send",       "chan-recv",
    "chan-block",   "chan-close", "vm-enter",        "vm-exit",
    "fault-injected", "pipe-handoff", "pipe-stage-exit",
    "worker-crash",   "worker-restart", "breaker-state",
    "batch-shed",     "net-accept",     "net-conn-close",
    "net-frame-in",   "net-frame-out",  "sim-switch",
    "sim-advance",
};

}  // namespace

const char*
event_name(Event e)
{
    size_t i = static_cast<size_t>(e);
    return i < kNumEvents ? kEventNames[i] : "unknown";
}

namespace detail {

std::atomic<bool> g_enabled{false};

void
record(Event e, uint64_t arg0, uint64_t arg1)
{
    uint64_t seq = g_ring.head.fetch_add(1, std::memory_order_relaxed);
    size_t base = (static_cast<size_t>(seq) & g_ring.mask) *
                  kWordsPerRecord;
    uint64_t meta = (static_cast<uint64_t>(e) << 32) | this_tid();
    g_ring.words[base + 0].store(now_ns(), std::memory_order_relaxed);
    g_ring.words[base + 1].store(meta, std::memory_order_relaxed);
    g_ring.words[base + 2].store(arg0, std::memory_order_relaxed);
    g_ring.words[base + 3].store(arg1, std::memory_order_relaxed);
}

}  // namespace detail

void
start(size_t capacity)
{
    stop();
    size_t rounded = 8;
    while (rounded < capacity) rounded <<= 1;
    if (g_ring.capacity != rounded) {
        g_ring.words =
            std::make_unique<std::atomic<uint64_t>[]>(
                rounded * kWordsPerRecord);
        g_ring.capacity = rounded;
        g_ring.mask = rounded - 1;
    }
    for (size_t i = 0; i < g_ring.capacity * kWordsPerRecord; ++i) {
        g_ring.words[i].store(0, std::memory_order_relaxed);
    }
    g_ring.head.store(0, std::memory_order_relaxed);
    detail::g_enabled.store(true, std::memory_order_relaxed);
}

void
stop()
{
    detail::g_enabled.store(false, std::memory_order_relaxed);
}

void
clear()
{
    stop();
    g_ring.words.reset();
    g_ring.capacity = 0;
    g_ring.mask = 0;
    g_ring.head.store(0, std::memory_order_relaxed);
}

uint64_t
total()
{
    return g_ring.head.load(std::memory_order_relaxed);
}

uint64_t
dropped()
{
    uint64_t emitted = total();
    return emitted > g_ring.capacity ? emitted - g_ring.capacity : 0;
}

size_t
capacity()
{
    return g_ring.capacity;
}

std::vector<Record>
snapshot()
{
    std::vector<Record> out;
    if (g_ring.capacity == 0) return out;
    uint64_t end = total();
    uint64_t begin = end > g_ring.capacity ? end - g_ring.capacity : 0;
    out.reserve(static_cast<size_t>(end - begin));
    for (uint64_t seq = begin; seq < end; ++seq) {
        size_t base = (static_cast<size_t>(seq) & g_ring.mask) *
                      kWordsPerRecord;
        Record rec;
        rec.seq = seq;
        rec.ts_ns =
            g_ring.words[base + 0].load(std::memory_order_relaxed);
        uint64_t meta =
            g_ring.words[base + 1].load(std::memory_order_relaxed);
        rec.arg0 =
            g_ring.words[base + 2].load(std::memory_order_relaxed);
        rec.arg1 =
            g_ring.words[base + 3].load(std::memory_order_relaxed);
        rec.event = static_cast<Event>((meta >> 32) & 0xff);
        rec.tid = static_cast<uint32_t>(meta);
        out.push_back(rec);
    }
    return out;
}

std::string
dump()
{
    std::vector<Record> records = snapshot();
    std::string out = str_format(
        "bitc-trace v1 events=%zu total=%llu dropped=%llu\n",
        records.size(), static_cast<unsigned long long>(total()),
        static_cast<unsigned long long>(dropped()));
    for (const Record& rec : records) {
        out += str_format(
            "%llu %llu %s %llu %llu tid=%u\n",
            static_cast<unsigned long long>(rec.seq),
            static_cast<unsigned long long>(rec.ts_ns),
            event_name(rec.event),
            static_cast<unsigned long long>(rec.arg0),
            static_cast<unsigned long long>(rec.arg1), rec.tid);
    }
    return out;
}

}  // namespace bitc::trace
