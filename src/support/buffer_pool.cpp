#include "support/buffer_pool.hpp"

#include "support/fault.hpp"
#include "support/metrics.hpp"

namespace bitc::pool {

namespace {

/** Size classes: answers pack into the small ones, a worst-case frame
 *  (64 KiB payload + header) plus read-ahead fits the 128 KiB one. */
constexpr size_t kClassBytes[] = {
    4096, 16384, 65536, 131072, 262144,
};
constexpr size_t kNumClasses =
    sizeof(kClassBytes) / sizeof(kClassBytes[0]);
/** size_class value marking an oversize one-off slab (never pooled). */
constexpr uint32_t kOversize = 0xffffffffu;

}  // namespace

void
BufferRef::reset()
{
    if (slab_ == nullptr) return;
    Slab* slab = std::exchange(slab_, nullptr);
    if (slab->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        slab->pool->recycle(slab);
    }
}

BufferPool::BufferPool(size_t max_pooled_per_class)
    : max_pooled_(max_pooled_per_class), classes_(kNumClasses)
{
}

BufferPool::~BufferPool()
{
    // Outstanding refs must not outlive their pool; parked slabs are
    // ours to free.
    for (ClassList& cl : classes_) {
        for (Slab* slab : cl.free) delete slab;
    }
}

size_t
BufferPool::class_for(size_t min_bytes)
{
    for (size_t i = 0; i < kNumClasses; ++i) {
        if (kClassBytes[i] >= min_bytes) return i;
    }
    return kNumClasses;  // oversize
}

Result<BufferRef>
BufferPool::acquire(size_t min_bytes)
{
    size_t cls = class_for(min_bytes);
    if (cls < kNumClasses) {
        ClassList& list = classes_[cls];
        std::lock_guard<std::mutex> lock(list.mu);
        if (!list.free.empty()) {
            Slab* slab = list.free.back();
            list.free.pop_back();
            slab->refs.store(1, std::memory_order_relaxed);
            hits_.fetch_add(1, std::memory_order_relaxed);
            outstanding_.fetch_add(1, std::memory_order_relaxed);
            metrics::count(metrics::Counter::kNetPoolHits);
            return BufferRef(slab);
        }
    }
    // Freelist dry (or oversize): a real allocation, so it is a real
    // fault boundary too.
    if (fault::inject(fault::Site::kHeapAlloc)) {
        return fault::injected_error(fault::Site::kHeapAlloc);
    }
    auto slab = std::make_unique<Slab>();
    slab->pool = this;
    slab->size_class =
        cls < kNumClasses ? static_cast<uint32_t>(cls) : kOversize;
    slab->capacity = cls < kNumClasses ? kClassBytes[cls] : min_bytes;
    slab->bytes = std::make_unique<uint8_t[]>(slab->capacity);
    slab->refs.store(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    metrics::count(metrics::Counter::kNetPoolMisses);
    return BufferRef(slab.release());
}

void
BufferPool::recycle(Slab* slab)
{
    outstanding_.fetch_sub(1, std::memory_order_relaxed);
    if (slab->size_class != kOversize) {
        ClassList& list = classes_[slab->size_class];
        std::lock_guard<std::mutex> lock(list.mu);
        if (list.free.size() < max_pooled_) {
            list.free.push_back(slab);
            return;
        }
    }
    delete slab;
}

BufferPoolStats
BufferPool::stats() const
{
    BufferPoolStats out;
    out.hits = hits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.outstanding = outstanding_.load(std::memory_order_relaxed);
    for (const ClassList& cl : classes_) {
        std::lock_guard<std::mutex> lock(
            const_cast<ClassList&>(cl).mu);
        out.pooled += cl.free.size();
    }
    return out;
}

BufferPool&
frame_pool()
{
    // Deliberately leaked: frames queued on connections at exit may
    // drop their refs during static destruction, and the freelists
    // they recycle into must still exist.
    static BufferPool* pool = new BufferPool(/*max_pooled=*/128);
    return *pool;
}

}  // namespace bitc::pool
