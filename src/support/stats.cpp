#include "support/stats.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "support/sim.hpp"

namespace bitc {

double
SampleStats::min() const
{
    assert(!samples_.empty());
    return *std::min_element(samples_.begin(), samples_.end());
}

double
SampleStats::max() const
{
    assert(!samples_.empty());
    return *std::max_element(samples_.begin(), samples_.end());
}

double
SampleStats::sum() const
{
    double total = 0;
    for (double s : samples_) total += s;
    return total;
}

double
SampleStats::mean() const
{
    assert(!samples_.empty());
    return sum() / static_cast<double>(samples_.size());
}

double
SampleStats::stddev() const
{
    assert(!samples_.empty());
    double m = mean();
    double acc = 0;
    for (double s : samples_) acc += (s - m) * (s - m);
    return std::sqrt(acc / static_cast<double>(samples_.size()));
}

double
SampleStats::percentile(double q) const
{
    assert(!samples_.empty());
    assert(q >= 0.0 && q <= 1.0);
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    size_t rank = static_cast<size_t>(q * static_cast<double>(sorted.size()));
    if (rank >= sorted.size()) rank = sorted.size() - 1;
    return sorted[rank];
}

std::string
SampleStats::summary() const
{
    if (samples_.empty()) return "n=0";
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "n=%zu mean=%.1f p50=%.1f p99=%.1f max=%.1f",
                  count(), mean(), percentile(0.50), percentile(0.99),
                  max());
    return buf;
}

uint64_t
now_ns()
{
    // Virtual-clock seam: while a deterministic simulation is
    // installed, every timestamp in the process reads its clock, so
    // deadlines, backoffs, and cooldowns computed from now_ns() are
    // simulation time end to end.  Off-sim this costs one relaxed
    // atomic load and a predicted-not-taken branch.
    if (sim::Simulation* s = sim::Simulation::installed()) {
        return s->now();
    }
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

}  // namespace bitc
