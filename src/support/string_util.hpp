/**
 * @file
 * Small string helpers shared by the front end and the harness.
 */
#ifndef BITC_SUPPORT_STRING_UTIL_HPP
#define BITC_SUPPORT_STRING_UTIL_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bitc {

/** Splits on @p sep; empty fields are preserved. */
std::vector<std::string> split(std::string_view text, char sep);

/** Joins with @p sep. */
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

/** True if @p text begins with @p prefix. */
bool starts_with(std::string_view text, std::string_view prefix);

/** Strips ASCII whitespace from both ends. */
std::string_view trim(std::string_view text);

/** printf-style formatting into a std::string. */
std::string str_format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Renders a byte count as "1.5 KiB" style. */
std::string human_bytes(uint64_t bytes);

}  // namespace bitc

#endif  // BITC_SUPPORT_STRING_UTIL_HPP
