#include "vm/bytecode.hpp"

#include <map>

#include "support/string_util.hpp"

namespace bitc::vm {

const char*
op_name(Op op)
{
    switch (op) {
      case Op::kConst: return "const";
      case Op::kUnit: return "unit";
      case Op::kPop: return "pop";
      case Op::kLocalGet: return "local.get";
      case Op::kLocalSet: return "local.set";
      case Op::kAdd: return "add";
      case Op::kSub: return "sub";
      case Op::kMul: return "mul";
      case Op::kDiv: return "div";
      case Op::kRem: return "rem";
      case Op::kNeg: return "neg";
      case Op::kShl: return "shl";
      case Op::kShr: return "shr";
      case Op::kBitAnd: return "and";
      case Op::kBitOr: return "or";
      case Op::kBitXor: return "xor";
      case Op::kLt: return "lt";
      case Op::kLe: return "le";
      case Op::kGt: return "gt";
      case Op::kGe: return "ge";
      case Op::kEq: return "eq";
      case Op::kNe: return "ne";
      case Op::kNot: return "not";
      case Op::kWrap: return "wrap";
      case Op::kJump: return "jump";
      case Op::kJumpIfFalse: return "jump_if_false";
      case Op::kCall: return "call";
      case Op::kCallNative: return "call_native";
      case Op::kRet: return "ret";
      case Op::kArrayMake: return "array.make";
      case Op::kArrayGet: return "array.get";
      case Op::kArraySet: return "array.set";
      case Op::kArrayLen: return "array.len";
      case Op::kAssert: return "assert";
      case Op::kHalt: return "halt";
    }
    return "?";
}

std::string
Instr::to_string() const
{
    switch (op) {
      case Op::kConst: {
        int64_t value =
            (static_cast<int64_t>(b) << 32) |
            static_cast<int64_t>(static_cast<uint32_t>(a));
        return str_format("const %lld", static_cast<long long>(value));
      }
      case Op::kLocalGet:
      case Op::kLocalSet:
      case Op::kJump:
      case Op::kJumpIfFalse:
      case Op::kCall:
        return str_format("%s %d", op_name(op), a);
      case Op::kWrap:
        return str_format("wrap %d%s", a,
                          (b & kFlagSigned) != 0 ? "s" : "u");
      case Op::kArrayGet:
      case Op::kArraySet: {
        std::string flags;
        if ((b & kFlagCheckLower) != 0) flags += " lo";
        if ((b & kFlagCheckUpper) != 0) flags += " hi";
        return std::string(op_name(op)) +
               (flags.empty() ? " unchecked" : flags);
      }
      default:
        return op_name(op);
    }
}

std::string
CompiledFunction::disassemble() const
{
    std::string out =
        str_format("%s (params=%u locals=%u):\n", name.c_str(),
                   num_params, num_locals);
    for (size_t i = 0; i < code.size(); ++i) {
        out += str_format("  %4zu: %s\n", i,
                          code[i].to_string().c_str());
    }
    return out;
}

Result<uint32_t>
CompiledProgram::find(const std::string& name) const
{
    for (size_t i = 0; i < functions.size(); ++i) {
        if (functions[i].name == name) {
            return static_cast<uint32_t>(i);
        }
    }
    return not_found_error(
        str_format("no function '%s'", name.c_str()));
}

std::string
CompiledProgram::disassemble() const
{
    std::string out;
    for (const CompiledFunction& f : functions) out += f.disassemble();
    return out;
}

std::vector<std::pair<std::string, size_t>>
CompiledProgram::op_histogram() const
{
    std::map<std::string, size_t> counts;
    for (const CompiledFunction& f : functions) {
        for (const Instr& i : f.code) ++counts[op_name(i.op)];
    }
    return {counts.begin(), counts.end()};
}

}  // namespace bitc::vm
