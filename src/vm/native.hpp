/**
 * @file
 * Native (C ABI) function registry: the FFI boundary for the legacy
 * experiment (F4).  Source programs call natives with
 * (native "name" arg...); the VM marshals arguments out of its value
 * representation and the result back in — the marshalling cost being
 * exactly what the F4 bench measures.
 */
#ifndef BITC_VM_NATIVE_HPP
#define BITC_VM_NATIVE_HPP

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "support/status.hpp"

namespace bitc::vm {

/** A registered native function: raw 64-bit words in and out. */
using NativeFn =
    std::function<Result<uint64_t>(std::span<const uint64_t>)>;

/** Name -> callable table, fixed before compilation. */
class NativeRegistry {
  public:
    /** Registers @p fn; duplicate names are an error. */
    Status add(const std::string& name, uint32_t arity, NativeFn fn);

    Result<uint32_t> find(const std::string& name) const;

    const NativeFn& function(uint32_t index) const {
        return entries_[index].fn;
    }
    uint32_t arity(uint32_t index) const {
        return entries_[index].arity;
    }
    const std::string& name(uint32_t index) const {
        return entries_[index].name;
    }
    size_t size() const { return entries_.size(); }

  private:
    struct Entry {
        std::string name;
        uint32_t arity;
        NativeFn fn;
    };
    std::vector<Entry> entries_;
};

}  // namespace bitc::vm

#endif  // BITC_VM_NATIVE_HPP
