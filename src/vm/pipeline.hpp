/**
 * @file
 * One-call front door over the whole toolchain:
 * source -> lex/parse -> resolve -> typecheck -> verify -> compile.
 *
 * This is the public API examples and benches use; the individual
 * stages remain available for tools that need partial pipelines.
 */
#ifndef BITC_VM_PIPELINE_HPP
#define BITC_VM_PIPELINE_HPP

#include <memory>
#include <string_view>

#include "types/checker.hpp"
#include "verify/verifier.hpp"
#include "vm/compiler.hpp"
#include "vm/interpreter.hpp"

namespace bitc::vm {

/** Pipeline switches. */
struct BuildOptions {
    bool verify = true;              ///< run the constraint checker
    CompilerOptions compiler;        ///< codegen switches
    verify::SolverConfig solver;     ///< prover limits
};

/** Everything the pipeline produced, ready to instantiate VMs from. */
struct BuiltProgram {
    types::TypedProgram typed;
    verify::VerifyReport verification;
    CompiledProgram code;

    /** Creates an executable instance (many VMs may share one build). */
    std::unique_ptr<Vm> instantiate(VmConfig config,
                                    const NativeRegistry* natives =
                                        nullptr) const {
        return std::make_unique<Vm>(code, natives, config);
    }
};

/**
 * Runs the full pipeline on @p source.  When options.compiler.proofs
 * is null and options.verify is set, the fresh verification report is
 * wired into the compiler automatically.
 */
Result<std::unique_ptr<BuiltProgram>> build_program(
    std::string_view source, BuildOptions options = {});

/** Everything a single execution produced besides its result. */
struct RunReport {
    uint64_t instructions = 0;
    mem::HeapStats heap;
    OpProfile profile;  ///< populated when config.profile was set.
};

/**
 * One-shot convenience over BuiltProgram::instantiate + Vm::call:
 * builds a VM with @p config, calls @p entry, and (when @p report is
 * non-null) copies out the instruction count, heap statistics and
 * opcode profile before the VM is torn down.  The benches and the
 * dispatch differential tests use this to compare configurations
 * without duplicating VM plumbing.
 */
Result<int64_t> run_built(const BuiltProgram& built,
                          const std::string& entry,
                          std::span<const int64_t> args, VmConfig config,
                          const NativeRegistry* natives = nullptr,
                          RunReport* report = nullptr);

}  // namespace bitc::vm

#endif  // BITC_VM_PIPELINE_HPP
