/**
 * @file
 * The BitC VM: a bytecode interpreter with two value representations
 * and six storage-management policies, crossing the axes of fallacies
 * F1 (performance factors), F2 (boxing) and F3 (optimiser recovery).
 *
 * Value modes:
 *  - kUnboxed: 64-bit machine words on the stack; arrays are heap
 *    objects with raw slots.  Requires a non-collecting heap policy
 *    (region or manual), since raw words are invisible to a tracer.
 *  - kBoxed: every value (ints, bools, unit) is a heap box; the stack
 *    holds object references, each slot registered as a GC root, so
 *    any collector policy works.  This is the uniform representation
 *    regime of classic ML runtimes — F2's subject.
 */
#ifndef BITC_VM_INTERPRETER_HPP
#define BITC_VM_INTERPRETER_HPP

#include <array>
#include <memory>
#include <span>

#include "memory/heap.hpp"
#include "vm/bytecode.hpp"
#include "vm/native.hpp"

namespace bitc::vm {

enum class ValueMode : uint8_t { kUnboxed, kBoxed };

/**
 * Inner-loop dispatch strategy.
 *  - kSwitch:   one `switch` per instruction — the portable baseline,
 *    and the interpreter shape F1's "factors of 1.5-2x" argument is
 *    usually made against.
 *  - kThreaded: computed-goto threaded code (GCC/Clang `&&label`),
 *    operands decoded once, with unboxed fast paths for the
 *    arithmetic/compare/branch cluster.  Falls back to kSwitch when
 *    the compiler has no labels-as-values extension.
 */
enum class DispatchMode : uint8_t { kSwitch, kThreaded };

enum class HeapPolicy : uint8_t {
    kRegion,
    kManual,
    kRefCount,
    kMarkSweep,
    kMarkCompact,
    kSemispace,
    kGenerational,
};

const char* value_mode_name(ValueMode mode);
const char* heap_policy_name(HeapPolicy policy);
const char* dispatch_mode_name(DispatchMode mode);

/** True when kThreaded actually threads (labels-as-values available). */
bool threaded_dispatch_available();

/**
 * Per-opcode execution profile (counts always exact; time attributed
 * at dispatch boundaries, so nanos are approximate per-op shares).
 * Collected when VmConfig::profile or VmConfig::count_ops is set.
 * Only profile adds the per-instruction clock read that makes nanos
 * meaningful; count_ops keeps the exact counters alone and folds them
 * into the global metrics registry at the end of each run.
 */
struct OpProfile {
    std::array<uint64_t, kNumOps> counts{};
    std::array<uint64_t, kNumOps> nanos{};

    uint64_t total_count() const;
    uint64_t total_nanos() const;
    /** Table of ops sorted by execution count, descending. */
    std::string to_string() const;
};

/** VM construction parameters. */
struct VmConfig {
    ValueMode mode = ValueMode::kUnboxed;
    HeapPolicy heap = HeapPolicy::kRegion;
    DispatchMode dispatch = DispatchMode::kThreaded;
    bool profile = false;           ///< collect an OpProfile per run.
    bool count_ops = false;         ///< opcode counts only (no clocks);
                                    ///< folded into metrics::snapshot().
    size_t heap_words = 1u << 22;   ///< 32 MiB of 64-bit words.
    size_t stack_slots = 1u << 16;  ///< Value-stack capacity.
    uint64_t max_instructions = 0;  ///< 0 = unlimited.
};

/**
 * An executable program instance.  Owns its heap; thread-compatible.
 */
class Vm {
  public:
    /**
     * @param program  Compiled code (borrowed; must outlive the Vm).
     * @param natives  Registry for kCallNative (may be null).
     */
    Vm(const CompiledProgram& program, const NativeRegistry* natives,
       VmConfig config);
    ~Vm();

    Vm(const Vm&) = delete;
    Vm& operator=(const Vm&) = delete;

    /** Validates the configuration (mode/heap compatibility). */
    Status validate() const;

    /**
     * Calls function @p name with integer arguments, running to
     * completion.  Traps surface as kRuntimeError.
     */
    Result<int64_t> call(const std::string& name,
                         std::span<const int64_t> args);

    /** Braced-list convenience: vm.call("f", {1, 2}). */
    Result<int64_t> call(const std::string& name,
                         std::initializer_list<int64_t> args) {
        return call(name,
                    std::span<const int64_t>(args.begin(), args.size()));
    }

    /**
     * Calls @p name passing a fresh VM array as the first argument,
     * marshalled in from @p buffer and back out after the call — the
     * copy-across-the-representation-boundary every FFI crossing pays
     * (fallacy F4's measurable cost).  Extra integer arguments follow
     * the array parameter.
     */
    Result<int64_t> call_with_buffer(
        const std::string& name, std::span<int64_t> buffer,
        std::span<const int64_t> extra_args = {});

    /** Instructions retired over the VM's lifetime. */
    uint64_t instructions_executed() const { return instructions_; }

    /** Accumulated per-opcode profile (all zeros unless config.profile
     *  or config.count_ops was set; nanos need config.profile). */
    const OpProfile& profile() const { return profile_data_; }

    /** The heap backing this VM (allocation/pause statistics). */
    const mem::ManagedHeap& heap() const { return *heap_; }
    mem::ManagedHeap& heap() { return *heap_; }

    const VmConfig& config() const { return config_; }

  private:
    template <ValueMode mode>
    Result<int64_t> run(uint32_t function, std::span<const int64_t> args,
                        std::span<int64_t> buffer);

    const CompiledProgram& program_;
    const NativeRegistry* natives_;
    VmConfig config_;
    std::unique_ptr<mem::ManagedHeap> heap_;
    uint64_t instructions_ = 0;
    OpProfile profile_data_;
};

/** Builds the heap a policy names (exposed for tests and benches). */
std::unique_ptr<mem::ManagedHeap> make_heap(HeapPolicy policy,
                                            size_t heap_words);

}  // namespace bitc::vm

#endif  // BITC_VM_INTERPRETER_HPP
